module universalnet

go 1.22
