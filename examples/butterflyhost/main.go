// Butterflyhost: the host bake-off the paper's §2 motivates — compare
// candidate universal networks of (roughly) equal size simulating the same
// guest, and watch diameter decide the outcome: the butterfly and the
// expander achieve s ≈ (n/m)·log m while the ring pays its Θ(m) diameter.
// Also demonstrates the 2^{O(t)}·n tree-cached host with constant slowdown.
package main

import (
	"fmt"
	"log"
	"math/rand"

	universalnet "universalnet"
)

func main() {
	const (
		n     = 256
		deg   = 4
		steps = 4
	)
	rng := rand.New(rand.NewSource(7))
	guest, err := universalnet.RandomGuest(rng, n, deg)
	if err != nil {
		log.Fatal(err)
	}
	comp := universalnet.MixMod(guest, rng)
	direct, err := comp.Run(steps)
	if err != nil {
		log.Fatal(err)
	}

	butterfly, err := universalnet.ButterflyHost(4) // m = 64
	if err != nil {
		log.Fatal(err)
	}
	torus, err := universalnet.TorusHost(64)
	if err != nil {
		log.Fatal(err)
	}
	expanderHost, err := universalnet.ExpanderHost(64, 4, 11)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("guest: n=%d %d-regular, T=%d steps; hosts of size m=64 (load 4)\n\n", n, deg, steps)
	fmt.Printf("%-24s  %-9s  %-10s  %-9s\n", "host", "diameter", "slowdown", "verified")
	for _, host := range []*universalnet.Host{butterfly, torus, expanderHost} {
		rep, err := (&universalnet.EmbeddingSimulator{Host: host}).Run(comp, steps)
		if err != nil {
			log.Fatal(err)
		}
		ok := rep.Trace.Checksum() == direct.Checksum()
		fmt.Printf("%-24s  %-9d  %-10.1f  %-9v\n",
			host.Name, host.Graph.Diameter(), rep.Slowdown, ok)
	}

	// The other end of the trade-off: a host of size 2^{O(t)}·n with
	// constant slowdown for length-t computations (§1 remark).
	tc, err := universalnet.BuildTreeCachedHost(n, deg, 3)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := tc.SimulateProtocol(guest)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntree-cached host: m=%d (= %.0f·n) simulates %d steps with slowdown %.0f (constant c+2)\n",
		tc.M(), float64(tc.M())/float64(n), tc.Depth, pr.Slowdown())
}
