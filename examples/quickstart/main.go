// Quickstart: simulate an arbitrary constant-degree network on a smaller
// universal butterfly host (Theorem 2.1) and check the measured slowdown
// against the (n/m)·log m bound.
package main

import (
	"fmt"
	"log"
	"math/rand"

	universalnet "universalnet"
)

func main() {
	const (
		n     = 256 // guest processors
		deg   = 4   // guest degree
		steps = 5   // guest computation steps
	)
	rng := rand.New(rand.NewSource(42))

	// 1. A random constant-degree guest network — the class 𝒰 the paper
	//    quantifies over.
	guest, err := universalnet.RandomGuest(rng, n, deg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest: %v\n", guest)

	// 2. A universal host: the wrapped butterfly with m = 64 < n processors.
	host, err := universalnet.ButterflyHost(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host:  %s\n", host.Name)

	// 3. A computation for the guest to run (chaotic mixing: any simulation
	//    error corrupts the checksum).
	comp := universalnet.MixMod(guest, rng)

	// 4. Simulate via static embedding + h–h routing (Theorem 2.1).
	rep, err := (&universalnet.EmbeddingSimulator{Host: host}).Run(comp, steps)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Verify against direct execution.
	direct, err := comp.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		log.Fatal("simulation diverged from direct execution")
	}

	m := host.Graph.N()
	fmt.Printf("simulated %d guest steps in %d host steps (compute %d + route %d)\n",
		steps, rep.HostSteps, rep.ComputeSteps, rep.RouteSteps)
	fmt.Printf("slowdown  s = %.1f   (Theorem 2.1 form (n/m)·log2 m = %.1f)\n",
		rep.Slowdown, universalnet.UpperBoundSlowdown(n, m, 1))
	fmt.Printf("inefficiency k = s·m/n = %.2f (Theorem 3.1: k = Ω(log m))\n", rep.Inefficiency)
	fmt.Println("trace verified against direct execution ✓")
}
