// Pebbleanalysis: walk through the §3 lower-bound machinery on a live
// protocol — build a guest from 𝒰[G₀], simulate it on a butterfly through
// the pebble game, prove the protocol carries the computation, and then
// extract everything the counting argument uses: representatives,
// generators, fragments, weights, critical times, and the heavy-processor
// threshold of Lemma 3.15.
package main

import (
	"fmt"
	"log"
	"math/rand"

	universalnet "universalnet"
	"universalnet/internal/core"
	"universalnet/internal/topology"
)

func main() {
	// 1. G₀ (Definition 3.9) and a guest from 𝒰[G₀] with c = 16.
	const blockSide = 4
	n := universalnet.NextValidG0Size(60, blockSide)
	g0, err := topology.BuildG0WithBlockSide(n, blockSide, 3)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	guest, err := g0.SampleGuest(rng, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest G ∈ 𝒰[G₀]: %v (contains G₀: %v)\n", guest, g0.Graph.IsSubgraphOf(guest))

	// 2. A k-inefficient simulation protocol on a butterfly host.
	host, err := universalnet.WrappedButterfly(3)
	if err != nil {
		log.Fatal(err)
	}
	T := universalnet.TreeDepth(blockSide) + 8
	pr, err := universalnet.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		log.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol: m=%d, T=%d, T'=%d, slowdown %.1f, inefficiency k=%.1f\n",
		host.N(), T, pr.HostSteps(), pr.Slowdown(), pr.Inefficiency())
	fmt.Printf("profile: %v\n", pr.Stats())

	// 3. The protocol carries the actual computation (stateful replay).
	comp := universalnet.MixMod(guest, rng)
	if err := universalnet.VerifyCarries(pr, comp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stateful replay matches direct execution ✓")

	// 4. Lemma 3.12: weights, critical times Z_S, root selection.
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		log.Fatal(err)
	}
	z := lw.CriticalTimes(T)
	fmt.Printf("\nLemma 3.12: tree depth D=%d, max tree size=%d (≤48a²=%d)\n",
		lw.D, lw.TreeSize, 48*g0.A*g0.A)
	fmt.Printf("critical times Z_S = %v (|Z_S|=%d ≥ (T−D)/2=%d)\n", z, len(z), (T-lw.D)/2)

	t0 := z[len(z)/2]
	roots, err := st.ChooseRoots(g0, lw, t0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen roots r_1..r_h at t0=%d: %v\n", t0, roots)

	// 5. A fragment (Definition 3.2) and its multiplicity bound (Lemma 3.3).
	frag, err := st.ExtractFragment(t0, st.PickLightest(t0))
	if err != nil {
		log.Fatal(err)
	}
	if err := frag.Validate(); err != nil {
		log.Fatal(err)
	}
	dSizes := make([]int, n)
	maxD := 0
	for i := range frag.D {
		dSizes[i] = len(frag.D[i])
		if dSizes[i] > maxD {
			maxD = dSizes[i]
		}
	}
	fmt.Printf("\nfragment at t0=%d: Σ|B_i| = %d (≤ q·n·k with q=384), max|D_i| = %d\n",
		t0, frag.SumB(), maxD)
	fmt.Printf("Lemma 3.3 multiplicity: log2 X ≤ %.1f  (log2 |𝒰[G₀]| ≥ %.1f)\n",
		core.Log2MultiplicityExact(dSizes, 16-12), core.Params{}.Defaults().Log2Guests(n))

	// 6. Lemma 3.15's heavy-processor threshold.
	params := core.Params{}.Defaults()
	k := pr.Inefficiency()
	fmt.Printf("\nLemma 3.15: heavy threshold n/√m = %.1f; ≤ %.0f processors may be heavy\n",
		core.HeavyThreshold(n, host.N()), core.HeavyProcessorBound(host.N(), k))
	fmt.Printf("frontier gap bound: ≥ %.2f host steps between critical frontiers\n",
		params.FrontierGapBound(n, host.N(), k))
}
