// Lowerbound: evaluate the Theorem 3.1 counting bound m·s = Ω(n·log m)
// numerically — the paper's main result — in both constant regimes, and
// print the full size/slowdown trade-off table against the Theorem 2.1
// upper bound.
package main

import (
	"fmt"
	"log"

	universalnet "universalnet"
	"universalnet/internal/experiments"
)

func main() {
	paper := universalnet.PaperParams()
	toy := universalnet.ToyParams()

	fmt.Println("Theorem 3.1: every n-universal network of size m with slowdown s has")
	fmt.Println("m·s = Ω(n·log m); equivalently the inefficiency k = s·m/n is Ω(log m).")
	fmt.Println()

	// The bound normalizes per guest processor: k depends only on log₂ m.
	fmt.Println("k lower bound as a function of log2 m:")
	fmt.Printf("%-10s  %-18s  %-18s\n", "log2 m", "k (paper consts)", "k (toy consts)")
	for _, lm := range []float64{10, 20, 40, 64, 128, 1e5, 1e6, 4e6} {
		kp, err := paper.KLowerBound(lm)
		if err != nil {
			log.Fatal(err)
		}
		kt, err := toy.KLowerBound(lm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0f  %-18.3f  %-18.3f\n", lm, kp, kt)
	}
	fmt.Println()
	fmt.Println("(The paper's own constants — q=384, r=3472+384·log d — keep the bound")
	fmt.Println(" at the trivial k=1 until log2 m ≈ 10^5: the theorem is asymptotic.")
	fmt.Println(" The toy constants preserve the inequality's structure at unit scale.)")
	fmt.Println()

	// The full trade-off table with toy constants (shape visible).
	n := 1 << 16
	tab, err := experiments.TradeoffTable(toy, n, []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tab)
	fmt.Println()

	// The m = Ω(n log n) corollary: host size needed for constant slowdown.
	for _, s0 := range []float64{2, 4, 8} {
		m, err := toy.MinHostSizeForConstantSlowdown(n, s0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slowdown ≤ %.0f requires m ≥ %d (n = %d, toy constants)\n", s0, m, n)
	}
}
