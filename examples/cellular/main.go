// Cellular: a domain application of universal simulation — run a cellular
// automaton written for a 32×32 torus machine on a 64-processor butterfly,
// the "your network program on my smaller machine" scenario the paper's
// introduction motivates. The automaton is a majority-vote process; the
// host-reconstructed trace is verified cell for cell.
package main

import (
	"fmt"
	"log"
	"math/rand"

	universalnet "universalnet"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

const side = 32

// majorityStep is the automaton: a cell becomes 1 iff at least half of its
// closed neighborhood (itself + 4 torus neighbors) is 1.
func majorityStep(_ int, self sim.State, neighbors []sim.State) sim.State {
	count := int(self & 1)
	for _, s := range neighbors {
		count += int(s & 1)
	}
	if 2*count >= len(neighbors)+1 {
		return 1
	}
	return 0
}

func render(states []sim.State) string {
	out := ""
	for x := 0; x < side; x += 2 { // halve vertical resolution
		for y := 0; y < side; y++ {
			if states[topology.MeshIndex(side, x, y)] == 1 {
				out += "█"
			} else {
				out += "·"
			}
		}
		out += "\n"
	}
	return out
}

func main() {
	guest, err := universalnet.Torus(side * side)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	init := make([]sim.State, side*side)
	for i := range init {
		if rng.Float64() < 0.45 {
			init[i] = 1
		}
	}
	comp, err := sim.NewComputation(guest, init, majorityStep, "majority-CA")
	if err != nil {
		log.Fatal(err)
	}

	const steps = 8
	host, err := universalnet.ButterflyHost(4) // m = 64 for n = 1024 cells
	if err != nil {
		log.Fatal(err)
	}
	rep, err := (&universalnet.EmbeddingSimulator{Host: host}).Run(comp, steps)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := comp.Run(steps)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		log.Fatal("simulated automaton diverged")
	}

	fmt.Printf("majority automaton, %d×%d torus guest (n=%d) on %s\n",
		side, side, side*side, host.Name)
	fmt.Printf("T=%d guest steps → %d host steps (slowdown %.1f; (n/m)·log2 m = %.1f)\n\n",
		steps, rep.HostSteps, rep.Slowdown,
		universalnet.UpperBoundSlowdown(side*side, host.Graph.N(), 1))
	fmt.Println("initial state:")
	fmt.Print(render(rep.Trace.States[0]))
	fmt.Println("\nafter", steps, "steps (coarsened by majority dynamics):")
	fmt.Print(render(rep.Trace.Final()))
	fmt.Println("\ntrace verified against direct execution ✓")
}
