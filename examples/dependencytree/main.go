// Dependencytree: reproduce Figure 1 — a dependency tree in Γ_{G₀} — and
// verify the Lemma 3.10 quantities (binary, depth O(a), size O(a²), leaves
// covering a whole partition torus) for every possible root of a block.
package main

import (
	"fmt"
	"log"

	universalnet "universalnet"
	"universalnet/internal/experiments"
)

func main() {
	const blockSide = 4 // p = 2a with a = 2
	n := universalnet.NextValidG0Size(100, blockSide)

	g0, err := universalnet.BuildG0(n, 1<<(blockSide*blockSide/4), 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := g0.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G0 (Definition 3.9): n=%d, block side %d (a=%d), %d partition tori, max degree %d\n",
		g0.N, g0.BlockSide, g0.A, g0.H(), g0.Graph.MaxDegree())

	depth := universalnet.TreeDepth(blockSide)
	fmt.Printf("dependency-tree depth D(p) = %d\n\n", depth)

	// Figure 1: one tree rendered level by level.
	tree, err := universalnet.BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderDependencyTree(g0, tree))
	fmt.Println()

	// Lemma 3.10 for every root of every block: binary, uniform depth,
	// leaves cover the torus, size O(a²).
	maxSize := 0
	trees := 0
	for bi := range g0.Blocks {
		for _, v := range g0.Blocks[bi].Vertices {
			tr, err := universalnet.BuildDependencyTree(g0, v, depth)
			if err != nil {
				log.Fatalf("root %d: %v", v, err)
			}
			if err := tr.Validate(g0.Multitorus, 2); err != nil {
				log.Fatalf("root %d: %v", v, err)
			}
			if err := tr.LeavesCover(g0.Blocks[bi].Vertices, depth); err != nil {
				log.Fatalf("root %d: %v", v, err)
			}
			if s := tr.Size(); s > maxSize {
				maxSize = s
			}
			trees++
		}
	}
	a := g0.A
	fmt.Printf("validated %d dependency trees (every root of every block)\n", trees)
	fmt.Printf("max size %d = %.1f·a²  (paper's Lemma 3.10 constant: 48)\n",
		maxSize, float64(maxSize)/float64(a*a))
	fmt.Printf("uniform depth %d = %.1f·a (paper states depth a; ours is Θ(a))\n",
		depth, float64(depth)/float64(a))
}
