package universalnet

import (
	"math/rand"
	"testing"
)

// The facade tests exercise the public API end to end, the way a downstream
// user would: build a guest, build a host, simulate, measure, and compare
// against the paper's bounds.

func TestFacadeEndToEndSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := RandomGuest(rng, 96, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := MixMod(guest, rng)

	host, err := ButterflyHost(4) // m = 64 < n = 96
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).Run(comp, 5)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("simulation diverged from direct execution")
	}
	// The measured slowdown respects the Theorem 2.1 asymptotic shape.
	upper := UpperBoundSlowdown(96, 64, 20) // generous constant
	if rep.Slowdown > upper {
		t.Errorf("slowdown %.1f exceeds generous upper envelope %.1f", rep.Slowdown, upper)
	}
}

func TestFacadePebbleProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	frag, err := st.ExtractFragment(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := frag.Validate(); err != nil {
		t.Fatal(err)
	}
	// m·s vs n·k bookkeeping: k = s·m/n exactly.
	k := pr.Inefficiency()
	s := pr.Slowdown()
	if diff := k - s*float64(host.N())/float64(guest.N()); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("inefficiency bookkeeping off by %g", diff)
	}
}

func TestFacadeLowerBoundAPI(t *testing.T) {
	p := PaperParams()
	k, err := p.MinInefficiency(1<<16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Errorf("k = %f below 1", k)
	}
	toy := ToyParams()
	rows, err := toy.TradeoffTable(1<<16, []int{1 << 8, 1 << 12, 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// m·s lower bound must not decrease as hosts shrink relative to n·log m.
	for _, r := range rows {
		if r.ProductMS < float64(r.N) { // s ≥ 1 and k ≥ 1 imply m·s ≥ ... at least n when m ≤ n·s
			if r.M < r.N {
				t.Errorf("m·s = %f below n for m=%d", r.ProductMS, r.M)
			}
		}
	}
}

func TestFacadeG0AndTrees(t *testing.T) {
	n := NextValidG0Size(100, 4)
	g0, err := BuildG0(n, 1<<4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g0.Validate(); err != nil {
		t.Fatal(err)
	}
	depth := TreeDepth(g0.BlockSide)
	tree, err := BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g0.Multitorus, 2); err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyExpansion(g0.Expander, 0.25, 100, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Lambda2 >= 1 {
		t.Errorf("expander overlay has no spectral gap: %f", cert.Lambda2)
	}
}

func TestFacadeTreeCachedHost(t *testing.T) {
	h, err := BuildTreeCachedHost(8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	guest, err := RandomGuest(rand.New(rand.NewSource(3)), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := h.SimulateProtocol(guest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.Slowdown() != 4 { // c+2
		t.Errorf("slowdown %f, want 4", pr.Slowdown())
	}
}

func TestFacadeRouting(t *testing.T) {
	g, err := Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(64)
	pairs := make([]RoutingPair, 64)
	for i, d := range perm {
		pairs[i] = RoutingPair{Src: i, Dst: d}
	}
	res, err := (&GreedyRouter{}).Route(g, &RoutingProblem{N: 64, Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64 {
		t.Errorf("delivered %d/64", res.Delivered)
	}
	rounds, err := DecomposeHRelation(64, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Errorf("permutation decomposed into %d rounds", len(rounds))
	}
	if _, err := OfflinePermutationSteps(6, perm); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNewTopologiesAndRouting(t *testing.T) {
	if g, err := MeshOfTrees(4); err != nil || !g.IsConnected() {
		t.Errorf("MeshOfTrees: %v", err)
	}
	if g, err := Torus3D(3); err != nil || !g.IsRegular(6) {
		t.Errorf("Torus3D: %v", err)
	}
	if g, err := XTree(3); err != nil || !g.IsConnected() {
		t.Errorf("XTree: %v", err)
	}
	if g, err := Kautz(2, 2); err != nil || g.N() != 12 {
		t.Errorf("Kautz: %v", err)
	}
	// Sorting router on a path.
	pathHost := NewGraphBuilder(8)
	for i := 0; i < 7; i++ {
		pathHost.MustAddEdge(i, i+1)
	}
	g := pathHost.Build()
	perm := rand.New(rand.NewSource(5)).Perm(8)
	pairs := make([]RoutingPair, 8)
	for i, d := range perm {
		pairs[i] = RoutingPair{Src: i, Dst: d}
	}
	sr := &SortingRouter{Schedule: OddEvenTransposition(8), CheckEdges: true}
	if res, err := sr.Route(g, &RoutingProblem{N: 8, Pairs: pairs}); err != nil || res.Steps != 8 {
		t.Errorf("sorting router: %v %+v", err, res)
	}
	if lb, err := RoutingLowerBound(g, &RoutingProblem{N: 8, Pairs: pairs}); err != nil || lb < 1 {
		t.Errorf("routing lower bound: %v %d", err, lb)
	}
}

func TestFacadeObliviousAndCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pattern := RandomObliviousPattern(rng, 16, 3)
	init := make([]State, 16)
	for i := range init {
		init[i] = State(rng.Uint64())
	}
	direct, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ExpanderHost(8, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).RunOblivious(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Error("oblivious simulation diverged")
	}
	cnt, err := CountRegularGraphsExact(6, 3)
	if err != nil || cnt.Int64() != 70 {
		t.Errorf("count = %v, %v", cnt, err)
	}
	ring := NewGraphBuilder(8)
	for i := 0; i < 8; i++ {
		ring.MustAddEdge(i, (i+1)%8)
	}
	h, _, err := ExactConductance(ring.Build())
	if err != nil || h != 0.25 {
		t.Errorf("conductance = %f, %v", h, err)
	}
	lo, hi := CheegerBounds(0.5)
	if lo <= 0 || hi <= lo {
		t.Errorf("Cheeger bounds %f %f", lo, hi)
	}
}

func TestFacadeEmbeddingAndBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	guest, err := RandomGuest(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := GreedyEmbedding(guest, host, rng)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Dilation() < 1 || emb.Load() < 1 {
		t.Errorf("embedding degenerate: %+v", emb)
	}
	pr, err := BuildPipelinedProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	rp, err := RandomPebbleProtocol(guest, host, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Validate(); err != nil {
		t.Fatal(err)
	}
}
