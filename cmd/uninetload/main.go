// Command uninetload drives a running `uninet serve` instance with
// synthetic /v1 traffic and reports latency percentiles and error rates.
//
// Two generator disciplines are supported:
//
//   - closed loop (-mode closed): -c workers each keep exactly one request
//     in flight, so offered load adapts to service latency. This measures
//     best-case latency under a fixed concurrency.
//   - open loop (-mode open): requests are launched on a fixed -rps
//     schedule regardless of completions, the discipline that actually
//     exercises admission control — when the service falls behind, requests
//     pile into the bounded queue and the overflow is rejected with 429.
//
// 429 responses are counted as rejections (the backpressure working as
// designed), not errors; any other non-200 outcome is an error and makes
// the process exit nonzero. Latencies are recorded both exactly (for
// p50/p95/p99/max) and into an obs histogram whose snapshot rides along in
// the -json report next to the server's own /v1/status.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"universalnet/internal/obs"
)

// opts bundles the generator's knobs.
type opts struct {
	addr     string
	endpoint string
	mode     string
	c        int
	rps      float64
	duration time.Duration

	topology string
	n        int
	m        int
	steps    int
	deg      int
	seeds    int64
	seedBase int64
	deadline int

	jsonOut bool

	assertRejections bool
	assertCacheHits  bool
}

func main() {
	var o opts
	fs := flag.NewFlagSet("uninetload", flag.ExitOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8214", "server address (host:port or http URL)")
	fs.StringVar(&o.endpoint, "endpoint", "simulate", "request kind: simulate|route|embed|mix")
	fs.StringVar(&o.mode, "mode", "closed", "generator discipline: closed|open")
	fs.IntVar(&o.c, "c", 4, "closed-loop concurrency (workers with one request in flight each)")
	fs.Float64Var(&o.rps, "rps", 50, "open-loop arrival rate (requests per second)")
	fs.DurationVar(&o.duration, "duration", 2*time.Second, "how long to generate load")
	fs.StringVar(&o.topology, "topology", "torus", "host topology: torus|ring|expander|butterfly|ccc")
	fs.IntVar(&o.n, "n", 64, "guest size (simulate/embed)")
	fs.IntVar(&o.m, "m", 16, "host size (or dimension for butterfly/ccc)")
	fs.IntVar(&o.steps, "steps", 4, "guest steps per simulate request")
	fs.IntVar(&o.deg, "deg", 4, "guest degree")
	fs.Int64Var(&o.seeds, "seeds", 1, "number of distinct seeds to cycle through (1 = maximal cache reuse)")
	fs.Int64Var(&o.seedBase, "seed-base", 1, "first seed of the cycle")
	fs.IntVar(&o.deadline, "deadline-ms", 0, "per-request deadline in ms (0 = server default)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON on stdout")
	fs.BoolVar(&o.assertRejections, "assert-rejections", false, "exit nonzero unless at least one request was rejected (429)")
	fs.BoolVar(&o.assertCacheHits, "assert-cache-hits", false, "exit nonzero unless the server reports result-cache hits")
	_ = fs.Parse(os.Args[1:])

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uninetload:", err)
		os.Exit(1)
	}
}

// latencyBuckets bounds the load generator's latency histogram in
// microseconds — client-side latencies for cached answers are far below a
// millisecond, so the service's ms buckets would flatten them.
var latencyBuckets = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000, 5000000}

// outcome tallies one request's fate.
type outcome struct {
	latencyUS int64
	status    int // 0 = transport error
	cached    bool
	err       error
}

// report is the end-of-run summary (also the -json document).
type report struct {
	Endpoint   string  `json:"endpoint"`
	Mode       string  `json:"mode"`
	DurationS  float64 `json:"duration_s"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Cached     int     `json:"cached"`
	Rejected   int     `json:"rejected"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`

	Client *obs.Snapshot   `json:"client,omitempty"`
	Server json.RawMessage `json:"server,omitempty"`
}

func run(o opts, out io.Writer) error {
	switch o.mode {
	case "closed", "open":
	default:
		return fmt.Errorf("unknown -mode %q (closed|open)", o.mode)
	}
	switch o.endpoint {
	case "simulate", "route", "embed", "mix":
	default:
		return fmt.Errorf("unknown -endpoint %q (simulate|route|embed|mix)", o.endpoint)
	}
	if o.seeds < 1 {
		o.seeds = 1
	}
	base := o.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 30 * time.Second}
	reg := obs.New()
	hist := reg.Histogram("load.latency_us", latencyBuckets)

	var (
		mu       sync.Mutex
		outcomes []outcome
		seq      int64
	)
	record := func(oc outcome) {
		hist.Observe(oc.latencyUS)
		switch {
		case oc.status == http.StatusOK:
			reg.Counter("load.ok").Inc()
		case oc.status == http.StatusTooManyRequests:
			reg.Counter("load.rejected").Inc()
		default:
			reg.Counter("load.errors").Inc()
		}
		mu.Lock()
		outcomes = append(outcomes, oc)
		mu.Unlock()
	}
	next := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		seq++
		return seq
	}

	start := time.Now()
	stop := start.Add(o.duration)
	var wg sync.WaitGroup
	if o.mode == "closed" {
		for w := 0; w < o.c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					record(shoot(client, base, o, next()))
				}
			}()
		}
	} else {
		interval := time.Duration(float64(time.Second) / o.rps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for time.Now().Before(stop) {
			<-ticker.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				record(shoot(client, base, o, next()))
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(o, outcomes, elapsed)
	rep.Client = reg.Snapshot()
	if raw, err := fetchStatus(client, base); err == nil {
		rep.Server = raw
	}

	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(out, rep)
	}

	if rep.Errors > 0 {
		return fmt.Errorf("%d requests failed", rep.Errors)
	}
	if o.assertRejections && rep.Rejected == 0 {
		return fmt.Errorf("assert-rejections: no request was rejected (429)")
	}
	if o.assertCacheHits {
		hits, err := serverCacheHits(rep.Server)
		if err != nil {
			return fmt.Errorf("assert-cache-hits: %w", err)
		}
		if hits == 0 {
			return fmt.Errorf("assert-cache-hits: server reports zero result-cache hits")
		}
	}
	return nil
}

// shoot fires one request and measures it. The i-th request derives its
// seed from the cycle, so -seeds 1 replays one cache key forever while a
// large -seeds forces fresh computations.
func shoot(client *http.Client, base string, o opts, i int64) outcome {
	kind := o.endpoint
	if kind == "mix" {
		kind = []string{"simulate", "route", "embed"}[i%3]
	}
	seed := o.seedBase + i%o.seeds
	var body map[string]any
	switch kind {
	case "simulate":
		body = map[string]any{"topology": o.topology, "n": o.n, "m": o.m, "seed": seed, "steps": o.steps, "guest_degree": o.deg}
	case "route":
		body = map[string]any{"topology": o.topology, "m": o.m, "seed": seed}
	case "embed":
		body = map[string]any{"topology": o.topology, "n": o.n, "m": o.m, "seed": seed, "guest_degree": o.deg}
	}
	if o.deadline > 0 {
		body["deadline_ms"] = o.deadline
	}
	buf, _ := json.Marshal(body)

	t0 := time.Now()
	resp, err := client.Post(base+"/v1/"+kind, "application/json", bytes.NewReader(buf))
	lat := time.Since(t0).Microseconds()
	if err != nil {
		return outcome{latencyUS: lat, err: err}
	}
	defer resp.Body.Close()
	var res struct {
		Cached bool `json:"cached"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&res)
	return outcome{latencyUS: lat, status: resp.StatusCode, cached: res.Cached}
}

// summarize folds the raw outcomes into the report. Percentiles are exact
// (nearest-rank over the sorted successful-request latencies).
func summarize(o opts, outcomes []outcome, elapsed time.Duration) report {
	rep := report{
		Endpoint:  o.endpoint,
		Mode:      o.mode,
		DurationS: elapsed.Seconds(),
		Requests:  len(outcomes),
	}
	var lats []int64
	for _, oc := range outcomes {
		switch {
		case oc.status == http.StatusOK:
			rep.OK++
			if oc.cached {
				rep.Cached++
			}
			lats = append(lats, oc.latencyUS)
		case oc.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50MS = float64(quantile(lats, 0.50)) / 1000
		rep.P95MS = float64(quantile(lats, 0.95)) / 1000
		rep.P99MS = float64(quantile(lats, 0.99)) / 1000
		rep.MaxMS = float64(lats[len(lats)-1]) / 1000
	}
	return rep
}

// quantile is the nearest-rank quantile of an ascending slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func printReport(out io.Writer, rep report) {
	fmt.Fprintf(out, "uninetload: %s/%s  %.2fs  %d requests (%.1f ok/s)\n",
		rep.Endpoint, rep.Mode, rep.DurationS, rep.Requests, rep.Throughput)
	fmt.Fprintf(out, "  ok %d (cached %d)  rejected %d  errors %d\n",
		rep.OK, rep.Cached, rep.Rejected, rep.Errors)
	fmt.Fprintf(out, "  latency ms  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
}

// fetchStatus grabs the server's /v1/status document verbatim.
func fetchStatus(client *http.Client, base string) (json.RawMessage, error) {
	resp, err := client.Get(base + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// serverCacheHits digs the result-cache hit counter out of a /v1/status
// document.
func serverCacheHits(raw json.RawMessage) (int64, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("no /v1/status document was captured")
	}
	var st struct {
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, err
	}
	return st.Cache.Hits, nil
}
