// Command uninetload drives a running `uninet serve` instance with
// synthetic /v1 traffic and reports latency percentiles and error rates.
//
// Two generator disciplines are supported:
//
//   - closed loop (-mode closed): -c workers each keep exactly one request
//     in flight, so offered load adapts to service latency. This measures
//     best-case latency under a fixed concurrency.
//   - open loop (-mode open): requests are launched on a fixed -rps
//     schedule regardless of completions, the discipline that actually
//     exercises admission control — when the service falls behind, requests
//     pile into the bounded queue and the overflow is rejected with 429.
//
// 429 responses are counted as rejections (the backpressure working as
// designed), not errors; any other non-200 outcome is an error and makes
// the process exit nonzero. Latencies are recorded both exactly (for
// p50/p95/p99/max) and into an obs histogram whose snapshot rides along in
// the -json report next to the server's own /v1/status.
//
// With -stamp-traces every request carries a client-chosen trace ID in
// X-Uninet-Trace (deterministic under -trace-seed), so the per-node JSONL
// trace files can be joined back to individual load-generator requests with
// `uninet trace`. A tracing server echoes the trace ID on the response; the
// report counts how many stamped requests were echoed back joined, and
// -assert-trace-joins turns zero joins into a nonzero exit.
//
// Cluster mode (-peers A1,A2,...) spreads requests round-robin across the
// nodes with client-side failover: a transport error moves the request to
// the next peer instead of failing it. The report then splits by serving
// node and by route (X-Uninet-Route: local|forwarded|fallback), and every
// 200 response is consistency-checked — two answers for the same request
// tuple must be byte-identical (modulo the cached flag), whichever node
// computed them; any divergence is an error. The chaos soak (-chaos NAME
// with -pids P1,P2,... aligned to -peers) replays a seeded
// faults.ClusterScenario against the live cluster, SIGKILLing victims on
// schedule mid-run while the generator keeps firing.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/faults"
	"universalnet/internal/obs"
	"universalnet/internal/service"
)

// opts bundles the generator's knobs.
type opts struct {
	addr     string
	endpoint string
	mode     string
	c        int
	rps      float64
	duration time.Duration

	topology string
	n        int
	m        int
	steps    int
	deg      int
	seeds    int64
	seedBase int64
	deadline int

	jsonOut bool

	peers     []string
	chaos     string
	chaosSeed int64
	pids      []int

	stampTraces bool
	traceSeed   int64

	assertRejections bool
	assertCacheHits  bool
	assertForwards   bool
	assertFailovers  bool
	assertTraceJoins bool
	assertMaxP99MS   float64
}

func main() {
	var o opts
	fs := flag.NewFlagSet("uninetload", flag.ExitOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8214", "server address (host:port or http URL)")
	fs.StringVar(&o.endpoint, "endpoint", "simulate", "request kind: simulate|route|embed|mix")
	fs.StringVar(&o.mode, "mode", "closed", "generator discipline: closed|open")
	fs.IntVar(&o.c, "c", 4, "closed-loop concurrency (workers with one request in flight each)")
	fs.Float64Var(&o.rps, "rps", 50, "open-loop arrival rate (requests per second)")
	fs.DurationVar(&o.duration, "duration", 2*time.Second, "how long to generate load")
	fs.StringVar(&o.topology, "topology", "torus", "host topology: torus|ring|expander|butterfly|ccc")
	fs.IntVar(&o.n, "n", 64, "guest size (simulate/embed)")
	fs.IntVar(&o.m, "m", 16, "host size (or dimension for butterfly/ccc)")
	fs.IntVar(&o.steps, "steps", 4, "guest steps per simulate request")
	fs.IntVar(&o.deg, "deg", 4, "guest degree")
	fs.Int64Var(&o.seeds, "seeds", 1, "number of distinct seeds to cycle through (1 = maximal cache reuse)")
	fs.Int64Var(&o.seedBase, "seed-base", 1, "first seed of the cycle")
	fs.IntVar(&o.deadline, "deadline-ms", 0, "per-request deadline in ms (0 = server default)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON on stdout")
	peers := fs.String("peers", "", "comma-separated cluster node addresses; round-robin with client-side failover")
	fs.StringVar(&o.chaos, "chaos", "", "cluster chaos scenario: "+strings.Join(faults.ClusterScenarioNames(), "|")+" (kill events need -pids)")
	fs.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed of the chaos scenario's deterministic schedule")
	pids := fs.String("pids", "", "comma-separated server PIDs aligned with -peers, targets of chaos kill events")
	fs.BoolVar(&o.stampTraces, "stamp-traces", false, "stamp every request with a client-chosen X-Uninet-Trace ID")
	fs.Int64Var(&o.traceSeed, "trace-seed", 1, "seed of the deterministic stamped trace-ID stream")
	fs.BoolVar(&o.assertRejections, "assert-rejections", false, "exit nonzero unless at least one request was rejected (429)")
	fs.BoolVar(&o.assertCacheHits, "assert-cache-hits", false, "exit nonzero unless the server reports result-cache hits")
	fs.BoolVar(&o.assertForwards, "assert-forwards", false, "exit nonzero unless at least one response was peer-forwarded")
	fs.BoolVar(&o.assertFailovers, "assert-failovers", false, "exit nonzero unless at least one response was a local fallback")
	fs.BoolVar(&o.assertTraceJoins, "assert-trace-joins", false, "exit nonzero unless at least one stamped trace ID was echoed back (needs -stamp-traces)")
	fs.Float64Var(&o.assertMaxP99MS, "assert-max-p99-ms", 0, "exit nonzero when p99 latency exceeds this many ms (0 = off)")
	_ = fs.Parse(os.Args[1:])
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			o.peers = append(o.peers, p)
		}
	}
	if *pids != "" {
		for _, s := range strings.Split(*pids, ",") {
			pid, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "uninetload: bad -pids entry:", err)
				os.Exit(2)
			}
			o.pids = append(o.pids, pid)
		}
	}

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uninetload:", err)
		os.Exit(1)
	}
}

// latencyBuckets bounds the load generator's latency histogram in
// microseconds — client-side latencies for cached answers are far below a
// millisecond, so the service's ms buckets would flatten them.
var latencyBuckets = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000, 5000000}

// outcome tallies one request's fate.
type outcome struct {
	latencyUS int64
	status    int // 0 = transport error
	cached    bool
	err       error
	target    string // node the request was (finally) sent to
	route     string // X-Uninet-Route: local|forwarded|fallback ("" single-node)
	key       string // request tuple, the consistency-check unit
	body      []byte // 200 response body (consistency fingerprinting)
	failovers int    // client-side peer switches before an answer
	sentTrace string // stamped X-Uninet-Trace trace ID ("" unstamped)
	echoTrace string // trace ID the server echoed back ("" when not tracing)
}

// nodeReport is one serving node's latency/volume split in cluster mode.
type nodeReport struct {
	Node     string  `json:"node"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// report is the end-of-run summary (also the -json document).
type report struct {
	Endpoint   string  `json:"endpoint"`
	Mode       string  `json:"mode"`
	DurationS  float64 `json:"duration_s"`
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Cached     int     `json:"cached"`
	Rejected   int     `json:"rejected"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_rps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`

	// Cluster-mode splits: how the 200s were served, per X-Uninet-Route.
	RouteLocal      int          `json:"route_local,omitempty"`
	RouteForwarded  int          `json:"route_forwarded,omitempty"`
	RouteFallback   int          `json:"route_fallback,omitempty"`
	ClientFailovers int          `json:"client_failovers,omitempty"`
	Inconsistent    int          `json:"inconsistent,omitempty"`
	TraceStamped    int          `json:"trace_stamped,omitempty"`
	TraceJoined     int          `json:"trace_joined,omitempty"`
	TraceMismatched int          `json:"trace_mismatched,omitempty"`
	PerNode         []nodeReport `json:"per_node,omitempty"`
	ChaosApplied    []string     `json:"chaos_applied,omitempty"`

	Client  *obs.Snapshot              `json:"client,omitempty"`
	Server  json.RawMessage            `json:"server,omitempty"`
	Servers map[string]json.RawMessage `json:"servers,omitempty"`
}

func run(o opts, out io.Writer) error {
	switch o.mode {
	case "closed", "open":
	default:
		return fmt.Errorf("unknown -mode %q (closed|open)", o.mode)
	}
	switch o.endpoint {
	case "simulate", "route", "embed", "mix":
	default:
		return fmt.Errorf("unknown -endpoint %q (simulate|route|embed|mix)", o.endpoint)
	}
	if o.seeds < 1 {
		o.seeds = 1
	}
	targets := []string{normalizeBase(o.addr)}
	if len(o.peers) > 0 {
		targets = targets[:0]
		for _, p := range o.peers {
			targets = append(targets, normalizeBase(p))
		}
	}
	if o.chaos != "" && len(o.peers) == 0 {
		return fmt.Errorf("-chaos requires -peers")
	}
	var plan *faults.ClusterPlan
	if o.chaos != "" {
		var err error
		plan, err = faults.ClusterScenario(o.chaos, o.chaosSeed, len(targets), int(o.duration.Milliseconds()))
		if err != nil {
			return err
		}
		if len(plan.Events) > 0 && len(o.pids) != len(targets) {
			return fmt.Errorf("-chaos %s schedules node events: need -pids with one PID per peer (%d peers, %d pids)",
				o.chaos, len(targets), len(o.pids))
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	reg := obs.New()
	hist := reg.Histogram("load.latency_us", latencyBuckets)

	var (
		mu       sync.Mutex
		outcomes []outcome
		seq      int64
	)
	record := func(oc outcome) {
		hist.Observe(oc.latencyUS)
		switch {
		case oc.status == http.StatusOK:
			reg.Counter("load.ok").Inc()
		case oc.status == http.StatusTooManyRequests:
			reg.Counter("load.rejected").Inc()
		default:
			reg.Counter("load.errors").Inc()
		}
		mu.Lock()
		outcomes = append(outcomes, oc)
		mu.Unlock()
	}
	next := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		seq++
		return seq
	}

	// One trace ID per logical request — failover retries reuse it, because
	// the dead attempt never produced spans to collide with.
	var ids *obs.IDSource
	if o.stampTraces {
		ids = obs.NewIDSource(o.traceSeed)
	}

	start := time.Now()
	stop := start.Add(o.duration)
	fire := func(i int64) outcome {
		var traceHdr string
		if ids != nil {
			traceHdr = obs.SpanContext{Trace: ids.TraceID()}.HeaderValue()
		}
		return shootFailover(client, targets, o, i, traceHdr)
	}

	// The chaos driver replays the plan's node events against the live
	// cluster while traffic flows.
	var chaosApplied []string
	var chaosMu sync.Mutex
	chaosDone := make(chan struct{})
	if plan != nil && len(plan.Events) > 0 {
		go func() {
			defer close(chaosDone)
			for _, ev := range plan.Events {
				at := start.Add(time.Duration(ev.AtMS) * time.Millisecond)
				if d := time.Until(at); d > 0 {
					time.Sleep(d)
				}
				if time.Now().After(stop) {
					return
				}
				note := applyNodeEvent(ev, o.pids, o.peers)
				chaosMu.Lock()
				chaosApplied = append(chaosApplied, note)
				chaosMu.Unlock()
				fmt.Fprintln(os.Stderr, "uninetload: chaos:", note)
			}
		}()
	} else {
		close(chaosDone)
	}

	var wg sync.WaitGroup
	if o.mode == "closed" {
		for w := 0; w < o.c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					record(fire(next()))
				}
			}()
		}
	} else {
		interval := time.Duration(float64(time.Second) / o.rps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for time.Now().Before(stop) {
			<-ticker.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				record(fire(next()))
			}()
		}
	}
	wg.Wait()
	<-chaosDone
	elapsed := time.Since(start)

	rep := summarize(o, outcomes, elapsed)
	chaosMu.Lock()
	rep.ChaosApplied = chaosApplied
	chaosMu.Unlock()
	rep.Client = reg.Snapshot()
	if len(targets) == 1 {
		if raw, err := fetchStatus(client, targets[0]); err == nil {
			rep.Server = raw
		}
	} else {
		rep.Servers = make(map[string]json.RawMessage)
		for i, t := range targets {
			if raw, err := fetchStatus(client, t); err == nil {
				rep.Servers[o.peers[i]] = raw
			}
		}
	}

	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(out, rep)
	}

	if rep.Errors > 0 {
		return fmt.Errorf("%d requests failed", rep.Errors)
	}
	if rep.Inconsistent > 0 {
		return fmt.Errorf("%d inconsistent responses: the same request tuple got different answers", rep.Inconsistent)
	}
	if o.assertRejections && rep.Rejected == 0 {
		return fmt.Errorf("assert-rejections: no request was rejected (429)")
	}
	if o.assertForwards && rep.RouteForwarded == 0 {
		return fmt.Errorf("assert-forwards: no response was peer-forwarded")
	}
	if o.assertFailovers && rep.RouteFallback == 0 {
		return fmt.Errorf("assert-failovers: no response was served as a local fallback")
	}
	if rep.TraceMismatched > 0 {
		return fmt.Errorf("%d responses echoed a different trace ID than was stamped", rep.TraceMismatched)
	}
	if o.assertTraceJoins {
		if !o.stampTraces {
			return fmt.Errorf("assert-trace-joins needs -stamp-traces")
		}
		if rep.TraceJoined == 0 {
			return fmt.Errorf("assert-trace-joins: no stamped trace ID was echoed back (is the server tracing?)")
		}
	}
	if o.assertMaxP99MS > 0 && rep.P99MS > o.assertMaxP99MS {
		return fmt.Errorf("assert-max-p99-ms: p99 %.3fms exceeds bound %.3fms", rep.P99MS, o.assertMaxP99MS)
	}
	if o.assertCacheHits {
		raw := rep.Server
		if len(raw) == 0 {
			for _, s := range rep.Servers {
				raw = s
				break
			}
		}
		hits, err := serverCacheHits(raw)
		if err != nil {
			return fmt.Errorf("assert-cache-hits: %w", err)
		}
		if hits == 0 {
			return fmt.Errorf("assert-cache-hits: server reports zero result-cache hits")
		}
	}
	return nil
}

// normalizeBase turns host:port or a URL into a scheme-qualified base.
func normalizeBase(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// applyNodeEvent executes one chaos event against the live cluster. Kill is
// SIGKILL — no warning, no drain, exactly the failure mode the failover path
// exists for. Restart needs a supervisor and is reported unapplied.
func applyNodeEvent(ev faults.NodeEvent, pids []int, peers []string) string {
	name := fmt.Sprintf("node %d", ev.Node)
	if ev.Node < len(peers) {
		name = peers[ev.Node]
	}
	if ev.Kind != "kill" {
		return fmt.Sprintf("%s @%dms on %s skipped (needs an external supervisor)", ev.Kind, ev.AtMS, name)
	}
	if ev.Node >= len(pids) {
		return fmt.Sprintf("kill @%dms on %s skipped (no PID)", ev.AtMS, name)
	}
	proc, err := os.FindProcess(pids[ev.Node])
	if err == nil {
		err = proc.Kill()
	}
	if err != nil {
		return fmt.Sprintf("kill @%dms on %s (pid %d) failed: %v", ev.AtMS, name, pids[ev.Node], err)
	}
	return fmt.Sprintf("killed %s (pid %d) @%dms", name, pids[ev.Node], ev.AtMS)
}

// shootFailover fires request i at its round-robin target, moving to the
// next peer on a transport error — the client-side half of fault tolerance:
// a dead node costs one connection refusal, not a failed request. Any HTTP
// response settles the request (the serving tier already did its own
// forwarding/fallback).
func shootFailover(client *http.Client, targets []string, o opts, i int64, traceHdr string) outcome {
	first := int(i % int64(len(targets)))
	var oc outcome
	for k := 0; k < len(targets); k++ {
		oc = shoot(client, targets[(first+k)%len(targets)], o, i, traceHdr)
		oc.failovers = k
		if oc.err == nil {
			return oc
		}
	}
	return oc
}

// shoot fires one request and measures it. The i-th request derives its
// seed from the cycle, so -seeds 1 replays one cache key forever while a
// large -seeds forces fresh computations. A nonempty traceHdr is stamped
// into X-Uninet-Trace so the server joins its spans to our trace ID.
func shoot(client *http.Client, base string, o opts, i int64, traceHdr string) outcome {
	kind := o.endpoint
	if kind == "mix" {
		kind = []string{"simulate", "route", "embed"}[i%3]
	}
	seed := o.seedBase + i%o.seeds
	var body map[string]any
	switch kind {
	case "simulate":
		body = map[string]any{"topology": o.topology, "n": o.n, "m": o.m, "seed": seed, "steps": o.steps, "guest_degree": o.deg}
	case "route":
		body = map[string]any{"topology": o.topology, "m": o.m, "seed": seed}
	case "embed":
		body = map[string]any{"topology": o.topology, "n": o.n, "m": o.m, "seed": seed, "guest_degree": o.deg}
	}
	if o.deadline > 0 {
		body["deadline_ms"] = o.deadline
	}
	buf, _ := json.Marshal(body)

	req, err := http.NewRequest(http.MethodPost, base+"/v1/"+kind, bytes.NewReader(buf))
	if err != nil {
		return outcome{err: err, target: base}
	}
	req.Header.Set("Content-Type", "application/json")
	if traceHdr != "" {
		req.Header.Set(cluster.TraceHeader, traceHdr)
	}

	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0).Microseconds()
	if err != nil {
		return outcome{latencyUS: lat, err: err, target: base, sentTrace: traceHdr}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var res struct {
		Cached bool `json:"cached"`
	}
	_ = json.Unmarshal(raw, &res)
	node := resp.Header.Get(service.HeaderNode)
	if node == "" {
		node = base
	}
	oc := outcome{
		latencyUS: lat,
		status:    resp.StatusCode,
		cached:    res.Cached,
		target:    node,
		route:     resp.Header.Get(service.HeaderRoute),
		key:       fmt.Sprintf("%s|%d", kind, seed),
		sentTrace: traceHdr,
		echoTrace: resp.Header.Get(cluster.TraceHeader),
	}
	if resp.StatusCode == http.StatusOK {
		oc.body = raw
	}
	return oc
}

// fingerprint canonicalizes a 200 response body for the consistency check:
// the decoded document minus the fields that legitimately differ by serving
// path (cache state), re-marshaled with Go's sorted map keys.
func fingerprint(body []byte) string {
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return string(body)
	}
	delete(doc, "cached")
	out, err := json.Marshal(doc)
	if err != nil {
		return string(body)
	}
	return string(out)
}

// summarize folds the raw outcomes into the report. Percentiles are exact
// (nearest-rank over the sorted successful-request latencies).
func summarize(o opts, outcomes []outcome, elapsed time.Duration) report {
	rep := report{
		Endpoint:  o.endpoint,
		Mode:      o.mode,
		DurationS: elapsed.Seconds(),
		Requests:  len(outcomes),
	}
	var lats []int64
	perNode := map[string][]int64{}
	perNodeTotal := map[string]int{}
	first := map[string]string{} // request tuple → first fingerprint seen
	for _, oc := range outcomes {
		if oc.target != "" {
			perNodeTotal[oc.target]++
		}
		rep.ClientFailovers += oc.failovers
		if oc.sentTrace != "" {
			rep.TraceStamped++
			if oc.status == http.StatusOK {
				switch oc.echoTrace {
				case oc.sentTrace:
					rep.TraceJoined++
				case "":
					// Server not tracing — stamped but unjoined, not an error.
				default:
					rep.TraceMismatched++
				}
			}
		}
		switch {
		case oc.status == http.StatusOK:
			rep.OK++
			if oc.cached {
				rep.Cached++
			}
			lats = append(lats, oc.latencyUS)
			perNode[oc.target] = append(perNode[oc.target], oc.latencyUS)
			switch oc.route {
			case "forwarded":
				rep.RouteForwarded++
			case "fallback":
				rep.RouteFallback++
			case "local":
				rep.RouteLocal++
			}
			if oc.key != "" && len(oc.body) > 0 {
				fp := fingerprint(oc.body)
				if prev, ok := first[oc.key]; !ok {
					first[oc.key] = fp
				} else if prev != fp {
					rep.Inconsistent++
				}
			}
		case oc.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50MS = float64(quantile(lats, 0.50)) / 1000
		rep.P95MS = float64(quantile(lats, 0.95)) / 1000
		rep.P99MS = float64(quantile(lats, 0.99)) / 1000
		rep.MaxMS = float64(lats[len(lats)-1]) / 1000
	}
	if len(o.peers) > 0 {
		nodes := make([]string, 0, len(perNodeTotal))
		for n := range perNodeTotal {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			ls := perNode[n]
			nr := nodeReport{Node: n, Requests: perNodeTotal[n], OK: len(ls)}
			if len(ls) > 0 {
				sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
				nr.P50MS = float64(quantile(ls, 0.50)) / 1000
				nr.P95MS = float64(quantile(ls, 0.95)) / 1000
				nr.P99MS = float64(quantile(ls, 0.99)) / 1000
				nr.MaxMS = float64(ls[len(ls)-1]) / 1000
			}
			rep.PerNode = append(rep.PerNode, nr)
		}
	}
	return rep
}

// quantile is the nearest-rank quantile of an ascending slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func printReport(out io.Writer, rep report) {
	fmt.Fprintf(out, "uninetload: %s/%s  %.2fs  %d requests (%.1f ok/s)\n",
		rep.Endpoint, rep.Mode, rep.DurationS, rep.Requests, rep.Throughput)
	fmt.Fprintf(out, "  ok %d (cached %d)  rejected %d  errors %d\n",
		rep.OK, rep.Cached, rep.Rejected, rep.Errors)
	fmt.Fprintf(out, "  latency ms  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
		rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	if rep.TraceStamped > 0 {
		fmt.Fprintf(out, "  traces  stamped %d  joined %d  mismatched %d\n",
			rep.TraceStamped, rep.TraceJoined, rep.TraceMismatched)
	}
	if len(rep.PerNode) > 0 {
		fmt.Fprintf(out, "  routes  local %d  forwarded %d  fallback %d  client-failovers %d  inconsistent %d\n",
			rep.RouteLocal, rep.RouteForwarded, rep.RouteFallback, rep.ClientFailovers, rep.Inconsistent)
		for _, nr := range rep.PerNode {
			fmt.Fprintf(out, "  node %-22s %5d req  %5d ok  p50 %.3f  p99 %.3f  max %.3f\n",
				nr.Node, nr.Requests, nr.OK, nr.P50MS, nr.P99MS, nr.MaxMS)
		}
	}
	for _, note := range rep.ChaosApplied {
		fmt.Fprintf(out, "  chaos  %s\n", note)
	}
}

// fetchStatus grabs the server's /v1/status document verbatim.
func fetchStatus(client *http.Client, base string) (json.RawMessage, error) {
	resp, err := client.Get(base + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// serverCacheHits digs the result-cache hit counter out of a /v1/status
// document.
func serverCacheHits(raw json.RawMessage) (int64, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("no /v1/status document was captured")
	}
	var st struct {
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, err
	}
	return st.Cache.Hits, nil
}
