package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"universalnet/internal/cluster"
)

// TestSummarizeClusterSplits: route counts, per-node percentiles, client
// failovers, and the consistency check all fold out of raw outcomes.
func TestSummarizeClusterSplits(t *testing.T) {
	o := opts{endpoint: "simulate", mode: "closed", peers: []string{"a:1", "b:2"}}
	ocs := []outcome{
		{status: 200, latencyUS: 1000, target: "a:1", route: "local", key: "simulate|1", body: []byte(`{"checksum":7,"cached":false}`)},
		{status: 200, latencyUS: 3000, target: "b:2", route: "forwarded", key: "simulate|1", body: []byte(`{"checksum":7,"cached":true}`), cached: true},
		{status: 200, latencyUS: 2000, target: "a:1", route: "fallback", key: "simulate|2", body: []byte(`{"checksum":9,"cached":false}`), failovers: 1},
		{status: 429, latencyUS: 100, target: "b:2"},
		{status: 0, latencyUS: 50, target: "a:1", err: http.ErrHandlerTimeout},
	}
	rep := summarize(o, ocs, time.Second)
	if rep.OK != 3 || rep.Rejected != 1 || rep.Errors != 1 || rep.Cached != 1 {
		t.Fatalf("ok/rejected/errors/cached = %d/%d/%d/%d", rep.OK, rep.Rejected, rep.Errors, rep.Cached)
	}
	if rep.RouteLocal != 1 || rep.RouteForwarded != 1 || rep.RouteFallback != 1 {
		t.Fatalf("route splits = %d/%d/%d", rep.RouteLocal, rep.RouteForwarded, rep.RouteFallback)
	}
	if rep.ClientFailovers != 1 {
		t.Fatalf("client failovers = %d, want 1", rep.ClientFailovers)
	}
	if rep.Inconsistent != 0 {
		t.Fatalf("inconsistent = %d: identical checksums must agree despite cached flag", rep.Inconsistent)
	}
	if len(rep.PerNode) != 2 || rep.PerNode[0].Node != "a:1" || rep.PerNode[1].Node != "b:2" {
		t.Fatalf("per-node rows = %+v", rep.PerNode)
	}
	if rep.PerNode[0].Requests != 3 || rep.PerNode[0].OK != 2 {
		t.Fatalf("node a:1 = %+v, want 3 req / 2 ok", rep.PerNode[0])
	}
	if rep.PerNode[1].MaxMS != 3.0 {
		t.Fatalf("node b:2 max = %v ms, want 3.0", rep.PerNode[1].MaxMS)
	}
}

// TestSummarizeInconsistent: two different answers for one request tuple —
// the split-brain symptom the chaos soak exists to rule out — must be
// counted.
func TestSummarizeInconsistent(t *testing.T) {
	o := opts{peers: []string{"a:1"}}
	ocs := []outcome{
		{status: 200, latencyUS: 1, target: "a:1", key: "simulate|1", body: []byte(`{"checksum":7}`)},
		{status: 200, latencyUS: 1, target: "a:1", key: "simulate|1", body: []byte(`{"checksum":8}`)},
	}
	if rep := summarize(o, ocs, time.Second); rep.Inconsistent != 1 {
		t.Fatalf("inconsistent = %d, want 1", rep.Inconsistent)
	}
}

// TestFingerprint pins the canonicalization: the cached flag is ignored,
// field order is not significant, and any payload difference shows.
func TestFingerprint(t *testing.T) {
	a := fingerprint([]byte(`{"checksum":7,"cached":true,"host":"torus"}`))
	b := fingerprint([]byte(`{"host":"torus","cached":false,"checksum":7}`))
	if a != b {
		t.Fatalf("equivalent bodies fingerprint differently:\n%s\n%s", a, b)
	}
	if c := fingerprint([]byte(`{"checksum":8,"host":"torus"}`)); c == a {
		t.Fatal("different checksums collide")
	}
}

// TestSummarizeTraceJoins: stamped requests split into joined (echo matches),
// unjoined (server not tracing), and mismatched (propagation bug).
func TestSummarizeTraceJoins(t *testing.T) {
	id1, id2 := "0123456789abcdef0123456789abcdef", "fedcba9876543210fedcba9876543210"
	ocs := []outcome{
		{status: 200, latencyUS: 1, sentTrace: id1, echoTrace: id1},
		{status: 200, latencyUS: 1, sentTrace: id2, echoTrace: ""},
		{status: 200, latencyUS: 1, sentTrace: id1, echoTrace: id2},
		{status: 429, latencyUS: 1, sentTrace: id2, echoTrace: id2}, // non-200: stamped only
		{status: 200, latencyUS: 1},                                 // unstamped
	}
	rep := summarize(opts{}, ocs, time.Second)
	if rep.TraceStamped != 4 || rep.TraceJoined != 1 || rep.TraceMismatched != 1 {
		t.Fatalf("stamped/joined/mismatched = %d/%d/%d, want 4/1/1",
			rep.TraceStamped, rep.TraceJoined, rep.TraceMismatched)
	}
}

// TestShootStampsTraceHeader: the wire side — a stamped request carries
// X-Uninet-Trace, distinct requests carry distinct IDs, and the echoed
// header lands in the outcome.
func TestShootStampsTraceHeader(t *testing.T) {
	var seen []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hdr := r.Header.Get(cluster.TraceHeader)
		seen = append(seen, hdr)
		w.Header().Set(cluster.TraceHeader, hdr)
		w.Write([]byte(`{"cached":false}`))
	}))
	defer srv.Close()

	o := opts{endpoint: "simulate", topology: "torus", n: 8, m: 4, steps: 1, deg: 2, seeds: 1, seedBase: 1}
	client := srv.Client()

	oc := shoot(client, srv.URL, o, 0, "")
	if oc.sentTrace != "" || oc.echoTrace != "" || seen[0] != "" {
		t.Fatalf("unstamped request leaked a trace header: %+v seen=%q", oc, seen[0])
	}

	ocA := shoot(client, srv.URL, o, 1, "0123456789abcdef0123456789abcdef")
	if seen[1] != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("server saw %q, want the stamped trace", seen[1])
	}
	if ocA.echoTrace != ocA.sentTrace {
		t.Fatalf("echo %q != sent %q", ocA.echoTrace, ocA.sentTrace)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	lats := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.0, 10}} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("empty slice must yield 0")
	}
}
