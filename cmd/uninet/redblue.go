package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"universalnet/internal/experiments"
	"universalnet/internal/pebble"
	"universalnet/internal/redblue"
	"universalnet/internal/topology"
)

// redblueRow is one priced replay in the sweep, in JSON field order.
type redblueRow struct {
	R         int     `json:"r"` // 0 = unbounded
	Policy    string  `json:"policy"`
	HostSteps int     `json:"host_steps"`
	Compute   int64   `json:"compute"`
	Stores    int64   `json:"stores"`
	ColdLoads int64   `json:"cold_loads"`
	Reloads   int64   `json:"reloads"`
	IOSteps   int64   `json:"io_steps"`
	PeakRed   int     `json:"peak_red"`
	Makespan  int64   `json:"makespan"`
	Slowdown  float64 `json:"costed_slowdown"`
}

// cmdRedblue builds an embedding protocol and replays it under the
// multiprocessor red-blue cost model (arXiv:2409.03898) across a red-budget
// sweep and the built-in eviction policies, printing the memory ×
// communication × slowdown surface. -assert-monotone-io turns the
// qualitative trade-off into a hard exit code: for every policy, I/O must
// strictly shrink as r grows while compute stays constant — the assertion
// `make redblue-smoke` gates CI on.
func cmdRedblue(args []string) error {
	fs := flag.NewFlagSet("redblue", flag.ExitOnError)
	n := fs.Int("n", 48, "guest size")
	deg := fs.Int("deg", 2, "guest degree")
	hostDim := fs.Int("hostdim", 3, "wrapped-butterfly host dimension")
	steps := fs.Int("steps", 3, "guest steps")
	seed := fs.Int64("seed", 1, "random seed (guest build and random-policy evictions)")
	rList := fs.String("r", "", "comma-separated red budgets; 0 = unbounded (default: minred,minred+2,minred+4,0)")
	policy := fs.String("policy", "all", "eviction policy: lru|random|belady|all")
	ioCost := fs.Int64("iocost", 1, "charge per red↔blue transfer")
	computeCost := fs.Int64("computecost", 1, "charge per generate")
	jsonOut := fs.Bool("json", false, "emit one JSON object with the sweep")
	assertMonotone := fs.Bool("assert-monotone-io", false, "exit non-zero unless shrinking r strictly grows I/O with constant compute, per policy")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	guest, err := topology.RandomGuest(rng, *n, *deg)
	if err != nil {
		return err
	}
	host, err := topology.WrappedButterfly(*hostDim)
	if err != nil {
		return err
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, *steps)
	if err != nil {
		return err
	}
	sp := pr.Spec()
	minR := redblue.MinRed(sp)

	var budgets []int
	if *rList == "" {
		budgets = []int{minR, minR + 2, minR + 4, 0}
	} else {
		for _, s := range strings.Split(*rList, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -r entry %q: %w", s, err)
			}
			budgets = append(budgets, r)
		}
	}

	var policies []string
	if *policy == "all" {
		policies = redblue.PolicyNames()
	} else {
		policies = []string{*policy}
	}

	model := redblue.CostModel{IOCost: *ioCost, ComputeCost: *computeCost}
	var rows []redblueRow
	for _, r := range budgets {
		model.R = r
		for _, polName := range policies {
			pol, err := redblue.NewPolicy(polName, sp, pr.Steps, uint64(*seed))
			if err != nil {
				return err
			}
			costs, err := redblue.ReplayCosted(sp, pr.Source(), model, pol, redblue.Options{})
			if err != nil {
				return fmt.Errorf("replay r=%d policy=%s: %w", r, polName, err)
			}
			rows = append(rows, redblueRow{
				R: r, Policy: polName,
				HostSteps: costs.HostSteps,
				Compute:   costs.Compute,
				Stores:    costs.Stores,
				ColdLoads: costs.ColdLoads,
				Reloads:   costs.Reloads,
				IOSteps:   costs.IOSteps,
				PeakRed:   costs.PeakRed,
				Makespan:  costs.Makespan,
				Slowdown:  costs.CostedSlowdown(model, sp.T),
			})
		}
	}

	var assertErr error
	if *assertMonotone {
		assertErr = checkMonotoneIO(rows)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := map[string]any{
			"n": *n, "m": host.N(), "t": sp.T, "min_red": minR,
			"io_cost": *ioCost, "compute_cost": *computeCost,
			"rows": rows,
		}
		if *assertMonotone {
			out["monotone_io"] = assertErr == nil
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		tab := &experiments.Table{
			Title: fmt.Sprintf("red-blue surface: n=%d guest on m=%d host, T=%d, min feasible r=%d",
				*n, host.N(), sp.T, minR),
			Columns: []string{"r", "policy", "host steps", "compute", "stores", "cold loads", "reloads", "io", "peak red", "makespan", "costed s"},
		}
		for _, row := range rows {
			rs := fmt.Sprint(row.R)
			if row.R == 0 {
				rs = "∞"
			}
			tab.Rows = append(tab.Rows, []string{
				rs, row.Policy, fmt.Sprint(row.HostSteps), fmt.Sprint(row.Compute),
				fmt.Sprint(row.Stores), fmt.Sprint(row.ColdLoads), fmt.Sprint(row.Reloads),
				fmt.Sprint(row.IOSteps), fmt.Sprint(row.PeakRed), fmt.Sprint(row.Makespan),
				fmt.Sprintf("%.2f", row.Slowdown),
			})
		}
		fmt.Println(tab.String())
		if *assertMonotone && assertErr == nil {
			fmt.Println("monotone-io assertion: ok (I/O strictly grows as r shrinks, compute constant)")
		}
	}
	return assertErr
}

// checkMonotoneIO verifies, per policy, that over the bounded budgets in
// the sweep I/O strictly shrinks as r grows while compute and stores stay
// constant, and that every unbounded run reloads nothing.
func checkMonotoneIO(rows []redblueRow) error {
	byPolicy := map[string][]redblueRow{}
	for _, row := range rows {
		byPolicy[row.Policy] = append(byPolicy[row.Policy], row)
	}
	for pol, prs := range byPolicy {
		bounded := prs[:0:0]
		for _, row := range prs {
			if row.Compute != prs[0].Compute || row.Stores != prs[0].Stores {
				return fmt.Errorf("assert-monotone-io: %s: compute/stores vary across r (%d/%d vs %d/%d)",
					pol, row.Compute, row.Stores, prs[0].Compute, prs[0].Stores)
			}
			if row.R == 0 {
				if row.Reloads != 0 {
					return fmt.Errorf("assert-monotone-io: %s: unbounded run reloads %d times", pol, row.Reloads)
				}
				continue
			}
			bounded = append(bounded, row)
		}
		sort.Slice(bounded, func(i, j int) bool { return bounded[i].R < bounded[j].R })
		for i := 1; i < len(bounded); i++ {
			if bounded[i].IOSteps >= bounded[i-1].IOSteps {
				return fmt.Errorf("assert-monotone-io: %s: io at r=%d (%d) not strictly below r=%d (%d)",
					pol, bounded[i].R, bounded[i].IOSteps, bounded[i-1].R, bounded[i-1].IOSteps)
			}
		}
	}
	return nil
}
