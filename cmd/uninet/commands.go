package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"universalnet/internal/core"
	"universalnet/internal/depgraph"
	"universalnet/internal/expander"
	"universalnet/internal/experiments"
	"universalnet/internal/faults"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// buildTopo constructs the named topology.
func buildTopo(kind string, n, d, a, deg int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "mesh":
		return topology.Mesh(n)
	case "torus":
		return topology.Torus(n)
	case "multitorus":
		return topology.Multitorus(a, n)
	case "butterfly":
		return topology.Butterfly(d)
	case "wbutterfly":
		return topology.WrappedButterfly(d)
	case "ccc":
		return topology.CubeConnectedCycles(d)
	case "se":
		return topology.ShuffleExchange(d)
	case "debruijn":
		return topology.DeBruijn(d)
	case "hypercube":
		return topology.Hypercube(d)
	case "regular":
		return topology.RandomRegular(rand.New(rand.NewSource(seed)), n, deg)
	case "g0":
		g0, err := topology.BuildG0WithBlockSide(n, a, seed)
		if err != nil {
			return nil, err
		}
		return g0.Graph, nil
	case "ring":
		return topology.Ring(n)
	case "complete":
		return topology.Complete(n)
	}
	return nil, fmt.Errorf("unknown topology kind %q", kind)
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	kind := fs.String("kind", "torus", "topology kind")
	n := fs.Int("n", 64, "number of vertices (where applicable)")
	d := fs.Int("d", 4, "dimension (butterfly/ccc/se/debruijn/hypercube)")
	a := fs.Int("a", 4, "block side (multitorus/g0)")
	deg := fs.Int("deg", 4, "degree (random regular)")
	seed := fs.Int64("seed", 1, "random seed")
	save := fs.String("save", "", "write the graph as JSON to this file")
	load := fs.String("load", "", "load a graph JSON instead of constructing one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		g   *graph.Graph
		err error
	)
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			return ferr
		}
		g, err = graph.ReadJSON(f)
		f.Close()
		*kind = *load
	} else {
		g, err = buildTopo(*kind, *n, *d, *a, *deg, *seed)
	}
	if err != nil {
		return err
	}
	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			return ferr
		}
		if err := g.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("graph written to %s\n", *save)
	}
	fmt.Printf("topology %s: n=%d m=%d mindeg=%d maxdeg=%d connected=%v\n",
		*kind, g.N(), g.M(), g.MinDegree(), g.MaxDegree(), g.IsConnected())
	if g.N() <= 4096 {
		fmt.Printf("diameter=%d girth=%d\n", g.DiameterParallel(0), g.Girth())
	}
	if g.N() >= 4 && g.MinDegree() > 0 {
		lam, err := expander.SpectralGap(g, 300, *seed)
		if err == nil {
			fmt.Printf("lambda2=%.4f (normalized adjacency; gap=%.4f)\n", lam, 1-lam)
		}
	}
	return nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	kind := fs.String("kind", "torus", "topology kind")
	n := fs.Int("n", 64, "number of vertices")
	d := fs.Int("d", 4, "dimension")
	a := fs.Int("a", 4, "block side")
	deg := fs.Int("deg", 4, "degree")
	h := fs.Int("h", 2, "h of the h-h problem")
	trials := fs.Int("trials", 5, "random instances")
	seed := fs.Int64("seed", 1, "random seed")
	single := fs.Bool("singleport", false, "single-port node model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := buildTopo(*kind, *n, *d, *a, *deg, *seed)
	if err != nil {
		return err
	}
	mode := routing.MultiPort
	if *single {
		mode = routing.SinglePort
	}
	r := &routing.GreedyRouter{Mode: mode, Seed: *seed}
	res, err := routing.MeasureRoute(g, r, *h, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("route_%s(%d) over %d trials: %d steps (maxqueue=%d, hops=%d)\n",
		*kind, *h, *trials, res.Steps, res.MaxQueue, res.TotalHops)
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	hostKind := fs.String("host", "butterfly", "host kind: butterfly|torus|expander|ring")
	hostDim := fs.Int("hostdim", 4, "butterfly dimension")
	hostSize := fs.Int("hostsize", 64, "host size (torus/expander/ring)")
	n := fs.Int("n", 128, "guest size")
	deg := fs.Int("deg", 4, "guest degree")
	steps := fs.Int("steps", 5, "guest steps")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		host *universal.Host
		err  error
	)
	switch *hostKind {
	case "butterfly":
		host, err = universal.ButterflyHost(*hostDim)
	case "torus":
		host, err = universal.TorusHost(*hostSize)
	case "expander":
		host, err = universal.ExpanderHost(*hostSize, 4, *seed)
	case "ring":
		host, err = universal.RingHost(*hostSize)
	default:
		return fmt.Errorf("unknown host kind %q", *hostKind)
	}
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	guest, err := topology.RandomGuest(rng, *n, *deg)
	if err != nil {
		return err
	}
	comp := sim.MixMod(guest, rng)
	rep, err := (&universal.EmbeddingSimulator{Host: host}).Run(comp, *steps)
	if err != nil {
		return err
	}
	direct, err := comp.Run(*steps)
	if err != nil {
		return err
	}
	ok := rep.Trace.Checksum() == direct.Checksum()
	m := host.Graph.N()
	fmt.Printf("host=%s guest: n=%d %d-regular, T=%d\n", host.Name, *n, *deg, *steps)
	fmt.Printf("host steps=%d (compute=%d route=%d) load=%d\n",
		rep.HostSteps, rep.ComputeSteps, rep.RouteSteps, rep.MaxLoad)
	fmt.Printf("slowdown s=%.2f  inefficiency k=s·m/n=%.2f  trace-verified=%v\n",
		rep.Slowdown, rep.Inefficiency, ok)
	fmt.Printf("Theorem 2.1 form (n/m)·log2 m = %.2f\n", core.UpperBoundSlowdown(*n, m, 1))
	return nil
}

func cmdBound(args []string) error {
	fs := flag.NewFlagSet("bound", flag.ExitOnError)
	log2m := fs.Float64("log2m", 0, "log2 of the host size (overrides -m)")
	n := fs.Int("n", 1<<16, "guest size")
	m := fs.Int("m", 1<<12, "host size")
	toy := fs.Bool("toy", false, "use unit-scale constants instead of the paper's")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := core.Params{}.Defaults()
	label := "paper"
	if *toy {
		p = core.ToyParams()
		label = "toy"
	}
	if *log2m > 0 {
		k, err := p.KLowerBound(*log2m)
		if err != nil {
			return err
		}
		fmt.Printf("Theorem 3.1 (%s constants): log2 m = %.0f → k ≥ %.3f\n", label, *log2m, k)
		return nil
	}
	k, err := p.MinInefficiency(*n, *m)
	if err != nil {
		return err
	}
	s := k * float64(*n) / float64(*m)
	if s < 1 {
		s = 1
	}
	fmt.Printf("Theorem 3.1 (%s constants): n=%d m=%d → k ≥ %.3f, s ≥ %.3f, m·s ≥ %.0f (n·log2 m = %.0f)\n",
		label, *n, *m, k, s, float64(*m)*s, float64(*n)*log2(*m))
	return nil
}

func log2(x int) float64 {
	l := 0.0
	for v := x; v > 1; v >>= 1 {
		l++
	}
	return l
}

func cmdTradeoff(args []string) error {
	fs := flag.NewFlagSet("tradeoff", flag.ExitOnError)
	n := fs.Int("n", 1<<16, "guest size")
	msList := fs.String("ms", "256,1024,4096,16384,65536", "comma-separated host sizes")
	toy := fs.Bool("toy", false, "use unit-scale constants")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ms []int
	for _, part := range strings.Split(*msList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad host size %q: %w", part, err)
		}
		ms = append(ms, v)
	}
	p := core.Params{}.Defaults()
	if *toy {
		p = core.ToyParams()
	}
	tab, err := experiments.TradeoffTable(p, *n, ms)
	if err != nil {
		return err
	}
	fmt.Print(tab)
	return nil
}

func cmdPebble(args []string) error {
	fs := flag.NewFlagSet("pebble", flag.ExitOnError)
	n := fs.Int("n", 32, "guest size")
	deg := fs.Int("deg", 4, "guest degree")
	hostDim := fs.Int("hostdim", 3, "wrapped-butterfly host dimension")
	steps := fs.Int("steps", 4, "guest steps")
	seed := fs.Int64("seed", 1, "random seed")
	save := fs.String("save", "", "write the protocol as JSON to this file")
	load := fs.String("load", "", "load a protocol JSON instead of building one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pr *pebble.Protocol
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		pr, err = pebble.ReadJSON(f)
		if err != nil {
			return err
		}
		*n = pr.Guest.N()
		*steps = pr.T
	} else {
		rng := rand.New(rand.NewSource(*seed))
		guest, err := topology.RandomGuest(rng, *n, *deg)
		if err != nil {
			return err
		}
		host, err := topology.WrappedButterfly(*hostDim)
		if err != nil {
			return err
		}
		pr, err = pebble.BuildEmbeddingProtocol(guest, host, nil, *steps)
		if err != nil {
			return err
		}
	}
	st, err := pr.Validate()
	if err != nil {
		return err
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := pr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("protocol written to %s\n", *save)
	}
	host := pr.Host
	fmt.Printf("protocol: guest n=%d (%d-regular), host m=%d, T=%d\n", *n, *deg, host.N(), *steps)
	fmt.Printf("host steps T'=%d ops=%d slowdown=%.2f inefficiency k=%.2f\n",
		pr.HostSteps(), pr.OpCount(), pr.Slowdown(), pr.Inefficiency())
	for t := 0; t <= *steps; t++ {
		fmt.Printf("t=%d: Σ_i q_{i,t} = %d\n", t, st.TotalWeight(t))
	}
	t0 := *steps / 2
	frag, err := st.ExtractFragment(t0, st.PickLightest(t0))
	if err != nil {
		return err
	}
	maxD := 0
	for _, d := range frag.D {
		if len(d) > maxD {
			maxD = len(d)
		}
	}
	fmt.Printf("fragment at t0=%d: Σ|B_i|=%d max|D_i|=%d (valid=%v)\n",
		t0, frag.SumB(), maxD, frag.Validate() == nil)
	return nil
}

// cmdBigsim drives the streaming pipeline at sizes where materializing the
// protocol is off the table: builder, chunked archive, and sharded validator
// run concurrently, and the peak resident chunk bytes are reported (and
// optionally asserted — the bigsim-smoke CI gate uses that to pin the memory
// bound).
func cmdBigsim(args []string) error {
	fs := flag.NewFlagSet("bigsim", flag.ExitOnError)
	n := fs.Int("n", 100000, "guest size")
	deg := fs.Int("deg", 3, "guest degree")
	hostDim := fs.Int("hostdim", 5, "wrapped-butterfly host dimension")
	steps := fs.Int("steps", 2, "guest steps")
	shards := fs.Int("shards", 0, "validator shards (0 = GOMAXPROCS)")
	buildShards := fs.Int("build-shards", 0, "builder workers (0 = GOMAXPROCS/2, 1 = serial build)")
	window := fs.Int("window", 8, "pipe window in host steps")
	barrierWindow := fs.Int("barrier-window", 0, "validator host steps per barrier round (0 = default)")
	chunkKB := fs.Int("chunk-kb", 1024, "target chunk size in KiB")
	budgetKB := fs.Int("budget-kb", 8192, "resident chunk budget in KiB (0 = never spill)")
	seed := fs.Int64("seed", 1, "random seed")
	save := fs.String("save", "", "write the streamed protocol in binary form to this file")
	maxPeak := fs.Int64("assert-peak-bytes", 0, "fail if peak resident chunk bytes exceed this (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile after the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rng := rand.New(rand.NewSource(*seed))
	guest, err := topology.RandomGuest(rng, *n, *deg)
	if err != nil {
		return err
	}
	host, err := topology.WrappedButterfly(*hostDim)
	if err != nil {
		return err
	}
	chunks := pebble.NewChunkedLog(pebble.ChunkedLogOptions{
		TargetChunkBytes: *chunkKB << 10,
		MemBudgetBytes:   int64(*budgetKB) << 10,
	})
	defer chunks.Close()
	start := time.Now()
	rep, err := universal.RunStreamingEmbedding(guest, host, nil, *steps, universal.StreamRunConfig{
		Shards:        *shards,
		BuildShards:   *buildShards,
		Window:        *window,
		BarrierWindow: *barrierWindow,
		Chunks:        chunks,
		MeasureStalls: true,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("streaming run: guest n=%d (%d-regular), host m=%d, T=%d, build-shards=%d, shards=%d, window=%d\n",
		rep.N, *deg, rep.M, rep.T, rep.BuildShards, rep.ValidateShards, *window)
	fmt.Printf("host steps T'=%d ops=%d slowdown=%.2f inefficiency k=%.2f maxload=%d (%.1fs)\n",
		rep.HostSteps, rep.Ops, rep.Slowdown, rep.Inefficiency, rep.MaxLoad, elapsed.Seconds())
	fmt.Printf("protocol bytes: encoded=%d peak-resident=%d spilled=%d\n",
		rep.EncodedBytes, rep.PeakChunkBytes, rep.SpilledBytes)
	fmt.Printf("pipeline stalls: builder=%dms validator=%dms\n",
		rep.SendStallNs/1e6, rep.RecvStallNs/1e6)
	fmt.Printf("build split: busy=%dms pipe-stall=%dms merge-wait=%dms (workers=%d)\n",
		rep.BuildBusyNs/1e6, rep.BuildStallNs/1e6, rep.MergeWaitNs/1e6, rep.BuildShards)
	fmt.Printf("stream fingerprint: %016x steps=%d\n", rep.Fingerprint, rep.HostSteps)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		sp := pebble.Spec{Guest: guest, Host: host, T: *steps}
		if err := pebble.WriteBinary(f, sp, chunks.Source()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("protocol written to %s\n", *save)
	}
	if *maxPeak > 0 && rep.PeakChunkBytes > *maxPeak {
		return fmt.Errorf("peak resident chunk bytes %d exceed budget %d", rep.PeakChunkBytes, *maxPeak)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
	return nil
}

func cmdFigure1(args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	blockSide := fs.Int("blockside", 4, "block side p = 2a")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := topology.NextValidG0Size(4*(*blockSide)*(*blockSide), *blockSide)
	g0, err := topology.BuildG0WithBlockSide(n, *blockSide, *seed)
	if err != nil {
		return err
	}
	depth := depgraph.TreeDepth(*blockSide)
	tree, err := depgraph.BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderDependencyTree(g0, tree))
	fmt.Printf("size=%d (≤ %d·a² with a=%d), depth=%d, binary=yes, leaves cover the %d-node torus\n",
		tree.Size(), (tree.Size()+g0.A*g0.A-1)/(g0.A*g0.A), g0.A, tree.Depth(), *blockSide**blockSide)
	return nil
}

// cmdExperiment runs a subset of the registered experiment suite through
// the parallel runner. IDs come from -only (or the legacy -id alias);
// empty selects all 22. With -json, one JSON object per experiment (id,
// derived seed, duration, structured payload, error) is emitted — the
// table text goes to stdout otherwise.
func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "", "single experiment id (alias for -only)")
	only := fs.String("only", "", "comma-separated experiment ids, e.g. E1,E4,E12 (default: all)")
	parallel := fs.Int("parallel", 1, "worker count; 0 = GOMAXPROCS")
	timeout := fs.Duration("timeout", 0, "overall deadline, e.g. 90s (0 = none)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per experiment instead of tables")
	failFast := fs.Bool("failfast", false, "cancel remaining experiments on the first failure")
	list := fs.Bool("list", false, "list the registered experiments and exit")
	seed := fs.Int64("seed", 1, "root random seed (per-experiment seeds are derived from it)")
	faultScenario := fs.String("faults", "", "named fault scenario for fault-aware experiments: "+strings.Join(faults.ScenarioNames(), "|"))
	faultSeed := fs.Int64("fault-seed", 1, "seed of the fault scenario's deterministic schedule")
	tracePath := fs.String("trace", "", "write per-span JSONL tracing to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Print(listExperiments())
		return nil
	}
	sel := *only
	if sel == "" {
		sel = *id
	}
	var ids []string
	if sel != "" {
		ids = strings.Split(sel, ",")
	}
	exps, err := experiments.Select(ids)
	if err != nil {
		return err
	}
	cfg, err := experimentConfig(*seed, *faultScenario, *faultSeed)
	if err != nil {
		return err
	}
	return runExperiments(exps, cfg, runOpts{
		parallel: *parallel, timeout: *timeout, failFast: *failFast,
		jsonOut: *jsonOut, tracePath: *tracePath,
	})
}

// experimentConfig assembles the suite Config, validating a named fault
// scenario early so a typo fails before any experiment runs.
func experimentConfig(seed int64, faultScenario string, faultSeed int64) (experiments.Config, error) {
	cfg := experiments.Config{Seed: seed, FaultScenario: faultScenario, FaultSeed: faultSeed}
	if faultScenario != "" {
		// Resolve against a token host to validate the name only; the
		// experiment resolves it against its real m and T.
		if _, err := faults.Scenario(faultScenario, faultSeed, 2, 1); err != nil {
			return experiments.Config{}, err
		}
	}
	return cfg, nil
}

// listExperiments renders the registry as an id → claim → modules table.
func listExperiments() string {
	reg := experiments.Registry()
	tab := &experiments.Table{
		Title:   fmt.Sprintf("Registered experiments (%d: E1..E24, E26)", len(reg)),
		Columns: []string{"id", "claim", "modules"},
	}
	for _, e := range reg {
		tab.Rows = append(tab.Rows, []string{e.ID, e.Claim, e.Modules})
	}
	return tab.String()
}

// runOpts bundles the execution knobs shared by `experiment`, `report` and
// `serve`.
type runOpts struct {
	parallel  int
	timeout   time.Duration
	failFast  bool
	jsonOut   bool
	tracePath string // "" = tracing off
}

// openTrace opens the JSONL span sink named by tracePath ("" → nil sink,
// tracing disabled).
func openTrace(path string) (*obs.TraceSink, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace output: %w", err)
	}
	return obs.NewTraceSink(f), nil
}

// runExperiments executes exps on the runner and writes tables (or JSON
// lines) to stdout. The returned error aggregates every failed experiment.
// Table output carries no timings, and the per-experiment metrics snapshot
// in JSON output excludes wall-clock by construction, so both are
// byte-identical across worker counts; timing lives in duration_ms and the
// optional -trace JSONL.
func runExperiments(exps []experiments.Experiment, cfg experiments.Config, opt runOpts) error {
	sink, err := openTrace(opt.tracePath)
	if err != nil {
		return err
	}
	r := &experiments.Runner{Workers: opt.parallel, Timeout: opt.timeout, FailFast: opt.failFast, Trace: sink}
	results, runErr := r.Run(context.Background(), exps, cfg)
	if err := sink.Close(); err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if opt.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, res := range results {
			obj := map[string]any{
				"id":          res.ID,
				"seed":        res.Seed,
				"duration_ms": float64(res.Duration) / float64(time.Millisecond),
			}
			if res.Payload != nil {
				obj["payload"] = res.Payload
			}
			if !res.Metrics.Empty() {
				obj["metrics"] = res.Metrics
			}
			if res.Err != nil {
				obj["error"] = res.Err.Error()
			}
			if err := enc.Encode(obj); err != nil {
				return err
			}
		}
		return runErr
	}
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "uninet: %s failed: %v\n", res.ID, res.Err)
			continue
		}
		fmt.Printf("\n%s\n", res.Text)
	}
	return runErr
}

func cmdCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	n := fs.Int("n", 8, "number of vertices (≤ 16)")
	c := fs.Int("c", 3, "degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exact, err := core.CountRegularGraphsExact(*n, *c)
	if err != nil {
		return err
	}
	fmt.Printf("labeled %d-regular graphs on %d vertices: %v\n", *c, *n, exact)
	fmt.Printf("configuration-model estimate: 2^%.2f\n", core.Log2RegularGraphCount(*n, *c))
	return nil
}

// cmdAnalyze runs the full §3 lower-bound pipeline on a live protocol:
// G₀, a guest from 𝒰[G₀], a validated protocol, stateful replay, Lemma 3.12
// weights and critical times, a fragment and its multiplicity bound.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	blockSide := fs.Int("blockside", 4, "G0 block side p = 2a")
	hostDim := fs.Int("hostdim", 3, "wrapped-butterfly host dimension")
	c := fs.Int("c", 16, "guest degree (the paper's c)")
	extra := fs.Int("extra", 8, "guest steps beyond the tree depth")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n := topology.NextValidG0Size(4*(*blockSide)*(*blockSide), *blockSide)
	g0, err := topology.BuildG0WithBlockSide(n, *blockSide, *seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed + 1))
	guest, err := g0.SampleGuest(rng, *c)
	if err != nil {
		return err
	}
	host, err := topology.WrappedButterfly(*hostDim)
	if err != nil {
		return err
	}
	T := depgraph.TreeDepth(*blockSide) + *extra
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		return err
	}
	st, err := pr.Validate()
	if err != nil {
		return err
	}
	fmt.Printf("guest G ∈ U[G0]: n=%d %d-regular; host m=%d; T=%d\n", n, *c, host.N(), T)
	fmt.Printf("protocol: T'=%d slowdown=%.1f k=%.1f  [%v]\n",
		pr.HostSteps(), pr.Slowdown(), pr.Inefficiency(), pr.Stats())

	comp := sim.MixMod(guest, rng)
	if err := pebble.VerifyCarries(pr, comp); err != nil {
		return fmt.Errorf("stateful replay failed: %w", err)
	}
	fmt.Println("stateful replay matches direct execution ✓")

	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		return err
	}
	z := lw.CriticalTimes(T)
	fmt.Printf("Lemma 3.12: D=%d, max tree size=%d (48a²=%d); |Z_S|=%d ≥ %d\n",
		lw.D, lw.TreeSize, 48*g0.A*g0.A, len(z), (T-lw.D)/2)
	if len(z) == 0 {
		return fmt.Errorf("no critical times")
	}
	t0 := z[len(z)/2]
	roots, err := st.ChooseRoots(g0, lw, t0)
	if err != nil {
		return err
	}
	fmt.Printf("roots at t0=%d: %v\n", t0, roots)
	frag, err := st.ExtractFragment(t0, st.PickLightest(t0))
	if err != nil {
		return err
	}
	if err := frag.Validate(); err != nil {
		return err
	}
	dSizes := make([]int, n)
	for i := range frag.D {
		dSizes[i] = len(frag.D[i])
	}
	fmt.Printf("fragment: Σ|B_i|=%d; Lemma 3.3: log2 X ≤ %.1f vs log2 |U[G0]| ≥ %.1f\n",
		frag.SumB(), core.Log2MultiplicityExact(dSizes, *c-12),
		core.Params{C: *c}.Defaults().Log2Guests(n))
	return nil
}

// cmdReport runs the evaluation suite (all 22 experiments by default) and
// prints every table. It shares the registry/runner engine with
// cmdExperiment: -parallel fans out over a worker pool without changing a
// byte of the output, -only restricts to a subset, -timeout bounds the run.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "root random seed (per-experiment seeds are derived from it)")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	parallel := fs.Int("parallel", 1, "worker count; 0 = GOMAXPROCS")
	timeout := fs.Duration("timeout", 0, "overall deadline, e.g. 90s (0 = none)")
	jsonOut := fs.Bool("json", false, "emit one JSON object per experiment instead of tables")
	faultScenario := fs.String("faults", "", "named fault scenario for fault-aware experiments: "+strings.Join(faults.ScenarioNames(), "|"))
	faultSeed := fs.Int64("fault-seed", 1, "seed of the fault scenario's deterministic schedule")
	tracePath := fs.String("trace", "", "write per-span JSONL tracing to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	exps, err := experiments.Select(ids)
	if err != nil {
		return err
	}
	cfg, err := experimentConfig(*seed, *faultScenario, *faultSeed)
	if err != nil {
		return err
	}
	return runExperiments(exps, cfg, runOpts{
		parallel: *parallel, timeout: *timeout, failFast: true,
		jsonOut: *jsonOut, tracePath: *tracePath,
	})
}

// cmdGap prints the conclusion's open-problem table: the host size needed
// for constant slowdown, between Theorem 3.1's Ω(n·log n)-style lower bound
// and [14]'s O(n^{1+ε}) upper bound.
func cmdGap(args []string) error {
	fs := flag.NewFlagSet("gap", flag.ExitOnError)
	s0 := fs.Float64("s0", 2, "slowdown cap (constant)")
	eps := fs.Float64("eps", 0.5, "the [14] upper-bound exponent ε")
	toy := fs.Bool("toy", true, "use unit-scale constants (default; paper constants are vacuous here)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := core.ToyParams()
	label := "toy"
	if !*toy {
		p = core.Params{}.Defaults()
		label = "paper"
	}
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	rows, err := p.OpenProblemGap(ns, *s0, *eps)
	if err != nil {
		return err
	}
	fmt.Printf("Conclusion (open problem), %s constants: host size for slowdown ≤ %.0f\n", label, *s0)
	fmt.Printf("%-10s  %-16s  %-16s  %-10s\n", "n", "m lower (Thm3.1)", "m upper n^(1+ε)", "m_low/n")
	for _, r := range rows {
		fmt.Printf("%-10d  %-16.0f  %-16.0f  %-10.2f\n", r.N, r.MLower, r.MUpper, r.MLower/float64(r.N))
	}
	return nil
}
