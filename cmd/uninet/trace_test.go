package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"universalnet/internal/obs"
)

// writeSpanFile writes events as one node's JSONL trace file.
func writeSpanFile(t *testing.T, dir, name string, events []obs.SpanEvent) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// twoNodeTrace fabricates the canonical forwarded request: ingress node A
// (root + forward + encode), owner node B (root parented under A's forward
// span + compute).
func twoNodeTrace(t *testing.T, dir string) (fileA, fileB, traceID string) {
	t.Helper()
	traceID = "0123456789abcdef0123456789abcdef"
	const (
		rootA    = "aaaaaaaaaaaaaaa1"
		forwardA = "aaaaaaaaaaaaaaa2"
		encodeA  = "aaaaaaaaaaaaaaa3"
		rootB    = "bbbbbbbbbbbbbbb1"
		computeB = "bbbbbbbbbbbbbbb2"
	)
	fileA = writeSpanFile(t, dir, "nodeA.jsonl", []obs.SpanEvent{
		// A flat experiment span without trace identity must be skipped.
		{Span: "experiment", ID: 1, StartUS: 50, DurUS: 10},
		{Span: "http.request", Trace: traceID, SpanID: rootA, StartUS: 100, DurUS: 1000,
			Attrs: map[string]any{"node": "a:1", "endpoint": "simulate", "route": "forwarded"}},
		{Span: "forward", Trace: traceID, SpanID: forwardA, Parent: rootA, StartUS: 150, DurUS: 800,
			Attrs: map[string]any{"node": "a:1"}},
		{Span: "encode", Trace: traceID, SpanID: encodeA, Parent: rootA, StartUS: 960, DurUS: 100,
			Attrs: map[string]any{"node": "a:1"}},
	})
	fileB = writeSpanFile(t, dir, "nodeB.jsonl", []obs.SpanEvent{
		{Span: "http.request", Trace: traceID, SpanID: rootB, Parent: forwardA, StartUS: 200, DurUS: 600,
			Attrs: map[string]any{"node": "b:1", "endpoint": "simulate", "route": "local"}},
		{Span: "compute", Trace: traceID, SpanID: computeB, Parent: rootB, StartUS: 250, DurUS: 500,
			Attrs: map[string]any{"node": "b:1"}},
	})
	return fileA, fileB, traceID
}

func TestTraceJoinAcrossNodes(t *testing.T) {
	dir := t.TempDir()
	fileA, fileB, traceID := twoNodeTrace(t, dir)

	spans, skipped, err := loadSpans([]string{fileA, fileB})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d traceless spans, want 1", skipped)
	}
	if len(spans) != 5 {
		t.Fatalf("loaded %d spans, want 5", len(spans))
	}
	traces := groupTraces(spans)
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.id != traceID {
		t.Fatalf("trace id %q", tr.id)
	}
	if !tr.joined {
		t.Fatalf("trace not joined: nodes=%v orphans=%d", tr.nodes, tr.orphans)
	}
	if len(tr.nodes) != 2 || tr.nodes[0] != "a:1" || tr.nodes[1] != "b:1" {
		t.Fatalf("nodes %v", tr.nodes)
	}
	if tr.totalUS != 1000 {
		t.Fatalf("total %dµs, want 1000 (ingress root)", tr.totalUS)
	}

	// Self-time attribution sums to the client-observed (root) latency:
	// root 1000 − (forward 800 + encode 100) = 100 self; forward 800 −
	// nested owner 600 = 200; owner root 600 − compute 500 = 100.
	self := selfTimes(tr)
	var sum int64
	for _, v := range self {
		sum += v
	}
	if sum != tr.totalUS {
		t.Fatalf("self times sum %d != root %d (%v)", sum, tr.totalUS, self)
	}
	if self["compute"] != 500 || self["forward"] != 200 || self["encode"] != 100 {
		t.Fatalf("unexpected attribution %v", self)
	}

	// The critical path descends through the forward hop into the owner's
	// compute.
	path := criticalPath(tr)
	want := []string{"http.request@a:1", "forward@a:1", "http.request@b:1", "compute@b:1"}
	if len(path) != len(want) {
		t.Fatalf("critical path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("critical path %v, want %v", path, want)
		}
	}
}

func TestTraceOrphanNotJoined(t *testing.T) {
	dir := t.TempDir()
	file := writeSpanFile(t, dir, "orphan.jsonl", []obs.SpanEvent{
		{Span: "http.request", Trace: strings.Repeat("1", 32), SpanID: "00000000000000a1",
			Parent: "00000000000000ff", StartUS: 0, DurUS: 10,
			Attrs: map[string]any{"node": "a"}},
		{Span: "compute", Trace: strings.Repeat("1", 32), SpanID: "00000000000000a2",
			Parent: "00000000000000a1", StartUS: 1, DurUS: 5,
			Attrs: map[string]any{"node": "b"}},
	})
	spans, _, err := loadSpans([]string{file})
	if err != nil {
		t.Fatal(err)
	}
	traces := groupTraces(spans)
	if len(traces) != 1 {
		t.Fatal("want one trace")
	}
	if traces[0].joined {
		t.Fatal("trace with an unresolved parent must not count as joined")
	}
	if traces[0].orphans != 1 {
		t.Fatalf("orphans = %d, want 1", traces[0].orphans)
	}
}

func TestCmdTraceAssertJoined(t *testing.T) {
	dir := t.TempDir()
	fileA, fileB, _ := twoNodeTrace(t, dir)

	// Redirect the report away from the test output.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()

	if err := cmdTrace([]string{"-assert-joined", "1", fileA, fileB}); err != nil {
		t.Fatalf("assert-joined 1 failed on a joined trace: %v", err)
	}
	if err := cmdTrace([]string{"-assert-joined", "2", fileA, fileB}); err == nil {
		t.Fatal("assert-joined 2 passed with only one joined trace")
	}
	if err := cmdTrace([]string{"-json", fileA, fileB}); err != nil {
		t.Fatalf("-json: %v", err)
	}
	if err := cmdTrace([]string{}); err == nil {
		t.Fatal("no files accepted")
	}
}

func TestTracePercentileExact(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want int64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("percentile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile non-zero")
	}
}
