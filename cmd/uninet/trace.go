package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"universalnet/internal/obs"
)

// cmdTrace joins per-node JSONL trace files (serve -trace) into distributed
// traces and prints per-trace waterfalls, self-time stage attribution, and
// aggregate per-span-name latency percentiles. With -check-metrics it also
// fetches a /metrics endpoint and validates the Prometheus exposition.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	top := fs.Int("top", 3, "print waterfalls for the N slowest traces")
	id := fs.String("id", "", "print only the trace with this 32-hex ID")
	minMS := fs.Float64("min-ms", 0, "only consider traces at least this slow for waterfalls")
	jsonOut := fs.Bool("json", false, "emit the joined analysis as JSON")
	assertJoined := fs.Int("assert-joined", 0, "fail unless at least N traces join spans from ≥2 nodes with full parentage")
	checkMetrics := fs.String("check-metrics", "", "fetch this URL and validate it as Prometheus text exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 && *checkMetrics == "" {
		return fmt.Errorf("usage: uninet trace [flags] node1.jsonl [node2.jsonl ...]")
	}

	if *checkMetrics != "" {
		if err := validateMetricsURL(*checkMetrics, os.Stdout); err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
	}

	spans, skipped, err := loadSpans(files)
	if err != nil {
		return err
	}
	traces := groupTraces(spans)
	if *id != "" {
		kept := traces[:0]
		for _, tr := range traces {
			if tr.id == *id {
				kept = append(kept, tr)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("trace %s not found in %d traces", *id, len(traces))
		}
		traces = kept
	}
	joined := 0
	for _, tr := range traces {
		if tr.joined {
			joined++
		}
	}

	if *jsonOut {
		if err := writeTraceJSON(os.Stdout, spans, skipped, traces, joined); err != nil {
			return err
		}
	} else {
		printTraceReport(os.Stdout, spans, skipped, traces, joined, *top, *minMS)
	}
	if *assertJoined > 0 && joined < *assertJoined {
		return fmt.Errorf("assert-joined: %d cross-node joined traces, want ≥ %d", joined, *assertJoined)
	}
	return nil
}

// validateMetricsURL fetches url and runs the exposition parser over it.
func validateMetricsURL(url string, out io.Writer) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("check-metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("check-metrics: %s answered %d", url, resp.StatusCode)
	}
	fams, err := obs.ParseProm(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("check-metrics: invalid exposition from %s: %w", url, err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Fprintf(out, "check-metrics: %s OK — %d families, %d samples\n", url, len(fams), samples)
	return nil
}

// traceSpan is one span plus its resolved children.
type traceSpan struct {
	ev       obs.SpanEvent
	node     string
	children []*traceSpan
}

// loadSpans reads every traced span (spans without trace IDs — the flat
// run-profiling spans of experiments — are counted as skipped).
func loadSpans(files []string) (spans []*traceSpan, skipped int, err error) {
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			if len(strings.TrimSpace(sc.Text())) == 0 {
				continue
			}
			var ev obs.SpanEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("%s:%d: bad span line: %v", path, line, err)
			}
			if ev.Trace == "" {
				skipped++
				continue
			}
			node, _ := ev.Attrs["node"].(string)
			spans = append(spans, &traceSpan{ev: ev, node: node})
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("%s: %v", path, err)
		}
		f.Close()
	}
	return spans, skipped, nil
}

// traceGroup is one joined trace.
type traceGroup struct {
	id      string
	spans   []*traceSpan
	roots   []*traceSpan
	nodes   []string
	orphans int  // spans whose parent is missing from the trace
	joined  bool // ≥2 nodes and no orphans
	totalUS int64
}

// groupTraces joins spans by trace ID, builds each trace's span forest, and
// sorts traces slowest-first.
func groupTraces(spans []*traceSpan) []*traceGroup {
	byTrace := map[string][]*traceSpan{}
	for _, s := range spans {
		byTrace[s.ev.Trace] = append(byTrace[s.ev.Trace], s)
	}
	traces := make([]*traceGroup, 0, len(byTrace))
	for id, ss := range byTrace {
		tr := &traceGroup{id: id, spans: ss}
		byID := make(map[string]*traceSpan, len(ss))
		nodes := map[string]bool{}
		for _, s := range ss {
			if s.ev.SpanID != "" {
				byID[s.ev.SpanID] = s
			}
			if s.node != "" {
				nodes[s.node] = true
			}
		}
		for _, s := range ss {
			if s.ev.Parent == "" {
				tr.roots = append(tr.roots, s)
				continue
			}
			if p, ok := byID[s.ev.Parent]; ok {
				p.children = append(p.children, s)
			} else {
				tr.orphans++
				tr.roots = append(tr.roots, s) // render under the top level anyway
			}
		}
		for n := range nodes {
			tr.nodes = append(tr.nodes, n)
		}
		sort.Strings(tr.nodes)
		for _, r := range tr.roots {
			if r.ev.DurUS > tr.totalUS {
				tr.totalUS = r.ev.DurUS
			}
		}
		sortSpanTree(tr.roots)
		tr.joined = len(tr.nodes) >= 2 && tr.orphans == 0
		traces = append(traces, tr)
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].totalUS != traces[j].totalUS {
			return traces[i].totalUS > traces[j].totalUS
		}
		return traces[i].id < traces[j].id
	})
	return traces
}

func sortSpanTree(spans []*traceSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].ev.StartUS != spans[j].ev.StartUS {
			return spans[i].ev.StartUS < spans[j].ev.StartUS
		}
		return spans[i].ev.SpanID < spans[j].ev.SpanID
	})
	for _, s := range spans {
		sortSpanTree(s.children)
	}
}

// selfTimes attributes each span's self time (duration minus nested child
// durations, clamped at 0) per span name. Self times of a well-nested trace
// sum to the root duration — the "where did the latency go" decomposition
// the acceptance criterion checks against client-observed latency.
func selfTimes(tr *traceGroup) map[string]int64 {
	out := map[string]int64{}
	var walk func(s *traceSpan)
	walk = func(s *traceSpan) {
		var childUS int64
		for _, c := range s.children {
			childUS += c.ev.DurUS
			walk(c)
		}
		self := s.ev.DurUS - childUS
		if self < 0 {
			self = 0
		}
		out[s.ev.Span] += self
	}
	for _, r := range tr.roots {
		walk(r)
	}
	return out
}

// criticalPath walks the tree from the slowest root, at each level
// descending into the longest child, and returns the span names along the
// way — the chain an optimizer should attack first.
func criticalPath(tr *traceGroup) []string {
	if len(tr.roots) == 0 {
		return nil
	}
	cur := tr.roots[0]
	for _, r := range tr.roots[1:] {
		if r.ev.DurUS > cur.ev.DurUS {
			cur = r
		}
	}
	var path []string
	for cur != nil {
		label := cur.ev.Span
		if cur.node != "" {
			label += "@" + cur.node
		}
		path = append(path, label)
		var next *traceSpan
		for _, c := range cur.children {
			if next == nil || c.ev.DurUS > next.ev.DurUS {
				next = c
			}
		}
		cur = next
	}
	return path
}

// percentile picks the exact q-quantile of sorted durations.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// aggregate computes per-span-name duration percentiles across every trace.
func aggregate(spans []*traceSpan) []aggRow {
	byName := map[string][]int64{}
	for _, s := range spans {
		byName[s.ev.Span] = append(byName[s.ev.Span], s.ev.DurUS)
	}
	rows := make([]aggRow, 0, len(byName))
	for name, durs := range byName {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		rows = append(rows, aggRow{
			Span:  name,
			Count: len(durs),
			P50US: percentile(durs, 0.50),
			P95US: percentile(durs, 0.95),
			P99US: percentile(durs, 0.99),
			MaxUS: durs[len(durs)-1],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].P99US > rows[j].P99US })
	return rows
}

type aggRow struct {
	Span  string `json:"span"`
	Count int    `json:"count"`
	P50US int64  `json:"p50_us"`
	P95US int64  `json:"p95_us"`
	P99US int64  `json:"p99_us"`
	MaxUS int64  `json:"max_us"`
}

const waterfallWidth = 40

// printWaterfall renders one trace's span tree with bars positioned on the
// root span's timeline.
func printWaterfall(w io.Writer, tr *traceGroup) {
	var t0 int64
	if len(tr.roots) > 0 {
		t0 = tr.roots[0].ev.StartUS
		for _, r := range tr.roots {
			if r.ev.StartUS < t0 {
				t0 = r.ev.StartUS
			}
		}
	}
	total := tr.totalUS
	if total <= 0 {
		total = 1
	}
	var walk func(s *traceSpan, depth int)
	walk = func(s *traceSpan, depth int) {
		off := int(float64(s.ev.StartUS-t0) / float64(total) * waterfallWidth)
		width := int(float64(s.ev.DurUS) / float64(total) * waterfallWidth)
		if off < 0 {
			off = 0
		}
		if off > waterfallWidth {
			off = waterfallWidth
		}
		if width < 1 {
			width = 1
		}
		if off+width > waterfallWidth {
			width = waterfallWidth - off
			if width < 1 {
				width = 1
				off = waterfallWidth - 1
			}
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("█", width)
		label := strings.Repeat("  ", depth) + s.ev.Span
		node := s.node
		if node != "" {
			node = "@" + node
		}
		fmt.Fprintf(w, "  %-28s %9.3fms |%-*s| %s\n",
			label, float64(s.ev.DurUS)/1000, waterfallWidth, bar, node)
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, r := range tr.roots {
		walk(r, 0)
	}
}

func printTraceReport(w io.Writer, spans []*traceSpan, skipped int, traces []*traceGroup, joined, top int, minMS float64) {
	fmt.Fprintf(w, "uninet trace: %d traced spans, %d traces (%d cross-node joined), %d traceless spans skipped\n",
		len(spans), len(traces), joined, skipped)
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(w, "\naggregate span latencies (µs):\n")
	fmt.Fprintf(w, "  %-28s %7s %9s %9s %9s %9s\n", "span", "count", "p50", "p95", "p99", "max")
	for _, row := range aggregate(spans) {
		fmt.Fprintf(w, "  %-28s %7d %9d %9d %9d %9d\n",
			row.Span, row.Count, row.P50US, row.P95US, row.P99US, row.MaxUS)
	}

	shown := 0
	for _, tr := range traces {
		if shown >= top {
			break
		}
		if float64(tr.totalUS)/1000 < minMS {
			continue
		}
		shown++
		state := "single-node"
		if tr.joined {
			state = fmt.Sprintf("joined across %d nodes", len(tr.nodes))
		} else if tr.orphans > 0 {
			state = fmt.Sprintf("%d orphan spans", tr.orphans)
		}
		fmt.Fprintf(w, "\ntrace %s  total %.3fms  %d spans  %s\n",
			tr.id, float64(tr.totalUS)/1000, len(tr.spans), state)
		printWaterfall(w, tr)
		self := selfTimes(tr)
		names := make([]string, 0, len(self))
		for n := range self {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if self[names[i]] != self[names[j]] {
				return self[names[i]] > self[names[j]]
			}
			return names[i] < names[j]
		})
		var sum int64
		fmt.Fprintf(w, "  self-time attribution:")
		for _, n := range names {
			fmt.Fprintf(w, " %s=%.3fms", n, float64(self[n])/1000)
			sum += self[n]
		}
		fmt.Fprintf(w, " (sum %.3fms)\n", float64(sum)/1000)
		fmt.Fprintf(w, "  critical path: %s\n", strings.Join(criticalPath(tr), " → "))
	}
}

// traceJSON is the -json document.
type traceJSON struct {
	Spans     int             `json:"spans"`
	Skipped   int             `json:"skipped"`
	Traces    int             `json:"traces"`
	Joined    int             `json:"joined"`
	Aggregate []aggRow        `json:"aggregate"`
	Top       []traceJSONItem `json:"top"`
}

type traceJSONItem struct {
	ID           string           `json:"id"`
	TotalUS      int64            `json:"total_us"`
	Spans        int              `json:"spans"`
	Nodes        []string         `json:"nodes"`
	Joined       bool             `json:"joined"`
	Orphans      int              `json:"orphans"`
	SelfUS       map[string]int64 `json:"self_us"`
	CriticalPath []string         `json:"critical_path"`
}

func writeTraceJSON(w io.Writer, spans []*traceSpan, skipped int, traces []*traceGroup, joined int) error {
	doc := traceJSON{
		Spans:     len(spans),
		Skipped:   skipped,
		Traces:    len(traces),
		Joined:    joined,
		Aggregate: aggregate(spans),
	}
	for i, tr := range traces {
		if i >= 10 {
			break
		}
		doc.Top = append(doc.Top, traceJSONItem{
			ID:           tr.id,
			TotalUS:      tr.totalUS,
			Spans:        len(tr.spans),
			Nodes:        tr.nodes,
			Joined:       tr.joined,
			Orphans:      tr.orphans,
			SelfUS:       selfTimes(tr),
			CriticalPath: criticalPath(tr),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
