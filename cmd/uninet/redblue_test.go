package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCmdRedblueTable(t *testing.T) {
	// Default sweep size: small instances can saturate belady (0 reloads)
	// before the loosest bounded budget, which breaks strictness.
	out := captureStdout(t, func() error {
		return cmdRedblue([]string{"-assert-monotone-io"})
	})
	if !strings.Contains(out, "red-blue surface") {
		t.Errorf("missing table title:\n%s", out)
	}
	if !strings.Contains(out, "monotone-io assertion: ok") {
		t.Errorf("assertion line missing:\n%s", out)
	}
}

func TestCmdRedblueJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdRedblue([]string{"-n", "24", "-hostdim", "3", "-steps", "2",
			"-r", "4,7,0", "-policy", "all", "-json", "-assert-monotone-io"})
	})
	var obj struct {
		N          int  `json:"n"`
		M          int  `json:"m"`
		MinRed     int  `json:"min_red"`
		MonotoneIO bool `json:"monotone_io"`
		Rows       []struct {
			R       int    `json:"r"`
			Policy  string `json:"policy"`
			Compute int64  `json:"compute"`
			IOSteps int64  `json:"io_steps"`
			Reloads int64  `json:"reloads"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\noutput:\n%s", err, out)
	}
	if !obj.MonotoneIO {
		t.Error("monotone_io = false")
	}
	if len(obj.Rows) != 9 { // 3 budgets × 3 policies
		t.Fatalf("got %d rows, want 9", len(obj.Rows))
	}
	// Sanity of the trade-off inside the JSON itself: the tightest bounded
	// budget pays strictly more I/O than the loosest, per policy, and
	// compute never moves.
	for _, pol := range []string{"lru", "random", "belady"} {
		var tight, loose int64 = -1, -1
		for _, r := range obj.Rows {
			if r.Policy != pol {
				continue
			}
			if r.Compute != obj.Rows[0].Compute {
				t.Errorf("%s r=%d: compute %d varies", pol, r.R, r.Compute)
			}
			switch r.R {
			case 4:
				tight = r.IOSteps
			case 7:
				loose = r.IOSteps
			}
		}
		if tight <= loose {
			t.Errorf("%s: io at r=4 (%d) not strictly above r=7 (%d)", pol, tight, loose)
		}
	}
}

func TestCmdRedblueBadFlags(t *testing.T) {
	if err := cmdRedblue([]string{"-r", "nope"}); err == nil {
		t.Error("bad -r accepted")
	}
	if err := cmdRedblue([]string{"-policy", "fifo"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := cmdRedblue([]string{"-r", "1"}); err == nil {
		t.Error("infeasible budget accepted")
	}
}
