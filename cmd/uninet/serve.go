package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"universalnet/internal/cluster"
	"universalnet/internal/experiments"
	"universalnet/internal/faults"
	"universalnet/internal/obs"
	"universalnet/internal/service"
)

// liveRegistry is the registry the expvar callback reads. It is a package
// atomic (not a runServe local) because expvar.Publish is global and
// panics on duplicate names — publishOnce installs one callback forever,
// and successive runServe calls (tests, repeated serves) swap the pointer.
var liveRegistry atomic.Pointer[obs.Registry]

var publishOnce = func() func() {
	done := false
	return func() {
		if done {
			return
		}
		done = true
		expvar.Publish("uninet", expvar.Func(func() any {
			return liveRegistry.Load().Snapshot()
		}))
	}
}()

// cmdServe runs the experiment suite with a live run-level metrics registry
// and serves it over HTTP: expvar at /debug/vars (key "uninet"), pprof under
// /debug/pprof/, the bare aggregated snapshot at /metrics, and the
// simulation service under /v1/ (POST simulate|route|embed, GET status).
// After the suite completes the server keeps running — now primarily as a
// request-serving node — until interrupted (or, with -once, exits
// immediately).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8214", "listen address")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	parallel := fs.Int("parallel", 1, "worker count; 0 = GOMAXPROCS")
	timeout := fs.Duration("timeout", 0, "overall suite deadline (0 = none)")
	seed := fs.Int64("seed", 1, "root random seed")
	faultScenario := fs.String("faults", "", "named fault scenario: "+strings.Join(faults.ScenarioNames(), "|"))
	faultSeed := fs.Int64("fault-seed", 1, "seed of the fault scenario's deterministic schedule")
	tracePath := fs.String("trace", "", "write per-span JSONL tracing to this file")
	once := fs.Bool("once", false, "exit when the suite completes instead of serving until interrupted")
	queue := fs.Int("queue", 0, "service admission-queue depth; 0 = 4×workers")
	serviceWorkers := fs.Int("service-workers", 0, "service worker-pool size; 0 = GOMAXPROCS")
	peers := fs.String("peers", "", "comma-separated peer addresses (host:port); enables cluster mode")
	advertise := fs.String("advertise", "", "address peers know this node by (default: the listen address)")
	heartbeat := fs.Duration("heartbeat", 0, "cluster heartbeat interval (0 = 500ms)")
	noFallback := fs.Bool("no-local-fallback", false, "surface forwarding failures as 502 instead of serving locally")
	warmPush := fs.Int("warm-push", 64, "queue depth for background owner cache-warming after local fallbacks (0 = off; cluster mode only)")
	clusterFaults := fs.String("cluster-faults", "", "named forward-fault scenario: "+strings.Join(faults.ClusterScenarioNames(), "|")+" (drop/delay rates apply to this node's forwards)")
	slowMS := fs.Int("slow-ms", 0, "slow-request watchdog threshold in ms (0 = off); slow requests log a span breakdown and may auto-capture a CPU profile")
	slowProfileDir := fs.String("slow-profile-dir", "", "directory for automatic CPU profiles of slow requests (requires -slow-ms)")
	runtimeSample := fs.Duration("runtime-sample", 5*time.Second, "Go runtime health sampling interval (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	exps, err := experiments.Select(ids)
	if err != nil {
		return err
	}
	cfg, err := experimentConfig(*seed, *faultScenario, *faultSeed)
	if err != nil {
		return err
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	var plan *faults.ClusterPlan
	if *clusterFaults != "" {
		// Only the drop/delay rates matter in-process; node kill events are
		// the chaos driver's job (uninetload -chaos). Nominal horizon.
		plan, err = faults.ClusterScenario(*clusterFaults, *faultSeed, len(peerList)+1, 60_000)
		if err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return runServe(ctx, ln, exps, cfg, serveOpts{
		parallel:        *parallel,
		timeout:         *timeout,
		tracePath:       *tracePath,
		once:            *once,
		queue:           *queue,
		serviceWorkers:  *serviceWorkers,
		peers:           peerList,
		advertise:       *advertise,
		heartbeat:       *heartbeat,
		noLocalFallback: *noFallback,
		warmPushQueue:   *warmPush,
		clusterPlan:     plan,
		clusterSeed:     *faultSeed,
		slowThreshold:   time.Duration(*slowMS) * time.Millisecond,
		slowProfileDir:  *slowProfileDir,
		runtimeSample:   *runtimeSample,
	}, os.Stdout)
}

// serveOpts bundles runServe's knobs.
type serveOpts struct {
	parallel  int
	timeout   time.Duration
	tracePath string
	once      bool
	// queue and serviceWorkers size the /v1 service (0 = defaults).
	queue          int
	serviceWorkers int
	// drainGrace holds the server in a 503-answering drain window before
	// the listener is torn down, so in-flight keep-alive connections see an
	// explicit rejection instead of racing shutdown. 0 = a short default.
	drainGrace time.Duration
	// peers enables cluster mode: the /v1 service routes by consistent-hash
	// ownership over advertise ∪ peers, forwarding non-owned keys.
	peers []string
	// advertise is the name peers know this node by ("" = listener address).
	advertise string
	// heartbeat is the peer-probe interval (0 = cluster default).
	heartbeat time.Duration
	// noLocalFallback surfaces forwarding failures as 502 instead of local
	// compute.
	noLocalFallback bool
	// warmPushQueue sizes the background owner cache-warming queue after
	// local fallbacks (0 = off).
	warmPushQueue int
	// clusterPlan optionally injects deterministic forward faults.
	clusterPlan *faults.ClusterPlan
	// clusterSeed drives the forward backoff jitter.
	clusterSeed int64
	// slowThreshold arms the slow-request watchdog (0 = off).
	slowThreshold time.Duration
	// slowProfileDir receives automatic CPU captures of slow requests.
	slowProfileDir string
	// runtimeSample is the Go runtime health sampling interval (0 = off).
	runtimeSample time.Duration
}

// runServe is the listener-injectable core of cmdServe: it serves metrics
// and the /v1 simulation service on ln, runs the suite against a live
// run-level registry, and shuts the server down cleanly when ctx is
// canceled (or right after the suite with opts.once). Shutdown is a
// two-phase graceful drain: first every new HTTP request is answered 503
// for a short grace window (so keep-alive clients observe the drain instead
// of racing the listener teardown) and the service queue drains, then the
// server itself shuts down. Split from cmdServe so tests can inject a
// 127.0.0.1:0 listener and a cancellable context, then assert no goroutines
// leak across the whole drain window.
func runServe(ctx context.Context, ln net.Listener, exps []experiments.Experiment, cfg experiments.Config, opts serveOpts, out io.Writer) error {
	reg := obs.New()
	liveRegistry.Store(reg)
	publishOnce()

	sink, err := openTrace(opts.tracePath)
	if err != nil {
		ln.Close()
		return err
	}
	// The run-level registry shares the JSONL sink, so the telemetry layer's
	// per-request span trees land in the same file as the suite's profiling
	// spans (the trace tool separates them by presence of trace IDs).
	if sink != nil {
		reg.SetTrace(sink)
	}

	svc := service.New(service.Config{
		Workers:    opts.serviceWorkers,
		QueueDepth: opts.queue,
		Obs:        reg,
	})

	// Cluster mode: /v1 requests route by consistent-hash ownership across
	// self ∪ peers; non-owned keys are forwarded with retries and a per-peer
	// circuit breaker, degrading to local compute when the owner is gone.
	v1 := http.Handler(service.Handler(svc))
	var node *cluster.Node
	var warmPusher *service.WarmPusher
	if len(opts.peers) > 0 {
		self := opts.advertise
		if self == "" {
			self = ln.Addr().String()
		}
		ccfg := cluster.Config{
			Self:           self,
			Peers:          opts.peers,
			HeartbeatEvery: opts.heartbeat,
			Seed:           opts.clusterSeed,
			Obs:            reg,
		}
		if opts.clusterPlan.Active() {
			ccfg.Faults = opts.clusterPlan
		}
		node, err = cluster.NewNode(ccfg)
		if err != nil {
			ln.Close()
			sink.Close()
			return err
		}
		copts := service.ClusterOptions{NoLocalFallback: opts.noLocalFallback}
		if opts.warmPushQueue > 0 {
			warmPusher = service.NewWarmPusher(node, service.WarmPushOptions{
				QueueDepth: opts.warmPushQueue,
				Obs:        reg,
			})
			copts.WarmPusher = warmPusher
		}
		v1 = service.ClusterHandler(svc, node, copts)
		node.Start()
	}

	// Telemetry wraps outermost so the per-stage timings context reaches the
	// cluster router and the service spine, and forwarded requests join one
	// distributed trace.
	nodeName := ln.Addr().String()
	if node != nil {
		nodeName = node.Self()
	}
	v1 = service.Telemetry(svc, service.TelemetryOptions{
		Node:          nodeName,
		SlowThreshold: opts.slowThreshold,
		SlowLog:       out,
		ProfileDir:    opts.slowProfileDir,
	}, v1)

	// Runtime health sampling: goroutines, heap, GC pauses, on a ticker.
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	if opts.runtimeSample > 0 {
		sampler := obs.NewRuntimeSampler(reg)
		go func() {
			defer close(samplerDone)
			sampler.Run(opts.runtimeSample, samplerStop)
		}()
	} else {
		close(samplerDone)
	}

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// /metrics serves Prometheus text exposition by default; the JSON
	// snapshot stays reachable via Accept: application/json or /metrics.json.
	writeMetricsJSON := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(liveRegistry.Load().Snapshot())
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/json") {
			writeMetricsJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = liveRegistry.Load().Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		writeMetricsJSON(w)
	})
	mux.Handle("/v1/", v1)

	// draining gates every endpoint (not just /v1): once shutdown begins,
	// new requests on existing connections get an explicit 503.
	var draining atomic.Bool
	srv := &http.Server{Handler: service.Drain(draining.Load, mux)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "uninet serve: service on http://%s/v1/ (metrics /metrics, expvar /debug/vars, pprof /debug/pprof/)\n", ln.Addr())
	if node != nil {
		fmt.Fprintf(out, "uninet serve: cluster node %s, peers %s\n", node.Self(), strings.Join(opts.peers, ","))
	}

	r := &experiments.Runner{Workers: opts.parallel, Timeout: opts.timeout, Obs: reg, Trace: sink}
	results, runErr := r.Run(ctx, exps, cfg)
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
		}
	}
	fmt.Fprintf(out, "uninet serve: suite done — %d experiments, %d failed\n", len(results), failed)

	if !opts.once {
		<-ctx.Done()
	}

	// Phase 1 of the drain: answer 503 everywhere, let the grace window
	// elapse so clients mid-keep-alive see the rejection, and drain the
	// service's queued work. A fresh context: the trigger ctx is typically
	// already canceled, and in-flight requests deserve a grace period.
	// Heartbeats stop first; in-flight forwards are unaffected and finish
	// under the server's own Shutdown wait.
	warmPusher.Close()
	if node != nil {
		node.Close()
	}
	close(samplerStop)
	<-samplerDone
	draining.Store(true)
	grace := opts.drainGrace
	if grace == 0 {
		grace = 100 * time.Millisecond
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- svc.Close(shutCtx) }()
	time.Sleep(grace)
	drainErr := <-drainDone

	// Phase 2: tear the server down; Shutdown waits for in-flight handlers.
	shutErr := srv.Shutdown(shutCtx)
	<-serveErr // Serve has returned; no goroutine left behind.
	if err := sink.Close(); err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if runErr != nil && !opts.once && ctx.Err() != nil {
		// Interrupted runs report the suite error only under -once semantics;
		// a deliberate Ctrl-C mid-suite is not a failure of the tool.
		runErr = nil
	}
	if shutErr != nil {
		return shutErr
	}
	if drainErr != nil {
		return drainErr
	}
	return runErr
}
