// Command uninet is the command-line front end of the universal-network
// laboratory. Subcommands:
//
//	topo       — describe a topology (size, degree, diameter, expansion)
//	route      — route random h–h problems on a topology and report steps
//	simulate   — simulate a random guest on a host and report the slowdown
//	bound      — evaluate the Theorem 3.1 lower bound k(m)
//	tradeoff   — print the m·s vs n·log m trade-off table
//	pebble     — build and validate a pebble-game protocol; print statistics
//	bigsim     — streaming build+validate at big n (chunked storage, shards)
//	redblue    — price a protocol under the red-blue cost model (r-sweep, policies)
//	figure1    — render the Figure 1 dependency tree
//	experiment — run a subset of the E1..E24 suite (parallel runner, JSON)
//	report     — run the full suite and print every table
//	serve      — run the suite with live metrics over HTTP (expvar, pprof)
//	trace      — join per-node JSONL traces; waterfalls, attribution, percentiles
//
// Every subcommand takes -seed for reproducibility and prints plain tables.
// `experiment`, `report` and `serve` accept -trace FILE for per-span JSONL
// profiling output.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "topo":
		err = cmdTopo(args)
	case "route":
		err = cmdRoute(args)
	case "simulate":
		err = cmdSimulate(args)
	case "bound":
		err = cmdBound(args)
	case "tradeoff":
		err = cmdTradeoff(args)
	case "pebble":
		err = cmdPebble(args)
	case "bigsim":
		err = cmdBigsim(args)
	case "redblue":
		err = cmdRedblue(args)
	case "figure1":
		err = cmdFigure1(args)
	case "experiment":
		err = cmdExperiment(args)
	case "count":
		err = cmdCount(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "report":
		err = cmdReport(args)
	case "serve":
		err = cmdServe(args)
	case "trace":
		err = cmdTrace(args)
	case "gap":
		err = cmdGap(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "uninet: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uninet %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: uninet <command> [flags]

commands:
  topo       -kind mesh|torus|multitorus|butterfly|wbutterfly|ccc|se|debruijn|hypercube|regular|g0 -n N [-d D] [-a A] [-deg DEG] [-seed S] [-save F | -load F]
  route      -kind ... -n N -h H -trials K [-seed S]
  simulate   -host butterfly|torus|expander|ring -hostsize M|-hostdim D -n N -deg C -steps T [-seed S]
  bound      -log2m X [-toy]  or  -n N -m M [-toy]
  tradeoff   -n N -ms 256,1024,4096 [-toy]
  pebble     -n N -deg C -hostdim D -steps T [-seed S]
  bigsim     -n N -deg C -hostdim D -steps T [-build-shards W] [-shards W] [-window K] [-barrier-window K] [-chunk-kb KB] [-budget-kb KB] [-save F] [-assert-peak-bytes B] [-cpuprofile F] [-memprofile F] [-seed S]
  redblue    -n N -deg C -hostdim D -steps T [-r R1,R2,...] [-policy lru|random|belady|all] [-iocost G] [-computecost C] [-json] [-assert-monotone-io] [-seed S]
  figure1    [-blockside P] [-seed S]
  experiment [-only E1,E4,E12] [-parallel N] [-timeout D] [-json] [-failfast] [-list] [-seed S] [-faults NAME] [-fault-seed S] [-trace F]
  count      -n N -c C   (exact number of labeled c-regular graphs)
  analyze    [-blockside P] [-hostdim D] [-c C] [-seed S]   (the §3 pipeline, live)
  report     [-only IDs] [-parallel N] [-timeout D] [-json] [-seed S] [-faults NAME] [-fault-seed S] [-trace F]   (full E1..E24 suite)
  serve      [-addr A] [-only IDs] [-parallel N] [-once] [-queue Q] [-service-workers W] [-seed S] [-trace F]
             [-peers A1,A2] [-advertise A] [-heartbeat D] [-no-local-fallback] [-warm-push N] [-cluster-faults NAME]
             [-slow-ms MS] [-slow-profile-dir DIR] [-runtime-sample D]   (suite + live metrics + /v1 service; -peers = sharded cluster node)
  trace      [-top N] [-id TRACE] [-min-ms MS] [-json] [-assert-joined N] [-check-metrics URL] node1.jsonl [node2.jsonl ...]   (join multi-node traces, waterfalls + attribution)
  gap        [-s0 S] [-eps E]   (the conclusion's open-problem table)
`)
}
