package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"universalnet/internal/experiments"
	"universalnet/internal/obs"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test after two seconds. A plain equality check would be
// flaky: finished goroutines take a scheduler beat to be reaped.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines = %d, want <= %d after shutdown\n%s", n, want, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunServeShutdownNoLeak is the regression test for serve's lifecycle:
// canceling the context must close the server, return from runServe, flush
// the trace sink, and leave no goroutine behind.
func TestRunServeShutdownNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	exps, err := experiments.Select([]string{"E2"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := experimentConfig(1, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, ln, exps, cfg, serveOpts{
			parallel:  2,
			tracePath: tracePath,
		}, &out)
	}()

	// The server must answer while the suite runs / idles. The JSON snapshot
	// moved to /metrics.json (and stays on /metrics under Accept).
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	var snap obs.Snapshot
	if err := pollJSON(client, "http://"+addr+"/metrics.json", &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	// /metrics itself is Prometheus text exposition — parser-verified.
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	fams, err := obs.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition: %v", err)
	}
	if len(fams) == 0 {
		t.Error("/metrics exposition is empty")
	}
	// JSON content negotiation on /metrics proper.
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var negotiated obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&negotiated); err != nil {
		t.Errorf("/metrics with Accept: application/json not JSON: %v", err)
	}
	resp.Body.Close()
	var vars struct {
		Uninet *obs.Snapshot `json:"uninet"`
	}
	if err := pollJSON(client, "http://"+addr+"/debug/vars", &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if vars.Uninet == nil {
		t.Error("/debug/vars missing the uninet expvar")
	}
	tr.CloseIdleConnections()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe returned %v, want nil on interrupt", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServe did not return after cancel")
	}

	// The port must be closed …
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting connections after shutdown")
	}
	// … the trace sink flushed with at least the experiment span …
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"experiment"`) || !strings.Contains(string(trace), `"E2"`) {
		t.Errorf("trace file missing experiment span:\n%s", trace)
	}
	// … and every goroutine runServe started must be gone. Allow two over
	// the pre-test count for test-runner and HTTP-client stragglers that do
	// not belong to runServe.
	waitGoroutines(t, baseline+2)

	if !strings.Contains(out.String(), "suite done") {
		t.Errorf("missing suite summary in output:\n%s", out.String())
	}
}

// TestRunServeDrainWindow covers the graceful-drain contract: after the
// shutdown trigger, the server answers new requests with an explicit 503
// for the drain-grace window instead of letting them race the listener
// teardown — and still leaves no goroutine behind afterwards.
func TestRunServeDrainWindow(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	exps, err := experiments.Select([]string{"E2"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := experimentConfig(1, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, ln, exps, cfg, serveOpts{
			parallel:   1,
			drainGrace: 500 * time.Millisecond,
		}, &out)
	}()

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	defer tr.CloseIdleConnections()

	// The service must answer before the drain: a real request end to end.
	body := `{"topology":"ring","n":16,"m":8,"seed":1,"steps":2}`
	var postErr error
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Post("http://"+addr+"/v1/simulate", "application/json", strings.NewReader(body))
		if err == nil && resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		if err == nil {
			postErr = fmt.Errorf("status %s", resp.Status)
			resp.Body.Close()
		} else {
			postErr = err
		}
		if time.Now().After(deadline) {
			t.Fatalf("/v1/simulate never answered 200: %v", postErr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()

	// During the grace window new requests must observe an explicit 503 —
	// not a connection error. Poll through the small gap between cancel()
	// and the draining flag flipping.
	saw503 := false
	deadline = time.Now().Add(2 * time.Second)
	for !saw503 {
		resp, err := client.Get("http://" + addr + "/v1/status")
		if err != nil {
			t.Fatalf("connection failed before a 503 was observed: %v", err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("never observed a 503 during the drain window")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.CloseIdleConnections()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe returned %v, want nil on interrupt", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe did not return after cancel")
	}
	// Every goroutine from the server, the service worker pool, and the
	// drain machinery must be gone.
	waitGoroutines(t, baseline+2)
}

// TestRunServeOnce covers the -once path: runServe returns by itself after
// the suite, reporting suite errors, without waiting for a cancel.
func TestRunServeOnce(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exps, err := experiments.Select([]string{"E3"})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := experimentConfig(1, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(context.Background(), ln, exps, cfg, serveOpts{parallel: 1, once: true}, &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe -once: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe -once did not return")
	}
	if !strings.Contains(out.String(), "1 experiments, 0 failed") {
		t.Errorf("unexpected summary:\n%s", out.String())
	}
}

// pollJSON GETs url until it answers 200 with decodable JSON (the server
// goroutine may not have accepted its listener yet on the first try).
func pollJSON(client *http.Client, url string, into any) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Get(url)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				err = json.NewDecoder(resp.Body).Decode(into)
				resp.Body.Close()
				return err
			}
			resp.Body.Close()
			err = fmt.Errorf("status %s", resp.Status)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
}
