package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"universalnet/internal/obs"
)

// The CLI tests drive every subcommand in-process with small parameters.
// Output goes to stdout (not asserted beyond error-free completion); the
// underlying logic is covered by the package tests.

func TestCmdTopoAllKinds(t *testing.T) {
	kinds := [][]string{
		{"-kind", "mesh", "-n", "16"},
		{"-kind", "torus", "-n", "16"},
		{"-kind", "multitorus", "-n", "144", "-a", "4"},
		{"-kind", "butterfly", "-d", "3"},
		{"-kind", "wbutterfly", "-d", "3"},
		{"-kind", "ccc", "-d", "3"},
		{"-kind", "se", "-d", "3"},
		{"-kind", "debruijn", "-d", "3"},
		{"-kind", "hypercube", "-d", "3"},
		{"-kind", "regular", "-n", "16", "-deg", "4"},
		{"-kind", "g0", "-n", "144", "-a", "4"},
		{"-kind", "ring", "-n", "8"},
		{"-kind", "complete", "-n", "6"},
	}
	for _, args := range kinds {
		if err := cmdTopo(args); err != nil {
			t.Errorf("topo %v: %v", args, err)
		}
	}
	if err := cmdTopo([]string{"-kind", "nope"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestCmdRoute(t *testing.T) {
	if err := cmdRoute([]string{"-kind", "torus", "-n", "36", "-h", "2", "-trials", "2"}); err != nil {
		t.Error(err)
	}
	if err := cmdRoute([]string{"-kind", "torus", "-n", "36", "-h", "1", "-trials", "1", "-singleport"}); err != nil {
		t.Error(err)
	}
}

func TestCmdSimulate(t *testing.T) {
	for _, host := range []string{"butterfly", "torus", "expander", "ring"} {
		args := []string{"-host", host, "-hostdim", "3", "-hostsize", "16", "-n", "32", "-steps", "2"}
		if err := cmdSimulate(args); err != nil {
			t.Errorf("simulate %s: %v", host, err)
		}
	}
	if err := cmdSimulate([]string{"-host", "nope"}); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestCmdBoundAndTradeoff(t *testing.T) {
	if err := cmdBound([]string{"-n", "1024", "-m", "256"}); err != nil {
		t.Error(err)
	}
	if err := cmdBound([]string{"-log2m", "1000000"}); err != nil {
		t.Error(err)
	}
	if err := cmdBound([]string{"-n", "1024", "-m", "256", "-toy"}); err != nil {
		t.Error(err)
	}
	if err := cmdTradeoff([]string{"-n", "4096", "-ms", "64,256", "-toy"}); err != nil {
		t.Error(err)
	}
	if err := cmdTradeoff([]string{"-ms", "64,abc"}); err == nil {
		t.Error("bad size list accepted")
	}
}

func TestCmdPebbleSaveLoad(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "p.json")
	if err := cmdPebble([]string{"-n", "12", "-steps", "2", "-save", file}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatal(err)
	}
	if err := cmdPebble([]string{"-load", file}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPebble([]string{"-load", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdFigure1(t *testing.T) {
	if err := cmdFigure1([]string{"-blockside", "4"}); err != nil {
		t.Error(err)
	}
}

func TestCmdCount(t *testing.T) {
	if err := cmdCount([]string{"-n", "6", "-c", "3"}); err != nil {
		t.Error(err)
	}
	if err := cmdCount([]string{"-n", "30", "-c", "3"}); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestCmdExperimentSmall(t *testing.T) {
	// The cheap experiments; the heavy ones run in the bench harness.
	for _, id := range []string{"E2", "E3", "E6", "E8", "E11"} {
		if err := cmdExperiment([]string{"-id", id}); err != nil {
			t.Errorf("experiment %s: %v", id, err)
		}
	}
	if err := cmdExperiment([]string{"-id", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed. fn must succeed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", runErr, out)
	}
	return string(out)
}

func TestCmdExperimentOnlyJSON(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExperiment([]string{"-only", "E2,E3", "-parallel", "4", "-json"})
	})
	dec := json.NewDecoder(strings.NewReader(out))
	var ids []string
	for dec.More() {
		var obj map[string]any
		if err := dec.Decode(&obj); err != nil {
			t.Fatalf("invalid JSON line: %v\noutput:\n%s", err, out)
		}
		id, _ := obj["id"].(string)
		ids = append(ids, id)
		if _, ok := obj["duration_ms"].(float64); !ok {
			t.Errorf("%s: missing duration_ms", id)
		}
		if _, ok := obj["seed"].(float64); !ok {
			t.Errorf("%s: missing seed", id)
		}
		if _, ok := obj["payload"]; !ok {
			t.Errorf("%s: missing payload", id)
		}
		if msg, ok := obj["error"]; ok {
			t.Errorf("%s: unexpected error %v", id, msg)
		}
	}
	if strings.Join(ids, ",") != "E2,E3" {
		t.Fatalf("ids = %v, want [E2 E3]", ids)
	}
}

// jsonLine is the decoded shape of one `-json` output line, keeping the
// metrics snapshot both raw (for byte-level comparison) and decoded.
type jsonLine struct {
	ID      string          `json:"id"`
	Seed    int64           `json:"seed"`
	Payload json.RawMessage `json:"payload"`
	Metrics json.RawMessage `json:"metrics"`
	Error   string          `json:"error"`
}

func decodeJSONLines(t *testing.T, out string) []jsonLine {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(out))
	var lines []jsonLine
	for dec.More() {
		var ln jsonLine
		if err := dec.Decode(&ln); err != nil {
			t.Fatalf("invalid JSON line: %v\noutput:\n%s", err, out)
		}
		if ln.Error != "" {
			t.Fatalf("%s: unexpected error %q", ln.ID, ln.Error)
		}
		lines = append(lines, ln)
	}
	return lines
}

// TestCmdExperimentJSONMetricsSnapshot golden-decodes one experiment's
// metrics object and checks the instruments the E8 body is wired to record.
func TestCmdExperimentJSONMetricsSnapshot(t *testing.T) {
	out := captureStdout(t, func() error {
		return cmdExperiment([]string{"-only", "E8", "-json"})
	})
	lines := decodeJSONLines(t, out)
	if len(lines) != 1 || lines[0].ID != "E8" {
		t.Fatalf("lines = %+v, want one E8 line", lines)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(lines[0].Metrics, &snap); err != nil {
		t.Fatalf("metrics did not decode as obs.Snapshot: %v\n%s", err, lines[0].Metrics)
	}
	if snap.Counters["routing.phases.greedy"] == 0 {
		t.Errorf("routing.phases.greedy = 0, want > 0; counters: %v", snap.Counters)
	}
	if snap.Counters["routing.delivered"] == 0 {
		t.Error("routing.delivered = 0, want > 0")
	}
	if _, ok := snap.Gauges["routing.max_queue"]; !ok {
		t.Errorf("missing routing.max_queue gauge; gauges: %v", snap.Gauges)
	}
	h, ok := snap.Histograms["routing.steps_per_phase"]
	if !ok {
		t.Fatalf("missing routing.steps_per_phase histogram; histograms present: %d", len(snap.Histograms))
	}
	if h.Count == 0 || h.Count != snap.Counters["routing.phases"] {
		t.Errorf("steps_per_phase count = %d, want routing.phases = %d",
			h.Count, snap.Counters["routing.phases"])
	}
}

// TestCmdExperimentJSONMetricsDeterministic is the acceptance criterion: for
// a fixed seed the per-experiment metrics snapshot in `-json` output is
// byte-identical across worker counts (serial, 4 workers, GOMAXPROCS).
func TestCmdExperimentJSONMetricsDeterministic(t *testing.T) {
	run := func(parallel string) map[string]string {
		out := captureStdout(t, func() error {
			return cmdExperiment([]string{"-only", "E2,E3,E8,E11", "-parallel", parallel, "-json"})
		})
		metrics := make(map[string]string)
		for _, ln := range decodeJSONLines(t, out) {
			metrics[ln.ID] = string(ln.Metrics)
		}
		return metrics
	}
	base := run("1")
	for _, parallel := range []string{"4", "0"} {
		got := run(parallel)
		for id, want := range base {
			if got[id] != want {
				t.Errorf("-parallel %s: %s metrics differ from -parallel 1\n got: %s\nwant: %s",
					parallel, id, got[id], want)
			}
		}
	}
}

func TestCmdExperimentList(t *testing.T) {
	out := captureStdout(t, func() error { return cmdExperiment([]string{"-list"}) })
	for _, want := range []string{"E1", "E22", "Thm 2.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestCmdAnalyze(t *testing.T) {
	if err := cmdAnalyze([]string{"-blockside", "4", "-hostdim", "3", "-extra", "4"}); err != nil {
		t.Error(err)
	}
}

func TestCmdGapAndReportSmoke(t *testing.T) {
	if err := cmdGap([]string{"-s0", "2", "-eps", "0.5"}); err != nil {
		t.Error(err)
	}
	if err := cmdGap([]string{"-s0", "0.2"}); err == nil {
		t.Error("s0 < 1 accepted")
	}
}

func TestCmdReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	if err := cmdReport([]string{"-seed", "2"}); err != nil {
		t.Error(err)
	}
}

func TestCmdTopoSaveLoad(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.json")
	if err := cmdTopo([]string{"-kind", "torus", "-n", "16", "-save", file}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTopo([]string{"-load", file}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTopo([]string{"-load", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}
