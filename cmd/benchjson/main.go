// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a JSON object mapping benchmark name to its measurements,
// for machine-readable performance baselines (`make bench-json`).
//
// Input lines it understands look like
//
//	BenchmarkE1Suite-8   	      12	  95310417 ns/op	 4240168 B/op	   31456 allocs/op
//
// Everything else (pass/fail markers, package headers, goos/goarch banners)
// is ignored. The trailing -N GOMAXPROCS suffix is stripped so baselines
// compare across machines. Output is a single indented JSON object sorted by
// benchmark name:
//
//	{
//	  "BenchmarkE1Suite": {"ns_per_op": 95310417, "bytes_per_op": 4240168, "allocs_per_op": 31456, "iterations": 12}
//	}
//
// Compare mode checks a new baseline against an old one
// (`make bench-compare`):
//
//	benchjson -compare OLD.json NEW.json -tol-ns 25 -tol-allocs 10
//
// prints a per-benchmark delta table and exits non-zero when any shared
// benchmark regresses beyond the percentage tolerances (-tol-ns, -tol-bytes,
// -tol-allocs). Benchmarks present in only one file are reported but never
// count as regressions, so baselines can gain and lose benchmarks freely.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's parsed result line.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// benchLine matches a `testing.B` result row. ns/op is mandatory; the
// -benchmem columns are optional so plain `-bench` output still parses.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// gomaxprocsSuffix is the trailing -N the testing package appends to the
// benchmark name when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark text from r and returns name → measurement. A name
// appearing twice (e.g. -count > 1) keeps the last occurrence.
func parse(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		meas := Measurement{NsPerOp: ns, Iterations: iters}
		if m[4] != "" {
			meas.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			meas.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out[name] = meas
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results) // map keys marshal sorted
}

// loadBaseline reads a benchjson-format JSON baseline file.
func loadBaseline(path string) (map[string]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Measurement
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// deltaPct returns the percentage change from old to new. A zero old value
// yields 0 when new is also zero and +100 per unit otherwise, so a metric
// appearing from nothing is visible without dividing by zero.
func deltaPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100 * new
	}
	return 100 * (new - old) / old
}

// tolerances holds the allowed percentage growth per metric before a
// benchmark counts as regressed.
type tolerances struct {
	ns, bytes, allocs float64
}

// compare renders the delta table of new versus old and returns the number
// of shared benchmarks regressing beyond tolerance in any metric.
func compare(oldM, newM map[string]Measurement, tol tolerances, w io.Writer) int {
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	regressed := 0
	fmt.Fprintf(w, "%-40s %12s %12s %12s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs Δ")
	for _, name := range names {
		o, n := oldM[name], newM[name]
		dNs := deltaPct(o.NsPerOp, n.NsPerOp)
		dBytes := deltaPct(float64(o.BytesPerOp), float64(n.BytesPerOp))
		dAllocs := deltaPct(float64(o.AllocsPerOp), float64(n.AllocsPerOp))
		bad := dNs > tol.ns || dBytes > tol.bytes || dAllocs > tol.allocs
		mark := ""
		if bad {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%-40s %+11.1f%% %+11.1f%% %+11.1f%%%s\n", name, dNs, dBytes, dAllocs, mark)
	}
	for name := range oldM {
		if _, ok := newM[name]; !ok {
			fmt.Fprintf(w, "%-40s only in old baseline\n", name)
		}
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			fmt.Fprintf(w, "%-40s only in new baseline\n", name)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond tolerance (ns>%g%%, bytes>%g%%, allocs>%g%%)\n",
			regressed, tol.ns, tol.bytes, tol.allocs)
	} else {
		fmt.Fprintf(w, "no regressions beyond tolerance (ns>%g%%, bytes>%g%%, allocs>%g%%) across %d shared benchmark(s)\n",
			tol.ns, tol.bytes, tol.allocs, len(names))
	}
	return regressed
}

// runCompare loads the two baselines and writes the delta table; the error
// carries the regression verdict for main's exit code.
func runCompare(oldPath, newPath string, tol tolerances, w io.Writer) error {
	oldM, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newM, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	if regressed := compare(oldM, newM, tol, w); regressed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", regressed)
	}
	return nil
}

func main() {
	comparePath := flag.String("compare", "", "old baseline JSON; with a new baseline as the positional argument, print deltas and fail on regression")
	tolNs := flag.Float64("tol-ns", 25, "allowed ns/op growth in percent before a regression is flagged")
	tolBytes := flag.Float64("tol-bytes", 10, "allowed B/op growth in percent before a regression is flagged")
	tolAllocs := flag.Float64("tol-allocs", 10, "allowed allocs/op growth in percent before a regression is flagged")
	// Parse in a loop so flags may follow positionals, as in
	// `benchjson -compare OLD.json NEW.json -tol-ns 25 -tol-allocs 10`.
	args := os.Args[1:]
	var positionals []string
	for {
		flag.CommandLine.Parse(args) // ExitOnError: exits on bad flags
		rest := flag.CommandLine.Args()
		if len(rest) == 0 {
			break
		}
		positionals = append(positionals, rest[0])
		args = rest[1:]
	}

	if *comparePath != "" {
		if len(positionals) != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare OLD.json needs exactly one NEW.json argument")
			os.Exit(2)
		}
		tol := tolerances{ns: *tolNs, bytes: *tolBytes, allocs: *tolAllocs}
		if err := runCompare(*comparePath, positionals[0], tol, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
