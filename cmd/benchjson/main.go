// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a JSON object mapping benchmark name to its measurements,
// for machine-readable performance baselines (`make bench-json`).
//
// Input lines it understands look like
//
//	BenchmarkE1Suite-8   	      12	  95310417 ns/op	 4240168 B/op	   31456 allocs/op
//
// Everything else (pass/fail markers, package headers, goos/goarch banners)
// is ignored. The trailing -N GOMAXPROCS suffix is stripped so baselines
// compare across machines. Output is a single indented JSON object sorted by
// benchmark name:
//
//	{
//	  "BenchmarkE1Suite": {"ns_per_op": 95310417, "bytes_per_op": 4240168, "allocs_per_op": 31456, "iterations": 12}
//	}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Measurement is one benchmark's parsed result line.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// benchLine matches a `testing.B` result row. ns/op is mandatory; the
// -benchmem columns are optional so plain `-bench` output still parses.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// gomaxprocsSuffix is the trailing -N the testing package appends to the
// benchmark name when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark text from r and returns name → measurement. A name
// appearing twice (e.g. -count > 1) keeps the last occurrence.
func parse(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		meas := Measurement{NsPerOp: ns, Iterations: iters}
		if m[4] != "" {
			meas.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			meas.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out[name] = meas
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results) // map keys marshal sorted
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
