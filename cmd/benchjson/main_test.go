package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: universalnet
cpu: Some CPU @ 2.00GHz
BenchmarkE1Suite-8   	      12	  95310417 ns/op	 4240168 B/op	   31456 allocs/op
BenchmarkRouteTorus 	    4096	    292041 ns/op
BenchmarkPebbleValidate-16	     100	  10500000.5 ns/op	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkSomething-8
    bench_test.go:42: note line, not a result
PASS
ok  	universalnet	12.345s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e1, ok := got["BenchmarkE1Suite"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if e1.NsPerOp != 95310417 || e1.BytesPerOp != 4240168 || e1.AllocsPerOp != 31456 || e1.Iterations != 12 {
		t.Errorf("E1Suite = %+v", e1)
	}
	rt := got["BenchmarkRouteTorus"]
	if rt.NsPerOp != 292041 || rt.BytesPerOp != 0 || rt.AllocsPerOp != 0 {
		t.Errorf("RouteTorus (no -benchmem columns) = %+v", rt)
	}
	if pv := got["BenchmarkPebbleValidate"]; pv.NsPerOp != 10500000.5 {
		t.Errorf("fractional ns/op = %+v", pv)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Measurement
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(decoded))
	}
	// Go marshals map keys sorted, so the baseline file is diff-stable.
	i1 := bytes.Index(out.Bytes(), []byte("BenchmarkE1Suite"))
	i2 := bytes.Index(out.Bytes(), []byte("BenchmarkPebbleValidate"))
	i3 := bytes.Index(out.Bytes(), []byte("BenchmarkRouteTorus"))
	if !(i1 < i2 && i2 < i3) {
		t.Errorf("keys not sorted: positions %d %d %d\n%s", i1, i2, i3, out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok\n"), &out); err == nil {
		t.Error("no-benchmark input accepted")
	}
}

func TestDeltaPct(t *testing.T) {
	cases := []struct{ old, new, want float64 }{
		{100, 125, 25},
		{100, 75, -25},
		{100, 100, 0},
		{0, 0, 0},
		{0, 3, 300}, // appears from nothing: visible, no division by zero
	}
	for _, c := range cases {
		if got := deltaPct(c.old, c.new); got != c.want {
			t.Errorf("deltaPct(%g, %g) = %g, want %g", c.old, c.new, got, c.want)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldM := map[string]Measurement{
		"BenchmarkFast":    {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkSlower":  {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkAllocs":  {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkRemoved": {NsPerOp: 5},
	}
	newM := map[string]Measurement{
		"BenchmarkFast":   {NsPerOp: 500, BytesPerOp: 900, AllocsPerOp: 90},   // improved
		"BenchmarkSlower": {NsPerOp: 1300, BytesPerOp: 1000, AllocsPerOp: 99}, // +30% ns
		"BenchmarkAllocs": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 120},
		"BenchmarkAdded":  {NsPerOp: 7},
	}
	tol := tolerances{ns: 25, bytes: 10, allocs: 10}

	var out bytes.Buffer
	if got := compare(oldM, newM, tol, &out); got != 2 {
		t.Errorf("compare counted %d regressions, want 2 (Slower ns, Allocs allocs)\n%s", got, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkSlower", "REGRESSED",
		"BenchmarkRemoved", "only in old baseline",
		"BenchmarkAdded", "only in new baseline",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "BenchmarkFast                            REGRESSED") {
		t.Errorf("improvement flagged as regression:\n%s", text)
	}
}

func TestCompareWithinToleranceIsClean(t *testing.T) {
	oldM := map[string]Measurement{"BenchmarkX": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 100}}
	newM := map[string]Measurement{"BenchmarkX": {NsPerOp: 1200, BytesPerOp: 1050, AllocsPerOp: 105}}
	var out bytes.Buffer
	if got := compare(oldM, newM, tolerances{ns: 25, bytes: 10, allocs: 10}, &out); got != 0 {
		t.Errorf("within-tolerance drift flagged: %d regressions\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "no regressions beyond tolerance") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	writeBaseline := func(path string, m map[string]Measurement) {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeBaseline(oldPath, map[string]Measurement{"BenchmarkX": {NsPerOp: 1000}})

	writeBaseline(newPath, map[string]Measurement{"BenchmarkX": {NsPerOp: 1000}})
	var out bytes.Buffer
	if err := runCompare(oldPath, newPath, tolerances{ns: 25, bytes: 10, allocs: 10}, &out); err != nil {
		t.Errorf("identical baselines: %v", err)
	}

	writeBaseline(newPath, map[string]Measurement{"BenchmarkX": {NsPerOp: 2000}})
	out.Reset()
	if err := runCompare(oldPath, newPath, tolerances{ns: 25, bytes: 10, allocs: 10}, &out); err == nil {
		t.Error("2x ns/op regression not reported as error")
	}

	if err := runCompare(dir+"/missing.json", newPath, tolerances{}, &out); err == nil {
		t.Error("missing old baseline accepted")
	}
}
