package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: universalnet
cpu: Some CPU @ 2.00GHz
BenchmarkE1Suite-8   	      12	  95310417 ns/op	 4240168 B/op	   31456 allocs/op
BenchmarkRouteTorus 	    4096	    292041 ns/op
BenchmarkPebbleValidate-16	     100	  10500000.5 ns/op	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkSomething-8
    bench_test.go:42: note line, not a result
PASS
ok  	universalnet	12.345s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	e1, ok := got["BenchmarkE1Suite"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: keys %v", got)
	}
	if e1.NsPerOp != 95310417 || e1.BytesPerOp != 4240168 || e1.AllocsPerOp != 31456 || e1.Iterations != 12 {
		t.Errorf("E1Suite = %+v", e1)
	}
	rt := got["BenchmarkRouteTorus"]
	if rt.NsPerOp != 292041 || rt.BytesPerOp != 0 || rt.AllocsPerOp != 0 {
		t.Errorf("RouteTorus (no -benchmem columns) = %+v", rt)
	}
	if pv := got["BenchmarkPebbleValidate"]; pv.NsPerOp != 10500000.5 {
		t.Errorf("fractional ns/op = %+v", pv)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Measurement
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d entries, want 3", len(decoded))
	}
	// Go marshals map keys sorted, so the baseline file is diff-stable.
	i1 := bytes.Index(out.Bytes(), []byte("BenchmarkE1Suite"))
	i2 := bytes.Index(out.Bytes(), []byte("BenchmarkPebbleValidate"))
	i3 := bytes.Index(out.Bytes(), []byte("BenchmarkRouteTorus"))
	if !(i1 < i2 && i2 < i3) {
		t.Errorf("keys not sorted: positions %d %d %d\n%s", i1, i2, i3, out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok\n"), &out); err == nil {
		t.Error("no-benchmark input accepted")
	}
}
