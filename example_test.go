package universalnet_test

// Runnable godoc examples: each is both documentation and a test (the
// Output comments are verified by `go test`). All randomness is seeded.

import (
	"fmt"
	"math/rand"

	universalnet "universalnet"
)

// The core use case: simulate an arbitrary constant-degree network on a
// smaller universal butterfly host and verify the result.
func ExampleEmbeddingSimulator() {
	rng := rand.New(rand.NewSource(42))
	guest, _ := universalnet.RandomGuest(rng, 96, 4)
	host, _ := universalnet.ButterflyHost(3) // m = 24
	comp := universalnet.MixMod(guest, rng)

	rep, _ := (&universalnet.EmbeddingSimulator{Host: host}).Run(comp, 4)
	direct, _ := comp.Run(4)

	fmt.Println("verified:", rep.Trace.Checksum() == direct.Checksum())
	fmt.Println("load:", rep.MaxLoad)
	// Output:
	// verified: true
	// load: 4
}

// Theorem 3.1 numerically: the inefficiency bound k = Ω(log m) depends only
// on log₂ m. The paper's constants keep it trivial until astronomical
// sizes; unit-scale constants show the shape.
func ExampleParams_KLowerBound() {
	paper := universalnet.PaperParams()
	toy := universalnet.ToyParams()
	k1, _ := paper.KLowerBound(4e6)
	k2, _ := toy.KLowerBound(20)
	fmt.Printf("paper constants, log2 m = 4e6: k ≥ %.1f\n", k1)
	fmt.Printf("toy constants,   log2 m = 20:  k ≥ %.2f\n", k2)
	// Output:
	// paper constants, log2 m = 4e6: k ≥ 78.6
	// toy constants,   log2 m = 20:  k ≥ 5.37
}

// The pebble game of §3.1: build a protocol, validate it against the model
// rules, and extract a fragment (Definition 3.2).
func ExampleBuildEmbeddingProtocol() {
	rng := rand.New(rand.NewSource(7))
	guest, _ := universalnet.RandomGuest(rng, 12, 4)
	host, _ := universalnet.WrappedButterfly(3)

	pr, _ := universalnet.BuildEmbeddingProtocol(guest, host, nil, 3)
	st, err := pr.Validate()
	fmt.Println("valid:", err == nil)

	frag, _ := st.ExtractFragment(1, nil)
	fmt.Println("fragment consistent:", frag.Validate() == nil)
	// Output:
	// valid: true
	// fragment consistent: true
}

// The h–h relation decomposition of §2: any h–h problem splits into at most
// h permutation rounds (König's edge-coloring theorem).
func ExampleDecomposeHRelation() {
	pairs := []universalnet.RoutingPair{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, // node 0 sends twice
		{Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	}
	rounds, _ := universalnet.DecomposeHRelation(3, pairs)
	fmt.Println("rounds:", len(rounds))
	total := 0
	for _, r := range rounds {
		total += len(r)
	}
	fmt.Println("pairs covered:", total)
	// Output:
	// rounds: 2
	// pairs covered: 4
}

// The 2^{O(t)}·n tree-cached host: constant slowdown c+2 for length-t runs.
func ExampleBuildTreeCachedHost() {
	host, _ := universalnet.BuildTreeCachedHost(8, 2, 3)
	guest, _ := universalnet.RandomGuest(rand.New(rand.NewSource(3)), 8, 2)
	pr, _ := host.SimulateProtocol(guest)
	if _, err := pr.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("m = %d, slowdown = %.0f\n", host.M(), pr.Slowdown())
	// Output:
	// m = 320, slowdown = 4
}

// Lemma 3.10 made executable: a binary dependency tree whose leaves cover a
// whole partition torus of G₀.
func ExampleBuildDependencyTree() {
	n := universalnet.NextValidG0Size(100, 4)
	g0, _ := universalnet.BuildG0(n, 16, 7)
	depth := universalnet.TreeDepth(g0.BlockSide)

	tree, _ := universalnet.BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	fmt.Println("binary:", tree.Validate(g0.Multitorus, 2) == nil)
	fmt.Println("covers block:", tree.LeavesCover(g0.Blocks[0].Vertices, depth) == nil)
	fmt.Printf("size ≤ 48a²: %v (%d ≤ %d)\n", tree.Size() <= 48*g0.A*g0.A, tree.Size(), 48*g0.A*g0.A)
	// Output:
	// binary: true
	// covers block: true
	// size ≤ 48a²: true (122 ≤ 192)
}

// Offline permutation routing [19]: 2d−1 steps through a Beneš network,
// vertex-disjoint by Waksman's theorem.
func ExampleOfflinePermutationSteps() {
	perm := rand.New(rand.NewSource(5)).Perm(32)
	steps, _ := universalnet.OfflinePermutationSteps(5, perm)
	fmt.Println("steps:", steps)
	// Output:
	// steps: 9
}

// Stateful replay: a valid protocol carries the actual computation.
func ExampleVerifyCarries() {
	rng := rand.New(rand.NewSource(9))
	guest, _ := universalnet.RandomGuest(rng, 16, 4)
	host, _ := universalnet.Torus(9)
	pr, _ := universalnet.BuildEmbeddingProtocol(guest, host, nil, 3)
	comp := universalnet.MixMod(guest, rng)
	fmt.Println("carries computation:", universalnet.VerifyCarries(pr, comp) == nil)
	// Output:
	// carries computation: true
}

// The deterministic offline host of Theorem 2.1's proof: the routing cost
// per guest step is an exact formula, not a measurement.
func ExampleNewBenesHost() {
	bh, _ := universalnet.NewBenesHost(3)
	guest, _ := universalnet.RandomGuest(rand.New(rand.NewSource(11)), 16, 4)
	pr, _ := universalnet.BuildBenesProtocol(guest, bh, 2)
	if _, err := pr.Validate(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rows:", bh.Rows)
	fmt.Println("valid protocol:", true)
	// Output:
	// rows: 8
	// valid protocol: true
}
