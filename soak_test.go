package universalnet

// Soak tests: larger instances of the load-bearing invariants. They run in
// the default test mode and are skipped under -short.

import (
	"math/rand"
	"testing"

	"universalnet/internal/depgraph"
	"universalnet/internal/pebble"
	"universalnet/internal/topology"
)

func TestSoakDependencyTreesBlockSide10(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Block side 10 (a = 5): build and validate a tree for every vertex of
	// two blocks; check the Lemma 3.10 size constant stays bounded.
	blockSide := 10
	n := topology.NextValidG0Size(4*blockSide*blockSide, blockSide)
	g0, err := topology.BuildG0WithBlockSide(n, blockSide, 123)
	if err != nil {
		t.Fatal(err)
	}
	depth := depgraph.TreeDepth(blockSide)
	a := g0.A
	for _, bi := range []int{0, len(g0.Blocks) - 1} {
		for _, v := range g0.Blocks[bi].Vertices {
			tree, err := depgraph.BuildDependencyTree(g0, v, depth)
			if err != nil {
				t.Fatalf("root %d: %v", v, err)
			}
			if err := tree.Validate(g0.Multitorus, 2); err != nil {
				t.Fatalf("root %d: %v", v, err)
			}
			if err := tree.LeavesCover(g0.Blocks[bi].Vertices, depth); err != nil {
				t.Fatalf("root %d: %v", v, err)
			}
			if tree.Size() > 60*a*a {
				t.Fatalf("root %d: size %d > 60a² (a=%d)", v, tree.Size(), a)
			}
		}
	}
}

func TestSoakLargeSimulationVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(77))
	guest, err := RandomGuest(rng, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := MixMod(guest, rng)
	host, err := ButterflyHost(5) // m = 160
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("large simulation diverged")
	}
	// Shape: within a small factor of (n/m)·log m.
	pred := UpperBoundSlowdown(1024, 160, 1)
	if rep.Slowdown > 3*pred || rep.Slowdown < pred/3 {
		t.Errorf("slowdown %.1f strays from the (n/m)·log m form %.1f", rep.Slowdown, pred)
	}
}

func TestSoakProtocolCarriesLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(78))
	guest, err := RandomGuest(rng, 128, 6)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.CubeConnectedCycles(4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	comp := MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
	// The single-port model bookkeeping: total ops fit within T'·m.
	st := pr.Stats()
	if st.TotalOps > pr.HostSteps()*host.N() {
		t.Errorf("ops %d exceed the T'·m budget %d", st.TotalOps, pr.HostSteps()*host.N())
	}
}

func TestSoakBenesLargePermutations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(79))
	for _, d := range []int{8, 10} {
		perm := rng.Perm(1 << d)
		steps, err := OfflinePermutationSteps(d, perm)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if steps != 2*d-1 {
			t.Errorf("d=%d: steps %d", d, steps)
		}
	}
}

func TestSoakRandomProtocolFuzzWide(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		guest, err := RandomGuest(rng, 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		host, err := topology.Torus(9)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := pebble.RandomProtocol(guest, host, 3, rng, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		comp := MixMod(guest, rng)
		if err := pebble.VerifyCarries(pr, comp); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSoakLemma312AtBlockSide6(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// The full Lemma 3.12 machinery at the next G₀ size up: blockSide 6
	// (a = 3, D = 28), n = 144, T = 36.
	g0, err := topology.BuildG0WithBlockSide(144, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	guest, err := g0.SampleGuest(rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	D := depgraph.TreeDepth(6)
	T := D + 8
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		t.Fatal(err)
	}
	z := lw.CriticalTimes(T)
	if len(z) < (T-D)/2 {
		t.Fatalf("|Z_S| = %d below guarantee %d", len(z), (T-D)/2)
	}
	if lw.TreeSize > 48*g0.A*g0.A {
		t.Errorf("tree size %d above 48a² = %d", lw.TreeSize, 48*g0.A*g0.A)
	}
	for _, t0 := range z {
		if _, err := st.ChooseRoots(g0, lw, t0); err != nil {
			t.Fatalf("t0=%d: %v", t0, err)
		}
	}
}

func TestSoakScaleUp(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// n = 2048 on an m = 896 butterfly: the Theorem 2.1 shape at 10× the
	// experiment scale, trace-verified.
	rng := rand.New(rand.NewSource(91))
	guest, err := RandomGuest(rng, 2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := MixMod(guest, rng)
	host, err := ButterflyHost(7) // m = 896
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).Run(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("large-scale simulation diverged")
	}
	pred := UpperBoundSlowdown(2048, host.Graph.N(), 1)
	if rep.Slowdown > 3*pred {
		t.Errorf("slowdown %.1f strays above 3× the (n/m)·log m form %.1f", rep.Slowdown, pred)
	}
}
