#!/bin/sh
# bigsim_smoke.sh — streaming-pipeline smoke across the build-shards matrix.
#
# Runs `uninet bigsim` at n=10⁵ twice: serial build (-build-shards 1) and
# parallel build (-build-shards = GOMAXPROCS/nproc). Both runs must
#
#   1. pass the peak-bytes assertion (the stream must never materialize), and
#   2. report byte-identical stream fingerprints — the deterministic merge
#      makes the sharded build indistinguishable from the serial one at the
#      encoded-bytes level, so any divergence is a bug, not noise.
#
# GOMEMLIMIT makes an accidental full materialization fail loudly instead of
# silently paging. Used by `make bigsim-smoke` and CI.
set -eu

GO=${GO:-go}
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

$GO build -o "$BIN/uninet" ./cmd/uninet

PROCS=$(nproc 2>/dev/null || echo 2)
[ "$PROCS" -ge 1 ] || PROCS=1

run_bigsim() {
	GOMEMLIMIT=512MiB "$BIN/uninet" bigsim -n 100000 -deg 3 -hostdim 5 -steps 2 \
		-chunk-kb 256 -budget-kb 4096 -assert-peak-bytes 8388608 -seed 1 \
		-build-shards "$1"
}

echo "== bigsim -build-shards 1 =="
OUT1=$(run_bigsim 1)
echo "$OUT1"
FP1=$(echo "$OUT1" | grep '^stream fingerprint:')
[ -n "$FP1" ] || { echo "bigsim_smoke: no fingerprint in serial run" >&2; exit 1; }

echo "== bigsim -build-shards $PROCS =="
OUT2=$(run_bigsim "$PROCS")
echo "$OUT2"
FP2=$(echo "$OUT2" | grep '^stream fingerprint:')

if [ "$FP1" != "$FP2" ]; then
	echo "bigsim_smoke: fingerprint mismatch between build-shards 1 and $PROCS:" >&2
	echo "  serial:  $FP1" >&2
	echo "  sharded: $FP2" >&2
	exit 1
fi
echo "bigsim_smoke: fingerprints identical across build-shards {1, $PROCS}: OK"
