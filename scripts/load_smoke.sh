#!/bin/sh
# load_smoke.sh — end-to-end smoke of the /v1 service under load.
#
# Starts a deliberately tiny `uninet serve` (one service worker, two queue
# slots), then drives it with uninetload in two phases:
#
#   1. warm closed-loop phase against one request tuple: after the first
#      computation every answer must come from the result cache, so the run
#      must finish with zero errors and the server must report cache hits;
#   2. open-loop burst at an over-capacity arrival rate against a *fresh*
#      seed: the single worker is busy computing, the two queue slots fill,
#      and admission control must reject at least one request with 429.
#
# Exit nonzero if either phase errors, no cache hit is observed, or no
# rejection is observed. Used by `make load-smoke` and CI.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8219}
BIN=$(mktemp -d)
trap 'kill $SERVE_PID 2>/dev/null || true; wait $SERVE_PID 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/uninet" ./cmd/uninet
$GO build -o "$BIN/uninetload" ./cmd/uninetload

# A tiny service makes overload cheap to provoke: one worker, two queue
# slots. -only E2 keeps the startup suite fast.
"$BIN/uninet" serve -addr "$ADDR" -only E2 -service-workers 1 -queue 2 &
SERVE_PID=$!

# Wait for the service to answer.
i=0
until "$BIN/uninetload" -addr "$ADDR" -endpoint route -topology ring -m 8 -duration 10ms >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "load_smoke: server never came up on $ADDR" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== phase 1: warm closed loop (cache hits, zero errors) =="
"$BIN/uninetload" -addr "$ADDR" -endpoint simulate -mode closed -c 4 \
    -duration 2s -topology torus -n 64 -m 16 -seeds 1 -seed-base 42 \
    -assert-cache-hits

echo "== phase 2: open-loop burst past capacity (429 rejections) =="
# A fresh seed forces a real computation; 500 rps into a 1-worker/2-slot
# service overflows the queue while that computation runs. 429s are
# rejections, not errors, so -assert-rejections plus zero errors is the
# pass condition.
"$BIN/uninetload" -addr "$ADDR" -endpoint simulate -mode open -rps 500 \
    -duration 1s -topology expander -n 4096 -m 64 -steps 16 -seeds 1000 -seed-base 90000 \
    -assert-rejections

echo "load_smoke: OK"
