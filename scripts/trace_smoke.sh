#!/bin/sh
# trace_smoke.sh — end-to-end smoke of the distributed-tracing pipeline.
#
# Boots three `uninet serve` nodes in a full mesh, each writing a per-node
# JSONL trace file, with the slow-request watchdog armed (-slow-ms), auto
# CPU profiling enabled, runtime health sampling on a fast tick, and the
# slow-net fault scenario delaying a fifth of forwards — guaranteeing the
# watchdog has something to catch. Then:
#
#   1. uninetload drives forwarded traffic with client-stamped trace IDs
#      (-stamp-traces): zero errors, at least one forward, and at least one
#      stamped trace echoed back joined (-assert-trace-joins);
#   2. /metrics on a live node must parse as Prometheus text exposition
#      (uninet trace -check-metrics);
#   3. /metrics.json across the nodes must show the watchdog fired
#      (service.slow_requests ≥ 1 summed) and runtime health sampling alive
#      (runtime.goroutines > 0), and a pprof CPU capture must exist on disk;
#   4. every node must have logged a slow-request line with a per-stage
#      breakdown (stages_us);
#   5. after a graceful SIGINT (sinks flush on drain), the three JSONL files
#      must join into at least one cross-node trace with full parentage
#      (uninet trace -assert-joined 1).
#
# Exit nonzero on any violation. Used by `make trace-smoke` and CI.
set -eu

GO=${GO:-go}
HOST=${HOST:-127.0.0.1}
P1=${P1:-8241}
P2=${P2:-8242}
P3=${P3:-8243}
A1="$HOST:$P1"; A2="$HOST:$P2"; A3="$HOST:$P3"
DIR=$(mktemp -d)
trap 'kill $PID1 $PID2 $PID3 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$DIR"' EXIT

$GO build -o "$DIR/uninet" ./cmd/uninet
$GO build -o "$DIR/uninetload" ./cmd/uninetload
mkdir -p "$DIR/profiles"

# Full mesh, tracing to one JSONL file per node. -slow-ms 10 under slow-net
# (20% of forwards delayed 1–50ms) makes watchdog hits near-certain within a
# few hundred forwarded requests. -only E2 keeps startup fast.
i=1
for a in "$A1" "$A2" "$A3"; do
    case "$a" in
    "$A1") peers="$A2,$A3" ;;
    "$A2") peers="$A1,$A3" ;;
    *) peers="$A1,$A2" ;;
    esac
    "$DIR/uninet" serve -addr "$a" -peers "$peers" -heartbeat 200ms -only E2 \
        -trace "$DIR/node$i.jsonl" \
        -slow-ms 10 -slow-profile-dir "$DIR/profiles" -runtime-sample 500ms \
        -cluster-faults slow-net >"$DIR/node$i.log" 2>&1 &
    eval "PID$i=\$!"
    i=$((i + 1))
done

for a in "$A1" "$A2" "$A3"; do
    i=0
    until curl -sf "http://$a/v1/health" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "trace_smoke: node $a never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
done

echo "== phase 1: stamped forwarded traffic (zero errors, traces echoed) =="
"$DIR/uninetload" -peers "$A1,$A2,$A3" -endpoint simulate -mode closed -c 6 \
    -duration 3s -topology torus -n 64 -m 16 -seeds 32 -seed-base 42 \
    -stamp-traces -trace-seed 99 -assert-forwards -assert-trace-joins

echo "== phase 2: /metrics must be valid Prometheus exposition =="
"$DIR/uninet" trace -check-metrics "http://$A1/metrics"

echo "== phase 3: watchdog + runtime sampler visible in /metrics.json =="
SLOW=0
for a in "$A1" "$A2" "$A3"; do
    node_slow=$(curl -sf "http://$a/metrics.json" |
        jq '.counters["service.slow_requests"] // 0')
    goroutines=$(curl -sf "http://$a/metrics.json" |
        jq '.gauges["runtime.goroutines"] // 0')
    echo "node $a: slow_requests=$node_slow goroutines=$goroutines"
    if [ "$goroutines" -le 0 ]; then
        echo "trace_smoke: node $a reports no runtime.goroutines gauge" >&2
        exit 1
    fi
    SLOW=$((SLOW + node_slow))
done
if [ "$SLOW" -lt 1 ]; then
    echo "trace_smoke: watchdog never fired under slow-net (slow_requests=$SLOW)" >&2
    exit 1
fi
# A slow request must have auto-captured a CPU profile…
sleep 1 # captures are asynchronous (500ms window) — let the file land
if ! ls "$DIR/profiles"/profile_*.pprof >/dev/null 2>&1; then
    echo "trace_smoke: no automatic CPU profile was captured" >&2
    exit 1
fi
# …and logged a structured line with the per-stage breakdown.
if ! grep -l '"stages_us"' "$DIR"/node[123].log >/dev/null 2>&1; then
    echo "trace_smoke: no slow-request log line with stages_us found" >&2
    exit 1
fi

echo "== phase 4: graceful stop, then join the per-node traces =="
kill -INT "$PID1" "$PID2" "$PID3"
wait "$PID1" "$PID2" "$PID3" 2>/dev/null || true
"$DIR/uninet" trace -assert-joined 1 -top 2 -min-ms 0 \
    "$DIR/node1.jsonl" "$DIR/node2.jsonl" "$DIR/node3.jsonl"

echo "trace_smoke: OK"
