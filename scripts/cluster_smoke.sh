#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the fault-tolerant serving cluster.
#
# Boots three `uninet serve` nodes in a full mesh (-peers), then drives them
# with uninetload in two phases:
#
#   1. warm phase: distinct seeds round-robin across the nodes, so requests
#      land on non-owners and must be forwarded to the consistent-hash owner
#      (-assert-forwards); zero errors and zero inconsistent responses;
#   2. chaos phase: a seeded kill1 scenario SIGKILLs one node mid-run while
#      traffic keeps flowing. Every request must still succeed — the client
#      fails over off the dead node, survivors open the dead peer's breaker
#      and serve its keys as local fallbacks (-assert-failovers) — with p99
#      under a generous bound and, again, zero inconsistent responses.
#
# Afterwards a survivor's /v1/status must show the dead peer down with its
# circuit breaker open. Exit nonzero on any violation. Used by
# `make cluster-smoke` and CI.
set -eu

GO=${GO:-go}
HOST=${HOST:-127.0.0.1}
P1=${P1:-8231}
P2=${P2:-8232}
P3=${P3:-8233}
A1="$HOST:$P1"; A2="$HOST:$P2"; A3="$HOST:$P3"
BIN=$(mktemp -d)
trap 'kill $PID1 $PID2 $PID3 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/uninet" ./cmd/uninet
$GO build -o "$BIN/uninetload" ./cmd/uninetload

# Full mesh: every node lists the other two. -only E2 keeps startup fast;
# a quick heartbeat makes the chaos phase detect the kill promptly.
"$BIN/uninet" serve -addr "$A1" -peers "$A2,$A3" -heartbeat 200ms -only E2 &
PID1=$!
"$BIN/uninet" serve -addr "$A2" -peers "$A1,$A3" -heartbeat 200ms -only E2 &
PID2=$!
"$BIN/uninet" serve -addr "$A3" -peers "$A1,$A2" -heartbeat 200ms -only E2 &
PID3=$!

# Wait for all three nodes to answer.
for a in "$A1" "$A2" "$A3"; do
    i=0
    until curl -sf "http://$a/v1/health" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "cluster_smoke: node $a never came up" >&2
            exit 1
        fi
        sleep 0.1
    done
done

echo "== phase 1: warm cluster traffic (forwards, zero errors, consistent) =="
"$BIN/uninetload" -peers "$A1,$A2,$A3" -endpoint simulate -mode closed -c 6 \
    -duration 2s -topology torus -n 64 -m 16 -seeds 32 -seed-base 42 \
    -assert-forwards

echo "== phase 2: chaos — SIGKILL one node mid-run, every request must succeed =="
# kill1 @ chaos-seed 7 picks its victim deterministically; survivors serve
# the dead node's keyspace as local fallbacks. The p99 bound is generous —
# it exists to catch requests hanging on the dead peer, not to benchmark.
"$BIN/uninetload" -peers "$A1,$A2,$A3" -pids "$PID1,$PID2,$PID3" \
    -chaos kill1 -chaos-seed 7 \
    -endpoint simulate -mode closed -c 6 \
    -duration 4s -topology torus -n 64 -m 16 -seeds 32 -seed-base 4200 \
    -assert-failovers -assert-max-p99-ms 5000

echo "== survivor status: dead peer must be down with an open breaker =="
VICTIM=""
for a in "$A1" "$A2" "$A3"; do
    if ! curl -sf "http://$a/v1/health" >/dev/null 2>&1; then
        VICTIM=$a
    fi
done
if [ -z "$VICTIM" ]; then
    echo "cluster_smoke: chaos phase killed no node" >&2
    exit 1
fi
echo "victim: $VICTIM"
for a in "$A1" "$A2" "$A3"; do
    [ "$a" = "$VICTIM" ] && continue
    STATE=$(curl -sf "http://$a/v1/status" |
        jq -r --arg v "$VICTIM" '.cluster.peers[] | select(.addr == $v) | "\(.state)/\(.breaker)"')
    echo "survivor $a sees $VICTIM: $STATE"
    case "$STATE" in
    down/open | down/half-open) ;;
    *)
        echo "cluster_smoke: survivor $a reports '$STATE', want down with open breaker" >&2
        exit 1
        ;;
    esac
done

echo "cluster_smoke: OK"
