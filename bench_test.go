package universalnet

// The benchmark harness regenerates every experiment of EXPERIMENTS.md.
// Each benchmark runs one experiment end to end and reports its headline
// quantities via b.ReportMetric, so `go test -bench=. -benchmem` reproduces
// the full evaluation. Run with -v to get the formatted tables on stdout
// (printed once per benchmark).
//
// Experiment ↔ paper map:
//   BenchmarkUpperBoundButterfly   — E1, Theorem 2.1 / §2
//   BenchmarkLowerBoundCurve       — E2, Theorem 3.1
//   BenchmarkDependencyTree        — E3, Figure 1 / Lemma 3.10
//   BenchmarkFragmentWeights       — E4, Lemma 3.12
//   BenchmarkExpansionFrontier     — E5, Lemma 3.15 / Prop. 3.17
//   BenchmarkTreeCachedHost        — E6, §1 remark (2^{O(t)}·n host)
//   BenchmarkSizeSlowdownTradeoff  — E7, §1 upper trade-off
//   BenchmarkOfflineRouting        — E8, §2 routing substrate
//   BenchmarkFragmentMultiplicity  — E9, Lemma 3.3
//   BenchmarkG0Expansion           — E10, Definition 3.9
//   BenchmarkStaticEmbeddings      — E11, §1 embeddings contrast
//   BenchmarkRouterAblation        — E12, router ablation
//   BenchmarkAssignmentAblation    — E13, placement ablation
//   BenchmarkObliviousComplete     — E14, §2 complete-network simulation
//   BenchmarkBuilderAblation       — E15, protocol-builder ablation
//   BenchmarkRedundancy            — E16, §1 dynamic embeddings (m vs n)
//   BenchmarkBaselineBounds        — E17, §1 previous-work baselines
//   BenchmarkOfflineTheorem21      — E18, Thm 2.1's offline construction
//   BenchmarkRouteScaling          — E19, §2 route_G(h)
//   BenchmarkMultibutterflyAsymmetry — E20, [17] separation
//   BenchmarkMinimizerAblation     — E21, protocol minimization
//   BenchmarkSpreadingProfiles     — E22, [15] spreading classification

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"universalnet/internal/experiments"
	"universalnet/internal/service"
	"universalnet/internal/topology"
)

var printOnce sync.Map

// printTable emits a table once per benchmark name (benchmarks rerun their
// body many times; the table is identical each time).
func printTable(name string, tab fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", tab)
	}
}

func BenchmarkUpperBoundButterfly(b *testing.B) {
	const n, deg, T = 512, 4, 3
	dims := []int{3, 4, 5, 6}
	var last []experiments.E1Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E1UpperBound(context.Background(), n, deg, T, dims, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E1", experiments.E1Table(n, last))
	var ratios []float64
	for _, r := range last {
		ratios = append(ratios, r.Ratio)
	}
	b.ReportMetric(experiments.GeomMean(ratios), "s/((n/m)logm)")
	b.ReportMetric(last[0].MeasuredS, "slowdown@m="+fmt.Sprint(last[0].M))
}

func BenchmarkLowerBoundCurve(b *testing.B) {
	log2ms := []float64{10, 16, 24, 32, 48, 64, 1e6, 2e6, 4e6}
	var last []experiments.E2Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E2LowerBoundCurve(log2ms)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E2", experiments.E2Table(last))
	b.ReportMetric(last[len(last)-1].PaperK, "k@log2m=4e6")
	b.ReportMetric(last[4].ToyK, "toyk@log2m=48")
}

func BenchmarkDependencyTree(b *testing.B) {
	sides := []int{4, 6, 8}
	var last []experiments.E3Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E3DependencyTrees(sides, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E3", experiments.E3Table(last))
	worstSize, worstDepth := 0.0, 0.0
	for _, r := range last {
		if r.SizePerA2 > worstSize {
			worstSize = r.SizePerA2
		}
		if r.DepthPerA > worstDepth {
			worstDepth = r.DepthPerA
		}
	}
	b.ReportMetric(worstSize, "size/a^2")
	b.ReportMetric(worstDepth, "depth/a")
}

func BenchmarkFragmentWeights(b *testing.B) {
	var last *experiments.E4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4CriticalTimes(64, 4, 3, 16, 24, 11)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ineq1Violated || res.Ineq2Violated {
			b.Fatal("Lemma 3.12 inequalities violated")
		}
		last = res
	}
	b.ReportMetric(float64(last.ZSize), "|Z_S|")
	b.ReportMetric(float64(last.ZLowerBound), "(T-D)/2")
	b.ReportMetric(last.K, "inefficiency_k")
}

func BenchmarkExpansionFrontier(b *testing.B) {
	var last *experiments.E5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5Frontier(64, 4, 3, 8, 0.4, 13)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.MinGap), "min_gap_steps")
	b.ReportMetric(last.BetaSampled, "beta_sampled")
	b.ReportMetric(float64(last.FrontierCap), "max_e_tj")
}

func BenchmarkTreeCachedHost(b *testing.B) {
	depths := []int{2, 3, 4, 5}
	var last []experiments.E6Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E6TreeCache(8, 2, depths, 17)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E6", experiments.E6Table(last))
	b.ReportMetric(last[len(last)-1].Slowdown, "slowdown")
	b.ReportMetric(last[len(last)-1].SizeFactor, "m/n@t=5")
}

func BenchmarkSizeSlowdownTradeoff(b *testing.B) {
	var last []experiments.E7Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E7Tradeoff(context.Background(), 24, 3, 3, 3, 6, 19)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E7", experiments.E7Table(last))
	for _, r := range last {
		if r.Kind == "embedding (ℓ≈1)" {
			b.ReportMetric(r.Slowdown, "s_embed")
		}
		if r.Kind == "tree-cache (ℓ=2^{O(t)})" {
			b.ReportMetric(r.Slowdown, "s_treecache")
		}
	}
}

func BenchmarkOfflineRouting(b *testing.B) {
	dims := []int{3, 4, 5, 6, 7}
	var last []experiments.E8Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E8OfflineRouting(context.Background(), dims, 3, 23)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E8", experiments.E8Table(last))
	b.ReportMetric(last[len(last)-1].PerLogM, "offline/log2m")
	b.ReportMetric(float64(last[len(last)-1].OnlineSteps), "online_steps@d=7")
}

func BenchmarkFragmentMultiplicity(b *testing.B) {
	var last *experiments.E9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9FragmentMultiplicity(context.Background(), 64, 4, 3, 16, 6, 2, 29)
		if err != nil {
			b.Fatal(err)
		}
		if !res.EdgeInclOK {
			b.Fatal("Lemma 3.3 edge inclusion violated")
		}
		last = res
	}
	b.ReportMetric(last.Log2XBound, "log2_X_bound")
	b.ReportMetric(float64(last.MaxD), "max|D_i|")
}

func BenchmarkG0Expansion(b *testing.B) {
	sides := []int{4, 6, 8}
	var last []experiments.E10Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E10G0Expansion(context.Background(), sides, 0.25, 31)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E10", experiments.E10Table(last))
	b.ReportMetric(last[len(last)-1].Lambda2, "lambda2")
	b.ReportMetric(last[len(last)-1].BetaTanner, "beta_tanner")
}

func BenchmarkStaticEmbeddings(b *testing.B) {
	var last []experiments.E11Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E11Embeddings(context.Background(), 64, 4, 41)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E11", experiments.E11Table(last))
	for _, r := range last {
		if r.Guest == "mesh" && r.Strategy == "greedy" {
			b.ReportMetric(float64(r.Dilation), "mesh_greedy_dilation")
		}
		if r.Guest == "random-4-regular" && r.Strategy == "greedy" {
			b.ReportMetric(float64(r.Dilation), "random_greedy_dilation")
		}
	}
}

func BenchmarkRouterAblation(b *testing.B) {
	var last []experiments.E12Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E12RouterAblation(context.Background(), 128, 4, 3, 43)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E12", experiments.E12Table(last))
	for _, r := range last {
		if r.Router == "greedy(min-index)" {
			b.ReportMetric(r.Slowdown, "s_greedy")
		}
		if r.Router == "greedy(single-port)" {
			b.ReportMetric(r.Slowdown, "s_singleport")
		}
	}
}

func BenchmarkAssignmentAblation(b *testing.B) {
	var last []experiments.E13Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E13AssignmentAblation(context.Background(), 64, 3, 47)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E13", experiments.E13Table(last))
	for _, r := range last {
		if r.Guest == "torus" && r.Assignment == "greedy-locality" {
			b.ReportMetric(r.Slowdown, "s_torus_locality")
		}
		if r.Guest == "random-4-regular" && r.Assignment == "balanced (i mod m)" {
			b.ReportMetric(r.Slowdown, "s_random_balanced")
		}
	}
}

func BenchmarkObliviousComplete(b *testing.B) {
	var last []experiments.E14Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E14ObliviousComplete(256, 3, []int{3, 4, 5}, 53)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E14", experiments.E14Table(256, last))
	var ratios []float64
	for _, r := range last {
		ratios = append(ratios, r.Ratio)
	}
	b.ReportMetric(experiments.GeomMean(ratios), "s/((n/m)logm)")
}

func BenchmarkBuilderAblation(b *testing.B) {
	var last []experiments.E15Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E15BuilderAblation(context.Background(), 59)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E15", experiments.E15Table(last))
	var ratios, mratios []float64
	for _, r := range last {
		ratios = append(ratios, r.Ratio)
		mratios = append(mratios, r.MultiRatio)
	}
	b.ReportMetric(experiments.GeomMean(ratios), "pipelined/phased")
	b.ReportMetric(experiments.GeomMean(mratios), "multicast/phased")
}

func BenchmarkRedundancy(b *testing.B) {
	var last []experiments.E16Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E16Redundancy(48, 3, 61)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E16", experiments.E16Table(last))
	for _, r := range last {
		if r.Regime == "m>n" && r.R == 1 {
			b.ReportMetric(r.AvgFetchDist, "fetchdist_r1")
		}
		if r.Regime == "m>n" && r.R == 16 {
			b.ReportMetric(r.AvgFetchDist, "fetchdist_r16")
		}
	}
}

func BenchmarkBaselineBounds(b *testing.B) {
	var last []experiments.E17Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E17Baselines(context.Background(), 256, 3, 67)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E17", experiments.E17Table(256, last))
	for _, r := range last {
		if r.M == 64 && strings.HasPrefix(r.Host, "torus") {
			b.ReportMetric(r.BisectSEst, "bisectS_torus")
		}
		if strings.HasPrefix(r.Host, "expander") {
			b.ReportMetric(r.BisectSEst, "bisectS_expander")
		}
	}
}

func BenchmarkOfflineTheorem21(b *testing.B) {
	var last []experiments.E18Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E18OfflineTheorem21(context.Background(), 128, 3, []int{3, 4, 5}, 71)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E18", experiments.E18Table(128, last))
	for _, r := range last {
		if r.D == 4 {
			b.ReportMetric(r.OfflineS, "s_offline@d=4")
			b.ReportMetric(r.OnlineS, "s_online@d=4")
		}
	}
}

func BenchmarkRouteScaling(b *testing.B) {
	var last []experiments.E19Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E19RouteScaling(context.Background(), []int{1, 2, 4}, 2, 73)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E19", experiments.E19Table(last))
	for _, r := range last {
		if r.H == 4 && r.Topology == "butterfly" {
			b.ReportMetric(float64(r.Steps), "route_bf(4)")
		}
		if r.H == 4 && r.Topology == "ring" {
			b.ReportMetric(float64(r.Steps), "route_ring(4)")
		}
	}
}

func BenchmarkMultibutterflyAsymmetry(b *testing.B) {
	var last []experiments.E20Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E20Multibutterfly(context.Background(), 4, 3, 79)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E20", experiments.E20Table(last))
	for _, r := range last {
		if r.Guest == "multibutterfly" && r.HostName == "butterfly" {
			b.ReportMetric(r.Slowdown, "s_mb_on_bf")
		}
		if r.Guest == "butterfly" && r.HostName == "multibutterfly" {
			b.ReportMetric(r.Slowdown, "s_bf_on_mb")
		}
	}
}

func BenchmarkMinimizerAblation(b *testing.B) {
	var last []experiments.E21Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E21MinimizerAblation(context.Background(), 83)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E21", experiments.E21Table(last))
	for _, r := range last {
		if r.Builder == "phase-based" {
			b.ReportMetric(r.KBefore-r.KAfter, "k_saved_phase")
		}
	}
}

func BenchmarkSpreadingProfiles(b *testing.B) {
	var last []experiments.E22Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.E22Spreading(context.Background(), 6, 89)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	printTable("E22", experiments.E22Table(last))
	for _, r := range last {
		if r.Topology == "torus" {
			b.ReportMetric(r.Exponent, "torus_exponent")
		}
		if r.Topology == "expander" {
			b.ReportMetric(r.Exponent, "expander_exponent")
		}
	}
}

// BenchmarkRunnerParallel runs the full registered suite through the
// experiment runner at workers=1 and workers=GOMAXPROCS — the headline
// speedup of the parallel execution layer.
func BenchmarkRunnerParallel(b *testing.B) {
	cfg := experiments.Config{Seed: 1}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=max", 0}, // 0 ⇒ GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := &experiments.Runner{Workers: bc.workers, FailFast: true}
				if _, err := r.Run(context.Background(), experiments.Registry(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot substrate operations ---

func BenchmarkRandomRegularGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := topology.RandomRegular(rng, 256, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbeddingProtocol(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 128, 4)
	if err != nil {
		b.Fatal(err)
	}
	host, err := topology.WrappedButterfly(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := BuildEmbeddingProtocol(guest, host, nil, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDependencyTreeConstruction(b *testing.B) {
	g0, err := topology.BuildG0WithBlockSide(256, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	depth := TreeDepth(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDependencyTree(g0, i%256, depth); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBenesRouting(b *testing.B) {
	perm := rand.New(rand.NewSource(4)).Perm(1 << 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OfflinePermutationSteps(8, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBenesProtocol(b *testing.B) {
	bh, err := NewBenesHost(4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	guest, err := RandomGuest(rng, 64, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := BuildBenesProtocol(guest, bh, 3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelinedProtocol(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	guest, err := RandomGuest(rng, 64, 4)
	if err != nil {
		b.Fatal(err)
	}
	host, err := WrappedButterfly(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := BuildPipelinedProtocol(guest, host, nil, 3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCacheHit quantifies the service's caching story: the
// same simulation request answered cold (every iteration a fresh seed, so
// every iteration computes) versus warm (one seed, primed once, so every
// iteration is a result-cache hit). The warm path is the steady state of a
// serve deployment — the schedule and result are "known in advance" (§2)
// after the first request.
func BenchmarkServiceCacheHit(b *testing.B) {
	newSvc := func(b *testing.B) *service.Service {
		s := service.New(service.Config{Workers: 2, QueueDepth: 64, CacheBudget: 64 << 20})
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Close(ctx); err != nil {
				b.Error(err)
			}
		})
		return s
	}
	req := service.SimulateRequest{Topology: "torus", N: 64, M: 16, Seed: 1, Steps: 4}
	b.Run("cold", func(b *testing.B) {
		s := newSvc(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := req
			r.Seed = int64(i) + 1 // fresh key: forces a computation
			if _, err := s.Simulate(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := newSvc(b)
		if _, err := s.Simulate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.Simulate(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("warm request missed the cache")
			}
		}
	})
}

// BenchmarkStreamingPipeline runs the streaming data path end to end —
// queued builder → bounded pipe → sharded validator, with the step stream
// teed into a chunked archive — at a size where the materialized and
// streaming paths can still be cross-checked (E24's small-n regime).
func BenchmarkStreamingPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 2048, 3)
	if err != nil {
		b.Fatal(err)
	}
	host, err := topology.WrappedButterfly(4)
	if err != nil {
		b.Fatal(err)
	}
	for _, buildShards := range []int{1, 4} {
		name := "build-shards=1"
		if buildShards != 1 {
			name = "build-shards=4"
		}
		b.Run(name, func(b *testing.B) {
			var last *StreamRunReport
			for i := 0; i < b.N; i++ {
				chunks := NewChunkedLog(ChunkedLogOptions{TargetChunkBytes: 64 << 10, MemBudgetBytes: 128 << 10})
				rep, err := RunStreamingEmbedding(guest, host, nil, 2, StreamRunConfig{
					Shards: 2, BuildShards: buildShards, Window: 8, Chunks: chunks,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := chunks.Close(); err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(last.Slowdown, "slowdown")
			b.ReportMetric(float64(last.PeakChunkBytes), "peak-chunk-bytes")
		})
	}
}
