# universalnet — build, test, and regenerate the evaluation.

GO ?= go

.PHONY: all build check test test-race bench bench-json bench-compare bench-smoke load-smoke cluster-smoke trace-smoke bigsim-smoke redblue-smoke report examples cover clean

# Explicit bench-compare tolerances (percent growth allowed per metric). CI
# and local runs share these so the gate's verdict is reproducible.
BENCH_TOL_NS ?= 25
BENCH_TOL_BYTES ?= 10
BENCH_TOL_ALLOCS ?= 10

all: build test

build:
	$(GO) build ./...

# Static gate: formatting, vet, and a full compile. `make test` runs it first.
check:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...

test: check
	$(GO) test ./...

test-race: check
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark baseline: BENCH_<date>.json maps each benchmark
# name to ns/op, B/op, and allocs/op (see README "Benchmark baselines").
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

# Regression gate: measure afresh and diff against the newest committed
# BENCH_*.json baseline. Exits non-zero when any shared benchmark exceeds the
# explicit tolerances above (ns/op +$(BENCH_TOL_NS)%, B/op +$(BENCH_TOL_BYTES)%,
# allocs/op +$(BENCH_TOL_ALLOCS)%). Required in CI.
bench-compare:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -1); \
	if [ -z "$$base" ]; then echo "no committed BENCH_*.json baseline"; exit 1; fi; \
	echo "comparing against $$base"; \
	tmp=$$(mktemp); \
	$(GO) test -bench=. -benchmem -run=^$$ ./... | $(GO) run ./cmd/benchjson > $$tmp || { rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson -compare $$base $$tmp \
		-tol-ns $(BENCH_TOL_NS) -tol-bytes $(BENCH_TOL_BYTES) -tol-allocs $(BENCH_TOL_ALLOCS); \
	status=$$?; rm -f $$tmp; exit $$status

# CI smoke: every benchmark must still run (one iteration), catching bit-rot
# in the bench harness without paying for full measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Streaming-scale smoke: n=10⁵ build+validate through the streaming
# pipeline at -build-shards 1 and GOMAXPROCS, under a hard Go heap budget.
# Asserts peak resident chunk bytes stay within budget + one open chunk and
# that the stream fingerprints are byte-identical across shard counts (see
# scripts/bigsim_smoke.sh).
bigsim-smoke:
	sh scripts/bigsim_smoke.sh

# End-to-end service smoke: serve + uninetload, asserting zero errors,
# cache hits in the warm phase, and at least one 429 under an over-capacity
# burst (see scripts/load_smoke.sh).
load-smoke:
	sh scripts/load_smoke.sh

# Fault-tolerance smoke: three serve nodes in a full mesh, warm forwarded
# traffic, then a seeded SIGKILL of one node mid-run. Every request must
# succeed (survivors fail over to local compute), responses must stay
# consistent, and survivors must report the dead peer open-circuited (see
# scripts/cluster_smoke.sh).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Tracing smoke: three tracing nodes under slow-net forwarded load with
# client-stamped trace IDs. Asserts valid Prometheus /metrics, a fired
# slow-request watchdog with an automatic CPU capture, a live runtime
# sampler, and at least one cross-node joined trace after a graceful stop
# (see scripts/trace_smoke.sh).
trace-smoke:
	sh scripts/trace_smoke.sh

# Red-blue cost-model smoke: one r-sweep on a wrapped-butterfly host,
# asserting the trade-off the model exists to show — per eviction policy,
# I/O strictly grows as the red budget shrinks while compute and stores
# stay exactly constant, and unbounded red never reloads. The oracle test
# re-certifies Belady against the brute-force optimum on small DAGs.
redblue-smoke:
	$(GO) run ./cmd/uninet redblue -assert-monotone-io -seed 1
	$(GO) test -run TestOracleMatchesBeladyReplay ./internal/redblue/

# Run the full E1..E24 evaluation suite and print every table + figure.
# Pass flags through REPORT_FLAGS, e.g. `make report REPORT_FLAGS="-parallel 0"`.
report: build
	$(GO) run ./cmd/uninet report $(REPORT_FLAGS)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lowerbound
	$(GO) run ./examples/dependencytree
	$(GO) run ./examples/butterflyhost
	$(GO) run ./examples/cellular
	$(GO) run ./examples/pebbleanalysis

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out uninet
