# universalnet — build, test, and regenerate the evaluation.

GO ?= go

.PHONY: all build test test-race bench report examples cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the full E1..E20 evaluation suite and print every table + figure.
report: build
	$(GO) run ./cmd/uninet report

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/lowerbound
	$(GO) run ./examples/dependencytree
	$(GO) run ./examples/butterflyhost
	$(GO) run ./examples/cellular
	$(GO) run ./examples/pebbleanalysis

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out uninet
