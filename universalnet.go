// Package universalnet is the public facade of the universal-parallel-
// network laboratory: a reproduction of "Optimal Trade-Offs Between Size and
// Slowdown for Universal Parallel Networks" (Meyer auf der Heide, Storch,
// Wanka; SPAA 1995).
//
// The facade re-exports the pieces a downstream user needs:
//
//   - graphs and topologies (meshes, tori, multitori, butterflies, CCC,
//     shuffle-exchange, de Bruijn, random regular, the G₀ of Definition 3.9);
//   - the pebble-game simulation model of §3.1 (protocols, fragments,
//     representative/generator sets, frontier analysis);
//   - the Theorem 2.1 universal simulation by static embedding plus h–h
//     routing, with slowdown measurement and trace verification;
//   - the tree-cached constant-slowdown host of §1;
//   - the Theorem 3.1 counting machinery (k = Ω(log m)) with both the
//     paper's constants and unit-scale "toy" constants;
//   - the experiment drivers E1–E19 that regenerate every measured table.
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured results.
package universalnet

import (
	"universalnet/internal/core"
	"universalnet/internal/depgraph"
	"universalnet/internal/embedding"
	"universalnet/internal/expander"
	"universalnet/internal/graph"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// Graph types.
type (
	// Graph is an immutable undirected simple graph (internal/graph).
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Edge is an undirected edge with U < V.
	Edge = graph.Edge
)

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Topology constructors (selection; the internal/topology package has more).
var (
	// MeshOfTrees returns the N×N mesh of trees.
	MeshOfTrees = topology.MeshOfTrees
	// XTree returns the X-tree of the given depth.
	XTree = topology.XTree
	// Torus3D returns the L×L×L torus.
	Torus3D = topology.Torus3D
	// Kautz returns the Kautz graph K(b, d).
	Kautz = topology.Kautz
	// Mesh returns the √n×√n mesh.
	Mesh = topology.Mesh
	// Torus returns the √n×√n torus.
	Torus = topology.Torus
	// Multitorus returns the (a,n)-multitorus of Definition 3.8.
	Multitorus = topology.Multitorus
	// Butterfly returns the unwrapped butterfly of dimension d.
	Butterfly = topology.Butterfly
	// WrappedButterfly returns the wrapped butterfly of dimension d.
	WrappedButterfly = topology.WrappedButterfly
	// CubeConnectedCycles returns the CCC of dimension d.
	CubeConnectedCycles = topology.CubeConnectedCycles
	// ShuffleExchange returns the shuffle-exchange network on 2^d nodes.
	ShuffleExchange = topology.ShuffleExchange
	// DeBruijn returns the binary de Bruijn graph on 2^d nodes.
	DeBruijn = topology.DeBruijn
	// RandomRegular samples a random simple d-regular graph.
	RandomRegular = topology.RandomRegular
	// RandomGuest samples a connected c-regular guest from the class 𝒰'.
	RandomGuest = topology.RandomGuest
	// BuildG0 constructs the spreading subgraph G₀ of Definition 3.9.
	BuildG0 = topology.BuildG0
	// NextValidG0Size rounds n up to a valid G₀ size.
	NextValidG0Size = topology.NextValidG0Size
	// Multibutterfly returns the splitter-based butterfly variant of [17].
	Multibutterfly = topology.Multibutterfly
	// EnumerateRegularGraphs lists every labeled c-regular graph (small n).
	EnumerateRegularGraphs = topology.EnumerateRegularGraphs
)

// G0 is the fixed subgraph of Definition 3.9 with its torus partition.
type G0 = topology.G0

// Pebble game (§3.1).
type (
	// PebbleType identifies a pebble (P_i, t).
	PebbleType = pebble.Type
	// PebbleOp is one host operation (generate, send, receive).
	PebbleOp = pebble.Op
	// Protocol is a recorded simulation protocol S.
	Protocol = pebble.Protocol
	// ProtocolState is the replayed state of a protocol (representatives,
	// generators, weights, frontier).
	ProtocolState = pebble.State
	// Fragment is the (ℬ, ℬ', 𝒟) triple of Definition 3.2.
	Fragment = pebble.Fragment
)

var (
	// BuildEmbeddingProtocol constructs the Theorem 2.1-style protocol for
	// a guest on a host with assignment f (nil = balanced).
	BuildEmbeddingProtocol = pebble.BuildEmbeddingProtocol
	// BuildPipelinedProtocol is the pipelined-schedule variant.
	BuildPipelinedProtocol = pebble.BuildPipelinedProtocol
	// RandomPebbleProtocol generates a random legal protocol (fuzzing and
	// analysis-machinery testing).
	RandomPebbleProtocol = pebble.RandomProtocol
	// ReadProtocolJSON deserializes a protocol written with WriteJSON.
	ReadProtocolJSON = pebble.ReadJSON
	// StatefulReplay executes a protocol with real configurations attached
	// to the pebbles, returning the carried final states.
	StatefulReplay = pebble.StatefulReplay
	// VerifyCarries proves end to end that a protocol simulates the
	// computation: validate, replay with states, compare to direct run.
	VerifyCarries = pebble.VerifyCarries
	// MinimizeProtocol drops no-op transfers and duplicate generations,
	// compacting the protocol (never lengthens it; semantics preserved).
	MinimizeProtocol = pebble.MinimizeProtocol
)

// Streaming protocol pipeline (DESIGN.md §7): builders emit steps into a
// StepSink, validators consume a StepSource, and the protocol never needs to
// be materialized — the path that takes validation to n = 10⁶ guests.
type (
	// StepSource yields protocol steps one host step at a time.
	StepSource = pebble.StepSource
	// StepSink receives protocol steps as they are produced.
	StepSink = pebble.StepSink
	// ProtocolSpec carries the (guest, host, T) frame of a step stream.
	ProtocolSpec = pebble.Spec
	// ChunkedLog is the spill-able varint-encoded protocol archive.
	ChunkedLog = pebble.ChunkedLog
	// ChunkedLogOptions tunes a ChunkedLog's chunk size and memory budget.
	ChunkedLogOptions = pebble.ChunkedLogOptions
	// StreamRunConfig tunes RunStreamingEmbedding.
	StreamRunConfig = universal.StreamRunConfig
	// StreamRunReport summarizes one streaming build+validate run.
	StreamRunReport = universal.StreamRunReport
)

var (
	// ValidateSharded checks a step stream against the pebble-game rules with
	// possession-bitset shards, using memory independent of op count.
	ValidateSharded = pebble.ValidateSharded
	// RunStreamingEmbedding runs builder and sharded validator as a
	// concurrent pipeline over a bounded step pipe.
	RunStreamingEmbedding = universal.RunStreamingEmbedding
	// NewStepPipe creates the bounded builder→validator step channel.
	NewStepPipe = pebble.NewPipe
	// NewChunkedLog creates a chunked protocol archive with a memory budget.
	NewChunkedLog = pebble.NewChunkedLog
	// WriteProtocolBinary writes a step stream in the compact binary format.
	WriteProtocolBinary = pebble.WriteBinary
	// ReadProtocolBinary reads a binary protocol back into materialized form.
	ReadProtocolBinary = pebble.ReadBinary
)

// Dependency graphs (Definition 3.7) and trees (Lemma 3.10).
type (
	// DepNode is a vertex (P, t) of Γ_G.
	DepNode = depgraph.Node
	// DepTree is a dependency tree inside Γ_G.
	DepTree = depgraph.Tree
)

var (
	// BuildDependencyTree builds the Lemma 3.10 tree for a block vertex.
	BuildDependencyTree = depgraph.BuildDependencyTree
	// TreeDepth returns the uniform depth D(p) of the trees for block side p.
	TreeDepth = depgraph.TreeDepth
)

// Routing substrate (§2).
type (
	// RoutingPair is a single packet demand.
	RoutingPair = routing.Pair
	// RoutingProblem is an h–h routing problem.
	RoutingProblem = routing.Problem
	// Router routes problems on graphs.
	Router = routing.Router
	// GreedyRouter is the generic shortest-path router.
	GreedyRouter = routing.GreedyRouter
	// ValiantRouter routes via random intermediates.
	ValiantRouter = routing.ValiantRouter
)

// SortingRouter routes permutations by comparator networks; see also
// OddEvenTransposition and Bitonic schedules.
type SortingRouter = routing.SortingRouter

// DeflectionRouter is the bufferless hot-potato router.
type DeflectionRouter = routing.DeflectionRouter

var (
	// DecomposeHRelation splits an h–h relation into ≤ h permutations.
	DecomposeHRelation = routing.DecomposeHRelation
	// OfflinePermutationSteps routes a permutation offline through a Beneš
	// network in 2d−1 steps.
	OfflinePermutationSteps = routing.OfflinePermutationSteps
	// OddEvenTransposition returns the n-round linear-array sorting network.
	OddEvenTransposition = routing.OddEvenTransposition
	// Bitonic returns Batcher's bitonic sorting network for 2^k inputs.
	Bitonic = routing.Bitonic
	// RoutingLowerBound returns the distance/work lower bound on steps.
	RoutingLowerBound = routing.LowerBoundSteps
)

// Computations (guest workloads).
type (
	// Computation couples a guest with an initial state and transition.
	Computation = sim.Computation
	// Trace records a full execution.
	Trace = sim.Trace
	// State is one processor configuration.
	State = sim.State
)

var (
	// MixMod is the canonical correctness workload.
	MixMod = sim.MixMod
	// Broadcast floods a marker from a source.
	Broadcast = sim.Broadcast
)

// Universal simulation (Theorem 2.1) and hosts.
type (
	// Host bundles a host graph with its router.
	Host = universal.Host
	// EmbeddingSimulator simulates guests on hosts via static embedding.
	EmbeddingSimulator = universal.EmbeddingSimulator
	// RunReport summarizes a simulated execution.
	RunReport = universal.RunReport
	// TreeCachedHost is the 2^{O(t)}·n constant-slowdown host.
	TreeCachedHost = universal.TreeCachedHost
)

// ObliviousPattern fixes a complete-network communication schedule (§2).
type ObliviousPattern = universal.ObliviousPattern

var (
	// RandomObliviousPattern draws T random permutation rounds.
	RandomObliviousPattern = universal.RandomObliviousPattern
	// DirectObliviousRun executes the complete-network computation directly.
	DirectObliviousRun = universal.DirectObliviousRun
	// ButterflyHost returns the wrapped-butterfly host of dimension d.
	ButterflyHost = universal.ButterflyHost
	// TorusHost returns the torus host of size m.
	TorusHost = universal.TorusHost
	// ExpanderHost returns a random-regular expander host.
	ExpanderHost = universal.ExpanderHost
	// BuildTreeCachedHost builds the constant-slowdown host for depth-t runs.
	BuildTreeCachedHost = universal.BuildTreeCachedHost
	// NewBenesHost builds the wrapped-Beneš host with deterministic offline
	// routing — the Theorem 2.1 proof's own construction.
	NewBenesHost = universal.NewBenesHost
	// BuildBenesProtocol emits the offline construction as a validated
	// pebble protocol (Waksman paths as Send/Receive schedules).
	BuildBenesProtocol = universal.BuildBenesProtocol
	// PlaceReplicas assigns r random distinct replicas per guest.
	PlaceReplicas = universal.PlaceReplicas
)

// RedundantSimulator simulates with replicated guests (the m > n regime).
type RedundantSimulator = universal.RedundantSimulator

// BenesHost is the wrapped Beneš host of Theorem 2.1's proof.
type BenesHost = universal.BenesHost

// RoundedTreeHost is the tree-cache host with inter-round refresh — the
// measured (negative) probe at the middle of the §1 trade-off.
type RoundedTreeHost = universal.RoundedTreeHost

// BuildRoundedTreeHost builds the rounded tree-cache host.
var BuildRoundedTreeHost = universal.BuildRoundedTreeHost

// Lower bound engine (Theorem 3.1).
type (
	// Params are the constants of Section 3.
	Params = core.Params
	// TradeoffRow is one row of the size/slowdown trade-off table.
	TradeoffRow = core.TradeoffRow
)

var (
	// ToyParams returns unit-scale constants for shape visualization.
	ToyParams = core.ToyParams
	// UpperBoundSlowdown is the Theorem 2.1 form ⌈n/m⌉·log m.
	UpperBoundSlowdown = core.UpperBoundSlowdown
	// CountRegularGraphsExact counts labeled c-regular graphs exactly
	// (small n), grounding the |𝒰'| estimates.
	CountRegularGraphsExact = core.CountRegularGraphsExact
)

// PaperParams returns the paper's constants (c=16, q=384, r=3472+384·log d).
func PaperParams() Params { return core.Params{}.Defaults() }

// Expansion testing.
type (
	// ExpansionCertificate records an (α,β) certification.
	ExpansionCertificate = expander.Certificate
)

var (
	// CertifyExpansion runs sampled and spectral expansion certification.
	CertifyExpansion = expander.Certify
	// SpectralGap estimates λ₂ of the normalized adjacency matrix.
	SpectralGap = expander.SpectralGap
	// ExactConductance computes the edge expansion h(G) exactly (small n).
	ExactConductance = expander.ExactConductance
	// CheegerBounds returns the spectral sandwich for h(G).
	CheegerBounds = expander.CheegerBounds
	// BestBalancedCut returns the smallest of several explicit balanced
	// cuts — an upper bound on the bisection width.
	BestBalancedCut = expander.BestBalancedCutUpperBound
)

// Static embeddings (the §1 contrast to dynamic simulations).
type StaticEmbedding = embedding.Embedding

var (
	// NewEmbedding builds an embedding from a placement, routing guest
	// edges along shortest host paths.
	NewEmbedding = embedding.New
	// GreedyEmbedding builds a locality-seeking embedding.
	GreedyEmbedding = embedding.Greedy
	// RandomEmbedding builds a balanced random embedding.
	RandomEmbedding = embedding.Random
)
