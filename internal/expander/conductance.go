package expander

import (
	"fmt"
	"math"

	"universalnet/internal/graph"
)

// Edge expansion (conductance) complements the vertex expansion of
// Definition 3.8: h(G) = min over cuts with vol(A) ≤ vol(V)/2 of
// |∂A| / vol(A), where ∂A is the set of edges leaving A and vol counts
// degrees. The Cheeger inequalities sandwich h(G) by the spectral gap:
// (1−λ₂)/2 ≤ h(G) ≤ √(2(1−λ₂)).

// EdgeBoundary returns the number of edges with exactly one endpoint in A.
func EdgeBoundary(g *graph.Graph, inA []bool) int {
	cut := 0
	for _, e := range g.Edges() {
		if inA[e.U] != inA[e.V] {
			cut++
		}
	}
	return cut
}

// Volume returns Σ_{v ∈ A} deg(v).
func Volume(g *graph.Graph, inA []bool) int {
	vol := 0
	for v := 0; v < g.N(); v++ {
		if inA[v] {
			vol += g.Degree(v)
		}
	}
	return vol
}

// ExactConductance computes h(G) exactly by enumerating all cuts; n ≤ 24.
// It returns the conductance and a witness side.
func ExactConductance(g *graph.Graph) (h float64, witness []int, err error) {
	n := g.N()
	if n > 24 {
		return 0, nil, fmt.Errorf("expander: exact conductance infeasible for n=%d", n)
	}
	if n < 2 || g.M() == 0 {
		return 0, nil, fmt.Errorf("expander: conductance undefined for trivial graphs")
	}
	totalVol := 2 * g.M()
	best := math.Inf(1)
	var bestSet []int
	inA := make([]bool, n)
	for mask := 1; mask < 1<<(n-1); mask++ { // fix vertex n−1 outside A: halves the work
		for v := 0; v < n; v++ {
			inA[v] = mask&(1<<v) != 0
		}
		vol := Volume(g, inA)
		if vol == 0 || 2*vol > totalVol {
			continue
		}
		ratio := float64(EdgeBoundary(g, inA)) / float64(vol)
		if ratio < best {
			best = ratio
			bestSet = bestSet[:0]
			for v := 0; v < n; v++ {
				if inA[v] {
					bestSet = append(bestSet, v)
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, nil, fmt.Errorf("expander: no admissible cut")
	}
	return best, bestSet, nil
}

// CheegerBounds returns the interval [(1−λ₂)/2, √(2(1−λ₂))] that must
// contain h(G), given the normalized second eigenvalue λ₂.
func CheegerBounds(lambda2 float64) (lo, hi float64) {
	gap := 1 - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * gap)
}
