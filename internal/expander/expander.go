// Package expander provides the expansion machinery behind Definition 3.8
// and Lemma 3.15: (α,β) vertex-expansion testing (exact for small graphs,
// sampled for large ones), spectral-gap estimation by power iteration, the
// Tanner bound converting a spectral gap into certified vertex expansion,
// and the explicit Gabber–Galil expander family as a deterministic
// alternative to random regular overlays.
package expander

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"universalnet/internal/graph"
)

// NeighborhoodSize returns |Γ(A)|, the number of vertices adjacent to at
// least one member of A (members of A adjacent to other members count too —
// the convention of Definition 3.8).
func NeighborhoodSize(g *graph.Graph, a []int) int {
	mark := make(map[int]struct{})
	for _, v := range a {
		for _, w := range g.Neighbors(v) {
			mark[w] = struct{}{}
		}
	}
	return len(mark)
}

// IsExpanderForSet reports whether the single set A satisfies |Γ(A)| ≥ β·|A|.
func IsExpanderForSet(g *graph.Graph, a []int, beta float64) bool {
	return float64(NeighborhoodSize(g, a)) >= beta*float64(len(a))
}

// ExactExpansion computes the exact expansion profile
// β*(α) = min over non-empty A with |A| ≤ α·n of |Γ(A)|/|A|
// by enumerating every subset. Exponential: n must be ≤ 24.
// It returns the minimizing ratio and one witness set.
func ExactExpansion(g *graph.Graph, alpha float64) (beta float64, witness []int, err error) {
	n := g.N()
	if n > 24 {
		return 0, nil, fmt.Errorf("expander: exact expansion infeasible for n=%d > 24", n)
	}
	limit := int(alpha * float64(n))
	if limit < 1 {
		return 0, nil, fmt.Errorf("expander: α·n = %.3f < 1; no admissible sets", alpha*float64(n))
	}
	best := math.Inf(1)
	var bestSet []int
	set := make([]int, 0, limit)
	for mask := 1; mask < 1<<n; mask++ {
		if popcount(mask) > limit {
			continue
		}
		set = set[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, v)
			}
		}
		ratio := float64(NeighborhoodSize(g, set)) / float64(len(set))
		if ratio < best {
			best = ratio
			bestSet = append([]int(nil), set...)
		}
	}
	return best, bestSet, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// SampleExpansion estimates the expansion profile by sampling random subsets
// of sizes up to α·n (plus adversarial BFS-ball sets, which are the usual
// worst cases in geometric graphs). It returns the smallest observed
// |Γ(A)|/|A| ratio and a witness. The result upper-bounds the true β*(α).
func SampleExpansion(g *graph.Graph, alpha float64, samples int, rng *rand.Rand) (beta float64, witness []int) {
	n := g.N()
	limit := int(alpha * float64(n))
	if limit < 1 {
		limit = 1
	}
	best := math.Inf(1)
	var bestSet []int
	consider := func(set []int) {
		if len(set) == 0 || len(set) > limit {
			return
		}
		ratio := float64(NeighborhoodSize(g, set)) / float64(len(set))
		if ratio < best {
			best = ratio
			bestSet = append([]int(nil), set...)
		}
	}
	// Random subsets of random sizes.
	for s := 0; s < samples; s++ {
		k := 1 + rng.Intn(limit)
		perm := rng.Perm(n)
		consider(perm[:k])
	}
	// BFS balls around random centers — locally dense sets.
	for s := 0; s < samples/4+1; s++ {
		center := rng.Intn(n)
		dist := g.BFS(center)
		for r := 0; ; r++ {
			var ball []int
			for v, d := range dist {
				if d >= 0 && d <= r {
					ball = append(ball, v)
				}
			}
			if len(ball) > limit {
				break
			}
			consider(ball)
			if len(ball) == n {
				break
			}
		}
	}
	return best, bestSet
}

// SpectralGap estimates the second-largest absolute eigenvalue λ₂ of the
// normalized adjacency matrix D^{-1/2} A D^{-1/2} by power iteration with
// deflation of the principal eigenvector (√deg). The spectral gap is 1 − λ₂;
// a gap bounded away from 0 certifies expansion. The graph must have no
// isolated vertices.
func SpectralGap(g *graph.Graph, iters int, seed int64) (lambda2 float64, err error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("expander: graph too small for spectral gap")
	}
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			return 0, fmt.Errorf("expander: isolated vertex %d", v)
		}
		deg[v] = float64(g.Degree(v))
	}
	// Principal eigenvector of the normalized adjacency is proportional to √deg.
	principal := make([]float64, n)
	for v := range principal {
		principal[v] = math.Sqrt(deg[v])
	}
	normalize(principal)

	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for v := range x {
		x[v] = rng.NormFloat64()
	}
	orthogonalize(x, principal)
	normalize(x)

	y := make([]float64, n)
	var lam float64
	for it := 0; it < iters; it++ {
		// y = M x where M = D^{-1/2} A D^{-1/2}.
		for v := 0; v < n; v++ {
			s := 0.0
			for _, w := range g.Neighbors(v) {
				s += x[w] / math.Sqrt(deg[v]*deg[w])
			}
			y[v] = s
		}
		orthogonalize(y, principal)
		lam = norm(y)
		if lam == 0 {
			return 0, nil // graph is complete-bipartite-degenerate; λ₂ ≈ 0
		}
		for v := range y {
			y[v] /= lam
		}
		x, y = y, x
	}
	return lam, nil
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func orthogonalize(v, unit []float64) {
	dot := 0.0
	for i := range v {
		dot += v[i] * unit[i]
	}
	for i := range v {
		v[i] -= dot * unit[i]
	}
}

// TannerBound returns the vertex-expansion factor certified by a normalized
// second eigenvalue λ̄ = λ₂ for sets of size ≤ α·n on a regular graph:
// |Γ(A)| ≥ |A| / (α + (1−α)·λ̄²). A spectral gap thus yields an (α,β)-expander
// with β = TannerBound(λ̄, α).
func TannerBound(lambdaBar, alpha float64) float64 {
	den := alpha + (1-alpha)*lambdaBar*lambdaBar
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

// Certificate records an empirical (α,β) certification of a graph.
type Certificate struct {
	Alpha       float64 // set-size fraction
	BetaSampled float64 // smallest sampled |Γ(A)|/|A| (upper bound on β*)
	Lambda2     float64 // normalized second eigenvalue estimate
	BetaTanner  float64 // spectral lower-bound certificate
}

// Certify runs both the sampling probe and the spectral certificate.
func Certify(g *graph.Graph, alpha float64, samples, iters int, seed int64) (Certificate, error) {
	lam, err := SpectralGap(g, iters, seed)
	if err != nil {
		return Certificate{}, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	betaS, _ := SampleExpansion(g, alpha, samples, rng)
	return Certificate{
		Alpha:       alpha,
		BetaSampled: betaS,
		Lambda2:     lam,
		BetaTanner:  TannerBound(lam, alpha),
	}, nil
}

// GabberGalil returns the explicit Gabber–Galil-type expander on N² vertices
// (the points of Z_N × Z_N): (x, y) is joined to (x±y, y), (x±y+1, y),
// (x, y±x) and (x, y±x+1), arithmetic mod N. The graph is simple with degree
// at most 8; its spectral gap is bounded away from 0 uniformly in N.
func GabberGalil(N int) (*graph.Graph, error) {
	if N < 2 {
		return nil, fmt.Errorf("expander: Gabber–Galil needs N ≥ 2, got %d", N)
	}
	n := N * N
	idx := func(x, y int) int { return ((x%N+N)%N)*N + (y%N+N)%N }
	b := graph.NewBuilder(n)
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			v := idx(x, y)
			for _, w := range []int{
				idx(x+y, y), idx(x-y, y), idx(x+y+1, y), idx(x-y-1, y),
				idx(x, y+x), idx(x, y-x), idx(x, y+x+1), idx(x, y-x-1),
			} {
				if w != v {
					b.MustAddEdge(v, w)
				}
			}
		}
	}
	return b.Build(), nil
}

// FiedlerVector approximates the eigenvector belonging to the largest
// non-principal |eigenvalue| of the normalized adjacency (the vector power
// iteration converges to after deflation). Splitting vertices at its median
// yields an explicit balanced cut — a certified UPPER bound on the bisection
// width, which the baseline slowdown bounds of [9,10] consume.
func FiedlerVector(g *graph.Graph, iters int, seed int64) ([]float64, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("expander: graph too small")
	}
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("expander: isolated vertex %d", v)
		}
		deg[v] = float64(g.Degree(v))
	}
	principal := make([]float64, n)
	for v := range principal {
		principal[v] = math.Sqrt(deg[v])
	}
	normalize(principal)
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for v := range x {
		x[v] = rng.NormFloat64()
	}
	orthogonalize(x, principal)
	normalize(x)
	y := make([]float64, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			s := 0.0
			for _, w := range g.Neighbors(v) {
				s += x[w] / math.Sqrt(deg[v]*deg[w])
			}
			y[v] = s
		}
		orthogonalize(y, principal)
		normalize(y)
		x, y = y, x
	}
	return x, nil
}

// SpectralBisectionUpperBound returns the size of the explicit balanced cut
// obtained by splitting the Fiedler vector at its median — an upper bound on
// the true bisection width.
func SpectralBisectionUpperBound(g *graph.Graph, iters int, seed int64) (int, error) {
	vec, err := FiedlerVector(g, iters, seed)
	if err != nil {
		return 0, err
	}
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })
	inA := make([]bool, n)
	for _, v := range order[:n/2] {
		inA[v] = true
	}
	cut := 0
	for _, e := range g.Edges() {
		if inA[e.U] != inA[e.V] {
			cut++
		}
	}
	return cut, nil
}

// SpectralBisectionLowerBound returns the Cheeger-type lower bound on the
// bisection width of a connected graph: any balanced cut has at least
// (1−λ̄)·vol/4 edges, where λ̄ is the true second-largest eigenvalue of the
// normalized adjacency. Because SpectralGap may report the |negative| end,
// this bound is only valid for non-bipartite-dominated spectra; callers pass
// the λ they trust.
func SpectralBisectionLowerBound(g *graph.Graph, lambda2 float64) float64 {
	gap := 1 - lambda2
	if gap < 0 {
		gap = 0
	}
	vol := float64(2 * g.M())
	return gap * vol / 8
}

// BestBalancedCutUpperBound returns the smallest of several explicit
// balanced cuts — Fiedler-median, vertex-index order, and BFS order — each
// a certified upper bound on the bisection width. Robust against bipartite
// spectra, where the raw Fiedler vector degenerates to the parity cut.
func BestBalancedCutUpperBound(g *graph.Graph, iters int, seed int64) (int, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("expander: graph too small")
	}
	cutOf := func(order []int) int {
		inA := make([]bool, n)
		for _, v := range order[:n/2] {
			inA[v] = true
		}
		cut := 0
		for _, e := range g.Edges() {
			if inA[e.U] != inA[e.V] {
				cut++
			}
		}
		return cut
	}
	// Index order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	best := cutOf(idx)
	// BFS order from vertex 0 (contiguous region cut).
	dist := g.BFS(0)
	bfs := append([]int(nil), idx...)
	sort.Slice(bfs, func(a, b int) bool {
		da, db := dist[bfs[a]], dist[bfs[b]]
		if da != db {
			return da < db
		}
		return bfs[a] < bfs[b]
	})
	if c := cutOf(bfs); c < best {
		best = c
	}
	// Fiedler cut (when computable).
	if vec, err := FiedlerVector(g, iters, seed); err == nil {
		ford := append([]int(nil), idx...)
		sort.Slice(ford, func(a, b int) bool { return vec[ford[a]] < vec[ford[b]] })
		if c := cutOf(ford); c < best {
			best = c
		}
	}
	return best, nil
}
