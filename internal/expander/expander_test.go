package expander

import (
	"math"
	"math/rand"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNeighborhoodSize(t *testing.T) {
	g := ring(t, 8)
	// Γ({0}) = {1,7}.
	if s := NeighborhoodSize(g, []int{0}); s != 2 {
		t.Errorf("|Γ({0})| = %d, want 2", s)
	}
	// Γ({0,1}) = {7,1,0,2} = 4 (members are neighbors of each other).
	if s := NeighborhoodSize(g, []int{0, 1}); s != 4 {
		t.Errorf("|Γ({0,1})| = %d, want 4", s)
	}
	if s := NeighborhoodSize(g, nil); s != 0 {
		t.Errorf("|Γ(∅)| = %d", s)
	}
}

func TestIsExpanderForSet(t *testing.T) {
	g := ring(t, 8)
	if !IsExpanderForSet(g, []int{0}, 2.0) {
		t.Error("single vertex should 2-expand on a ring")
	}
	if IsExpanderForSet(g, []int{0}, 2.5) {
		t.Error("single vertex cannot 2.5-expand on a ring")
	}
}

func TestExactExpansionRing(t *testing.T) {
	g := ring(t, 12)
	beta, witness, err := ExactExpansion(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// On a ring, a contiguous arc of k vertices has |Γ| = k+... arcs are the
	// minimizers; an arc of 6 has neighborhood size 6 (4 interior + 2 ends).
	if beta > 1.2 {
		t.Errorf("ring expansion β = %.3f suspiciously high (witness %v)", beta, witness)
	}
	if beta <= 0 {
		t.Errorf("β = %.3f not positive", beta)
	}
	if len(witness) == 0 || len(witness) > 6 {
		t.Errorf("witness size %d out of range", len(witness))
	}
}

func TestExactExpansionComplete(t *testing.T) {
	g, err := topology.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	beta, _, err := ExactExpansion(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// In K8, Γ(A) for |A| ≤ 2 is everything (or n-1 for singletons): β = 7
	// for singletons, 8/2 = 4 for pairs → min 4.
	if math.Abs(beta-4) > 1e-9 {
		t.Errorf("K8 exact β = %.3f, want 4", beta)
	}
}

func TestExactExpansionGuards(t *testing.T) {
	g := ring(t, 8)
	if _, _, err := ExactExpansion(g, 0.01); err == nil {
		t.Error("α too small accepted")
	}
	big, err := topology.Ring(30)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactExpansion(big, 0.5); err == nil {
		t.Error("n > 24 accepted")
	}
}

func TestSampleExpansionUpperBoundsExact(t *testing.T) {
	g := ring(t, 16)
	exact, _, err := ExactExpansion(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	sampled, witness := SampleExpansion(g, 0.5, 400, rng)
	// Sampling can only overestimate the true minimum (here 1.0, attained by
	// the alternating set, which random probing need not find).
	if sampled < exact-1e-9 {
		t.Errorf("sampled β %.3f below exact minimum %.3f (witness %v)", sampled, exact, witness)
	}
	// But the BFS-ball probe must at least find the arc sets (ratio 1.25).
	if sampled > 1.25+1e-9 {
		t.Errorf("sampled β %.3f worse than the arc bound 1.25", sampled)
	}
}

func TestSpectralGapCompleteGraph(t *testing.T) {
	g, err := topology.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := SpectralGap(g, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// K_n normalized adjacency has λ₂ = 1/(n-1).
	want := 1.0 / 15
	if math.Abs(lam-want) > 0.01 {
		t.Errorf("K16 λ₂ = %.4f, want %.4f", lam, want)
	}
}

func TestSpectralGapRing(t *testing.T) {
	// Odd ring (even rings are bipartite, where the largest non-principal
	// |eigenvalue| is 1). For odd n the extreme is cos(π/n) at the negative
	// end of the spectrum.
	n := 31
	g := ring(t, n)
	lam, err := SpectralGap(g, 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(math.Pi / float64(n))
	if math.Abs(lam-want) > 0.01 {
		t.Errorf("ring λ₂ = %.4f, want %.4f", lam, want)
	}
}

func TestSpectralGapBipartiteIsOne(t *testing.T) {
	g := ring(t, 32)
	lam, err := SpectralGap(g, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-1) > 0.01 {
		t.Errorf("even ring |λ| = %.4f, want 1 (bipartite)", lam)
	}
}

func TestSpectralGapRandomRegularIsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := topology.RandomRegular(rng, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	lam, err := SpectralGap(g, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Random 4-regular graphs have λ₂ ≈ 2√3/4 ≈ 0.87 (Friedman); the gap
	// must be clearly bounded away from 1, unlike rings/meshes.
	if lam > 0.95 {
		t.Errorf("random 4-regular λ₂ = %.4f; expected < 0.95", lam)
	}
}

func TestSpectralGapErrors(t *testing.T) {
	if _, err := SpectralGap(graph.NewBuilder(1).Build(), 10, 1); err == nil {
		t.Error("tiny graph accepted")
	}
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1)
	if _, err := SpectralGap(b.Build(), 10, 1); err == nil {
		t.Error("isolated vertex accepted")
	}
}

func TestTannerBound(t *testing.T) {
	// Perfect gap (λ̄ = 0): β = 1/α.
	if got := TannerBound(0, 0.25); math.Abs(got-4) > 1e-12 {
		t.Errorf("TannerBound(0, .25) = %f", got)
	}
	// No gap (λ̄ = 1): β = 1 (no expansion certified).
	if got := TannerBound(1, 0.25); math.Abs(got-1) > 1e-12 {
		t.Errorf("TannerBound(1, .25) = %f", got)
	}
	// Monotone in λ̄.
	if TannerBound(0.5, 0.25) <= TannerBound(0.9, 0.25) {
		t.Error("TannerBound not decreasing in λ̄")
	}
}

func TestCertifyRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := topology.RandomRegular(rng, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(g, 0.25, 200, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	if cert.BetaTanner <= 1.0 {
		t.Errorf("Tanner certificate β = %.3f ≤ 1; expander overlay would be useless", cert.BetaTanner)
	}
	if cert.BetaSampled < cert.BetaTanner-1e-9 {
		t.Errorf("sampled β %.3f below certified lower bound %.3f", cert.BetaSampled, cert.BetaTanner)
	}
	if cert.Alpha != 0.25 {
		t.Errorf("alpha echoed wrong: %f", cert.Alpha)
	}
}

func TestGabberGalil(t *testing.T) {
	g, err := GabberGalil(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Errorf("n = %d", g.N())
	}
	if g.MaxDegree() > 8 {
		t.Errorf("degree %d > 8", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("Gabber–Galil graph disconnected")
	}
	lam, err := SpectralGap(g, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lam > 0.98 {
		t.Errorf("Gabber–Galil λ₂ = %.4f; no gap", lam)
	}
	if _, err := GabberGalil(1); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestGabberGalilGapBeatsTorus(t *testing.T) {
	gg, err := GabberGalil(12)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.Torus(144)
	if err != nil {
		t.Fatal(err)
	}
	lamGG, err := SpectralGap(gg, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	lamT, err := SpectralGap(torus, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	if lamGG >= lamT {
		t.Errorf("Gabber–Galil λ₂ %.4f not smaller than torus λ₂ %.4f", lamGG, lamT)
	}
}

func TestExactConductanceCycle(t *testing.T) {
	// C8: best cut is an arc of 4: boundary 2, volume 8 → h = 1/4.
	g := ring(t, 8)
	h, witness, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.25) > 1e-12 {
		t.Errorf("h(C8) = %f, want 0.25", h)
	}
	if len(witness) != 4 {
		t.Errorf("witness size %d, want 4", len(witness))
	}
}

func TestExactConductanceComplete(t *testing.T) {
	// K4: any single vertex: boundary 3, volume 3 → h = 1; pairs: boundary
	// 4, volume 6 → 2/3. h(K4) = 2/3.
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := ExactConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-2.0/3) > 1e-12 {
		t.Errorf("h(K4) = %f, want 2/3", h)
	}
}

func TestExactConductanceGuards(t *testing.T) {
	big := ring(t, 30)
	if _, _, err := ExactConductance(big); err == nil {
		t.Error("n > 24 accepted")
	}
	empty := graph.NewBuilder(3).Build()
	if _, _, err := ExactConductance(empty); err == nil {
		t.Error("edgeless graph accepted")
	}
}

func TestCheegerSandwich(t *testing.T) {
	// Exact conductance must lie inside the Cheeger interval from the
	// measured spectral gap. Only non-bipartite graphs: SpectralGap returns
	// the largest |non-principal eigenvalue|, which is 1 for bipartite
	// graphs (the −1 eigenvalue) and then says nothing about conductance.
	graphs := []*graph.Graph{ring(t, 9), ring(t, 13)}
	if k6, err := topology.Complete(6); err == nil {
		graphs = append(graphs, k6)
	}
	for gi, g := range graphs {
		h, _, err := ExactConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		lam, err := SpectralGap(g, 4000, 7)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := CheegerBounds(lam)
		// λ₂ here is the largest |non-principal eigenvalue|, which can come
		// from the negative end (bipartite-ish graphs); the Cheeger lower
		// bound uses the true second-largest eigenvalue, so only check the
		// sandwich when the estimate is meaningful, and always check h ≤ hi
		// is consistent within tolerance.
		if h > hi+0.05 {
			t.Errorf("graph %d: h=%f above Cheeger upper %f (λ=%f)", gi, h, hi, lam)
		}
		if lo > 0.5 && h < lo-0.05 {
			t.Errorf("graph %d: h=%f below Cheeger lower %f", gi, h, lo)
		}
	}
}

func TestVolumeAndBoundary(t *testing.T) {
	g := ring(t, 6)
	inA := make([]bool, 6)
	inA[0], inA[1] = true, true
	if v := Volume(g, inA); v != 4 {
		t.Errorf("volume = %d, want 4", v)
	}
	if b := EdgeBoundary(g, inA); b != 2 {
		t.Errorf("boundary = %d, want 2", b)
	}
}

func TestFiedlerVectorAndBisectionBounds(t *testing.T) {
	// Barbell-ish graph: two K5s joined by one edge — the Fiedler cut must
	// find the bridge (bisection width 1).
	b := graph.NewBuilder(10)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.MustAddEdge(u, v)
			b.MustAddEdge(u+5, v+5)
		}
	}
	b.MustAddEdge(4, 5)
	g := b.Build()
	vec, err := FiedlerVector(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 10 {
		t.Fatalf("vector length %d", len(vec))
	}
	cut, err := SpectralBisectionUpperBound(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("Fiedler cut = %d, want the bridge (1)", cut)
	}
	best, err := BestBalancedCutUpperBound(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best cut = %d, want 1", best)
	}
	// The spectral lower bound must not exceed the explicit cut.
	lam, err := SpectralGap(g, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lb := SpectralBisectionLowerBound(g, lam); lb > float64(best)+1e-9 {
		t.Errorf("lower bound %f exceeds explicit cut %d", lb, best)
	}
}

func TestBestBalancedCutOnBipartiteTorus(t *testing.T) {
	// Even torus: the raw Fiedler vector degenerates to the parity cut
	// (all 128 edges); the index/BFS candidates rescue the bound.
	g, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := BestBalancedCutUpperBound(g, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cut > 16 {
		t.Errorf("torus cut %d above the row cut 16", cut)
	}
	if cut < 8 {
		t.Errorf("torus cut %d impossibly small", cut)
	}
}

func TestBisectionBoundGuards(t *testing.T) {
	if _, err := FiedlerVector(graph.NewBuilder(1).Build(), 10, 1); err == nil {
		t.Error("tiny graph accepted")
	}
	if _, err := BestBalancedCutUpperBound(graph.NewBuilder(1).Build(), 10, 1); err == nil {
		t.Error("tiny graph accepted by cut bound")
	}
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1)
	if _, err := FiedlerVector(b.Build(), 10, 1); err == nil {
		t.Error("isolated vertex accepted")
	}
	// Negative-gap clamp.
	g, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if lb := SpectralBisectionLowerBound(g, 1.5); lb != 0 {
		t.Errorf("negative gap not clamped: %f", lb)
	}
}
