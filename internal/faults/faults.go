// Package faults is the deterministic fault-injection layer of the
// laboratory. The paper's trade-off m·s = Ω(n·log m) quantifies over ideal
// hosts; this package lets every simulation run against a degraded one. A
// crash of k host processors is a forced move down the size axis from m to
// m−k, so injecting faults turns the static trade-off curve into one we can
// measure dynamically (see experiment E23).
//
// Three fault classes are modeled:
//
//   - processor crashes: a host processor dies at a scheduled guest step and
//     never recovers; every replica it held is lost and its links go silent;
//   - permanent link failures: an individual host edge dies at a scheduled
//     guest step;
//   - message faults: per-packet drop, duplication, and corruption applied to
//     every routing phase from a configurable onset step, at configurable
//     rates.
//
// Everything is deterministic. Scheduled events (crashes, link failures)
// carry explicit step numbers; per-packet message fates are pure functions of
// (plan seed, guest step, retry attempt, packet index) via SplitMix64, so the
// same plan and seed reproduce the exact same fault pattern regardless of
// execution order, worker count, or wall-clock.
package faults

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// Crash schedules the permanent death of one host processor: from guest step
// Step onward (events apply at the start of the step), Host holds no state
// and moves no packets.
type Crash struct {
	Host int `json:"host"`
	Step int `json:"step"`
}

// LinkFailure schedules the permanent death of the host edge {U, V} from
// guest step Step onward.
type LinkFailure struct {
	U    int `json:"u"` // canonical order not required; normalized on use
	V    int `json:"v"`
	Step int `json:"step"`
}

// Plan is a complete, deterministic fault schedule. The zero value injects
// nothing. Plans are pure data: the same plan produces the same fault
// pattern in every run.
type Plan struct {
	// Name labels the plan in reports ("" for ad-hoc plans).
	Name string
	// Seed drives the per-packet message-fault decisions. Two plans with the
	// same rates but different seeds drop different packets.
	Seed int64
	// Crashes and LinkFailures are the scheduled permanent faults.
	Crashes      []Crash
	LinkFailures []LinkFailure
	// DropRate, DupRate and CorruptRate are per-packet probabilities in
	// [0, 1), applied independently per routing attempt. Corrupted packets
	// are assumed to be detected (payload checksum) and discarded by the
	// receiver, so they cost a delivery and force a retry, like drops, but
	// are counted separately.
	DropRate    float64
	DupRate     float64
	CorruptRate float64
	// Onset is the first guest step at which message faults apply; earlier
	// phases route cleanly. Scheduled crashes/link failures are unaffected.
	Onset int
	// MaxRetries bounds the retry rounds a routing phase may spend on
	// dropped or corrupted packets before the phase is declared lost.
	// 0 means DefaultMaxRetries.
	MaxRetries int
}

// DefaultMaxRetries is the retry budget used when Plan.MaxRetries is 0.
const DefaultMaxRetries = 8

// Validate checks rates and event coordinates (host/step ranges are only
// checkable against a concrete host, so this validates shape: rates in
// [0, 1), non-negative steps, non-negative retry budget).
func (p *Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", p.DropRate}, {"dup", p.DupRate}, {"corrupt", p.CorruptRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1)", r.name, r.v)
		}
	}
	for _, c := range p.Crashes {
		if c.Step < 1 {
			return fmt.Errorf("faults: crash of host %d at step %d (steps start at 1)", c.Host, c.Step)
		}
		if c.Host < 0 {
			return fmt.Errorf("faults: crash of negative host %d", c.Host)
		}
	}
	for _, l := range p.LinkFailures {
		if l.Step < 1 {
			return fmt.Errorf("faults: link failure {%d,%d} at step %d (steps start at 1)", l.U, l.V, l.Step)
		}
		if l.U < 0 || l.V < 0 || l.U == l.V {
			return fmt.Errorf("faults: invalid link {%d,%d}", l.U, l.V)
		}
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry budget %d", p.MaxRetries)
	}
	if p.Onset < 0 {
		return fmt.Errorf("faults: negative onset %d", p.Onset)
	}
	return nil
}

// maxRetries resolves the retry budget.
func (p *Plan) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return DefaultMaxRetries
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return len(p.Crashes) > 0 || len(p.LinkFailures) > 0 ||
		p.DropRate > 0 || p.DupRate > 0 || p.CorruptRate > 0
}

// CrashesAt returns the hosts scheduled to crash exactly at step, sorted.
func (p *Plan) CrashesAt(step int) []int {
	if p == nil {
		return nil
	}
	var hosts []int
	for _, c := range p.Crashes {
		if c.Step == step {
			hosts = append(hosts, c.Host)
		}
	}
	sort.Ints(hosts)
	return hosts
}

// LinkFailuresAt returns the edges scheduled to fail exactly at step, in
// canonical sorted order.
func (p *Plan) LinkFailuresAt(step int) []graph.Edge {
	if p == nil {
		return nil
	}
	var edges []graph.Edge
	for _, l := range p.LinkFailures {
		if l.Step == step {
			edges = append(edges, graph.NewEdge(l.U, l.V))
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// Counters tallies the structured fault events of one run. All counters are
// deterministic for a fixed plan: they survive byte-identical across worker
// counts and re-runs.
type Counters struct {
	Injected   int `json:"injected"`    // total message faults injected (drop+dup+corrupt)
	Dropped    int `json:"dropped"`     // packets lost in flight
	Duplicated int `json:"duplicated"`  // spurious extra deliveries
	Corrupted  int `json:"corrupted"`   // payloads damaged (detected and discarded)
	Retried    int `json:"retried"`     // packet retransmissions after drop/corruption
	FailedOver int `json:"failed_over"` // guests whose primary replica moved to a survivor
	ReEmbedded int `json:"re_embedded"` // replacement replicas placed on survivors
	Crashed    int `json:"crashed"`     // host processors crashed
	LinksDown  int `json:"links_down"`  // host links permanently failed
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Injected += o.Injected
	c.Dropped += o.Dropped
	c.Duplicated += o.Duplicated
	c.Corrupted += o.Corrupted
	c.Retried += o.Retried
	c.FailedOver += o.FailedOver
	c.ReEmbedded += o.ReEmbedded
	c.Crashed += o.Crashed
	c.LinksDown += o.LinksDown
}

// Record adds the counters to reg under the faults.* namespace, bridging the
// run-level fault accounting into the metrics registry. Safe on a nil
// registry; counters add commutatively, so recording is merge- and
// worker-order-independent.
func (c Counters) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("faults.injected").Add(int64(c.Injected))
	reg.Counter("faults.dropped").Add(int64(c.Dropped))
	reg.Counter("faults.duplicated").Add(int64(c.Duplicated))
	reg.Counter("faults.corrupted").Add(int64(c.Corrupted))
	reg.Counter("faults.retried").Add(int64(c.Retried))
	reg.Counter("faults.failed_over").Add(int64(c.FailedOver))
	reg.Counter("faults.re_embedded").Add(int64(c.ReEmbedded))
	reg.Counter("faults.crashed").Add(int64(c.Crashed))
	reg.Counter("faults.links_down").Add(int64(c.LinksDown))
}

// Map renders the counters as an ordered-key map for JSON payloads.
func (c Counters) Map() map[string]int {
	return map[string]int{
		"injected":    c.Injected,
		"dropped":     c.Dropped,
		"duplicated":  c.Duplicated,
		"corrupted":   c.Corrupted,
		"retried":     c.Retried,
		"failed_over": c.FailedOver,
		"re_embedded": c.ReEmbedded,
		"crashed":     c.Crashed,
		"links_down":  c.LinksDown,
	}
}

// String renders the counters compactly for tables and logs.
func (c Counters) String() string {
	return fmt.Sprintf("inj=%d drop=%d dup=%d corr=%d retry=%d failover=%d reembed=%d crash=%d linkdown=%d",
		c.Injected, c.Dropped, c.Duplicated, c.Corrupted, c.Retried,
		c.FailedOver, c.ReEmbedded, c.Crashed, c.LinksDown)
}

// Fate is the per-packet outcome of one routing attempt under the plan.
type Fate int

const (
	// Delivered: the packet arrived intact.
	Delivered Fate = iota
	// Dropped: the packet vanished in flight; the payload must be resent.
	Dropped
	// Duplicated: the packet arrived intact, twice.
	Duplicated
	// Corrupted: the packet arrived damaged; the receiver detects and
	// discards it, so the payload must be resent.
	Corrupted
)

// String names the fate.
func (f Fate) String() string {
	switch f {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Duplicated:
		return "duplicated"
	case Corrupted:
		return "corrupted"
	}
	return fmt.Sprintf("Fate(%d)", int(f))
}

// splitmix64 is the SplitMix64 mixing function (Steele et al.), the same
// avalanche mix the experiment registry uses for seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitFloat maps a hash channel to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// PacketFate decides the fate of packet index idx of routing attempt
// attempt at guest step step. The decision is a pure function of
// (plan seed, step, attempt, idx) — no shared RNG state — so fates are
// independent of evaluation order. Before the plan's Onset step every
// packet is Delivered.
func (p *Plan) PacketFate(step, attempt, idx int) Fate {
	if p == nil || step < p.Onset {
		return Delivered
	}
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ uint64(step))
	h = splitmix64(h ^ uint64(attempt)<<20)
	h = splitmix64(h ^ uint64(idx)<<40)
	u := unitFloat(h)
	// Partition [0,1): [0, drop) → Dropped, [drop, drop+corrupt) →
	// Corrupted, [drop+corrupt, drop+corrupt+dup) → Duplicated, rest
	// Delivered. Rates are small in practice, so overlap is no concern.
	if u < p.DropRate {
		return Dropped
	}
	if u < p.DropRate+p.CorruptRate {
		return Corrupted
	}
	if u < p.DropRate+p.CorruptRate+p.DupRate {
		return Duplicated
	}
	return Delivered
}

// Degrade rebuilds g without crashed vertices' incident edges and without
// failed links. Vertex count is preserved — a crashed host becomes an
// isolated vertex that no surviving traffic may touch.
func Degrade(g *graph.Graph, crashed map[int]bool, failed map[graph.Edge]bool) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if crashed[e.U] || crashed[e.V] || failed[e] {
			continue
		}
		b.MustAddEdge(e.U, e.V)
	}
	return b.Build()
}
