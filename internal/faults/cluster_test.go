package faults

import (
	"testing"
	"time"
)

// TestClusterScenarioDeterminism: the same (name, seed, nodes, horizon)
// must resolve to the identical plan, and different seeds should be able to
// pick different victims.
func TestClusterScenarioDeterminism(t *testing.T) {
	a, err := ClusterScenario("kill1", 7, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterScenario("kill1", 7, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 1 || len(b.Events) != 1 || a.Events[0] != b.Events[0] {
		t.Fatalf("kill1 not deterministic: %+v vs %+v", a.Events, b.Events)
	}
	if a.Events[0].Kind != "kill" || a.Events[0].AtMS != 2000 {
		t.Fatalf("kill1 event = %+v, want kill at mid-run", a.Events[0])
	}
	if a.Events[0].Node < 0 || a.Events[0].Node >= 3 {
		t.Fatalf("victim %d out of range", a.Events[0].Node)
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		p, err := ClusterScenario("kill1", seed, 3, 1000)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Events[0].Node] = true
	}
	if len(seen) < 2 {
		t.Errorf("20 seeds picked only victims %v — seed not reaching the victim draw", seen)
	}
}

// TestClusterScenarioShapes checks each named scenario's structure and that
// unknown names fail with the valid set.
func TestClusterScenarioShapes(t *testing.T) {
	for _, name := range ClusterScenarioNames() {
		p, err := ClusterScenario(name, 1, 3, 8000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" && p.Active() {
			t.Errorf("none is active: %+v", p)
		}
		if name != "none" && !p.Active() {
			t.Errorf("%s is inactive", name)
		}
	}
	p, err := ClusterScenario("kill1-restart", 3, 4, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 || p.Events[0].Kind != "kill" || p.Events[1].Kind != "restart" {
		t.Fatalf("kill1-restart events = %+v", p.Events)
	}
	if p.Events[0].Node != p.Events[1].Node || p.Events[1].AtMS <= p.Events[0].AtMS {
		t.Fatalf("restart must revive the same victim later: %+v", p.Events)
	}
	if _, err := ClusterScenario("nope", 1, 3, 1000); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ClusterScenario("kill1", 1, 0, 1000); err == nil {
		t.Error("0-node cluster accepted")
	}
}

// TestClusterFatePureAndRated: Fate must be a pure function of (seed, seq),
// nil-safe, and hit the configured rates roughly over many sequences.
func TestClusterFatePure(t *testing.T) {
	p := &ClusterPlan{Seed: 11, DropRate: 0.10, DelayRate: 0.20, DelayMaxMS: 40}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	drops, delays := 0, 0
	for seq := int64(0); seq < 10000; seq++ {
		d1, w1 := p.Fate(seq)
		d2, w2 := p.Fate(seq)
		if d1 != d2 || w1 != w2 {
			t.Fatalf("Fate(%d) not pure: (%v,%v) vs (%v,%v)", seq, d1, w1, d2, w2)
		}
		if d1 {
			drops++
		}
		if w1 > 0 {
			delays++
			if w1 > 40*time.Millisecond {
				t.Fatalf("delay %v exceeds DelayMaxMS", w1)
			}
		}
	}
	if drops < 700 || drops > 1300 {
		t.Errorf("drop count %d/10000 far from 10%%", drops)
	}
	if delays < 1600 || delays > 2400 {
		t.Errorf("delay count %d/10000 far from 20%%", delays)
	}
	var nilPlan *ClusterPlan
	if d, w := nilPlan.Fate(3); d || w != 0 {
		t.Error("nil plan must inject nothing")
	}
	if nilPlan.Active() {
		t.Error("nil plan active")
	}
}

// TestClusterPlanValidate covers the rejection paths.
func TestClusterPlanValidate(t *testing.T) {
	bad := []ClusterPlan{
		{DropRate: 1.0},
		{DelayRate: -0.1},
		{DelayRate: 0.1}, // no DelayMaxMS
		{Events: []NodeEvent{{Node: -1, AtMS: 0, Kind: "kill"}}},
		{Events: []NodeEvent{{Node: 0, AtMS: -5, Kind: "kill"}}},
		{Events: []NodeEvent{{Node: 0, AtMS: 0, Kind: "explode"}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p)
		}
	}
	ok := ClusterPlan{DropRate: 0.5, DelayRate: 0.5, DelayMaxMS: 10,
		Events: []NodeEvent{{Node: 2, AtMS: 100, Kind: "restart"}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}
