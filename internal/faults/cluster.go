package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file lifts the fault model one tier up: from host processors inside
// a simulation to the serving nodes of the cluster itself (internal/
// cluster). A ClusterPlan schedules node kills/restarts on the wall-clock
// of a soak run and injects per-forward message faults (drop, delay) into
// the request-forwarding path, all deterministically from a seed — the
// serving-tier analogue of Plan, where crashing k nodes walks the cluster
// down the size axis and the survivors must keep every request answered.

// NodeEvent schedules one membership fault: node index Node (into the
// soak's ordered node list) is killed or restarted AtMS milliseconds into
// the run.
type NodeEvent struct {
	Node int    `json:"node"`
	AtMS int    `json:"at_ms"`
	Kind string `json:"kind"` // "kill" | "restart"
}

// ClusterPlan is a deterministic serving-tier fault schedule. The zero
// value injects nothing. Events drive the chaos driver (uninetload -chaos);
// the rates drive per-forward fates consumed by internal/cluster via the
// ForwardFaults interface shape (Fate).
type ClusterPlan struct {
	// Name labels the plan ("" for ad-hoc plans).
	Name string `json:"name"`
	// Seed drives the per-forward fate decisions.
	Seed int64 `json:"seed"`
	// Events are the scheduled node kills/restarts, ascending by AtMS.
	Events []NodeEvent `json:"events,omitempty"`
	// DropRate is the probability a forward attempt is dropped (treated as
	// a transport failure by the forwarding node), in [0, 1).
	DropRate float64 `json:"drop_rate,omitempty"`
	// DelayRate is the probability a forward attempt is delayed, in [0, 1).
	DelayRate float64 `json:"delay_rate,omitempty"`
	// DelayMaxMS bounds an injected delay; each delayed forward waits a
	// deterministic duration in (0, DelayMaxMS].
	DelayMaxMS int `json:"delay_max_ms,omitempty"`
}

// Validate checks rates and event shape.
func (p *ClusterPlan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", p.DropRate}, {"delay", p.DelayRate}} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("faults: cluster %s rate %v outside [0,1)", r.name, r.v)
		}
	}
	if p.DelayRate > 0 && p.DelayMaxMS <= 0 {
		return fmt.Errorf("faults: delay rate %v with no DelayMaxMS", p.DelayRate)
	}
	for _, e := range p.Events {
		if e.Node < 0 {
			return fmt.Errorf("faults: cluster event on negative node %d", e.Node)
		}
		if e.AtMS < 0 {
			return fmt.Errorf("faults: cluster event at negative time %dms", e.AtMS)
		}
		switch e.Kind {
		case "kill", "restart":
		default:
			return fmt.Errorf("faults: unknown cluster event kind %q (kill|restart)", e.Kind)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *ClusterPlan) Active() bool {
	if p == nil {
		return false
	}
	return len(p.Events) > 0 || p.DropRate > 0 || p.DelayRate > 0
}

// Fate decides, purely from (plan seed, forward sequence number), whether
// forward attempt seq is dropped and how long it is delayed first. It
// implements cluster.ForwardFaults: no shared RNG state, so concurrent
// forwards get order-independent fates.
func (p *ClusterPlan) Fate(seq int64) (drop bool, delay time.Duration) {
	if p == nil {
		return false, 0
	}
	h := splitmix64(uint64(p.Seed))
	h = splitmix64(h ^ uint64(seq)<<13)
	u := unitFloat(h)
	if u < p.DropRate {
		drop = true
	}
	h = splitmix64(h ^ 0xD1B54A32D192ED03)
	if unitFloat(h) < p.DelayRate {
		// A second channel picks the magnitude in (0, DelayMaxMS].
		ms := 1 + int(splitmix64(h^0x8BB84B93962EACC9)%uint64(p.DelayMaxMS))
		delay = time.Duration(ms) * time.Millisecond
	}
	return drop, delay
}

// ClusterScenarioNames lists the recognized cluster scenario names, sorted.
func ClusterScenarioNames() []string {
	names := []string{"none", "kill1", "kill1-restart", "lossy-net", "slow-net", "chaos"}
	sort.Strings(names)
	return names
}

// ClusterScenario resolves a named serving-tier scenario against a cluster
// of nodes serving a run of horizonMS milliseconds:
//
//	none          — no faults (baseline)
//	kill1         — SIGKILL one seeded victim at mid-run
//	kill1-restart — kill one victim at mid-run, restart it at 3/4 run
//	lossy-net     — 5% of forward attempts dropped
//	slow-net      — 20% of forward attempts delayed up to 50ms
//	chaos         — kill1 + 2% drop + 10% delay up to 25ms
//
// The victim index and event times are drawn deterministically from the
// seed, so "kill1 @ seed 7" names one exact chaos schedule forever.
func ClusterScenario(name string, seed int64, nodes, horizonMS int) (*ClusterPlan, error) {
	if nodes < 1 || horizonMS < 1 {
		return nil, fmt.Errorf("faults: cluster scenario needs nodes ≥ 1 and horizon ≥ 1ms (got %d, %dms)", nodes, horizonMS)
	}
	mid := horizonMS / 2
	if mid < 1 {
		mid = 1
	}
	victim := pick(seed, "cluster-kill", 0, nodes)
	p := &ClusterPlan{Name: name, Seed: seed}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "none", "":
		p.Name = "none"
	case "kill1":
		p.Events = []NodeEvent{{Node: victim, AtMS: mid, Kind: "kill"}}
	case "kill1-restart":
		p.Events = []NodeEvent{
			{Node: victim, AtMS: mid, Kind: "kill"},
			{Node: victim, AtMS: mid + horizonMS/4, Kind: "restart"},
		}
	case "lossy-net":
		p.DropRate = 0.05
	case "slow-net":
		p.DelayRate = 0.20
		p.DelayMaxMS = 50
	case "chaos":
		p.Events = []NodeEvent{{Node: victim, AtMS: mid, Kind: "kill"}}
		p.DropRate = 0.02
		p.DelayRate = 0.10
		p.DelayMaxMS = 25
	default:
		return nil, fmt.Errorf("faults: unknown cluster scenario %q (valid: %s)",
			name, strings.Join(ClusterScenarioNames(), ","))
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].AtMS < p.Events[j].AtMS })
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
