package faults

import (
	"fmt"
	"sort"
	"strings"
)

// Named fault scenarios. A scenario name resolves, together with a seed and
// the concrete host size m and horizon T, to a fully determined Plan:
//
//	none        — no faults (the ideal host; useful as an explicit baseline)
//	crash1      — one processor crash at mid-run
//	crash2      — two processor crashes at mid-run
//	crash4      — four processor crashes, staggered over the run
//	lossy       — 5% message drop from step 1
//	flaky       — 2% drop + 2% duplication + 1% corruption from step 1
//	partition   — four random link failures at mid-run
//	chaos       — crash2 + flaky + two link failures
//
// Crash victims, crash steps and failing links are drawn deterministically
// from the seed via SplitMix64, so "crash2 @ seed 7" names one exact fault
// schedule forever.

// ScenarioNames lists the recognized scenario names, sorted.
func ScenarioNames() []string {
	names := []string{"none", "crash1", "crash2", "crash4", "lossy", "flaky", "partition", "chaos"}
	sort.Strings(names)
	return names
}

// pick returns a deterministic value in [0, n) from channel (seed, tag, i).
func pick(seed int64, tag string, i, n int) int {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(tag) {
		h = splitmix64(h ^ uint64(b))
	}
	h = splitmix64(h ^ uint64(i))
	return int(h % uint64(n))
}

// distinctHosts draws k distinct hosts in [0, m) deterministically.
func distinctHosts(seed int64, tag string, k, m int) []int {
	if k > m {
		k = m
	}
	seen := make(map[int]bool, k)
	hosts := make([]int, 0, k)
	for i := 0; len(hosts) < k; i++ {
		h := pick(seed, tag, i, m)
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// crashPlan schedules k distinct crashes. With stagger false all crashes hit
// at mid-run; with stagger true they spread over steps 1..T.
func crashPlan(seed int64, k, m, T int, stagger bool) []Crash {
	mid := T/2 + 1
	if mid > T {
		mid = T
	}
	if mid < 1 {
		mid = 1
	}
	hosts := distinctHosts(seed, "crash", k, m)
	crashes := make([]Crash, len(hosts))
	for i, h := range hosts {
		step := mid
		if stagger && T > 1 {
			step = 1 + pick(seed, "crash-step", i, T)
		}
		crashes[i] = Crash{Host: h, Step: step}
	}
	return crashes
}

// Scenario resolves a named scenario against a host of m processors and a
// T-step horizon. Unknown names are an error listing the valid set.
func Scenario(name string, seed int64, m, T int) (*Plan, error) {
	if m < 1 || T < 1 {
		return nil, fmt.Errorf("faults: scenario needs m ≥ 1 and T ≥ 1 (got m=%d T=%d)", m, T)
	}
	p := &Plan{Name: name, Seed: seed, Onset: 1}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "none", "":
		p.Name = "none"
	case "crash1":
		p.Crashes = crashPlan(seed, 1, m, T, false)
	case "crash2":
		p.Crashes = crashPlan(seed, 2, m, T, false)
	case "crash4":
		p.Crashes = crashPlan(seed, 4, m, T, true)
	case "lossy":
		p.DropRate = 0.05
	case "flaky":
		p.DropRate = 0.02
		p.DupRate = 0.02
		p.CorruptRate = 0.01
	case "partition":
		p.LinkFailures = randomLinkFailures(seed, 4, m, T)
	case "chaos":
		p.Crashes = crashPlan(seed, 2, m, T, false)
		p.DropRate = 0.02
		p.DupRate = 0.02
		p.CorruptRate = 0.01
		p.LinkFailures = randomLinkFailures(seed+1, 2, m, T)
	default:
		return nil, fmt.Errorf("faults: unknown scenario %q (valid: %s)",
			name, strings.Join(ScenarioNames(), ","))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// randomLinkFailures draws k vertex pairs as link-failure candidates at
// mid-run. Pairs that happen not to be host edges are harmless no-ops when
// the degraded graph is built, so the schedule stays host-independent.
func randomLinkFailures(seed int64, k, m, T int) []LinkFailure {
	mid := T/2 + 1
	if mid > T {
		mid = T
	}
	var out []LinkFailure
	for i := 0; len(out) < k && i < 8*k; i++ {
		u := pick(seed, "link-u", i, m)
		v := pick(seed, "link-v", i, m)
		if u == v {
			continue
		}
		out = append(out, LinkFailure{U: u, V: v, Step: mid})
	}
	return out
}
