package faults

import (
	"errors"
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/routing"
)

// ErrPhaseLost is returned when a routing phase still has undelivered
// packets after the plan's retry budget: message loss the simulation cannot
// hide. Callers typically wrap it into their own unrecoverability error.
var ErrPhaseLost = errors.New("faults: routing phase lost packets beyond the retry budget")

// PhaseResult reports one fault-injected routing phase: the accumulated
// inner-router cost over all attempts plus the fault events the phase saw.
type PhaseResult struct {
	routing.Result
	Attempts int
	Counters Counters
}

// RoutePhase routes p on g with inner under the plan's message-fault model
// for guest step step. Attempt 0 routes every packet (plus deterministic
// duplicates); packets the plan drops or corrupts are retransmitted in
// further attempts — each a fresh routing sub-problem whose steps add to the
// total — until everything has been delivered intact or the retry budget is
// exhausted (ErrPhaseLost). A nil or inactive plan degenerates to a single
// clean inner route.
//
// Determinism: packet fates are pure functions of (seed, step, attempt,
// packet index), and retry sub-problems preserve the original pair order, so
// the phase cost and counters are reproducible byte-for-byte.
func RoutePhase(inner routing.Router, g *graph.Graph, p *routing.Problem, plan *Plan, step int) (PhaseResult, error) {
	var out PhaseResult
	if len(p.Pairs) == 0 {
		return out, nil
	}
	if !plan.Active() || (plan.DropRate == 0 && plan.DupRate == 0 && plan.CorruptRate == 0) {
		res, err := inner.Route(g, p)
		out.Result = res
		out.Attempts = 1
		return out, err
	}

	// pending holds the indices (into p.Pairs) still awaiting an intact
	// delivery, in ascending order.
	pending := make([]int, len(p.Pairs))
	for i := range pending {
		pending[i] = i
	}
	budget := plan.maxRetries()
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt > budget {
			return out, fmt.Errorf("faults: step %d: %d packet(s) undelivered after %d attempts: %w",
				step, len(pending), attempt, ErrPhaseLost)
		}
		// Decide fates first (pure), then build the attempt's wire problem:
		// every pending pair, plus one extra copy per duplicated packet.
		fates := make([]Fate, len(pending))
		wire := make([]routing.Pair, 0, len(pending))
		var next []int
		for k, idx := range pending {
			fates[k] = plan.PacketFate(step, attempt, idx)
			wire = append(wire, p.Pairs[idx])
			switch fates[k] {
			case Delivered:
			case Duplicated:
				out.Counters.Injected++
				out.Counters.Duplicated++
				wire = append(wire, p.Pairs[idx])
			case Dropped:
				out.Counters.Injected++
				out.Counters.Dropped++
				next = append(next, idx)
			case Corrupted:
				out.Counters.Injected++
				out.Counters.Corrupted++
				next = append(next, idx)
			}
		}
		res, err := inner.Route(g, &routing.Problem{N: p.N, Pairs: wire})
		if err != nil {
			return out, fmt.Errorf("faults: step %d attempt %d: %w", step, attempt, err)
		}
		out.Attempts++
		out.Steps += res.Steps
		out.TotalHops += res.TotalHops
		if res.MaxQueue > out.MaxQueue {
			out.MaxQueue = res.MaxQueue
		}
		// Delivered = intact deliveries of distinct payloads this attempt.
		out.Delivered += len(pending) - len(next)
		if attempt > 0 {
			out.Counters.Retried += len(pending)
		}
		pending = next
	}
	return out, nil
}

// Router wraps an inner routing.Router so that every Route call runs under
// the plan's message-fault model. The guest step used for fate decisions
// advances by one per Route call (starting at StartStep), which makes the
// wrapper drop-in for step-by-step simulators; callers needing explicit step
// control should use RoutePhase directly.
type Router struct {
	Inner     routing.Router
	Plan      *Plan
	StartStep int
	// Obs, when non-nil, receives per-phase fault counters and attempt
	// counts in addition to whatever the inner router records.
	Obs *obs.Registry

	calls    int
	counters Counters
}

// SetObs implements routing.Instrumentable, threading the registry into both
// the wrapper and its inner router.
func (r *Router) SetObs(reg *obs.Registry) {
	r.Obs = reg
	routing.SetObs(r.Inner, reg)
}

// Name implements routing.Router.
func (r *Router) Name() string {
	label := "plan"
	if r.Plan != nil && r.Plan.Name != "" {
		label = r.Plan.Name
	}
	return fmt.Sprintf("faulty[%s](%s)", label, r.Inner.Name())
}

// Route implements routing.Router: one fault-injected phase at the next
// sequential step.
func (r *Router) Route(g *graph.Graph, p *routing.Problem) (routing.Result, error) {
	step := r.StartStep + r.calls
	r.calls++
	res, err := RoutePhase(r.Inner, g, p, r.Plan, step)
	r.counters.Add(res.Counters)
	if r.Obs != nil {
		r.Obs.Counter("faults.phases").Inc()
		r.Obs.Counter("faults.attempts").Add(int64(res.Attempts))
		res.Counters.Record(r.Obs)
	}
	return res.Result, err
}

// Counters returns the fault events accumulated over all Route calls.
func (r *Router) Counters() Counters { return r.counters }
