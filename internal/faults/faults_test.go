package faults

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/routing"
	"universalnet/internal/topology"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPlanValidate(t *testing.T) {
	good := &Plan{Seed: 1, DropRate: 0.1, Crashes: []Crash{{Host: 3, Step: 2}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, bad := range []*Plan{
		{DropRate: 1.0},
		{DupRate: -0.1},
		{CorruptRate: 2},
		{Crashes: []Crash{{Host: 0, Step: 0}}},
		{Crashes: []Crash{{Host: -1, Step: 1}}},
		{LinkFailures: []LinkFailure{{U: 1, V: 1, Step: 1}}},
		{LinkFailures: []LinkFailure{{U: 0, V: 1, Step: 0}}},
		{MaxRetries: -1},
		{Onset: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid plan %+v accepted", bad)
		}
	}
}

func TestPacketFateDeterministicAndOnset(t *testing.T) {
	p := &Plan{Seed: 42, DropRate: 0.2, DupRate: 0.1, CorruptRate: 0.05, Onset: 3}
	for step := 0; step < 3; step++ {
		for idx := 0; idx < 50; idx++ {
			if f := p.PacketFate(step, 0, idx); f != Delivered {
				t.Fatalf("fault before onset: step=%d idx=%d fate=%v", step, idx, f)
			}
		}
	}
	// Pure function: same coordinates, same fate; order-independent.
	for i := 0; i < 100; i++ {
		a := p.PacketFate(5, 1, i)
		b := p.PacketFate(5, 1, i)
		if a != b {
			t.Fatalf("fate not deterministic at idx %d: %v vs %v", i, a, b)
		}
	}
	// Empirical rates over many channels should be near the configured ones.
	const trials = 20000
	var drop, dup, corr int
	for i := 0; i < trials; i++ {
		switch p.PacketFate(7, 0, i) {
		case Dropped:
			drop++
		case Duplicated:
			dup++
		case Corrupted:
			corr++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / trials
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("%s rate %.3f, want ≈ %.3f", name, rate, want)
		}
	}
	check("drop", drop, 0.2)
	check("dup", dup, 0.1)
	check("corrupt", corr, 0.05)
}

func TestScheduleLookups(t *testing.T) {
	p := &Plan{
		Crashes:      []Crash{{Host: 5, Step: 2}, {Host: 1, Step: 2}, {Host: 3, Step: 4}},
		LinkFailures: []LinkFailure{{U: 7, V: 2, Step: 3}, {U: 0, V: 1, Step: 3}},
	}
	if got := p.CrashesAt(2); !reflect.DeepEqual(got, []int{1, 5}) {
		t.Errorf("CrashesAt(2) = %v", got)
	}
	if got := p.CrashesAt(3); got != nil {
		t.Errorf("CrashesAt(3) = %v", got)
	}
	edges := p.LinkFailuresAt(3)
	want := []graph.Edge{graph.NewEdge(0, 1), graph.NewEdge(2, 7)}
	if !reflect.DeepEqual(edges, want) {
		t.Errorf("LinkFailuresAt(3) = %v, want %v", edges, want)
	}
	var nilPlan *Plan
	if nilPlan.CrashesAt(1) != nil || nilPlan.LinkFailuresAt(1) != nil || nilPlan.Active() {
		t.Error("nil plan should be inert")
	}
}

func TestDegrade(t *testing.T) {
	g, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	d := Degrade(g, map[int]bool{2: true}, map[graph.Edge]bool{graph.NewEdge(4, 5): true})
	if d.N() != g.N() {
		t.Fatalf("vertex count changed: %d → %d", g.N(), d.N())
	}
	if d.Degree(2) != 0 {
		t.Errorf("crashed vertex 2 keeps degree %d", d.Degree(2))
	}
	if d.HasEdge(4, 5) {
		t.Error("failed link {4,5} survived")
	}
	if !d.HasEdge(0, 5) || !d.HasEdge(3, 4) {
		t.Error("healthy links removed")
	}
}

func TestRoutePhaseCleanPlan(t *testing.T) {
	g, _ := topology.Ring(8)
	p := routing.RandomPermutation(newRand(1), 8)
	inner := &routing.GreedyRouter{Mode: routing.MultiPort}
	clean, err := inner.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RoutePhase(inner, g, p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != clean.Steps || res.Counters != (Counters{}) {
		t.Errorf("nil plan altered routing: %+v vs %+v", res.Result, clean)
	}
}

func TestRoutePhaseRetriesAndDeterminism(t *testing.T) {
	g, _ := topology.Ring(8)
	p := routing.RandomPermutation(newRand(2), 8)
	inner := &routing.GreedyRouter{Mode: routing.MultiPort}
	plan := &Plan{Seed: 9, DropRate: 0.3, DupRate: 0.1, CorruptRate: 0.1, Onset: 0}
	first, err := RoutePhase(inner, g, p, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters.Dropped+first.Counters.Corrupted == 0 {
		t.Fatal("expected some drops/corruptions at 40% combined rate")
	}
	if first.Counters.Retried == 0 {
		t.Error("drops occurred but nothing was retried")
	}
	if first.Delivered != len(p.Pairs) {
		t.Errorf("delivered %d of %d payloads", first.Delivered, len(p.Pairs))
	}
	second, err := RoutePhase(inner, g, p, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first.Counters != second.Counters || first.Steps != second.Steps || first.Attempts != second.Attempts {
		t.Errorf("phase not reproducible: %+v vs %+v", first, second)
	}
}

func TestRoutePhaseRetryBudgetExhausted(t *testing.T) {
	g, _ := topology.Ring(8)
	p := routing.RandomPermutation(newRand(3), 8)
	inner := &routing.GreedyRouter{Mode: routing.MultiPort}
	plan := &Plan{Seed: 1, DropRate: 0.9, MaxRetries: 1, Onset: 0}
	_, err := RoutePhase(inner, g, p, plan, 1)
	if !errors.Is(err, ErrPhaseLost) {
		t.Fatalf("err = %v, want ErrPhaseLost", err)
	}
}

func TestRouterWrapperAdvancesSteps(t *testing.T) {
	g, _ := topology.Ring(8)
	p := routing.RandomPermutation(newRand(4), 8)
	inner := &routing.GreedyRouter{Mode: routing.MultiPort}
	plan := &Plan{Name: "lossy", Seed: 3, DropRate: 0.2, Onset: 0}
	fr := &Router{Inner: inner, Plan: plan}
	for i := 0; i < 3; i++ {
		if _, err := fr.Route(g, p); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Counters().Dropped == 0 {
		t.Error("no drops over three 20%-loss phases")
	}
	if name := fr.Name(); name != "faulty[lossy](greedy(multi-port))" {
		t.Errorf("Name() = %q", name)
	}
}

func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		p, err := Scenario(name, 7, 64, 6)
		if err != nil {
			t.Fatalf("scenario %q: %v", name, err)
		}
		again, err := Scenario(name, 7, 64, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, again) {
			t.Errorf("scenario %q not deterministic", name)
		}
		if name != "none" && !p.Active() {
			t.Errorf("scenario %q is inert", name)
		}
		for _, c := range p.Crashes {
			if c.Host < 0 || c.Host >= 64 || c.Step < 1 || c.Step > 6 {
				t.Errorf("scenario %q crash out of range: %+v", name, c)
			}
		}
	}
	if p, _ := Scenario("crash2", 7, 64, 6); len(p.Crashes) != 2 {
		t.Errorf("crash2 schedules %d crashes", len(p.Crashes))
	}
	if _, err := Scenario("meteor", 1, 8, 4); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Scenario("crash1", 1, 0, 4); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestCountersAddAndMap(t *testing.T) {
	a := Counters{Injected: 1, Dropped: 1, Retried: 2, Crashed: 1}
	b := Counters{Injected: 2, Duplicated: 3, FailedOver: 1, ReEmbedded: 2, LinksDown: 1, Corrupted: 1}
	a.Add(b)
	want := Counters{Injected: 3, Dropped: 1, Duplicated: 3, Corrupted: 1, Retried: 2,
		FailedOver: 1, ReEmbedded: 2, Crashed: 1, LinksDown: 1}
	if a != want {
		t.Errorf("Add: got %+v want %+v", a, want)
	}
	m := a.Map()
	if m["injected"] != 3 || m["re_embedded"] != 2 || len(m) != 9 {
		t.Errorf("Map: %v", m)
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}
