package routing

import (
	"math/rand"
	"testing"

	"universalnet/internal/topology"
)

func TestDeflectionRouterPermutationOnTorus(t *testing.T) {
	g, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPermutation(rand.New(rand.NewSource(1)), 64)
	r := &DeflectionRouter{Seed: 1}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64 {
		t.Errorf("delivered %d/64", res.Delivered)
	}
	// Hot-potato never exceeds degree packets per node.
	if res.MaxQueue > 4 {
		t.Errorf("queue %d above degree", res.MaxQueue)
	}
}

func TestDeflectionRouterRejectsOverload(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	// Three packets at node 0 on a degree-2 ring violate the invariant.
	p, _ := NewProblem(8, []Pair{{0, 1}, {0, 2}, {0, 3}})
	if _, err := (&DeflectionRouter{Seed: 1}).Route(g, p); err == nil {
		t.Error("overloaded start accepted")
	}
}

func TestDeflectionRouterSelfAndUnreachable(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem(8, []Pair{{2, 2}})
	res, err := (&DeflectionRouter{Seed: 1}).Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Steps != 0 {
		t.Errorf("self pair: %+v", res)
	}
}

func TestDeflectionSlowerOrEqualGreedy(t *testing.T) {
	// Deflection can wander; over several instances it should rarely beat
	// greedy and must always deliver.
	g, err := topology.Torus(49)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		p := RandomPermutation(rng, 49)
		dres, err := (&DeflectionRouter{Seed: int64(trial)}).Route(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if dres.Delivered != 49 {
			t.Fatalf("trial %d: delivered %d", trial, dres.Delivered)
		}
	}
}

func TestLowerBoundSteps(t *testing.T) {
	g, err := topology.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	// Single packet at distance 8.
	p, _ := NewProblem(16, []Pair{{0, 8}})
	lb, err := LowerBoundSteps(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 8 {
		t.Errorf("distance bound = %d, want 8", lb)
	}
	// All-to-antipode: work bound dominates: 16 packets × 8 hops / 32
	// directed edges = 4 < 8 → still 8.
	pairs := make([]Pair, 16)
	for i := range pairs {
		pairs[i] = Pair{Src: i, Dst: (i + 8) % 16}
	}
	p2, _ := NewProblem(16, pairs)
	lb2, err := LowerBoundSteps(g, p2)
	if err != nil {
		t.Fatal(err)
	}
	if lb2 < 8 {
		t.Errorf("bound %d < 8", lb2)
	}
	// Heavy h–h load: work bound exceeds diameter.
	var heavy []Pair
	for rep := 0; rep < 8; rep++ {
		for i := range pairs {
			heavy = append(heavy, Pair{Src: i, Dst: (i + 8) % 16})
		}
	}
	p3, _ := NewProblem(16, heavy)
	lb3, err := LowerBoundSteps(g, p3)
	if err != nil {
		t.Fatal(err)
	}
	if lb3 <= 8 {
		t.Errorf("work bound %d should exceed the distance bound", lb3)
	}
	// Measured steps respect the bound.
	res, err := (&GreedyRouter{Mode: MultiPort}).Route(g, p3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < lb3 {
		t.Errorf("router finished in %d steps below the bound %d", res.Steps, lb3)
	}
}

func TestLowerBoundStepsErrors(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem(4, nil)
	if _, err := LowerBoundSteps(g, p); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestAllRoutersRespectLowerBound(t *testing.T) {
	// Every router's step count must dominate the instance lower bound
	// max(distance, total-work/capacity) — the model-independent floor.
	g, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	routers := []Router{
		&GreedyRouter{Mode: MultiPort},
		&GreedyRouter{Mode: SinglePort},
		&GreedyRouter{Mode: MultiPort, Policy: RandomNextHop, Seed: 5},
		&DimensionOrderRouter{N: 8, Wrap: true, Mode: MultiPort},
		&ValiantRouter{Mode: MultiPort, Seed: 5},
		&DeflectionRouter{Seed: 5},
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		p := RandomPermutation(rng, 64)
		lb, err := LowerBoundSteps(g, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range routers {
			res, err := r.Route(g, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, r.Name(), err)
			}
			if res.Steps < lb {
				t.Errorf("trial %d: %s finished in %d steps, below the bound %d",
					trial, r.Name(), res.Steps, lb)
			}
		}
	}
}
