package routing

import (
	"math/rand"
	"testing"

	"universalnet/internal/graph"
)

// FuzzDeflectionRoute drives hot-potato routing over randomized small
// topologies and demand sets. The contract under fuzzing: Route must
// terminate within MaxStep and either deliver every packet exactly once or
// return a clean error — never panic, hang, or silently lose a packet.
// Extend with `go test -fuzz=FuzzDeflectionRoute ./internal/routing`.
func FuzzDeflectionRoute(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), uint8(8))
	f.Add(int64(42), uint8(3), uint8(0), uint8(1))
	f.Add(int64(7), uint8(30), uint8(9), uint8(60))
	f.Add(int64(-5), uint8(16), uint8(1), uint8(255))
	f.Add(int64(0), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, chordRaw, pairsRaw uint8) {
		n := 3 + int(nRaw)%30
		rng := rand.New(rand.NewSource(seed))

		// A ring keeps the topology connected; random chords vary degree
		// and distance structure so deflections actually happen.
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			b.MustAddEdge(v, (v+1)%n)
		}
		for i := 0; i < int(chordRaw)%10; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.MustAddEdge(u, v)
			}
		}
		g := b.Build()

		pairs := make([]Pair, int(pairsRaw)%64)
		for i := range pairs {
			pairs[i] = Pair{Src: rng.Intn(n), Dst: rng.Intn(n)}
		}
		p := &Problem{N: n, Pairs: pairs}

		const maxStep = 4096
		r := &DeflectionRouter{Seed: seed, MaxStep: maxStep}
		res, err := r.Route(g, p)
		if err != nil {
			// A clean rejection (hot-potato invariant violated at the
			// start, or the step bound tripped) is acceptable; a partial
			// result must never claim more deliveries than demands.
			if res.Delivered > len(p.Pairs) {
				t.Fatalf("error path over-delivered: %d > %d", res.Delivered, len(p.Pairs))
			}
			return
		}
		if res.Delivered != len(p.Pairs) {
			t.Fatalf("delivered %d of %d packets without error", res.Delivered, len(p.Pairs))
		}
		if res.Steps > maxStep {
			t.Fatalf("claimed %d steps > bound %d", res.Steps, maxStep)
		}
		if len(p.Pairs) > 0 && res.TotalHops < 0 {
			t.Fatalf("negative hop count %d", res.TotalHops)
		}

		// Same seed, same instance ⇒ same outcome (router determinism).
		again, err2 := r.Route(g, p)
		if err2 != nil {
			t.Fatalf("rerun errored after clean run: %v", err2)
		}
		if again.Delivered != res.Delivered || again.Steps != res.Steps || again.TotalHops != res.TotalHops {
			t.Fatalf("nondeterministic routing: %+v vs %+v", res, again)
		}
	})
}
