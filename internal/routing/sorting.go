package routing

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// Sorting networks as a routing mechanism (§2): "using parallel sorting as
// routing mechanism" — packets sorted by destination end up at their
// destinations when the network is a linear array, and a permutation on any
// indexable network can be routed by sorting destination keys. This file
// provides compare-exchange schedules (odd–even transposition for arrays,
// bitonic for hypercubes), their executors, and a SortingRouter.

// CompareExchange is one comparator: if the key at position I exceeds the
// key at position J (I < J positions in the sorted order), swap them.
type CompareExchange struct {
	I, J int
}

// Schedule is a sorting network: rounds of disjoint comparators. All
// comparators within a round operate in parallel (their endpoints are
// disjoint), matching one network step in which each node exchanges with a
// single neighbor.
type Schedule struct {
	N      int
	Rounds [][]CompareExchange
}

// Depth returns the number of parallel rounds.
func (s *Schedule) Depth() int { return len(s.Rounds) }

// Size returns the total comparator count.
func (s *Schedule) Size() int {
	c := 0
	for _, r := range s.Rounds {
		c += len(r)
	}
	return c
}

// Validate checks comparator bounds and intra-round disjointness.
func (s *Schedule) Validate() error {
	for ri, round := range s.Rounds {
		used := make(map[int]bool)
		for _, ce := range round {
			if ce.I < 0 || ce.J < 0 || ce.I >= s.N || ce.J >= s.N || ce.I == ce.J {
				return fmt.Errorf("routing: round %d has invalid comparator %+v", ri, ce)
			}
			if used[ce.I] || used[ce.J] {
				return fmt.Errorf("routing: round %d reuses a position in %+v", ri, ce)
			}
			used[ce.I] = true
			used[ce.J] = true
		}
	}
	return nil
}

// Apply runs the schedule on keys in place.
func (s *Schedule) Apply(keys []int) error {
	if len(keys) != s.N {
		return fmt.Errorf("routing: %d keys for schedule of %d", len(keys), s.N)
	}
	for _, round := range s.Rounds {
		for _, ce := range round {
			// The comparator orients I as the small end: after the round,
			// keys[I] ≤ keys[J]. Descending comparators (bitonic) set I > J.
			if keys[ce.I] > keys[ce.J] {
				keys[ce.I], keys[ce.J] = keys[ce.J], keys[ce.I]
			}
		}
	}
	return nil
}

// Sorts reports whether the schedule sorts every 0/1 input (the 0-1
// principle: a comparator network sorts all inputs iff it sorts all 2^n
// 0/1 vectors). Exponential; for n ≤ 20.
func (s *Schedule) Sorts() (bool, error) {
	if s.N > 20 {
		return false, fmt.Errorf("routing: 0-1 check infeasible for n=%d", s.N)
	}
	keys := make([]int, s.N)
	for mask := 0; mask < 1<<s.N; mask++ {
		for i := 0; i < s.N; i++ {
			keys[i] = (mask >> i) & 1
		}
		if err := s.Apply(keys); err != nil {
			return false, err
		}
		for i := 1; i < s.N; i++ {
			if keys[i-1] > keys[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// OddEvenTransposition returns the classic n-round schedule for a linear
// array: odd rounds compare (0,1),(2,3),…; even rounds compare (1,2),(3,4),…
// Each comparator is an edge of the path, so one round = one network step.
func OddEvenTransposition(n int) *Schedule {
	s := &Schedule{N: n}
	for r := 0; r < n; r++ {
		var round []CompareExchange
		start := r % 2
		for i := start; i+1 < n; i += 2 {
			round = append(round, CompareExchange{I: i, J: i + 1})
		}
		s.Rounds = append(s.Rounds, round)
	}
	return s
}

// Bitonic returns Batcher's bitonic sorting network for n = 2^k inputs:
// depth k(k+1)/2 rounds, each round's comparators along one hypercube
// dimension (so the schedule runs on a hypercube with one step per round).
func Bitonic(n int) (*Schedule, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("routing: bitonic needs a power of two, got %d", n)
	}
	s := &Schedule{N: n}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var round []CompareExchange
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					if i&k == 0 {
						round = append(round, CompareExchange{I: i, J: l})
					} else {
						round = append(round, CompareExchange{I: l, J: i})
					}
				}
			}
			s.Rounds = append(s.Rounds, round)
		}
	}
	return s, nil
}

// OddEvenMerge returns Batcher's odd-even merge sorting network for n = 2^k
// inputs; slightly smaller than bitonic at the same depth order.
func OddEvenMerge(n int) (*Schedule, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("routing: odd-even merge needs a power of two, got %d", n)
	}
	s := &Schedule{N: n}
	for p := 1; p < n; p <<= 1 {
		for k := p; k > 0; k >>= 1 {
			var round []CompareExchange
			for j := k % p; j+k < n; j += 2 * k {
				for i := 0; i < k && i+j+k < n; i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						round = append(round, CompareExchange{I: i + j, J: i + j + k})
					}
				}
			}
			s.Rounds = append(s.Rounds, round)
		}
	}
	return s, nil
}

// SortingRouter routes a full permutation on an indexable network by sorting
// packets by destination with a comparator schedule; time = schedule depth.
// The schedule's comparators must correspond to network edges under the
// identity position↔node map (true for OddEvenTransposition on paths/rings
// and Bitonic on hypercubes).
type SortingRouter struct {
	Schedule *Schedule
	// CheckEdges, when set, verifies each comparator is a host edge.
	CheckEdges bool
}

// Name implements Router.
func (r *SortingRouter) Name() string { return "sorting" }

// Route implements Router for full permutations: packet i at node i with
// destination Dst sorts into place.
func (r *SortingRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	if r.Schedule == nil || r.Schedule.N != p.N || g.N() != p.N {
		return Result{}, fmt.Errorf("routing: sorting router size mismatch")
	}
	if err := r.Schedule.Validate(); err != nil {
		return Result{}, err
	}
	if r.CheckEdges {
		for _, round := range r.Schedule.Rounds {
			for _, ce := range round {
				if !g.HasEdge(ce.I, ce.J) {
					return Result{}, fmt.Errorf("routing: comparator (%d,%d) is not a host edge", ce.I, ce.J)
				}
			}
		}
	}
	// Build the key array: key at node s is the destination of the packet
	// starting there. Every node must start exactly one packet.
	keys := make([]int, p.N)
	for i := range keys {
		keys[i] = -1
	}
	for _, pr := range p.Pairs {
		if keys[pr.Src] != -1 {
			return Result{}, fmt.Errorf("routing: node %d starts two packets; sorting routes full permutations", pr.Src)
		}
		keys[pr.Src] = pr.Dst
	}
	perm := make([]int, 0, p.N)
	for i, k := range keys {
		if k == -1 {
			return Result{}, fmt.Errorf("routing: node %d starts no packet; sorting routes full permutations", i)
		}
		perm = append(perm, k)
	}
	if err := checkPermutation(perm); err != nil {
		return Result{}, err
	}
	if err := r.Schedule.Apply(keys); err != nil {
		return Result{}, err
	}
	if !sort.IntsAreSorted(keys) {
		return Result{}, fmt.Errorf("routing: schedule failed to sort the destinations")
	}
	return Result{Steps: r.Schedule.Depth(), Delivered: p.N}, nil
}
