package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// Deflection ("hot-potato") routing: nodes have no buffers — every packet
// present at a node at the start of a step must leave on some link that
// step. When more packets want a productive link than exist, the losers are
// deflected along free links, possibly away from their destination.
// Classic for universal-network hosts because it needs O(1) memory per node;
// included as an alternative substrate and ablation point.

// DeflectionRouter implements buffered-less hot-potato routing. Each node
// can hold at most deg(v) packets between steps (one per incident link, the
// standard hot-potato invariant); Route errors if an instance starts with
// more packets at a node than its degree.
type DeflectionRouter struct {
	Seed    int64
	MaxStep int // 0 ⇒ heuristic bound
	// Obs, when non-nil, receives per-phase metrics plus the deflection
	// count — how often a packet lost link arbitration and moved away from
	// its destination.
	Obs *obs.Registry
}

// Name implements Router.
func (r *DeflectionRouter) Name() string { return "deflection" }

// SetObs implements Instrumentable.
func (r *DeflectionRouter) SetObs(reg *obs.Registry) { r.Obs = reg }

// Route implements Router.
func (r *DeflectionRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	if g.N() != p.N {
		return Result{}, fmt.Errorf("routing: graph has %d nodes, problem %d", g.N(), p.N)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	cache := newDistanceCache(g)

	var live []*packet
	res := Result{}
	atNode := make(map[int][]*packet)
	for i, pr := range p.Pairs {
		if pr.Src == pr.Dst {
			res.Delivered++
			continue
		}
		if cache.to(pr.Dst)[pr.Src] < 0 {
			return Result{}, fmt.Errorf("routing: destination %d unreachable from %d", pr.Dst, pr.Src)
		}
		pk := &packet{id: i, at: pr.Src, dst: pr.Dst}
		live = append(live, pk)
		atNode[pk.at] = append(atNode[pk.at], pk)
	}
	for v, pks := range atNode {
		if len(pks) > g.Degree(v) {
			return Result{}, fmt.Errorf("routing: node %d starts with %d packets > degree %d (hot-potato invariant)",
				v, len(pks), g.Degree(v))
		}
	}
	maxStep := r.MaxStep
	if maxStep == 0 {
		diam := g.Diameter()
		if diam < 1 {
			diam = g.N()
		}
		maxStep = 256 * (diam + 1) * (p.H() + 1)
	}

	deflections := 0
	for step := 0; len(live) > 0; step++ {
		if step >= maxStep {
			return res, fmt.Errorf("routing: deflection step bound %d exceeded with %d live packets", maxStep, len(live))
		}
		// Per node: assign each resident packet to a distinct outgoing link.
		// Farthest-first priority gets first pick of productive links.
		nodes := make([]int, 0, len(atNode))
		for v := range atNode {
			if len(atNode[v]) > 0 {
				nodes = append(nodes, v)
			}
		}
		sort.Ints(nodes)
		next := make(map[int][]*packet)
		for _, v := range nodes {
			pks := atNode[v]
			sort.Slice(pks, func(i, j int) bool {
				di := cache.to(pks[i].dst)[pks[i].at]
				dj := cache.to(pks[j].dst)[pks[j].at]
				if di != dj {
					return di > dj
				}
				return pks[i].id < pks[j].id
			})
			linkUsed := make(map[int]bool)
			for _, pk := range pks {
				dist := cache.to(pk.dst)
				chosen := -1
				// Productive link first.
				for _, w := range g.Neighbors(v) {
					if !linkUsed[w] && dist[w] == dist[v]-1 {
						chosen = w
						break
					}
				}
				if chosen < 0 {
					// Deflect: random free link.
					var free []int
					for _, w := range g.Neighbors(v) {
						if !linkUsed[w] {
							free = append(free, w)
						}
					}
					if len(free) == 0 {
						return res, fmt.Errorf("routing: node %d out of links (invariant violated)", v)
					}
					chosen = free[rng.Intn(len(free))]
					deflections++
				}
				linkUsed[chosen] = true
				pk.at = chosen
				pk.hops++
				next[chosen] = append(next[chosen], pk)
			}
		}
		// Deliveries.
		var stillLive []*packet
		atNode = make(map[int][]*packet)
		for _, pk := range live {
			if pk.at == pk.dst {
				res.Delivered++
				res.TotalHops += pk.hops
				continue
			}
			stillLive = append(stillLive, pk)
			atNode[pk.at] = append(atNode[pk.at], pk)
		}
		// Receiver-capacity check: each node receives ≤ degree packets
		// (guaranteed since each in-link delivers at most one).
		for v, pks := range atNode {
			if len(pks) > g.Degree(v) {
				return res, fmt.Errorf("routing: node %d holds %d packets > degree (internal error)", v, len(pks))
			}
			if len(pks) > res.MaxQueue {
				res.MaxQueue = len(pks)
			}
		}
		live = stillLive
		res.Steps = step + 1
	}
	if r.Obs != nil {
		observePhase(r.Obs, "deflection", &res)
		r.Obs.Counter("routing.deflections").Add(int64(deflections))
	}
	return res, nil
}

// LowerBoundSteps returns an instance-specific lower bound on the steps any
// store-and-forward router needs: the maximum of (a) the largest
// source→destination distance and (b) the bisection-style edge congestion
// Σ over packets of dist / m (every step moves at most one packet per
// directed edge, 2m directed edges).
func LowerBoundSteps(g *graph.Graph, p *Problem) (int, error) {
	if g.N() != p.N {
		return 0, fmt.Errorf("routing: size mismatch")
	}
	cache := newDistanceCache(g)
	maxDist := 0
	totalWork := 0
	for _, pr := range p.Pairs {
		d := cache.to(pr.Dst)[pr.Src]
		if d < 0 {
			return 0, fmt.Errorf("routing: unreachable pair %v", pr)
		}
		if d > maxDist {
			maxDist = d
		}
		totalWork += d
	}
	if g.M() == 0 {
		return maxDist, nil
	}
	workBound := (totalWork + 2*g.M() - 1) / (2 * g.M())
	if workBound > maxDist {
		return workBound, nil
	}
	return maxDist, nil
}
