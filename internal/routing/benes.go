package routing

import (
	"fmt"

	"universalnet/internal/graph"
)

// The Beneš network of dimension d has 2^d rows and 2d−1 switching stages
// (levels 0..2d−1). Stage s switches bit min(s, 2d−2−s): the outermost
// stages switch bit 0, the central stage switches bit d−1. Any permutation
// of the rows can be routed with vertex-disjoint paths, one level per step —
// the constructive content of Waksman's theorem [19] and the reason a
// butterfly of size m routes fixed permutations offline in O(log m) steps.

// BenesLevels returns the number of vertex levels of the dimension-d Beneš
// network: 2d (levels 0..2d−1), i.e. 2d−1 stages.
func BenesLevels(d int) int { return 2 * d }

// benesStageBit returns the bit switched between level s and s+1.
func benesStageBit(d, s int) int {
	if s < d {
		return s
	}
	return 2*d - 2 - s
}

// BenesNode maps (level, row) to a vertex index of the BenesGraph.
func BenesNode(d, level, row int) int { return level*(1<<d) + row }

// BenesGraph returns the dimension-d Beneš network as a graph: BenesLevels(d)
// levels of 2^d rows; between consecutive levels, straight edges and cross
// edges on the stage bit.
func BenesGraph(d int) (*graph.Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("routing: Beneš dimension %d out of range [1,20]", d)
	}
	rows := 1 << d
	levels := BenesLevels(d)
	b := graph.NewBuilder(levels * rows)
	for s := 0; s+1 < levels; s++ {
		bit := benesStageBit(d, s)
		for r := 0; r < rows; r++ {
			b.MustAddEdge(BenesNode(d, s, r), BenesNode(d, s+1, r))
			b.MustAddEdge(BenesNode(d, s, r), BenesNode(d, s+1, r^(1<<bit)))
		}
	}
	return b.Build(), nil
}

// BenesPaths computes, for the permutation perm of the 2^d rows, a family of
// vertex-disjoint paths through the Beneš network: paths[i][l] is the row of
// packet i at level l, with paths[i][0] = i and paths[i][last] = perm[i].
// This is the Waksman looping algorithm, applied recursively.
func BenesPaths(d int, perm []int) ([][]int, error) {
	// Stack scratch: the one-shot path must not pay a heap allocation for
	// the scratch header (Paths does not leak its receiver).
	var ps PathScratch
	ps.init(d)
	return ps.Paths(perm)
}

// PathScratch owns the working storage of the Waksman recursion plus the
// path matrix, so multi-round callers (the Beneš protocol builder routes one
// permutation per decomposition round) pay the allocations once and route
// every round allocation-free. Not safe for concurrent use.
type PathScratch struct {
	d, rows, levels int
	sc              benesScratch // by value: one header allocation, not two
	paths           [][]int
}

// NewPathScratch allocates routing storage for dimension d.
func NewPathScratch(d int) *PathScratch {
	ps := &PathScratch{}
	ps.init(d)
	return ps
}

func (ps *PathScratch) init(d int) {
	rows := 1 << d
	levels := BenesLevels(d)
	ps.d, ps.rows, ps.levels = d, rows, levels
	ps.paths = make([][]int, rows)
	buf := make([]int, rows*levels)
	for i := range ps.paths {
		ps.paths[i] = buf[i*levels : (i+1)*levels : (i+1)*levels]
	}
	ps.sc = benesScratch{
		inMate:   make([]int32, rows),
		outMate:  make([]int32, rows),
		inStamp:  make([]int32, rows),
		outStamp: make([]int32, rows),
		sub:      make([]int8, rows),
		arena:    make([]int, 3*rows*d),
		rows:     rows,
	}
}

// Paths routes perm and returns the path family. The result reuses the
// scratch's storage: it is only valid until the next Paths call (BenesPaths
// wraps a fresh scratch for callers that need to retain it). Every level of
// every path is rewritten on each call, so no stale state leaks between
// permutations.
func (ps *PathScratch) Paths(perm []int) ([][]int, error) {
	if len(perm) != ps.rows {
		return nil, fmt.Errorf("routing: permutation length %d, want %d", len(perm), ps.rows)
	}
	if err := checkPermutation(perm); err != nil {
		return nil, err
	}
	sc := &ps.sc
	ids := sc.arena[0:ps.rows]
	cur := sc.arena[ps.rows : 2*ps.rows]
	dst := sc.arena[2*ps.rows : 3*ps.rows]
	for i := 0; i < ps.rows; i++ {
		ps.paths[i][0] = i
		ids[i] = i
		cur[i] = i
		dst[i] = perm[i]
	}
	benesFill(ps.paths, ids, cur, dst, 0, ps.levels-1, 0, ps.d, sc, 0)
	return ps.paths, nil
}

// benesScratch holds the reusable working storage of one BenesPaths call.
// The mate tables are row-indexed and epoch-stamped (one epoch per recursion
// node) so no per-node maps are needed; the arena provides, per recursion
// depth, the ids/cur/dst triples of that depth's subproblems, carved at the
// subproblem's row offset — subproblems at one depth occupy disjoint row
// ranges, so they never collide.
type benesScratch struct {
	inMate, outMate   []int32 // row → packet index, valid when stamp == epoch
	inStamp, outStamp []int32
	epoch             int32
	sub               []int8 // packet slot → subnetwork (0/1), −1 unassigned
	arena             []int  // 3·rows ints per depth: ids | cur | dst
	rows              int
}

func checkPermutation(perm []int) error {
	seen := make([]bool, len(perm))
	for i, v := range perm {
		if v < 0 || v >= len(perm) {
			return fmt.Errorf("routing: perm[%d] = %d out of range", i, v)
		}
		if seen[v] {
			return fmt.Errorf("routing: value %d repeated in permutation", v)
		}
		seen[v] = true
	}
	return nil
}

// benesFill routes the packets `ids` (currently at rows cur, destined for
// rows dst; all rows agree on bits < b) through graph levels [lo, hi],
// switching bits b..d−1 and back. It writes paths[p][l] for l in (lo, hi].
func benesFill(paths [][]int, ids, cur, dst []int, lo, hi, b, d int, sc *benesScratch, off int) {
	k := d - b // bits remaining
	if k == 1 {
		// Single stage: flip (or keep) bit b to reach the destination row.
		for idx, p := range ids {
			paths[p][hi] = dst[idx]
		}
		return
	}
	// Waksman looping: assign each packet to the upper (0) or lower (1)
	// subnetwork so that input switch-mates and output switch-mates split.
	m := len(ids)
	bit := 1 << b
	sc.epoch++
	ep := sc.epoch
	for idx := range ids {
		sc.inMate[cur[idx]] = int32(idx)
		sc.inStamp[cur[idx]] = ep
		sc.outMate[dst[idx]] = int32(idx)
		sc.outStamp[dst[idx]] = ep
	}
	sub := sc.sub[:m]
	for i := range sub {
		sub[i] = -1
	}
	for start := 0; start < m; start++ {
		if sub[start] >= 0 {
			continue
		}
		// Walk the constraint cycle: input-mate forces the complement,
		// output-mate forces the complement.
		idx, val := start, int8(0)
		for {
			if sub[idx] >= 0 {
				break
			}
			sub[idx] = val
			// Input mate of idx must take 1−val.
			if sc.inStamp[cur[idx]^bit] != ep {
				panic("routing: missing input mate in Beneš recursion")
			}
			jm := int(sc.inMate[cur[idx]^bit])
			if sub[jm] >= 0 {
				break
			}
			sub[jm] = 1 - val
			// Output mate of jm must take val again.
			if sc.outStamp[dst[jm]^bit] != ep {
				panic("routing: missing output mate in Beneš recursion")
			}
			km := int(sc.outMate[dst[jm]^bit])
			idx, val = km, 1-sub[jm]
		}
	}
	// First stage: move to the assigned subnetwork row. Last stage: from the
	// mirrored row to the destination. Subproblem triples are carved from the
	// per-depth arena at this subproblem's row offset.
	half := m / 2
	ai := (b + 1) * 3 * sc.rows
	ac := ai + sc.rows
	ad := ai + 2*sc.rows
	upIDs := sc.arena[ai+off : ai+off : ai+off+half]
	loIDs := sc.arena[ai+off+half : ai+off+half : ai+off+m]
	upCur := sc.arena[ac+off : ac+off : ac+off+half]
	loCur := sc.arena[ac+off+half : ac+off+half : ac+off+m]
	upDst := sc.arena[ad+off : ad+off : ad+off+half]
	loDst := sc.arena[ad+off+half : ad+off+half : ad+off+m]
	for idx, p := range ids {
		inRow := setBit(cur[idx], bit, int(sub[idx]))
		outRow := setBit(dst[idx], bit, int(sub[idx]))
		paths[p][lo+1] = inRow
		paths[p][hi] = dst[idx]
		paths[p][hi-1] = outRow
		if sub[idx] == 0 {
			upIDs = append(upIDs, p)
			upCur = append(upCur, inRow)
			upDst = append(upDst, outRow)
		} else {
			loIDs = append(loIDs, p)
			loCur = append(loCur, inRow)
			loDst = append(loDst, outRow)
		}
	}
	if hi-1 > lo+1 {
		benesFill(paths, upIDs, upCur, upDst, lo+1, hi-1, b+1, d, sc, off)
		benesFill(paths, loIDs, loCur, loDst, lo+1, hi-1, b+1, d, sc, off+half)
	}
}

func setBit(x, bit, val int) int {
	if val == 0 {
		return x &^ bit
	}
	return x | bit
}

// VerifyBenesPaths checks that the path family is feasible: correct
// endpoints, single-bit transitions on the right stage bits, and vertex-
// disjointness (each (level, row) used by exactly one packet).
func VerifyBenesPaths(d int, perm []int, paths [][]int) error {
	rows := 1 << d
	levels := BenesLevels(d)
	if len(paths) != rows {
		return fmt.Errorf("routing: %d paths for %d rows", len(paths), rows)
	}
	// Occupancy as a flat (level, row) grid: endpoint and transition checks
	// above guarantee rows stay in [0, rows), so indexing is safe.
	occupied := make([]int, levels*rows)
	for i := range occupied {
		occupied[i] = -1
	}
	for i, path := range paths {
		if len(path) != levels {
			return fmt.Errorf("routing: path %d has %d levels, want %d", i, len(path), levels)
		}
		if path[0] != i {
			return fmt.Errorf("routing: path %d starts at row %d", i, path[0])
		}
		if path[levels-1] != perm[i] {
			return fmt.Errorf("routing: path %d ends at row %d, want %d", i, path[levels-1], perm[i])
		}
		for s := 0; s+1 < levels; s++ {
			diff := path[s] ^ path[s+1]
			bit := 1 << benesStageBit(d, s)
			if diff != 0 && diff != bit {
				return fmt.Errorf("routing: path %d level %d jumps %d→%d (stage bit %d)", i, s, path[s], path[s+1], bit)
			}
		}
		for l, r := range path {
			if prev := occupied[l*rows+r]; prev >= 0 {
				return fmt.Errorf("routing: packets %d and %d collide at level %d row %d", prev, i, l, r)
			}
			occupied[l*rows+r] = i
		}
	}
	return nil
}

// OfflinePermutationSteps routes a permutation through the Beneš network and
// returns the number of steps (one level per step): exactly 2d−1. This is
// the offline O(log m) routing of §2 made concrete; an error means the
// permutation was invalid.
func OfflinePermutationSteps(d int, perm []int) (int, error) {
	paths, err := BenesPaths(d, perm)
	if err != nil {
		return 0, err
	}
	if err := VerifyBenesPaths(d, perm, paths); err != nil {
		return 0, err
	}
	return BenesLevels(d) - 1, nil
}

// OfflineScheduleHH decomposes an h–h problem on the 2^d rows into rounds of
// (partial) permutations and routes each round through the Beneš network,
// returning the total step count: rounds · (2d−1). The decomposition is the
// König edge-coloring of §2 ("O(n/m) permutations that depend on G only").
func OfflineScheduleHH(d int, p *Problem) (steps int, rounds int, err error) {
	rows := 1 << d
	if p.N != rows {
		return 0, 0, fmt.Errorf("routing: problem on %d nodes, Beneš has %d rows", p.N, rows)
	}
	perms, err := DecomposeHRelation(p.N, p.Pairs)
	if err != nil {
		return 0, 0, err
	}
	per := BenesLevels(d) - 1
	for _, round := range perms {
		full := completePermutation(p.N, round)
		if _, err := OfflinePermutationSteps(d, full); err != nil {
			return 0, 0, err
		}
		steps += per
	}
	return steps, len(perms), nil
}

// completePermutation extends a partial permutation (distinct sources,
// distinct destinations) to a full permutation of [n] by matching the unused
// sources to the unused destinations in order.
func completePermutation(n int, pairs []Pair) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = -1
	}
	usedDst := make([]bool, n)
	for _, pr := range pairs {
		perm[pr.Src] = pr.Dst
		usedDst[pr.Dst] = true
	}
	free := make([]int, 0)
	for dm := 0; dm < n; dm++ {
		if !usedDst[dm] {
			free = append(free, dm)
		}
	}
	fi := 0
	for s := 0; s < n; s++ {
		if perm[s] < 0 {
			perm[s] = free[fi]
			fi++
		}
	}
	return perm
}
