package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

func TestProblemH(t *testing.T) {
	p, err := NewProblem(4, []Pair{{0, 1}, {0, 2}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.H() != 2 {
		t.Errorf("H = %d, want 2", p.H())
	}
	if p.IsPermutation() {
		t.Error("non-permutation classified as permutation")
	}
	if _, err := NewProblem(2, []Pair{{0, 5}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomPermutation(rng, 16)
	if !p.IsPermutation() || len(p.Pairs) != 16 {
		t.Error("RandomPermutation not a permutation")
	}
	hh := RandomHH(rng, 10, 3)
	if hh.H() != 3 || len(hh.Pairs) != 30 {
		t.Errorf("RandomHH: h=%d pairs=%d", hh.H(), len(hh.Pairs))
	}
	tr := Transpose(4)
	if !tr.IsPermutation() {
		t.Error("transpose not a permutation")
	}
	// (1,2) → (2,1): src 1*4+2=6 → dst 2*4+1=9.
	found := false
	for _, pr := range tr.Pairs {
		if pr.Src == 6 && pr.Dst == 9 {
			found = true
		}
	}
	if !found {
		t.Error("transpose pair (6→9) missing")
	}
	br := BitReversal(3)
	if !br.IsPermutation() {
		t.Error("bit reversal not a permutation")
	}
	for _, pr := range br.Pairs {
		if pr.Src == 1 && pr.Dst != 4 {
			t.Errorf("rev(001) = %d, want 100", pr.Dst)
		}
	}
}

func TestGreedyRouterRing(t *testing.T) {
	g, err := topology.Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPermutation(rand.New(rand.NewSource(2)), 16)
	r := &GreedyRouter{Mode: MultiPort}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 16 {
		t.Errorf("delivered %d/16", res.Delivered)
	}
	if res.Steps < 1 || res.Steps > 200 {
		t.Errorf("steps = %d out of plausible range", res.Steps)
	}
}

func TestGreedyRouterSinglePortSlower(t *testing.T) {
	g, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomHH(rand.New(rand.NewSource(3)), 64, 4)
	multi, err := (&GreedyRouter{Mode: MultiPort}).Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&GreedyRouter{Mode: SinglePort}).Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if single.Steps < multi.Steps {
		t.Errorf("single-port %d steps faster than multi-port %d", single.Steps, multi.Steps)
	}
	if multi.Delivered != 256 || single.Delivered != 256 {
		t.Error("not all packets delivered")
	}
}

func TestGreedyRouterSelfPairs(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem(8, []Pair{{3, 3}, {0, 1}})
	res, err := (&GreedyRouter{}).Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("delivered %d, want 2", res.Delivered)
	}
	if res.Steps != 1 {
		t.Errorf("steps %d, want 1", res.Steps)
	}
}

func TestGreedyRouterUnreachable(t *testing.T) {
	// Two disjoint edges: 0-1 and 2-3.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	disc := b.Build()
	p, _ := NewProblem(4, []Pair{{0, 3}})
	if _, err := (&GreedyRouter{}).Route(disc, p); err == nil {
		t.Error("unreachable destination accepted")
	}
}

func TestGreedyRouterSizeMismatch(t *testing.T) {
	g, _ := topology.Ring(8)
	p, _ := NewProblem(4, []Pair{{0, 1}})
	if _, err := (&GreedyRouter{}).Route(g, p); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestValiantRouter(t *testing.T) {
	g, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	p := Transpose(8)
	r := &ValiantRouter{Mode: MultiPort, Seed: 7}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64 {
		t.Errorf("delivered %d/64", res.Delivered)
	}
	if len(res.StepsPerPhase) != 2 || res.StepsPerPhase[0]+res.StepsPerPhase[1] != res.Steps {
		t.Errorf("phase accounting wrong: %v vs %d", res.StepsPerPhase, res.Steps)
	}
}

func TestDimensionOrderRouterMesh(t *testing.T) {
	N := 8
	g, err := topology.Mesh(N * N)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPermutation(rand.New(rand.NewSource(4)), N*N)
	r := &DimensionOrderRouter{N: N, Wrap: false, Mode: MultiPort}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != N*N {
		t.Errorf("delivered %d", res.Delivered)
	}
	// X-Y routing on an N×N mesh finishes a permutation within O(N) steps;
	// allow generous constant.
	if res.Steps > 20*N {
		t.Errorf("steps = %d too large", res.Steps)
	}
}

func TestDimensionOrderRouterTorusWrap(t *testing.T) {
	N := 6
	g, err := topology.Torus(N * N)
	if err != nil {
		t.Fatal(err)
	}
	// Single packet that should take the wrap path: (0,0) → (0,5) is 1 hop.
	p, _ := NewProblem(N*N, []Pair{{0, 5}})
	r := &DimensionOrderRouter{N: N, Wrap: true, Mode: MultiPort}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || res.TotalHops != 1 {
		t.Errorf("wrap routing took %d steps, %d hops; want 1, 1", res.Steps, res.TotalHops)
	}
}

func TestDimensionOrderMismatch(t *testing.T) {
	g, _ := topology.Mesh(16)
	p, _ := NewProblem(16, nil)
	r := &DimensionOrderRouter{N: 5}
	if _, err := r.Route(g, p); err == nil {
		t.Error("mismatched N accepted")
	}
}

func TestMeasureRoute(t *testing.T) {
	g, err := topology.Torus(36)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureRoute(g, &GreedyRouter{Mode: MultiPort}, 2, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps <= 0 {
		t.Errorf("route_G(2) measured as %d", res.Steps)
	}
}

func TestBenesGraphStructure(t *testing.T) {
	d := 3
	g, err := BenesGraph(d)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != BenesLevels(d)*(1<<d) {
		t.Errorf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Error("Beneš graph disconnected")
	}
	if _, err := BenesGraph(0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestBenesStageBits(t *testing.T) {
	d := 4
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for s, w := range want {
		if got := benesStageBit(d, s); got != w {
			t.Errorf("stage %d bit %d, want %d", s, got, w)
		}
	}
}

func TestBenesPathsIdentity(t *testing.T) {
	d := 3
	n := 1 << d
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	paths, err := BenesPaths(d, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBenesPaths(d, perm, paths); err != nil {
		t.Error(err)
	}
}

func TestBenesPathsReversal(t *testing.T) {
	d := 4
	n := 1 << d
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	paths, err := BenesPaths(d, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBenesPaths(d, perm, paths); err != nil {
		t.Error(err)
	}
}

func TestBenesPathsRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 2, 3, 4, 5, 6} {
		n := 1 << d
		for trial := 0; trial < 10; trial++ {
			perm := rng.Perm(n)
			paths, err := BenesPaths(d, perm)
			if err != nil {
				t.Fatalf("d=%d: %v", d, err)
			}
			if err := VerifyBenesPaths(d, perm, paths); err != nil {
				t.Fatalf("d=%d trial %d: %v", d, trial, err)
			}
		}
	}
}

func TestBenesPathsRejectsBadPerm(t *testing.T) {
	if _, err := BenesPaths(2, []int{0, 0, 1, 2}); err == nil {
		t.Error("repeated value accepted")
	}
	if _, err := BenesPaths(2, []int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := BenesPaths(2, []int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestOfflinePermutationSteps(t *testing.T) {
	d := 5
	perm := rand.New(rand.NewSource(6)).Perm(1 << d)
	steps, err := OfflinePermutationSteps(d, perm)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 2*d-1 {
		t.Errorf("steps = %d, want %d", steps, 2*d-1)
	}
}

func TestDecomposeHRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, h int }{{8, 1}, {8, 2}, {16, 3}, {32, 5}} {
		p := RandomHH(rng, tc.n, tc.h)
		rounds, err := DecomposeHRelation(tc.n, p.Pairs)
		if err != nil {
			t.Fatalf("n=%d h=%d: %v", tc.n, tc.h, err)
		}
		if len(rounds) > tc.h {
			t.Errorf("n=%d h=%d: %d rounds > h", tc.n, tc.h, len(rounds))
		}
		if err := VerifyRounds(p.Pairs, rounds); err != nil {
			t.Errorf("n=%d h=%d: %v", tc.n, tc.h, err)
		}
	}
}

func TestDecomposeIrregular(t *testing.T) {
	// Unbalanced demands: node 0 sends 3, others few.
	pairs := []Pair{{0, 1}, {0, 2}, {0, 3}, {1, 1}, {2, 3}}
	rounds, err := DecomposeHRelation(5, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) > 3 {
		t.Errorf("%d rounds > h=3", len(rounds))
	}
	if err := VerifyRounds(pairs, rounds); err != nil {
		t.Error(err)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	rounds, err := DecomposeHRelation(4, nil)
	if err != nil || rounds != nil {
		t.Errorf("empty decomposition: %v, %v", rounds, err)
	}
}

func TestDecomposeDuplicatePairs(t *testing.T) {
	pairs := []Pair{{1, 2}, {1, 2}}
	rounds, err := DecomposeHRelation(4, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRounds(pairs, rounds); err != nil {
		t.Error(err)
	}
	if len(rounds) != 2 {
		t.Errorf("duplicate pair needs 2 rounds, got %d", len(rounds))
	}
}

func TestDecomposeRejectsOutOfRange(t *testing.T) {
	if _, err := DecomposeHRelation(2, []Pair{{0, 7}}); err == nil {
		t.Error("bad pair accepted")
	}
}

func TestOfflineScheduleHH(t *testing.T) {
	d := 4
	n := 1 << d
	p := RandomHH(rand.New(rand.NewSource(8)), n, 3)
	steps, rounds, err := OfflineScheduleHH(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if rounds > 3 {
		t.Errorf("rounds = %d > h", rounds)
	}
	if steps != rounds*(2*d-1) {
		t.Errorf("steps = %d, want rounds·(2d−1) = %d", steps, rounds*(2*d-1))
	}
	bad := &Problem{N: 5, Pairs: nil}
	if _, _, err := OfflineScheduleHH(d, bad); err == nil {
		t.Error("wrong-size problem accepted")
	}
}

func TestCompletePermutation(t *testing.T) {
	perm := completePermutation(5, []Pair{{1, 3}, {4, 0}})
	if err := checkPermutation(perm); err != nil {
		t.Fatalf("not a permutation: %v (%v)", err, perm)
	}
	if perm[1] != 3 || perm[4] != 0 {
		t.Errorf("given pairs not preserved: %v", perm)
	}
}

func TestPropertyDecomposeAlwaysPermutationRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		k := r.Intn(4 * n)
		pairs := make([]Pair, k)
		for i := range pairs {
			pairs[i] = Pair{Src: r.Intn(n), Dst: r.Intn(n)}
		}
		rounds, err := DecomposeHRelation(n, pairs)
		if err != nil {
			return false
		}
		return VerifyRounds(pairs, rounds) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGreedyDeliversOnTorus(t *testing.T) {
	g, err := topology.Torus(49)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := RandomHH(r, 49, 1+r.Intn(3))
		res, err := (&GreedyRouter{Mode: MultiPort, Seed: seed}).Route(g, p)
		return err == nil && res.Delivered == len(p.Pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCachedRouter(t *testing.T) {
	g, err := topology.Torus(36)
	if err != nil {
		t.Fatal(err)
	}
	inner := &countingRouter{inner: &GreedyRouter{Mode: MultiPort}}
	r := &CachedRouter{Inner: inner}
	p := RandomPermutation(rand.New(rand.NewSource(9)), 36)
	res1, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Errorf("inner called %d times, want 1", inner.calls)
	}
	if res1.Steps != res2.Steps {
		t.Error("cached result differs")
	}
	// A different problem misses the cache.
	p2 := RandomPermutation(rand.New(rand.NewSource(10)), 36)
	if _, err := r.Route(g, p2); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Errorf("inner called %d times, want 2", inner.calls)
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

type countingRouter struct {
	inner Router
	calls int
}

func (c *countingRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	c.calls++
	return c.inner.Route(g, p)
}
func (c *countingRouter) Name() string { return "counting" }

func TestRouterNames(t *testing.T) {
	names := []string{
		(&GreedyRouter{Mode: MultiPort}).Name(),
		(&GreedyRouter{Mode: SinglePort}).Name(),
		(&ValiantRouter{}).Name(),
		(&DimensionOrderRouter{N: 4}).Name(),
		(&DimensionOrderRouter{N: 4, Wrap: true}).Name(),
		(&DeflectionRouter{}).Name(),
		(&SortingRouter{}).Name(),
		(&CachedRouter{Inner: &GreedyRouter{}}).Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Error("empty router name")
		}
		seen[n] = true
	}
	if len(seen) < 7 {
		t.Errorf("router names not distinctive: %v", names)
	}
	if PortMode(9).String() == "" {
		t.Error("unknown port mode empty")
	}
}
