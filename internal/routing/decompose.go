package routing

import "fmt"

// DecomposeHRelation splits an h–h routing problem into at most h rounds,
// each a partial permutation (every node sends ≤ 1 and receives ≤ 1 packet).
// This is the König edge-coloring step behind §2: the demands form a
// bipartite multigraph of maximum degree h, which is h-edge-colorable; a
// color class is a (partial) permutation. The proof pads the multigraph to
// h-regularity with dummy edges and repeatedly extracts perfect matchings;
// dummies are dropped from the returned rounds.
func DecomposeHRelation(n int, pairs []Pair) ([][]Pair, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	degS := make([]int, n)
	degD := make([]int, n)
	for _, p := range pairs {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			return nil, fmt.Errorf("routing: pair %v out of range [0,%d)", p, n)
		}
		degS[p.Src]++
		degD[p.Dst]++
	}
	h := 0
	for v := 0; v < n; v++ {
		if degS[v] > h {
			h = degS[v]
		}
		if degD[v] > h {
			h = degD[v]
		}
	}

	edges := make([]relEdge, 0, len(pairs)+n)
	for _, p := range pairs {
		edges = append(edges, relEdge{src: p.Src, dst: p.Dst, real: true})
	}
	// Pad to exact h-regularity with dummy edges: both sides have the same
	// total deficit, so a greedy two-pointer pairing suffices.
	si, di := 0, 0
	for {
		for si < n && degS[si] == h {
			si++
		}
		for di < n && degD[di] == h {
			di++
		}
		if si == n || di == n {
			break
		}
		edges = append(edges, relEdge{src: si, dst: di})
		degS[si]++
		degD[di]++
	}
	for v := 0; v < n; v++ {
		if degS[v] != h || degD[v] != h {
			return nil, fmt.Errorf("routing: padding failed at node %d (degS=%d degD=%d h=%d)", v, degS[v], degD[v], h)
		}
	}

	// Adjacency: src → incident edge indices, built once in CSR form (edge-
	// index order per source, so candidate order matches a per-round rebuild);
	// used edges are skipped at traversal time instead of being filtered out.
	adjOff := make([]int, n+1)
	for i := range edges {
		adjOff[edges[i].src+1]++
	}
	for v := 0; v < n; v++ {
		adjOff[v+1] += adjOff[v]
	}
	adjList := make([]int32, len(edges))
	fill := make([]int, n)
	copy(fill, adjOff[:n])
	for i := range edges {
		s := edges[i].src
		adjList[fill[s]] = int32(i)
		fill[s]++
	}

	var rounds [][]Pair
	matchDst := make([]int, n) // dst → edge index, or -1
	visited := make([]bool, n)
	var try func(s int) bool
	try = func(s int) bool {
		for _, ei32 := range adjList[adjOff[s]:adjOff[s+1]] {
			ei := int(ei32)
			if edges[ei].used {
				continue
			}
			d := edges[ei].dst
			if visited[d] {
				continue
			}
			visited[d] = true
			if matchDst[d] < 0 || try(edges[matchDst[d]].src) {
				matchDst[d] = ei
				return true
			}
		}
		return false
	}
	for round := 0; round < h; round++ {
		// Kuhn's augmenting-path perfect matching: match every source.
		for i := range matchDst {
			matchDst[i] = -1
		}
		for s := 0; s < n; s++ {
			for i := range visited {
				visited[i] = false
			}
			// A source may appear several times if it was matched through an
			// earlier augmentation; match each source exactly once per round.
			if !isMatchedSrc(edges, matchDst, s) && !try(s) {
				return nil, fmt.Errorf("routing: no perfect matching in round %d (regularity violated)", round)
			}
		}
		var roundPairs []Pair
		for d := 0; d < n; d++ {
			ei := matchDst[d]
			if ei < 0 {
				return nil, fmt.Errorf("routing: destination %d unmatched in round %d", d, round)
			}
			edges[ei].used = true
			if edges[ei].real {
				roundPairs = append(roundPairs, Pair{Src: edges[ei].src, Dst: edges[ei].dst})
			}
		}
		if len(roundPairs) > 0 {
			rounds = append(rounds, roundPairs)
		}
	}
	for i := range edges {
		if !edges[i].used {
			return nil, fmt.Errorf("routing: edge %d left uncolored", i)
		}
	}
	return rounds, nil
}

// relEdge is one (possibly dummy) edge of the padded demand multigraph.
type relEdge struct {
	src, dst int
	real     bool
	used     bool
}

func isMatchedSrc(edges []relEdge, matchDst []int, s int) bool {
	for _, ei := range matchDst {
		if ei >= 0 && edges[ei].src == s {
			return true
		}
	}
	return false
}

// VerifyRounds checks that the rounds cover exactly the multiset of real
// pairs and that each round is a partial permutation.
func VerifyRounds(pairs []Pair, rounds [][]Pair) error {
	count := make(map[Pair]int)
	for _, p := range pairs {
		count[p]++
	}
	for ri, round := range rounds {
		srcSeen := make(map[int]bool)
		dstSeen := make(map[int]bool)
		for _, p := range round {
			if srcSeen[p.Src] {
				return fmt.Errorf("routing: round %d repeats source %d", ri, p.Src)
			}
			if dstSeen[p.Dst] {
				return fmt.Errorf("routing: round %d repeats destination %d", ri, p.Dst)
			}
			srcSeen[p.Src] = true
			dstSeen[p.Dst] = true
			count[p]--
			if count[p] < 0 {
				return fmt.Errorf("routing: pair %v over-covered", p)
			}
		}
	}
	for p, c := range count {
		if c != 0 {
			return fmt.Errorf("routing: pair %v covered %d times too few", p, c)
		}
	}
	return nil
}
