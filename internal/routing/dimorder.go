package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

// DimensionOrderRouter routes on an N×N mesh or torus by first correcting
// the row coordinate, then the column coordinate (X–Y routing). On a torus
// it takes the shorter wrap direction per dimension. Deadlock-free and
// oblivious; the classic baseline for mesh-connected hosts.
type DimensionOrderRouter struct {
	N       int  // side length
	Wrap    bool // true for torus wraparound
	Mode    PortMode
	MaxStep int
}

// Name implements Router.
func (r *DimensionOrderRouter) Name() string {
	kind := "mesh"
	if r.Wrap {
		kind = "torus"
	}
	return fmt.Sprintf("dimorder(%s,%s)", kind, r.Mode)
}

// step direction along one axis toward target, respecting wrap.
func (r *DimensionOrderRouter) axisStep(cur, tgt int) int {
	if cur == tgt {
		return 0
	}
	if !r.Wrap {
		if tgt > cur {
			return 1
		}
		return -1
	}
	fwd := (tgt - cur + r.N) % r.N
	bwd := (cur - tgt + r.N) % r.N
	if fwd <= bwd {
		return 1
	}
	return -1
}

// nextHop returns the next node for a packet at `at` heading to `dst`.
func (r *DimensionOrderRouter) nextHop(at, dst int) int {
	ax, ay := topology.MeshCoord(r.N, at)
	dx, dy := topology.MeshCoord(r.N, dst)
	if s := r.axisStep(ax, dx); s != 0 {
		nx := ax + s
		if r.Wrap {
			nx = (nx + r.N) % r.N
		}
		return topology.MeshIndex(r.N, nx, ay)
	}
	if s := r.axisStep(ay, dy); s != 0 {
		ny := ay + s
		if r.Wrap {
			ny = (ny + r.N) % r.N
		}
		return topology.MeshIndex(r.N, ax, ny)
	}
	return at
}

// Route implements Router. The graph must contain the mesh/torus edges the
// router assumes (extra edges are ignored).
func (r *DimensionOrderRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	if r.N*r.N != p.N || g.N() != p.N {
		return Result{}, fmt.Errorf("routing: dimension-order needs N²=%d nodes, graph %d, problem %d", r.N*r.N, g.N(), p.N)
	}
	var live []*packet
	res := Result{}
	remaining := func(pk *packet) int {
		ax, ay := topology.MeshCoord(r.N, pk.at)
		dx, dy := topology.MeshCoord(r.N, pk.dst)
		if r.Wrap {
			return topology.TorusDistance(r.N, ax, ay, dx, dy)
		}
		d := ax - dx
		if d < 0 {
			d = -d
		}
		e := ay - dy
		if e < 0 {
			e = -e
		}
		return d + e
	}
	for i, pr := range p.Pairs {
		if pr.Src == pr.Dst {
			res.Delivered++
			continue
		}
		live = append(live, &packet{id: i, at: pr.Src, dst: pr.Dst})
	}
	maxStep := r.MaxStep
	if maxStep == 0 {
		maxStep = 64 * (2*r.N + 1) * (p.H() + 1)
	}
	queues := make(map[int]int)
	for step := 0; len(live) > 0; step++ {
		if step >= maxStep {
			return res, fmt.Errorf("routing: step bound %d exceeded, %d packets left", maxStep, len(live))
		}
		type key struct{ u, v int }
		cand := make(map[key]*packet)
		for _, pk := range live {
			v := r.nextHop(pk.at, pk.dst)
			if v == pk.at {
				return res, fmt.Errorf("routing: stuck packet %d at %d", pk.id, pk.at)
			}
			if !g.HasEdge(pk.at, v) {
				return res, fmt.Errorf("routing: graph missing mesh edge {%d,%d}", pk.at, v)
			}
			k := key{pk.at, v}
			if cur, ok := cand[k]; !ok || remaining(pk) > remaining(cur) ||
				(remaining(pk) == remaining(cur) && pk.id < cur.id) {
				cand[k] = pk
			}
		}
		keys := make([]key, 0, len(cand))
		for k := range cand {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].u != keys[j].u {
				return keys[i].u < keys[j].u
			}
			return keys[i].v < keys[j].v
		})
		sendUsed := make(map[int]bool)
		recvUsed := make(map[int]bool)
		for _, k := range keys {
			pk := cand[k]
			if r.Mode == SinglePort {
				if sendUsed[k.u] || recvUsed[k.v] {
					continue
				}
				sendUsed[k.u] = true
				recvUsed[k.v] = true
			}
			pk.at = k.v
			pk.hops++
		}
		var next []*packet
		clearMap(queues)
		for _, pk := range live {
			if pk.at == pk.dst {
				res.Delivered++
				res.TotalHops += pk.hops
				continue
			}
			queues[pk.at]++
			next = append(next, pk)
		}
		for _, q := range queues {
			if q > res.MaxQueue {
				res.MaxQueue = q
			}
		}
		live = next
		res.Steps = step + 1
	}
	return res, nil
}

// MeasureRoute estimates route_G(h) of §2: the number of steps the given
// router needs on random h–h problems, maximized over `trials` independent
// instances. Deterministic given the seed.
func MeasureRoute(g *graph.Graph, r Router, h, trials int, seed int64) (worst Result, err error) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		p := RandomHH(rng, g.N(), h)
		res, rerr := r.Route(g, p)
		if rerr != nil {
			return worst, rerr
		}
		if res.Steps > worst.Steps {
			worst = res
		}
	}
	return worst, nil
}
