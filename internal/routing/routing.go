// Package routing implements the store-and-forward packet-routing substrate
// behind Theorem 2.1: h–h routing problems, online greedy and Valiant
// routers for arbitrary topologies, dimension-order routing for meshes and
// tori, offline Beneš/Waksman permutation routing (the O(log m) off-line
// routing of reference [19]), and the decomposition of h–h relations into
// permutations (the "O(n/m) permutations known in advance" step of §2).
//
// The synchronous model: in each step, each directed link may carry one
// packet (multi-port), or — matching the paper's single-port processors —
// each node may send at most one packet and receive at most one packet.
package routing

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"universalnet/internal/cache"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// Pair is one packet demand: route one packet from Src to Dst.
type Pair struct {
	Src, Dst int
}

// Problem is a multiset of packet demands on a graph of n vertices.
type Problem struct {
	N     int
	Pairs []Pair
}

// NewProblem validates vertex ranges and returns a Problem.
func NewProblem(n int, pairs []Pair) (*Problem, error) {
	for _, p := range pairs {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			return nil, fmt.Errorf("routing: pair %v out of range [0,%d)", p, n)
		}
	}
	return &Problem{N: n, Pairs: append([]Pair(nil), pairs...)}, nil
}

// H returns the h of the h–h problem: the largest number of packets any
// single node must send or receive.
func (p *Problem) H() int {
	src := make(map[int]int)
	dst := make(map[int]int)
	h := 0
	for _, pr := range p.Pairs {
		src[pr.Src]++
		dst[pr.Dst]++
		if src[pr.Src] > h {
			h = src[pr.Src]
		}
		if dst[pr.Dst] > h {
			h = dst[pr.Dst]
		}
	}
	return h
}

// IsPermutation reports whether the problem is a (partial) permutation:
// every source and every destination occurs at most once.
func (p *Problem) IsPermutation() bool { return p.H() <= 1 }

// RandomPermutation returns a full random permutation routing problem.
func RandomPermutation(rng *rand.Rand, n int) *Problem {
	perm := rng.Perm(n)
	pairs := make([]Pair, n)
	for i, d := range perm {
		pairs[i] = Pair{Src: i, Dst: d}
	}
	return &Problem{N: n, Pairs: pairs}
}

// RandomHH returns a random h–h problem: each node sends exactly h packets,
// and destinations are arranged so each node receives exactly h (h random
// permutations superimposed).
func RandomHH(rng *rand.Rand, n, h int) *Problem {
	pairs := make([]Pair, 0, n*h)
	for i := 0; i < h; i++ {
		perm := rng.Perm(n)
		for s, d := range perm {
			pairs = append(pairs, Pair{Src: s, Dst: d})
		}
	}
	return &Problem{N: n, Pairs: pairs}
}

// Transpose returns the transpose permutation on an N×N mesh indexed
// row-major: (x, y) → (y, x). A classic hard instance for greedy routing.
func Transpose(N int) *Problem {
	n := N * N
	pairs := make([]Pair, 0, n)
	for x := 0; x < N; x++ {
		for y := 0; y < N; y++ {
			pairs = append(pairs, Pair{Src: x*N + y, Dst: y*N + x})
		}
	}
	return &Problem{N: n, Pairs: pairs}
}

// BitReversal returns the bit-reversal permutation on 2^d nodes.
func BitReversal(d int) *Problem {
	n := 1 << d
	rev := func(x int) int {
		r := 0
		for i := 0; i < d; i++ {
			if x&(1<<i) != 0 {
				r |= 1 << (d - 1 - i)
			}
		}
		return r
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{Src: i, Dst: rev(i)}
	}
	return &Problem{N: n, Pairs: pairs}
}

// PortMode selects the link model.
type PortMode int

const (
	// MultiPort allows one packet per directed edge per step.
	MultiPort PortMode = iota
	// SinglePort restricts each node to sending at most one packet and
	// receiving at most one packet per step — the paper's processor model.
	SinglePort
)

// String names the port mode for experiment output.
func (m PortMode) String() string {
	switch m {
	case MultiPort:
		return "multi-port"
	case SinglePort:
		return "single-port"
	}
	return fmt.Sprintf("PortMode(%d)", int(m))
}

// Result reports a completed routing run.
type Result struct {
	Steps         int   // steps until the last packet arrived
	Delivered     int   // number of packets delivered
	MaxQueue      int   // largest queue length observed at any node
	TotalHops     int   // sum over packets of hops taken
	StepsPerPhase []int // optional per-phase breakdown (Valiant, decomposed)
}

// Router routes a problem on a graph and reports the number of steps used.
type Router interface {
	// Route must deliver every packet or return an error.
	Route(g *graph.Graph, p *Problem) (Result, error)
	// Name identifies the strategy in experiment output.
	Name() string
}

// Instrumentable is implemented by routers that can report metrics to an
// obs.Registry. Simulators use it to thread their registry into whatever
// router a Host bundles, without knowing the concrete type.
type Instrumentable interface {
	SetObs(*obs.Registry)
}

// SetObs attaches reg to r when r supports instrumentation (and, for
// wrapping routers, recursively to the wrapped router). A nil reg detaches.
func SetObs(r Router, reg *obs.Registry) {
	if ins, ok := r.(Instrumentable); ok {
		ins.SetObs(reg)
	}
}

// observePhase records one completed routing phase: counters for phases,
// steps, hops and deliveries; a monotone max gauge plus a congestion
// histogram for queue occupancy — the per-phase queue statistics the
// Leighton-style routing analyses reason about. One call per Route, outside
// every loop; all values derive from the deterministic Result.
func observePhase(reg *obs.Registry, kind string, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("routing.phases").Inc()
	reg.Counter("routing.phases." + kind).Inc()
	reg.Counter("routing.steps").Add(int64(res.Steps))
	reg.Counter("routing.hops").Add(int64(res.TotalHops))
	reg.Counter("routing.delivered").Add(int64(res.Delivered))
	reg.Gauge("routing.max_queue").SetMax(int64(res.MaxQueue))
	reg.Histogram("routing.queue_per_phase", queueBuckets).Observe(int64(res.MaxQueue))
	reg.Histogram("routing.steps_per_phase", stepBuckets).Observe(int64(res.Steps))
}

// queueBuckets and stepBuckets are the fixed histogram bounds for phase
// congestion and phase length. Powers of two: the quantities of interest
// scale with log m.
var (
	queueBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}
	stepBuckets  = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
)

// NextHopPolicy chooses, per packet, the neighbor to forward to. It is given
// the packet's current node and destination plus the precomputed distance
// vector to the destination, and must return a neighbor strictly closer to
// the destination.
type NextHopPolicy func(g *graph.Graph, at, dst int, distToDst []int, rng *rand.Rand) int

// MinIndexNextHop picks the smallest-index neighbor that makes progress.
func MinIndexNextHop(g *graph.Graph, at, dst int, distToDst []int, _ *rand.Rand) int {
	for _, w := range g.Neighbors(at) {
		if distToDst[w] == distToDst[at]-1 {
			return w
		}
	}
	return -1
}

// RandomNextHop picks a uniformly random neighbor that makes progress,
// breaking path symmetry (helps congestion on tori).
func RandomNextHop(g *graph.Graph, at, dst int, distToDst []int, rng *rand.Rand) int {
	var opts []int
	for _, w := range g.Neighbors(at) {
		if distToDst[w] == distToDst[at]-1 {
			opts = append(opts, w)
		}
	}
	if len(opts) == 0 {
		return -1
	}
	return opts[rng.Intn(len(opts))]
}

// distanceCache caches BFS distance vectors keyed by destination.
type distanceCache struct {
	g    *graph.Graph
	dist map[int][]int
}

func newDistanceCache(g *graph.Graph) *distanceCache {
	return &distanceCache{g: g, dist: make(map[int][]int)}
}

func (c *distanceCache) to(dst int) []int {
	if d, ok := c.dist[dst]; ok {
		return d
	}
	d := c.g.BFS(dst)
	c.dist[dst] = d
	return d
}

// packet is the in-flight representation.
type packet struct {
	id   int
	at   int
	dst  int
	hops int
}

// FarthestFirst orders packets for link arbitration: packets with more
// remaining distance win; ties break by id (deterministic).
func farthestFirst(cache *distanceCache) func(a, b *packet) bool {
	return func(a, b *packet) bool {
		da := cache.to(a.dst)[a.at]
		db := cache.to(b.dst)[b.at]
		if da != db {
			return da > db
		}
		return a.id < b.id
	}
}

// GreedyRouter forwards every packet along shortest paths, arbitrating link
// contention farthest-first. Works on any connected topology.
type GreedyRouter struct {
	Mode    PortMode
	Policy  NextHopPolicy // nil ⇒ MinIndexNextHop
	Seed    int64
	MaxStep int // safety bound; 0 ⇒ 64·(diameter+1)·(h+1) heuristic
	// Obs, when non-nil, receives per-phase routing metrics.
	Obs *obs.Registry
}

// Name implements Router.
func (r *GreedyRouter) Name() string {
	return fmt.Sprintf("greedy(%s)", r.Mode)
}

// SetObs implements Instrumentable.
func (r *GreedyRouter) SetObs(reg *obs.Registry) { r.Obs = reg }

// Route implements Router.
func (r *GreedyRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	if g.N() != p.N {
		return Result{}, fmt.Errorf("routing: graph has %d nodes, problem %d", g.N(), p.N)
	}
	policy := r.Policy
	if policy == nil {
		policy = MinIndexNextHop
	}
	rng := rand.New(rand.NewSource(r.Seed))
	cache := newDistanceCache(g)

	var live []*packet
	res := Result{}
	for i, pr := range p.Pairs {
		if pr.Src == pr.Dst {
			res.Delivered++
			continue
		}
		if cache.to(pr.Dst)[pr.Src] < 0 {
			return Result{}, fmt.Errorf("routing: destination %d unreachable from %d", pr.Dst, pr.Src)
		}
		live = append(live, &packet{id: i, at: pr.Src, dst: pr.Dst})
	}
	maxStep := r.MaxStep
	if maxStep == 0 {
		diam := 1
		for _, pk := range live {
			if d := cache.to(pk.dst)[pk.at]; d > diam {
				diam = d
			}
		}
		maxStep = 64 * (diam + 1) * (p.H() + 1)
		if maxStep < 1024 {
			maxStep = 1024
		}
	}
	less := farthestFirst(cache)

	queues := make(map[int]int) // node → queued packet count, for stats
	for step := 0; len(live) > 0; step++ {
		if step >= maxStep {
			return res, fmt.Errorf("routing: step bound %d exceeded with %d packets undelivered", maxStep, len(live))
		}
		// Candidate moves: (u→v) grouped; one winner per directed edge.
		type key struct{ u, v int }
		cand := make(map[key]*packet)
		for _, pk := range live {
			v := policy(g, pk.at, pk.dst, cache.to(pk.dst), rng)
			if v < 0 {
				return res, fmt.Errorf("routing: policy returned no progress from %d toward %d", pk.at, pk.dst)
			}
			k := key{pk.at, v}
			if cur, ok := cand[k]; !ok || less(pk, cur) {
				cand[k] = pk
			}
		}
		// Deterministic iteration order over winners.
		keys := make([]key, 0, len(cand))
		for k := range cand {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].u != keys[j].u {
				return keys[i].u < keys[j].u
			}
			return keys[i].v < keys[j].v
		})
		sendUsed := make(map[int]bool)
		recvUsed := make(map[int]bool)
		moved := make(map[int]bool)
		for _, k := range keys {
			pk := cand[k]
			if r.Mode == SinglePort {
				if sendUsed[k.u] || recvUsed[k.v] {
					continue
				}
				sendUsed[k.u] = true
				recvUsed[k.v] = true
			}
			pk.at = k.v
			pk.hops++
			moved[pk.id] = true
		}
		// Deliveries and stats.
		var next []*packet
		clearMap(queues)
		for _, pk := range live {
			if pk.at == pk.dst {
				res.Delivered++
				res.TotalHops += pk.hops
				continue
			}
			queues[pk.at]++
			next = append(next, pk)
		}
		for _, q := range queues {
			if q > res.MaxQueue {
				res.MaxQueue = q
			}
		}
		live = next
		res.Steps = step + 1
	}
	observePhase(r.Obs, "greedy", &res)
	return res, nil
}

func clearMap(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// ValiantRouter routes in two phases: every packet first goes to a uniformly
// random intermediate node, then to its true destination (Valiant's trick),
// each phase with the greedy router. Defeats adversarial permutations.
type ValiantRouter struct {
	Mode PortMode
	Seed int64
	// Obs, when non-nil, receives per-phase routing metrics (the two
	// Valiant phases report through the greedy sub-router).
	Obs *obs.Registry
}

// Name implements Router.
func (r *ValiantRouter) Name() string { return fmt.Sprintf("valiant(%s)", r.Mode) }

// SetObs implements Instrumentable.
func (r *ValiantRouter) SetObs(reg *obs.Registry) { r.Obs = reg }

// Route implements Router.
func (r *ValiantRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	inter := make([]int, len(p.Pairs))
	phase1 := make([]Pair, len(p.Pairs))
	phase2 := make([]Pair, len(p.Pairs))
	for i, pr := range p.Pairs {
		inter[i] = rng.Intn(p.N)
		phase1[i] = Pair{Src: pr.Src, Dst: inter[i]}
		phase2[i] = Pair{Src: inter[i], Dst: pr.Dst}
	}
	sub := &GreedyRouter{Mode: r.Mode, Policy: RandomNextHop, Seed: r.Seed + 1, Obs: r.Obs}
	res1, err := sub.Route(g, &Problem{N: p.N, Pairs: phase1})
	if err != nil {
		return Result{}, fmt.Errorf("routing: valiant phase 1: %w", err)
	}
	sub.Seed = r.Seed + 2
	res2, err := sub.Route(g, &Problem{N: p.N, Pairs: phase2})
	if err != nil {
		return Result{}, fmt.Errorf("routing: valiant phase 2: %w", err)
	}
	out := Result{
		Steps:         res1.Steps + res2.Steps,
		Delivered:     res2.Delivered,
		TotalHops:     res1.TotalHops + res2.TotalHops,
		StepsPerPhase: []int{res1.Steps, res2.Steps},
	}
	if res1.MaxQueue > res2.MaxQueue {
		out.MaxQueue = res1.MaxQueue
	} else {
		out.MaxQueue = res2.MaxQueue
	}
	return out, nil
}

// CachedRouter memoizes results per problem: the §2 observation that a
// bounded-degree guest's per-step relations "depend on G only, and,
// therefore, are known in advance" — the schedule is computed once and its
// cost replayed on repeats. Wrap any deterministic Router; problems are
// keyed by graph hash plus their full pair multiset.
//
// The memo is a shared internal/cache LRU (byte-budgeted, singleflight),
// so concurrent Route calls for the same problem compute once, and a
// long-lived router cannot grow without bound. Leave Cache nil for a
// private cache with DefaultScheduleBudget, or inject a shared one (e.g. a
// service-wide schedule cache) to amortize across simulators.
type CachedRouter struct {
	Inner Router
	// Cache holds the memoized schedules. Nil ⇒ a private cache is created
	// on first use.
	Cache *cache.Cache[string, Result]
	// Obs, when non-nil, counts schedule-cache hits/misses/evictions (as
	// routing.cache.*) via the cache's own instrumentation.
	Obs *obs.Registry

	once sync.Once
}

// DefaultScheduleBudget bounds a private schedule cache: enough for every
// experiment in the suite (schedules are ~100 bytes) while capping a
// long-running server's memory.
const DefaultScheduleBudget = 1 << 22

// ScheduleSize estimates the bytes a memoized Result occupies, for cache
// budgets.
func ScheduleSize(res Result) int64 {
	return int64(8*5 + 16 + 8*len(res.StepsPerPhase))
}

// NewScheduleCache builds a cache suitable for CachedRouter.Cache, named
// routing.cache so its obs counters keep the established metric names.
func NewScheduleCache(budget int64, reg *obs.Registry) *cache.Cache[string, Result] {
	return cache.New[string, Result]("routing.cache", budget, ScheduleSize, reg)
}

// Name implements Router.
func (r *CachedRouter) Name() string { return "cached(" + r.Inner.Name() + ")" }

// init ensures a cache exists and carries the router's registry.
func (r *CachedRouter) init() {
	r.once.Do(func() {
		if r.Cache == nil {
			r.Cache = NewScheduleCache(DefaultScheduleBudget, r.Obs)
		} else if r.Obs != nil {
			r.Cache.SetObs(r.Obs)
		}
	})
}

// SetObs implements Instrumentable, threading reg through to the schedule
// cache and the inner router as well.
func (r *CachedRouter) SetObs(reg *obs.Registry) {
	r.Obs = reg
	r.init()
	r.Cache.SetObs(reg)
	SetObs(r.Inner, reg)
}

// Route implements Router.
func (r *CachedRouter) Route(g *graph.Graph, p *Problem) (Result, error) {
	r.init()
	return r.Cache.GetOrCompute(problemKey(g, p), func() (Result, error) {
		return r.Inner.Route(g, p)
	})
}

// problemKey folds the graph identity and the sorted pair multiset into a
// string key.
func problemKey(g *graph.Graph, p *Problem) string {
	pairs := append([]Pair(nil), p.Pairs...)
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].Src != pairs[b].Src {
			return pairs[a].Src < pairs[b].Src
		}
		return pairs[a].Dst < pairs[b].Dst
	})
	var b []byte
	b = appendUvarint(b, uint64(g.Hash()))
	b = appendUvarint(b, uint64(p.N))
	for _, pr := range pairs {
		b = appendUvarint(b, uint64(pr.Src))
		b = appendUvarint(b, uint64(pr.Dst))
	}
	return string(b)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
