package routing

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"universalnet/internal/topology"
)

func TestOddEvenTranspositionSorts(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 12} {
		s := OddEvenTransposition(n)
		if err := s.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ok, err := s.Sorts()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("odd-even transposition fails for n=%d", n)
		}
		if s.Depth() != n {
			t.Errorf("depth %d, want %d", s.Depth(), n)
		}
	}
}

func TestBitonicSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		s, err := Bitonic(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ok, err := s.Sorts()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("bitonic fails for n=%d", n)
		}
		// Depth = log n (log n + 1)/2.
		k := topology.Log2(n)
		if want := k * (k + 1) / 2; s.Depth() != want {
			t.Errorf("n=%d depth %d, want %d", n, s.Depth(), want)
		}
	}
	if _, err := Bitonic(6); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestOddEvenMergeSorts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		s, err := OddEvenMerge(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ok, err := s.Sorts()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("odd-even merge fails for n=%d", n)
		}
	}
	if _, err := OddEvenMerge(12); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestOddEvenMergeSmallerThanBitonic(t *testing.T) {
	b, _ := Bitonic(16)
	m, _ := OddEvenMerge(16)
	if m.Size() >= b.Size() {
		t.Errorf("odd-even merge size %d not below bitonic %d", m.Size(), b.Size())
	}
}

func TestScheduleApplyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		s := OddEvenTransposition(n)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = r.Intn(100)
		}
		if err := s.Apply(keys); err != nil {
			return false
		}
		return sort.IntsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestScheduleApplyWrongSize(t *testing.T) {
	s := OddEvenTransposition(4)
	if err := s.Apply([]int{1, 2}); err == nil {
		t.Error("wrong key count accepted")
	}
}

func TestScheduleValidateCatchesBadRounds(t *testing.T) {
	s := &Schedule{N: 4, Rounds: [][]CompareExchange{{{I: 0, J: 0}}}}
	if err := s.Validate(); err == nil {
		t.Error("self comparator accepted")
	}
	s = &Schedule{N: 4, Rounds: [][]CompareExchange{{{I: 0, J: 1}, {I: 1, J: 2}}}}
	if err := s.Validate(); err == nil {
		t.Error("overlapping round accepted")
	}
	s = &Schedule{N: 4, Rounds: [][]CompareExchange{{{I: 0, J: 9}}}}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range comparator accepted")
	}
}

func TestSortsGuards(t *testing.T) {
	s := OddEvenTransposition(24)
	if _, err := s.Sorts(); err == nil {
		t.Error("n=24 0-1 check should refuse")
	}
	// A schedule that clearly does not sort.
	bad := &Schedule{N: 4, Rounds: [][]CompareExchange{{{I: 0, J: 1}}}}
	ok, err := bad.Sorts()
	if err != nil || ok {
		t.Errorf("non-sorting schedule passed: %v %v", ok, err)
	}
}

func TestSortingRouterOnPath(t *testing.T) {
	n := 8
	g, err := topology.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPermutation(rand.New(rand.NewSource(2)), n)
	r := &SortingRouter{Schedule: OddEvenTransposition(n), CheckEdges: true}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != n || res.Delivered != n {
		t.Errorf("steps=%d delivered=%d", res.Steps, res.Delivered)
	}
}

func TestSortingRouterOnHypercube(t *testing.T) {
	d := 4
	n := 1 << d
	g, err := topology.Hypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Bitonic(n)
	if err != nil {
		t.Fatal(err)
	}
	p := BitReversal(d)
	r := &SortingRouter{Schedule: sched, CheckEdges: true}
	res, err := r.Route(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != sched.Depth() {
		t.Errorf("steps = %d", res.Steps)
	}
}

func TestSortingRouterRejectsNonPermutation(t *testing.T) {
	n := 4
	g, err := topology.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	r := &SortingRouter{Schedule: OddEvenTransposition(n)}
	// Two packets from the same node.
	p, _ := NewProblem(n, []Pair{{0, 1}, {0, 2}, {1, 0}, {2, 3}})
	if _, err := r.Route(g, p); err == nil {
		t.Error("h>1 problem accepted")
	}
	// Missing source.
	p2, _ := NewProblem(n, []Pair{{0, 1}, {1, 0}, {2, 3}})
	if _, err := r.Route(g, p2); err == nil {
		t.Error("partial permutation accepted")
	}
	// Duplicate destination.
	p3, _ := NewProblem(n, []Pair{{0, 1}, {1, 1}, {2, 3}, {3, 0}})
	if _, err := r.Route(g, p3); err == nil {
		t.Error("non-injective destination accepted")
	}
}

func TestSortingRouterEdgeCheck(t *testing.T) {
	// Bitonic comparators are hypercube edges, not path edges.
	n := 8
	g, err := topology.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Bitonic(n)
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPermutation(rand.New(rand.NewSource(3)), n)
	r := &SortingRouter{Schedule: sched, CheckEdges: true}
	if _, err := r.Route(g, p); err == nil {
		t.Error("non-edge comparator accepted with CheckEdges")
	}
}

func TestSortingRouterSizeMismatch(t *testing.T) {
	g, err := topology.Path(8)
	if err != nil {
		t.Fatal(err)
	}
	r := &SortingRouter{Schedule: OddEvenTransposition(4)}
	p := RandomPermutation(rand.New(rand.NewSource(4)), 8)
	if _, err := r.Route(g, p); err == nil {
		t.Error("size mismatch accepted")
	}
}
