package redblue

import (
	"testing"
)

// BenchmarkCostedReplay prices one full costed replay — stream validation
// plus red-blue accounting under LRU eviction — of an n=64 embedding
// protocol on a 16-processor torus. Covered by the bench-compare gate.
func BenchmarkCostedReplay(b *testing.B) {
	pr := fixture(b, 1, 64, 3, 16, 3)
	sp := pr.Spec()
	model := DefaultCostModel(MinRed(sp) + 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := NewLRU()
		cv, err := NewCostedValidator(sp, model, pol, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, ops := range pr.Steps {
			if err := cv.AppendStep(ops); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := cv.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	var ops int64
	for _, s := range pr.Steps {
		ops += int64(len(s))
	}
	b.ReportMetric(float64(ops), "ops/replay")
}

var sinkCosts *Costs

// BenchmarkCostedReplayBelady isolates the offline-policy path: Belady
// pre-scan plus replay.
func BenchmarkCostedReplayBelady(b *testing.B) {
	pr := fixture(b, 1, 64, 3, 16, 3)
	sp := pr.Spec()
	model := DefaultCostModel(MinRed(sp) + 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol := NewBelady(sp, pr.Steps)
		costs, err := ReplayCosted(sp, pr.Source(), model, pol, Options{})
		if err != nil {
			b.Fatal(err)
		}
		sinkCosts = costs
	}
}
