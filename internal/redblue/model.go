// Package redblue prices pebble-game protocols under the multiprocessor
// red-blue model (arXiv:2409.03898): every processor owns r slots of fast
// "red" memory, all processors share an unbounded slow "blue" memory, and
// moving a pebble between the two costs an I/O step. Layered on the
// streaming engine (internal/pebble), it replays any StepSource under a
// memory budget, inserts the implied load/store I/O via a pluggable
// eviction policy, and reports the memory × communication × slowdown
// surface next to the paper's size × slowdown curve.
//
// The translation of the base game is write-through: a Generate computes
// into red and immediately stores the fresh pebble to blue (one store,
// policy-independent), so red copies are always clean and evictions are
// free. Predecessor and send touches load missing pebbles from blue; a
// Receive is a load of the (already stored) pebble into the receiver's red.
// Total cost then decomposes into a policy-independent part — compute
// steps, write-through stores, compulsory first-touch loads — and a
// policy-dependent part, the capacity reloads that grow as r shrinks.
// Because each processor's reference sequence is fixed by the protocol,
// per-processor Belady eviction minimizes reloads globally; the brute-force
// oracle in oracle.go pins that.
package redblue

import "fmt"

// CostModel prices a replay. R is the red capacity in pebbles per
// processor (0 = unbounded, for measuring the working set); IOCost is the
// charge g for one red↔blue transfer; ComputeCost the charge for one
// Generate.
type CostModel struct {
	R           int
	IOCost      int64
	ComputeCost int64
}

// DefaultCostModel charges unit compute and unit I/O with red budget r.
func DefaultCostModel(r int) CostModel {
	return CostModel{R: r, IOCost: 1, ComputeCost: 1}
}

func (m CostModel) check() error {
	if m.R < 0 {
		return fmt.Errorf("redblue: negative red capacity %d", m.R)
	}
	if m.IOCost < 0 || m.ComputeCost < 0 {
		return fmt.Errorf("redblue: negative step charges (io=%d compute=%d)", m.IOCost, m.ComputeCost)
	}
	return nil
}

// Costs is the priced outcome of one replay.
type Costs struct {
	// HostSteps and Compute restate the base protocol: host steps replayed
	// and Generate ops executed. Compute is invariant across R and policy.
	HostSteps int   `json:"host_steps"`
	Compute   int64 `json:"compute"`

	// Stores counts write-through red→blue transfers: one per Generate.
	// Invariant across R and policy.
	Stores int64 `json:"stores"`

	// Loads = ColdLoads + Reloads, blue→red transfers. ColdLoads are
	// compulsory first touches per (processor, pebble) — communication plus
	// initial-input traffic, invariant across R and policy. Reloads are
	// capacity misses: re-fetches of pebbles the policy evicted. Reloads is
	// the churn axis — zero when R is unbounded, growing as R shrinks.
	Loads     int64 `json:"loads"`
	ColdLoads int64 `json:"cold_loads"`
	Reloads   int64 `json:"reloads"`

	// IOSteps = Loads + Stores.
	IOSteps int64 `json:"io_steps"`

	// PeakRed is the maximum red occupancy any processor reached — with
	// unbounded R this is the protocol's per-processor working set.
	PeakRed int `json:"peak_red"`

	// Makespan is max over processors of ComputeCost·compute_q +
	// IOCost·io_q: the priced critical processor. TotalCost is the same sum
	// over all processors.
	Makespan  int64 `json:"makespan"`
	TotalCost int64 `json:"total_cost"`
}

// CostedSlowdown is Makespan divided by the priced guest horizon
// (ComputeCost·T): how much slower the priced host run is than a guest
// that computes one layer per step with free memory.
func (c *Costs) CostedSlowdown(model CostModel, T int) float64 {
	if T <= 0 || model.ComputeCost <= 0 {
		return 0
	}
	return float64(c.Makespan) / float64(model.ComputeCost*int64(T))
}
