package redblue

import (
	"fmt"
	"math/bits"

	"universalnet/internal/pebble"
)

// Brute-force load-optimal scheduler for tiny instances, the PR 5 oracle
// pattern: an exhaustive, obviously-correct reference the fast engine is
// pinned against. Because write-through makes stores and compute
// policy-independent, the only optimizable quantity is the load count, and
// each processor's reference sequence is fixed by the protocol — so the
// global optimum is the sum of independent per-processor optima. Per
// processor this runs an exact dynamic program over cache contents: states
// are subsets of the ≤ 64 distinct pebbles the processor ever references
// (bitmask), transitions replay one op's reference group (operands pinned,
// then evict any subset down to capacity). Exponential in distinct pebbles
// — strictly a test oracle for ≤ 12-node DAGs.

// refGroup is one op's references by its processor: reads must be loaded if
// absent, writes appear without a load; both stay pinned until the op ends.
type refGroup struct {
	reads, writes uint64
}

// OracleMinLoads returns the minimum total number of blue→red loads any
// eviction schedule can achieve replaying steps with red capacity r per
// processor (r = 0 means unbounded: only compulsory loads remain). It
// errors when a processor references more than 64 distinct pebbles (the
// mask width) or an op needs more than r simultaneous residents.
func OracleMinLoads(sp pebble.Spec, steps [][]pebble.Op, r int) (int64, error) {
	m := sp.Host.N()
	// Per-processor local id spaces and group sequences.
	localIdx := make([]map[int32]int, m)
	groups := make([][]refGroup, m)
	for q := 0; q < m; q++ {
		localIdx[q] = make(map[int32]int)
	}
	local := func(q int, id int32) (int, error) {
		li, ok := localIdx[q][id]
		if !ok {
			li = len(localIdx[q])
			if li >= 64 {
				return 0, fmt.Errorf("redblue: oracle: processor %d references > 64 distinct pebbles", q)
			}
			localIdx[q][id] = li
		}
		return li, nil
	}
	var ferr error
	for _, ops := range steps {
		// Each op is one group of its own processor.
		for _, op := range ops {
			var g refGroup
			forEachRef(sp, []pebble.Op{op}, func(q int, id int32, write bool) {
				if ferr != nil {
					return
				}
				li, err := local(q, id)
				if err != nil {
					ferr = err
					return
				}
				if write {
					g.writes |= 1 << uint(li)
				} else {
					g.reads |= 1 << uint(li)
				}
			})
			if ferr != nil {
				return 0, ferr
			}
			groups[op.Proc] = append(groups[op.Proc], g)
		}
	}
	var total int64
	for q := 0; q < m; q++ {
		loads, err := minLoadsProc(groups[q], r, q)
		if err != nil {
			return 0, err
		}
		total += loads
	}
	return total, nil
}

// minLoadsProc is the exact DP for one processor's group sequence.
func minLoadsProc(groups []refGroup, r int, q int) (int64, error) {
	if len(groups) == 0 {
		return 0, nil
	}
	state := map[uint64]int64{0: 0}
	for _, g := range groups {
		need := g.reads | g.writes
		if r > 0 && bits.OnesCount64(need) > r {
			return 0, fmt.Errorf("redblue: oracle: red capacity %d too small: processor %d needs %d resident pebbles in one op",
				r, q, bits.OnesCount64(need))
		}
		next := make(map[uint64]int64, len(state))
		for cache, loads := range state {
			loads += int64(bits.OnesCount64(g.reads &^ cache))
			base := cache | need
			if r == 0 || bits.OnesCount64(base) <= r {
				if old, ok := next[base]; !ok || loads < old {
					next[base] = loads
				}
				continue
			}
			// Evict down to capacity: keep `need` plus any (r−|need|)-sized
			// subset of the rest. Keeping fewer than possible never helps
			// (a larger cache dominates), so enumerate exact-size subsets.
			rest := base &^ need
			keepN := r - bits.OnesCount64(need)
			forEachSubsetOfSize(rest, keepN, func(keep uint64) {
				c := need | keep
				if old, ok := next[c]; !ok || loads < old {
					next[c] = loads
				}
			})
		}
		state = next
	}
	best := int64(-1)
	for _, loads := range state {
		if best < 0 || loads < best {
			best = loads
		}
	}
	return best, nil
}

// forEachSubsetOfSize enumerates every subset of mask with exactly k bits.
func forEachSubsetOfSize(mask uint64, k int, fn func(uint64)) {
	if k <= 0 {
		fn(0)
		return
	}
	if bits.OnesCount64(mask) < k {
		return
	}
	// Gosper-style walk over the positions present in mask.
	var posns [64]int
	np := 0
	for m := mask; m != 0; m &= m - 1 {
		posns[np] = bits.TrailingZeros64(m)
		np++
	}
	// Enumerate k-combinations of np positions.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var s uint64
		for _, i := range idx {
			s |= 1 << uint(posns[i])
		}
		fn(s)
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == np-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
