package redblue

import (
	"io"

	"universalnet/internal/obs"
	"universalnet/internal/pebble"
)

// forEachRef enumerates the red-memory references ops makes, in the order
// the replay performs them: per op, a Generate reads its own and each guest
// neighbor's (t−1)-pebble then writes the fresh pebble; a Send reads the
// pebble on the sender; a Receive reads (loads) it on the receiver. Belady's
// pre-scan uses the same enumeration, which is what keeps its offline
// cursors aligned with the live replay.
func forEachRef(sp pebble.Spec, ops []pebble.Op, fn func(proc int, id int32, write bool)) {
	n := sp.Guest.N()
	for _, op := range ops {
		switch op.Kind {
		case pebble.Generate:
			base := (op.Pebble.T - 1) * n
			fn(op.Proc, int32(base+op.Pebble.P), false)
			for _, j := range sp.Guest.Neighbors(op.Pebble.P) {
				fn(op.Proc, int32(base+j), false)
			}
			fn(op.Proc, int32(op.Pebble.T*n+op.Pebble.P), true)
		case pebble.Send:
			fn(op.Proc, int32(op.Pebble.T*n+op.Pebble.P), false)
		case pebble.Receive:
			fn(op.Proc, int32(op.Pebble.T*n+op.Pebble.P), false)
		}
	}
}

// Options configures a CostedValidator.
type Options struct {
	// Obs, when non-nil, receives replay counters and histograms
	// (redblue.* — deterministic, no wall-clock).
	Obs *obs.Registry
}

// CostedValidator is a pebble.StepSink that replays a protocol stream under
// the red-blue cost model: each step is first validated by the embedded
// pebble.StreamValidator (verdicts byte-identical to ValidateSharded by
// construction), then accounted against the Machine — loads for missing
// operands, a write-through store and a compute charge per Generate. The
// warm step path is allocation-free; Finish returns the Costs surface.
type CostedValidator struct {
	sv    *pebble.StreamValidator
	ma    *Machine
	sp    pebble.Spec
	model CostModel
	pol   Policy
	tick  int64
	costs Costs
	opts  Options

	stepIO *obs.Histogram
}

// NewCostedValidator builds a costed replay for sp under model, with pol
// choosing eviction victims. Spec errors mirror pebble.NewStreamValidator.
func NewCostedValidator(sp pebble.Spec, model CostModel, pol Policy, opts Options) (*CostedValidator, error) {
	sv, err := pebble.NewStreamValidator(sp)
	if err != nil {
		return nil, err
	}
	ma, err := NewMachine(sp, model, pol)
	if err != nil {
		return nil, err
	}
	cv := &CostedValidator{sv: sv, ma: ma, sp: sp, model: model, pol: pol, opts: opts}
	if opts.Obs != nil {
		cv.stepIO = opts.Obs.Histogram("redblue.step_io",
			[]int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256})
	}
	return cv, nil
}

// AppendStep validates one host step and charges its red-blue costs. The
// ops slice is only read during the call.
func (cv *CostedValidator) AppendStep(ops []pebble.Op) error {
	if err := cv.sv.AppendStep(ops); err != nil {
		return err
	}
	ioBefore := cv.ma.loads + cv.ma.stores
	for _, op := range ops {
		cv.tick++
		tick := cv.tick
		switch op.Kind {
		case pebble.Generate:
			n := cv.sp.Guest.N()
			base := (op.Pebble.T - 1) * n
			if err := cv.ma.access(op.Proc, int32(base+op.Pebble.P), false, tick); err != nil {
				return err
			}
			for _, j := range cv.sp.Guest.Neighbors(op.Pebble.P) {
				if err := cv.ma.access(op.Proc, int32(base+j), false, tick); err != nil {
					return err
				}
			}
			id := int32(op.Pebble.T*n + op.Pebble.P)
			if err := cv.ma.access(op.Proc, id, true, tick); err != nil {
				return err
			}
			cv.ma.store(op.Proc, id)
			cv.ma.computeQ[op.Proc]++
			cv.costs.Compute++
		case pebble.Send:
			id := int32(op.Pebble.T*cv.sp.Guest.N() + op.Pebble.P)
			if err := cv.ma.access(op.Proc, id, false, tick); err != nil {
				return err
			}
		case pebble.Receive:
			id := int32(op.Pebble.T*cv.sp.Guest.N() + op.Pebble.P)
			if err := cv.ma.access(op.Proc, id, false, tick); err != nil {
				return err
			}
		}
	}
	cv.costs.HostSteps++
	cv.stepIO.Observe(cv.ma.loads + cv.ma.stores - ioBefore)
	return nil
}

// Finish runs the base validator's final-generator check and returns the
// priced outcome.
func (cv *CostedValidator) Finish() (*Costs, error) {
	if _, err := cv.sv.Finish(); err != nil {
		return nil, err
	}
	c := cv.costs
	c.Loads = cv.ma.loads
	c.ColdLoads = cv.ma.coldLoads
	c.Reloads = cv.ma.reloads
	c.Stores = cv.ma.stores
	c.IOSteps = c.Loads + c.Stores
	c.PeakRed = cv.ma.peakRed
	for q := 0; q < cv.ma.m; q++ {
		cost := cv.model.ComputeCost*cv.ma.computeQ[q] + cv.model.IOCost*cv.ma.ioQ[q]
		c.TotalCost += cost
		if cost > c.Makespan {
			c.Makespan = cost
		}
	}
	if reg := cv.opts.Obs; reg != nil {
		reg.Counter("redblue.replays").Inc()
		reg.Counter("redblue.compute").Add(c.Compute)
		reg.Counter("redblue.io.loads").Add(c.Loads)
		reg.Counter("redblue.io.reloads").Add(c.Reloads)
		reg.Counter("redblue.io.stores").Add(c.Stores)
		reg.Gauge("redblue.peak_red").SetMax(int64(c.PeakRed))
		reg.Histogram("redblue.makespan",
			[]int64{16, 64, 256, 1024, 4096, 16384, 65536, 1 << 20}).Observe(c.Makespan)
	}
	return &c, nil
}

// ReplayCosted drains src through a CostedValidator and returns the priced
// outcome. Source errors are returned verbatim; validation errors match
// pebble.ValidateSharded byte for byte.
func ReplayCosted(sp pebble.Spec, src pebble.StepSource, model CostModel, pol Policy, opts Options) (*Costs, error) {
	cv, err := NewCostedValidator(sp, model, pol, opts)
	if err != nil {
		return nil, err
	}
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := cv.AppendStep(ops); err != nil {
			return nil, err
		}
	}
	return cv.Finish()
}
