package redblue

import (
	"fmt"
	"math/rand"
	"testing"

	"universalnet/internal/pebble"
	"universalnet/internal/topology"
)

// corrupt returns a seeded-random mutant of pr: one step altered in a way
// that is usually invalid. Either way the costed replay's verdict must
// match ValidateSharded's byte for byte.
func corrupt(pr *pebble.Protocol, rng *rand.Rand) *pebble.Protocol {
	out := &pebble.Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T, Steps: make([][]pebble.Op, len(pr.Steps))}
	for i, ops := range pr.Steps {
		out.Steps[i] = append([]pebble.Op(nil), ops...)
	}
	if len(out.Steps) == 0 {
		return out
	}
	si := rng.Intn(len(out.Steps))
	ops := out.Steps[si]
	if len(ops) == 0 {
		return out
	}
	oi := rng.Intn(len(ops))
	switch rng.Intn(6) {
	case 0: // processor acts twice
		out.Steps[si] = append(ops, ops[oi])
	case 1: // drop an op — may orphan a send or receive
		out.Steps[si] = append(ops[:oi:oi], ops[oi+1:]...)
	case 2: // pebble from the future
		ops[oi].Pebble.T++
	case 3: // out-of-range processor
		ops[oi].Proc = pr.Host.N() + rng.Intn(3)
	case 4: // wrong peer
		ops[oi].Peer = (ops[oi].Peer + 1 + rng.Intn(pr.Host.N()-1)) % pr.Host.N()
	case 5: // out-of-range guest index
		ops[oi].Pebble.P = pr.Guest.N() + rng.Intn(3)
	}
	return out
}

// compareVerdicts replays pr through ValidateSharded and through a costed
// replay (unbounded red — no capacity errors possible) and requires
// identical accept/reject verdicts with identical error text.
func compareVerdicts(t *testing.T, pr *pebble.Protocol) {
	t.Helper()
	sp := pr.Spec()
	_, errS := pebble.ValidateSharded(sp, pr.Source(), pebble.ShardedOptions{Shards: 1})
	_, errC := ReplayCosted(sp, pr.Source(), DefaultCostModel(0), NewLRU(), Options{})
	switch {
	case errS == nil && errC == nil:
	case errS == nil || errC == nil:
		t.Fatalf("verdicts diverge: sharded %v, costed %v", errS, errC)
	case errS.Error() != errC.Error():
		t.Fatalf("errors diverge:\n  sharded: %s\n  costed:  %s", errS, errC)
	}
}

// Costed replay must never alter validation verdicts: 80 seeds across four
// builders, valid protocols and two mutants each.
func TestCostedReplayVerdictEquivalence(t *testing.T) {
	protocols, mutants := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(5)
			T := 2 + rng.Intn(2)
			guest, err := topology.RandomGuest(rng, n, 2)
			if err != nil {
				t.Fatal(err)
			}
			host, err := topology.Torus(9)
			if err != nil {
				t.Fatal(err)
			}
			f := pebble.RandomizedAssignment(n, host.N(), seed)

			var pr *pebble.Protocol
			switch seed % 4 {
			case 0:
				pr, err = pebble.BuildEmbeddingProtocol(guest, host, f, T)
			case 1:
				pr, err = pebble.BuildPipelinedProtocol(guest, host, f, T)
			case 2:
				pr, err = pebble.BuildMulticastProtocol(guest, host, f, T)
			default:
				pr, err = pebble.BuildQueuedEmbeddingProtocol(guest, host, f, T)
			}
			if err != nil {
				t.Fatalf("building protocol: %v", err)
			}

			compareVerdicts(t, pr)
			protocols++

			// A bounded replay of the valid protocol must also accept.
			sp := pr.Spec()
			if _, err := ReplayCosted(sp, pr.Source(), DefaultCostModel(MinRed(sp)+2), NewLRU(), Options{}); err != nil {
				t.Fatalf("bounded replay of valid protocol: %v", err)
			}

			for k := 0; k < 2; k++ {
				compareVerdicts(t, corrupt(pr, rng))
				mutants++
			}
		})
	}
	if !t.Failed() {
		t.Logf("compared %d protocols and %d mutants with zero verdict divergence", protocols, mutants)
	}
}
