package redblue

import (
	"fmt"

	"universalnet/internal/pebble"
)

// Policy chooses eviction victims. Victim receives the processor's
// slot-parallel tables (resident ids, last-touch ticks, pin stamps) and
// must return the index of an unpinned slot (pins[i] == tick ⇒ pinned this
// op), or -1 when every slot is pinned. Touched is invoked once per red
// reference in replay order — hits, loads, and generates alike — which is
// what lets Belady advance its offline next-use cursors in lockstep with
// the replay.
type Policy interface {
	Name() string
	Touched(proc int, id int32, tick int64)
	Victim(proc int, ids []int32, last []int64, pins []int64, tick int64) int
}

// PolicyNames lists the built-in eviction policies in report order.
func PolicyNames() []string { return []string{"lru", "random", "belady"} }

// NewPolicy builds a built-in policy by name. Belady is offline: it needs
// the materialized steps to pre-scan the reference sequence.
func NewPolicy(name string, sp pebble.Spec, steps [][]pebble.Op, seed uint64) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "random":
		return NewRandom(seed), nil
	case "belady":
		if steps == nil {
			return nil, fmt.Errorf("redblue: belady needs materialized steps (offline policy)")
		}
		return NewBelady(sp, steps), nil
	}
	return nil, fmt.Errorf("redblue: unknown eviction policy %q (want lru|random|belady)", name)
}

// --- LRU ---

type lruPolicy struct{}

// NewLRU evicts the least-recently-touched unpinned slot.
func NewLRU() Policy { return lruPolicy{} }

func (lruPolicy) Name() string              { return "lru" }
func (lruPolicy) Touched(int, int32, int64) {}
func (lruPolicy) Victim(_ int, ids []int32, last []int64, pins []int64, tick int64) int {
	best, bestLast := -1, int64(0)
	for i := range ids {
		if pins[i] == tick {
			continue
		}
		if best < 0 || last[i] < bestLast {
			best, bestLast = i, last[i]
		}
	}
	return best
}

// --- seeded random ---

type randomPolicy struct {
	state uint64
}

// NewRandom evicts a uniformly random unpinned slot, deterministically from
// seed (SplitMix64 stream — replays are reproducible).
func NewRandom(seed uint64) Policy { return &randomPolicy{state: seed} }

func (*randomPolicy) Name() string              { return "random" }
func (*randomPolicy) Touched(int, int32, int64) {}

func (p *randomPolicy) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *randomPolicy) Victim(_ int, ids []int32, last []int64, pins []int64, tick int64) int {
	candidates := 0
	for i := range ids {
		if pins[i] != tick {
			candidates++
		}
	}
	if candidates == 0 {
		return -1
	}
	k := int(p.next() % uint64(candidates))
	for i := range ids {
		if pins[i] != tick {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// --- Belady (offline farthest-next-use) ---

type beladyPolicy struct {
	numIDs int
	// refs[q·numIDs+id] lists the positions (per-processor reference
	// sequence indices) at which q references id; cursor is the next
	// unconsumed entry. seq[q] counts q's references consumed so far.
	refs   [][]int32
	cursor []int32
	seq    []int32
}

// NewBelady pre-scans steps (via the same reference enumeration the replay
// uses) and evicts the unpinned slot whose next use is farthest in the
// future — per-processor optimal for the load count, since each
// processor's reference sequence is fixed by the protocol and write-through
// makes every eviction free. Offline only: memory is O(m·(T+1)·n) plus the
// reference lists.
func NewBelady(sp pebble.Spec, steps [][]pebble.Op) Policy {
	n, m := sp.Guest.N(), sp.Host.N()
	numIDs := (sp.T + 1) * n
	p := &beladyPolicy{
		numIDs: numIDs,
		refs:   make([][]int32, m*numIDs),
		cursor: make([]int32, m*numIDs),
		seq:    make([]int32, m),
	}
	pos := make([]int32, m)
	for _, ops := range steps {
		forEachRef(sp, ops, func(q int, id int32, _ bool) {
			key := q*numIDs + int(id)
			p.refs[key] = append(p.refs[key], pos[q])
			pos[q]++
		})
	}
	return p
}

func (*beladyPolicy) Name() string { return "belady" }

func (p *beladyPolicy) Touched(q int, id int32, _ int64) {
	myPos := p.seq[q]
	p.seq[q]++
	key := q*p.numIDs + int(id)
	refs := p.refs[key]
	c := p.cursor[key]
	for int(c) < len(refs) && refs[c] <= myPos {
		c++
	}
	p.cursor[key] = c
}

func (p *beladyPolicy) Victim(q int, ids []int32, last []int64, pins []int64, tick int64) int {
	best := -1
	bestNext := int32(-1)
	for i, id := range ids {
		if pins[i] == tick {
			continue
		}
		key := q*p.numIDs + int(id)
		next := int32(1<<31 - 1) // never used again
		if c := p.cursor[key]; int(c) < len(p.refs[key]) {
			next = p.refs[key][c]
		}
		if best < 0 || next > bestNext {
			best, bestNext = i, next
		}
	}
	return best
}
