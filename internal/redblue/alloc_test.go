package redblue

import (
	"testing"
)

// The warm CostedValidator step path must be allocation-free: validation
// runs on the stream validator's stamped scratch, and the cost accounting
// on preallocated slot tables (bounded R ⇒ no slice growth). Replaying an
// already-applied protocol is legal (regenerates pass validation, every
// gain is a no-op), so it exercises the full step path warm.
func TestCostedValidatorWarmAllocations(t *testing.T) {
	pr := fixture(t, 2, 16, 2, 9, 3)
	sp := pr.Spec()
	cv, err := NewCostedValidator(sp, DefaultCostModel(MinRed(sp)+2), NewLRU(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range pr.Steps {
		if err := cv.AppendStep(ops); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, ops := range pr.Steps {
			if err := cv.AppendStep(ops); err != nil {
				t.Fatal(err)
			}
		}
	})
	perStep := avg / float64(len(pr.Steps))
	if perStep > 0.05 {
		t.Errorf("warm CostedValidator.AppendStep allocates %.3f/step, want 0", perStep)
	}
}
