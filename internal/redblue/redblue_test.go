package redblue

import (
	"math/rand"
	"strings"
	"testing"

	"universalnet/internal/obs"
	"universalnet/internal/pebble"
	"universalnet/internal/topology"
)

// fixture builds a valid embedding protocol: n guest vertices of degree
// deg on a torus host, T guest steps.
func fixture(t testing.TB, seed int64, n, deg, hostN, T int) *pebble.Protocol {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, deg)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(hostN)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func replay(t testing.TB, pr *pebble.Protocol, r int, polName string) *Costs {
	t.Helper()
	sp := pr.Spec()
	pol, err := NewPolicy(polName, sp, pr.Steps, 7)
	if err != nil {
		t.Fatal(err)
	}
	costs, err := ReplayCosted(sp, pr.Source(), DefaultCostModel(r), pol, Options{})
	if err != nil {
		t.Fatalf("replay r=%d policy=%s: %v", r, polName, err)
	}
	return costs
}

// Shrinking r must grow I/O monotonically while the policy-independent
// charges — compute, stores, cold loads — stay fixed. Unbounded red memory
// has zero reloads, and its peak occupancy is the working set every
// bounded run must also fit in.
func TestCostedReplayMonotoneIO(t *testing.T) {
	pr := fixture(t, 3, 24, 2, 16, 3)
	sp := pr.Spec()
	minR := MinRed(sp)

	unbounded := replay(t, pr, 0, "lru")
	if unbounded.Reloads != 0 {
		t.Fatalf("unbounded replay has %d reloads, want 0", unbounded.Reloads)
	}
	if unbounded.Loads != unbounded.ColdLoads {
		t.Fatalf("unbounded: loads %d != cold loads %d", unbounded.Loads, unbounded.ColdLoads)
	}

	for _, polName := range PolicyNames() {
		prev := int64(-1) // IO of the previous (smaller) r
		for r := minR; r <= minR+6; r++ {
			c := replay(t, pr, r, polName)
			if c.Compute != unbounded.Compute || c.Stores != unbounded.Stores {
				t.Errorf("%s r=%d: compute/stores (%d,%d) differ from unbounded (%d,%d)",
					polName, r, c.Compute, c.Stores, unbounded.Compute, unbounded.Stores)
			}
			if c.ColdLoads != unbounded.ColdLoads {
				t.Errorf("%s r=%d: cold loads %d, want %d", polName, r, c.ColdLoads, unbounded.ColdLoads)
			}
			if c.IOSteps != c.Loads+c.Stores || c.Loads != c.ColdLoads+c.Reloads {
				t.Errorf("%s r=%d: inconsistent IO breakdown %+v", polName, r, c)
			}
			if c.PeakRed > r {
				t.Errorf("%s r=%d: peak red %d exceeds budget", polName, r, c.PeakRed)
			}
			if prev >= 0 && c.IOSteps > prev {
				t.Errorf("%s: IO grew from %d to %d as r grew to %d", polName, prev, c.IOSteps, r)
			}
			prev = c.IOSteps
		}
		// The sweep must actually bind: the tightest budget reloads strictly
		// more than the loosest.
		tight, loose := replay(t, pr, minR, polName), replay(t, pr, minR+6, polName)
		if tight.Reloads <= loose.Reloads {
			t.Errorf("%s: reloads at r=%d (%d) not strictly above r=%d (%d)",
				polName, minR, tight.Reloads, minR+6, loose.Reloads)
		}
	}
}

// Belady never loads more than LRU or random on the same replay.
func TestBeladyDominates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		pr := fixture(t, seed, 16, 2, 9, 3)
		minR := MinRed(pr.Spec())
		for r := minR; r <= minR+3; r++ {
			bel := replay(t, pr, r, "belady")
			for _, other := range []string{"lru", "random"} {
				c := replay(t, pr, r, other)
				if bel.Loads > c.Loads {
					t.Errorf("seed %d r=%d: belady %d loads > %s %d", seed, r, bel.Loads, other, c.Loads)
				}
			}
		}
	}
}

// A red budget below an op's operand count fails gracefully.
func TestCostedReplayCapacityTooSmall(t *testing.T) {
	pr := fixture(t, 1, 12, 2, 9, 2)
	sp := pr.Spec()
	pol, _ := NewPolicy("lru", sp, nil, 0)
	_, err := ReplayCosted(sp, pr.Source(), DefaultCostModel(1), pol, Options{})
	if err == nil || !strings.Contains(err.Error(), "too small") {
		t.Fatalf("r=1 replay: got %v, want capacity error", err)
	}
}

// Degenerate specs and models surface as the same graceful errors the base
// stream validator produces.
func TestCostedValidatorRejectsDegenerate(t *testing.T) {
	pr := fixture(t, 1, 8, 2, 9, 2)
	sp := pr.Spec()
	if _, err := NewCostedValidator(pebble.Spec{Guest: sp.Guest, Host: nil, T: 2},
		DefaultCostModel(8), NewLRU(), Options{}); err == nil {
		t.Error("nil host accepted")
	}
	if _, err := NewCostedValidator(sp, CostModel{R: -1, IOCost: 1, ComputeCost: 1},
		NewLRU(), Options{}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewCostedValidator(sp, DefaultCostModel(8), nil, Options{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewPolicy("belady", sp, nil, 0); err == nil {
		t.Error("belady without steps accepted")
	}
	if _, err := NewPolicy("fifo", sp, nil, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Makespan and total cost respect the model's charges, and obs metrics are
// recorded deterministically.
func TestCostedReplayAccounting(t *testing.T) {
	pr := fixture(t, 5, 16, 2, 9, 3)
	sp := pr.Spec()
	reg := obs.New()
	pol := NewLRU()
	model := CostModel{R: MinRed(sp) + 2, IOCost: 3, ComputeCost: 2}
	costs, err := ReplayCosted(sp, pr.Source(), model, pol, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := model.ComputeCost*costs.Compute + model.IOCost*costs.IOSteps
	if costs.TotalCost != wantTotal {
		t.Errorf("total cost %d, want compute·%d + io·%d = %d", costs.TotalCost, costs.Compute, costs.IOSteps, wantTotal)
	}
	if costs.Makespan <= 0 || costs.Makespan > costs.TotalCost {
		t.Errorf("makespan %d outside (0, %d]", costs.Makespan, costs.TotalCost)
	}
	if got := costs.CostedSlowdown(model, sp.T); got <= 0 {
		t.Errorf("costed slowdown %v, want > 0", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["redblue.replays"] != 1 {
		t.Errorf("redblue.replays = %d, want 1", snap.Counters["redblue.replays"])
	}
	if snap.Counters["redblue.io.loads"] != costs.Loads {
		t.Errorf("redblue.io.loads = %d, want %d", snap.Counters["redblue.io.loads"], costs.Loads)
	}
	// Same replay, same registry contents: metrics are wall-clock free.
	reg2 := obs.New()
	if _, err := ReplayCosted(sp, pr.Source(), model, NewLRU(), Options{Obs: reg2}); err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(reg2.Snapshot()) {
		t.Error("replay metrics differ across identical runs")
	}
}
