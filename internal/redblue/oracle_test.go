package redblue

import (
	"fmt"
	"math/rand"
	"testing"

	"universalnet/internal/pebble"
	"universalnet/internal/topology"
)

// The acceptance bar for the cost model: on tiny instances (computation
// DAGs of ≤ 12 nodes) the exhaustive per-processor DP and the streaming
// Belady replay must agree on the load count at every feasible red budget —
// zero divergence over 120 seeds. Belady-with-pins is load-optimal because
// write-through makes evictions free and each processor's reference
// sequence is protocol-fixed; the oracle proves it empirically here.
func TestOracleMatchesBeladyReplay(t *testing.T) {
	compared := 0
	for seed := int64(0); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(3) // 2..4 guest vertices
			T := 2 + rng.Intn(2) // 2..3 guest steps; n·T ≤ 12 DAG nodes
			guest, err := topology.RandomGuest(rng, n, 1+rng.Intn(2))
			if err != nil {
				// Tiny degree/vertex combinations can be unrealizable.
				t.Skipf("no guest: %v", err)
			}
			host, err := topology.Ring(3 + rng.Intn(3))
			if err != nil {
				t.Fatal(err)
			}

			var pr *pebble.Protocol
			if seed%2 == 0 {
				// Random schedules can stall on tiny instances; fall back to
				// the deterministic builder when they do.
				pr, err = pebble.RandomProtocol(guest, host, T, rng, 0)
			}
			if pr == nil || err != nil {
				pr, err = pebble.BuildEmbeddingProtocol(guest, host, nil, T)
			}
			if err != nil {
				t.Fatalf("building protocol: %v", err)
			}
			sp := pr.Spec()
			minR := MinRed(sp)
			for r := minR; r <= minR+3; r++ {
				want, err := OracleMinLoads(sp, pr.Steps, r)
				if err != nil {
					t.Fatalf("oracle r=%d: %v", r, err)
				}
				pol := NewBelady(sp, pr.Steps)
				got, err := ReplayCosted(sp, pr.Source(), DefaultCostModel(r), pol, Options{})
				if err != nil {
					t.Fatalf("belady replay r=%d: %v", r, err)
				}
				if got.Loads != want {
					t.Fatalf("r=%d: belady replay loads %d, oracle optimum %d", r, got.Loads, want)
				}
				compared++
			}
			// Unbounded agreement: the oracle's r=0 optimum is exactly the
			// compulsory-load count.
			want, err := OracleMinLoads(sp, pr.Steps, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReplayCosted(sp, pr.Source(), DefaultCostModel(0), NewLRU(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.ColdLoads != want || got.Reloads != 0 {
				t.Fatalf("unbounded: cold %d reloads %d, oracle %d", got.ColdLoads, got.Reloads, want)
			}
		})
	}
	if !t.Failed() {
		t.Logf("oracle vs belady: %d (seed, r) points with zero divergence", compared)
	}
}

// The oracle's capacity error matches the replay's: budgets below an op's
// operand count are infeasible for both.
func TestOracleCapacityError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OracleMinLoads(pr.Spec(), pr.Steps, 1); err == nil {
		t.Fatal("oracle accepted r=1")
	}
}
