package redblue

import (
	"fmt"

	"universalnet/internal/pebble"
)

// Machine is the red-blue memory state of one replay: per-processor red
// slot tables (dense, PR 5 idiom — bitset membership plus a flat slot array
// scanned linearly, zero-alloc warm) and the shared blue bitset. Pebble
// (P_i, t) maps to dense id t·n+i, exactly the streaming validator's
// layout.
//
// Within one host-step op every referenced pebble is pinned (pin stamp =
// the op's tick) so the policy can never evict an operand of the op that is
// loading it; if an op needs more simultaneous residents than R, the replay
// fails with a graceful capacity error instead of thrashing.
type Machine struct {
	n, m, T int
	numIDs  int
	words   int
	r       int // 0 = unbounded

	red     []uint64 // m×words: red residency bits
	blue    []uint64 // words: blue residency bits (shared)
	everRed []uint64 // m×words: cold-vs-reload classification

	slotIDs  [][]int32 // per proc: resident ids, swap-remove order
	slotLast [][]int64 // per proc: last-touch tick, slot-parallel
	slotPin  [][]int64 // per proc: pin stamp (== tick ⇒ pinned this op)

	// Per-processor charge accumulators for the makespan.
	computeQ []int64
	ioQ      []int64

	loads, coldLoads, reloads, stores int64
	peakRed                           int

	pol Policy
}

// NewMachine builds the cold start state for sp: blue holds every (P_i, 0)
// input pebble, every red memory is empty.
func NewMachine(sp pebble.Spec, model CostModel, pol Policy) (*Machine, error) {
	if err := model.check(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("redblue: nil eviction policy")
	}
	n, m := sp.Guest.N(), sp.Host.N()
	numIDs := (sp.T + 1) * n
	words := (numIDs + 63) / 64
	ma := &Machine{
		n: n, m: m, T: sp.T,
		numIDs:   numIDs,
		words:    words,
		r:        model.R,
		red:      make([]uint64, m*words),
		blue:     make([]uint64, words),
		everRed:  make([]uint64, m*words),
		slotIDs:  make([][]int32, m),
		slotLast: make([][]int64, m),
		slotPin:  make([][]int64, m),
		computeQ: make([]int64, m),
		ioQ:      make([]int64, m),
		pol:      pol,
	}
	capHint := model.R
	if capHint == 0 {
		capHint = 16 // unbounded mode grows on demand
	}
	for q := 0; q < m; q++ {
		ma.slotIDs[q] = make([]int32, 0, capHint)
		ma.slotLast[q] = make([]int64, 0, capHint)
		ma.slotPin[q] = make([]int64, 0, capHint)
	}
	// Inputs start in blue.
	for w := 0; w < n/64; w++ {
		ma.blue[w] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		ma.blue[n/64] |= 1<<rem - 1
	}
	return ma, nil
}

func (ma *Machine) redBit(q int, id int32) bool {
	return ma.red[q*ma.words+int(id)>>6]&(1<<(uint(id)&63)) != 0
}

func (ma *Machine) setRed(q int, id int32) {
	ma.red[q*ma.words+int(id)>>6] |= 1 << (uint(id) & 63)
}

func (ma *Machine) clearRed(q int, id int32) {
	ma.red[q*ma.words+int(id)>>6] &^= 1 << (uint(id) & 63)
}

func (ma *Machine) blueBit(id int32) bool {
	return ma.blue[int(id)>>6]&(1<<(uint(id)&63)) != 0
}

// slotOf finds id's slot index on q by linear scan — occupancy is bounded
// by R (or the working set), so this stays cache-resident and alloc-free.
func (ma *Machine) slotOf(q int, id int32) int {
	for i, sid := range ma.slotIDs[q] {
		if sid == id {
			return i
		}
	}
	return -1
}

// access makes id resident in q's red memory at tick, charging a blue→red
// load when a read misses (write misses allocate a slot without a load —
// the value is freshly computed). The slot is pinned for the current op.
func (ma *Machine) access(q int, id int32, write bool, tick int64) error {
	if ma.redBit(q, id) {
		i := ma.slotOf(q, id)
		ma.slotLast[q][i] = tick
		ma.slotPin[q][i] = tick
		ma.pol.Touched(q, id, tick)
		return nil
	}
	if !write {
		if !ma.blueBit(id) {
			// Unreachable after validation: every held pebble was stored.
			return fmt.Errorf("redblue: internal: load of (P%d,t%d) on %d not in blue",
				int(id)%ma.n, int(id)/ma.n, q)
		}
		ma.loads++
		ma.ioQ[q]++
		if ma.everRed[q*ma.words+int(id)>>6]&(1<<(uint(id)&63)) != 0 {
			ma.reloads++
		} else {
			ma.coldLoads++
		}
	}
	if ma.r > 0 && len(ma.slotIDs[q]) >= ma.r {
		if err := ma.evictOne(q, tick); err != nil {
			return err
		}
	}
	ma.setRed(q, id)
	ma.everRed[q*ma.words+int(id)>>6] |= 1 << (uint(id) & 63)
	ma.slotIDs[q] = append(ma.slotIDs[q], id)
	ma.slotLast[q] = append(ma.slotLast[q], tick)
	ma.slotPin[q] = append(ma.slotPin[q], tick)
	if occ := len(ma.slotIDs[q]); occ > ma.peakRed {
		ma.peakRed = occ
	}
	ma.pol.Touched(q, id, tick)
	return nil
}

// evictOne asks the policy for a victim among q's unpinned slots and drops
// it. Evictions are free: write-through keeps every red copy clean.
func (ma *Machine) evictOne(q int, tick int64) error {
	i := ma.pol.Victim(q, ma.slotIDs[q], ma.slotLast[q], ma.slotPin[q], tick)
	if i < 0 || i >= len(ma.slotIDs[q]) || ma.slotPin[q][i] == tick {
		return fmt.Errorf("redblue: red capacity %d too small: processor %d needs more than %d resident pebbles in one op",
			ma.r, q, ma.r)
	}
	ma.clearRed(q, ma.slotIDs[q][i])
	last := len(ma.slotIDs[q]) - 1
	ma.slotIDs[q][i] = ma.slotIDs[q][last]
	ma.slotLast[q][i] = ma.slotLast[q][last]
	ma.slotPin[q][i] = ma.slotPin[q][last]
	ma.slotIDs[q] = ma.slotIDs[q][:last]
	ma.slotLast[q] = ma.slotLast[q][:last]
	ma.slotPin[q] = ma.slotPin[q][:last]
	return nil
}

// store write-throughs id to blue. Charged once per Generate so the store
// count is policy-independent.
func (ma *Machine) store(q int, id int32) {
	ma.blue[int(id)>>6] |= 1 << (uint(id) & 63)
	ma.stores++
	ma.ioQ[q]++
}

// MinRed is the smallest feasible red budget for protocols over guest: a
// Generate must hold the new pebble plus its ≤ MaxDegree+1 predecessors at
// once.
func MinRed(sp pebble.Spec) int {
	if sp.Guest == nil {
		return 0
	}
	return sp.Guest.MaxDegree() + 2
}
