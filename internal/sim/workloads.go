package sim

import (
	"math/rand"

	"universalnet/internal/graph"
)

// The workloads below are the computations guests execute in the
// experiments. MixMod is the default for correctness checks because every
// state bit depends on the entire t-neighborhood after t steps, so any
// simulation error corrupts the checksum.

// Broadcast floods a marker from the given source: a processor's state
// becomes 1 as soon as it or any neighbor is 1. Completion time equals the
// source's eccentricity — used by the information-spreading experiments.
func Broadcast(g *graph.Graph, source int) *Computation {
	init := make([]State, g.N())
	init[source] = 1
	step := func(_ int, self State, neighbors []State) State {
		if self == 1 {
			return 1
		}
		for _, s := range neighbors {
			if s == 1 {
				return 1
			}
		}
		return 0
	}
	c, err := NewComputation(g, init, step, "broadcast")
	if err != nil {
		panic(err)
	}
	return c
}

// MaxConsensus lets every processor adopt the maximum state it has seen;
// after diameter steps all states equal the global maximum.
func MaxConsensus(g *graph.Graph, init []State) (*Computation, error) {
	step := func(_ int, self State, neighbors []State) State {
		m := self
		for _, s := range neighbors {
			if s > m {
				m = s
			}
		}
		return m
	}
	return NewComputation(g, init, step, "max-consensus")
}

// MixMod is a chaotic mixing computation: next = a·self + Σ neighbors + i
// (mod 2^64, via natural wraparound), seeded with random initial states.
// Every output bit depends on the full t-neighborhood, making it the
// canonical correctness workload for simulation checks.
func MixMod(g *graph.Graph, rng *rand.Rand) *Computation {
	init := make([]State, g.N())
	for i := range init {
		init[i] = State(rng.Uint64())
	}
	const a = 6364136223846793005 // Knuth MMIX multiplier
	step := func(i int, self State, neighbors []State) State {
		x := uint64(self) * a
		for _, s := range neighbors {
			x += uint64(s)
		}
		return State(x + uint64(i) + 1442695040888963407)
	}
	c, err := NewComputation(g, init, step, "mix-mod")
	if err != nil {
		panic(err)
	}
	return c
}

// TokenRing passes a single token around a ring guest: processor i holds
// the token at time t iff i ≡ t (mod n). The transition consults the
// predecessor's state, exercising directional neighbor dependence.
func TokenRing(g *graph.Graph) *Computation {
	n := g.N()
	init := make([]State, n)
	init[0] = 1
	step := func(i int, _ State, neighbors []State) State {
		// The ring's adjacency of i is sorted; the predecessor is (i−1) mod n.
		pred := (i - 1 + n) % n
		for k, w := range g.Neighbors(i) {
			if w == pred {
				return neighbors[k]
			}
		}
		return 0
	}
	c, err := NewComputation(g, init, step, "token-ring")
	if err != nil {
		panic(err)
	}
	return c
}

// JacobiSum iterates next = self + Σ neighbors (wraparound arithmetic), the
// integer analogue of Jacobi relaxation; states grow like the number of
// walks, so mismatches amplify.
func JacobiSum(g *graph.Graph, init []State) (*Computation, error) {
	step := func(_ int, self State, neighbors []State) State {
		x := uint64(self)
		for _, s := range neighbors {
			x += uint64(s)
		}
		return State(x)
	}
	return NewComputation(g, init, step, "jacobi-sum")
}

// RandomInit returns n random states from rng.
func RandomInit(n int, rng *rand.Rand) []State {
	init := make([]State, n)
	for i := range init {
		init[i] = State(rng.Uint64())
	}
	return init
}
