// Package sim provides the synchronous network-computation engine the
// simulation results quantify over: each processor P_i of a guest network G
// holds a configuration, and the configuration at time t+1 is a function of
// its own configuration and those of all its neighbors at time t — exactly
// the dependency structure of Definition 3.7. The engine produces full
// traces so that universal-simulation implementations can be checked for
// step-by-step equivalence against direct execution.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// State is one processor configuration. The pebble-game model transmits a
// full configuration in one step, so a compact word-sized state loses no
// generality for the experiments.
type State uint64

// Transition computes processor i's next configuration from its own state
// and the states of its neighbors (in adjacency order). Implementations
// must be deterministic and must not retain the neighbors slice.
type Transition func(i int, self State, neighbors []State) State

// Computation couples a guest network with an initial configuration and a
// transition function.
type Computation struct {
	G    *graph.Graph
	Init []State
	Step Transition
	Name string
	// Obs, when non-nil, receives engine metrics (steps executed, state
	// updates, parallel-shard utilization). Nil — the default — costs the
	// engine nothing beyond a nil-check per run.
	Obs *obs.Registry
}

// NewComputation validates the sizes and returns a Computation.
func NewComputation(g *graph.Graph, init []State, step Transition, name string) (*Computation, error) {
	if len(init) != g.N() {
		return nil, fmt.Errorf("sim: %d initial states for %d processors", len(init), g.N())
	}
	if step == nil {
		return nil, fmt.Errorf("sim: nil transition")
	}
	return &Computation{G: g, Init: append([]State(nil), init...), Step: step, Name: name}, nil
}

// Trace records the configurations of every processor at every time step of
// a T-step run: States[t][i] is processor i's configuration at guest time t,
// for t = 0..T.
type Trace struct {
	States [][]State
}

// T returns the number of computation steps recorded.
func (tr *Trace) T() int { return len(tr.States) - 1 }

// N returns the number of processors.
func (tr *Trace) N() int {
	if len(tr.States) == 0 {
		return 0
	}
	return len(tr.States[0])
}

// At returns processor i's configuration at time t.
func (tr *Trace) At(i, t int) State { return tr.States[t][i] }

// Final returns the configurations after the last step.
func (tr *Trace) Final() []State { return tr.States[len(tr.States)-1] }

// Checksum folds the whole trace into one value (FNV-1a), for cheap
// equivalence assertions between direct and simulated executions.
func (tr *Trace) Checksum() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	for _, row := range tr.States {
		for _, s := range row {
			mix(uint64(s))
		}
	}
	return h
}

// Run executes T steps and returns the full trace.
func (c *Computation) Run(T int) (*Trace, error) {
	if T < 0 {
		return nil, fmt.Errorf("sim: negative step count %d", T)
	}
	n := c.G.N()
	defer c.observeRun(T, 1)()
	tr := &Trace{States: make([][]State, T+1)}
	tr.States[0] = append([]State(nil), c.Init...)
	nbuf := make([]State, 0, c.G.MaxDegree())
	for t := 0; t < T; t++ {
		cur := tr.States[t]
		next := make([]State, n)
		for i := 0; i < n; i++ {
			nbuf = nbuf[:0]
			for _, w := range c.G.Neighbors(i) {
				nbuf = append(nbuf, cur[w])
			}
			next[i] = c.Step(i, cur[i], nbuf)
		}
		tr.States[t+1] = next
	}
	return tr, nil
}

// VerifyTrace checks that a trace is a legal execution of the computation:
// correct dimensions, matching initial state, and every step consistent with
// the transition function. Used to validate traces reconstructed from
// universal-simulation runs.
func (c *Computation) VerifyTrace(tr *Trace) error {
	n := c.G.N()
	if tr.N() != n {
		return fmt.Errorf("sim: trace has %d processors, want %d", tr.N(), n)
	}
	for i, s := range c.Init {
		if tr.States[0][i] != s {
			return fmt.Errorf("sim: initial state of processor %d is %d, want %d", i, tr.States[0][i], s)
		}
	}
	nbuf := make([]State, 0, c.G.MaxDegree())
	for t := 0; t < tr.T(); t++ {
		cur := tr.States[t]
		for i := 0; i < n; i++ {
			nbuf = nbuf[:0]
			for _, w := range c.G.Neighbors(i) {
				nbuf = append(nbuf, cur[w])
			}
			want := c.Step(i, cur[i], nbuf)
			if got := tr.States[t+1][i]; got != want {
				return fmt.Errorf("sim: processor %d at step %d has state %d, want %d", i, t+1, got, want)
			}
		}
	}
	return nil
}

// observeRun records one engine run on c.Obs and returns the deferred span
// closer. All metric work happens here, once per run — the per-step and
// per-processor loops stay untouched, so a nil registry costs one nil-check.
// Metrics are pure functions of (n, T, workers) and thus deterministic.
func (c *Computation) observeRun(T, workers int) func() {
	if c.Obs == nil {
		return func() {}
	}
	n := int64(c.G.N())
	c.Obs.Counter("sim.runs").Inc()
	c.Obs.Counter("sim.steps").Add(int64(T))
	c.Obs.Counter("sim.state_updates").Add(n * int64(T))
	if workers > 1 {
		c.Obs.Counter("sim.parallel.runs").Inc()
		c.Obs.Gauge("sim.parallel.workers").SetMax(int64(workers))
		// Shards per step: how the processor range splits over workers —
		// the parallel engine's utilization signal.
		chunk := (int(n) + workers - 1) / workers
		shards := (int(n) + chunk - 1) / chunk
		c.Obs.Counter("sim.parallel.shards").Add(int64(shards) * int64(T))
	}
	sp := c.Obs.StartSpan("sim.run",
		obs.KV("name", c.Name), obs.KV("n", c.G.N()), obs.KV("steps", T), obs.KV("workers", workers))
	return sp.End
}

// RunParallel executes T steps like Run, sharding each step's processor
// updates over up to `workers` goroutines (0 ⇒ GOMAXPROCS). The result is
// bit-identical to Run — each worker writes disjoint entries of the next
// state row — at a fraction of the wall-clock for large guests.
func (c *Computation) RunParallel(T, workers int) (*Trace, error) {
	if T < 0 {
		return nil, fmt.Errorf("sim: negative step count %d", T)
	}
	n := c.G.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return c.Run(T)
	}
	defer c.observeRun(T, workers)()
	tr := &Trace{States: make([][]State, T+1)}
	tr.States[0] = append([]State(nil), c.Init...)
	chunk := (n + workers - 1) / workers
	for t := 0; t < T; t++ {
		cur := tr.States[t]
		next := make([]State, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				nbuf := make([]State, 0, c.G.MaxDegree())
				for i := lo; i < hi; i++ {
					nbuf = nbuf[:0]
					for _, w := range c.G.Neighbors(i) {
						nbuf = append(nbuf, cur[w])
					}
					next[i] = c.Step(i, cur[i], nbuf)
				}
			}(lo, hi)
		}
		wg.Wait()
		tr.States[t+1] = next
	}
	return tr, nil
}
