package sim

import (
	"fmt"

	"universalnet/internal/graph"
)

// Additional guest workloads: distance computation, prefix sums, and
// general cellular automata — the program shapes the paper's introduction
// motivates running on a universal machine.

// BFSDistance computes single-source distances by synchronous relaxation:
// state = current distance estimate (Inf = 2^62), source starts at 0; after
// ecc(source) steps every state equals the true BFS distance.
func BFSDistance(g *graph.Graph, source int) (*Computation, error) {
	const inf = State(1) << 62
	init := make([]State, g.N())
	for i := range init {
		init[i] = inf
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("sim: source %d out of range", source)
	}
	init[source] = 0
	step := func(_ int, self State, neighbors []State) State {
		best := self
		for _, s := range neighbors {
			if s+1 < best {
				best = s + 1
			}
		}
		return best
	}
	return NewComputation(g, init, step, "bfs-distance")
}

// PrefixSumRing computes prefix sums on a ring guest by the standard
// doubling-free systolic scheme: processor i accumulates the value of its
// predecessor each step, so after k steps it holds Σ_{j=i−k}^{i} v_j. After
// n−1 steps processor i holds the full rotation sum anchored at i+1 —
// checkable in closed form.
func PrefixSumRing(g *graph.Graph, values []State) (*Computation, error) {
	n := g.N()
	if len(values) != n {
		return nil, fmt.Errorf("sim: %d values for %d processors", len(values), n)
	}
	if !g.IsRegular(2) {
		return nil, fmt.Errorf("sim: prefix-sum workload needs a ring guest")
	}
	// State packs (accumulated sum, window start contribution) — we keep it
	// simple: state = accumulated sum, shifting in the predecessor's
	// ORIGINAL value is impossible without carrying it, so each state is a
	// pair packed into 64 bits: low 32 = original value, high 32 = sum.
	pack := func(orig, sum uint32) State { return State(uint64(sum)<<32 | uint64(orig)) }
	init := make([]State, n)
	for i, v := range values {
		if uint64(v) > 0xffffffff {
			return nil, fmt.Errorf("sim: value %d exceeds 32 bits", v)
		}
		init[i] = pack(uint32(v), uint32(v))
	}
	step := func(i int, self State, neighbors []State) State {
		// The ring adjacency of i is sorted; find the predecessor (i−1+n)%n.
		pred := (i - 1 + n) % n
		var predState State
		for k, w := range g.Neighbors(i) {
			if w == pred {
				predState = neighbors[k]
			}
		}
		// Shift: the predecessor's accumulated sum after t steps covers its
		// previous window; adding it would double-count. The systolic trick:
		// carry a "window sum" that grows by the predecessor's window sum of
		// the previous round is only correct for doubling schemes; here we
		// add the predecessor's ORIGINAL value shifted along the ring, which
		// requires the original to travel. We move the original value one
		// hop per step through the low word and accumulate it.
		travelling := uint32(uint64(predState) & 0xffffffff)
		sum := uint32(uint64(self)>>32) + travelling
		return pack(travelling, sum)
	}
	return NewComputation(g, init, step, "prefix-sum-ring")
}

// PrefixSumAt extracts the accumulated sum from a PrefixSumRing state.
func PrefixSumAt(s State) uint32 { return uint32(uint64(s) >> 32) }

// CellularAutomaton builds a totalistic binary CA on any guest: the next
// state is rule[min(count, len(rule)-1)] where count = self + Σ neighbors.
// rule is a lookup table over the closed-neighborhood live count.
func CellularAutomaton(g *graph.Graph, init []State, rule []State) (*Computation, error) {
	if len(rule) == 0 {
		return nil, fmt.Errorf("sim: empty rule table")
	}
	for _, s := range init {
		if s > 1 {
			return nil, fmt.Errorf("sim: CA states must be 0/1")
		}
	}
	table := append([]State(nil), rule...)
	step := func(_ int, self State, neighbors []State) State {
		count := int(self)
		for _, s := range neighbors {
			count += int(s)
		}
		if count >= len(table) {
			count = len(table) - 1
		}
		return table[count]
	}
	return NewComputation(g, init, step, "cellular-automaton")
}
