package sim

import (
	"math/rand"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewComputationValidation(t *testing.T) {
	g := ring(t, 4)
	if _, err := NewComputation(g, make([]State, 3), func(int, State, []State) State { return 0 }, "x"); err == nil {
		t.Error("wrong init length accepted")
	}
	if _, err := NewComputation(g, make([]State, 4), nil, "x"); err == nil {
		t.Error("nil transition accepted")
	}
}

func TestRunNegativeSteps(t *testing.T) {
	c := Broadcast(ring(t, 4), 0)
	if _, err := c.Run(-1); err == nil {
		t.Error("negative T accepted")
	}
}

func TestBroadcastCompletesAtEccentricity(t *testing.T) {
	g := ring(t, 10)
	c := Broadcast(g, 0)
	ecc, _ := g.Eccentricity(0)
	tr, err := c.Run(ecc)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tr.Final() {
		if s != 1 {
			t.Errorf("processor %d not reached after %d steps", i, ecc)
		}
	}
	// One step earlier, the antipode is still 0.
	tr2, err := c.Run(ecc - 1)
	if err != nil {
		t.Fatal(err)
	}
	zero := false
	for _, s := range tr2.Final() {
		if s == 0 {
			zero = true
		}
	}
	if !zero {
		t.Error("broadcast finished before eccentricity steps")
	}
}

func TestMaxConsensus(t *testing.T) {
	g := ring(t, 9)
	init := make([]State, 9)
	init[4] = 99
	init[7] = 42
	c, err := MaxConsensus(g, init)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(g.Diameter())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tr.Final() {
		if s != 99 {
			t.Errorf("processor %d = %d, want 99", i, s)
		}
	}
}

func TestTokenRing(t *testing.T) {
	n := 8
	c := TokenRing(ring(t, n))
	tr, err := c.Run(2 * n)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 2*n; tt++ {
		for i := 0; i < n; i++ {
			want := State(0)
			if i == tt%n {
				want = 1
			}
			if tr.At(i, tt) != want {
				t.Fatalf("time %d: processor %d = %d, want %d", tt, i, tr.At(i, tt), want)
			}
		}
	}
}

func TestJacobiSumCountsWalks(t *testing.T) {
	// On K3 with unit init, state after t steps = number of length-≤t walks:
	// each step multiplies total sum by 3 (self + 2 neighbors).
	g, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := JacobiSum(g, []State{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	want := State(81) // 3^4
	for i, s := range tr.Final() {
		if s != want {
			t.Errorf("processor %d = %d, want %d", i, s, want)
		}
	}
}

func TestMixModDeterministicAndSensitive(t *testing.T) {
	g := ring(t, 12)
	c1 := MixMod(g, rand.New(rand.NewSource(1)))
	c2 := MixMod(g, rand.New(rand.NewSource(1)))
	tr1, err := c1.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c2.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Checksum() != tr2.Checksum() {
		t.Error("same seed gave different traces")
	}
	c3 := MixMod(g, rand.New(rand.NewSource(2)))
	tr3, err := c3.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Checksum() == tr3.Checksum() {
		t.Error("different seeds gave equal checksums")
	}
}

func TestTraceAccessors(t *testing.T) {
	g := ring(t, 5)
	c := Broadcast(g, 2)
	tr, err := c.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.T() != 3 || tr.N() != 5 {
		t.Errorf("T=%d N=%d", tr.T(), tr.N())
	}
	if tr.At(2, 0) != 1 {
		t.Error("initial marker missing")
	}
	empty := &Trace{}
	if empty.N() != 0 {
		t.Error("empty trace N != 0")
	}
}

func TestVerifyTraceAcceptsRun(t *testing.T) {
	g := ring(t, 16)
	c := MixMod(g, rand.New(rand.NewSource(3)))
	tr, err := c.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyTrace(tr); err != nil {
		t.Error(err)
	}
}

func TestVerifyTraceRejectsCorruption(t *testing.T) {
	g := ring(t, 8)
	c := MixMod(g, rand.New(rand.NewSource(4)))
	tr, err := c.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	tr.States[3][2] ^= 1
	if err := c.VerifyTrace(tr); err == nil {
		t.Error("corrupted trace accepted")
	}
	// Corrupted initial state.
	tr2, _ := c.Run(2)
	tr2.States[0][0] ^= 1
	if err := c.VerifyTrace(tr2); err == nil {
		t.Error("corrupted init accepted")
	}
	// Wrong width.
	bad := &Trace{States: [][]State{make([]State, 7)}}
	if err := c.VerifyTrace(bad); err == nil {
		t.Error("wrong-width trace accepted")
	}
}

func TestRandomInit(t *testing.T) {
	init := RandomInit(32, rand.New(rand.NewSource(5)))
	if len(init) != 32 {
		t.Fatalf("len = %d", len(init))
	}
	allZero := true
	for _, s := range init {
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("random init all zero")
	}
}

func TestBFSDistanceWorkload(t *testing.T) {
	g, err := topology.Torus(36)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BFSDistance(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ecc, _ := g.Eccentricity(0)
	tr, err := c.Run(ecc)
	if err != nil {
		t.Fatal(err)
	}
	want := g.BFS(0)
	for i, s := range tr.Final() {
		if int(s) != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, s, want[i])
		}
	}
	if _, err := BFSDistance(g, -1); err == nil {
		t.Error("bad source accepted")
	}
}

func TestPrefixSumRingWorkload(t *testing.T) {
	n := 8
	g := ring(t, n)
	values := make([]State, n)
	for i := range values {
		values[i] = State(i + 1)
	}
	c, err := PrefixSumRing(g, values)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	tr, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint32(0)
		for j := 0; j <= k; j++ {
			want += uint32(values[(i-j+n)%n])
		}
		if got := PrefixSumAt(tr.At(i, k)); got != want {
			t.Errorf("prefix sum at %d after %d steps = %d, want %d", i, k, got, want)
		}
	}
	// Full rotation: every processor holds the total.
	trFull, err := c.Run(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	total := uint32(0)
	for _, v := range values {
		total += uint32(v)
	}
	for i := 0; i < n; i++ {
		if got := PrefixSumAt(trFull.At(i, n-1)); got != total {
			t.Errorf("total at %d = %d, want %d", i, got, total)
		}
	}
	// Guards.
	if _, err := PrefixSumRing(g, values[:3]); err == nil {
		t.Error("short values accepted")
	}
	star, err := topology.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrefixSumRing(star, make([]State, 5)); err == nil {
		t.Error("non-ring guest accepted")
	}
	big := make([]State, n)
	big[0] = State(1) << 40
	if _, err := PrefixSumRing(g, big); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestCellularAutomatonWorkload(t *testing.T) {
	g, err := topology.Torus(25)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]State, 25)
	init[12] = 1
	// Rule: alive iff count ≥ 1 (flood fill = broadcast).
	rule := []State{0, 1, 1, 1, 1, 1}
	c, err := CellularAutomaton(g, init, rule)
	if err != nil {
		t.Fatal(err)
	}
	ecc, _ := g.Eccentricity(12)
	tr, err := c.Run(ecc)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tr.Final() {
		if s != 1 {
			t.Errorf("cell %d dead after flood", i)
		}
	}
	// Guards.
	if _, err := CellularAutomaton(g, init, nil); err == nil {
		t.Error("empty rule accepted")
	}
	bad := make([]State, 25)
	bad[0] = 7
	if _, err := CellularAutomaton(g, bad, rule); err == nil {
		t.Error("non-binary init accepted")
	}
}

func TestCAWorkloadUnderSimulation(t *testing.T) {
	// The CA workload survives universal simulation (cross-package sanity
	// lives in internal/universal; here we just re-verify trace legality).
	g, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]State, 16)
	init[5] = 1
	c, err := CellularAutomaton(g, init, []State{0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyTrace(tr); err != nil {
		t.Error(err)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	g, err := topology.Torus(100)
	if err != nil {
		t.Fatal(err)
	}
	c := MixMod(g, rand.New(rand.NewSource(41)))
	serial, err := c.Run(6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7, 200} {
		par, err := c.RunParallel(6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Checksum() != serial.Checksum() {
			t.Errorf("workers=%d: parallel trace differs", workers)
		}
	}
	if _, err := c.RunParallel(-1, 2); err == nil {
		t.Error("negative T accepted")
	}
}
