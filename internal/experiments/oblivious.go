package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"universalnet/internal/core"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E14 — §2, last paragraph: simulating the complete network. The
// communication pattern is a fresh (unknown-in-advance) permutation every
// round, so the host must route ONLINE; Theorem 2.1 still gives slowdown
// O(route_M(n/m)) and the same (n/m)·log m shape as for bounded-degree
// guests.

// E14Row is one host-size point of the oblivious-simulation sweep.
type E14Row struct {
	M         int
	Load      int
	MeasuredS float64 // oblivious complete-network slowdown (online routing)
	BoundedS  float64 // bounded-degree guest slowdown on the same host (E1)
	PredictS  float64 // ⌈n/m⌉·log₂ m
	Ratio     float64 // MeasuredS / PredictS
}

// E14ObliviousComplete sweeps butterfly hosts simulating the complete
// network under random permutation patterns, verified against direct
// execution, side by side with a bounded-degree guest on the same host.
func E14ObliviousComplete(n, T int, dims []int, seed int64) ([]E14Row, error) {
	rng := rand.New(rand.NewSource(seed))
	init := sim.RandomInit(n, rng)
	pattern := universal.RandomObliviousPattern(rng, n, T)
	direct, err := universal.DirectObliviousRun(init, pattern)
	if err != nil {
		return nil, err
	}
	bounded, err := E1UpperBound(context.Background(), n, 4, T, dims, seed+1)
	if err != nil {
		return nil, err
	}
	boundedByM := make(map[int]float64)
	for _, r := range bounded {
		boundedByM[r.M] = r.MeasuredS
	}
	var rows []E14Row
	for _, d := range dims {
		host, err := universal.ButterflyHost(d)
		if err != nil {
			return nil, err
		}
		m := host.Graph.N()
		if m > n {
			continue
		}
		rep, err := (&universal.EmbeddingSimulator{Host: host}).RunOblivious(init, pattern)
		if err != nil {
			return nil, err
		}
		if rep.Trace.Checksum() != direct.Checksum() {
			return nil, fmt.Errorf("experiments: E14 diverged on %s", host.Name)
		}
		pred := core.UpperBoundSlowdown(n, m, 1)
		rows = append(rows, E14Row{
			M: m, Load: rep.MaxLoad,
			MeasuredS: rep.Slowdown,
			BoundedS:  boundedByM[m],
			PredictS:  pred,
			Ratio:     rep.Slowdown / pred,
		})
	}
	return rows, nil
}

// E14Table formats E14 rows.
func E14Table(n int, rows []E14Row) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E14 (§2): oblivious complete-network simulation, n=%d — online routing, same (n/m)·log m shape", n),
		Columns: []string{"m", "load", "s (complete K_n)", "s (4-regular)", "(n/m)·log2 m", "ratio"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.M), fmt.Sprint(r.Load),
			fmt.Sprintf("%.1f", r.MeasuredS), fmt.Sprintf("%.1f", r.BoundedS),
			fmt.Sprintf("%.1f", r.PredictS), fmt.Sprintf("%.2f", r.Ratio),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E16 — §1: dynamic embeddings increase efficiency iff m > n. Replication
// shrinks routing distances (toward the [14] constant-slowdown regime) at
// the price of multiplied compute; for m ≤ n replication can only hurt —
// exactly the asymmetry Theorem 3.1's tightness statement formalizes.

// E16Row is one replication point.
type E16Row struct {
	Regime       string // "m>n" or "m≤n"
	M, N, R      int
	AvgFetchDist float64
	RouteSteps   int
	Slowdown     float64
	Verified     bool
}

// E16Redundancy sweeps the replication factor on a large host (m > n) and a
// small host (m ≤ n), verifying every run against direct execution.
func E16Redundancy(n, T int, seed int64) ([]E16Row, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	big, err := universal.ButterflyHost(5) // m = 160
	if err != nil {
		return nil, err
	}
	small, err := universal.ButterflyHost(3) // m = 24
	if err != nil {
		return nil, err
	}
	var rows []E16Row
	run := func(regime string, host *universal.Host, r int) error {
		m := host.Graph.N()
		if r > m {
			return nil
		}
		reps, err := universal.PlaceReplicas(n, m, r, rand.New(rand.NewSource(seed+int64(r))))
		if err != nil {
			return err
		}
		rep, err := (&universal.RedundantSimulator{Host: host, Replicas: reps}).Run(comp, T)
		if err != nil {
			return err
		}
		rows = append(rows, E16Row{
			Regime: regime, M: m, N: n, R: r,
			AvgFetchDist: rep.AvgFetchDist,
			RouteSteps:   rep.RouteSteps,
			Slowdown:     rep.Slowdown,
			Verified:     rep.Trace.Checksum() == direct.Checksum(),
		})
		return nil
	}
	for _, r := range []int{1, 2, 4, 8, 16} {
		if err := run("m>n", big, r); err != nil {
			return nil, err
		}
	}
	for _, r := range []int{1, 2, 4} {
		if err := run("m≤n", small, r); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// E16Table formats E16 rows.
func E16Table(rows []E16Row) *Table {
	t := &Table{
		Title:   "E16 (§1): redundancy (dynamic embedding) — helps for m>n, hurts for m≤n",
		Columns: []string{"regime", "m", "n", "replicas r", "avg fetch dist", "route steps", "slowdown", "verified"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Regime, fmt.Sprint(r.M), fmt.Sprint(r.N), fmt.Sprint(r.R),
			fmt.Sprintf("%.2f", r.AvgFetchDist), fmt.Sprint(r.RouteSteps),
			fmt.Sprintf("%.1f", r.Slowdown), fmt.Sprint(r.Verified),
		})
	}
	return t
}
