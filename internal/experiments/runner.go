package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"universalnet/internal/obs"
)

// Runner executes a set of registered experiments on a bounded worker
// pool. Results come back in input order regardless of completion order,
// and every experiment gets a seed derived purely from (root seed, id), so
// a parallel run is byte-identical to a sequential one.
//
// Each experiment runs against its own obs.Registry (reachable from the
// body's context via obs.FromContext), whose frozen Snapshot lands in the
// Result. Per-experiment registries are never shared between concurrent
// experiments, and snapshots exclude wall-clock, so Result.Metrics is
// byte-identical across worker counts for a fixed seed.
type Runner struct {
	// Workers bounds the number of experiments in flight; 0 (or negative)
	// means GOMAXPROCS.
	Workers int
	// Timeout, when positive, caps the whole run; the context handed to
	// experiment bodies expires after it.
	Timeout time.Duration
	// FailFast cancels the remaining experiments as soon as one fails.
	// Otherwise the runner keeps going and collects every error.
	FailFast bool
	// Clock stamps Result.Start and Result.Duration; nil means the system
	// clock. Tests inject an obs.FakeClock for deterministic timestamps.
	Clock obs.Clock
	// Obs, when non-nil, is the run-level registry: every completed
	// experiment's snapshot is merged into it, giving `uninet serve` a live
	// aggregate view. Merging happens after each experiment completes, so
	// concurrent experiments never contend on one registry mid-run.
	Obs *obs.Registry
	// Trace, when non-nil, receives span events (experiment start/end and
	// everything the instrumented packages emit) from every experiment.
	Trace *obs.TraceSink
}

// clock resolves the runner clock.
func (r *Runner) clock() obs.Clock {
	if r.Clock != nil {
		return r.Clock
	}
	return obs.SystemClock()
}

// Run executes exps and returns one Result per experiment, in input
// order. A failed experiment's Result carries its error; the returned
// error joins all of them (nil when everything succeeded). Cancellation —
// an expired ctx, a Timeout, or FailFast after a failure — marks the
// not-yet-finished experiments with the context's error and returns
// promptly without leaking goroutines.
func (r *Runner) Run(ctx context.Context, exps []Experiment, cfg Config) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	results := make([]Result, len(exps))
	jobs := make(chan int, len(exps))
	for i := range exps {
		jobs <- i
	}
	close(jobs)

	if r.Obs != nil {
		r.Obs.Gauge("runner.workers").SetMax(int64(workers))
		r.Obs.Counter("runner.experiments").Add(int64(len(exps)))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = r.runOne(runCtx, exps[i], cfg)
				if results[i].Err != nil && r.FailFast {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	var errs []error
	for i := range results {
		if err := results[i].Err; err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", results[i].ID, err))
		}
	}
	return results, errors.Join(errs...)
}

// runOne executes a single experiment, stamping id, derived seed, start time
// and wall-clock duration (all read from the runner clock). A canceled
// context short-circuits without invoking the body, so queued work drains
// promptly after cancellation. A panicking experiment body is confined to
// its own Result — the panic becomes that experiment's Err (with a stack
// snippet) instead of killing the whole worker pool.
//
// The experiment body sees a fresh per-experiment registry via its context;
// its final snapshot becomes Result.Metrics and is merged into the run-level
// registry (if any) exactly once, after the body returns.
func (r *Runner) runOne(ctx context.Context, e Experiment, cfg Config) (res Result) {
	res = Result{ID: e.ID, Seed: cfg.SeedFor(e.ID)}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	clock := r.clock()
	reg := obs.New().SetClock(clock).SetTrace(r.Trace)
	ctx = obs.NewContext(ctx, reg)
	sp := reg.StartSpan("experiment", obs.KV("id", e.ID), obs.KV("seed", res.Seed))
	res.Start = clock.Now()
	defer func() {
		res.Duration = clock.Now().Sub(res.Start)
		if rec := recover(); rec != nil {
			res.Err = fmt.Errorf("experiment panicked: %v\n%s", rec, stackSnippet())
		}
		sp.End()
		res.Metrics = reg.Snapshot()
		if r.Obs != nil {
			r.Obs.Merge(res.Metrics)
			if res.Err != nil {
				r.Obs.Counter("runner.failed").Inc()
			} else {
				r.Obs.Counter("runner.completed").Inc()
			}
		}
	}()
	out, err := e.Run(ctx, cfg)
	res.Text = out.Text
	res.Payload = out.Payload
	res.Err = err
	return res
}

// stackSnippet returns the head of the current goroutine's stack, bounded so
// a panicking experiment cannot flood the joined error output.
func stackSnippet() []byte {
	const limit = 2048
	buf := debug.Stack()
	if len(buf) > limit {
		buf = append(buf[:limit], []byte("\n... (stack truncated)")...)
	}
	return buf
}
