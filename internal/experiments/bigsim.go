package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"universalnet/internal/core"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E24 — streaming scale: slowdown stays O((n/m)·log m) while protocol
// storage stays bounded. The materialized path holds T'·(ops/step) in
// memory; the streaming pipeline holds a pipe window plus a chunk budget,
// so the measured peak protocol bytes must stay far below the full
// encoding. The registry entry runs laptop-sized n for the deterministic
// suite; `uninet bigsim` drives the same path at n ∈ {10⁴, 10⁵, 10⁶}
// (EXPERIMENTS.md quotes both).

// E24Row is one streaming validation at guest size n.
type E24Row struct {
	N            int
	M            int
	HostSteps    int
	Ops          int64
	MeasuredS    float64
	PredictS     float64
	Ratio        float64
	EncodedBytes int64
	PeakBytes    int64
	SpillBytes   int64
}

// E24StreamingScale builds and validates the queued embedding schedule on a
// butterfly host through the streaming pipeline, one run per guest size,
// with a chunked archive on a deliberately tight memory budget so the
// spill path is exercised and the peak-resident bound is measured.
// buildShards > 1 runs the sharded protocol builder; the deterministic
// merge keeps the rows (and the runner's determinism gate) byte-identical
// to a serial build.
func E24StreamingScale(ctx context.Context, ns []int, guestDeg, hostDim, T, shards, buildShards int, seed int64) ([]E24Row, error) {
	reg := obs.FromContext(ctx)
	host, err := universal.ButterflyHost(hostDim)
	if err != nil {
		return nil, err
	}
	m := host.Graph.N()
	var rows []E24Row
	for _, n := range ns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if n < m {
			continue // §2 regime is m ≤ n
		}
		rng := rand.New(rand.NewSource(seed + int64(n)))
		guest, err := topology.RandomGuest(rng, n, guestDeg)
		if err != nil {
			return nil, err
		}
		chunks := pebble.NewChunkedLog(pebble.ChunkedLogOptions{
			TargetChunkBytes: 64 << 10,
			MemBudgetBytes:   256 << 10,
			Obs:              reg,
		})
		rep, err := universal.RunStreamingEmbedding(guest, host.Graph, nil, T, universal.StreamRunConfig{
			Shards:      shards,
			BuildShards: buildShards,
			Window:      8,
			Chunks:      chunks,
			Obs:         reg,
		})
		if cerr := chunks.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: E24 n=%d: %w", n, err)
		}
		pred := core.UpperBoundSlowdown(n, m, 1)
		rows = append(rows, E24Row{
			N:            n,
			M:            m,
			HostSteps:    rep.HostSteps,
			Ops:          rep.Ops,
			MeasuredS:    rep.Slowdown,
			PredictS:     pred,
			Ratio:        rep.Slowdown / pred,
			EncodedBytes: rep.EncodedBytes,
			PeakBytes:    rep.PeakChunkBytes,
			SpillBytes:   rep.SpilledBytes,
		})
	}
	return rows, nil
}

// E24Table formats E24 rows.
func E24Table(rows []E24Row) *Table {
	t := &Table{
		Title:   "E24 (streaming scale): slowdown s vs (n/m)·log m with bounded protocol memory",
		Columns: []string{"n", "m", "host steps", "ops", "measured s", "(n/m)·log2 m", "ratio", "encoded B", "peak B", "spilled B"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.M), fmt.Sprint(r.HostSteps), fmt.Sprint(r.Ops),
			fmt.Sprintf("%.1f", r.MeasuredS), fmt.Sprintf("%.1f", r.PredictS),
			fmt.Sprintf("%.2f", r.Ratio),
			fmt.Sprint(r.EncodedBytes), fmt.Sprint(r.PeakBytes), fmt.Sprint(r.SpillBytes),
		})
	}
	return t
}
