package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"universalnet/internal/obs"
	"universalnet/internal/pebble"
	"universalnet/internal/redblue"
	"universalnet/internal/topology"
)

// ---------------------------------------------------------------------------
// E26 — the red-blue memory × communication × slowdown surface
// (arXiv:2409.03898). The base engine prices every op identically; the
// costed replay adds the third axis: r slots of fast red memory per
// processor, shared blue memory, and chargeable I/O. The surface is swept
// over red budget × processor count × eviction policy. The qualitative
// trade-off to reproduce: compute, stores, and compulsory (cold) loads are
// invariant in r and policy, while capacity reloads — and with them total
// I/O and the priced makespan — grow monotonically as r shrinks, with
// Belady as the per-budget floor (pinned against the brute-force oracle in
// internal/redblue).

// E26Row is one priced replay at (m processors, red budget r, policy).
type E26Row struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	R         int     `json:"r"` // 0 = unbounded
	Policy    string  `json:"policy"`
	HostSteps int     `json:"host_steps"`
	Compute   int64   `json:"compute"`
	Stores    int64   `json:"stores"`
	ColdLoads int64   `json:"cold_loads"`
	Reloads   int64   `json:"reloads"`
	IOSteps   int64   `json:"io_steps"`
	PeakRed   int     `json:"peak_red"`
	Makespan  int64   `json:"makespan"`
	Slowdown  float64 `json:"costed_slowdown"`
}

// E26RedBlueSurface builds one embedding protocol per torus host size and
// replays it under every (red budget, eviction policy) pair. Budgets are
// given as offsets above the protocol's minimum feasible red (MinRed);
// offset -1 means unbounded. Deterministic: the random policy's eviction
// stream is seeded from the experiment seed.
func E26RedBlueSurface(ctx context.Context, n, deg, T int, hostSizes []int, rOffsets []int, seed int64) ([]E26Row, error) {
	reg := obs.FromContext(ctx)
	var rows []E26Row
	for _, hostN := range hostSizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(hostN)))
		guest, err := topology.RandomGuest(rng, n, deg)
		if err != nil {
			return nil, err
		}
		host, err := topology.Torus(hostN)
		if err != nil {
			return nil, err
		}
		pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
		if err != nil {
			return nil, fmt.Errorf("experiments: E26 m=%d: %w", hostN, err)
		}
		sp := pr.Spec()
		minR := redblue.MinRed(sp)
		for _, off := range rOffsets {
			r := 0
			if off >= 0 {
				r = minR + off
			}
			model := redblue.DefaultCostModel(r)
			for _, polName := range redblue.PolicyNames() {
				pol, err := redblue.NewPolicy(polName, sp, pr.Steps, uint64(seed)+uint64(hostN))
				if err != nil {
					return nil, err
				}
				costs, err := redblue.ReplayCosted(sp, pr.Source(), model, pol, redblue.Options{Obs: reg})
				if err != nil {
					return nil, fmt.Errorf("experiments: E26 m=%d r=%d %s: %w", hostN, r, polName, err)
				}
				rows = append(rows, E26Row{
					N: n, M: hostN, R: r, Policy: polName,
					HostSteps: costs.HostSteps,
					Compute:   costs.Compute,
					Stores:    costs.Stores,
					ColdLoads: costs.ColdLoads,
					Reloads:   costs.Reloads,
					IOSteps:   costs.IOSteps,
					PeakRed:   costs.PeakRed,
					Makespan:  costs.Makespan,
					Slowdown:  costs.CostedSlowdown(model, T),
				})
			}
		}
	}
	return rows, nil
}

// E26Table formats E26 rows.
func E26Table(rows []E26Row) *Table {
	t := &Table{
		Title:   "E26 (red-blue surface): I/O and priced slowdown vs red budget r, per eviction policy",
		Columns: []string{"n", "m", "r", "policy", "host steps", "compute", "stores", "cold loads", "reloads", "io", "peak red", "makespan", "costed s"},
	}
	for _, r := range rows {
		rs := fmt.Sprint(r.R)
		if r.R == 0 {
			rs = "∞"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.M), rs, r.Policy,
			fmt.Sprint(r.HostSteps), fmt.Sprint(r.Compute), fmt.Sprint(r.Stores),
			fmt.Sprint(r.ColdLoads), fmt.Sprint(r.Reloads), fmt.Sprint(r.IOSteps),
			fmt.Sprint(r.PeakRed), fmt.Sprint(r.Makespan), fmt.Sprintf("%.2f", r.Slowdown),
		})
	}
	return t
}
