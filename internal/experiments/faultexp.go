package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"universalnet/internal/faults"
	"universalnet/internal/obs"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// E23 — the measured trade-off curve under degradation. The paper's
// m·s = Ω(n·log m) is a statement about ideal hosts of size m; crashing k
// processors forces a live run from m down to m−k, so sweeping k (and a
// message-loss rate) measures how the slowdown climbs as the host shrinks —
// the trade-off's size axis traversed dynamically, with every recovered
// trace checked byte-identical against direct execution.

// E23Row is one cell of the fault sweep.
type E23Row struct {
	Scenario   string          `json:"scenario"` // "sweep" rows or a named scenario
	Crashes    int             `json:"crashes"`
	LossRate   float64         `json:"loss_rate"`
	M          int             `json:"m"`
	Survivors  int             `json:"survivors"`
	N          int             `json:"n"`
	R          int             `json:"r"` // replication degree
	Slowdown   float64         `json:"slowdown"`
	RouteSteps int             `json:"route_steps"`
	Recovered  bool            `json:"recovered"` // run completed (no ErrUnrecoverable)
	Verified   bool            `json:"verified"`  // trace byte-identical to direct execution
	Counters   faults.Counters `json:"counters"`
}

// E23FaultTolerance sweeps crash count × loss rate on a replicated
// butterfly host (m = 64), or — when scenario names one of the
// faults.Scenario presets — runs the guest once under that scenario against
// a fault-free baseline. Rows are fully determined by (seed, scenario,
// faultSeed): byte-identical across worker counts and re-runs.
func E23FaultTolerance(ctx context.Context, n, r, T int, seed int64, scenario string, faultSeed int64) ([]E23Row, error) {
	reg := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	host, err := universal.ButterflyHost(4) // m = 64
	if err != nil {
		return nil, err
	}
	m := host.Graph.N()
	reps, err := universal.PlaceReplicas(n, m, r, rng)
	if err != nil {
		return nil, err
	}

	runPlan := func(label string, plan *faults.Plan, replicas [][]int, rr int) (E23Row, error) {
		row := E23Row{Scenario: label, M: m, N: n, R: rr, Survivors: m}
		if plan != nil {
			row.Crashes = len(plan.Crashes)
			row.LossRate = plan.DropRate
		}
		rep, err := (&universal.FaultTolerantSimulator{Host: host, Replicas: replicas, Plan: plan, Obs: reg}).Run(comp, T)
		if err != nil {
			if errors.Is(err, universal.ErrUnrecoverable) {
				return row, nil // Recovered=false: the checked failure mode
			}
			return row, err
		}
		row.Recovered = true
		row.Verified = rep.Trace.Checksum() == direct.Checksum()
		row.Survivors = rep.SurvivingHosts
		row.Slowdown = rep.Slowdown
		row.RouteSteps = rep.RouteSteps
		row.Counters = rep.Counters
		return row, nil
	}

	var rows []E23Row
	if scenario != "" {
		for _, name := range []string{"none", scenario} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			plan, err := faults.Scenario(name, faultSeed, m, T)
			if err != nil {
				return nil, err
			}
			row, err := runPlan(name, plan, reps, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if name == scenario {
				break // scenario == "none" needs no second run
			}
		}
		return rows, nil
	}

	// Default sweep: k crashes at mid-run (distinct hosts drawn from the
	// derived seed) × message-loss rates. The k = 0, loss = 0 cell is the
	// ideal-host baseline the degraded cells are read against.
	crashSteps := T/2 + 1
	for _, k := range []int{0, 1, 2, 4, 8} {
		var crashes []faults.Crash
		perm := rand.New(rand.NewSource(seed + 101)).Perm(m)
		for i := 0; i < k; i++ {
			crashes = append(crashes, faults.Crash{Host: perm[i], Step: crashSteps})
		}
		for _, loss := range []float64{0, 0.05, 0.15} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			plan := &faults.Plan{
				Name:     fmt.Sprintf("k=%d,loss=%.2f", k, loss),
				Seed:     faultSeed + int64(k),
				Crashes:  crashes,
				DropRate: loss,
				Onset:    1,
			}
			row, err := runPlan("sweep", plan, reps, r)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	// The unrecoverable demonstration: without replication (r = 1), any
	// crash of a populated host must yield ErrUnrecoverable — never a wrong
	// trace.
	perm := rand.New(rand.NewSource(seed + 101)).Perm(m)
	bare := &faults.Plan{
		Name:    "r=1,k=1",
		Seed:    faultSeed,
		Crashes: []faults.Crash{{Host: perm[0] % n, Step: crashSteps}},
	}
	row, err := runPlan("r=1", bare, nil, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// E23Table formats the fault sweep.
func E23Table(rows []E23Row) *Table {
	t := &Table{
		Title: "E23: slowdown under faults — crashing k hosts walks the trade-off from m to m−k",
		Columns: []string{"scenario", "k", "loss", "m→survivors", "r", "slowdown",
			"route steps", "retried", "failover", "reembed", "recovered", "verified"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scenario, fmt.Sprint(r.Crashes), fmt.Sprintf("%.2f", r.LossRate),
			fmt.Sprintf("%d→%d", r.M, r.Survivors), fmt.Sprint(r.R),
			fmt.Sprintf("%.1f", r.Slowdown), fmt.Sprint(r.RouteSteps),
			fmt.Sprint(r.Counters.Retried), fmt.Sprint(r.Counters.FailedOver),
			fmt.Sprint(r.Counters.ReEmbedded), fmt.Sprint(r.Recovered), fmt.Sprint(r.Verified),
		})
	}
	return t
}

// E23Counters aggregates the fault-event counters of a run's rows for the
// JSON payload.
func E23Counters(rows []E23Row) faults.Counters {
	var total faults.Counters
	for _, r := range rows {
		total.Add(r.Counters)
	}
	return total
}
