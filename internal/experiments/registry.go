package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"universalnet/internal/obs"
)

// Config carries the suite-wide inputs of a run. Every experiment derives
// its own seed from the root seed (SeedFor), so the execution order —
// sequential or parallel, full suite or subset — never changes an
// experiment's output.
type Config struct {
	// Seed is the root seed of the run; per-experiment seeds are derived
	// from it with SeedFor.
	Seed int64
	// FaultScenario optionally names a faults.Scenario preset; experiments
	// wired for fault injection (currently E23) run under it instead of
	// their default fault sweep. Empty means no override.
	FaultScenario string
	// FaultSeed drives the scenario's deterministic fault schedule.
	FaultSeed int64
}

// splitmix64 is the SplitMix64 mixing function (Steele et al.) — a
// bijective avalanche mix used to decorrelate derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeedFor derives the per-experiment seed for id from the root seed by
// folding the id bytes through SplitMix64. The derivation is pure, so
// running E7 alone, in a subset, or in a parallel suite always hands it
// the same seed.
func (c Config) SeedFor(id string) int64 {
	h := splitmix64(uint64(c.Seed))
	for _, b := range []byte(id) {
		h = splitmix64(h ^ uint64(b))
	}
	// Keep derived seeds non-negative: rand.NewSource treats the seed as a
	// plain int64 and several experiment parameters add small offsets.
	return int64(h &^ (1 << 63))
}

// Result is the machine-readable outcome of one experiment run.
type Result struct {
	ID       string         // experiment id, e.g. "E7"
	Seed     int64          // derived per-experiment seed actually used
	Text     string         // rendered table / summary, as printed by the report
	Payload  map[string]any // structured rows/results for JSON consumers
	Start    time.Time      // when the Run call began (runner clock)
	Duration time.Duration  // wall-clock time of the Run call (runner clock)
	Metrics  *obs.Snapshot  // frozen per-experiment metrics; nil only when the body never ran
	Err      error          // non-nil if the experiment failed (or was canceled)
}

// Experiment is one registered entry of the evaluation suite: an id, the
// paper claim it measures, the modules it exercises, and a runnable body.
type Experiment struct {
	ID      string
	Claim   string
	Modules string
	Run     func(ctx context.Context, cfg Config) (Result, error)
}

// Registry returns the full evaluation suite (E1–E24 plus E26; E25 is the
// CI-only chaos soak) with the default
// parameters of EXPERIMENTS.md, in id order. The slice is freshly built on
// every call, so callers may reorder or subset it freely.
func Registry() []Experiment {
	return []Experiment{
		{
			ID:      "E1",
			Claim:   "Thm 2.1: butterfly hosts simulate any guest with slowdown O((n/m)·log m)",
			Modules: "universal,sim,topology,routing",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E1UpperBound(ctx, 512, 4, 3, []int{3, 4, 5, 6}, cfg.SeedFor("E1"))
				if err != nil {
					return Result{}, err
				}
				text := E1Table(512, rows).String()
				if fig, err := PlotE1(512, rows); err == nil {
					text += "\n\n" + fig
				}
				return Result{Text: text, Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E2",
			Claim:   "Thm 3.1: the inefficiency lower bound k = Ω(log m)",
			Modules: "core",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E2LowerBoundCurve([]float64{10, 16, 24, 32, 48, 64, 1e6, 2e6, 4e6})
				if err != nil {
					return Result{}, err
				}
				text := E2Table(rows).String()
				if fig, err := PlotE2(rows); err == nil {
					text += "\n\n" + fig
				}
				return Result{Text: text, Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E3",
			Claim:   "Fig. 1 / Lemma 3.10: dependency trees are binary, depth O(a), size O(a²)",
			Modules: "depgraph,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E3DependencyTrees([]int{4, 6, 8}, cfg.SeedFor("E3"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E3Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E4",
			Claim:   "Lemma 3.12: critical times |Z_S| ≥ (T−D)/2 and the root-weight inequalities",
			Modules: "pebble,depgraph,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				res, err := E4CriticalTimes(64, 4, 3, 16, 24, cfg.SeedFor("E4"))
				if err != nil {
					return Result{}, err
				}
				text := fmt.Sprintf("E4 (Lemma 3.12): |Z_S|=%d ≥ %d; inequalities violated: (1)=%v (2)=%v; k=%.1f",
					res.ZSize, res.ZLowerBound, res.Ineq1Violated, res.Ineq2Violated, res.K)
				return Result{Text: text, Payload: map[string]any{"result": res}}, nil
			},
		},
		{
			ID:      "E5",
			Claim:   "Lemma 3.15 / Prop. 3.17: the generating-pebble frontier forces time gaps",
			Modules: "pebble,expander,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				res, err := E5Frontier(64, 4, 3, 8, 0.4, cfg.SeedFor("E5"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E5Table(res).String(), Payload: map[string]any{"result": res}}, nil
			},
		},
		{
			ID:      "E6",
			Claim:   "§1 remark: tree-cached host of size 2^{O(t)}·n gives constant slowdown c+2",
			Modules: "universal,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E6TreeCache(8, 2, []int{2, 3, 4, 5}, cfg.SeedFor("E6"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E6Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E7",
			Claim:   "§1 upper trade-off: s·log ℓ = O(log n), both endpoints realized",
			Modules: "pebble,universal,sim,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E7Tradeoff(ctx, 24, 3, 3, 3, 6, cfg.SeedFor("E7"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E7Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E8",
			Claim:   "§2 routing substrate: offline Beneš O(log m) vs online greedy; h–h → ≤h permutations",
			Modules: "routing",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E8OfflineRouting(ctx, []int{3, 4, 5, 6, 7}, 3, cfg.SeedFor("E8"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E8Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E9",
			Claim:   "Lemma 3.3: fragment multiplicity X ≤ Π C(|D_i|, c/2) via edge inclusion",
			Modules: "pebble,core,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				res, err := E9FragmentMultiplicity(ctx, 64, 4, 3, 16, 6, 3, cfg.SeedFor("E9"))
				if err != nil {
					return Result{}, err
				}
				text := fmt.Sprintf("E9 (Lemma 3.3): edge inclusion=%v; max|D_i|=%d; log2 X ≤ %.1f vs log2|U[G0]| ≥ %.1f",
					res.EdgeInclOK, res.MaxD, res.Log2XBound, res.Log2GuestLB)
				return Result{Text: text, Payload: map[string]any{"result": res}}, nil
			},
		},
		{
			ID:      "E10",
			Claim:   "Def. 3.9: G₀ has degree ≤ 12 and certified (α,β) vertex expansion",
			Modules: "expander,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E10G0Expansion(ctx, []int{4, 6, 8}, 0.25, cfg.SeedFor("E10"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E10Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E11",
			Claim:   "§1 embeddings: static embeddings pay Ω(log n) dilation where simulations do not",
			Modules: "embedding,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E11Embeddings(ctx, 64, 4, cfg.SeedFor("E11"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E11Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E12",
			Claim:   "Ablation: the Thm 2.1 slowdown across routing substrates",
			Modules: "routing,universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E12RouterAblation(ctx, 128, 4, 3, cfg.SeedFor("E12"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E12Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E13",
			Claim:   "Ablation: static placement matters only for local guests — universal hosts must route",
			Modules: "embedding,pebble,universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E13AssignmentAblation(ctx, 64, 3, cfg.SeedFor("E13"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E13Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E14",
			Claim:   "§2: oblivious complete-network simulation keeps the (n/m)·log m shape online",
			Modules: "universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E14ObliviousComplete(256, 3, []int{3, 4, 5}, cfg.SeedFor("E14"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E14Table(256, rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E15",
			Claim:   "Ablation: protocol builders — phase-based vs pipelined vs multicast",
			Modules: "pebble,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E15BuilderAblation(ctx, cfg.SeedFor("E15"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E15Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E16",
			Claim:   "§1: replication (dynamic embedding) helps iff m > n",
			Modules: "universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E16Redundancy(48, 3, cfg.SeedFor("E16"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E16Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E17",
			Claim:   "§1 previous work: bisection/bandwidth bounds collapse on expander hosts; counting does not",
			Modules: "expander,core,universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E17Baselines(ctx, 256, 3, cfg.SeedFor("E17"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E17Table(256, rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E18",
			Claim:   "Thm 2.1 proof: the offline Beneš construction vs the online butterfly",
			Modules: "universal,routing,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E18OfflineTheorem21(ctx, 128, 3, []int{3, 4, 5}, cfg.SeedFor("E18"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E18Table(128, rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E19",
			Claim:   "§2: route_G(h) across topologies — the slowdown's raw material",
			Modules: "routing,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E19RouteScaling(ctx, []int{1, 2, 4, 8}, 3, cfg.SeedFor("E19"))
				if err != nil {
					return Result{}, err
				}
				text := E19Table(rows).String()
				if fig, err := PlotE19(rows); err == nil {
					text += "\n\n" + fig
				}
				return Result{Text: text, Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E20",
			Claim:   "[17]: butterfly ↔ multibutterfly simulation asymmetry",
			Modules: "topology,universal,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E20Multibutterfly(ctx, 4, 3, cfg.SeedFor("E20"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E20Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E21",
			Claim:   "Ablation: protocol minimization — removable no-op traffic per builder",
			Modules: "pebble,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E21MinimizerAblation(ctx, cfg.SeedFor("E21"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E21Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E22",
			Claim:   "[15] remark: polynomial vs exponential spreading classifies the guests",
			Modules: "graph,topology",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E22Spreading(ctx, 6, cfg.SeedFor("E22"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E22Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E23",
			Claim:   "Dynamic trade-off: crashing k hosts walks m → m−k; recovery is checked, never silent",
			Modules: "faults,universal,routing,sim",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E23FaultTolerance(ctx, 24, 3, 6, cfg.SeedFor("E23"), cfg.FaultScenario, cfg.FaultSeed)
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E23Table(rows).String(), Payload: map[string]any{
					"rows":     rows,
					"counters": E23Counters(rows).Map(),
				}}, nil
			},
		},
		{
			ID:      "E24",
			Claim:   "Streaming pipeline: slowdown O((n/m)·log m) holds while peak protocol memory stays bounded by the chunk budget, not by T'·ops",
			Modules: "pebble,universal,topology,obs",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E24StreamingScale(ctx, []int{2000, 6000}, 3, 4, 2, 4, 2, cfg.SeedFor("E24"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E24Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
		{
			ID:      "E26",
			Claim:   "Red-blue surface (arXiv:2409.03898): shrinking red memory strictly grows I/O while compute stays fixed; Belady floors every budget",
			Modules: "redblue,pebble,topology,obs",
			Run: func(ctx context.Context, cfg Config) (Result, error) {
				rows, err := E26RedBlueSurface(ctx, 48, 2, 3, []int{9, 16}, []int{0, 2, 4, -1}, cfg.SeedFor("E26"))
				if err != nil {
					return Result{}, err
				}
				return Result{Text: E26Table(rows).String(), Payload: map[string]any{"rows": rows}}, nil
			},
		},
	}
}

// Select returns the registry entries whose IDs appear in ids (case-
// insensitive), in registry order. Empty ids selects the whole suite.
// Unknown or duplicate ids are an error — a typo must not silently shrink
// the suite.
func Select(ids []string) ([]Experiment, error) {
	all := Registry()
	if len(ids) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		id = strings.ToUpper(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		if want[id] {
			return nil, fmt.Errorf("experiments: duplicate id %q", id)
		}
		want[id] = true
	}
	var sel []Experiment
	for _, e := range all {
		if want[e.ID] {
			sel = append(sel, e)
			delete(want, e.ID)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("experiments: unknown id(s) %s (want E1..E24 or E26; E25 is the CI-only chaos soak)", strings.Join(unknown, ","))
	}
	return sel, nil
}
