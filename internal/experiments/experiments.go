// Package experiments drives the reproduction experiments E1–E10 of
// DESIGN.md: each function runs one experiment end to end and returns typed
// rows that the benchmark harness (bench_test.go), the CLI (cmd/uninet) and
// EXPERIMENTS.md all consume. The paper has no evaluation tables of its own —
// these experiments turn each theorem, lemma and the single figure into a
// measured artifact.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"universalnet/internal/core"
	"universalnet/internal/obs"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// Table is a generic formatted result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, cell := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E1 — Theorem 2.1 / §2: butterfly of size m is n-universal with slowdown
// O((n/m)·log m).

// E1Row is one host-size point of the upper-bound sweep.
type E1Row struct {
	HostName  string
	M         int
	Load      int     // ⌈n/m⌉
	MeasuredS float64 // measured slowdown
	PredictS  float64 // ⌈n/m⌉·log₂ m
	Ratio     float64 // MeasuredS / PredictS — should be ≈ constant
}

// E1UpperBound sweeps butterfly hosts for a fixed random guest and measures
// the slowdown of the Theorem 2.1 simulation, checked against direct
// execution. A registry attached to ctx (obs.FromContext) receives the
// engine, routing and slowdown-histogram metrics of every sweep point.
func E1UpperBound(ctx context.Context, n, guestDeg, T int, dims []int, seed int64) ([]E1Row, error) {
	reg := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, guestDeg)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	comp.Obs = reg
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	var rows []E1Row
	for _, d := range dims {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		host, err := universal.ButterflyHost(d)
		if err != nil {
			return nil, err
		}
		m := host.Graph.N()
		if m > n {
			continue // §2 regime is m ≤ n
		}
		rep, err := (&universal.EmbeddingSimulator{Host: host, Obs: reg}).Run(comp, T)
		if err != nil {
			return nil, err
		}
		if rep.Trace.Checksum() != direct.Checksum() {
			return nil, fmt.Errorf("experiments: E1 simulation diverged on %s", host.Name)
		}
		pred := core.UpperBoundSlowdown(n, m, 1)
		rows = append(rows, E1Row{
			HostName:  host.Name,
			M:         m,
			Load:      rep.MaxLoad,
			MeasuredS: rep.Slowdown,
			PredictS:  pred,
			Ratio:     rep.Slowdown / pred,
		})
	}
	return rows, nil
}

// E1Table formats E1 rows.
func E1Table(n int, rows []E1Row) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E1 (Thm 2.1): butterfly hosts simulating a random guest, n=%d — s vs (n/m)·log m", n),
		Columns: []string{"host", "m", "load", "measured s", "(n/m)·log2 m", "ratio"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.HostName, fmt.Sprint(r.M), fmt.Sprint(r.Load),
			fmt.Sprintf("%.1f", r.MeasuredS), fmt.Sprintf("%.1f", r.PredictS),
			fmt.Sprintf("%.2f", r.Ratio),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E2 — Theorem 3.1: the lower-bound curve k(m) = Ω(log m).

// E2Row is one point of the lower-bound curve.
type E2Row struct {
	Log2M    float64
	PaperK   float64 // bound with the paper's constants
	ToyK     float64 // bound with unit constants (shape at small sizes)
	SlopeRef float64 // γ(c−12)/4 / r · log₂ m, the asymptotic line
}

// E2LowerBoundCurve evaluates Theorem 3.1 numerically across host sizes.
func E2LowerBoundCurve(log2ms []float64) ([]E2Row, error) {
	paper := core.Params{}.Defaults()
	toy := core.ToyParams()
	var rows []E2Row
	for _, lm := range log2ms {
		pk, err := paper.KLowerBound(lm)
		if err != nil {
			return nil, err
		}
		tk, err := toy.KLowerBound(lm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E2Row{
			Log2M:    lm,
			PaperK:   pk,
			ToyK:     tk,
			SlopeRef: paper.Gamma() * float64(paper.C-12) / 4 * lm / paper.R,
		})
	}
	return rows, nil
}

// E2Table formats E2 rows.
func E2Table(rows []E2Row) *Table {
	t := &Table{
		Title:   "E2 (Thm 3.1): lower bound on inefficiency k = Ω(log m)",
		Columns: []string{"log2 m", "k (paper consts)", "k (toy consts)", "asymptote (paper)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", r.Log2M), fmt.Sprintf("%.2f", r.PaperK),
			fmt.Sprintf("%.2f", r.ToyK), fmt.Sprintf("%.3f", r.SlopeRef),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Trade-off table (abstract): m·s vs n·log m, both regimes.

// TradeoffTable renders the core trade-off rows for a guest size.
func TradeoffTable(p core.Params, n int, ms []int) (*Table, error) {
	rows, err := p.TradeoffTable(n, ms)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Size/slowdown trade-off, n=%d: m·s = Ω(n·log m) vs Theorem 2.1 upper bound", n),
		Columns: []string{"m", "k lower", "s lower", "s upper (BF)", "m·s lower", "n·log2 m"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.M), fmt.Sprintf("%.2f", r.LowerK), fmt.Sprintf("%.2f", r.LowerS),
			fmt.Sprintf("%.1f", r.UpperS), fmt.Sprintf("%.0f", r.ProductMS),
			fmt.Sprintf("%.0f", r.NLogM),
		})
	}
	return t, nil
}

// GeomMean returns the geometric mean of xs (0 for empty input).
func GeomMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
