package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"universalnet/internal/core"
	"universalnet/internal/expander"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E7 — the §1 upper trade-off s·log ℓ = O(log n): both endpoints realized.

// E7Row is one point on the size/slowdown trade-off curve. The two
// construction rows are measured; the analytic row is the [14] curve this
// paper quotes (no construction for intermediate ℓ appears in the paper).
type E7Row struct {
	Kind     string // "embedding (ℓ=1)", "tree-cache (ℓ=2^{O(t)})", "analytic"
	N        int
	Ell      float64 // host size factor ℓ = m/n
	Slowdown float64
	Product  float64 // s·log₂(1+ℓ) — the trade-off invariant, O(log n)
}

// E7Tradeoff measures the two constructive endpoints of the trade-off and
// tabulates the analytic curve between them.
func E7Tradeoff(ctx context.Context, n, c, depth, hostDim, T int, seed int64) ([]E7Row, error) {
	reg := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(seed))
	var rows []E7Row

	// Endpoint ℓ ≈ 1: static embedding on a butterfly of size ≈ n
	// (Theorem 2.1): s = Θ(log n).
	guest, err := topology.RandomGuest(rng, n, c)
	if err != nil {
		return nil, err
	}
	host, err := topology.WrappedButterfly(hostDim)
	if err != nil {
		return nil, err
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		return nil, err
	}
	pr.Obs = reg
	if _, err := pr.Validate(); err != nil {
		return nil, err
	}
	ell := float64(host.N()) / float64(n)
	s := pr.Slowdown()
	rows = append(rows, E7Row{
		Kind: "embedding (ℓ≈1)", N: n, Ell: ell, Slowdown: s,
		Product: s * log2p1(ell),
	})

	// Endpoint ℓ = 2^{O(t)}: tree-cached host, s = c+2 = O(1).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	th, err := buildTreeCacheFor(n, c, depth)
	if err != nil {
		return nil, err
	}
	tpr, err := th.SimulateProtocol(guest)
	if err != nil {
		return nil, err
	}
	tpr.Obs = reg
	if _, err := tpr.Validate(); err != nil {
		return nil, err
	}
	tell := float64(th.M()) / float64(n)
	ts := tpr.Slowdown()
	rows = append(rows, E7Row{
		Kind: "tree-cache (ℓ=2^{O(t)})", N: n, Ell: tell, Slowdown: ts,
		Product: ts * log2p1(tell),
	})

	// Intermediate candidates: the rounded tree-cache host (compute t₀
	// steps at slowdown c+2, refresh between rounds). The measurement is a
	// NEGATIVE result worth having: naive whole-ball refreshes cost
	// Θ((c+1)^{t₀}) routing per round, outpacing the 1/t₀ amortization — so
	// the slowdown RISES with t₀. This is precisely the obstruction [14]'s
	// dynamic pebble reuse overcomes; the middle of the trade-off needs it.
	// Use a larger power-of-two guest so the t₀-balls stay well below n
	// (saturated balls hide the amortization).
	if nPow2 := 64; true {
		roundGuest, err := topology.RandomGuest(rng, nPow2, c)
		if err != nil {
			return nil, err
		}
		roundComp := sim.MixMod(roundGuest, rng)
		for _, t0 := range []int{1, 2, 3} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rh, err := universal.BuildRoundedTreeHost(nPow2, c, t0)
			if err != nil {
				continue // size guard at large t₀
			}
			rep, err := rh.Run(roundComp, 3*t0*2)
			if err != nil {
				return nil, err
			}
			rell := float64(rh.M()) / float64(nPow2)
			rows = append(rows, E7Row{
				Kind: fmt.Sprintf("rounded tree-cache (t0=%d)", t0),
				N:    nPow2, Ell: rell, Slowdown: rep.Slowdown,
				Product: rep.Slowdown * log2p1(rell),
			})
		}
	}

	// Analytic curve s·log ℓ = log n (the [14] bound quoted in §1).
	for _, e := range []float64{2, 4, 16, 64, 256} {
		sa := log2f(n) / log2p1(e)
		rows = append(rows, E7Row{Kind: "analytic [14]", N: n, Ell: e, Slowdown: sa, Product: sa * log2p1(e)})
	}
	return rows, nil
}

// nearestPow2AtMost returns the largest power of two ≤ x (0 for x < 1).
func nearestPow2AtMost(x int) int {
	p := 1
	for p*2 <= x {
		p *= 2
	}
	if x < 1 {
		return 0
	}
	return p
}

// E7Table formats E7 rows.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		Title:   "E7 (§1): size n·ℓ vs slowdown — trade-off s·log ℓ = O(log n)",
		Columns: []string{"construction", "n", "ℓ = m/n", "slowdown s", "s·log2(1+ℓ)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Kind, fmt.Sprint(r.N), fmt.Sprintf("%.1f", r.Ell),
			fmt.Sprintf("%.1f", r.Slowdown), fmt.Sprintf("%.1f", r.Product),
		})
	}
	return t
}

// buildTreeCacheFor keeps the tree-cache host below the size guard by
// shrinking the depth if needed.
func buildTreeCacheFor(n, c, depth int) (*universal.TreeCachedHost, error) {
	for d := depth; d >= 1; d-- {
		h, err := universal.BuildTreeCachedHost(n, c, d)
		if err == nil {
			return h, nil
		}
	}
	return nil, fmt.Errorf("experiments: no feasible tree-cache depth for n=%d c=%d", n, c)
}

// log2f returns log₂ x for an int.
func log2f(x int) float64 { return math.Log2(float64(x)) }

// log2p1 returns log₂(1+x), keeping the trade-off product finite at ℓ ≈ 1.
func log2p1(x float64) float64 { return math.Log2(1 + x) }

// ---------------------------------------------------------------------------
// E8 — §2 routing substrate: offline Beneš vs online greedy.

// E8Row is one dimension point of the offline-routing experiment.
type E8Row struct {
	D            int
	NRows        int
	OfflineSteps int     // 2d−1, guaranteed
	OnlineSteps  int     // greedy on the same permutation (butterfly graph)
	HRounds      int     // rounds needed for a random h–h problem
	H            int     // the h
	HSteps       int     // rounds·(2d−1)
	PerLogM      float64 // OfflineSteps / log₂(m)
}

// E8OfflineRouting compares offline Beneš permutation routing with online
// greedy routing on the butterfly, and measures the h-relation decomposition
// of §2.
func E8OfflineRouting(ctx context.Context, dims []int, h int, seed int64) ([]E8Row, error) {
	reg := obs.FromContext(ctx)
	rng := rand.New(rand.NewSource(seed))
	var rows []E8Row
	for _, d := range dims {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nrows := 1 << d
		perm := rng.Perm(nrows)
		off, err := routing.OfflinePermutationSteps(d, perm)
		if err != nil {
			return nil, err
		}
		// Online comparison: greedy on the Beneš graph, level-0 to last-level.
		bg, err := routing.BenesGraph(d)
		if err != nil {
			return nil, err
		}
		last := routing.BenesLevels(d) - 1
		pairs := make([]routing.Pair, nrows)
		for i, p := range perm {
			pairs[i] = routing.Pair{
				Src: routing.BenesNode(d, 0, i),
				Dst: routing.BenesNode(d, last, p),
			}
		}
		res, err := (&routing.GreedyRouter{Mode: routing.MultiPort, Obs: reg}).Route(bg, &routing.Problem{N: bg.N(), Pairs: pairs})
		if err != nil {
			return nil, err
		}
		hh := routing.RandomHH(rng, nrows, h)
		steps, rounds, err := routing.OfflineScheduleHH(d, hh)
		if err != nil {
			return nil, err
		}
		m := bg.N()
		rows = append(rows, E8Row{
			D: d, NRows: nrows, OfflineSteps: off, OnlineSteps: res.Steps,
			HRounds: rounds, H: h, HSteps: steps,
			PerLogM: float64(off) / log2f(m),
		})
	}
	return rows, nil
}

// E8Table formats E8 rows.
func E8Table(rows []E8Row) *Table {
	t := &Table{
		Title:   "E8 (§2): offline Beneš routing O(log m) vs online greedy; h–h → ≤h permutations",
		Columns: []string{"d", "rows", "offline steps", "online steps", "h", "rounds", "h–h steps", "offline/log2 m"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.D), fmt.Sprint(r.NRows), fmt.Sprint(r.OfflineSteps),
			fmt.Sprint(r.OnlineSteps), fmt.Sprint(r.H), fmt.Sprint(r.HRounds),
			fmt.Sprint(r.HSteps), fmt.Sprintf("%.2f", r.PerLogM),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E9 — Lemma 3.3: fragments bound the residual edges.

// E9Result verifies the combinatorial core of Lemma 3.3 on real protocols.
type E9Result struct {
	N, M, C     int
	Guests      int     // guests sampled
	EdgeInclOK  bool    // every guest edge of P_i landed inside D_i
	MaxD        int     // largest |D_i| observed
	Log2XBound  float64 // Σ log₂ C(|D_i|, (c−12)/2) for the worst fragment
	Log2GuestLB float64 // per-guest count lower bound for comparison
}

// E9FragmentMultiplicity samples guests from 𝒰[G₀], extracts fragments from
// real protocols and verifies that the neighbors of every P_i lie inside
// D_i — the fact that drives the multiplicity bound X ≤ Π C(|D_i|, c/2).
func E9FragmentMultiplicity(ctx context.Context, n, blockSide, hostDim, c, T, guests int, seed int64) (*E9Result, error) {
	g0, err := topology.BuildG0WithBlockSide(n, blockSide, seed)
	if err != nil {
		return nil, err
	}
	host, err := topology.WrappedButterfly(hostDim)
	if err != nil {
		return nil, err
	}
	res := &E9Result{N: n, M: host.N(), C: c, EdgeInclOK: true}
	rng := rand.New(rand.NewSource(seed + 7))
	params := core.Params{C: c}.Defaults()
	for gi := 0; gi < guests; gi++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		guest, err := g0.SampleGuest(rng, c)
		if err != nil {
			return nil, err
		}
		pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
		if err != nil {
			return nil, err
		}
		st, err := pr.Validate()
		if err != nil {
			return nil, err
		}
		t0 := T / 2
		frag, err := st.ExtractFragment(t0, st.PickLightest(t0))
		if err != nil {
			return nil, err
		}
		if err := frag.Validate(); err != nil {
			return nil, err
		}
		dSizes := make([]int, n)
		for i := 0; i < n; i++ {
			dSizes[i] = len(frag.D[i])
			if dSizes[i] > res.MaxD {
				res.MaxD = dSizes[i]
			}
			// Lemma 3.3's core: every neighbor of P_i must appear in D_i.
			dset := make(map[int]bool, dSizes[i])
			for _, x := range frag.D[i] {
				dset[x] = true
			}
			for _, j := range guest.Neighbors(i) {
				if !dset[j] {
					res.EdgeInclOK = false
				}
			}
		}
		if lb := core.Log2MultiplicityExact(dSizes, c-12); lb > res.Log2XBound {
			res.Log2XBound = lb
		}
		res.Guests++
	}
	res.Log2GuestLB = params.Log2Guests(n)
	return res, nil
}

// ---------------------------------------------------------------------------
// E10 — Definition 3.9: G₀'s structure and expansion.

// E10Row certifies one G₀ instance.
type E10Row struct {
	N          int
	BlockSide  int
	MaxDegree  int
	Lambda2    float64 // spectral λ₂ of the expander overlay
	BetaTanner float64 // certified vertex expansion at α
	BetaSample float64 // sampled upper bound
	Alpha      float64
}

// E10G0Expansion builds G₀ across sizes and certifies the expander overlay.
func E10G0Expansion(ctx context.Context, blockSides []int, alpha float64, seed int64) ([]E10Row, error) {
	var rows []E10Row
	for _, p := range blockSides {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := topology.NextValidG0Size(4*p*p, p)
		g0, err := topology.BuildG0WithBlockSide(n, p, seed)
		if err != nil {
			return nil, err
		}
		if err := g0.Validate(); err != nil {
			return nil, err
		}
		cert, err := expander.Certify(g0.Expander, alpha, 300, 400, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E10Row{
			N: n, BlockSide: p, MaxDegree: g0.Graph.MaxDegree(),
			Lambda2: cert.Lambda2, BetaTanner: cert.BetaTanner,
			BetaSample: cert.BetaSampled, Alpha: alpha,
		})
	}
	return rows, nil
}

// E10Table formats E10 rows.
func E10Table(rows []E10Row) *Table {
	t := &Table{
		Title:   "E10 (Def. 3.9): G₀ = multitorus ∪ 4-regular expander — degree ≤ 12, (α,β)-expansion",
		Columns: []string{"n", "p=2a", "maxdeg", "λ2", "β (Tanner)", "β (sampled)", "α"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.BlockSide), fmt.Sprint(r.MaxDegree),
			fmt.Sprintf("%.3f", r.Lambda2), fmt.Sprintf("%.2f", r.BetaTanner),
			fmt.Sprintf("%.2f", r.BetaSample), fmt.Sprintf("%.2f", r.Alpha),
		})
	}
	return t
}
