package experiments

import (
	"fmt"
	"io"
)

// RunAll executes the full evaluation suite E1–E22 with the default
// parameters and writes every table (or scalar summary) to w — the
// single-command regeneration of EXPERIMENTS.md's data. It stops at the
// first failing experiment so a regression is loud.
func RunAll(w io.Writer, seed int64) error {
	section := func(s string) { fmt.Fprintf(w, "\n%s\n", s) }

	if rows, err := E1UpperBound(512, 4, 3, []int{3, 4, 5, 6}, seed); err != nil {
		return fmt.Errorf("E1: %w", err)
	} else {
		section(E1Table(512, rows).String())
		if fig, err := PlotE1(512, rows); err == nil {
			section(fig)
		}
	}
	if rows, err := E2LowerBoundCurve([]float64{10, 16, 24, 32, 48, 64, 1e6, 2e6, 4e6}); err != nil {
		return fmt.Errorf("E2: %w", err)
	} else {
		section(E2Table(rows).String())
		if fig, err := PlotE2(rows); err == nil {
			section(fig)
		}
	}
	if rows, err := E3DependencyTrees([]int{4, 6, 8}, seed); err != nil {
		return fmt.Errorf("E3: %w", err)
	} else {
		section(E3Table(rows).String())
	}
	if res, err := E4CriticalTimes(64, 4, 3, 16, 24, seed); err != nil {
		return fmt.Errorf("E4: %w", err)
	} else {
		section(fmt.Sprintf("E4 (Lemma 3.12): |Z_S|=%d ≥ %d; inequalities violated: (1)=%v (2)=%v; k=%.1f",
			res.ZSize, res.ZLowerBound, res.Ineq1Violated, res.Ineq2Violated, res.K))
	}
	if res, err := E5Frontier(64, 4, 3, 8, 0.4, seed); err != nil {
		return fmt.Errorf("E5: %w", err)
	} else {
		section(E5Table(res).String())
	}
	if rows, err := E6TreeCache(8, 2, []int{2, 3, 4, 5}, seed); err != nil {
		return fmt.Errorf("E6: %w", err)
	} else {
		section(E6Table(rows).String())
	}
	if rows, err := E7Tradeoff(24, 3, 3, 3, 6, seed); err != nil {
		return fmt.Errorf("E7: %w", err)
	} else {
		section(E7Table(rows).String())
	}
	if rows, err := E8OfflineRouting([]int{3, 4, 5, 6, 7}, 3, seed); err != nil {
		return fmt.Errorf("E8: %w", err)
	} else {
		section(E8Table(rows).String())
	}
	if res, err := E9FragmentMultiplicity(64, 4, 3, 16, 6, 3, seed); err != nil {
		return fmt.Errorf("E9: %w", err)
	} else {
		section(fmt.Sprintf("E9 (Lemma 3.3): edge inclusion=%v; max|D_i|=%d; log2 X ≤ %.1f vs log2|U[G0]| ≥ %.1f",
			res.EdgeInclOK, res.MaxD, res.Log2XBound, res.Log2GuestLB))
	}
	if rows, err := E10G0Expansion([]int{4, 6, 8}, 0.25, seed); err != nil {
		return fmt.Errorf("E10: %w", err)
	} else {
		section(E10Table(rows).String())
	}
	if rows, err := E11Embeddings(64, 4, seed); err != nil {
		return fmt.Errorf("E11: %w", err)
	} else {
		section(E11Table(rows).String())
	}
	if rows, err := E12RouterAblation(128, 4, 3, seed); err != nil {
		return fmt.Errorf("E12: %w", err)
	} else {
		section(E12Table(rows).String())
	}
	if rows, err := E13AssignmentAblation(64, 3, seed); err != nil {
		return fmt.Errorf("E13: %w", err)
	} else {
		section(E13Table(rows).String())
	}
	if rows, err := E14ObliviousComplete(256, 3, []int{3, 4, 5}, seed); err != nil {
		return fmt.Errorf("E14: %w", err)
	} else {
		section(E14Table(256, rows).String())
	}
	if rows, err := E15BuilderAblation(seed); err != nil {
		return fmt.Errorf("E15: %w", err)
	} else {
		section(E15Table(rows).String())
	}
	if rows, err := E16Redundancy(48, 3, seed); err != nil {
		return fmt.Errorf("E16: %w", err)
	} else {
		section(E16Table(rows).String())
	}
	if rows, err := E17Baselines(256, 3, seed); err != nil {
		return fmt.Errorf("E17: %w", err)
	} else {
		section(E17Table(256, rows).String())
	}
	if rows, err := E18OfflineTheorem21(128, 3, []int{3, 4, 5}, seed); err != nil {
		return fmt.Errorf("E18: %w", err)
	} else {
		section(E18Table(128, rows).String())
	}
	if rows, err := E19RouteScaling([]int{1, 2, 4, 8}, 3, seed); err != nil {
		return fmt.Errorf("E19: %w", err)
	} else {
		section(E19Table(rows).String())
		if fig, err := PlotE19(rows); err == nil {
			section(fig)
		}
	}
	if rows, err := E20Multibutterfly(4, 3, seed); err != nil {
		return fmt.Errorf("E20: %w", err)
	} else {
		section(E20Table(rows).String())
	}
	if rows, err := E21MinimizerAblation(seed); err != nil {
		return fmt.Errorf("E21: %w", err)
	} else {
		section(E21Table(rows).String())
	}
	if rows, err := E22Spreading(6, seed); err != nil {
		return fmt.Errorf("E22: %w", err)
	} else {
		section(E22Table(rows).String())
	}
	return nil
}
