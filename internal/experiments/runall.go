package experiments

import (
	"context"
	"fmt"
	"io"
)

// RunAll executes the full evaluation suite E1–E22 sequentially with the
// default parameters and writes every table (or scalar summary) to w — the
// single-command regeneration of EXPERIMENTS.md's data. It is a thin
// wrapper over the Runner (workers=1, fail-fast); callers that want
// parallelism, subsets, timeouts or structured results use the Runner and
// Registry directly.
func RunAll(w io.Writer, seed int64) error {
	return WriteReport(context.Background(), w, Registry(), Config{Seed: seed}, 1)
}

// WriteReport runs exps through a fail-fast Runner with the given worker
// count and writes each experiment's rendered text to w in registry order.
// Per-experiment seeds are derived from cfg.Seed, so the output is
// byte-identical for every worker count.
func WriteReport(ctx context.Context, w io.Writer, exps []Experiment, cfg Config, workers int) error {
	r := &Runner{Workers: workers, FailFast: true}
	results, err := r.Run(ctx, exps, cfg)
	if err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(w, "\n%s\n", res.Text); err != nil {
			return err
		}
	}
	return nil
}
