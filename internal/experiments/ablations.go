package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"universalnet/internal/embedding"
	"universalnet/internal/graph"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E11 — static embeddings vs the paper's dynamic simulations (§1): the
// [4,3] contrast. A static embedding of a mesh into a butterfly suffers
// dilation Ω(log n); the dynamic (Theorem 2.1-style) simulation is bounded
// by (n/m)·log m regardless of the guest's shape.

// E11Row compares placement strategies for one (guest, host) pair.
type E11Row struct {
	Guest      string
	Host       string
	Strategy   string // random / greedy
	Load       int
	Dilation   int
	Congestion int
	StaticLB   int // max(load, dilation): a lower bound on embedding slowdown
}

// E11Embeddings measures load/dilation/congestion of static embeddings of a
// mesh and a random guest into a wrapped butterfly.
func E11Embeddings(ctx context.Context, meshN, hostDim int, seed int64) ([]E11Row, error) {
	host, err := topology.WrappedButterfly(hostDim)
	if err != nil {
		return nil, err
	}
	mesh, err := topology.Mesh(meshN)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	randGuest, err := topology.RandomGuest(rng, meshN, 4)
	if err != nil {
		return nil, err
	}
	hostName := fmt.Sprintf("butterfly(d=%d)", hostDim)
	var rows []E11Row
	for _, spec := range []struct {
		name string
		g    *graph.Graph
	}{{"mesh", mesh}, {"random-4-regular", randGuest}} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, strat := range []struct {
			name  string
			build func() (*embedding.Embedding, error)
		}{
			{"random", func() (*embedding.Embedding, error) { return embedding.Random(spec.g, host, rng) }},
			{"greedy", func() (*embedding.Embedding, error) { return embedding.Greedy(spec.g, host, rng) }},
		} {
			emb, err := strat.build()
			if err != nil {
				return nil, err
			}
			if err := emb.Validate(); err != nil {
				return nil, err
			}
			rows = append(rows, E11Row{
				Guest: spec.name, Host: hostName, Strategy: strat.name,
				Load: emb.Load(), Dilation: emb.Dilation(), Congestion: emb.Congestion(),
				StaticLB: emb.SlowdownLowerBound(),
			})
		}
	}
	return rows, nil
}

// E11Table formats E11 rows.
func E11Table(rows []E11Row) *Table {
	t := &Table{
		Title:   "E11 (§1 embeddings): static embedding quality into the butterfly — dilation is the bottleneck",
		Columns: []string{"guest", "host", "strategy", "load", "dilation", "congestion", "static s ≥"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Guest, r.Host, r.Strategy, fmt.Sprint(r.Load),
			fmt.Sprint(r.Dilation), fmt.Sprint(r.Congestion), fmt.Sprint(r.StaticLB),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E12 — router ablation: the Theorem 2.1 slowdown through different routing
// substrates on the same host and guest.

// E12Row is one router's measurement.
type E12Row struct {
	Router    string
	HostSteps int
	Slowdown  float64
	Verified  bool
}

// E12RouterAblation runs the embedding simulation with each router on a
// torus host of size 64.
func E12RouterAblation(ctx context.Context, n, deg, T int, seed int64) ([]E12Row, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, deg)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	hostGraph, err := topology.Torus(64)
	if err != nil {
		return nil, err
	}
	routers := []struct {
		name string
		r    routing.Router
	}{
		{"greedy(min-index)", &routing.GreedyRouter{Mode: routing.MultiPort, Seed: seed}},
		{"greedy(random-hop)", &routing.GreedyRouter{Mode: routing.MultiPort, Policy: routing.RandomNextHop, Seed: seed}},
		{"greedy(single-port)", &routing.GreedyRouter{Mode: routing.SinglePort, Seed: seed}},
		{"dimension-order", &routing.DimensionOrderRouter{N: 8, Wrap: true, Mode: routing.MultiPort}},
		{"valiant", &routing.ValiantRouter{Mode: routing.MultiPort, Seed: seed}},
	}
	var rows []E12Row
	for _, spec := range routers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		host := &universal.Host{Name: spec.name, Graph: hostGraph, Router: spec.r}
		rep, err := (&universal.EmbeddingSimulator{Host: host}).Run(comp, T)
		if err != nil {
			return nil, fmt.Errorf("experiments: router %s: %w", spec.name, err)
		}
		rows = append(rows, E12Row{
			Router:    spec.name,
			HostSteps: rep.HostSteps,
			Slowdown:  rep.Slowdown,
			Verified:  rep.Trace.Checksum() == direct.Checksum(),
		})
	}
	return rows, nil
}

// E12Table formats E12 rows.
func E12Table(rows []E12Row) *Table {
	t := &Table{
		Title:   "E12 (ablation): routing substrate under the Theorem 2.1 simulation (torus host, m=64)",
		Columns: []string{"router", "host steps", "slowdown", "verified"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Router, fmt.Sprint(r.HostSteps), fmt.Sprintf("%.1f", r.Slowdown), fmt.Sprint(r.Verified),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E13 — assignment ablation: does the static placement matter? For a
// locality-friendly guest (torus on torus), a locality-aware placement cuts
// the routing work; for a random guest no placement helps — which is
// exactly why universal networks must route, not embed.

// E13Row is one (guest, assignment) measurement.
type E13Row struct {
	Guest      string
	Assignment string
	Slowdown   float64
	RouteSteps int
	Verified   bool
}

// E13AssignmentAblation compares balanced, shuffled, and locality (greedy
// embedding) placements on a torus host.
func E13AssignmentAblation(ctx context.Context, n, T int, seed int64) ([]E13Row, error) {
	host, err := universal.TorusHost(64)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	torusGuest, err := topology.Torus(n)
	if err != nil {
		return nil, err
	}
	randGuest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		return nil, err
	}
	var rows []E13Row
	for _, gspec := range []struct {
		name string
		g    *graph.Graph
	}{{"torus", torusGuest}, {"random-4-regular", randGuest}} {
		comp := sim.MixMod(gspec.g, rng)
		direct, err := comp.Run(T)
		if err != nil {
			return nil, err
		}
		greedyEmb, err := embedding.Greedy(gspec.g, host.Graph, rng)
		if err != nil {
			return nil, err
		}
		for _, aspec := range []struct {
			name string
			f    []int
		}{
			{"balanced (i mod m)", pebble.BalancedAssignment(n, 64)},
			{"shuffled", pebble.RandomizedAssignment(n, 64, seed)},
			{"greedy-locality", greedyEmb.F},
		} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rep, err := (&universal.EmbeddingSimulator{Host: host, F: aspec.f}).Run(comp, T)
			if err != nil {
				return nil, fmt.Errorf("experiments: assignment %s: %w", aspec.name, err)
			}
			rows = append(rows, E13Row{
				Guest: gspec.name, Assignment: aspec.name,
				Slowdown: rep.Slowdown, RouteSteps: rep.RouteSteps,
				Verified: rep.Trace.Checksum() == direct.Checksum(),
			})
		}
	}
	return rows, nil
}

// E13Table formats E13 rows.
func E13Table(rows []E13Row) *Table {
	t := &Table{
		Title:   "E13 (ablation): static placement under the Theorem 2.1 simulation (torus host, m=64)",
		Columns: []string{"guest", "assignment", "slowdown", "route steps", "verified"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Guest, r.Assignment, fmt.Sprintf("%.1f", r.Slowdown),
			fmt.Sprint(r.RouteSteps), fmt.Sprint(r.Verified),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E15 — protocol-builder ablation: phase-based vs pipelined scheduling of
// the Theorem 2.1 protocol under the one-op-per-processor model.

// E15Row compares the two builders on one instance.
type E15Row struct {
	N, M, T    int
	PhasedK    float64
	PipelinedK float64
	MulticastK float64
	Ratio      float64 // pipelined / phased host steps
	MultiRatio float64 // multicast / phased host steps
}

// E15BuilderAblation runs both protocol builders across load regimes.
func E15BuilderAblation(ctx context.Context, seed int64) ([]E15Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []E15Row
	for _, tc := range []struct{ n, hostDim, T int }{
		{32, 3, 4}, {64, 3, 3}, {96, 3, 4}, {48, 4, 4}, {128, 4, 4},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		guest, err := topology.RandomGuest(rng, tc.n, 4)
		if err != nil {
			return nil, err
		}
		host, err := topology.WrappedButterfly(tc.hostDim)
		if err != nil {
			return nil, err
		}
		phased, err := pebble.BuildEmbeddingProtocol(guest, host, nil, tc.T)
		if err != nil {
			return nil, err
		}
		if _, err := phased.Validate(); err != nil {
			return nil, err
		}
		piped, err := pebble.BuildPipelinedProtocol(guest, host, nil, tc.T)
		if err != nil {
			return nil, err
		}
		if _, err := piped.Validate(); err != nil {
			return nil, err
		}
		multi, err := pebble.BuildMulticastProtocol(guest, host, nil, tc.T)
		if err != nil {
			return nil, err
		}
		if _, err := multi.Validate(); err != nil {
			return nil, err
		}
		rows = append(rows, E15Row{
			N: tc.n, M: host.N(), T: tc.T,
			PhasedK:    phased.Inefficiency(),
			PipelinedK: piped.Inefficiency(),
			MulticastK: multi.Inefficiency(),
			Ratio:      float64(piped.HostSteps()) / float64(phased.HostSteps()),
			MultiRatio: float64(multi.HostSteps()) / float64(phased.HostSteps()),
		})
	}
	return rows, nil
}

// E15Table formats E15 rows.
func E15Table(rows []E15Row) *Table {
	t := &Table{
		Title:   "E15 (ablation): protocol builder — phase-based vs pipelined vs multicast",
		Columns: []string{"n", "m", "T", "k phased", "k pipelined", "k multicast", "piped/phase", "multi/phase"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.M), fmt.Sprint(r.T),
			fmt.Sprintf("%.1f", r.PhasedK), fmt.Sprintf("%.1f", r.PipelinedK),
			fmt.Sprintf("%.1f", r.MulticastK),
			fmt.Sprintf("%.2f", r.Ratio), fmt.Sprintf("%.2f", r.MultiRatio),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E21 — minimizer ablation: how much of a protocol's cost is removable
// no-op traffic? MinimizeProtocol drops copies the receiver already holds
// and compacts empty steps; the k reduction measures the builders'
// scheduling slack.

// E21Row compares a protocol before and after minimization.
type E21Row struct {
	Builder    string
	N, M, T    int
	KBefore    float64
	KAfter     float64
	OpsDropped int
}

// E21MinimizerAblation minimizes protocols from both builders.
func E21MinimizerAblation(ctx context.Context, seed int64) ([]E21Row, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, 48, 4)
	if err != nil {
		return nil, err
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		return nil, err
	}
	const T = 4
	builders := []struct {
		name  string
		build func() (*pebble.Protocol, error)
	}{
		{"phase-based", func() (*pebble.Protocol, error) { return pebble.BuildEmbeddingProtocol(guest, host, nil, T) }},
		{"pipelined", func() (*pebble.Protocol, error) { return pebble.BuildPipelinedProtocol(guest, host, nil, T) }},
	}
	var rows []E21Row
	for _, b := range builders {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pr, err := b.build()
		if err != nil {
			return nil, err
		}
		if _, err := pr.Validate(); err != nil {
			return nil, err
		}
		min, dropped, err := pebble.MinimizeProtocol(pr)
		if err != nil {
			return nil, err
		}
		if _, err := min.Validate(); err != nil {
			return nil, err
		}
		comp := sim.MixMod(guest, rng)
		if err := pebble.VerifyCarries(min, comp); err != nil {
			return nil, fmt.Errorf("experiments: E21 %s minimized protocol broken: %w", b.name, err)
		}
		rows = append(rows, E21Row{
			Builder: b.name, N: guest.N(), M: host.N(), T: T,
			KBefore: pr.Inefficiency(), KAfter: min.Inefficiency(),
			OpsDropped: dropped,
		})
	}
	return rows, nil
}

// E21Table formats E21 rows.
func E21Table(rows []E21Row) *Table {
	t := &Table{
		Title:   "E21 (ablation): protocol minimization — removable no-op traffic per builder",
		Columns: []string{"builder", "n", "m", "T", "k before", "k after", "ops dropped"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Builder, fmt.Sprint(r.N), fmt.Sprint(r.M), fmt.Sprint(r.T),
			fmt.Sprintf("%.1f", r.KBefore), fmt.Sprintf("%.1f", r.KAfter),
			fmt.Sprint(r.OpsDropped),
		})
	}
	return t
}
