package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestE11Embeddings(t *testing.T) {
	rows, err := E11Embeddings(context.Background(), 64, 4, 41) // butterfly m=64, mesh n=64
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	var meshGreedy, meshRandom *E11Row
	for i := range rows {
		if rows[i].Guest == "mesh" && rows[i].Strategy == "greedy" {
			meshGreedy = &rows[i]
		}
		if rows[i].Guest == "mesh" && rows[i].Strategy == "random" {
			meshRandom = &rows[i]
		}
	}
	if meshGreedy == nil || meshRandom == nil {
		t.Fatal("mesh rows missing")
	}
	// Locality helps the mesh: greedy dilation must not exceed random.
	if meshGreedy.Dilation > meshRandom.Dilation {
		t.Errorf("greedy dilation %d above random %d", meshGreedy.Dilation, meshRandom.Dilation)
	}
	for _, r := range rows {
		if r.Load < 1 || r.Dilation < 1 || r.Congestion < 1 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.StaticLB < r.Load || r.StaticLB < r.Dilation {
			t.Errorf("static lower bound inconsistent: %+v", r)
		}
	}
	if E11Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE12RouterAblation(t *testing.T) {
	rows, err := E12RouterAblation(context.Background(), 128, 4, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var multi, single float64
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("router %s produced a wrong trace", r.Router)
		}
		if r.Slowdown <= 0 {
			t.Errorf("router %s slowdown %f", r.Router, r.Slowdown)
		}
		switch r.Router {
		case "greedy(min-index)":
			multi = r.Slowdown
		case "greedy(single-port)":
			single = r.Slowdown
		}
	}
	if single < multi {
		t.Errorf("single-port faster than multi-port: %f vs %f", single, multi)
	}
	if E12Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE13AssignmentAblation(t *testing.T) {
	rows, err := E13AssignmentAblation(context.Background(), 64, 3, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var torusGreedy, torusShuffled *E13Row
	for i := range rows {
		if !rows[i].Verified {
			t.Errorf("row %+v not verified", rows[i])
		}
		if rows[i].Guest == "torus" {
			switch rows[i].Assignment {
			case "greedy-locality":
				torusGreedy = &rows[i]
			case "shuffled":
				torusShuffled = &rows[i]
			}
		}
	}
	if torusGreedy == nil || torusShuffled == nil {
		t.Fatal("torus rows missing")
	}
	// Locality-aware placement of a torus guest on a torus host must not
	// route more than a shuffled placement.
	if torusGreedy.RouteSteps > torusShuffled.RouteSteps {
		t.Errorf("greedy placement routes more than shuffled: %d vs %d",
			torusGreedy.RouteSteps, torusShuffled.RouteSteps)
	}
	if E13Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE14ObliviousComplete(t *testing.T) {
	rows, err := E14ObliviousComplete(256, 3, []int{3, 4, 5}, 53)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Ratio <= 0 {
			t.Errorf("bad ratio: %+v", r)
		}
		if i > 0 && r.MeasuredS >= rows[i-1].MeasuredS {
			t.Errorf("slowdown not decreasing with m: %+v then %+v", rows[i-1], r)
		}
	}
	if E14Table(256, rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE15BuilderAblation(t *testing.T) {
	rows, err := E15BuilderAblation(context.Background(), 59)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PhasedK <= 0 || r.PipelinedK <= 0 || r.MulticastK <= 0 {
			t.Errorf("bad inefficiencies: %+v", r)
		}
		if r.Ratio < 0.7 || r.Ratio > 1.3 {
			t.Errorf("ratio %f outside the documented band: %+v", r.Ratio, r)
		}
		// Multicast never does worse than unicast phase-based scheduling.
		if r.MultiRatio > 1.0+1e-9 {
			t.Errorf("multicast slower than phase-based: %+v", r)
		}
	}
	if E15Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE16Redundancy(t *testing.T) {
	rows, err := E16Redundancy(48, 3, 61)
	if err != nil {
		t.Fatal(err)
	}
	var bigR1, bigRmax, smallR1, smallRmax *E16Row
	for i := range rows {
		r := &rows[i]
		if !r.Verified {
			t.Errorf("row %+v not verified", r)
		}
		if r.Regime == "m>n" {
			if r.R == 1 {
				bigR1 = r
			}
			if bigRmax == nil || r.R > bigRmax.R {
				bigRmax = r
			}
		} else {
			if r.R == 1 {
				smallR1 = r
			}
			if smallRmax == nil || r.R > smallRmax.R {
				smallRmax = r
			}
		}
	}
	if bigR1 == nil || bigRmax == nil || smallR1 == nil || smallRmax == nil {
		t.Fatal("rows missing")
	}
	// m > n: replication shrinks fetch distances.
	if bigRmax.AvgFetchDist >= bigR1.AvgFetchDist {
		t.Errorf("m>n: fetch distance did not shrink: r=1 %.2f vs r=%d %.2f",
			bigR1.AvgFetchDist, bigRmax.R, bigRmax.AvgFetchDist)
	}
	// m ≤ n: replication does not improve the slowdown.
	if smallRmax.Slowdown < smallR1.Slowdown {
		t.Errorf("m≤n: replication improved slowdown (%.1f < %.1f) — contradicts tightness",
			smallRmax.Slowdown, smallR1.Slowdown)
	}
	if E16Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE17Baselines(t *testing.T) {
	rows, err := E17Baselines(context.Background(), 256, 3, 67)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var torusRow, expRow *E17Row
	for i := range rows {
		r := &rows[i]
		if r.MeasuredS < r.LoadBound {
			t.Errorf("%s: measured %f below the load bound %f", r.Host, r.MeasuredS, r.LoadBound)
		}
		if r.BisectUB_M <= 0 {
			t.Errorf("%s: degenerate host cut %d", r.Host, r.BisectUB_M)
		}
		if strings.HasPrefix(r.Host, "torus") {
			torusRow = r
		}
		if strings.HasPrefix(r.Host, "expander") {
			expRow = r
		}
	}
	if torusRow == nil || expRow == nil {
		t.Fatal("hosts missing")
	}
	// The paper's point: bisection-style arguments separate meshes (bound
	// above load) but collapse on expander hosts (bound near load), while
	// the counting bound exceeds the load bound everywhere.
	if torusRow.BisectSEst <= torusRow.LoadBound {
		t.Errorf("torus bisection estimate %f does not beat load %f", torusRow.BisectSEst, torusRow.LoadBound)
	}
	if expRow.BisectSEst >= torusRow.BisectSEst {
		t.Errorf("bisection argument not weaker on the expander host: %f vs torus %f",
			expRow.BisectSEst, torusRow.BisectSEst)
	}
	// The counting bound never drops below load and — unlike the bisection
	// argument — is identical across host topologies of equal size: it
	// applies to expander hosts with full force (the paper's whole point).
	for _, r := range rows {
		if r.CountingS < r.LoadBound {
			t.Errorf("%s: counting bound %f below load %f", r.Host, r.CountingS, r.LoadBound)
		}
		if r.CountingS != rows[0].CountingS {
			t.Errorf("counting bound host-dependent: %f vs %f", r.CountingS, rows[0].CountingS)
		}
	}
	if E17Table(256, rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE18OfflineTheorem21(t *testing.T) {
	rows, err := E18OfflineTheorem21(context.Background(), 128, 3, []int{3, 4, 5}, 71)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerStep < 2*r.D {
			t.Errorf("d=%d: per-step %d below one traversal", r.D, r.PerStep)
		}
		if r.RoundsUsed < 1 {
			t.Errorf("d=%d: no rounds", r.D)
		}
		if r.OfflineS < 1 || r.OnlineS < 1 {
			t.Errorf("degenerate slowdowns: %+v", r)
		}
	}
	if E18Table(128, rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE19RouteScaling(t *testing.T) {
	rows, err := E19RouteScaling(context.Background(), []int{1, 2, 4}, 2, 73)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTopo := map[string][]E19Row{}
	for _, r := range rows {
		byTopo[r.Topology] = append(byTopo[r.Topology], r)
		if r.Steps < 1 {
			t.Errorf("degenerate: %+v", r)
		}
	}
	// Monotone in h per topology.
	for topo, rs := range byTopo {
		for i := 1; i < len(rs); i++ {
			if rs[i].Steps < rs[i-1].Steps {
				t.Errorf("%s: route_G not monotone in h: %+v", topo, rs)
			}
		}
	}
	// The ring pays its Θ(m) diameter: slower than the butterfly at h=4.
	ring4, bf4 := 0, 0
	for _, r := range rows {
		if r.H == 4 && r.Topology == "ring" {
			ring4 = r.Steps
		}
		if r.H == 4 && r.Topology == "butterfly" {
			bf4 = r.Steps
		}
	}
	if ring4 <= bf4 {
		t.Errorf("ring (%d) not slower than butterfly (%d) at h=4", ring4, bf4)
	}
	if E19Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE20Multibutterfly(t *testing.T) {
	rows, err := E20Multibutterfly(context.Background(), 4, 3, 79)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	find := func(g, h string) *E20Row {
		for i := range rows {
			if rows[i].Guest == g && rows[i].HostName == h {
				return &rows[i]
			}
		}
		return nil
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("unverified: %+v", r)
		}
	}
	mbOnBF := find("multibutterfly", "butterfly")
	bfOnMB := find("butterfly", "multibutterfly")
	if mbOnBF == nil || bfOnMB == nil {
		t.Fatal("cross rows missing")
	}
	// The [17] asymmetry: hosting the multibutterfly on the butterfly costs
	// at least as much as the reverse direction.
	if mbOnBF.Slowdown < bfOnMB.Slowdown {
		t.Errorf("asymmetry inverted: MB-on-BF %.1f < BF-on-MB %.1f",
			mbOnBF.Slowdown, bfOnMB.Slowdown)
	}
	if E20Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE21MinimizerAblation(t *testing.T) {
	rows, err := E21MinimizerAblation(context.Background(), 83)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.KAfter > r.KBefore+1e-9 {
			t.Errorf("%s: minimization worsened k: %.2f → %.2f", r.Builder, r.KBefore, r.KAfter)
		}
		if r.OpsDropped < 0 {
			t.Errorf("%s: negative drop count", r.Builder)
		}
	}
	if E21Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE22Spreading(t *testing.T) {
	rows, err := E22Spreading(context.Background(), 6, 89)
	if err != nil {
		t.Fatal(err)
	}
	exps := map[string]float64{}
	for _, r := range rows {
		exps[r.Topology] = r.Exponent
		// Balls are monotone and bounded by n.
		for i := 1; i < len(r.Balls); i++ {
			if r.Balls[i] < r.Balls[i-1] || r.Balls[i] > r.N {
				t.Errorf("%s: ball sequence invalid: %v", r.Topology, r.Balls)
			}
		}
	}
	// The classification: ring ≈ t¹, torus ≈ t², 3d torus ≈ t³ (below
	// saturation), expander ≫ polynomial of low degree.
	if !(exps["ring"] < 1.5) {
		t.Errorf("ring exponent %f not ≈ 1", exps["ring"])
	}
	if !(exps["torus"] > 1.5 && exps["torus"] < 2.5) {
		t.Errorf("torus exponent %f not ≈ 2", exps["torus"])
	}
	if exps["expander"] <= exps["torus3d"] {
		t.Errorf("expander exponent %f not above torus3d %f", exps["expander"], exps["torus3d"])
	}
	if E22Table(rows).String() == "" {
		t.Error("empty table")
	}
}
