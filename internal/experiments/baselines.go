package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"universalnet/internal/core"
	"universalnet/internal/expander"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E17 — the paper's motivating claim (§1, "Previous Work"): the
// congestion/diameter/bandwidth techniques of [9,10] give non-trivial
// slowdown lower bounds for meshes but are "not strong enough" for
// expander-like hosts — no bound beyond the load n/m. The counting argument
// (Theorem 3.1) is the only one that yields Ω((n/m)·log m) for EVERY host.
//
// We compute, per host, the three baseline bounds and compare them with the
// counting bound and the measured slowdown:
//   load bound        s ≥ ⌈n/m⌉                    (processors)
//   bandwidth bound   s ≥ |E_G| / |E_M|             (total link capacity)
//   bisection bound   s ≥ bisect(G) / bisect(M)     ([9]-style: any balanced
//                     split of the host splits the guests; the guest's cut
//                     must cross the host's bisection every guest step)

// E17Row is one host's comparison.
type E17Row struct {
	Host       string
	M          int
	LoadBound  float64
	BandBound  float64
	BisectLB_G float64 // spectral (provable) lower bound on the guest's bisection
	BisectEstG int     // explicit-cut estimate of the guest's bisection
	BisectUB_M int     // explicit cut upper bound on the host's bisection
	BisectS    float64 // provable bisection slowdown bound (LB_G / UB_M)
	BisectSEst float64 // estimated bisection slowdown (EstG / UB_M)
	CountingS  float64 // Theorem 3.1 (toy constants) slowdown bound
	MeasuredS  float64
}

// E17Baselines runs the comparison for an expander guest over mesh-like,
// butterfly and expander hosts of (roughly) equal size.
func E17Baselines(ctx context.Context, n, T int, seed int64) ([]E17Row, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		return nil, err
	}
	lamG, err := expander.SpectralGap(guest, 400, seed)
	if err != nil {
		return nil, err
	}
	// Provable lower bound (Cheeger) and realistic estimate (explicit cut)
	// of the guest's bisection width.
	bisectG := expander.SpectralBisectionLowerBound(guest, lamG)
	bisectGEst, err := expander.BestBalancedCutUpperBound(guest, 400, seed+1)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	toy := core.ToyParams()

	hosts := make([]*universal.Host, 0, 3)
	if h, err := universal.TorusHost(64); err == nil {
		hosts = append(hosts, h)
	}
	if h, err := universal.ButterflyHost(4); err == nil {
		hosts = append(hosts, h)
	}
	if h, err := universal.ExpanderHost(64, 4, seed+2); err == nil {
		hosts = append(hosts, h)
	}
	var rows []E17Row
	for _, host := range hosts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := host.Graph.N()
		cutM, err := expander.BestBalancedCutUpperBound(host.Graph, 400, seed+3)
		if err != nil {
			return nil, err
		}
		rep, err := (&universal.EmbeddingSimulator{Host: host}).Run(comp, T)
		if err != nil {
			return nil, err
		}
		if rep.Trace.Checksum() != direct.Checksum() {
			return nil, fmt.Errorf("experiments: E17 diverged on %s", host.Name)
		}
		k, err := toy.MinInefficiency(n, m)
		if err != nil {
			return nil, err
		}
		countingS := k * float64(n) / float64(m)
		if countingS < 1 {
			countingS = 1
		}
		rows = append(rows, E17Row{
			Host:       host.Name,
			M:          m,
			LoadBound:  math.Ceil(float64(n) / float64(m)),
			BandBound:  float64(guest.M()) / float64(host.Graph.M()),
			BisectLB_G: bisectG,
			BisectEstG: bisectGEst,
			BisectUB_M: cutM,
			BisectS:    bisectG / float64(cutM),
			BisectSEst: float64(bisectGEst) / float64(cutM),
			CountingS:  countingS,
			MeasuredS:  rep.Slowdown,
		})
	}
	return rows, nil
}

// E17Table formats E17 rows.
func E17Table(n int, rows []E17Row) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E17 (§1 previous work): baseline slowdown bounds vs the counting bound, expander guest n=%d", n),
		Columns: []string{"host", "m", "load", "bandwidth", "bisection (provable)", "bisection (est)", "counting (toy)", "measured s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Host, fmt.Sprint(r.M),
			fmt.Sprintf("%.0f", r.LoadBound), fmt.Sprintf("%.1f", r.BandBound),
			fmt.Sprintf("%.1f/%d = %.2f", r.BisectLB_G, r.BisectUB_M, r.BisectS),
			fmt.Sprintf("%d/%d = %.2f", r.BisectEstG, r.BisectUB_M, r.BisectSEst),
			fmt.Sprintf("%.1f", r.CountingS), fmt.Sprintf("%.1f", r.MeasuredS),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E18 — Theorem 2.1, the proof's own construction: offline deterministic
// routing on the wrapped Beneš host ("O(n/m) permutations … known in
// advance … off-line in O(log m)") vs the online greedy butterfly of E1.

// E18Row is one size point.
type E18Row struct {
	D          int
	Rows       int
	N          int
	Load       int
	OfflineS   float64 // Beneš host, deterministic offline routing
	OnlineS    float64 // butterfly host, online greedy (same d)
	PerStep    int     // offline routing steps per guest step (constant)
	RoundsUsed int
}

// E18OfflineTheorem21 sweeps Beneš dimensions, running the same guest with
// the offline host and the online butterfly, both trace-verified.
func E18OfflineTheorem21(ctx context.Context, n, T int, dims []int, seed int64) ([]E18Row, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		return nil, err
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		return nil, err
	}
	var rows []E18Row
	for _, d := range dims {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bh, err := universal.NewBenesHost(d)
		if err != nil {
			return nil, err
		}
		if n < bh.Rows {
			continue
		}
		off, err := (&universal.EmbeddingSimulator{Host: &bh.Host, F: bh.Assignment(n)}).Run(comp, T)
		if err != nil {
			return nil, err
		}
		if off.Trace.Checksum() != direct.Checksum() {
			return nil, fmt.Errorf("experiments: E18 offline diverged at d=%d", d)
		}
		onHost, err := universal.ButterflyHost(d)
		if err != nil {
			return nil, err
		}
		on, err := (&universal.EmbeddingSimulator{Host: onHost}).Run(comp, T)
		if err != nil {
			return nil, err
		}
		if on.Trace.Checksum() != direct.Checksum() {
			return nil, fmt.Errorf("experiments: E18 online diverged at d=%d", d)
		}
		perStep := off.RouteSteps / T
		rows = append(rows, E18Row{
			D: d, Rows: bh.Rows, N: n,
			Load:       (n + bh.Rows - 1) / bh.Rows,
			OfflineS:   off.Slowdown,
			OnlineS:    on.Slowdown,
			PerStep:    perStep,
			RoundsUsed: perStep + 1 - 2*d, // pipelined: steps = rounds−1+2d
		})
	}
	return rows, nil
}

// E18Table formats E18 rows.
func E18Table(n int, rows []E18Row) *Table {
	t := &Table{
		Title:   fmt.Sprintf("E18 (Thm 2.1 proof): offline Beneš host vs online butterfly, n=%d", n),
		Columns: []string{"d", "rows", "load", "s offline (Beneš)", "rounds−1+2d/step", "s online (butterfly)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.D), fmt.Sprint(r.Rows), fmt.Sprint(r.Load),
			fmt.Sprintf("%.1f", r.OfflineS),
			fmt.Sprintf("%d−1+%d=%d", r.RoundsUsed, 2*r.D, r.PerStep),
			fmt.Sprintf("%.1f", r.OnlineS),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E19 — §2: route_G(h), the quantity Theorem 2.1's slowdown is made of.
// Measured per topology as h grows: butterflies and expanders pay
// O(h + log m); tori pay O(h·√m / const + √m); rings pay Θ(h·m).

// E19Row is one (topology, h) measurement.
type E19Row struct {
	Topology string
	M        int
	H        int
	Steps    int
	PerH     float64 // steps / h — the marginal cost per unit of load
}

// E19RouteScaling measures route_G(h) for the standard hosts.
func E19RouteScaling(ctx context.Context, hs []int, trials int, seed int64) ([]E19Row, error) {
	reg := obs.FromContext(ctx)
	type hostSpec struct {
		name string
		g    *graph.Graph
	}
	var specs []hostSpec
	if g, err := topology.Torus(64); err == nil {
		specs = append(specs, hostSpec{"torus", g})
	}
	if g, err := topology.WrappedButterfly(4); err == nil {
		specs = append(specs, hostSpec{"butterfly", g})
	}
	if g, err := topology.RandomRegular(rand.New(rand.NewSource(seed)), 64, 4); err == nil && g.IsConnected() {
		specs = append(specs, hostSpec{"expander", g})
	}
	if g, err := topology.Ring(64); err == nil {
		specs = append(specs, hostSpec{"ring", g})
	}
	var rows []E19Row
	for _, spec := range specs {
		for _, h := range hs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := routing.MeasureRoute(spec.g, &routing.GreedyRouter{Mode: routing.MultiPort, Seed: seed, Obs: reg}, h, trials, seed)
			if err != nil {
				return nil, fmt.Errorf("experiments: E19 %s h=%d: %w", spec.name, h, err)
			}
			rows = append(rows, E19Row{
				Topology: spec.name, M: spec.g.N(), H: h,
				Steps: res.Steps, PerH: float64(res.Steps) / float64(h),
			})
		}
	}
	return rows, nil
}

// E19Table formats E19 rows.
func E19Table(rows []E19Row) *Table {
	t := &Table{
		Title:   "E19 (§2): route_G(h) across topologies — the slowdown's raw material",
		Columns: []string{"topology", "m", "h", "route_G(h) steps", "steps/h"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Topology, fmt.Sprint(r.M), fmt.Sprint(r.H),
			fmt.Sprint(r.Steps), fmt.Sprintf("%.1f", r.PerH),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E20 — related work [17] (Rappoport): simulation asymmetry between the
// multibutterfly and the butterfly. The multibutterfly's splitter expansion
// makes it a strictly stronger router; a butterfly host pays more to host a
// multibutterfly guest than vice versa (the [17] separation, measured here
// at equal sizes through the Theorem 2.1 simulation).

// E20Row is one direction of the asymmetry measurement.
type E20Row struct {
	Guest    string
	HostName string
	Slowdown float64
	Verified bool
}

// E20Multibutterfly measures both directions of the [17] asymmetry, plus
// the two self-simulations as controls.
func E20Multibutterfly(ctx context.Context, d, T int, seed int64) ([]E20Row, error) {
	bfGraph, err := topology.Butterfly(d)
	if err != nil {
		return nil, err
	}
	mbGraph, err := topology.Multibutterfly(d, 2, seed)
	if err != nil {
		return nil, err
	}
	hosts := map[string]*universal.Host{
		"butterfly":      {Name: "butterfly", Graph: bfGraph, Router: &routing.GreedyRouter{Mode: routing.MultiPort, Policy: routing.RandomNextHop, Seed: seed}},
		"multibutterfly": {Name: "multibutterfly", Graph: mbGraph, Router: &routing.GreedyRouter{Mode: routing.MultiPort, Policy: routing.RandomNextHop, Seed: seed}},
	}
	guests := map[string]*graph.Graph{
		"butterfly":      bfGraph,
		"multibutterfly": mbGraph,
	}
	rng := rand.New(rand.NewSource(seed + 1))
	var rows []E20Row
	for _, gname := range []string{"butterfly", "multibutterfly"} {
		comp := sim.MixMod(guests[gname], rng)
		direct, err := comp.Run(T)
		if err != nil {
			return nil, err
		}
		for _, hname := range []string{"butterfly", "multibutterfly"} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rep, err := (&universal.EmbeddingSimulator{Host: hosts[hname]}).Run(comp, T)
			if err != nil {
				return nil, fmt.Errorf("experiments: E20 %s on %s: %w", gname, hname, err)
			}
			rows = append(rows, E20Row{
				Guest:    gname,
				HostName: hname,
				Slowdown: rep.Slowdown,
				Verified: rep.Trace.Checksum() == direct.Checksum(),
			})
		}
	}
	return rows, nil
}

// E20Table formats E20 rows.
func E20Table(rows []E20Row) *Table {
	t := &Table{
		Title:   "E20 ([17]): butterfly ↔ multibutterfly simulation asymmetry (equal sizes, Theorem 2.1 simulation)",
		Columns: []string{"guest", "host", "slowdown", "verified"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Guest, r.HostName, fmt.Sprintf("%.1f", r.Slowdown), fmt.Sprint(r.Verified)})
	}
	return t
}

// ---------------------------------------------------------------------------
// E22 — the [15] remark: guests with POLYNOMIAL spreading (|ball_t(v)| ≤
// poly(t)) admit O(n·polylog n)-size constant-slowdown universal networks.
// The classifying property is measurable: fit the growth exponent of the
// largest t-neighborhood. Meshes/tori spread like t²; constant-degree
// expanders spread exponentially — exactly the separation the remark needs.
// ([15]'s construction itself belongs to that paper; we reproduce the
// classification that gates it — documented substitution.)

// E22Row is one topology's spreading profile.
type E22Row struct {
	Topology string
	N        int
	Balls    []int   // max_v |ball_t(v)| for t = 1..len(Balls)
	Exponent float64 // log-log slope fit of ball growth over t = 2..tmax
}

// E22Spreading measures spreading profiles.
func E22Spreading(ctx context.Context, tmax int, seed int64) ([]E22Row, error) {
	type spec struct {
		name string
		g    *graph.Graph
	}
	var specs []spec
	if g, err := topology.Torus(225); err == nil {
		specs = append(specs, spec{"torus", g})
	}
	if g, err := topology.Torus3D(6); err == nil {
		specs = append(specs, spec{"torus3d", g})
	}
	if g, err := topology.RandomRegular(rand.New(rand.NewSource(seed)), 216, 4); err == nil && g.IsConnected() {
		specs = append(specs, spec{"expander", g})
	}
	if g, err := topology.Ring(216); err == nil {
		specs = append(specs, spec{"ring", g})
	}
	var rows []E22Row
	for _, sp := range specs {
		balls := make([]int, tmax)
		for t := 1; t <= tmax; t++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			max := 0
			for v := 0; v < sp.g.N(); v++ {
				if b := sp.g.TNeighborhoodSize(v, t); b > max {
					max = b
				}
			}
			balls[t-1] = max
		}
		// Log-log least-squares slope over t = 2..tmax (skip t=1 noise).
		var sx, sy, sxx, sxy float64
		cnt := 0.0
		for t := 2; t <= tmax; t++ {
			x := math.Log(float64(t))
			y := math.Log(float64(balls[t-1]))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			cnt++
		}
		slope := (cnt*sxy - sx*sy) / (cnt*sxx - sx*sx)
		rows = append(rows, E22Row{Topology: sp.name, N: sp.g.N(), Balls: balls, Exponent: slope})
	}
	return rows, nil
}

// E22Table formats E22 rows.
func E22Table(rows []E22Row) *Table {
	t := &Table{
		Title:   "E22 ([15] remark): spreading profiles — max |ball_t| and its growth exponent",
		Columns: []string{"topology", "n", "|ball_1|", "|ball_3|", "|ball_6|", "growth exponent"},
	}
	for _, r := range rows {
		pick := func(i int) string {
			if i-1 < len(r.Balls) {
				return fmt.Sprint(r.Balls[i-1])
			}
			return "-"
		}
		t.Rows = append(t.Rows, []string{
			r.Topology, fmt.Sprint(r.N), pick(1), pick(3), pick(6),
			fmt.Sprintf("%.2f", r.Exponent),
		})
	}
	return t
}
