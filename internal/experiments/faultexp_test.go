package experiments

import (
	"context"
	"reflect"
	"testing"
)

func TestE23SweepShapeAndDeterminism(t *testing.T) {
	rows, err := E23FaultTolerance(context.Background(), 24, 3, 6, 42, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := E23FaultTolerance(context.Background(), 24, 3, 6, 42, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatal("E23 sweep not deterministic")
	}
	if len(rows) != 16 { // 5 crash counts × 3 loss rates + the r=1 row
		t.Fatalf("got %d rows", len(rows))
	}
	base := rows[0]
	if base.Crashes != 0 || base.LossRate != 0 || !base.Recovered || !base.Verified {
		t.Fatalf("baseline row malformed: %+v", base)
	}
	for _, r := range rows[:len(rows)-1] {
		if !r.Recovered {
			t.Errorf("sweep cell k=%d loss=%.2f unrecoverable", r.Crashes, r.LossRate)
			continue
		}
		if !r.Verified {
			t.Errorf("sweep cell k=%d loss=%.2f recovered but trace unverified", r.Crashes, r.LossRate)
		}
		if r.Survivors != r.M-r.Crashes {
			t.Errorf("k=%d: survivors %d, want %d", r.Crashes, r.Survivors, r.M-r.Crashes)
		}
		if r.LossRate > 0 && r.Counters.Retried == 0 {
			t.Errorf("loss=%.2f cell saw no retries", r.LossRate)
		}
		if r.Crashes > 0 && r.Counters.ReEmbedded == 0 {
			t.Errorf("k=%d cell re-embedded nothing", r.Crashes)
		}
	}
	last := rows[len(rows)-1]
	if last.R != 1 || last.Recovered || last.Verified {
		t.Errorf("r=1 crash row must be cleanly unrecoverable: %+v", last)
	}
	if E23Table(rows).String() == "" {
		t.Error("empty table")
	}
	if E23Counters(rows).ReEmbedded == 0 {
		t.Error("aggregated counters lost the re-embeds")
	}
}

func TestE23NamedScenario(t *testing.T) {
	rows, err := E23FaultTolerance(context.Background(), 24, 3, 6, 42, "crash2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want baseline + scenario", len(rows))
	}
	if rows[0].Scenario != "none" || !rows[0].Recovered || !rows[0].Verified {
		t.Errorf("baseline row malformed: %+v", rows[0])
	}
	if rows[1].Scenario != "crash2" || rows[1].Crashes != 2 {
		t.Errorf("scenario row malformed: %+v", rows[1])
	}
	if rows[1].Recovered && !rows[1].Verified {
		t.Error("recovered scenario run must be trace-verified")
	}
}

func TestE23Canceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := E23FaultTolerance(ctx, 24, 3, 6, 42, "", 1); err == nil {
		t.Fatal("canceled context accepted")
	}
}
