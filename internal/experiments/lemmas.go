package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"universalnet/internal/core"

	"universalnet/internal/depgraph"
	"universalnet/internal/expander"
	"universalnet/internal/pebble"
	"universalnet/internal/topology"
	"universalnet/internal/universal"
)

// ---------------------------------------------------------------------------
// E3 — Figure 1 / Lemma 3.10: dependency trees in Γ_{G₀}.

// E3Row summarizes the dependency trees of one G₀ instance.
type E3Row struct {
	N         int
	BlockSide int // p = 2a
	A         int
	Depth     int     // D(p), uniform over all trees
	DepthPerA float64 // D(p)/a — the paper's depth is a; ours is Θ(a)
	MaxSize   int     // largest tree over all roots of one block per torus
	SizePerA2 float64 // MaxSize/a² — the paper's constant is 48
	Trees     int     // number of trees built and validated
}

// E3DependencyTrees builds and validates a dependency tree for every vertex
// of one block per G₀ size, recording the Lemma 3.10 quantities.
func E3DependencyTrees(blockSides []int, seed int64) ([]E3Row, error) {
	var rows []E3Row
	for _, p := range blockSides {
		n := topology.NextValidG0Size(4*p*p, p)
		g0, err := topology.BuildG0WithBlockSide(n, p, seed)
		if err != nil {
			return nil, err
		}
		depth := depgraph.TreeDepth(p)
		maxSize, trees := 0, 0
		for _, v := range g0.Blocks[0].Vertices {
			tree, err := depgraph.BuildDependencyTree(g0, v, depth)
			if err != nil {
				return nil, err
			}
			if err := tree.Validate(g0.Multitorus, 2); err != nil {
				return nil, err
			}
			if err := tree.LeavesCover(g0.Blocks[0].Vertices, depth); err != nil {
				return nil, err
			}
			if s := tree.Size(); s > maxSize {
				maxSize = s
			}
			trees++
		}
		a := g0.A
		rows = append(rows, E3Row{
			N: n, BlockSide: p, A: a, Depth: depth,
			DepthPerA: float64(depth) / float64(a),
			MaxSize:   maxSize, SizePerA2: float64(maxSize) / float64(a*a),
			Trees: trees,
		})
	}
	return rows, nil
}

// E3Table formats E3 rows.
func E3Table(rows []E3Row) *Table {
	t := &Table{
		Title:   "E3 (Fig. 1 / Lemma 3.10): dependency trees T_{i,t} — binary, depth O(a), size O(a²)",
		Columns: []string{"n", "p=2a", "a", "depth D(p)", "D/a", "max size", "size/a²", "trees checked"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.BlockSide), fmt.Sprint(r.A),
			fmt.Sprint(r.Depth), fmt.Sprintf("%.1f", r.DepthPerA),
			fmt.Sprint(r.MaxSize), fmt.Sprintf("%.1f", r.SizePerA2),
			fmt.Sprint(r.Trees),
		})
	}
	return t
}

// RenderDependencyTree draws a small dependency tree as ASCII — the
// reproduction of Figure 1. Each line is one tree level (guest time step);
// entries are the block-relative coordinates of the processors present.
func RenderDependencyTree(g0 *topology.G0, tree *depgraph.Tree) string {
	bi := topology.BlockOf(g0.Blocks, tree.Root.P)
	bl := &g0.Blocks[bi]
	byTime := make(map[int][]string)
	minT, maxT := tree.Root.T, tree.Root.T
	for _, nd := range tree.Nodes() {
		dx, dy := bl.Rel(nd.P)
		byTime[nd.T] = append(byTime[nd.T], fmt.Sprintf("(%d,%d)", dx, dy))
		if nd.T > maxT {
			maxT = nd.T
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Dependency tree rooted at (P%d, t=%d), leaves at t=%d (Figure 1)\n",
		tree.Root.P, tree.Root.T, maxT)
	for t := minT; t <= maxT; t++ {
		fmt.Fprintf(&b, "t=%2d │ %s\n", t, strings.Join(byTime[t], " "))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E4 — Lemma 3.12: critical time steps Z_S and the weight inequalities.

// E4Result summarizes one protocol's Lemma 3.12 verification.
type E4Result struct {
	N, M          int
	T             int     // guest steps
	D             int     // tree depth (the paper's a)
	K             float64 // measured inefficiency of the protocol
	ZSize         int     // |Z_S|
	ZLowerBound   int     // the guaranteed (T−D)/2
	TreeSizeMax   int
	Checked       int  // critical times fully verified
	Ineq1Violated bool // Σ_j q_{r_j,t₀−D} ≤ 16·TotalQ/((T−D)·p²)
	Ineq2Violated bool // Σ_j w_{r_j,t₀}   ≤ 16·TotalW/((T−D)·p²)
}

// E4CriticalTimes builds a protocol for a guest from 𝒰[G₀], computes the
// Lemma 3.12 weight aggregates, the critical-time set Z_S, and verifies the
// root-selection inequalities (in the form they take for our tree
// construction; see DESIGN.md).
func E4CriticalTimes(n, blockSide, hostDim, c, T int, seed int64) (*E4Result, error) {
	g0, err := topology.BuildG0WithBlockSide(n, blockSide, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	guest, err := g0.SampleGuest(rng, c)
	if err != nil {
		return nil, err
	}
	host, err := topology.WrappedButterfly(hostDim)
	if err != nil {
		return nil, err
	}
	D := depgraph.TreeDepth(blockSide)
	if T <= D {
		return nil, fmt.Errorf("experiments: T=%d must exceed tree depth %d", T, D)
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		return nil, err
	}
	st, err := pr.Validate()
	if err != nil {
		return nil, err
	}
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		return nil, err
	}
	z := lw.CriticalTimes(T)
	res := &E4Result{
		N: n, M: host.N(), T: T, D: D,
		K:           pr.Inefficiency(),
		ZSize:       len(z),
		ZLowerBound: (T - D) / 2,
		TreeSizeMax: lw.TreeSize,
	}
	// Global pebble budget (proof of Lemma 3.12): Σ_{t≥1} Σ_i q_{i,t} is at
	// most the number of operations T'·m = n·k·T.
	if float64(lw.TotalQ) > res.K*float64(n)*float64(T)+1e-6 {
		return nil, fmt.Errorf("experiments: pebble budget violated: ΣΣq = %d > n·k·T = %.1f",
			lw.TotalQ, res.K*float64(n)*float64(T))
	}
	// Lemma 3.13(2): Σ_i q_{i,t₀} ≤ q·n·k with q = 384 at every critical t₀.
	for _, t0 := range z {
		if float64(lw.SumQ[t0]) > 384*float64(n)*res.K {
			return nil, fmt.Errorf("experiments: Lemma 3.13(2) violated at t0=%d: Σq = %d > 384·n·k",
				t0, lw.SumQ[t0])
		}
	}
	p2 := float64(blockSide * blockSide)
	for _, t0 := range z {
		roots, err := st.ChooseRoots(g0, lw, t0)
		if err != nil {
			return nil, err
		}
		sumQ, sumW := 0, 0
		for _, r := range roots {
			sumQ += st.Weight(r, t0-D)
			tree, err := st.TreeFor(g0, r, t0, lw)
			if err != nil {
				return nil, err
			}
			sumW += st.TreeWeight(tree)
		}
		den := float64(T - D)
		if float64(sumQ) > 16*float64(lw.TotalQ)/(den*p2)+1e-9 {
			res.Ineq1Violated = true
		}
		if float64(sumW) > 16*float64(lw.TotalW)/(den*p2)+1e-9 {
			res.Ineq2Violated = true
		}
		res.Checked++
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// E5 — Lemma 3.15 / Prop. 3.17: the generating-pebble frontier.

// E5Result captures the frontier dynamics of one protocol.
type E5Result struct {
	N, M        int
	Alpha       float64
	BetaSampled float64 // sampled expansion of the guest at α
	Thresholds  []int   // τ_j: first host step with e_{t_j−1}(τ) ≥ α·n
	Gaps        []int   // τ_{j+1} − τ_j
	MinGap      int     // min over j of the gaps
	GapBound    float64 // Lemma 3.15's forced gap γ·n/(384·√m·k)
	FrontierCap int     // max e_{t_j}(τ_j) observed (Prop 3.17: ≤ (α/β)n)
	CapBound    float64 // (α/β)·n with the sampled β
	K           float64
}

// E5Frontier runs a protocol for an expander guest and traces the frontier
// e_t(τ) of Definition 3.16 through guest time, measuring the per-step
// time gaps that drive the Lemma 3.15 contradiction.
func E5Frontier(n, deg, hostDim, T int, alpha float64, seed int64) (*E5Result, error) {
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, deg)
	if err != nil {
		return nil, err
	}
	beta, _ := expander.SampleExpansion(guest, alpha, 300, rng)
	host, err := topology.WrappedButterfly(hostDim)
	if err != nil {
		return nil, err
	}
	pr, err := pebble.BuildEmbeddingProtocol(guest, host, nil, T)
	if err != nil {
		return nil, err
	}
	st, err := pr.Validate()
	if err != nil {
		return nil, err
	}
	res := &E5Result{
		N: n, M: host.N(), Alpha: alpha, BetaSampled: beta,
		CapBound: alpha / beta * float64(n),
		K:        pr.Inefficiency(),
	}
	params := core.Params{}.Defaults()
	params.Alpha, params.Beta = alpha, beta
	res.GapBound = params.FrontierGapBound(n, host.N(), res.K)
	target := int(alpha * float64(n))
	maxStep := pr.HostSteps()
	prev := -1
	for t := 1; t < T; t++ {
		τ := st.FrontierThresholdStep(t-1, target, maxStep)
		if τ < 0 {
			return nil, fmt.Errorf("experiments: frontier never reached α·n at t=%d", t)
		}
		res.Thresholds = append(res.Thresholds, τ)
		if prev >= 0 {
			gap := τ - prev
			res.Gaps = append(res.Gaps, gap)
			if res.MinGap == 0 || gap < res.MinGap {
				res.MinGap = gap
			}
		}
		prev = τ
		if e := st.FrontierSize(t, τ); e > res.FrontierCap {
			res.FrontierCap = e
		}
	}
	return res, nil
}

// E5Table renders the frontier dynamics: thresholds, gaps, and the
// Lemma 3.15 comparison.
func E5Table(res *E5Result) *Table {
	t := &Table{
		Title: fmt.Sprintf("E5 (Lemma 3.15): frontier thresholds, n=%d m=%d α=%.2f β=%.2f k=%.1f (forced gap ≥ %.2f)",
			res.N, res.M, res.Alpha, res.BetaSampled, res.K, res.GapBound),
		Columns: []string{"j", "τ_j (host step)", "gap τ_{j+1}−τ_j", "e_{t_j}(τ_j)", "cap (α/β)n"},
	}
	for j, τ := range res.Thresholds {
		gap := "-"
		if j < len(res.Gaps) {
			gap = fmt.Sprint(res.Gaps[j])
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(j + 1), fmt.Sprint(τ), gap,
			fmt.Sprint(res.FrontierCap), fmt.Sprintf("%.1f", res.CapBound),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// E6 — the 2^{O(t)}·n tree-cached host: constant slowdown for length-t runs.

// E6Row is one depth point of the tree-cache sweep.
type E6Row struct {
	N, C, Depth int
	M           int     // host size = 2^{O(depth)}·n
	Slowdown    float64 // measured: exactly c+2
	SizeFactor  float64 // m / n
}

// E6TreeCache sweeps the depth of the tree-cached host and validates the
// resulting protocols.
func E6TreeCache(n, c int, depths []int, seed int64) ([]E6Row, error) {
	rng := rand.New(rand.NewSource(seed))
	var rows []E6Row
	for _, depth := range depths {
		guest, err := topology.RandomGuest(rng, n, c)
		if err != nil {
			return nil, err
		}
		h, err := universal.BuildTreeCachedHost(n, c, depth)
		if err != nil {
			return nil, err
		}
		pr, err := h.SimulateProtocol(guest)
		if err != nil {
			return nil, err
		}
		if _, err := pr.Validate(); err != nil {
			return nil, err
		}
		rows = append(rows, E6Row{
			N: n, C: c, Depth: depth, M: h.M(),
			Slowdown:   pr.Slowdown(),
			SizeFactor: float64(h.M()) / float64(n),
		})
	}
	return rows, nil
}

// E6Table formats E6 rows.
func E6Table(rows []E6Row) *Table {
	t := &Table{
		Title:   "E6 (§1 remark): tree-cached host — size 2^{O(t)}·n, constant slowdown c+2",
		Columns: []string{"n", "c", "t", "m", "m/n", "slowdown"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.N), fmt.Sprint(r.C), fmt.Sprint(r.Depth),
			fmt.Sprint(r.M), fmt.Sprintf("%.0f", r.SizeFactor),
			fmt.Sprintf("%.0f", r.Slowdown),
		})
	}
	return t
}
