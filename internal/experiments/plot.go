package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ASCII line plots for the experiment series — the "figures" of
// EXPERIMENTS.md. Multiple series share axes; points are marked with the
// series' rune and collisions show the later series.

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot renders series into a width×height character grid with simple
// axes and a legend. X and Y ranges are the unions over all series;
// logX/logY switch the corresponding axis to log₂ scale.
type Plot struct {
	Title         string
	Width, Height int
	LogX, LogY    bool
	Series        []Series
}

// Render draws the plot. It returns an error for empty/invalid input.
func (p *Plot) Render() (string, error) {
	w, h := p.Width, p.Height
	if w < 16 || h < 4 {
		return "", fmt.Errorf("experiments: plot area %dx%d too small", w, h)
	}
	if len(p.Series) == 0 {
		return "", fmt.Errorf("experiments: no series")
	}
	tx := func(v float64) (float64, error) {
		if p.LogX {
			if v <= 0 {
				return 0, fmt.Errorf("experiments: log-x axis needs positive x, got %g", v)
			}
			return math.Log2(v), nil
		}
		return v, nil
	}
	ty := func(v float64) (float64, error) {
		if p.LogY {
			if v <= 0 {
				return 0, fmt.Errorf("experiments: log-y axis needs positive y, got %g", v)
			}
			return math.Log2(v), nil
		}
		return v, nil
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return "", fmt.Errorf("experiments: series %q has mismatched or empty data", s.Name)
		}
		for i := range s.X {
			x, err := tx(s.X[i])
			if err != nil {
				return "", err
			}
			y, err := ty(s.Y[i])
			if err != nil {
				return "", err
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		type pt struct{ cx, cy int }
		var pts []pt
		for i := range s.X {
			x, _ := tx(s.X[i])
			y, _ := ty(s.Y[i])
			cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
			cy := h - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(h-1)))
			pts = append(pts, pt{cx, cy})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].cx < pts[b].cx })
		// Connect consecutive points with linear interpolation.
		for i := range pts {
			grid[pts[i].cy][pts[i].cx] = marker
			if i+1 < len(pts) {
				dx := pts[i+1].cx - pts[i].cx
				for step := 1; step < dx; step++ {
					frac := float64(step) / float64(dx)
					cy := int(math.Round(float64(pts[i].cy) + frac*float64(pts[i+1].cy-pts[i].cy)))
					cx := pts[i].cx + step
					if grid[cy][cx] == ' ' {
						grid[cy][cx] = '·'
					}
				}
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yLabel := func(v float64) string {
		if p.LogY {
			return fmt.Sprintf("2^%-5.1f", v)
		}
		return fmt.Sprintf("%-7.1f", v)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", 8)
		switch r {
		case 0:
			label = yLabel(maxY)
		case h - 1:
			label = yLabel(minY)
		}
		fmt.Fprintf(&b, "%8s│%s\n", strings.TrimRight(label, " "), string(row))
	}
	fmt.Fprintf(&b, "%8s└%s\n", "", strings.Repeat("─", w))
	xl, xr := minX, maxX
	xlab := func(v float64) string {
		if p.LogX {
			return fmt.Sprintf("2^%.0f", v)
		}
		return fmt.Sprintf("%.0f", v)
	}
	fmt.Fprintf(&b, "%9s%-*s%s\n", "", w-len(xlab(xr)), xlab(xl), xlab(xr))
	for _, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "%9s%c %s\n", "", marker, s.Name)
	}
	return b.String(), nil
}

// PlotE1 renders the E1 sweep as a log–log figure: measured slowdown and
// the (n/m)·log m prediction vs host size.
func PlotE1(n int, rows []E1Row) (string, error) {
	var xs, meas, pred []float64
	for _, r := range rows {
		xs = append(xs, float64(r.M))
		meas = append(meas, r.MeasuredS)
		pred = append(pred, r.PredictS)
	}
	p := &Plot{
		Title: fmt.Sprintf("Figure E1: slowdown vs host size m (n=%d, log–log)", n),
		Width: 56, Height: 12, LogX: true, LogY: true,
		Series: []Series{
			{Name: "measured slowdown", Marker: 'o', X: xs, Y: meas},
			{Name: "(n/m)·log2 m", Marker: '+', X: xs, Y: pred},
		},
	}
	return p.Render()
}

// PlotE2 renders the lower-bound curve k(log₂ m) for both constant sets.
func PlotE2(rows []E2Row) (string, error) {
	var xs, paper, toy []float64
	for _, r := range rows {
		xs = append(xs, r.Log2M)
		paper = append(paper, r.PaperK)
		toy = append(toy, r.ToyK)
	}
	p := &Plot{
		Title: "Figure E2: Theorem 3.1 lower bound k vs log2 m (log–log)",
		Width: 56, Height: 12, LogX: true, LogY: true,
		Series: []Series{
			{Name: "k (paper constants)", Marker: 'o', X: xs, Y: paper},
			{Name: "k (toy constants)", Marker: '+', X: xs, Y: toy},
		},
	}
	return p.Render()
}

// PlotE19 renders route_G(h) per topology — the §2 routing figure.
func PlotE19(rows []E19Row) (string, error) {
	byTopo := map[string][][2]float64{}
	order := []string{}
	for _, r := range rows {
		if _, ok := byTopo[r.Topology]; !ok {
			order = append(order, r.Topology)
		}
		byTopo[r.Topology] = append(byTopo[r.Topology], [2]float64{float64(r.H), float64(r.Steps)})
	}
	markers := []rune{'o', '+', 'x', '#', '@'}
	p := &Plot{
		Title: "Figure E19: route_G(h) per topology (log y)",
		Width: 56, Height: 12, LogY: true,
	}
	for i, name := range order {
		var xs, ys []float64
		for _, pt := range byTopo[name] {
			xs = append(xs, pt[0])
			ys = append(ys, pt[1])
		}
		p.Series = append(p.Series, Series{Name: name, Marker: markers[i%len(markers)], X: xs, Y: ys})
	}
	return p.Render()
}
