package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"universalnet/internal/obs"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 25 {
		t.Fatalf("Registry: got %d experiments, want 25", len(reg))
	}
	for i, e := range reg {
		// E25 is the CI-only chaos soak (scripts/cluster_smoke.sh), so the
		// registry skips from E24 to E26.
		wantID := fmt.Sprintf("E%d", i+1)
		if i == 24 {
			wantID = "E26"
		}
		if e.ID != wantID {
			t.Errorf("Registry[%d].ID = %q, want %q", i, e.ID, wantID)
		}
		if e.Claim == "" {
			t.Errorf("%s: empty Claim", e.ID)
		}
		if e.Modules == "" {
			t.Errorf("%s: empty Modules", e.ID)
		}
		if e.Run == nil {
			t.Errorf("%s: nil Run", e.ID)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatalf("Select(nil): %v", err)
	}
	if len(all) != 25 {
		t.Fatalf("Select(nil): got %d, want 25", len(all))
	}

	sel, err := Select([]string{" e4", "E1 ", "e12"})
	if err != nil {
		t.Fatalf("Select subset: %v", err)
	}
	got := make([]string, len(sel))
	for i, e := range sel {
		got[i] = e.ID
	}
	// Registry order, not request order.
	if want := "E1 E4 E12"; strings.Join(got, " ") != want {
		t.Fatalf("Select subset: got %v, want %s", got, want)
	}

	if _, err := Select([]string{"E1", "E99"}); err == nil {
		t.Fatal("Select with unknown id: want error, got nil")
	}
	if _, err := Select([]string{"E3", "e3"}); err == nil {
		t.Fatal("Select with duplicate id: want error, got nil")
	}
}

func TestSeedFor(t *testing.T) {
	cfg := Config{Seed: 1}
	if a, b := cfg.SeedFor("E7"), cfg.SeedFor("E7"); a != b {
		t.Fatalf("SeedFor not pure: %d vs %d", a, b)
	}
	seen := make(map[int64]string)
	for _, e := range Registry() {
		s := cfg.SeedFor(e.ID)
		if s < 0 {
			t.Errorf("SeedFor(%s) = %d, want non-negative", e.ID, s)
		}
		if prev, ok := seen[s]; ok {
			t.Errorf("SeedFor collision: %s and %s both get %d", prev, e.ID, s)
		}
		seen[s] = e.ID
	}
	if (Config{Seed: 1}).SeedFor("E1") == (Config{Seed: 2}).SeedFor("E1") {
		t.Error("SeedFor ignores the root seed")
	}
}

// TestRunnerParallelDeterminism is the suite-level invariant behind
// -parallel: with per-experiment seeds derived from the root seed, the
// rendered table text must be byte-identical whether the suite runs on one
// worker or eight.
func TestRunnerParallelDeterminism(t *testing.T) {
	exps := Registry()
	cfg := Config{Seed: 1}

	seq := &Runner{Workers: 1, FailFast: true}
	seqRes, err := seq.Run(context.Background(), exps, cfg)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par := &Runner{Workers: 8, FailFast: true}
	parRes, err := par.Run(context.Background(), exps, cfg)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	if len(seqRes) != len(parRes) {
		t.Fatalf("result count: %d vs %d", len(seqRes), len(parRes))
	}
	for i := range seqRes {
		if seqRes[i].ID != parRes[i].ID {
			t.Fatalf("result %d: order differs, %s vs %s", i, seqRes[i].ID, parRes[i].ID)
		}
		if seqRes[i].Seed != parRes[i].Seed {
			t.Errorf("%s: derived seed differs, %d vs %d", seqRes[i].ID, seqRes[i].Seed, parRes[i].Seed)
		}
		if seqRes[i].Text != parRes[i].Text {
			t.Errorf("%s: table text differs between workers=1 and workers=8", seqRes[i].ID)
		}
		if !seqRes[i].Metrics.Equal(parRes[i].Metrics) {
			t.Errorf("%s: metrics snapshot differs between workers=1 and workers=8: %s",
				seqRes[i].ID, seqRes[i].Metrics.Diff(parRes[i].Metrics))
		}
	}
}

// fakeExp builds a registry-shaped experiment for runner behavior tests.
func fakeExp(id string, run func(ctx context.Context, cfg Config) (Result, error)) Experiment {
	return Experiment{ID: id, Claim: "test", Modules: "test", Run: run}
}

func TestRunnerExpiredContext(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	before := runtime.NumGoroutine()
	bodyRan := false
	exps := []Experiment{
		fakeExp("X1", func(context.Context, Config) (Result, error) {
			bodyRan = true
			return Result{}, nil
		}),
		fakeExp("X2", func(context.Context, Config) (Result, error) {
			bodyRan = true
			return Result{}, nil
		}),
	}

	r := &Runner{Workers: 2}
	start := time.Now()
	results, err := r.Run(ctx, exps, Config{Seed: 1})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("expired context: run took %v, want prompt return", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context: err = %v, want DeadlineExceeded", err)
	}
	if bodyRan {
		t.Error("expired context: experiment body still ran")
	}
	for _, res := range results {
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Errorf("%s: Err = %v, want DeadlineExceeded", res.ID, res.Err)
		}
	}

	// All workers must have drained: allow a little scheduler slack, then
	// require the goroutine count back at (or below) the starting level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestRunnerTimeout(t *testing.T) {
	exps := []Experiment{
		fakeExp("SLOW", func(ctx context.Context, _ Config) (Result, error) {
			<-ctx.Done()
			return Result{}, ctx.Err()
		}),
	}
	r := &Runner{Workers: 1, Timeout: 20 * time.Millisecond}
	_, err := r.Run(context.Background(), exps, Config{Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Timeout: err = %v, want DeadlineExceeded", err)
	}
}

func TestRunnerFailFast(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		fakeExp("BAD", func(context.Context, Config) (Result, error) {
			return Result{}, boom
		}),
		fakeExp("NEXT", func(context.Context, Config) (Result, error) {
			return Result{Text: "ok"}, nil
		}),
	}

	// Fail-fast on one worker: the failure cancels the run before NEXT
	// starts, so NEXT is marked with the cancellation error.
	r := &Runner{Workers: 1, FailFast: true}
	results, err := r.Run(context.Background(), exps, Config{Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("fail-fast: err = %v, want boom", err)
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("fail-fast: NEXT.Err = %v, want Canceled", results[1].Err)
	}

	// Collect-all: NEXT still runs and only BAD's error is reported.
	r = &Runner{Workers: 1}
	results, err = r.Run(context.Background(), exps, Config{Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("collect-all: err = %v, want boom", err)
	}
	if results[1].Err != nil || results[1].Text != "ok" {
		t.Errorf("collect-all: NEXT = {Text:%q Err:%v}, want it to run clean", results[1].Text, results[1].Err)
	}
	if !strings.Contains(err.Error(), "BAD") {
		t.Errorf("collect-all: joined error %q does not name the failing id", err)
	}
}

// TestRunnerRecoversPanics: a panicking experiment body must become that
// experiment's Result.Err — with a stack snippet — while the rest of the
// pool keeps running to completion.
func TestRunnerRecoversPanics(t *testing.T) {
	exps := []Experiment{
		fakeExp("OK1", func(context.Context, Config) (Result, error) {
			return Result{Text: "ok1"}, nil
		}),
		fakeExp("BOOM", func(context.Context, Config) (Result, error) {
			panic("index out of range [99] with length 3")
		}),
		fakeExp("OK2", func(context.Context, Config) (Result, error) {
			return Result{Text: "ok2"}, nil
		}),
	}
	r := &Runner{Workers: 2}
	results, err := r.Run(context.Background(), exps, Config{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "BOOM") {
		t.Fatalf("joined error %v does not name the panicking experiment", err)
	}
	if results[0].Err != nil || results[0].Text != "ok1" {
		t.Errorf("OK1 disturbed by sibling panic: %+v", results[0])
	}
	if results[2].Err != nil || results[2].Text != "ok2" {
		t.Errorf("OK2 disturbed by sibling panic: %+v", results[2])
	}
	perr := results[1].Err
	if perr == nil {
		t.Fatal("BOOM has no error")
	}
	msg := perr.Error()
	if !strings.Contains(msg, "experiment panicked") || !strings.Contains(msg, "index out of range") {
		t.Errorf("panic error lacks the panic value: %q", msg)
	}
	if !strings.Contains(msg, "goroutine") && !strings.Contains(msg, "runner") {
		t.Errorf("panic error lacks a stack snippet: %q", msg)
	}
	if results[1].Duration <= 0 {
		t.Error("panicking experiment not stamped with a duration")
	}

	// FailFast must also survive a panic: it is a failure like any other.
	r = &Runner{Workers: 1, FailFast: true}
	results, err = r.Run(context.Background(), exps[1:], Config{Seed: 1})
	if err == nil {
		t.Fatal("fail-fast run with panic returned nil error")
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Errorf("fail-fast after panic: OK2.Err = %v, want Canceled", results[1].Err)
	}
}

func TestRunnerStampsResults(t *testing.T) {
	exps := []Experiment{
		fakeExp("X1", func(ctx context.Context, cfg Config) (Result, error) {
			time.Sleep(time.Millisecond)
			return Result{Text: "body", Payload: map[string]any{"k": 1}}, nil
		}),
	}
	r := &Runner{}
	results, err := r.Run(context.Background(), exps, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.ID != "X1" {
		t.Errorf("ID = %q", res.ID)
	}
	if want := (Config{Seed: 7}).SeedFor("X1"); res.Seed != want {
		t.Errorf("Seed = %d, want %d", res.Seed, want)
	}
	if res.Text != "body" || res.Payload["k"] != 1 {
		t.Errorf("Text/Payload not propagated: %+v", res)
	}
	if res.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", res.Duration)
	}
	if res.Start.IsZero() {
		t.Error("Start not stamped")
	}
}

// TestRunnerInjectedClock: with a FakeClock the runner's timestamps become
// fully deterministic — the satellite contract replacing ad-hoc time.Now.
func TestRunnerInjectedClock(t *testing.T) {
	epoch := time.Unix(1_000_000, 0)
	clock := &obs.FakeClock{T: epoch, Step: time.Second}
	exps := []Experiment{
		fakeExp("X1", func(ctx context.Context, cfg Config) (Result, error) {
			return Result{Text: "a"}, nil
		}),
	}
	r := &Runner{Workers: 1, Clock: clock}
	results, err := r.Run(context.Background(), exps, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With no trace sink the only clock reads are the Start and Duration
	// stamps, each advancing the fake clock by one Step: Start is the epoch
	// and Duration exactly one Step.
	if got := results[0].Start; !got.Equal(epoch) {
		t.Errorf("Start = %v, want %v", got, epoch)
	}
	if got := results[0].Duration; got != time.Second {
		t.Errorf("Duration = %v, want exactly 1s from the fake clock", got)
	}
}

// TestRunnerMetricsAndTrace: the body's context carries a fresh registry;
// its snapshot lands in Result.Metrics, merges into the run-level registry,
// and spans reach the shared trace sink.
func TestRunnerMetricsAndTrace(t *testing.T) {
	var buf bytes.Buffer
	runReg := obs.New()
	exps := []Experiment{
		fakeExp("X1", func(ctx context.Context, cfg Config) (Result, error) {
			reg := obs.FromContext(ctx)
			if reg == nil {
				t.Error("no registry in experiment context")
			}
			reg.Counter("test.events").Add(5)
			return Result{}, nil
		}),
		fakeExp("X2", func(ctx context.Context, cfg Config) (Result, error) {
			obs.FromContext(ctx).Counter("test.events").Add(2)
			return Result{}, nil
		}),
	}
	r := &Runner{Workers: 2, Obs: runReg, Trace: obs.NewTraceSink(&buf)}
	results, err := r.Run(context.Background(), exps, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Metrics.Counters["test.events"]; got != 5 {
		t.Errorf("X1 metrics counter = %d, want 5", got)
	}
	if got := results[1].Metrics.Counters["test.events"]; got != 2 {
		t.Errorf("X2 metrics counter = %d, want 2", got)
	}
	s := runReg.Snapshot()
	if got := s.Counters["test.events"]; got != 7 {
		t.Errorf("run-level merged counter = %d, want 7", got)
	}
	if got := s.Counters["runner.completed"]; got != 2 {
		t.Errorf("runner.completed = %d, want 2", got)
	}
	if got := s.Counters["runner.experiments"]; got != 2 {
		t.Errorf("runner.experiments = %d, want 2", got)
	}
	if err := r.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, `"experiment"`) || !strings.Contains(trace, `"X1"`) {
		t.Errorf("trace missing experiment spans:\n%s", trace)
	}
}
