package experiments

import (
	"context"
	"strings"
	"testing"

	"universalnet/internal/core"
	"universalnet/internal/depgraph"
	"universalnet/internal/topology"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "longcolumn"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longcolumn") || !strings.Contains(s, "333") {
		t.Errorf("table render missing content:\n%s", s)
	}
}

func TestE1UpperBound(t *testing.T) {
	rows, err := E1UpperBound(context.Background(), 256, 4, 3, []int{3, 4, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Slowdown decreases as the host grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].M <= rows[i-1].M {
			t.Fatalf("hosts not increasing: %v", rows)
		}
		if rows[i].MeasuredS >= rows[i-1].MeasuredS {
			t.Errorf("slowdown not decreasing with m: %+v then %+v", rows[i-1], rows[i])
		}
	}
	// Shape check: measured/predicted ratios stay within a small band —
	// the (n/m)·log m form explains the measurements.
	var ratios []float64
	for _, r := range rows {
		if r.Ratio <= 0 {
			t.Fatalf("bad ratio in %+v", r)
		}
		ratios = append(ratios, r.Ratio)
	}
	gm := GeomMean(ratios)
	for _, r := range ratios {
		if r/gm > 3 || gm/r > 3 {
			t.Errorf("ratio %f strays from geometric mean %f", r, gm)
		}
	}
	if E1Table(256, rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE2LowerBoundCurve(t *testing.T) {
	rows, err := E2LowerBoundCurve([]float64{10, 20, 1e6, 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].PaperK != 1 || rows[1].PaperK != 1 {
		t.Error("paper bound should be trivial at small m")
	}
	if rows[3].PaperK <= rows[2].PaperK {
		t.Error("paper bound flat in the asymptotic regime")
	}
	if rows[1].ToyK <= rows[0].ToyK {
		t.Error("toy bound flat at small sizes")
	}
	if E2Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestTradeoffTableRender(t *testing.T) {
	tab, err := TradeoffTable(core.ToyParams(), 1<<16, []int{1 << 8, 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestE3DependencyTrees(t *testing.T) {
	rows, err := E3DependencyTrees([]int{4, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Trees != r.BlockSide*r.BlockSide {
			t.Errorf("checked %d trees, want %d", r.Trees, r.BlockSide*r.BlockSide)
		}
		if r.SizePerA2 > 120 {
			t.Errorf("size constant %f too large", r.SizePerA2)
		}
		if r.DepthPerA > 12 {
			t.Errorf("depth/a = %f not O(1)", r.DepthPerA)
		}
	}
	if E3Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestRenderDependencyTree(t *testing.T) {
	g0, err := topology.BuildG0WithBlockSide(144, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	depth := depgraph.TreeDepth(4)
	tree, err := depgraph.BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], depth)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderDependencyTree(g0, tree)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "t= 0") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	if strings.Count(out, "\n") < depth {
		t.Error("rendering missing levels")
	}
}

func TestE4CriticalTimes(t *testing.T) {
	// blockSide 4 ⇒ D = 16; T comfortably larger.
	res, err := E4CriticalTimes(64, 4, 3, 16, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZSize < res.ZLowerBound {
		t.Errorf("|Z_S| = %d below guarantee %d", res.ZSize, res.ZLowerBound)
	}
	if res.Checked != res.ZSize {
		t.Errorf("checked %d of %d critical times", res.Checked, res.ZSize)
	}
	if res.Ineq1Violated {
		t.Error("Lemma 3.12 inequality (1) violated")
	}
	if res.Ineq2Violated {
		t.Error("Lemma 3.12 inequality (2) violated")
	}
	if res.K <= 0 {
		t.Error("inefficiency not measured")
	}
	if _, err := E4CriticalTimes(64, 4, 3, 16, 10, 11); err == nil {
		t.Error("T below tree depth accepted")
	}
}

func TestE5Frontier(t *testing.T) {
	res, err := E5Frontier(64, 4, 3, 8, 0.4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Thresholds) != 7 {
		t.Fatalf("thresholds = %v", res.Thresholds)
	}
	// Thresholds strictly increase: later frontiers need later host steps.
	for i := 1; i < len(res.Thresholds); i++ {
		if res.Thresholds[i] <= res.Thresholds[i-1] {
			t.Errorf("thresholds not increasing: %v", res.Thresholds)
		}
	}
	if res.MinGap < 1 {
		t.Errorf("min gap = %d", res.MinGap)
	}
	if res.BetaSampled <= 0 {
		t.Error("no expansion sampled")
	}
}

func TestE6TreeCache(t *testing.T) {
	rows, err := E6TreeCache(8, 2, []int{2, 3, 4}, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown != float64(r.C+2) {
			t.Errorf("slowdown %f, want %d", r.Slowdown, r.C+2)
		}
	}
	// Host size grows exponentially in depth.
	if !(rows[0].M < rows[1].M && rows[1].M < rows[2].M) {
		t.Errorf("sizes not growing: %+v", rows)
	}
	if E6Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE7Tradeoff(t *testing.T) {
	rows, err := E7Tradeoff(context.Background(), 24, 3, 3, 3, 6, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var emb, tc *E7Row
	for i := range rows {
		switch {
		case strings.HasPrefix(rows[i].Kind, "embedding"):
			emb = &rows[i]
		case strings.HasPrefix(rows[i].Kind, "tree-cache"):
			tc = &rows[i]
		}
	}
	if emb == nil || tc == nil {
		t.Fatal("constructive endpoints missing")
	}
	// The trade-off: the bigger host must be much faster.
	if tc.Ell <= emb.Ell {
		t.Errorf("tree-cache not larger: ℓ %f vs %f", tc.Ell, emb.Ell)
	}
	if tc.Slowdown >= emb.Slowdown {
		t.Errorf("tree-cache not faster: s %f vs %f", tc.Slowdown, emb.Slowdown)
	}
	if E7Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE8OfflineRouting(t *testing.T) {
	rows, err := E8OfflineRouting(context.Background(), []int{3, 4, 5}, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OfflineSteps != 2*r.D-1 {
			t.Errorf("offline steps %d, want %d", r.OfflineSteps, 2*r.D-1)
		}
		if r.HRounds > r.H {
			t.Errorf("rounds %d exceed h=%d", r.HRounds, r.H)
		}
		if r.HSteps != r.HRounds*(2*r.D-1) {
			t.Errorf("h-steps accounting wrong: %+v", r)
		}
		if r.OnlineSteps < r.OfflineSteps {
			t.Errorf("online greedy beat the Beneš depth: %+v", r)
		}
	}
	if E8Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestE9FragmentMultiplicity(t *testing.T) {
	res, err := E9FragmentMultiplicity(context.Background(), 64, 4, 3, 16, 6, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EdgeInclOK {
		t.Error("Lemma 3.3 edge inclusion violated: some neighbor outside D_i")
	}
	if res.Guests != 3 {
		t.Errorf("guests = %d", res.Guests)
	}
	if res.MaxD < 1 || res.MaxD > 64 {
		t.Errorf("max |D_i| = %d out of range", res.MaxD)
	}
	if res.Log2XBound <= 0 {
		t.Errorf("multiplicity bound %f", res.Log2XBound)
	}
}

func TestE10G0Expansion(t *testing.T) {
	rows, err := E10G0Expansion(context.Background(), []int{4, 6}, 0.25, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MaxDegree > 12 {
			t.Errorf("G0 degree %d > 12", r.MaxDegree)
		}
		if r.Lambda2 >= 1 {
			t.Errorf("no spectral gap: λ₂ = %f", r.Lambda2)
		}
		if r.BetaSample < r.BetaTanner-1e-9 {
			t.Errorf("sampled β %f below certificate %f", r.BetaSample, r.BetaTanner)
		}
	}
	if E10Table(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestGeomMean(t *testing.T) {
	if GeomMean(nil) != 0 {
		t.Error("empty mean not 0")
	}
	if g := GeomMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %f, want 4", g)
	}
}

func TestRunAllSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var buf strings.Builder
	if err := RunAll(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, marker := range []string{"E1 ", "E2 ", "E3 ", "E6 ", "E10", "E17", "E19"} {
		if !strings.Contains(out, marker) {
			t.Errorf("report missing %s section", marker)
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title: "demo", Width: 20, Height: 6,
		Series: []Series{{Name: "line", Marker: 'x', X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}},
	}
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") || !strings.Contains(out, "x line") {
		t.Errorf("plot incomplete:\n%s", out)
	}
	if !strings.ContainsRune(out, 'x') {
		t.Error("markers missing")
	}
	// Guards.
	if _, err := (&Plot{Width: 4, Height: 2}).Render(); err == nil {
		t.Error("tiny plot accepted")
	}
	if _, err := (&Plot{Width: 20, Height: 6}).Render(); err == nil {
		t.Error("empty series accepted")
	}
	bad := &Plot{Width: 20, Height: 6, LogY: true,
		Series: []Series{{X: []float64{1}, Y: []float64{0}}}}
	if _, err := bad.Render(); err == nil {
		t.Error("log of non-positive accepted")
	}
	mismatch := &Plot{Width: 20, Height: 6,
		Series: []Series{{X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := mismatch.Render(); err == nil {
		t.Error("mismatched series accepted")
	}
	// Flat series (degenerate ranges) still render.
	flat := &Plot{Width: 20, Height: 6,
		Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if _, err := flat.Render(); err != nil {
		t.Errorf("flat series: %v", err)
	}
}

func TestPlotE1AndE2(t *testing.T) {
	rows, err := E1UpperBound(context.Background(), 256, 4, 3, []int{3, 4, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := PlotE1(256, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig, "Figure E1") || !strings.Contains(fig, "measured slowdown") {
		t.Errorf("E1 figure incomplete:\n%s", fig)
	}
	rows2, err := E2LowerBoundCurve([]float64{10, 100, 1e4, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := PlotE2(rows2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig2, "Figure E2") {
		t.Errorf("E2 figure incomplete:\n%s", fig2)
	}
}

func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice")
	}
	var a, b strings.Builder
	if err := RunAll(&a, 5); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(&b, 5); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("RunAll output not deterministic for a fixed seed")
	}
}

func TestPlotE19(t *testing.T) {
	rows, err := E19RouteScaling(context.Background(), []int{1, 2, 4}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := PlotE19(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure E19", "torus", "ring"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q:\n%s", want, fig)
		}
	}
}

func TestE5TableAndGapBound(t *testing.T) {
	res, err := E5Frontier(64, 4, 3, 8, 0.4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) != len(res.Thresholds)-1 {
		t.Errorf("gaps %d vs thresholds %d", len(res.Gaps), len(res.Thresholds))
	}
	if res.GapBound <= 0 {
		t.Errorf("gap bound %f", res.GapBound)
	}
	// Lemma 3.15's forced gap must hold for the measured protocol: every
	// measured gap is at least the bound (the bound is tiny at these sizes,
	// but positive — the comparison is the point).
	for _, g := range res.Gaps {
		if float64(g) < res.GapBound {
			t.Errorf("measured gap %d below the forced bound %.3f", g, res.GapBound)
		}
	}
	if E5Table(res).String() == "" {
		t.Error("empty table")
	}
}
