package embedding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

func TestIdentityEmbeddingRingIntoRing(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Identity(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Load() != 1 || e.Dilation() != 1 || e.Congestion() != 1 {
		t.Errorf("load=%d dilation=%d congestion=%d; want 1,1,1", e.Load(), e.Dilation(), e.Congestion())
	}
	if e.SlowdownLowerBound() != 1 {
		t.Errorf("slowdown bound %d", e.SlowdownLowerBound())
	}
}

func TestIdentityEmbeddingCompleteIntoRing(t *testing.T) {
	k, err := topology.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Identity(k, ring)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Antipodal guest edges dilate to ring distance 4.
	if e.Dilation() != 4 {
		t.Errorf("dilation = %d, want 4", e.Dilation())
	}
	if e.Congestion() < 4 {
		t.Errorf("congestion = %d suspiciously low for K8 on a ring", e.Congestion())
	}
}

func TestIdentitySizeMismatch(t *testing.T) {
	a, _ := topology.Ring(8)
	b, _ := topology.Ring(10)
	if _, err := Identity(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestNewRejectsBadPlacement(t *testing.T) {
	g, _ := topology.Ring(4)
	h, _ := topology.Ring(4)
	if _, err := New(g, h, []int{0, 1}); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := New(g, h, []int{0, 1, 2, 9}); err == nil {
		t.Error("invalid host accepted")
	}
}

func TestNewRejectsDisconnectedHost(t *testing.T) {
	g, _ := topology.Ring(4)
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if _, err := New(g, b.Build(), []int{0, 1, 2, 3}); err == nil {
		t.Error("disconnected host accepted")
	}
}

func TestRandomEmbeddingBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(16)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Random(guest, host, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if e.Load() != 2 {
		t.Errorf("load = %d, want 2 (balanced)", e.Load())
	}
}

func TestGreedyEmbeddingBeatsRandomLocally(t *testing.T) {
	// Embedding a torus into itself: greedy (locality-aware) must achieve
	// much lower dilation than a random shuffle.
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(guest, host, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Validate(); err != nil {
		t.Fatal(err)
	}
	random, err := Random(guest, host, rng)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Dilation() >= random.Dilation() {
		t.Errorf("greedy dilation %d not below random %d", greedy.Dilation(), random.Dilation())
	}
	if greedy.Load() > 1 {
		t.Errorf("greedy load %d on equal-size host", greedy.Load())
	}
}

func TestGreedyEmbeddingLoadCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Greedy(guest, host, rng)
	if err != nil {
		t.Fatal(err)
	}
	if e.Load() != 4 {
		t.Errorf("load = %d, want the capacity 4", e.Load())
	}
}

func TestEmbeddingValidateCatchesCorruption(t *testing.T) {
	g, _ := topology.Ring(6)
	e, err := Identity(g, g)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one path with a non-edge jump.
	for ge := range e.Paths {
		e.Paths[ge] = []int{e.F[ge.U], (e.F[ge.U] + 3) % 6, e.F[ge.V]}
		break
	}
	if err := e.Validate(); err == nil {
		t.Error("corrupted path accepted")
	}
	// Remove a path entirely.
	e2, _ := Identity(g, g)
	for ge := range e2.Paths {
		delete(e2.Paths, ge)
		break
	}
	if err := e2.Validate(); err == nil {
		t.Error("missing path accepted")
	}
}

func TestPropertyEmbeddingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + 2*r.Intn(8) // even, for regular guests
		guest, err := topology.RandomRegular(r, n, 3)
		if err != nil || !guest.IsConnected() {
			return true // skip rare disconnected samples
		}
		host, err := topology.Ring(4 + r.Intn(8))
		if err != nil {
			return false
		}
		e, err := Random(guest, host, r)
		if err != nil {
			return false
		}
		if e.Validate() != nil {
			return false
		}
		// Load · m ≥ n and dilation ≤ host diameter.
		if e.Load()*host.N() < n {
			return false
		}
		return e.Dilation() <= host.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGuestBFSOrderCoversAll(t *testing.T) {
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(3, 4) // second component
	g := b.Build()
	order := guestBFSOrder(g)
	if len(order) != 5 {
		t.Errorf("order %v misses vertices", order)
	}
	seen := make(map[int]bool)
	for _, v := range order {
		if seen[v] {
			t.Errorf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}
