// Package embedding implements the static-embedding concept the paper
// contrasts with dynamic simulations (§1): guest processors are mapped to
// host processors once and for all, guest edges are routed along fixed host
// paths, and the quality of the embedding is measured by load (guests per
// host), dilation (longest path) and congestion (most-used host edge). The
// slowdown of an embedding-based simulation is Ω(load + dilation) and
// O(load·dilation·congestion) with trivial scheduling — the quantities the
// [4,3] lower bounds and the [13] exponential-size result speak about.
package embedding

import (
	"fmt"
	"math/rand"
	"sort"

	"universalnet/internal/graph"
)

// Embedding is a static embedding of a guest network into a host network.
type Embedding struct {
	Guest *graph.Graph
	Host  *graph.Graph
	// F[i] is the host processor of guest i.
	F []int
	// Paths[e] is the host path (vertex list, endpoints inclusive) routing
	// guest edge e; Paths[e][0] = F[e.U], last = F[e.V].
	Paths map[graph.Edge][]int
}

// New builds an embedding from a placement, routing every guest edge along
// a shortest host path (breadth-first, deterministic tie-breaking).
func New(guest, host *graph.Graph, f []int) (*Embedding, error) {
	if len(f) != guest.N() {
		return nil, fmt.Errorf("embedding: placement has %d entries for %d guests", len(f), guest.N())
	}
	for i, q := range f {
		if q < 0 || q >= host.N() {
			return nil, fmt.Errorf("embedding: guest %d placed on invalid host %d", i, q)
		}
	}
	e := &Embedding{
		Guest: guest,
		Host:  host,
		F:     append([]int(nil), f...),
		Paths: make(map[graph.Edge][]int),
	}
	for _, ge := range guest.Edges() {
		path := host.ShortestPath(f[ge.U], f[ge.V])
		if path == nil {
			return nil, fmt.Errorf("embedding: hosts %d and %d disconnected", f[ge.U], f[ge.V])
		}
		e.Paths[ge] = path
	}
	return e, nil
}

// Load returns the maximum number of guests on one host processor.
func (e *Embedding) Load() int {
	count := make(map[int]int)
	max := 0
	for _, q := range e.F {
		count[q]++
		if count[q] > max {
			max = count[q]
		}
	}
	return max
}

// Dilation returns the length (hops) of the longest routing path; 0 when
// every guest edge maps within a single host node.
func (e *Embedding) Dilation() int {
	max := 0
	for _, p := range e.Paths {
		if l := len(p) - 1; l > max {
			max = l
		}
	}
	return max
}

// Congestion returns the maximum number of routing paths crossing a single
// host edge.
func (e *Embedding) Congestion() int {
	count := make(map[graph.Edge]int)
	max := 0
	for _, p := range e.Paths {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == p[i+1] {
				continue
			}
			he := graph.NewEdge(p[i], p[i+1])
			count[he]++
			if count[he] > max {
				max = count[he]
			}
		}
	}
	return max
}

// SlowdownLowerBound returns the trivial lower bound on the slowdown of a
// step-by-step simulation through this embedding: max(load, dilation,
// congestion/degree-ish) — we report max(load, dilation) which is safe in
// every model.
func (e *Embedding) SlowdownLowerBound() int {
	l, d := e.Load(), e.Dilation()
	if d > l {
		return d
	}
	return l
}

// Validate checks structural invariants: path endpoints match the
// placement, consecutive path vertices are host edges.
func (e *Embedding) Validate() error {
	for _, ge := range e.Guest.Edges() {
		p, ok := e.Paths[ge]
		if !ok {
			return fmt.Errorf("embedding: guest edge %v has no path", ge)
		}
		if len(p) == 0 || p[0] != e.F[ge.U] || p[len(p)-1] != e.F[ge.V] {
			return fmt.Errorf("embedding: path of %v has wrong endpoints", ge)
		}
		for i := 0; i+1 < len(p); i++ {
			if p[i] != p[i+1] && !e.Host.HasEdge(p[i], p[i+1]) {
				return fmt.Errorf("embedding: path of %v uses non-edge {%d,%d}", ge, p[i], p[i+1])
			}
		}
	}
	return nil
}

// Identity returns the identity embedding of a guest into a host on the
// same vertex set (host must contain... nothing: paths are routed, so any
// connected host works; dilation reflects how well the host contains the
// guest).
func Identity(guest, host *graph.Graph) (*Embedding, error) {
	if guest.N() != host.N() {
		return nil, fmt.Errorf("embedding: identity needs equal sizes (%d vs %d)", guest.N(), host.N())
	}
	f := make([]int, guest.N())
	for i := range f {
		f[i] = i
	}
	return New(guest, host, f)
}

// Random returns an embedding with a uniformly random balanced placement:
// the guests are dealt to hosts ⌈n/m⌉ at a time in shuffled order.
func Random(guest, host *graph.Graph, rng *rand.Rand) (*Embedding, error) {
	n, m := guest.N(), host.N()
	f := make([]int, n)
	perm := rng.Perm(n)
	for idx, g := range perm {
		f[g] = idx % m
	}
	return New(guest, host, f)
}

// Greedy returns a locality-seeking embedding: guests are visited in BFS
// order from guest vertex 0 and each is placed on the least-loaded host
// within distance 1 of the hosts of its already-placed neighbors (falling
// back to the global least-loaded host). A cheap heuristic that captures
// what static placement can and cannot do.
func Greedy(guest, host *graph.Graph, rng *rand.Rand) (*Embedding, error) {
	n, m := guest.N(), host.N()
	capacity := (n + m - 1) / m
	load := make([]int, m)
	f := make([]int, n)
	for i := range f {
		f[i] = -1
	}
	order := guestBFSOrder(guest)
	for _, g := range order {
		// Candidate hosts: hosts of placed neighbors and their neighbors.
		cand := make(map[int]bool)
		for _, ng := range guest.Neighbors(g) {
			if f[ng] >= 0 {
				cand[f[ng]] = true
				for _, hq := range host.Neighbors(f[ng]) {
					cand[hq] = true
				}
			}
		}
		best := -1
		keys := make([]int, 0, len(cand))
		for q := range cand {
			keys = append(keys, q)
		}
		sort.Ints(keys)
		for _, q := range keys {
			if load[q] < capacity && (best < 0 || load[q] < load[best]) {
				best = q
			}
		}
		if best < 0 {
			// Global least-loaded host.
			for q := 0; q < m; q++ {
				if best < 0 || load[q] < load[best] {
					best = q
				}
			}
		}
		f[g] = best
		load[best]++
	}
	_ = rng
	return New(guest, host, f)
}

// guestBFSOrder returns the vertices in BFS order from vertex 0, appending
// unreached components afterwards.
func guestBFSOrder(g *graph.Graph) []int {
	n := g.N()
	seen := make([]bool, n)
	var order []int
	var bfs func(src int)
	bfs = func(src int) {
		queue := []int{src}
		seen[src] = true
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			bfs(v)
		}
	}
	return order
}
