package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"universalnet/internal/obs"
)

// ErrPeerUnreachable reports that a forward could not be completed: the
// owner's breaker is open, or every attempt within the retry budget failed
// at the transport level. The HTTP layer maps it to 502 when local fallback
// is disabled (or also fails).
var ErrPeerUnreachable = errors.New("cluster: peer unreachable")

// HealthPath is the lightweight liveness endpoint heartbeats probe.
const HealthPath = "/v1/health"

// ForwardedHeader marks a forwarded request; a node receiving it always
// serves locally, so a forward is at most one hop and rehashing races
// cannot create routing loops.
const ForwardedHeader = "X-Uninet-Forwarded"

// TraceHeader carries the distributed-trace context of a forwarded request:
// "<trace32>" or "<trace32>-<span16>" (obs.SpanContext wire form). The
// owner's telemetry layer parses it and parents its root span under the
// ingress node's forward span, so both nodes' JSONL spans join into one
// trace.
const TraceHeader = "X-Uninet-Trace"

// PeerState is a peer's health as seen by this node.
type PeerState int

const (
	// PeerAlive: heartbeats are answering.
	PeerAlive PeerState = iota
	// PeerSuspect: at least one heartbeat missed, fewer than FailAfter.
	// Suspect peers keep their ring ownership (a blip must not rehash the
	// keyspace) but are one failure streak from removal.
	PeerSuspect
	// PeerDown: FailAfter consecutive heartbeats missed; the peer is out of
	// the ring until a heartbeat succeeds again.
	PeerDown
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	}
	return "unknown"
}

// ForwardFaults injects deterministic faults into the forwarding path:
// Fate(seq) decides, purely from the forward-attempt sequence number,
// whether attempt seq is dropped (treated as a transport failure) and how
// long it is delayed first. faults.ClusterPlan implements it; nil injects
// nothing.
type ForwardFaults interface {
	Fate(seq int64) (drop bool, delay time.Duration)
}

// Config sizes a Node. Zero values pick defaults.
type Config struct {
	// Self is this node's advertised address (host:port) — the name peers
	// and the ring know it by. Required.
	Self string
	// Peers are the other nodes' advertised addresses. Self is filtered
	// out; the ring is built over Self ∪ Peers.
	Peers []string
	// Replicas is the virtual-node count per member; 0 ⇒ DefaultReplicas.
	Replicas int
	// HeartbeatEvery is the probe interval of the background loop;
	// 0 ⇒ 500ms.
	HeartbeatEvery time.Duration
	// FailAfter is the consecutive missed heartbeats that mark a peer
	// down; 0 ⇒ 2.
	FailAfter int
	// ForwardTimeout is the per-hop deadline of one forward attempt (and
	// of heartbeat probes); 0 ⇒ 2s.
	ForwardTimeout time.Duration
	// Retries bounds re-attempts after a transport failure, so one forward
	// makes at most Retries+1 attempts; 0 ⇒ 2. Negative ⇒ no retries.
	Retries int
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between attempts; 0 ⇒ 25ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// Breaker configures the per-peer circuit breakers.
	Breaker BreakerConfig
	// Obs receives cluster.* metrics. May be nil.
	Obs *obs.Registry
	// Clock times breaker transitions and peer bookkeeping; nil ⇒ system.
	Clock obs.Clock
	// Client issues forwards and heartbeats; nil ⇒ a fresh http.Client.
	Client *http.Client
	// Faults optionally injects deterministic forward faults.
	Faults ForwardFaults
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = obs.SystemClock()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// peer is one remote node's tracked state.
type peer struct {
	addr    string
	state   PeerState
	missed  int
	breaker *Breaker
}

// Node is this process's view of the cluster: the live membership, one
// circuit breaker per peer, and the consistent-hash ring over the members
// currently believed alive. Construct with NewNode; Start launches the
// heartbeat loop; Close stops it.
type Node struct {
	cfg   Config
	obs   *obs.Registry
	clock obs.Clock

	mu    sync.RWMutex
	peers map[string]*peer
	ring  *Ring

	seq atomic.Int64 // forward-attempt sequence: jitter + fault channel

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewNode builds a Node. All peers start alive (optimistic membership: a
// cold cluster routes immediately; breakers and heartbeats demote peers
// that turn out to be dead).
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	n := &Node{
		cfg:   cfg,
		obs:   cfg.Obs,
		clock: cfg.Clock,
		peers: make(map[string]*peer),
		stop:  make(chan struct{}),
	}
	for _, addr := range cfg.Peers {
		if addr == "" || addr == cfg.Self {
			continue
		}
		if _, ok := n.peers[addr]; ok {
			continue
		}
		n.peers[addr] = &peer{
			addr:    addr,
			state:   PeerAlive,
			breaker: NewBreaker(cfg.Breaker, cfg.Clock),
		}
	}
	n.rebuildRingLocked()
	n.obs.Gauge("cluster.peers").Set(int64(len(n.peers)))
	return n, nil
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// rebuildRingLocked rebuilds the ring over self plus every peer not Down.
// Caller holds n.mu (or is the constructor).
func (n *Node) rebuildRingLocked() {
	members := make([]string, 0, len(n.peers)+1)
	members = append(members, n.cfg.Self)
	for _, p := range n.peers {
		if p.state != PeerDown {
			members = append(members, p.addr)
		}
	}
	n.ring = NewRing(n.cfg.Replicas, members)
	n.obs.Counter("cluster.ring_rebuilds").Inc()
	n.obs.Gauge("cluster.ring_members").Set(int64(n.ring.Len()))
}

// Owner maps a cache key to the address of the member owning it under the
// current membership. In-flight forwards that resolved an owner before a
// rehash keep their resolved owner — the ring swap never invalidates them.
func (n *Node) Owner(key string) string {
	n.mu.RLock()
	r := n.ring
	n.mu.RUnlock()
	return r.Owner(key)
}

// BreakerState reports the named peer's breaker state (closed for unknown
// peers, which never get forwards anyway).
func (n *Node) BreakerState(addr string) BreakerState {
	n.mu.RLock()
	p := n.peers[addr]
	n.mu.RUnlock()
	if p == nil {
		return BreakerClosed
	}
	return p.breaker.State()
}

// Start launches the background heartbeat loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ForwardTimeout)
				n.HeartbeatOnce(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the heartbeat loop and waits for it. Idempotent; forwarding
// remains usable afterwards (the drain path stops heartbeats first, then
// lets in-flight forwards finish).
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// HeartbeatOnce probes every peer's HealthPath once, in sorted address
// order (deterministic bookkeeping), and updates membership: a success
// revives the peer, FailAfter consecutive misses take it out of the ring.
// Exported so tests drive health deterministically without the background
// loop.
func (n *Node) HeartbeatOnce(ctx context.Context) {
	n.mu.RLock()
	addrs := make([]string, 0, len(n.peers))
	for a := range n.peers {
		addrs = append(addrs, a)
	}
	n.mu.RUnlock()
	sort.Strings(addrs)
	for _, addr := range addrs {
		ok := n.probe(ctx, addr)
		n.recordHeartbeat(addr, ok)
	}
}

// probe issues one health GET against addr.
func (n *Node) probe(ctx context.Context, addr string) bool {
	hctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, "http://"+addr+HealthPath, nil)
	if err != nil {
		return false
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// recordHeartbeat folds one probe outcome into membership, rebuilding the
// ring on alive↔down transitions.
func (n *Node) recordHeartbeat(addr string, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.peers[addr]
	if p == nil {
		return
	}
	if ok {
		n.obs.Counter("cluster.heartbeat_ok").Inc()
		wasDown := p.state == PeerDown
		p.state = PeerAlive
		p.missed = 0
		if wasDown {
			n.obs.Counter("cluster.peer_up").Inc()
			n.rebuildRingLocked()
		}
		return
	}
	n.obs.Counter("cluster.heartbeat_miss").Inc()
	p.missed++
	if p.missed >= n.cfg.FailAfter {
		if p.state != PeerDown {
			p.state = PeerDown
			n.obs.Counter("cluster.peer_down").Inc()
			n.rebuildRingLocked()
		}
	} else if p.state == PeerAlive {
		p.state = PeerSuspect
	}
}

// ForwardResponse is the owner's answer, relayed verbatim. DialUS/SendUS/
// WaitUS split the winning attempt's wall-clock into connection setup,
// request write, and server think-time (µs; 0 when a phase was skipped, e.g.
// a reused connection dials nothing) — the per-hop attribution the trace
// waterfall shows as forward_dial/forward_send/forward_wait.
type ForwardResponse struct {
	Status      int
	ContentType string
	Body        []byte
	Attempts    int
	DialUS      int64
	SendUS      int64
	WaitUS      int64
}

// maxForwardBody bounds a relayed response body.
const maxForwardBody = 1 << 20

// Forward relays a POST body to the owner with per-hop deadlines, bounded
// retries on transport failures, and jittered exponential backoff. Any HTTP
// response — including 4xx/5xx — is a successful forward from the breaker's
// point of view (the peer is reachable); only transport failures (and
// injected drops) count against the breaker and the retry budget. Returns
// ErrPeerUnreachable (wrapped) when the breaker is open or every attempt
// failed.
func (n *Node) Forward(ctx context.Context, owner, path string, body []byte) (*ForwardResponse, error) {
	n.mu.RLock()
	p := n.peers[owner]
	n.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w: %s is not a known peer", ErrPeerUnreachable, owner)
	}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= n.cfg.Retries; attempt++ {
		if attempt > 0 {
			n.obs.Counter("cluster.forward_retries").Inc()
			if err := n.sleepBackoff(ctx, attempt); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, owner, err)
			}
		}
		// Allow comes after the backoff sleep: once it admits an attempt
		// (possibly the single half-open probe), every exit path below
		// resolves it via OnSuccess/OnFailure, so the breaker can never be
		// left stuck mid-probe.
		if !p.breaker.Allow() {
			n.obs.Counter("cluster.breaker_rejected").Inc()
			if lastErr == nil {
				lastErr = fmt.Errorf("breaker %s", p.breaker.State())
			}
			break
		}
		attempts++
		n.obs.Counter("cluster.forward_attempts").Inc()
		seq := n.seq.Add(1)
		if n.cfg.Faults != nil {
			drop, delay := n.cfg.Faults.Fate(seq)
			if delay > 0 {
				n.obs.Counter("cluster.forward_delayed_injected").Inc()
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					n.onForwardFailure(p)
					return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, owner, ctx.Err())
				}
			}
			if drop {
				n.obs.Counter("cluster.forward_dropped_injected").Inc()
				lastErr = fmt.Errorf("injected drop (seq %d)", seq)
				n.onForwardFailure(p)
				continue
			}
		}
		resp, err := n.post(ctx, owner, path, body)
		if err != nil {
			lastErr = err
			n.onForwardFailure(p)
			continue
		}
		p.breaker.OnSuccess()
		n.obs.Counter("cluster.forwarded").Inc()
		resp.Attempts = attempts
		return resp, nil
	}
	n.obs.Counter("cluster.forward_failures").Inc()
	return nil, fmt.Errorf("%w: %s after %d attempts: %v", ErrPeerUnreachable, owner, attempts, lastErr)
}

// post issues one forward attempt under the per-hop deadline, stamping the
// caller's span context onto TraceHeader (when one is carried by ctx) and
// splitting the attempt's wall-clock into dial/send/wait via httptrace.
// The trace callbacks may fire on transport goroutines, hence the atomics.
func (n *Node) post(ctx context.Context, owner, path string, body []byte) (*ForwardResponse, error) {
	hctx, cancel := context.WithTimeout(ctx, n.cfg.ForwardTimeout)
	defer cancel()

	var connStartUS, connDoneUS, wroteUS, firstByteUS atomic.Int64
	hctx = httptrace.WithClientTrace(hctx, &httptrace.ClientTrace{
		ConnectStart: func(string, string) {
			connStartUS.CompareAndSwap(0, time.Now().UnixMicro())
		},
		GotConn: func(httptrace.GotConnInfo) {
			connDoneUS.CompareAndSwap(0, time.Now().UnixMicro())
		},
		WroteRequest: func(httptrace.WroteRequestInfo) {
			wroteUS.CompareAndSwap(0, time.Now().UnixMicro())
		},
		GotFirstResponseByte: func() {
			firstByteUS.CompareAndSwap(0, time.Now().UnixMicro())
		},
	})

	req, err := http.NewRequestWithContext(hctx, http.MethodPost, "http://"+owner+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		req.Header.Set(TraceHeader, sc.HeaderValue())
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		return nil, err
	}
	fr := &ForwardResponse{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        b,
	}
	if cs, cd := connStartUS.Load(), connDoneUS.Load(); cs > 0 && cd >= cs {
		fr.DialUS = cd - cs
	}
	if cd, w := connDoneUS.Load(), wroteUS.Load(); cd > 0 && w >= cd {
		fr.SendUS = w - cd
	}
	if w, fb := wroteUS.Load(), firstByteUS.Load(); w > 0 && fb >= w {
		fr.WaitUS = fb - w
	}
	n.obs.Histogram("cluster.forward_dial_us", forwardPhaseBucketsUS).Observe(fr.DialUS)
	n.obs.Histogram("cluster.forward_send_us", forwardPhaseBucketsUS).Observe(fr.SendUS)
	n.obs.Histogram("cluster.forward_wait_us", forwardPhaseBucketsUS).Observe(fr.WaitUS)
	return fr, nil
}

// forwardPhaseBucketsUS spans sub-ms LAN hops through multi-second stalls.
var forwardPhaseBucketsUS = []int64{100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1000000, 2500000}

// onForwardFailure records one transport failure against the peer's breaker.
func (n *Node) onForwardFailure(p *peer) {
	if p.breaker.OnFailure() {
		n.obs.Counter("cluster.breaker_opened").Inc()
	}
}

// sleepBackoff waits the jittered exponential backoff before retry
// `attempt` (attempt ≥ 1). The jitter is a pure function of (seed,
// sequence, attempt): deterministic per run position, decorrelated across
// concurrent forwards.
func (n *Node) sleepBackoff(ctx context.Context, attempt int) error {
	d := n.cfg.BackoffBase << (attempt - 1)
	if d > n.cfg.BackoffMax {
		d = n.cfg.BackoffMax
	}
	h := splitmix64(uint64(n.cfg.Seed))
	h = splitmix64(h ^ uint64(n.seq.Load())<<16)
	h = splitmix64(h ^ uint64(attempt))
	u := float64(h>>11) / float64(1<<53)
	d = time.Duration(float64(d) * (0.5 + 0.5*u))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CountServedLocal records a request this node answered from its own
// service because it owns the key.
func (n *Node) CountServedLocal() { n.obs.Counter("cluster.served_local").Inc() }

// CountFailover records a request answered locally because the owner was
// unreachable or rejecting — the cluster's graceful degradation.
func (n *Node) CountFailover() { n.obs.Counter("cluster.failover_local").Inc() }

// PeerStatus is one peer's row in the status document.
type PeerStatus struct {
	Addr    string `json:"addr"`
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	Missed  int    `json:"missed"`
}

// Status is the cluster block of /v1/status.
type Status struct {
	Self            string       `json:"self"`
	RingMembers     []string     `json:"ring_members"`
	Peers           []PeerStatus `json:"peers"`
	Forwarded       int64        `json:"forwarded"`
	ForwardRetries  int64        `json:"forward_retries"`
	ForwardFailures int64        `json:"forward_failures"`
	ServedLocal     int64        `json:"served_local"`
	FailoverLocal   int64        `json:"failover_local"`
	BreakerOpened   int64        `json:"breaker_opened"`
	PeerDownEvents  int64        `json:"peer_down_events"`
}

// Status reads the point-in-time cluster summary. Peers are sorted by
// address; counter values are zero when no registry is attached.
func (n *Node) Status() Status {
	n.mu.RLock()
	peers := make([]PeerStatus, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, PeerStatus{
			Addr:    p.addr,
			State:   p.state.String(),
			Breaker: p.breaker.State().String(),
			Missed:  p.missed,
		})
	}
	members := n.ring.Members()
	n.mu.RUnlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].Addr < peers[j].Addr })
	return Status{
		Self:            n.cfg.Self,
		RingMembers:     members,
		Peers:           peers,
		Forwarded:       n.obs.Counter("cluster.forwarded").Value(),
		ForwardRetries:  n.obs.Counter("cluster.forward_retries").Value(),
		ForwardFailures: n.obs.Counter("cluster.forward_failures").Value(),
		ServedLocal:     n.obs.Counter("cluster.served_local").Value(),
		FailoverLocal:   n.obs.Counter("cluster.failover_local").Value(),
		BreakerOpened:   n.obs.Counter("cluster.breaker_opened").Value(),
		PeerDownEvents:  n.obs.Counter("cluster.peer_down").Value(),
	}
}
