package cluster

import (
	"fmt"
	"testing"
)

// TestRingAgreement is the no-coordination contract: two rings built from
// the same member set in different orders (and with duplicates) agree on
// every owner.
func TestRingAgreement(t *testing.T) {
	a := NewRing(64, []string{"n1:1", "n2:1", "n3:1"})
	b := NewRing(64, []string{"n3:1", "n1:1", "n2:1", "n1:1", ""})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("simulate|torus|%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
	if got := a.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestRingBalance checks that virtual nodes spread ownership: every member
// of a 3-node ring owns a nontrivial share of 3000 keys.
func TestRingBalance(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1"}
	r := NewRing(0, members) // 0 ⇒ DefaultReplicas
	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		if counts[m] < 300 { // a fair share is 1000; 300 is a loose floor
			t.Errorf("member %s owns only %d/3000 keys", m, counts[m])
		}
	}
}

// TestRingRemovalMovesOnlyVictimKeys is consistent hashing's point: taking
// one member out must not reshuffle keys the survivors already owned.
func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	full := NewRing(64, []string{"n1:1", "n2:1", "n3:1"})
	reduced := NewRing(64, []string{"n1:1", "n3:1"})
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "n2:1" {
			if after == "n2:1" {
				t.Fatalf("removed member still owns %q", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s → %s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingEmpty covers the degenerate cases.
func TestRingEmpty(t *testing.T) {
	if owner := NewRing(8, nil).Owner("k"); owner != "" {
		t.Errorf("empty ring owner = %q, want \"\"", owner)
	}
	var nilRing *Ring
	if owner := nilRing.Owner("k"); owner != "" {
		t.Errorf("nil ring owner = %q, want \"\"", owner)
	}
	if nilRing.Len() != 0 || nilRing.Members() != nil {
		t.Error("nil ring should report no members")
	}
}
