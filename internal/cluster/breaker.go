package cluster

import (
	"sync"
	"time"

	"universalnet/internal/obs"
)

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

const (
	// BreakerClosed: the peer is healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer failed too often; requests are refused locally
	// until OpenTimeout elapses.
	BreakerOpen
	// BreakerHalfOpen: the timeout elapsed; exactly one probe request is
	// allowed through to test the peer.
	BreakerHalfOpen
)

// String names the state for status documents and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig sizes a Breaker. Zero values pick defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens the
	// breaker; 0 ⇒ 3.
	FailureThreshold int
	// OpenTimeout is how long the breaker stays open before allowing a
	// half-open probe; 0 ⇒ 2s.
	OpenTimeout time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * time.Second
	}
	return c
}

// Breaker is a per-peer circuit breaker: closed → (N consecutive failures)
// → open → (OpenTimeout on the injected clock) → half-open → one probe →
// closed on success, open again on failure. It fails fast while open, so an
// unreachable owner costs the forwarding node nothing after the first few
// attempts — the request degrades to local compute instead of waiting out
// another connection timeout.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	clock    obs.Clock
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a closed breaker on the given clock (nil ⇒ system).
func NewBreaker(cfg BreakerConfig, clock obs.Clock) *Breaker {
	if clock == nil {
		clock = obs.SystemClock()
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Allow reports whether a request may be sent to the peer now. In the open
// state it transitions to half-open once OpenTimeout has elapsed and admits
// exactly one probe; concurrent callers during the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// OnSuccess records a successful request: half-open closes, closed resets
// the consecutive-failure count.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// OnFailure records a failed request. Reports whether this failure opened
// the breaker (for transition accounting).
func (b *Breaker) OnFailure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to open for another full timeout.
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.probing = false
		return true
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.clock.Now()
			return true
		}
	}
	return false
}

// State reads the current state (resolving an elapsed open timeout to
// half-open is left to Allow; State reports the stored state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
