// Package cluster is the peer-membership and failover layer of the serving
// tier. The paper's central trade-off — a smaller host still simulates
// everything, just slower — reappears here one level up: a cluster of m
// serving nodes owns the request keyspace via consistent hashing, and when k
// nodes die the survivors keep answering every request, just without the
// dead nodes' cache shards. Losing a node is a forced walk down the size
// axis, never an outage: a request whose owner is unreachable is computed
// locally (a cache miss, i.e. bounded slowdown), exactly the "smaller
// network, bounded slowdown" guarantee of Theorem 2.1 applied to the
// serving tier.
//
// The pieces:
//
//   - Ring (this file): a deterministic consistent-hash ring mapping cache
//     keys to member addresses, with virtual nodes for balance;
//   - Breaker (breaker.go): a per-peer closed/open/half-open circuit
//     breaker on an injectable clock;
//   - Node (node.go): membership + health via heartbeats, and request
//     forwarding with per-hop deadlines, bounded retries, and seeded
//     jittered backoff.
//
// Everything that affects request outcomes is deterministic for a fixed
// seed: hashing is SplitMix64 (no map iteration, no wall-clock), retry
// jitter is a pure function of (seed, sequence, attempt), and fault
// injection (faults.ClusterPlan) is a pure function of the forward
// sequence number.
package cluster

import (
	"sort"
	"strconv"
)

// splitmix64 is the SplitMix64 avalanche mix (Steele et al.), the same
// function internal/faults and the experiment registry use for seed
// derivation — one hash family across the laboratory.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString folds a string through SplitMix64 byte by byte. Deterministic
// across processes and Go versions (unlike maphash), which matters because
// every node must agree on ownership without coordination.
func hashString(s string) uint64 {
	h := splitmix64(0x9E3779B97F4A7C15)
	for i := 0; i < len(s); i++ {
		h = splitmix64(h ^ uint64(s[i]))
	}
	return h
}

// DefaultReplicas is the virtual-node count per member when Config leaves
// it zero. 64 vnodes keep the largest/smallest ownership arc within a few
// percent of each other for small clusters.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over member addresses. Build
// with NewRing; membership changes build a new ring (the Node swaps the
// pointer), so lookups never lock against rebuilds.
type Ring struct {
	replicas int
	points   []ringPoint // ascending by hash
	members  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring of the given members with replicas virtual nodes
// each (0 ⇒ DefaultReplicas). Members are deduplicated; order does not
// matter — two nodes that agree on the member set agree on every owner.
func NewRing(replicas int, members []string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		points:   make([]ringPoint, 0, replicas*len(uniq)),
		members:  uniq,
	}
	for _, m := range uniq {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hashString(m + "#" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member name so every node
		// still agrees.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner maps key to the member owning it: the first virtual node clockwise
// from the key's hash. Empty ring ⇒ "".
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member set.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}
