package cluster

import (
	"testing"
	"time"
)

// stepClock is a manually advanced test clock.
type stepClock struct{ t time.Time }

func (c *stepClock) Now() time.Time { return c.t }

func (c *stepClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerLifecycle walks the whole state machine on a manual clock:
// closed → open after the failure threshold, fail-fast while open,
// half-open single probe after the timeout, probe failure → open again,
// probe success → closed.
func TestBreakerLifecycle(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second}, clk)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	// Two failures: still closed (threshold is 3).
	b.OnFailure()
	if opened := b.OnFailure(); opened || b.State() != BreakerClosed {
		t.Fatalf("opened after 2/3 failures (state %s)", b.State())
	}
	// A success resets the streak; two more failures still don't open.
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("consecutive-failure count not reset by success")
	}
	// Third consecutive failure opens.
	if opened := b.OnFailure(); !opened || b.State() != BreakerOpen {
		t.Fatalf("not open after threshold (state %s)", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before the timeout")
	}
	// Timeout elapses: exactly one probe allowed.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe fails: open again for a fresh timeout.
	if opened := b.OnFailure(); !opened || b.State() != BreakerOpen {
		t.Fatalf("failed probe did not reopen (state %s)", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request immediately")
	}
	// Next timeout, probe succeeds: closed, allowing freely again.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed || !b.Allow() || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestBreakerDefaults: the zero config resolves to usable defaults on the
// system clock.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{}, nil)
	for i := 0; i < 2; i++ {
		b.OnFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("default threshold should be 3")
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("3rd failure should open with default config")
	}
}

// TestBreakerStateString covers the names used in status documents.
func TestBreakerStateString(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
