package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"universalnet/internal/obs"
)

// newTestPeer starts an httptest server answering HealthPath (200/500 per
// the healthy flag) and echoing POSTs, and returns its host:port address.
func newTestPeer(t *testing.T, healthy *atomic.Bool) (string, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == HealthPath {
			if healthy == nil || healthy.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Got-Forwarded", r.Header.Get(ForwardedHeader))
		w.Write([]byte(`{"echo":true}`))
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), srv
}

// TestNodeHeartbeatMembership drives health transitions deterministically:
// a failing peer goes suspect after one miss, down (and out of the ring)
// after FailAfter, and rejoins when its health returns.
func TestNodeHeartbeatMembership(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr, _ := newTestPeer(t, &healthy)

	n, err := NewNode(Config{
		Self:           "self:1",
		Peers:          []string{addr},
		FailAfter:      2,
		ForwardTimeout: time.Second,
		Obs:            obs.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	n.HeartbeatOnce(ctx)
	if st := n.Status(); st.Peers[0].State != "alive" {
		t.Fatalf("peer state %s, want alive", st.Peers[0].State)
	}
	if got := n.Status().RingMembers; len(got) != 2 {
		t.Fatalf("ring members %v, want 2", got)
	}

	healthy.Store(false)
	n.HeartbeatOnce(ctx)
	if st := n.Status(); st.Peers[0].State != "suspect" {
		t.Fatalf("peer state %s after 1 miss, want suspect", st.Peers[0].State)
	}
	if got := n.Status().RingMembers; len(got) != 2 {
		t.Fatalf("suspect peer evicted from ring early: %v", got)
	}
	n.HeartbeatOnce(ctx)
	st := n.Status()
	if st.Peers[0].State != "down" {
		t.Fatalf("peer state %s after FailAfter misses, want down", st.Peers[0].State)
	}
	if len(st.RingMembers) != 1 || st.RingMembers[0] != "self:1" {
		t.Fatalf("down peer still in ring: %v", st.RingMembers)
	}
	if st.PeerDownEvents == 0 {
		t.Error("peer_down counter not bumped")
	}
	// Every key now belongs to self: ownership walked down the size axis.
	if owner := n.Owner("any-key"); owner != "self:1" {
		t.Fatalf("owner %q with all peers down, want self", owner)
	}

	healthy.Store(true)
	n.HeartbeatOnce(ctx)
	st = n.Status()
	if st.Peers[0].State != "alive" || len(st.RingMembers) != 2 {
		t.Fatalf("revived peer not back: state=%s ring=%v", st.Peers[0].State, st.RingMembers)
	}
}

// dropFaults injects a transport drop for the first N forward attempts.
type dropFaults struct{ until int64 }

func (d *dropFaults) Fate(seq int64) (bool, time.Duration) {
	return seq <= d.until, 0
}

// TestNodeForwardRetriesThroughDrops: injected drops on the first attempts
// must be retried (with backoff) until the budget allows a clean attempt.
func TestNodeForwardRetriesThroughDrops(t *testing.T) {
	addr, _ := newTestPeer(t, nil)
	reg := obs.New()
	n, err := NewNode(Config{
		Self:        "self:1",
		Peers:       []string{addr},
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Obs:         reg,
		Faults:      &dropFaults{until: 2},
		Breaker:     BreakerConfig{FailureThreshold: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Forward(context.Background(), addr, "/v1/simulate", []byte(`{}`))
	if err != nil {
		t.Fatalf("Forward through 2 drops: %v", err)
	}
	if resp.Status != http.StatusOK || resp.Attempts != 3 {
		t.Fatalf("status %d attempts %d, want 200 after 3 attempts", resp.Status, resp.Attempts)
	}
	if got := reg.Counter("cluster.forward_retries").Value(); got != 2 {
		t.Errorf("forward_retries = %d, want 2", got)
	}
	if got := reg.Counter("cluster.forward_dropped_injected").Value(); got != 2 {
		t.Errorf("forward_dropped_injected = %d, want 2", got)
	}
}

// TestNodeForwardBreakerFailFast: with the peer gone, the retry budget is
// exhausted, the breaker opens, and the next forward fails fast without
// attempts.
func TestNodeForwardBreakerFailFast(t *testing.T) {
	addr, srv := newTestPeer(t, nil)
	srv.Close() // peer dead: every attempt is a transport failure
	reg := obs.New()
	n, err := NewNode(Config{
		Self:           "self:1",
		Peers:          []string{addr},
		Retries:        2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		ForwardTimeout: 200 * time.Millisecond,
		Obs:            reg,
		Breaker:        BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.Forward(context.Background(), addr, "/v1/simulate", []byte(`{}`))
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
	if st := n.BreakerState(addr); st != BreakerOpen {
		t.Fatalf("breaker %s after 3 transport failures, want open", st)
	}
	attemptsBefore := reg.Counter("cluster.forward_attempts").Value()
	_, err = n.Forward(context.Background(), addr, "/v1/simulate", []byte(`{}`))
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable from open breaker", err)
	}
	if got := reg.Counter("cluster.forward_attempts").Value(); got != attemptsBefore {
		t.Errorf("open breaker still attempted forwards (%d → %d)", attemptsBefore, got)
	}
	if got := reg.Counter("cluster.breaker_rejected").Value(); got == 0 {
		t.Error("breaker_rejected not counted")
	}
	if st := n.Status(); st.BreakerOpened == 0 || st.ForwardFailures != 2 {
		t.Errorf("status breaker_opened=%d forward_failures=%d, want >0 and 2", st.BreakerOpened, st.ForwardFailures)
	}
}

// TestNodeForwardMarksHop: the forwarded request must carry ForwardedHeader
// (one-hop guarantee) and relay the peer's body and content type verbatim.
func TestNodeForwardMarksHop(t *testing.T) {
	var gotForwarded atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded.Store(r.Header.Get(ForwardedHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":1}`))
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	n, err := NewNode(Config{Self: "self:9", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Forward(context.Background(), addr, "/v1/route", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `{"ok":1}` || resp.ContentType != "application/json" {
		t.Errorf("relay mangled: body=%q ct=%q", resp.Body, resp.ContentType)
	}
	if got, _ := gotForwarded.Load().(string); got != "self:9" {
		t.Errorf("forwarded header = %q, want self:9", got)
	}
}

// TestNodeForwardUnknownPeer: forwarding to an address outside the
// membership is refused outright.
func TestNodeForwardUnknownPeer(t *testing.T) {
	n, err := NewNode(Config{Self: "self:1", Peers: []string{"peer:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Forward(context.Background(), "stranger:3", "/v1/route", nil); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
}

// TestNodeStartClose: the heartbeat loop starts, observes the peer, and
// Close is idempotent and leaves nothing running.
func TestNodeStartClose(t *testing.T) {
	addr, _ := newTestPeer(t, nil)
	reg := obs.New()
	n, err := NewNode(Config{
		Self:           "self:1",
		Peers:          []string{addr},
		HeartbeatEvery: 5 * time.Millisecond,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("cluster.heartbeat_ok").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never probed the peer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	n.Close()
	n.Close() // idempotent
}
