package universal

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"universalnet/internal/pebble"
	"universalnet/internal/topology"
)

func bigsimFixture(t testing.TB, n int) (*Host, func() *pebble.ChunkedLog) {
	t.Helper()
	host, err := ButterflyHost(4)
	if err != nil {
		t.Fatal(err)
	}
	return host, func() *pebble.ChunkedLog {
		return pebble.NewChunkedLog(pebble.ChunkedLogOptions{
			TargetChunkBytes: 32 << 10,
			MemBudgetBytes:   64 << 10,
			SpillDir:         t.TempDir(),
		})
	}
}

// TestRunStreamingEmbeddingBuildShardsDeterministic: every build-shard ×
// validator-shard × barrier-window combination produces the same stream
// fingerprint and the same deterministic report fields — the byte-identity
// acceptance criterion, asserted end to end through the real pipeline.
func TestRunStreamingEmbeddingBuildShardsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	guest, err := topology.RandomGuest(rng, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	host, mkChunks := bigsimFixture(t, 2000)
	var base *StreamRunReport
	for _, bs := range []int{1, 2, 3, 5} {
		for _, vs := range []int{1, 3} {
			chunks := mkChunks()
			rep, err := RunStreamingEmbedding(guest, host.Graph, nil, 2, StreamRunConfig{
				Shards:        vs,
				BuildShards:   bs,
				Window:        4,
				BarrierWindow: 8,
				Chunks:        chunks,
			})
			if err != nil {
				t.Fatalf("build-shards=%d shards=%d: %v", bs, vs, err)
			}
			if err := chunks.Close(); err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rep
				continue
			}
			if rep.Fingerprint != base.Fingerprint ||
				rep.HostSteps != base.HostSteps ||
				rep.Ops != base.Ops ||
				rep.EncodedBytes != base.EncodedBytes {
				t.Fatalf("build-shards=%d shards=%d: diverged from baseline: %+v vs %+v", bs, vs, rep, base)
			}
		}
	}
	if base.Fingerprint == 0 {
		t.Fatal("fingerprint not populated")
	}
}

// TestRunStreamingEmbeddingCancel: a pre-cancelled context tears the whole
// pipeline down — builder workers, merger, watcher, validator shards — with
// ctx.Err() as the verdict and no goroutine left behind.
func TestRunStreamingEmbeddingCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	guest, err := topology.RandomGuest(rng, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := bigsimFixture(t, 50000)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunStreamingEmbedding(guest, host.Graph, nil, 3, StreamRunConfig{
		Shards:      2,
		BuildShards: 2,
		Window:      2,
		Ctx:         ctx,
	})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunStreamingEmbeddingAutoSizing: zero config resolves both sides of
// the pipeline from GOMAXPROCS and reports the resolved values.
func TestRunStreamingEmbeddingAutoSizing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	guest, err := topology.RandomGuest(rng, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := bigsimFixture(t, 500)
	rep, err := RunStreamingEmbedding(guest, host.Graph, nil, 2, StreamRunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	procs := runtime.GOMAXPROCS(0)
	wantBuild := procs / 2
	if wantBuild < 1 {
		wantBuild = 1
	}
	wantValidate := procs
	if m := host.Graph.N(); wantValidate > m {
		wantValidate = m
	}
	if rep.BuildShards != wantBuild || rep.ValidateShards != wantValidate {
		t.Fatalf("auto-sized to build=%d validate=%d, want build=%d validate=%d",
			rep.BuildShards, rep.ValidateShards, wantBuild, wantValidate)
	}
}
