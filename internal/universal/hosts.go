package universal

import (
	"fmt"
	"math/rand"

	"universalnet/internal/routing"
	"universalnet/internal/topology"
)

// ButterflyHost returns the wrapped butterfly of dimension d (m = d·2^d
// processors) with a greedy shortest-path router. Section 2's canonical
// small universal network: slowdown O((n/m)·log m).
func ButterflyHost(d int) (*Host, error) {
	g, err := topology.WrappedButterfly(d)
	if err != nil {
		return nil, err
	}
	return &Host{
		Name:   fmt.Sprintf("butterfly(d=%d,m=%d)", d, g.N()),
		Graph:  g,
		Router: &routing.GreedyRouter{Mode: routing.MultiPort},
	}, nil
}

// TorusHost returns the √m×√m torus with dimension-order routing — the
// diameter-Θ(√m) contrast host for the trade-off experiments.
func TorusHost(m int) (*Host, error) {
	g, err := topology.Torus(m)
	if err != nil {
		return nil, err
	}
	N, err := topology.SideLength(m)
	if err != nil {
		return nil, err
	}
	return &Host{
		Name:   fmt.Sprintf("torus(m=%d)", m),
		Graph:  g,
		Router: &routing.DimensionOrderRouter{N: N, Wrap: true, Mode: routing.MultiPort},
	}, nil
}

// ExpanderHost returns a random deg-regular host (an expander w.h.p.) with a
// greedy router — the natural candidate for a good universal network.
func ExpanderHost(m, deg int, seed int64) (*Host, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.RandomRegular(rng, m, deg)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		// Regenerate a few times; random regular graphs are connected w.h.p.
		for i := 0; i < 10 && !g.IsConnected(); i++ {
			g, err = topology.RandomRegular(rng, m, deg)
			if err != nil {
				return nil, err
			}
		}
		if !g.IsConnected() {
			return nil, fmt.Errorf("universal: could not generate connected expander host")
		}
	}
	return &Host{
		Name:   fmt.Sprintf("expander(m=%d,deg=%d)", m, deg),
		Graph:  g,
		Router: &routing.GreedyRouter{Mode: routing.MultiPort},
	}, nil
}

// RingHost returns the m-cycle with a greedy router — the degenerate host
// whose diameter makes universal simulation maximally slow; a baseline.
func RingHost(m int) (*Host, error) {
	g, err := topology.Ring(m)
	if err != nil {
		return nil, err
	}
	return &Host{
		Name:   fmt.Sprintf("ring(m=%d)", m),
		Graph:  g,
		Router: &routing.GreedyRouter{Mode: routing.MultiPort},
	}, nil
}

// CCCHost returns the cube-connected cycles host of dimension d.
func CCCHost(d int) (*Host, error) {
	g, err := topology.CubeConnectedCycles(d)
	if err != nil {
		return nil, err
	}
	return &Host{
		Name:   fmt.Sprintf("ccc(d=%d,m=%d)", d, g.N()),
		Graph:  g,
		Router: &routing.GreedyRouter{Mode: routing.MultiPort},
	}, nil
}
