package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/pebble"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestBuildBenesProtocolValidates(t *testing.T) {
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 32, 4) // load 4 on 8 rows
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildBenesProtocol(guest, bh, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatalf("Beneš protocol invalid: %v", err)
	}
	comp := sim.MixMod(guest, rng)
	if err := pebble.VerifyCarries(pr, comp); err != nil {
		t.Fatalf("Beneš protocol does not carry the computation: %v", err)
	}
}

func TestBuildBenesProtocolDeterministicShape(t *testing.T) {
	bh, err := NewBenesHost(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr1, err := BuildBenesProtocol(guest, bh, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := BuildBenesProtocol(guest, bh, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pr1.HostSteps() != pr2.HostSteps() || pr1.OpCount() != pr2.OpCount() {
		t.Error("offline protocol not deterministic")
	}
	// T' = T·maxLoad + (T−1)·(2(R−1)+2d) for some R ≤ h: per-guest-step
	// transfer cost is uniform.
	maxLoad := 4
	T := 4
	transferTotal := pr1.HostSteps() - T*maxLoad
	if transferTotal%(T-1) != 0 {
		t.Errorf("transfer steps %d not uniform across %d phases", transferTotal, T-1)
	}
	perPhase := transferTotal / (T - 1)
	if perPhase < 2*bh.D {
		t.Errorf("per-phase transfer %d below one traversal", perPhase)
	}
	if (perPhase-2*bh.D*1)%2 != 0 {
		t.Errorf("per-phase transfer %d not of the form 2(R−1)+2d", perPhase)
	}
}

func TestBuildBenesProtocolMatchesRouterAccounting(t *testing.T) {
	// The op-level protocol's per-phase transfer cost equals the
	// OfflineBenesRouter's pipelined step count for the same relation.
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildBenesProtocol(guest, bh, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Compare with the step accounting of the router-based simulator.
	es := &EmbeddingSimulator{Host: &bh.Host, F: bh.Assignment(24)}
	comp := sim.MixMod(guest, rng)
	rep, err := es.Run(comp, 2)
	if err != nil {
		t.Fatal(err)
	}
	maxLoad := 3                                   // 24 guests on 8 rows
	perPhaseProtocol := pr.HostSteps() - 2*maxLoad // one transfer phase (T−1 = 1)
	perPhaseRouter := rep.RouteSteps / 2           // router runs per guest step
	// Same round count R, different pipeline rates: the pebble model cannot
	// receive and send in one step (rate 2: 2(R−1)+2d), the link model can
	// (rate 1: (R−1)+2d). Check the exact relation.
	twoD := 2 * bh.D
	rProtocol := (perPhaseProtocol-twoD)/2 + 1
	rRouter := perPhaseRouter - twoD + 1
	if rProtocol != rRouter {
		t.Errorf("round counts disagree: protocol %d vs router %d (per-phase %d vs %d)",
			rProtocol, rRouter, perPhaseProtocol, perPhaseRouter)
	}
}

func TestBuildBenesProtocolGuards(t *testing.T) {
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBenesProtocol(guest, bh, 0); err == nil {
		t.Error("T=0 accepted")
	}
	small, err := topology.RandomGuest(rng, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBenesProtocol(small, bh, 2); err == nil {
		t.Error("guest smaller than row count accepted")
	}
}

func TestBuildBenesProtocolSingleStep(t *testing.T) {
	// T = 1: generation only, no transfers.
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	guest, err := topology.RandomGuest(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildBenesProtocol(guest, bh, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.HostSteps() != 2 { // maxLoad = 2
		t.Errorf("steps = %d, want 2", pr.HostSteps())
	}
}
