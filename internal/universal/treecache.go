package universal

import (
	"fmt"

	"universalnet/internal/cache"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
)

// TreeCachedHost is the construction behind the paper's remark that a
// constant-degree network of size 2^{O(t)}·n — n constant-degree trees of
// depth t — simulates every length-t computation of every degree-≤c guest
// with constant slowdown: tree i computes (P_i, t) at its root by a
// pipelined tournament. A node at tree depth τ produces one pebble of guest
// time t−τ; its c+1 children supply the predecessors; leaves hold initial
// pebbles (which the pebble game grants to every processor). Each level
// costs c+2 host steps (c+1 receives + 1 generate), so T' = t·(c+2) and the
// slowdown is the constant c+2, independent of n and t.
type TreeCachedHost struct {
	Graph    *graph.Graph
	N        int // number of guest processors / trees
	C        int // guest degree bound; trees are (c+1)-ary
	Depth    int // guest steps simulated = tree depth
	treeSize int
	// protocols memoizes SimulateProtocol by guest hash on the shared
	// internal/cache LRU: the protocol depends only on (host, guest), so
	// repeat simulations of one guest replay it instead of rebuilding the
	// full tournament schedule. Returned protocols are shared — callers
	// must treat them as read-only (every current consumer validates or
	// replays, never mutates).
	protocols *cache.Cache[uint64, *pebble.Protocol]
}

// protocolSize estimates a protocol's footprint for the cache budget: each
// op is four ints plus the pebble pair, and Steps adds a slice header per
// host step.
func protocolSize(pr *pebble.Protocol) int64 {
	ops := 0
	for _, step := range pr.Steps {
		ops += len(step)
	}
	return int64(48*ops + 24*len(pr.Steps) + 64)
}

// SetObs wires the host's protocol cache counters
// (universal.treecache.hits/misses/evictions) onto reg.
func (h *TreeCachedHost) SetObs(reg *obs.Registry) { h.protocols.SetObs(reg) }

// treeNodeCount returns Σ_{l=0}^{depth} (c+1)^l.
func treeNodeCount(c, depth int) int {
	size, pow := 0, 1
	for l := 0; l <= depth; l++ {
		size += pow
		pow *= c + 1
	}
	return size
}

// BuildTreeCachedHost constructs the host: n complete (c+1)-ary trees of the
// given depth, with consecutive roots joined in a ring so the host is
// connected. Host size is n·((c+1)^{depth+1}−1)/c = 2^{O(depth)}·n.
func BuildTreeCachedHost(n, c, depth int) (*TreeCachedHost, error) {
	if n < 3 || c < 1 || depth < 1 {
		return nil, fmt.Errorf("universal: invalid tree-cache parameters n=%d c=%d depth=%d", n, c, depth)
	}
	size := treeNodeCount(c, depth)
	if size > 1<<22 || n*size > 1<<24 {
		return nil, fmt.Errorf("universal: tree-cache host too large (%d nodes per tree)", size)
	}
	total := n * size
	b := graph.NewBuilder(total)
	for i := 0; i < n; i++ {
		base := i * size
		for x := 0; x < size; x++ {
			for k := 1; k <= c+1; k++ {
				child := x*(c+1) + k
				if child < size {
					b.MustAddEdge(base+x, base+child)
				}
			}
		}
		// Ring over the roots.
		b.MustAddEdge(i*size, ((i+1)%n)*size)
	}
	return &TreeCachedHost{
		Graph: b.Build(), N: n, C: c, Depth: depth, treeSize: size,
		protocols: cache.New[uint64, *pebble.Protocol]("universal.treecache", 1<<24, protocolSize, nil),
	}, nil
}

// Root returns the host index of tree i's root.
func (h *TreeCachedHost) Root(i int) int { return i * h.treeSize }

// M returns the host size.
func (h *TreeCachedHost) M() int { return h.Graph.N() }

// Slowdown returns the guaranteed constant slowdown c+2.
func (h *TreeCachedHost) Slowdown() int { return h.C + 2 }

// SimulateProtocol produces (and thereby proves realizable) the pebble-game
// protocol simulating Depth steps of the guest with slowdown exactly c+2.
// The guest must have ≤ N processors and maximum degree ≤ C.
func (h *TreeCachedHost) SimulateProtocol(guest *graph.Graph) (*pebble.Protocol, error) {
	if guest.N() != h.N {
		return nil, fmt.Errorf("universal: guest has %d processors, host built for %d", guest.N(), h.N)
	}
	if guest.MaxDegree() > h.C {
		return nil, fmt.Errorf("universal: guest degree %d exceeds host's c=%d", guest.MaxDegree(), h.C)
	}
	return h.protocols.GetOrCompute(guest.Hash(), func() (*pebble.Protocol, error) {
		return h.buildProtocol(guest)
	})
}

// buildProtocol constructs the tournament protocol from scratch; the
// cacheable core of SimulateProtocol.
func (h *TreeCachedHost) buildProtocol(guest *graph.Graph) (*pebble.Protocol, error) {
	T := h.Depth
	stepsPerLevel := h.C + 2
	pr := &pebble.Protocol{
		Guest: guest,
		Host:  h.Graph,
		T:     T,
		Steps: make([][]pebble.Op, T*stepsPerLevel),
	}
	// For every tree i, walk the assignment top-down: node x at depth τ is
	// assigned guest π(x); it produces pebble (π(x), T−τ). Internal nodes
	// receive from child 0 (same guest) and children 1..d (the d guest
	// neighbors), then generate.
	for i := 0; i < h.N; i++ {
		base := i * h.treeSize
		type frame struct {
			x, depth, guest int
		}
		stack := []frame{{x: 0, depth: 0, guest: i}}
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fr.depth == T {
				continue // leaf: holds the initial pebble (π, 0) natively
			}
			prevTime := T - fr.depth - 1
			nbrs := guest.Neighbors(fr.guest)
			used := append([]int{fr.guest}, nbrs...)
			levelBase := prevTime * stepsPerLevel // children complete here
			for k, gj := range used {
				childX := fr.x*(h.C+1) + k + 1
				child := base + childX
				parent := base + fr.x
				pb := pebble.Type{P: gj, T: prevTime}
				step := levelBase + k
				pr.Steps[step] = append(pr.Steps[step],
					pebble.Op{Kind: pebble.Send, Proc: child, Pebble: pb, Peer: parent},
					pebble.Op{Kind: pebble.Receive, Proc: parent, Pebble: pb, Peer: child})
				stack = append(stack, frame{x: childX, depth: fr.depth + 1, guest: gj})
			}
			genStep := levelBase + len(used)
			pr.Steps[genStep] = append(pr.Steps[genStep], pebble.Op{
				Kind: pebble.Generate, Proc: base + fr.x,
				Pebble: pebble.Type{P: fr.guest, T: T - fr.depth},
			})
		}
	}
	return pr, nil
}
