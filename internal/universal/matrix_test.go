package universal

import (
	"fmt"
	"math/rand"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

// The integration matrix: every workload on its natural guest, simulated on
// every host kind, trace-verified — the universality property exercised
// across the full workload × host grid.
func TestWorkloadHostMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(101))

	type workload struct {
		name  string
		guest *graph.Graph
		comp  *sim.Computation
		steps int
	}
	var workloads []workload

	// MixMod on a random 4-regular guest.
	rg, err := topology.RandomGuest(rng, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"mixmod/random4", rg, sim.MixMod(rg, rng), 4})

	// Majority CA on a torus guest.
	tg, err := topology.Torus(64)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]sim.State, 64)
	for i := range init {
		if rng.Float64() < 0.5 {
			init[i] = 1
		}
	}
	ca, err := sim.CellularAutomaton(tg, init, []sim.State{0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"majority-ca/torus", tg, ca, 5})

	// BFS distances on a CCC guest.
	cg, err := topology.CubeConnectedCycles(3)
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := sim.BFSDistance(cg, 0)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"bfs/ccc", cg, bfs, 6})

	// Prefix sums on a ring guest.
	ring, err := topology.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]sim.State, 64)
	for i := range vals {
		vals[i] = sim.State(rng.Intn(1000))
	}
	ps, err := sim.PrefixSumRing(ring, vals)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"prefix/ring", ring, ps, 5})

	// Max consensus on a shuffle-exchange guest.
	se, err := topology.ShuffleExchange(6)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := sim.MaxConsensus(se, sim.RandomInit(64, rng))
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{"maxcons/shuffle-exchange", se, mc, 4})

	hosts := map[string]func() (*Host, error){
		"butterfly": func() (*Host, error) { return ButterflyHost(3) },
		"torus":     func() (*Host, error) { return TorusHost(16) },
		"expander":  func() (*Host, error) { return ExpanderHost(16, 4, 3) },
		"ring":      func() (*Host, error) { return RingHost(16) },
		"ccc":       func() (*Host, error) { return CCCHost(3) },
	}
	for _, wl := range workloads {
		direct, err := wl.comp.Run(wl.steps)
		if err != nil {
			t.Fatalf("%s direct: %v", wl.name, err)
		}
		for hname, build := range hosts {
			t.Run(fmt.Sprintf("%s_on_%s", wl.name, hname), func(t *testing.T) {
				host, err := build()
				if err != nil {
					t.Fatal(err)
				}
				rep, err := (&EmbeddingSimulator{Host: host}).Run(wl.comp, wl.steps)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Trace.Checksum() != direct.Checksum() {
					t.Fatal("trace diverged")
				}
				if rep.Slowdown < 1 {
					t.Errorf("slowdown %f < 1", rep.Slowdown)
				}
			})
		}
	}
}
