// Package universal implements the simulations the paper's bounds are
// about. The centerpiece is the Theorem 2.1 simulator: a static embedding of
// an arbitrary guest network into a smaller host, simulating step by step —
// local computation sequentially per host processor, communication as an
// ⌈n/m⌉–⌈n/m⌉ routing problem on the host. The simulator maintains real
// per-host-processor memories, so a guest state is only used where a copy
// has actually arrived; the reconstructed guest trace is verified against
// direct execution.
//
// The package also provides the tree-cached host of the paper's
// introduction (n constant-degree trees of depth t simulate any length-t
// computation with constant slowdown) and host/router bundles for the
// experiments.
package universal

import (
	"fmt"

	"universalnet/internal/cache"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
)

// Host bundles a host graph with the router used for its message phases.
type Host struct {
	Name   string
	Graph  *graph.Graph
	Router routing.Router
}

// EmbeddingSimulator simulates guest computations on a host through a
// static assignment F (guest processor → host processor), as in the proof
// of Theorem 2.1.
type EmbeddingSimulator struct {
	Host *Host
	// F[i] is the host processor simulating guest processor i. Nil selects
	// the balanced assignment i mod m.
	F []int
	// Obs, when non-nil, receives simulation metrics — most importantly the
	// host-steps-per-guest-step histogram, the measured distribution behind
	// the Theorem 2.1 slowdown s = (host steps)/(guest steps). It is also
	// threaded into the routing substrate for per-phase congestion stats.
	Obs *obs.Registry
	// Schedules, when non-nil, is a shared routing-schedule cache the
	// simulator consults before recomputing the fixed ⌈n/m⌉–⌈n/m⌉ relation:
	// the schedule "depends on G only" (§2), so distinct runs — and distinct
	// service requests — over the same (host, relation) replay one schedule.
	// Nil keeps the previous behavior of a private per-run memo.
	Schedules *cache.Cache[string, routing.Result]
}

// hostStepBuckets bounds the host-steps-per-guest-step histogram: the
// Theorem 2.1 prediction is ⌈n/m⌉·O(log m), so powers of two up to 1024
// cover every experiment regime.
var hostStepBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// RunReport summarizes one simulated execution.
type RunReport struct {
	GuestSteps   int
	HostSteps    int     // total host steps charged
	ComputeSteps int     // host steps spent on sequential local computation
	RouteSteps   int     // host steps spent routing configurations
	Slowdown     float64 // HostSteps / GuestSteps
	Inefficiency float64 // Slowdown · m / n
	MaxLoad      int     // ⌈n/m⌉ for the balanced assignment
	Trace        *sim.Trace
}

// Run simulates T steps of the computation c on the host and returns the
// report, including the guest trace as reconstructed purely from host-local
// memories. An error is returned if a host processor ever needs a neighbor
// configuration that has not arrived — the simulation correctness invariant.
func (es *EmbeddingSimulator) Run(c *sim.Computation, T int) (*RunReport, error) {
	guest := c.G
	n, m := guest.N(), es.Host.Graph.N()
	if T < 0 {
		return nil, fmt.Errorf("universal: negative T")
	}
	f := es.F
	if f == nil {
		f = make([]int, n)
		for i := range f {
			f[i] = i % m
		}
	}
	if len(f) != n {
		return nil, fmt.Errorf("universal: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return nil, fmt.Errorf("universal: guest %d on invalid host %d", i, q)
		}
	}
	load := make([]int, m)
	for _, q := range f {
		load[q]++
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}

	// mem[q][i] is the newest configuration of guest i known at host q,
	// with memT[q][i] the guest time it belongs to (-1 = unknown).
	mem := make([][]sim.State, m)
	memT := make([][]int, m)
	for q := 0; q < m; q++ {
		mem[q] = make([]sim.State, n)
		memT[q] = make([]int, n)
		for i := range memT[q] {
			memT[q][i] = -1
		}
	}
	for i := 0; i < n; i++ {
		mem[f[i]][i] = c.Init[i]
		memT[f[i]][i] = 0
	}

	// The communication demands are fixed by the guest: guest i's new
	// configuration must reach the host of every guest neighbor. This is
	// the ⌈n/m⌉–⌈n/m⌉ problem of Theorem 2.1, identical every step.
	var pairs []routing.Pair
	type delivery struct{ i, dstHost int }
	var deliveries []delivery
	for i := 0; i < n; i++ {
		seen := map[int]bool{f[i]: true}
		for _, j := range guest.Neighbors(i) {
			if !seen[f[j]] {
				seen[f[j]] = true
				pairs = append(pairs, routing.Pair{Src: f[i], Dst: f[j]})
				deliveries = append(deliveries, delivery{i: i, dstHost: f[j]})
			}
		}
	}
	problem := &routing.Problem{N: m, Pairs: pairs}
	// The relation is identical every guest step ("known in advance", §2):
	// route it once and replay the schedule's cost. Routers here are
	// deterministic for a fixed seed, so this changes wall-clock only.
	router := &routing.CachedRouter{Inner: es.Host.Router, Cache: es.Schedules}
	if es.Obs != nil {
		routing.SetObs(router, es.Obs)
	}
	// Resolved once; nil when disabled, and Observe on nil is a no-op.
	hostStepHist := es.Obs.Histogram("universal.host_steps_per_guest_step", hostStepBuckets)
	sp := es.Obs.StartSpan("universal.run",
		obs.KV("guest", c.Name), obs.KV("n", n), obs.KV("m", m), obs.KV("steps", T))
	defer sp.End()

	rep := &RunReport{GuestSteps: T, MaxLoad: maxLoad}
	trace := &sim.Trace{States: make([][]sim.State, T+1)}
	trace.States[0] = append([]sim.State(nil), c.Init...)

	nbuf := make([]sim.State, 0, guest.MaxDegree())
	for t := 1; t <= T; t++ {
		// Distribution phase for configurations of time t−1 (the initial
		// configurations also need distributing, hence phase-before-compute).
		stepRoute := 0
		if len(pairs) > 0 {
			res, err := router.Route(es.Host.Graph, problem)
			if err != nil {
				return nil, fmt.Errorf("universal: routing at guest step %d: %w", t, err)
			}
			rep.RouteSteps += res.Steps
			stepRoute = res.Steps
		}
		hostStepHist.Observe(int64(stepRoute + maxLoad))
		for _, d := range deliveries {
			src := f[d.i]
			if memT[src][d.i] != t-1 {
				return nil, fmt.Errorf("universal: host %d ships stale state of guest %d (have t=%d, want %d)",
					src, d.i, memT[src][d.i], t-1)
			}
			mem[d.dstHost][d.i] = mem[src][d.i]
			memT[d.dstHost][d.i] = t - 1
		}
		// Compute phase: each host processor updates its guests
		// sequentially; cost = maxLoad host steps.
		next := make([]sim.State, n)
		for i := 0; i < n; i++ {
			q := f[i]
			if memT[q][i] != t-1 {
				return nil, fmt.Errorf("universal: host %d missing own guest %d at t=%d", q, i, t-1)
			}
			nbuf = nbuf[:0]
			for _, j := range guest.Neighbors(i) {
				if memT[q][j] != t-1 {
					return nil, fmt.Errorf("universal: host %d computing guest %d lacks neighbor %d at t=%d",
						q, i, j, t-1)
				}
				nbuf = append(nbuf, mem[q][j])
			}
			next[i] = c.Step(i, mem[q][i], nbuf)
		}
		for i := 0; i < n; i++ {
			mem[f[i]][i] = next[i]
			memT[f[i]][i] = t
		}
		rep.ComputeSteps += maxLoad
		trace.States[t] = next
	}
	rep.HostSteps = rep.ComputeSteps + rep.RouteSteps
	if T > 0 {
		rep.Slowdown = float64(rep.HostSteps) / float64(T)
		rep.Inefficiency = rep.Slowdown * float64(m) / float64(n)
	}
	rep.Trace = trace
	if es.Obs != nil {
		es.Obs.Counter("universal.runs").Inc()
		es.Obs.Counter("universal.guest_steps").Add(int64(T))
		es.Obs.Counter("universal.route_steps").Add(int64(rep.RouteSteps))
		es.Obs.Counter("universal.compute_steps").Add(int64(rep.ComputeSteps))
		es.Obs.Gauge("universal.max_load").SetMax(int64(maxLoad))
	}
	return rep, nil
}
