package universal

import (
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/routing"
)

// The offline host of Theorem 2.1's actual proof: "the ⌈n/m⌉–⌈n/m⌉ routing
// problem … can be solved by routing O(n/m) permutations that depend on G
// only, and, therefore, are known in advance … in time O(log m)". We realize
// it literally: the host is a wrapped Beneš network; the guests live on its
// level-0 processors; the fixed per-step relation is decomposed once into
// ≤ h permutation rounds (König), each routed by Waksman's vertex-disjoint
// paths, with consecutive rounds pipelined through the levels. The routing
// cost is DETERMINISTIC: (rounds−1) + 2d per guest step — the
// O((n/m)·log m) form with no randomness and no congestion variance.

// BenesHost is a wrapped Beneš network whose level-0 row nodes carry the
// guests. Size m_total = 2d·2^d; the "effective" m of the Theorem 2.1
// statement is the 2^d level-0 processors.
type BenesHost struct {
	Host
	D    int
	Rows int
}

// NewBenesHost builds the wrapped Beneš host of dimension d: the Beneš
// levels 0..2d−1 plus wrap edges joining the last level to level 0 in the
// same row (making the network 4-regular-ish and the round trip possible).
func NewBenesHost(d int) (*BenesHost, error) {
	bg, err := routing.BenesGraph(d)
	if err != nil {
		return nil, err
	}
	rows := 1 << d
	levels := routing.BenesLevels(d)
	b := graph.NewBuilder(bg.N())
	for _, e := range bg.Edges() {
		b.MustAddEdge(e.U, e.V)
	}
	for r := 0; r < rows; r++ {
		b.MustAddEdge(routing.BenesNode(d, levels-1, r), routing.BenesNode(d, 0, r))
	}
	g := b.Build()
	bh := &BenesHost{D: d, Rows: rows}
	bh.Host = Host{
		Name:  fmt.Sprintf("benes(d=%d,rows=%d,m=%d)", d, rows, g.N()),
		Graph: g,
	}
	bh.Host.Router = &OfflineBenesRouter{D: d}
	return bh, nil
}

// GuestNode returns the host processor carrying guests of row r (level 0).
func (bh *BenesHost) GuestNode(r int) int { return routing.BenesNode(bh.D, 0, r) }

// Assignment places n guests on the level-0 rows, balanced (guest i on row
// i mod 2^d).
func (bh *BenesHost) Assignment(n int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = bh.GuestNode(i % bh.Rows)
	}
	return f
}

// OfflineBenesRouter routes problems whose endpoints all lie on level-0
// nodes of the wrapped Beneš network, by decomposing the relation into
// permutation rounds and certifying each round's Waksman paths. Steps are
// deterministic. With Serial unset (the default), consecutive rounds are
// pipelined through the levels — round k enters level 0 at step k, so level
// ℓ at step τ carries round τ−ℓ and no (node, step) is used twice — for a
// total of (rounds−1) + 2d steps; Serial mode charges rounds·2d.
type OfflineBenesRouter struct {
	D      int
	Serial bool
}

// Name implements routing.Router.
func (r *OfflineBenesRouter) Name() string { return fmt.Sprintf("offline-benes(d=%d)", r.D) }

// Route implements routing.Router.
func (r *OfflineBenesRouter) Route(g *graph.Graph, p *Problem) (routing.Result, error) {
	return r.route(g, p)
}

// Problem aliases routing.Problem so the Router interface matches.
type Problem = routing.Problem

func (r *OfflineBenesRouter) route(g *graph.Graph, p *routing.Problem) (routing.Result, error) {
	d := r.D
	rows := 1 << d
	levels := routing.BenesLevels(d)
	if g.N() != levels*rows {
		return routing.Result{}, fmt.Errorf("universal: offline router expects the wrapped Beneš graph (%d nodes), got %d", levels*rows, g.N())
	}
	// Translate node pairs to row pairs; all endpoints must be level 0.
	rowPairs := make([]routing.Pair, 0, len(p.Pairs))
	for _, pr := range p.Pairs {
		if pr.Src >= rows || pr.Dst >= rows {
			return routing.Result{}, fmt.Errorf("universal: offline router needs level-0 endpoints; got pair %v", pr)
		}
		if pr.Src != pr.Dst {
			rowPairs = append(rowPairs, pr)
		}
	}
	if len(rowPairs) == 0 {
		return routing.Result{Delivered: len(p.Pairs)}, nil
	}
	rounds, err := routing.DecomposeHRelation(rows, rowPairs)
	if err != nil {
		return routing.Result{}, err
	}
	for _, round := range rounds {
		perm := completeRowPermutation(rows, round)
		// Certify the Waksman schedule exists (vertex-disjoint paths).
		if _, err := routing.OfflinePermutationSteps(d, perm); err != nil {
			return routing.Result{}, err
		}
	}
	perRound := (levels - 1) + 1 // Beneš stages + wrap hop back to level 0
	var steps int
	if r.Serial {
		steps = len(rounds) * perRound
	} else {
		steps = (len(rounds) - 1) + perRound
	}
	return routing.Result{
		Steps:         steps,
		Delivered:     len(p.Pairs),
		StepsPerPhase: []int{len(rounds)},
	}, nil
}

// completeRowPermutation extends a partial row permutation to a full one.
func completeRowPermutation(rows int, pairs []routing.Pair) []int {
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = -1
	}
	used := make([]bool, rows)
	for _, p := range pairs {
		perm[p.Src] = p.Dst
		used[p.Dst] = true
	}
	free := make([]int, 0)
	for r := 0; r < rows; r++ {
		if !used[r] {
			free = append(free, r)
		}
	}
	fi := 0
	for s := 0; s < rows; s++ {
		if perm[s] < 0 {
			perm[s] = free[fi]
			fi++
		}
	}
	return perm
}
