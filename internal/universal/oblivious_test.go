package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
)

func TestObliviousPatternValidate(t *testing.T) {
	good := ObliviousPattern{{1, 0, 2}, {2, 1, 0}}
	if err := good.Validate(3); err != nil {
		t.Error(err)
	}
	if err := (ObliviousPattern{{0, 0, 1}}).Validate(3); err == nil {
		t.Error("duplicate recipient accepted")
	}
	if err := (ObliviousPattern{{0, 1}}).Validate(3); err == nil {
		t.Error("short round accepted")
	}
	if err := (ObliviousPattern{{0, 1, 9}}).Validate(3); err == nil {
		t.Error("out-of-range recipient accepted")
	}
}

func TestRandomObliviousPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomObliviousPattern(rng, 16, 5)
	if len(p) != 5 {
		t.Fatalf("rounds = %d", len(p))
	}
	if err := p.Validate(16); err != nil {
		t.Error(err)
	}
}

func TestDirectObliviousRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	init := sim.RandomInit(12, rng)
	pattern := RandomObliviousPattern(rng, 12, 6)
	tr1, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Checksum() != tr2.Checksum() {
		t.Error("direct run not deterministic")
	}
	if tr1.T() != 6 || tr1.N() != 12 {
		t.Errorf("trace shape %dx%d", tr1.T(), tr1.N())
	}
}

func TestRunObliviousMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 48
	init := sim.RandomInit(n, rng)
	pattern := RandomObliviousPattern(rng, n, 4)
	direct, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ButterflyHost(3) // m = 24 < n
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).RunOblivious(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("oblivious simulation diverged from direct run")
	}
	if rep.MaxLoad != 2 {
		t.Errorf("load %d, want 2", rep.MaxLoad)
	}
	if rep.Slowdown < 1 {
		t.Errorf("slowdown %f", rep.Slowdown)
	}
	if rep.HostSteps != rep.ComputeSteps+rep.RouteSteps {
		t.Error("accounting inconsistent")
	}
}

func TestRunObliviousOnExpanderHost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 64
	init := sim.RandomInit(n, rng)
	pattern := RandomObliviousPattern(rng, n, 3)
	direct, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ExpanderHost(32, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).RunOblivious(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("diverged on expander host")
	}
}

func TestRunObliviousGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	init := sim.RandomInit(8, rng)
	host, err := RingHost(4)
	if err != nil {
		t.Fatal(err)
	}
	es := &EmbeddingSimulator{Host: host, F: []int{0}}
	if _, err := es.RunOblivious(init, RandomObliviousPattern(rng, 8, 2)); err == nil {
		t.Error("short assignment accepted")
	}
	es = &EmbeddingSimulator{Host: host}
	if _, err := es.RunOblivious(init, ObliviousPattern{{0, 0, 0, 0, 0, 0, 0, 0}}); err == nil {
		t.Error("non-permutation round accepted")
	}
	bad := make([]int, 8)
	bad[2] = 77
	es = &EmbeddingSimulator{Host: host, F: bad}
	if _, err := es.RunOblivious(init, RandomObliviousPattern(rng, 8, 2)); err == nil {
		t.Error("invalid host id accepted")
	}
}

func TestRunObliviousEmptyPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init := sim.RandomInit(8, rng)
	host, err := RingHost(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).RunOblivious(init, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HostSteps != 0 || rep.Trace.T() != 0 {
		t.Errorf("empty pattern: %+v", rep)
	}
}

func TestObliviousIdentityPatternStaysLocal(t *testing.T) {
	// Identity rounds send i→i: no routing needed at all.
	rng := rand.New(rand.NewSource(7))
	n := 12
	init := sim.RandomInit(n, rng)
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	pattern := ObliviousPattern{id, id}
	host, err := RingHost(6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&EmbeddingSimulator{Host: host}).RunOblivious(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RouteSteps != 0 {
		t.Errorf("identity pattern routed %d steps", rep.RouteSteps)
	}
	direct, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Error("identity pattern diverged")
	}
}
