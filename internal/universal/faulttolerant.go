package universal

import (
	"errors"
	"fmt"

	"universalnet/internal/faults"
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
)

// ErrUnrecoverable is returned when a fault kills the last copy of some
// guest state (every replica of a guest crashed, survivors got partitioned
// away, or a routing phase lost packets beyond the retry budget). The
// simulator never fabricates a trace: either the reconstructed guest trace
// is byte-identical to direct execution, or the run ends with this error.
var ErrUnrecoverable = errors.New("universal: unrecoverable fault")

// FaultTolerantSimulator runs Theorem 2.1-style simulation under a fault
// plan. It is the dynamic probe of the paper's trade-off: a crash of k host
// processors forces the run from size m down to m−k, and the reported
// slowdown measures the move along the m·s = Ω(n·log m) curve.
//
// Redundancy is the recovery substrate (the §1 dynamic-embedding
// observation realized by RedundantSimulator): each guest is simulated by
// one or more replicas on distinct hosts. When a host crashes,
//
//   - guests whose primary replica died fail over to the surviving replica
//     nearest to the crash site;
//   - lost replicas are re-embedded onto the least-loaded surviving hosts
//     (balanced re-assignment), restoring the replication degree;
//   - a guest with no surviving replica is gone — the run returns
//     ErrUnrecoverable rather than a wrong trace.
//
// Message drops and corruptions force bounded retry rounds in each routing
// phase; permanent link failures degrade the host graph in place. All
// recovery decisions are deterministic (sorted iteration, lowest-id ties,
// hash-derived packet fates), so a plan plus a seed names one exact
// execution.
type FaultTolerantSimulator struct {
	Host *Host
	// Replicas[i] lists the host processors simulating guest i, as in
	// RedundantSimulator. Nil selects the balanced single assignment
	// i mod m (no redundancy: any crash of a populated host is fatal).
	Replicas [][]int
	// Plan is the fault schedule; nil means an ideal host.
	Plan *faults.Plan
	// Obs, when non-nil, receives the run's fault counters (failover and
	// re-embedding events included), host-step histogram, and a run span.
	Obs *obs.Registry
}

// FaultReport extends RunReport with fault accounting.
type FaultReport struct {
	RunReport
	Counters       faults.Counters
	InitialHosts   int // m before any fault
	SurvivingHosts int // m − crashes at the end of the run
	Replication    int // largest replica count of any guest at the start
}

// Run simulates T steps of c under the plan. On success the returned trace
// is verified reconstructible; on unrecoverable faults the error wraps
// ErrUnrecoverable and no trace is returned.
func (ft *FaultTolerantSimulator) Run(c *sim.Computation, T int) (*FaultReport, error) {
	guest := c.G
	n, m := guest.N(), ft.Host.Graph.N()
	if T < 0 {
		return nil, fmt.Errorf("universal: negative T")
	}
	replicas := ft.Replicas
	if replicas == nil {
		replicas = make([][]int, n)
		for i := range replicas {
			replicas[i] = []int{i % m}
		}
	}
	if len(replicas) != n {
		return nil, fmt.Errorf("universal: replica table has %d rows for %d guests", len(replicas), n)
	}
	// Deep-copy: recovery mutates the table.
	reps := make([][]int, n)
	targetR := make([]int, n)
	for i, r := range replicas {
		if len(r) == 0 {
			return nil, fmt.Errorf("universal: guest %d has no replicas", i)
		}
		seen := make(map[int]bool)
		for _, q := range r {
			if q < 0 || q >= m {
				return nil, fmt.Errorf("universal: guest %d replica on invalid host %d", i, q)
			}
			if seen[q] {
				return nil, fmt.Errorf("universal: guest %d has duplicate replica host %d", i, q)
			}
			seen[q] = true
		}
		reps[i] = append([]int(nil), r...)
		targetR[i] = len(r)
	}
	plan := ft.Plan
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		for _, cr := range plan.Crashes {
			if cr.Host >= m {
				return nil, fmt.Errorf("universal: plan crashes host %d outside [0,%d)", cr.Host, m)
			}
		}
	}

	rep := &FaultReport{InitialHosts: m}
	for _, r := range reps {
		if len(r) > rep.Replication {
			rep.Replication = len(r)
		}
	}
	rep.GuestSteps = T

	// Degraded-host bookkeeping. Distances are recomputed from scratch
	// whenever the active graph changes (crash or link failure).
	crashed := make(map[int]bool)
	failed := make(map[graph.Edge]bool)
	active := ft.Host.Graph
	distCache := make(map[int][]int)
	distFrom := func(src int) []int {
		if d, ok := distCache[src]; ok {
			return d
		}
		d := active.BFS(src)
		distCache[src] = d
		return d
	}
	// Full-graph distances for failover target selection: the crash site is
	// isolated in the degraded graph, so "nearest surviving replica" is
	// measured on the original host.
	fullDist := make(map[int][]int)
	fullFrom := func(src int) []int {
		if d, ok := fullDist[src]; ok {
			return d
		}
		d := ft.Host.Graph.BFS(src)
		fullDist[src] = d
		return d
	}

	// Replica-local states, as in RedundantSimulator.
	state := make([][]sim.State, n)
	for i := range state {
		state[i] = make([]sim.State, len(reps[i]))
		for ri := range state[i] {
			state[i][ri] = c.Init[i]
		}
	}
	trace := &sim.Trace{States: make([][]sim.State, T+1)}
	trace.States[0] = append([]sim.State(nil), c.Init...)

	// Communication demands, recomputed whenever topology or placement
	// changes.
	type fetch struct {
		guest   int // whose state moves
		from    int
		forRepl int // index into reps[neighJ]
		neighJ  int // the fetching guest
	}
	var fetches []fetch
	var pairs []routing.Pair
	maxLoad := 0
	placementDirty := true
	rebuildDemands := func() error {
		fetches = fetches[:0]
		pairs = pairs[:0]
		load := make([]int, m)
		for _, r := range reps {
			for _, q := range r {
				load[q]++
			}
		}
		maxLoad = 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		for j := 0; j < n; j++ {
			for ri, q := range reps[j] {
				for _, i := range guest.Neighbors(j) {
					src, best := -1, -1
					for _, p := range reps[i] {
						d := distFrom(p)[q]
						if d < 0 {
							continue
						}
						if best < 0 || d < best {
							src, best = p, d
						}
					}
					if src < 0 {
						return fmt.Errorf("universal: guest %d partitioned from every replica of neighbor %d: %w",
							j, i, ErrUnrecoverable)
					}
					if src != q {
						fetches = append(fetches, fetch{guest: i, from: src, forRepl: ri, neighJ: j})
						pairs = append(pairs, routing.Pair{Src: src, Dst: q})
					}
				}
			}
		}
		return nil
	}

	hostStepHist := ft.Obs.Histogram("universal.host_steps_per_guest_step", hostStepBuckets)
	sp := ft.Obs.StartSpan("universal.ft.run",
		obs.KV("guest", c.Name), obs.KV("n", n), obs.KV("m", m), obs.KV("steps", T))
	defer sp.End()

	nbuf := make([]sim.State, 0, guest.MaxDegree())
	for t := 1; t <= T; t++ {
		// 1. Apply scheduled faults at the start of the step.
		topoDirty := false
		for _, h := range plan.CrashesAt(t) {
			if crashed[h] {
				continue
			}
			crashed[h] = true
			rep.Counters.Crashed++
			topoDirty = true
		}
		for _, e := range plan.LinkFailuresAt(t) {
			if failed[e] || crashed[e.U] || crashed[e.V] || !ft.Host.Graph.HasEdge(e.U, e.V) {
				continue
			}
			failed[e] = true
			rep.Counters.LinksDown++
			topoDirty = true
		}
		if topoDirty {
			active = faults.Degrade(ft.Host.Graph, crashed, failed)
			distCache = make(map[int][]int)
			placementDirty = true
		}

		// 2. Recover: drop dead replicas, fail over primaries, re-embed.
		if topoDirty {
			load := make([]int, m)
			for _, r := range reps {
				for _, q := range r {
					if !crashed[q] {
						load[q]++
					}
				}
			}
			for i := 0; i < n; i++ {
				oldPrimary := reps[i][0]
				survivors := reps[i][:0]
				var liveStates []sim.State
				for ri, q := range reps[i] {
					if crashed[q] {
						continue
					}
					survivors = append(survivors, q)
					liveStates = append(liveStates, state[i][ri])
				}
				reps[i] = survivors
				state[i] = liveStates
				if len(reps[i]) == 0 {
					return nil, fmt.Errorf("universal: guest %d lost every replica at step %d (last on host %d): %w",
						i, t, oldPrimary, ErrUnrecoverable)
				}
				if crashed[oldPrimary] {
					// Failover: promote the surviving replica nearest to the
					// crash site (full-graph distance; ties → list order,
					// which is ascending placement order).
					best, bd := 0, -1
					for ri, q := range reps[i] {
						d := fullFrom(oldPrimary)[q]
						if d >= 0 && (bd < 0 || d < bd) {
							best, bd = ri, d
						}
					}
					reps[i][0], reps[i][best] = reps[i][best], reps[i][0]
					state[i][0], state[i][best] = state[i][best], state[i][0]
					rep.Counters.FailedOver++
				}
				// Re-embed lost replicas onto least-loaded surviving hosts
				// (balanced re-assignment; ties → lowest host id).
				for len(reps[i]) < targetR[i] {
					holds := make(map[int]bool, len(reps[i]))
					for _, q := range reps[i] {
						holds[q] = true
					}
					dst := -1
					for q := 0; q < m; q++ {
						if crashed[q] || holds[q] {
							continue
						}
						if dst < 0 || load[q] < load[dst] {
							dst = q
						}
					}
					if dst < 0 {
						break // fewer survivors than the replication degree
					}
					reps[i] = append(reps[i], dst)
					state[i] = append(state[i], state[i][0])
					load[dst]++
					rep.Counters.ReEmbedded++
				}
			}
			placementDirty = true
		}

		// 3. Communication demands for this step's topology and placement.
		if placementDirty {
			if err := rebuildDemands(); err != nil {
				return nil, err
			}
			placementDirty = false
		}

		// 4. Distribution phase under the message-fault model.
		stepRoute := 0
		if len(pairs) > 0 {
			res, err := faults.RoutePhase(ft.Host.Router, active, &routing.Problem{N: m, Pairs: pairs}, plan, t)
			rep.Counters.Add(res.Counters)
			if err != nil {
				if errors.Is(err, faults.ErrPhaseLost) {
					return nil, fmt.Errorf("universal: step %d: %v: %w", t, err, ErrUnrecoverable)
				}
				return nil, fmt.Errorf("universal: fault-tolerant routing at step %d: %w", t, err)
			}
			rep.RouteSteps += res.Steps
			stepRoute = res.Steps
		}
		inbox := make(map[[3]int]sim.State) // (j, ri, i) → fetched state
		for _, f := range fetches {
			srcIdx := -1
			for ri, q := range reps[f.guest] {
				if q == f.from {
					srcIdx = ri
					break
				}
			}
			if srcIdx < 0 {
				return nil, fmt.Errorf("universal: internal replica lookup failure")
			}
			inbox[[3]int{f.neighJ, f.forRepl, f.guest}] = state[f.guest][srcIdx]
		}

		// 5. Compute phase: every replica recomputes its guest locally.
		next := make([][]sim.State, n)
		for j := 0; j < n; j++ {
			next[j] = make([]sim.State, len(reps[j]))
			for ri, q := range reps[j] {
				nbuf = nbuf[:0]
				for _, i := range guest.Neighbors(j) {
					if v, ok := inbox[[3]int{j, ri, i}]; ok {
						nbuf = append(nbuf, v)
					} else {
						localIdx := -1
						for rk, p := range reps[i] {
							if p == q {
								localIdx = rk
								break
							}
						}
						if localIdx < 0 {
							return nil, fmt.Errorf("universal: replica %d of guest %d missing state of %d", ri, j, i)
						}
						nbuf = append(nbuf, state[i][localIdx])
					}
				}
				next[j][ri] = c.Step(j, state[j][ri], nbuf)
			}
		}
		for j := 0; j < n; j++ {
			for ri := 1; ri < len(next[j]); ri++ {
				if next[j][ri] != next[j][0] {
					return nil, fmt.Errorf("universal: replicas of guest %d diverged at step %d", j, t)
				}
			}
		}
		state = next
		rep.ComputeSteps += maxLoad
		hostStepHist.Observe(int64(stepRoute + maxLoad))
		if maxLoad > rep.MaxLoad {
			rep.MaxLoad = maxLoad
		}
		row := make([]sim.State, n)
		for j := 0; j < n; j++ {
			row[j] = state[j][0]
		}
		trace.States[t] = row
	}

	rep.SurvivingHosts = m - len(crashed)
	rep.HostSteps = rep.ComputeSteps + rep.RouteSteps
	if T > 0 {
		rep.Slowdown = float64(rep.HostSteps) / float64(T)
		rep.Inefficiency = rep.Slowdown * float64(m) / float64(n)
	}
	rep.Trace = trace
	if ft.Obs != nil {
		ft.Obs.Counter("universal.ft.runs").Inc()
		ft.Obs.Counter("universal.guest_steps").Add(int64(T))
		ft.Obs.Counter("universal.route_steps").Add(int64(rep.RouteSteps))
		ft.Obs.Counter("universal.compute_steps").Add(int64(rep.ComputeSteps))
		ft.Obs.Gauge("universal.max_load").SetMax(int64(rep.MaxLoad))
		rep.Counters.Record(ft.Obs)
	}
	return rep, nil
}
