package universal

import (
	"fmt"
	"math/rand"

	"universalnet/internal/routing"
	"universalnet/internal/sim"
)

// Oblivious simulation of the complete network (§2, last paragraph; [14]).
// The guest is K_n: in every step each processor sends its configuration to
// one other processor, and the communication pattern — a permutation per
// step — is fixed in advance by the program but NOT known to the host
// construction (so an online routing algorithm is required, in contrast to
// the fixed ⌈n/m⌉-relations of a bounded-degree guest).

// ObliviousPattern fixes the communication: Pattern[t][i] = j means guest i
// sends its time-t configuration to guest j in round t+1. Each round must be
// a permutation of 0..n-1.
type ObliviousPattern [][]int

// Validate checks that each round is a permutation.
func (p ObliviousPattern) Validate(n int) error {
	for t, round := range p {
		if len(round) != n {
			return fmt.Errorf("universal: round %d has %d entries, want %d", t, len(round), n)
		}
		seen := make([]bool, n)
		for i, j := range round {
			if j < 0 || j >= n {
				return fmt.Errorf("universal: round %d sends %d→%d out of range", t, i, j)
			}
			if seen[j] {
				return fmt.Errorf("universal: round %d not a permutation (duplicate recipient %d)", t, j)
			}
			seen[j] = true
		}
	}
	return nil
}

// RandomObliviousPattern draws T random permutation rounds.
func RandomObliviousPattern(rng *rand.Rand, n, T int) ObliviousPattern {
	p := make(ObliviousPattern, T)
	for t := range p {
		p[t] = rng.Perm(n)
	}
	return p
}

// obliviousStep computes the next configuration of guest j from its own
// state and the state of its designated sender. The mixing is bijective in
// each argument, so any misrouted message corrupts the checksum.
func obliviousStep(j, t int, self, received sim.State) sim.State {
	const a = 6364136223846793005
	x := uint64(self)*a + uint64(received)
	return sim.State(x + uint64(j)<<32 + uint64(t) + 1442695040888963407)
}

// DirectObliviousRun executes the complete-network computation directly,
// returning the reference trace.
func DirectObliviousRun(init []sim.State, pattern ObliviousPattern) (*sim.Trace, error) {
	n := len(init)
	if err := pattern.Validate(n); err != nil {
		return nil, err
	}
	tr := &sim.Trace{States: make([][]sim.State, len(pattern)+1)}
	tr.States[0] = append([]sim.State(nil), init...)
	for t, round := range pattern {
		cur := tr.States[t]
		next := make([]sim.State, n)
		for i, j := range round {
			// i sends to j: j's update consumes i's state.
			next[j] = obliviousStep(j, t, cur[j], cur[i])
		}
		tr.States[t+1] = next
	}
	return tr, nil
}

// RunOblivious simulates the oblivious complete-network computation on the
// host: per round, a compute phase (sequential per host, cost = max load)
// and an online routing phase delivering each configuration from f(i) to
// f(pattern[t][i]). The router sees a fresh ≤⌈n/m⌉–⌈n/m⌉ problem every
// round — the online h–h routing regime of §2.
func (es *EmbeddingSimulator) RunOblivious(init []sim.State, pattern ObliviousPattern) (*RunReport, error) {
	n := len(init)
	m := es.Host.Graph.N()
	if err := pattern.Validate(n); err != nil {
		return nil, err
	}
	f := es.F
	if f == nil {
		f = make([]int, n)
		for i := range f {
			f[i] = i % m
		}
	}
	if len(f) != n {
		return nil, fmt.Errorf("universal: assignment length %d, want %d", len(f), n)
	}
	load := make([]int, m)
	for i, q := range f {
		if q < 0 || q >= m {
			return nil, fmt.Errorf("universal: guest %d on invalid host %d", i, q)
		}
		load[q]++
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}

	// Host-local knowledge: arrived[q][i] = the message i's sender shipped
	// this round, if it has arrived at q. mem[q][i] = i's own newest state
	// (only meaningful at q = f[i]).
	mem := make([]map[int]sim.State, m)
	for q := range mem {
		mem[q] = make(map[int]sim.State)
	}
	for i, s := range init {
		mem[f[i]][i] = s
	}

	rep := &RunReport{GuestSteps: len(pattern), MaxLoad: maxLoad}
	trace := &sim.Trace{States: make([][]sim.State, len(pattern)+1)}
	trace.States[0] = append([]sim.State(nil), init...)

	for t, round := range pattern {
		// Routing phase: i's configuration goes from f(i) to f(round[i]).
		var pairs []routing.Pair
		for i, j := range round {
			if f[i] != f[j] {
				pairs = append(pairs, routing.Pair{Src: f[i], Dst: f[j]})
			}
		}
		if len(pairs) > 0 {
			res, err := es.Host.Router.Route(es.Host.Graph, &routing.Problem{N: m, Pairs: pairs})
			if err != nil {
				return nil, fmt.Errorf("universal: oblivious round %d: %w", t, err)
			}
			rep.RouteSteps += res.Steps
		}
		arrived := make([]map[int]sim.State, m)
		for q := range arrived {
			arrived[q] = make(map[int]sim.State)
		}
		for i, j := range round {
			s, ok := mem[f[i]][i]
			if !ok {
				return nil, fmt.Errorf("universal: host %d lost the state of guest %d", f[i], i)
			}
			arrived[f[j]][i] = s
		}
		// Compute phase.
		next := make([]sim.State, len(init))
		for i, j := range round {
			q := f[j]
			recv, ok := arrived[q][i]
			if !ok {
				return nil, fmt.Errorf("universal: message %d→%d missing at host %d", i, j, q)
			}
			self, ok := mem[q][j]
			if !ok {
				return nil, fmt.Errorf("universal: host %d lost guest %d", q, j)
			}
			next[j] = obliviousStep(j, t, self, recv)
		}
		for j, s := range next {
			mem[f[j]][j] = s
		}
		rep.ComputeSteps += maxLoad
		trace.States[t+1] = next
	}
	rep.HostSteps = rep.ComputeSteps + rep.RouteSteps
	if len(pattern) > 0 {
		rep.Slowdown = float64(rep.HostSteps) / float64(len(pattern))
		rep.Inefficiency = rep.Slowdown * float64(m) / float64(n)
	}
	rep.Trace = trace
	return rep, nil
}
