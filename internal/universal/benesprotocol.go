package universal

import (
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
)

// benesPlan is the precomputed schedule shared by the materializing and
// streaming Beneš builders: the generation order, the demand list, the
// routed permutation rounds, and the exact per-offset op counts (identical
// for every guest step).
type benesPlan struct {
	d, rows, levels int
	guestsOf        [][]int
	maxLoad         int
	demandGuest     []int // demand index → guest whose pebble moves
	roundMoves      [][]benesMove
	genCount        []int
	transferCount   []int
	transferLen     int
}

type benesMove struct {
	demandIdx int
	path      []int // row at each Beneš level
	dstRow    int
}

func (p *benesPlan) node(level, row int) int { return routing.BenesNode(p.d, level, row) }

func planBenesProtocol(guest *graph.Graph, bh *BenesHost, T int) (*benesPlan, error) {
	if T < 1 {
		return nil, fmt.Errorf("universal: need T ≥ 1")
	}
	n := guest.N()
	if n < bh.Rows {
		return nil, fmt.Errorf("universal: guest size %d below row count %d (rows would idle)", n, bh.Rows)
	}
	d := bh.D
	rows := bh.Rows
	levels := routing.BenesLevels(d)
	rowOf := func(i int) int { return i % rows }

	// Guests per level-0 node, generation order.
	guestsOf := make([][]int, rows)
	for i := 0; i < n; i++ {
		guestsOf[rowOf(i)] = append(guestsOf[rowOf(i)], i)
	}
	maxLoad := 0
	for _, gs := range guestsOf {
		if len(gs) > maxLoad {
			maxLoad = len(gs)
		}
	}

	// The fixed row relation: one entry per (guest, distinct foreign row).
	type demand struct {
		guest  int
		srcRow int
		dstRow int
	}
	var demands []demand
	var rowPairs []routing.Pair
	seenStamp := make([]int32, rows)
	for i := 0; i < n; i++ {
		stamp := int32(i + 1)
		seenStamp[rowOf(i)] = stamp
		for _, j := range guest.Neighbors(i) {
			r := rowOf(j)
			if seenStamp[r] != stamp {
				seenStamp[r] = stamp
				demands = append(demands, demand{guest: i, srcRow: rowOf(i), dstRow: r})
				rowPairs = append(rowPairs, routing.Pair{Src: rowOf(i), Dst: r})
			}
		}
	}
	rounds, err := routing.DecomposeHRelation(rows, rowPairs)
	if err != nil {
		return nil, err
	}
	// Assign each demand to its round occurrence: per (src,dst), a queue.
	queues := make(map[[2]int][]int) // (src,dst) → demand indices
	for di, dm := range demands {
		key := [2]int{dm.srcRow, dm.dstRow}
		queues[key] = append(queues[key], di)
	}
	// One routing scratch reused across rounds; the path rows a round
	// actually uses are copied out of it into a shared arena.
	ps := routing.NewPathScratch(d)
	var pathArena []int
	var roundMoves [][]benesMove
	for _, round := range rounds {
		perm := completeRowPermutation(rows, round)
		paths, err := ps.Paths(perm)
		if err != nil {
			return nil, err
		}
		if err := routing.VerifyBenesPaths(d, perm, paths); err != nil {
			return nil, err
		}
		var moves []benesMove
		for _, pr := range round {
			key := [2]int{pr.Src, pr.Dst}
			q := queues[key]
			if len(q) == 0 {
				return nil, fmt.Errorf("universal: decomposition emitted unmatched pair %v", pr)
			}
			di := q[0]
			queues[key] = q[1:]
			at := len(pathArena)
			pathArena = append(pathArena, paths[pr.Src]...)
			moves = append(moves, benesMove{demandIdx: di, path: pathArena[at : at+levels : at+levels], dstRow: pr.Dst})
		}
		roundMoves = append(roundMoves, moves)
	}
	for key, q := range queues {
		if len(q) != 0 {
			return nil, fmt.Errorf("universal: %d demands for pair %v uncovered", len(q), key)
		}
	}

	// Per-offset op counts are the same for every guest step, so compute them
	// once and presize each step slice exactly: generation step r holds one op
	// per row with load > r; transfer offset 2k+j holds two ops per round-k
	// move (each move occupies offsets 2k .. 2k+levels−1).
	genCount := make([]int, maxLoad)
	for _, gs := range guestsOf {
		for r := 0; r < len(gs); r++ {
			genCount[r]++
		}
	}
	transferLen := 0
	if len(roundMoves) > 0 {
		transferLen = 2*(len(roundMoves)-1) + levels
	}
	transferCount := make([]int, transferLen)
	for k, moves := range roundMoves {
		for j := 0; j < levels; j++ {
			transferCount[2*k+j] += 2 * len(moves)
		}
	}

	demandGuest := make([]int, len(demands))
	for di, dm := range demands {
		demandGuest[di] = dm.guest
	}
	return &benesPlan{
		d: d, rows: rows, levels: levels,
		guestsOf: guestsOf, maxLoad: maxLoad,
		demandGuest: demandGuest, roundMoves: roundMoves,
		genCount: genCount, transferCount: transferCount, transferLen: transferLen,
	}, nil
}

// BuildBenesProtocol realizes Theorem 2.1's offline construction at the
// pebble-op level: a validated protocol on the wrapped Beneš host whose
// transfer schedule is the Waksman path family itself. Per guest step:
//
//	generation phase   — each level-0 node generates its guests' pebbles
//	                     sequentially (⌈n/rows⌉ steps);
//	transfer phase     — the fixed row relation, decomposed once into ≤ h
//	                     permutation rounds; round k's packets enter the
//	                     pipeline at offset 2k and advance one level per
//	                     step (a node receives at one step and sends at the
//	                     next, so the one-op-per-processor rule holds);
//	                     total 2(R−1) + 2d steps for R rounds.
//
// The step count is deterministic — the "known in advance" routing of §2 —
// and the resulting protocol passes Validate and VerifyCarries.
func BuildBenesProtocol(guest *graph.Graph, bh *BenesHost, T int) (*pebble.Protocol, error) {
	plan, err := planBenesProtocol(guest, bh, T)
	if err != nil {
		return nil, err
	}
	levels := plan.levels
	pr := &pebble.Protocol{Guest: guest, Host: bh.Graph, T: T}
	pr.Steps = make([][]pebble.Op, 0, T*plan.maxLoad+(T-1)*plan.transferLen)
	appendStep := func(base, offset, sizeHint int, ops ...pebble.Op) {
		idx := base + offset
		for len(pr.Steps) <= idx {
			pr.Steps = append(pr.Steps, nil)
		}
		if pr.Steps[idx] == nil && sizeHint > 0 {
			pr.Steps[idx] = make([]pebble.Op, 0, sizeHint)
		}
		pr.Steps[idx] = append(pr.Steps[idx], ops...)
	}

	base := 0
	for t := 1; t <= T; t++ {
		// Generation phase.
		for r := 0; r < plan.maxLoad; r++ {
			for q := 0; q < plan.rows; q++ {
				if r < len(plan.guestsOf[q]) {
					appendStep(base, r, plan.genCount[r], pebble.Op{
						Kind: pebble.Generate, Proc: plan.node(0, q),
						Pebble: pebble.Type{P: plan.guestsOf[q][r], T: t},
					})
				}
			}
		}
		base += plan.maxLoad
		if t == T {
			break
		}
		// Transfer phase, pipelined: round k's hop j happens at offset 2k+j.
		for k, moves := range plan.roundMoves {
			for _, mv := range moves {
				pb := pebble.Type{P: plan.demandGuest[mv.demandIdx], T: t}
				// Beneš hops: level j → j+1 along the Waksman path.
				for j := 0; j+1 < levels; j++ {
					from := plan.node(j, mv.path[j])
					to := plan.node(j+1, mv.path[j+1])
					appendStep(base, 2*k+j, plan.transferCount[2*k+j],
						pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
						pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
				}
				// Wrap hop: last level → level 0 of the destination row.
				from := plan.node(levels-1, mv.path[levels-1])
				to := plan.node(0, mv.dstRow)
				appendStep(base, 2*k+levels-1, plan.transferCount[2*k+levels-1],
					pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
					pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
			}
		}
		if len(plan.roundMoves) > 0 {
			base += 2*(len(plan.roundMoves)-1) + levels
		}
	}
	// Trim any trailing empty steps (none expected, but keep tight).
	for len(pr.Steps) > 0 && len(pr.Steps[len(pr.Steps)-1]) == 0 {
		pr.Steps = pr.Steps[:len(pr.Steps)-1]
	}
	return pr, nil
}

// StreamBenesProtocol emits the same schedule as BuildBenesProtocol through
// sink, buffering only one guest step's phase window at a time (the
// interleaved round offsets require it) and reusing those buffers across
// guest steps — memory is one phase window, not the whole protocol.
func StreamBenesProtocol(guest *graph.Graph, bh *BenesHost, T int, sink pebble.StepSink) error {
	plan, err := planBenesProtocol(guest, bh, T)
	if err != nil {
		return err
	}
	levels := plan.levels
	genSteps := make([][]pebble.Op, plan.maxLoad)
	for r := range genSteps {
		genSteps[r] = make([]pebble.Op, 0, plan.genCount[r])
	}
	transferSteps := make([][]pebble.Op, plan.transferLen)
	for o := range transferSteps {
		transferSteps[o] = make([]pebble.Op, 0, plan.transferCount[o])
	}
	flush := func(steps [][]pebble.Op) error {
		for o := range steps {
			if err := sink.AppendStep(steps[o]); err != nil {
				return err
			}
			steps[o] = steps[o][:0]
		}
		return nil
	}

	for t := 1; t <= T; t++ {
		for r := 0; r < plan.maxLoad; r++ {
			for q := 0; q < plan.rows; q++ {
				if r < len(plan.guestsOf[q]) {
					genSteps[r] = append(genSteps[r], pebble.Op{
						Kind: pebble.Generate, Proc: plan.node(0, q),
						Pebble: pebble.Type{P: plan.guestsOf[q][r], T: t},
					})
				}
			}
		}
		if err := flush(genSteps); err != nil {
			return err
		}
		if t == T {
			break
		}
		for k, moves := range plan.roundMoves {
			for _, mv := range moves {
				pb := pebble.Type{P: plan.demandGuest[mv.demandIdx], T: t}
				for j := 0; j+1 < levels; j++ {
					from := plan.node(j, mv.path[j])
					to := plan.node(j+1, mv.path[j+1])
					transferSteps[2*k+j] = append(transferSteps[2*k+j],
						pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
						pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
				}
				from := plan.node(levels-1, mv.path[levels-1])
				to := plan.node(0, mv.dstRow)
				transferSteps[2*k+levels-1] = append(transferSteps[2*k+levels-1],
					pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
					pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
			}
		}
		if err := flush(transferSteps); err != nil {
			return err
		}
	}
	return nil
}
