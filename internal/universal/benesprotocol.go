package universal

import (
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
)

// BuildBenesProtocol realizes Theorem 2.1's offline construction at the
// pebble-op level: a validated protocol on the wrapped Beneš host whose
// transfer schedule is the Waksman path family itself. Per guest step:
//
//	generation phase   — each level-0 node generates its guests' pebbles
//	                     sequentially (⌈n/rows⌉ steps);
//	transfer phase     — the fixed row relation, decomposed once into ≤ h
//	                     permutation rounds; round k's packets enter the
//	                     pipeline at offset 2k and advance one level per
//	                     step (a node receives at one step and sends at the
//	                     next, so the one-op-per-processor rule holds);
//	                     total 2(R−1) + 2d steps for R rounds.
//
// The step count is deterministic — the "known in advance" routing of §2 —
// and the resulting protocol passes Validate and VerifyCarries.
func BuildBenesProtocol(guest *graph.Graph, bh *BenesHost, T int) (*pebble.Protocol, error) {
	if T < 1 {
		return nil, fmt.Errorf("universal: need T ≥ 1")
	}
	n := guest.N()
	if n < bh.Rows {
		return nil, fmt.Errorf("universal: guest size %d below row count %d (rows would idle)", n, bh.Rows)
	}
	d := bh.D
	rows := bh.Rows
	levels := routing.BenesLevels(d)
	rowOf := func(i int) int { return i % rows }

	// Guests per level-0 node, generation order.
	guestsOf := make([][]int, rows)
	for i := 0; i < n; i++ {
		guestsOf[rowOf(i)] = append(guestsOf[rowOf(i)], i)
	}
	maxLoad := 0
	for _, gs := range guestsOf {
		if len(gs) > maxLoad {
			maxLoad = len(gs)
		}
	}

	// The fixed row relation: one entry per (guest, distinct foreign row).
	type demand struct {
		guest  int
		srcRow int
		dstRow int
	}
	var demands []demand
	var rowPairs []routing.Pair
	seenStamp := make([]int32, rows)
	for i := 0; i < n; i++ {
		stamp := int32(i + 1)
		seenStamp[rowOf(i)] = stamp
		for _, j := range guest.Neighbors(i) {
			r := rowOf(j)
			if seenStamp[r] != stamp {
				seenStamp[r] = stamp
				demands = append(demands, demand{guest: i, srcRow: rowOf(i), dstRow: r})
				rowPairs = append(rowPairs, routing.Pair{Src: rowOf(i), Dst: r})
			}
		}
	}
	rounds, err := routing.DecomposeHRelation(rows, rowPairs)
	if err != nil {
		return nil, err
	}
	// Assign each demand to its round occurrence: per (src,dst), a queue.
	queues := make(map[[2]int][]int) // (src,dst) → demand indices
	for di, dm := range demands {
		key := [2]int{dm.srcRow, dm.dstRow}
		queues[key] = append(queues[key], di)
	}
	type move struct {
		demandIdx int
		path      []int // row at each Beneš level
		dstRow    int
	}
	var roundMoves [][]move
	for _, round := range rounds {
		perm := completeRowPermutation(rows, round)
		paths, err := routing.BenesPaths(d, perm)
		if err != nil {
			return nil, err
		}
		if err := routing.VerifyBenesPaths(d, perm, paths); err != nil {
			return nil, err
		}
		var moves []move
		for _, pr := range round {
			key := [2]int{pr.Src, pr.Dst}
			q := queues[key]
			if len(q) == 0 {
				return nil, fmt.Errorf("universal: decomposition emitted unmatched pair %v", pr)
			}
			di := q[0]
			queues[key] = q[1:]
			moves = append(moves, move{demandIdx: di, path: paths[pr.Src], dstRow: pr.Dst})
		}
		roundMoves = append(roundMoves, moves)
	}
	for key, q := range queues {
		if len(q) != 0 {
			return nil, fmt.Errorf("universal: %d demands for pair %v uncovered", len(q), key)
		}
	}

	node := func(level, row int) int { return routing.BenesNode(d, level, row) }

	// Per-offset op counts are the same for every guest step, so compute them
	// once and presize each step slice exactly: generation step r holds one op
	// per row with load > r; transfer offset 2k+j holds two ops per round-k
	// move (each move occupies offsets 2k .. 2k+levels−1).
	genCount := make([]int, maxLoad)
	for _, gs := range guestsOf {
		for r := 0; r < len(gs); r++ {
			genCount[r]++
		}
	}
	transferLen := 0
	if len(roundMoves) > 0 {
		transferLen = 2*(len(roundMoves)-1) + levels
	}
	transferCount := make([]int, transferLen)
	for k, moves := range roundMoves {
		for j := 0; j < levels; j++ {
			transferCount[2*k+j] += 2 * len(moves)
		}
	}

	pr := &pebble.Protocol{Guest: guest, Host: bh.Graph, T: T}
	pr.Steps = make([][]pebble.Op, 0, T*maxLoad+(T-1)*transferLen)
	appendStep := func(base, offset, sizeHint int, ops ...pebble.Op) {
		idx := base + offset
		for len(pr.Steps) <= idx {
			pr.Steps = append(pr.Steps, nil)
		}
		if pr.Steps[idx] == nil && sizeHint > 0 {
			pr.Steps[idx] = make([]pebble.Op, 0, sizeHint)
		}
		pr.Steps[idx] = append(pr.Steps[idx], ops...)
	}

	base := 0
	for t := 1; t <= T; t++ {
		// Generation phase.
		for r := 0; r < maxLoad; r++ {
			for q := 0; q < rows; q++ {
				if r < len(guestsOf[q]) {
					appendStep(base, r, genCount[r], pebble.Op{
						Kind: pebble.Generate, Proc: node(0, q),
						Pebble: pebble.Type{P: guestsOf[q][r], T: t},
					})
				}
			}
		}
		base += maxLoad
		if t == T {
			break
		}
		// Transfer phase, pipelined: round k's hop j happens at offset 2k+j.
		for k, moves := range roundMoves {
			for _, mv := range moves {
				pb := pebble.Type{P: demands[mv.demandIdx].guest, T: t}
				// Beneš hops: level j → j+1 along the Waksman path.
				for j := 0; j+1 < levels; j++ {
					from := node(j, mv.path[j])
					to := node(j+1, mv.path[j+1])
					appendStep(base, 2*k+j, transferCount[2*k+j],
						pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
						pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
				}
				// Wrap hop: last level → level 0 of the destination row.
				from := node(levels-1, mv.path[levels-1])
				to := node(0, mv.dstRow)
				appendStep(base, 2*k+levels-1, transferCount[2*k+levels-1],
					pebble.Op{Kind: pebble.Send, Proc: from, Pebble: pb, Peer: to},
					pebble.Op{Kind: pebble.Receive, Proc: to, Pebble: pb, Peer: from})
			}
		}
		if len(roundMoves) > 0 {
			base += 2*(len(roundMoves)-1) + levels
		}
	}
	// Trim any trailing empty steps (none expected, but keep tight).
	for len(pr.Steps) > 0 && len(pr.Steps[len(pr.Steps)-1]) == 0 {
		pr.Steps = pr.Steps[:len(pr.Steps)-1]
	}
	return pr, nil
}
