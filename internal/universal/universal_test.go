package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/pebble"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func mustHost(t *testing.T) func(h *Host, err error) *Host {
	return func(h *Host, err error) *Host {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
}

func TestHostConstructors(t *testing.T) {
	bf := mustHost(t)(ButterflyHost(3))
	if bf.Graph.N() != 24 || !bf.Graph.IsConnected() {
		t.Errorf("butterfly host wrong: %v", bf.Graph)
	}
	th := mustHost(t)(TorusHost(49))
	if th.Graph.N() != 49 {
		t.Errorf("torus host wrong: %v", th.Graph)
	}
	eh := mustHost(t)(ExpanderHost(40, 4, 1))
	if eh.Graph.N() != 40 || !eh.Graph.IsConnected() {
		t.Errorf("expander host wrong: %v", eh.Graph)
	}
	rh := mustHost(t)(RingHost(12))
	if rh.Graph.N() != 12 {
		t.Errorf("ring host wrong: %v", rh.Graph)
	}
	ch := mustHost(t)(CCCHost(3))
	if ch.Graph.N() != 24 || !ch.Graph.IsRegular(3) {
		t.Errorf("CCC host wrong: %v", ch.Graph)
	}
	if _, err := TorusHost(50); err == nil {
		t.Error("non-square torus host accepted")
	}
}

// runAndVerify simulates the computation on the host and cross-checks the
// reconstructed trace against direct execution.
func runAndVerify(t *testing.T, host *Host, c *sim.Computation, T int) *RunReport {
	t.Helper()
	es := &EmbeddingSimulator{Host: host}
	rep, err := es.Run(c, T)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Run(T)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("simulated trace differs from direct execution")
	}
	if err := c.VerifyTrace(rep.Trace); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEmbeddingSimulatorCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(ButterflyHost(3)) // m = 24 < n = 48
	rep := runAndVerify(t, host, c, 6)
	if rep.MaxLoad != 2 {
		t.Errorf("max load = %d, want 2", rep.MaxLoad)
	}
	if rep.Slowdown < 1 {
		t.Errorf("slowdown %f < 1", rep.Slowdown)
	}
	if rep.HostSteps != rep.ComputeSteps+rep.RouteSteps {
		t.Error("step accounting inconsistent")
	}
}

func TestEmbeddingSimulatorOnTorusHost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(TorusHost(16))
	rep := runAndVerify(t, host, c, 5)
	if rep.MaxLoad != 2 {
		t.Errorf("max load = %d", rep.MaxLoad)
	}
}

func TestEmbeddingSimulatorEqualSize(t *testing.T) {
	// m = n: load 1.
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(ButterflyHost(3))
	rep := runAndVerify(t, host, c, 4)
	if rep.MaxLoad != 1 {
		t.Errorf("max load = %d, want 1", rep.MaxLoad)
	}
}

func TestEmbeddingSimulatorCustomAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(RingHost(6))
	f := make([]int, 12)
	for i := range f {
		f[i] = (i / 2) % 6
	}
	es := &EmbeddingSimulator{Host: host, F: f}
	rep, err := es.Run(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := c.Run(3)
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Error("custom assignment broke the simulation")
	}
}

func TestEmbeddingSimulatorGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	guest, err := topology.RandomGuest(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(RingHost(6))
	es := &EmbeddingSimulator{Host: host, F: []int{0}}
	if _, err := es.Run(c, 2); err == nil {
		t.Error("short assignment accepted")
	}
	es = &EmbeddingSimulator{Host: host, F: make([]int, 12)}
	es.F[3] = 99
	if _, err := es.Run(c, 2); err == nil {
		t.Error("invalid host index accepted")
	}
	es = &EmbeddingSimulator{Host: host}
	if _, err := es.Run(c, -1); err == nil {
		t.Error("negative T accepted")
	}
}

func TestEmbeddingSimulatorZeroSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	host := mustHost(t)(RingHost(4))
	rep, err := (&EmbeddingSimulator{Host: host}).Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HostSteps != 0 || rep.Trace.T() != 0 {
		t.Errorf("zero-step run: %+v", rep)
	}
}

func TestSlowdownGrowsWithLoad(t *testing.T) {
	// Same guest on hosts of shrinking size: slowdown must increase.
	rng := rand.New(rand.NewSource(7))
	guest, err := topology.RandomGuest(rng, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	sBig := runAndVerify(t, mustHost(t)(ButterflyHost(4)), c, 4).Slowdown   // m=64
	sSmall := runAndVerify(t, mustHost(t)(ButterflyHost(3)), c, 4).Slowdown // m=24
	if sSmall <= sBig {
		t.Errorf("smaller host not slower: m=24 s=%.2f vs m=64 s=%.2f", sSmall, sBig)
	}
}

func TestTreeNodeCount(t *testing.T) {
	if got := treeNodeCount(2, 2); got != 13 { // 1+3+9
		t.Errorf("treeNodeCount(2,2) = %d, want 13", got)
	}
	if got := treeNodeCount(1, 3); got != 15 { // 1+2+4+8
		t.Errorf("treeNodeCount(1,3) = %d, want 15", got)
	}
}

func TestTreeCachedHostStructure(t *testing.T) {
	h, err := BuildTreeCachedHost(6, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 6*treeNodeCount(2, 3) {
		t.Errorf("m = %d", h.M())
	}
	if err := h.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.Graph.IsConnected() {
		t.Error("tree-cached host disconnected")
	}
	// Constant degree: ≤ c+3 (c+1 children + parent + ring).
	if h.Graph.MaxDegree() > h.C+3 {
		t.Errorf("max degree %d > c+3", h.Graph.MaxDegree())
	}
	if h.Root(2) != 2*h.treeSize {
		t.Errorf("root index wrong")
	}
	if _, err := BuildTreeCachedHost(2, 2, 3); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := BuildTreeCachedHost(8, 8, 12); err == nil {
		t.Error("oversized host accepted")
	}
}

func TestTreeCachedHostConstantSlowdown(t *testing.T) {
	// Ring guest (c=2), depth 4.
	n, c, depth := 8, 2, 4
	h, err := BuildTreeCachedHost(n, c, depth)
	if err != nil {
		t.Fatal(err)
	}
	guest, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := h.SimulateProtocol(guest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.HostSteps() != depth*(c+2) {
		t.Errorf("host steps %d, want %d", pr.HostSteps(), depth*(c+2))
	}
	if got := pr.Slowdown(); got != float64(c+2) {
		t.Errorf("slowdown %f, want %d", got, c+2)
	}
}

func TestTreeCachedHostRegularGuest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, c, depth := 10, 3, 3
	guest, err := topology.RandomGuest(rng, n, c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildTreeCachedHost(n, c, depth)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := h.SimulateProtocol(guest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Slowdown independent of n: rerun with larger n.
	n2 := 20
	guest2, err := topology.RandomGuest(rng, n2, c)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := BuildTreeCachedHost(n2, c, depth)
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := h2.SimulateProtocol(guest2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr2.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.Slowdown() != pr2.Slowdown() {
		t.Errorf("slowdown depends on n: %f vs %f", pr.Slowdown(), pr2.Slowdown())
	}
}

func TestTreeCachedHostGuards(t *testing.T) {
	h, err := BuildTreeCachedHost(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := topology.Ring(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.SimulateProtocol(big); err == nil {
		t.Error("wrong guest size accepted")
	}
	dense, err := topology.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.SimulateProtocol(dense); err == nil {
		t.Error("guest degree above c accepted")
	}
}

func TestRouterlessHostFailsGracefully(t *testing.T) {
	// A host whose router always errors must surface the error.
	g, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	host := &Host{Name: "broken", Graph: g, Router: &failingRouter{}}
	rng := rand.New(rand.NewSource(9))
	guest, err := topology.RandomGuest(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.MixMod(guest, rng)
	if _, err := (&EmbeddingSimulator{Host: host}).Run(c, 2); err == nil {
		t.Error("router failure not propagated")
	}
}

type failingRouter struct{}

func (f *failingRouter) Route(*graph.Graph, *routing.Problem) (routing.Result, error) {
	return routing.Result{}, errFail
}
func (f *failingRouter) Name() string { return "fail" }

var errFail = &routingError{}

type routingError struct{}

func (e *routingError) Error() string { return "injected routing failure" }

func TestTreeCachedHostCarriesComputation(t *testing.T) {
	// The pipelined tournament protocol must carry the actual guest
	// computation: stateful replay against direct execution.
	rng := rand.New(rand.NewSource(21))
	n, c, depth := 8, 2, 3
	guest, err := topology.RandomGuest(rng, n, c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildTreeCachedHost(n, c, depth)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := h.SimulateProtocol(guest)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	if err := pebble.VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}
