package universal

import (
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

// Rounded tree-cache simulation — constructive intermediate points of the
// §1 trade-off s·log ℓ = O(log n). The tree-cached host computes t₀ guest
// steps at constant slowdown c+2 but then exhausts its cached inputs; to
// continue, each tree's leaves must be refreshed with the configurations of
// its t₀-ball at the new round boundary. We charge the refresh honestly:
//   - an inter-root routing phase (the ball demands form an h-relation on
//     the root interconnect, routed online and measured), and
//   - an intra-tree scatter (the root pipelines the ≤ ballMax fetched
//     configurations down to the leaves: ballMax + 2·t₀ steps).
// Larger t₀ buys more constant-slowdown steps per refresh but inflates the
// ball (and the host: m = n·(c+1)^{t₀}·…) — the size/slowdown knob of [14],
// here with measured, verified runs.

// RoundedTreeHost is the tree-cache host plus a de Bruijn interconnect over
// the tree roots (constant degree, log diameter) for the refresh phases.
type RoundedTreeHost struct {
	Tree      *TreeCachedHost
	RootNet   *graph.Graph // de Bruijn graph on the n roots (indices = tree)
	RootRoute routing.Router
	N, C, T0  int
}

// BuildRoundedTreeHost builds the host; n must be a power of two ≥ 4 for
// the de Bruijn interconnect.
func BuildRoundedTreeHost(n, c, t0 int) (*RoundedTreeHost, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("universal: rounded tree host needs power-of-two n ≥ 4, got %d", n)
	}
	th, err := BuildTreeCachedHost(n, c, t0)
	if err != nil {
		return nil, err
	}
	d := 0
	for v := n; v > 1; v >>= 1 {
		d++
	}
	rootNet, err := buildDeBruijnN(d)
	if err != nil {
		return nil, err
	}
	return &RoundedTreeHost{
		Tree:      th,
		RootNet:   rootNet,
		RootRoute: &routing.CachedRouter{Inner: &routing.GreedyRouter{Mode: routing.MultiPort}},
		N:         n, C: c, T0: t0,
	}, nil
}

func buildDeBruijnN(d int) (*graph.Graph, error) {
	g, err := topology.DeBruijn(d)
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("universal: de Bruijn interconnect disconnected")
	}
	return g, nil
}

// M returns the total host size: the trees plus nothing extra (the root
// interconnect reuses the root processors; its edges add no processors).
func (rh *RoundedTreeHost) M() int { return rh.Tree.M() }

// RoundedReport summarizes a rounded run.
type RoundedReport struct {
	GuestSteps   int
	Rounds       int
	ComputeSteps int // (c+2)·t₀ per round (the proven tree-cache pipeline)
	RouteSteps   int // measured inter-root routing
	ScatterSteps int // ballMax + 2·t₀ per refresh
	HostSteps    int
	Slowdown     float64
	BallMax      int
	Trace        *sim.Trace
}

// Run simulates T guest steps of c in rounds of t₀, refreshing between
// rounds, and verifies the trace against direct execution semantics: every
// tree computes its processor's states purely from its ball's round-start
// configurations.
func (rh *RoundedTreeHost) Run(comp *sim.Computation, T int) (*RoundedReport, error) {
	guest := comp.G
	n := guest.N()
	if n != rh.N {
		return nil, fmt.Errorf("universal: guest has %d processors, host built for %d", n, rh.N)
	}
	if guest.MaxDegree() > rh.C {
		return nil, fmt.Errorf("universal: guest degree %d exceeds c=%d", guest.MaxDegree(), rh.C)
	}
	if T < 0 {
		return nil, fmt.Errorf("universal: negative T")
	}
	// Ball membership for each tree (radius t₀).
	balls := make([][]int, n)
	ballMax := 0
	for i := 0; i < n; i++ {
		dist := guest.BFS(i)
		for v, dv := range dist {
			if dv >= 0 && dv <= rh.T0 {
				balls[i] = append(balls[i], v)
			}
		}
		if len(balls[i]) > ballMax {
			ballMax = len(balls[i])
		}
	}
	// Inter-root demands, fixed across rounds: root_j → root_i for each
	// j ∈ ball(i), j ≠ i.
	var pairs []routing.Pair
	for i := 0; i < n; i++ {
		for _, j := range balls[i] {
			if j != i {
				pairs = append(pairs, routing.Pair{Src: j, Dst: i})
			}
		}
	}
	problem := &routing.Problem{N: n, Pairs: pairs}

	rep := &RoundedReport{GuestSteps: T, BallMax: ballMax}
	trace := &sim.Trace{States: make([][]sim.State, T+1)}
	trace.States[0] = append([]sim.State(nil), comp.Init...)
	cur := append([]sim.State(nil), comp.Init...)

	nbuf := make([]sim.State, 0, guest.MaxDegree())
	for done := 0; done < T; {
		span := rh.T0
		if done+span > T {
			span = T - done
		}
		rep.Rounds++
		// Refresh phase (needed before every round including the first for
		// t₀ > 0 — the initial pebbles are free in the pebble model, but we
		// charge refreshes uniformly and conservatively from round 2 on).
		if done > 0 {
			res, err := rh.RootRoute.Route(rh.RootNet, problem)
			if err != nil {
				return nil, fmt.Errorf("universal: refresh routing at step %d: %w", done, err)
			}
			rep.RouteSteps += res.Steps
			rep.ScatterSteps += ballMax + 2*rh.T0
		}
		// Compute phase: each tree evaluates its cone locally from the
		// ball's round-start states (distributed honesty: only ball states
		// are used). Cost: the proven (c+2)·span pipeline.
		next := make([]sim.State, n)
		for i := 0; i < n; i++ {
			// Local copy of the ball states.
			local := make(map[int]sim.State, len(balls[i]))
			for _, j := range balls[i] {
				local[j] = cur[j]
			}
			// Evaluate span steps on the shrinking cone around i.
			for τ := 1; τ <= span; τ++ {
				updated := make(map[int]sim.State, len(local))
				for j, s := range local {
					ok := true
					nbuf = nbuf[:0]
					for _, w := range guest.Neighbors(j) {
						sv, have := local[w]
						if !have {
							ok = false
							break
						}
						nbuf = append(nbuf, sv)
					}
					if ok {
						updated[j] = comp.Step(j, s, nbuf)
					}
				}
				local = updated
				if _, have := local[i]; !have {
					return nil, fmt.Errorf("universal: cone of %d collapsed before %d steps (ball too small)", i, span)
				}
			}
			next[i] = local[i]
		}
		// Record the intermediate trace rows by direct evaluation (the
		// distributed values are cross-checked at round boundaries below).
		for τ := 1; τ <= span; τ++ {
			row := make([]sim.State, n)
			prev := trace.States[done+τ-1]
			for j := 0; j < n; j++ {
				nbuf = nbuf[:0]
				for _, w := range guest.Neighbors(j) {
					nbuf = append(nbuf, prev[w])
				}
				row[j] = comp.Step(j, prev[j], nbuf)
			}
			trace.States[done+τ] = row
		}
		// Cross-check: cone-evaluated states equal the direct states.
		for i := 0; i < n; i++ {
			if next[i] != trace.States[done+span][i] {
				return nil, fmt.Errorf("universal: cone evaluation of %d diverged at step %d", i, done+span)
			}
		}
		cur = trace.States[done+span]
		rep.ComputeSteps += (rh.C + 2) * span
		done += span
	}
	rep.HostSteps = rep.ComputeSteps + rep.RouteSteps + rep.ScatterSteps
	if T > 0 {
		rep.Slowdown = float64(rep.HostSteps) / float64(T)
	}
	rep.Trace = trace
	return rep, nil
}
