package universal

import (
	"fmt"
	"math/rand"

	"universalnet/internal/routing"
	"universalnet/internal/sim"
)

// Redundant simulation — the m ≥ n regime. The paper's §1 observes that
// dynamic embeddings (several representatives per guest processor) increase
// efficiency when m > n ([14]: an n^{1+ε}-size universal network with
// constant slowdown) but not when m ≤ n (this paper's tightness result).
// RedundantSimulator realizes the simplest dynamic scheme: every guest
// processor is simulated by r replicas placed on distinct host processors;
// each replica recomputes the guest step locally, and every replica fetches
// each neighbor configuration from the NEAREST replica of that neighbor.
// Replication multiplies compute work by r but shrinks the routing
// distances — the trade the m > n regime exploits.
type RedundantSimulator struct {
	Host *Host
	// Replicas[i] lists the host processors simulating guest i (non-empty,
	// distinct). Use PlaceReplicas for a random balanced placement.
	Replicas [][]int
}

// PlaceReplicas assigns r distinct random host processors to each of n
// guests, balancing load (total replica count r·n may exceed m; a host may
// hold replicas of several guests but at most one replica of each).
func PlaceReplicas(n, m, r int, rng *rand.Rand) ([][]int, error) {
	if r < 1 || r > m {
		return nil, fmt.Errorf("universal: replication factor %d outside [1,%d]", r, m)
	}
	replicas := make([][]int, n)
	for i := 0; i < n; i++ {
		perm := rng.Perm(m)
		replicas[i] = append([]int(nil), perm[:r]...)
	}
	return replicas, nil
}

// RedundantReport extends RunReport with replica statistics.
type RedundantReport struct {
	RunReport
	Replication  int     // largest replica count of any guest
	AvgFetchDist float64 // mean host distance of neighbor fetches per step
}

// Run simulates T steps of c with replication, verifying against direct
// execution via the returned trace (states are taken from replica 0 of each
// guest; all replicas are checked for agreement).
func (rs *RedundantSimulator) Run(c *sim.Computation, T int) (*RedundantReport, error) {
	guest := c.G
	n, m := guest.N(), rs.Host.Graph.N()
	if len(rs.Replicas) != n {
		return nil, fmt.Errorf("universal: replica table has %d rows for %d guests", len(rs.Replicas), n)
	}
	for i, reps := range rs.Replicas {
		if len(reps) == 0 {
			return nil, fmt.Errorf("universal: guest %d has no replicas", i)
		}
		seen := make(map[int]bool)
		for _, q := range reps {
			if q < 0 || q >= m {
				return nil, fmt.Errorf("universal: guest %d replica on invalid host %d", i, q)
			}
			if seen[q] {
				return nil, fmt.Errorf("universal: guest %d has duplicate replica host %d", i, q)
			}
			seen[q] = true
		}
	}
	// Host distances (BFS per host processor, cached).
	distCache := make(map[int][]int)
	distFrom := func(src int) []int {
		if d, ok := distCache[src]; ok {
			return d
		}
		d := rs.Host.Graph.BFS(src)
		distCache[src] = d
		return d
	}
	nearest := func(reps []int, to int) (best int, bd int) {
		best, bd = -1, -1
		for _, p := range reps {
			d := distFrom(p)[to]
			if d < 0 {
				continue
			}
			if bd < 0 || d < bd {
				best, bd = p, d
			}
		}
		return best, bd
	}

	load := make([]int, m)
	for _, reps := range rs.Replicas {
		for _, q := range reps {
			load[q]++
		}
	}
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}

	// Fixed per-step communication demands: for each guest edge (i,j), each
	// replica q of j fetches i's state from the nearest replica of i.
	type fetch struct {
		guest   int // whose state moves
		from    int
		to      int
		forRepl int // index into Replicas[j]
		neighJ  int // the guest j doing the fetching
	}
	var fetches []fetch
	var pairs []routing.Pair
	totalDist := 0
	fetchCount := 0
	for j := 0; j < n; j++ {
		for ri, q := range rs.Replicas[j] {
			for _, i := range guest.Neighbors(j) {
				src, d := nearest(rs.Replicas[i], q)
				if src < 0 {
					return nil, fmt.Errorf("universal: no reachable replica of %d from host %d", i, q)
				}
				totalDist += d
				fetchCount++
				if src != q {
					fetches = append(fetches, fetch{guest: i, from: src, to: q, forRepl: ri, neighJ: j})
					pairs = append(pairs, routing.Pair{Src: src, Dst: q})
				}
			}
		}
	}
	problem := &routing.Problem{N: m, Pairs: pairs}

	// Replica-local states: state[i][ri].
	state := make([][]sim.State, n)
	for i := range state {
		state[i] = make([]sim.State, len(rs.Replicas[i]))
		for ri := range state[i] {
			state[i][ri] = c.Init[i]
		}
	}
	rep := &RedundantReport{}
	rep.RunReport.MaxLoad = maxLoad
	for _, r := range rs.Replicas {
		if len(r) > rep.Replication {
			rep.Replication = len(r)
		}
	}
	if fetchCount > 0 {
		rep.AvgFetchDist = float64(totalDist) / float64(fetchCount)
	}
	rep.GuestSteps = T
	trace := &sim.Trace{States: make([][]sim.State, T+1)}
	trace.States[0] = append([]sim.State(nil), c.Init...)

	// inbox[j][ri][i] = the fetched state of neighbor i for replica ri of j.
	nbuf := make([]sim.State, 0, guest.MaxDegree())
	for t := 1; t <= T; t++ {
		if len(pairs) > 0 {
			res, err := rs.Host.Router.Route(rs.Host.Graph, problem)
			if err != nil {
				return nil, fmt.Errorf("universal: redundant routing at step %d: %w", t, err)
			}
			rep.RouteSteps += res.Steps
		}
		inbox := make(map[[3]int]sim.State) // (j, ri, i) → state
		for _, f := range fetches {
			// The source replica's local copy of guest f.guest's state.
			srcIdx := -1
			for ri, q := range rs.Replicas[f.guest] {
				if q == f.from {
					srcIdx = ri
					break
				}
			}
			if srcIdx < 0 {
				return nil, fmt.Errorf("universal: internal replica lookup failure")
			}
			inbox[[3]int{f.neighJ, f.forRepl, f.guest}] = state[f.guest][srcIdx]
		}
		next := make([][]sim.State, n)
		for j := 0; j < n; j++ {
			next[j] = make([]sim.State, len(rs.Replicas[j]))
			for ri, q := range rs.Replicas[j] {
				nbuf = nbuf[:0]
				for _, i := range guest.Neighbors(j) {
					if v, ok := inbox[[3]int{j, ri, i}]; ok {
						nbuf = append(nbuf, v)
					} else {
						// Fetched locally: q is itself a replica of i.
						localIdx := -1
						for rk, p := range rs.Replicas[i] {
							if p == q {
								localIdx = rk
								break
							}
						}
						if localIdx < 0 {
							return nil, fmt.Errorf("universal: replica %d of guest %d missing state of %d", ri, j, i)
						}
						nbuf = append(nbuf, state[i][localIdx])
					}
				}
				next[j][ri] = c.Step(j, state[j][ri], nbuf)
			}
		}
		// All replicas of a guest must agree (they saw the same inputs).
		for j := 0; j < n; j++ {
			for ri := 1; ri < len(next[j]); ri++ {
				if next[j][ri] != next[j][0] {
					return nil, fmt.Errorf("universal: replicas of guest %d diverged at step %d", j, t)
				}
			}
		}
		state = next
		rep.ComputeSteps += maxLoad
		row := make([]sim.State, n)
		for j := 0; j < n; j++ {
			row[j] = state[j][0]
		}
		trace.States[t] = row
	}
	rep.HostSteps = rep.ComputeSteps + rep.RouteSteps
	if T > 0 {
		rep.Slowdown = float64(rep.HostSteps) / float64(T)
		rep.Inefficiency = rep.Slowdown * float64(m) / float64(n)
	}
	rep.Trace = trace
	return rep, nil
}
