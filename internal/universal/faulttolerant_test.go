package universal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"universalnet/internal/faults"
	"universalnet/internal/graph"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

// ftFixture builds a random guest, its direct trace, and a butterfly host
// with replicated placement.
func ftFixture(t *testing.T, n, r, T int, seed int64) (*sim.Computation, *sim.Trace, *Host, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(T)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ButterflyHost(4) // m = 64
	if err != nil {
		t.Fatal(err)
	}
	reps, err := PlaceReplicas(n, host.Graph.N(), r, rng)
	if err != nil {
		t.Fatal(err)
	}
	return comp, direct, host, reps
}

func TestFaultTolerantNoFaultsMatchesDirect(t *testing.T) {
	comp, direct, host, reps := ftFixture(t, 24, 2, 4, 1)
	rep, err := (&FaultTolerantSimulator{Host: host, Replicas: reps}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("fault-free run diverged from direct execution")
	}
	if rep.Counters != (faults.Counters{}) {
		t.Errorf("fault-free run has nonzero counters: %v", rep.Counters)
	}
	if rep.SurvivingHosts != 64 || rep.InitialHosts != 64 {
		t.Errorf("hosts: %d/%d", rep.SurvivingHosts, rep.InitialHosts)
	}
}

func TestFaultTolerantCrashFailoverRecovers(t *testing.T) {
	comp, direct, host, reps := ftFixture(t, 24, 3, 5, 2)
	// Crash guest 0's primary and one other replica host: both recoverable.
	second := reps[1][0]
	if second == reps[0][0] {
		second = reps[1][1]
	}
	plan := &faults.Plan{
		Seed:    7,
		Crashes: []faults.Crash{{Host: reps[0][0], Step: 2}, {Host: second, Step: 3}},
	}
	rep, err := (&FaultTolerantSimulator{Host: host, Replicas: reps, Plan: plan}).Run(comp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("recovered trace differs from direct execution")
	}
	if rep.Counters.Crashed != 2 {
		t.Errorf("Crashed = %d, want 2", rep.Counters.Crashed)
	}
	if rep.Counters.FailedOver < 1 {
		t.Errorf("FailedOver = %d, want ≥ 1 (guest 0's primary crashed)", rep.Counters.FailedOver)
	}
	if rep.Counters.ReEmbedded < 1 {
		t.Errorf("ReEmbedded = %d, want ≥ 1 (replication degree restored)", rep.Counters.ReEmbedded)
	}
	if rep.SurvivingHosts != 62 {
		t.Errorf("SurvivingHosts = %d, want 62", rep.SurvivingHosts)
	}
}

func TestFaultTolerantUnrecoverableWithoutReplicas(t *testing.T) {
	comp, _, host, _ := ftFixture(t, 24, 1, 4, 3)
	// Nil Replicas ⇒ balanced single assignment; crashing host 0 kills the
	// only copy of guest 0.
	plan := &faults.Plan{Crashes: []faults.Crash{{Host: 0, Step: 2}}}
	_, err := (&FaultTolerantSimulator{Host: host, Plan: plan}).Run(comp, 4)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestFaultTolerantUnrecoverableAllReplicasCrash(t *testing.T) {
	comp, _, host, reps := ftFixture(t, 24, 2, 4, 4)
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Host: reps[5][0], Step: 2},
		{Host: reps[5][1], Step: 2},
	}}
	_, err := (&FaultTolerantSimulator{Host: host, Replicas: reps, Plan: plan}).Run(comp, 4)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestFaultTolerantMessageFaultsRecovered(t *testing.T) {
	comp, direct, host, reps := ftFixture(t, 24, 2, 4, 5)
	plan := &faults.Plan{Seed: 11, DropRate: 0.1, DupRate: 0.05, CorruptRate: 0.05, Onset: 1}
	rep, err := (&FaultTolerantSimulator{Host: host, Replicas: reps, Plan: plan}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("lossy run diverged from direct execution")
	}
	if rep.Counters.Injected == 0 || rep.Counters.Retried == 0 {
		t.Errorf("expected injected+retried faults, got %v", rep.Counters)
	}
	// Retries cost route steps: the lossy run must be at least as slow as
	// the clean one.
	clean, err := (&FaultTolerantSimulator{Host: host, Replicas: reps}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RouteSteps < clean.RouteSteps {
		t.Errorf("lossy route steps %d < clean %d", rep.RouteSteps, clean.RouteSteps)
	}
}

func TestFaultTolerantLinkFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	guest, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := RingHost(8)
	if err != nil {
		t.Fatal(err)
	}
	reps := [][]int{{0}, {2}, {4}, {6}}
	plan := &faults.Plan{LinkFailures: []faults.LinkFailure{{U: 0, V: 1, Step: 2}}}
	rep, err := (&FaultTolerantSimulator{Host: host, Replicas: reps, Plan: plan}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("link-failure run diverged from direct execution")
	}
	if rep.Counters.LinksDown != 1 {
		t.Errorf("LinksDown = %d, want 1", rep.Counters.LinksDown)
	}
	// The ring minus one edge is a path: routing costs must not shrink.
	clean, err := (&FaultTolerantSimulator{Host: host, Replicas: reps}).Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RouteSteps < clean.RouteSteps {
		t.Errorf("degraded route steps %d < clean %d", rep.RouteSteps, clean.RouteSteps)
	}
}

func TestFaultTolerantDeterministic(t *testing.T) {
	comp, _, host, reps := ftFixture(t, 24, 3, 5, 7)
	plan, err := faults.Scenario("chaos", 13, host.Graph.N(), 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*FaultReport, error) {
		return (&FaultTolerantSimulator{Host: host, Replicas: reps, Plan: plan}).Run(comp, 5)
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("divergent outcomes: %v vs %v", errA, errB)
	}
	if errA != nil {
		if !errors.Is(errA, ErrUnrecoverable) {
			t.Fatalf("unexpected error class: %v", errA)
		}
		return // deterministic failure is acceptable for chaos
	}
	if a.Counters != b.Counters {
		t.Errorf("counters differ across identical runs: %v vs %v", a.Counters, b.Counters)
	}
	if a.Trace.Checksum() != b.Trace.Checksum() || a.RouteSteps != b.RouteSteps {
		t.Error("trace or cost differ across identical runs")
	}
}

// TestNearestReplicaFetchDistance pins the nearest-replica selection of
// RedundantSimulator with a hand-computed instance: two adjacent guests on
// an 8-ring, replicas at hosts {0} and {3, 7}. The three fetches travel
// distances 1 (0←7), 3 (3←0) and 1 (7←0): average 5/3.
func TestNearestReplicaFetchDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	guest, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	host, err := RingHost(8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := (&RedundantSimulator{Host: host, Replicas: [][]int{{0}, {3, 7}}}).Run(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5.0 / 3.0; math.Abs(rep.AvgFetchDist-want) > 1e-9 {
		t.Errorf("AvgFetchDist = %v, want %v (nearest-replica selection broken)", rep.AvgFetchDist, want)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("redundant trace diverged")
	}
}

// TestFailoverAfterReplicaHostRemoved covers the failover path end to end:
// the host holding a guest's primary replica is removed mid-run and the
// nearest surviving replica takes over without corrupting the trace.
func TestFailoverAfterReplicaHostRemoved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	guest, err := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := RingHost(8)
	if err != nil {
		t.Fatal(err)
	}
	// Guest 0 replicated at {0, 4}: removing host 0 must promote host 4.
	plan := &faults.Plan{Crashes: []faults.Crash{{Host: 0, Step: 3}}}
	ft := &FaultTolerantSimulator{Host: host, Replicas: [][]int{{0, 4}, {2, 6}}, Plan: plan}
	rep, err := ft.Run(comp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("failover trace diverged from direct execution")
	}
	if rep.Counters.FailedOver != 1 {
		t.Errorf("FailedOver = %d, want 1", rep.Counters.FailedOver)
	}
	if rep.Counters.ReEmbedded != 1 {
		t.Errorf("ReEmbedded = %d, want 1", rep.Counters.ReEmbedded)
	}
	if rep.SurvivingHosts != 7 {
		t.Errorf("SurvivingHosts = %d, want 7", rep.SurvivingHosts)
	}
}
