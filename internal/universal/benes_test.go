package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/routing"
	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestNewBenesHost(t *testing.T) {
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	if bh.Rows != 8 {
		t.Errorf("rows = %d", bh.Rows)
	}
	if err := bh.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bh.Graph.IsConnected() {
		t.Error("Beneš host disconnected")
	}
	if bh.Graph.MaxDegree() > 5 {
		t.Errorf("max degree %d not constant-small", bh.Graph.MaxDegree())
	}
	if bh.GuestNode(3) != routing.BenesNode(3, 0, 3) {
		t.Error("guest node mapping wrong")
	}
	f := bh.Assignment(20)
	for i, q := range f {
		if q != bh.GuestNode(i%8) {
			t.Errorf("assignment[%d] = %d", i, q)
		}
	}
}

func TestOfflineBenesRouterDeterministic(t *testing.T) {
	d := 4
	bh, err := NewBenesHost(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// A random h–h relation between level-0 rows, h = 3.
	var pairs []routing.Pair
	for k := 0; k < 3; k++ {
		perm := rng.Perm(bh.Rows)
		for s, dd := range perm {
			pairs = append(pairs, routing.Pair{Src: bh.GuestNode(s), Dst: bh.GuestNode(dd)})
		}
	}
	p := &routing.Problem{N: bh.Graph.N(), Pairs: pairs}
	res1, err := bh.Router.Route(bh.Graph, p)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := bh.Router.Route(bh.Graph, p)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Steps != res2.Steps {
		t.Error("offline routing not deterministic")
	}
	// Pipelined: steps = (rounds−1) + 2d with rounds ≤ h.
	if res1.StepsPerPhase[0] > 3 {
		t.Errorf("rounds = %d > h", res1.StepsPerPhase[0])
	}
	if res1.Steps != res1.StepsPerPhase[0]-1+2*d {
		t.Errorf("steps %d ≠ rounds−1+2d = %d", res1.Steps, res1.StepsPerPhase[0]-1+2*d)
	}
	// Serial mode charges rounds·2d.
	serial := &OfflineBenesRouter{D: d, Serial: true}
	res3, err := serial.Route(bh.Graph, p)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Steps != res3.StepsPerPhase[0]*2*d {
		t.Errorf("serial steps %d ≠ rounds·2d", res3.Steps)
	}
}

func TestOfflineBenesRouterRejectsNonLevel0(t *testing.T) {
	bh, err := NewBenesHost(3)
	if err != nil {
		t.Fatal(err)
	}
	p := &routing.Problem{N: bh.Graph.N(), Pairs: []routing.Pair{{Src: bh.Graph.N() - 1, Dst: 0}}}
	if _, err := bh.Router.Route(bh.Graph, p); err == nil {
		t.Error("non-level-0 endpoint accepted")
	}
	wrong, err := topology.Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bh.Router.Route(wrong, &routing.Problem{N: 12}); err == nil {
		t.Error("wrong graph accepted")
	}
}

func TestBenesHostEndToEndSimulation(t *testing.T) {
	// The full Theorem 2.1 construction: guest on the Beneš host with
	// deterministic offline routing, trace-verified.
	d := 4
	bh, err := NewBenesHost(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 64 // load 4 on 16 rows
	guest, err := topology.RandomGuest(rng, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	es := &EmbeddingSimulator{Host: &bh.Host, F: bh.Assignment(n)}
	rep, err := es.Run(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("Beneš-host simulation diverged")
	}
	// Routing cost per guest step is identical every step (fixed relation,
	// offline schedule): RouteSteps divisible by guest steps.
	if rep.RouteSteps%3 != 0 {
		t.Errorf("route steps %d not uniform across 3 guest steps", rep.RouteSteps)
	}
	// Pipelined per-step cost ≥ 2d (one traversal) and deterministic.
	perStep := rep.RouteSteps / 3
	if perStep < 2*d {
		t.Errorf("per-step routing %d below one Beneš traversal 2d=%d", perStep, 2*d)
	}
}

func TestCompleteRowPermutation(t *testing.T) {
	perm := completeRowPermutation(6, []routing.Pair{{Src: 0, Dst: 4}, {Src: 3, Dst: 0}})
	seen := make([]bool, 6)
	for _, v := range perm {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
	if perm[0] != 4 || perm[3] != 0 {
		t.Errorf("given pairs lost: %v", perm)
	}
}

func TestObliviousOnBenesHostOffline(t *testing.T) {
	// §2 distinguishes offline (fixed relations) from online (complete
	// network); the offline Beneš machinery still APPLIES per round to a
	// fresh permutation — Waksman is constructive for any permutation — it
	// just cannot be precomputed. Deterministic steps per round: 2d (one
	// permutation, one pipeline pass).
	d := 3
	bh, err := NewBenesHost(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	n := bh.Rows // one guest per row: oblivious rounds are row permutations
	init := sim.RandomInit(n, rng)
	pattern := RandomObliviousPattern(rng, n, 4)
	direct, err := DirectObliviousRun(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	es := &EmbeddingSimulator{Host: &bh.Host, F: bh.Assignment(n)}
	rep, err := es.RunOblivious(init, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != direct.Checksum() {
		t.Fatal("oblivious run on the Beneš host diverged")
	}
	// Each round is one (partial) permutation → exactly 2d steps.
	perRound := rep.RouteSteps / len(pattern)
	if perRound != 2*d {
		t.Errorf("per-round routing %d, want 2d = %d", perRound, 2*d)
	}
}
