package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestPlaceReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reps, err := PlaceReplicas(10, 20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 10 {
		t.Fatalf("rows = %d", len(reps))
	}
	for i, r := range reps {
		if len(r) != 3 {
			t.Errorf("guest %d has %d replicas", i, len(r))
		}
		seen := make(map[int]bool)
		for _, q := range r {
			if q < 0 || q >= 20 || seen[q] {
				t.Errorf("guest %d bad replica set %v", i, r)
			}
			seen[q] = true
		}
	}
	if _, err := PlaceReplicas(10, 20, 0, rng); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := PlaceReplicas(10, 20, 21, rng); err == nil {
		t.Error("r>m accepted")
	}
}

func TestRedundantSimulatorMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ButterflyHost(4) // m = 64 > n = 24
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 4} {
		reps, err := PlaceReplicas(24, 64, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := (&RedundantSimulator{Host: host, Replicas: reps}).Run(comp, 4)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if rep.Trace.Checksum() != direct.Checksum() {
			t.Fatalf("r=%d: redundant simulation diverged", r)
		}
		if rep.Replication != r {
			t.Errorf("replication reported %d, want %d", rep.Replication, r)
		}
	}
}

func TestRedundantReducesFetchDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	host, err := ButterflyHost(5) // m = 160 ≫ n = 16
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, r := range []int{1, 4, 16} {
		reps, err := PlaceReplicas(16, 160, r, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := (&RedundantSimulator{Host: host, Replicas: reps}).Run(comp, 2)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && rep.AvgFetchDist > prev {
			t.Errorf("r=%d: fetch distance %f above previous %f", r, rep.AvgFetchDist, prev)
		}
		prev = rep.AvgFetchDist
	}
}

func TestRedundantSimulatorGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	host, err := RingHost(6)
	if err != nil {
		t.Fatal(err)
	}
	rs := &RedundantSimulator{Host: host, Replicas: [][]int{{0}}}
	if _, err := rs.Run(comp, 2); err == nil {
		t.Error("wrong replica table size accepted")
	}
	bad := make([][]int, 8)
	for i := range bad {
		bad[i] = []int{0}
	}
	bad[3] = []int{}
	rs = &RedundantSimulator{Host: host, Replicas: bad}
	if _, err := rs.Run(comp, 2); err == nil {
		t.Error("empty replica set accepted")
	}
	bad[3] = []int{0, 0}
	rs = &RedundantSimulator{Host: host, Replicas: bad}
	if _, err := rs.Run(comp, 2); err == nil {
		t.Error("duplicate replica accepted")
	}
	bad[3] = []int{99}
	rs = &RedundantSimulator{Host: host, Replicas: bad}
	if _, err := rs.Run(comp, 2); err == nil {
		t.Error("invalid replica host accepted")
	}
}

func TestRedundantDegenerateToEmbedding(t *testing.T) {
	// r = 1 with the balanced placement reproduces the embedding simulator
	// behaviour (same trace, similar step accounting shape).
	rng := rand.New(rand.NewSource(5))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	host, err := TorusHost(16)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([][]int, 32)
	for i := range reps {
		reps[i] = []int{i % 16}
	}
	rep, err := (&RedundantSimulator{Host: host, Replicas: reps}).Run(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	es, err := (&EmbeddingSimulator{Host: host}).Run(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Checksum() != es.Trace.Checksum() {
		t.Error("r=1 redundant trace differs from embedding trace")
	}
}
