package universal

import (
	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
)

// Big-n streaming simulation: builder and validator run as a two-stage
// pipeline connected by a bounded pebble.Pipe, so the protocol never exists
// as a whole — the working set is the pipe window plus the validator's
// possession bitsets (and, optionally, the chunked archive's resident
// window). This is the path that takes E1-style validation to n = 10⁶ guest
// processors on laptop RAM.

// StreamRunConfig tunes the streaming pipeline.
type StreamRunConfig struct {
	// Shards is the validator parallelism (clamped to [1, m]); 0 means 1.
	Shards int
	// Window is the pipe depth in steps; 0 means 4.
	Window int
	// Chunks, when non-nil, receives a tee of the step stream — the archive
	// that can later be written out with WriteBinary or re-validated.
	Chunks *pebble.ChunkedLog
	// Obs, when non-nil, receives the validator's deterministic counters and
	// the chunk storage gauges.
	Obs *obs.Registry
	// MeasureStalls turns on wall-clock pipeline stall accounting. The stall
	// gauges are scheduling-dependent, so experiments keep this off; the CLI
	// turns it on for humans watching a run.
	MeasureStalls bool
}

// StreamRunReport summarizes one streaming build+validate run.
type StreamRunReport struct {
	N, M, T      int
	MaxLoad      int
	HostSteps    int
	Ops          int64
	Slowdown     float64
	Inefficiency float64
	// Pipeline stalls (nonzero only with MeasureStalls).
	SendStallNs, RecvStallNs int64
	// Chunk storage profile (nonzero only with a chunk tee).
	EncodedBytes, PeakChunkBytes, SpilledBytes int64
}

// RunStreamingEmbedding builds the queued embedding schedule for guest on
// host under assignment f (nil = balanced) and validates it concurrently
// through the sharded streaming validator. The builder goroutine feeds the
// pipe; validation failure abandons the pipe, which unblocks and stops the
// builder — no goroutine outlives the call.
func RunStreamingEmbedding(guest, host *graph.Graph, f []int, T int, cfg StreamRunConfig) (*StreamRunReport, error) {
	n, m := guest.N(), host.N()
	if f == nil {
		f = pebble.BalancedAssignment(n, m)
	}
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	pipe := pebble.NewPipe(window)
	pipe.MeasureStalls = cfg.MeasureStalls

	var sink pebble.StepSink = pipe
	if cfg.Chunks != nil {
		sink = pebble.TeeSink(cfg.Chunks, pipe)
	}
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		pipe.CloseSend(pebble.StreamQueuedEmbeddingProtocol(guest, host, f, T, sink))
	}()

	sp := pebble.Spec{Guest: guest, Host: host, T: T}
	stats, err := pebble.ValidateSharded(sp, pipe, pebble.ShardedOptions{Shards: cfg.Shards, Obs: cfg.Obs})
	pipe.CloseRecv()
	<-builderDone
	if err != nil {
		return nil, err
	}

	rep := &StreamRunReport{
		N: n, M: m, T: T,
		MaxLoad:      pebble.MaxLoad(f, m),
		HostSteps:    stats.HostSteps,
		Ops:          stats.Ops,
		Slowdown:     stats.Slowdown(T),
		Inefficiency: stats.Slowdown(T) * float64(m) / float64(n),
	}
	rep.SendStallNs, rep.RecvStallNs = pipe.Stalls()
	if cfg.Obs != nil && cfg.MeasureStalls {
		cfg.Obs.Gauge("pebble.pipe.send_stall_ns").SetMax(rep.SendStallNs)
		cfg.Obs.Gauge("pebble.pipe.recv_stall_ns").SetMax(rep.RecvStallNs)
	}
	if cfg.Chunks != nil {
		rep.EncodedBytes = cfg.Chunks.TotalBytes()
		rep.PeakChunkBytes = cfg.Chunks.PeakResidentBytes()
		rep.SpilledBytes = cfg.Chunks.SpilledBytes()
		if cfg.Obs != nil {
			cfg.Obs.Gauge("pebble.chunk.resident_peak_bytes").SetMax(rep.PeakChunkBytes)
		}
	}
	return rep, nil
}
