package universal

import (
	"context"
	"runtime"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
	"universalnet/internal/pebble"
)

// Big-n streaming simulation: builder and validator run as a two-stage
// pipeline connected by a bounded pebble.Pipe, so the protocol never exists
// as a whole — the working set is the pipe window plus the validator's
// possession bitsets (and, optionally, the chunked archive's resident
// window). Both stages scale with cores: construction shards across
// BuildShards worker goroutines (per-processor ranges merged back into the
// serial byte order), validation across Shards possession shards under a
// windowed barrier. This is the path that takes E1-style validation to
// n = 10⁶ guest processors on laptop RAM.

// StreamRunConfig tunes the streaming pipeline.
type StreamRunConfig struct {
	// Shards is the validator parallelism (clamped to [1, m]); 0 means
	// GOMAXPROCS.
	Shards int
	// BuildShards is the builder parallelism (clamped to [1, m]); 0 means
	// max(1, GOMAXPROCS/2) — half the cores build, since validation has to
	// keep up with the merged stream anyway. 1 builds serially.
	BuildShards int
	// Window is the builder→validator pipe depth in steps; 0 means 4.
	Window int
	// BarrierWindow is the validator's host steps per barrier round when
	// sharded; 0 means the pebble package default.
	BarrierWindow int
	// Chunks, when non-nil, receives a tee of the step stream — the archive
	// that can later be written out with WriteBinary or re-validated.
	Chunks *pebble.ChunkedLog
	// Obs, when non-nil, receives the validator's deterministic counters and
	// the chunk storage gauges.
	Obs *obs.Registry
	// MeasureStalls turns on wall-clock pipeline stall accounting. The stall
	// gauges are scheduling-dependent, so experiments keep this off; the CLI
	// turns it on for humans watching a run.
	MeasureStalls bool
	// Ctx, when non-nil, cancels the whole pipeline: builder workers,
	// merger, and validator are torn down and ctx.Err() is returned.
	Ctx context.Context
}

// StreamRunReport summarizes one streaming build+validate run.
type StreamRunReport struct {
	N, M, T      int
	MaxLoad      int
	HostSteps    int
	Ops          int64
	Slowdown     float64
	Inefficiency float64
	// Resolved parallelism (after auto-sizing).
	BuildShards, ValidateShards int
	// Pipeline stalls (nonzero only with MeasureStalls). SendStallNs is the
	// build side blocked on the main pipe; RecvStallNs the validator
	// waiting for steps; Build* split the build side further into worker
	// build time, worker pipe stalls, and merger waiting.
	SendStallNs, RecvStallNs               int64
	BuildBusyNs, BuildStallNs, MergeWaitNs int64
	// Chunk storage profile (nonzero only with a chunk tee).
	EncodedBytes, PeakChunkBytes, SpilledBytes int64
	// Fingerprint is the chunk archive's stream fingerprint (zero without a
	// chunk tee) — byte-identity across shard counts is asserted on it.
	Fingerprint uint64
}

// RunStreamingEmbedding builds the queued embedding schedule for guest on
// host under assignment f (nil = balanced) and validates it concurrently
// through the sharded streaming validator. The builder side fans out across
// cfg.BuildShards workers whose merged stream is byte-identical to the
// serial builder's. Validation failure abandons the pipe, which unblocks
// and stops the builder; cancelling cfg.Ctx tears both stages down — no
// goroutine outlives the call either way.
func RunStreamingEmbedding(guest, host *graph.Graph, f []int, T int, cfg StreamRunConfig) (*StreamRunReport, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n, m := guest.N(), host.N()
	if f == nil {
		f = pebble.BalancedAssignment(n, m)
	}
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	procs := runtime.GOMAXPROCS(0)
	validateShards := cfg.Shards
	if validateShards <= 0 {
		validateShards = procs
	}
	if validateShards > m {
		validateShards = m
	}
	buildShards := cfg.BuildShards
	if buildShards <= 0 {
		buildShards = procs / 2
		if buildShards < 1 {
			buildShards = 1
		}
	}
	if buildShards > m {
		buildShards = m
	}

	pipe := pebble.NewPipe(window)
	pipe.MeasureStalls = cfg.MeasureStalls

	var sink pebble.StepSink = pipe
	if cfg.Chunks != nil {
		sink = pebble.TeeSink(cfg.Chunks, pipe)
	}
	var bstats pebble.BuildShardedStats
	builderDone := make(chan struct{})
	go func() {
		defer close(builderDone)
		pipe.CloseSend(pebble.StreamQueuedEmbeddingProtocolSharded(ctx, guest, host, f, T, pebble.BuildShardedOptions{
			Workers:       buildShards,
			MeasureStalls: cfg.MeasureStalls,
			Stats:         &bstats,
		}, sink))
	}()
	// The build harness tears its own workers down on cancellation, but the
	// merge (or a serial build) can be parked in sink.AppendStep on a full
	// main pipe; abandoning the pipe's read side unblocks it.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				pipe.CloseRecv()
			case <-watchDone:
			}
		}()
	}

	sp := pebble.Spec{Guest: guest, Host: host, T: T}
	stats, err := pebble.ValidateSharded(sp, pipe, pebble.ShardedOptions{
		Shards: validateShards,
		Window: cfg.BarrierWindow,
		Obs:    cfg.Obs,
	})
	pipe.CloseRecv()
	<-builderDone
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}

	rep := &StreamRunReport{
		N: n, M: m, T: T,
		MaxLoad:        pebble.MaxLoad(f, m),
		HostSteps:      stats.HostSteps,
		Ops:            stats.Ops,
		Slowdown:       stats.Slowdown(T),
		Inefficiency:   stats.Slowdown(T) * float64(m) / float64(n),
		BuildShards:    buildShards,
		ValidateShards: validateShards,
	}
	rep.SendStallNs, rep.RecvStallNs = pipe.Stalls()
	rep.BuildBusyNs = bstats.BusyNs
	rep.BuildStallNs = bstats.StallNs
	rep.MergeWaitNs = bstats.MergeStallNs
	if bstats.Workers == 1 {
		// The serial core's only stall source is the main pipe, which the
		// harness cannot see; net it out of the wall time it reported.
		rep.BuildBusyNs -= rep.SendStallNs
		rep.BuildStallNs = rep.SendStallNs
	}
	if cfg.Obs != nil && cfg.MeasureStalls {
		cfg.Obs.Gauge("pebble.pipe.send_stall_ns").SetMax(rep.SendStallNs)
		cfg.Obs.Gauge("pebble.pipe.recv_stall_ns").SetMax(rep.RecvStallNs)
		cfg.Obs.Gauge("pebble.build.busy_ns").SetMax(rep.BuildBusyNs)
		cfg.Obs.Gauge("pebble.build.stall_ns").SetMax(rep.BuildStallNs)
		cfg.Obs.Gauge("pebble.build.merge_wait_ns").SetMax(rep.MergeWaitNs)
	}
	if cfg.Chunks != nil {
		rep.EncodedBytes = cfg.Chunks.TotalBytes()
		rep.PeakChunkBytes = cfg.Chunks.PeakResidentBytes()
		rep.SpilledBytes = cfg.Chunks.SpilledBytes()
		rep.Fingerprint = cfg.Chunks.Fingerprint()
		if cfg.Obs != nil {
			cfg.Obs.Gauge("pebble.chunk.resident_peak_bytes").SetMax(rep.PeakChunkBytes)
		}
	}
	return rep, nil
}
