package universal

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestBuildRoundedTreeHost(t *testing.T) {
	rh, err := BuildRoundedTreeHost(16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rh.RootNet.N() != 16 || !rh.RootNet.IsConnected() {
		t.Error("root interconnect wrong")
	}
	if rh.M() != rh.Tree.M() {
		t.Error("size accounting wrong")
	}
	if _, err := BuildRoundedTreeHost(12, 3, 2); err == nil {
		t.Error("non-power-of-two n accepted")
	}
	if _, err := BuildRoundedTreeHost(2, 3, 2); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestRoundedRunMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, c := 16, 3
	guest, err := topology.RandomGuest(rng, n, c)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	direct, err := comp.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, t0 := range []int{1, 2, 3} {
		rh, err := BuildRoundedTreeHost(n, c, t0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rh.Run(comp, 9)
		if err != nil {
			t.Fatalf("t0=%d: %v", t0, err)
		}
		if rep.Trace.Checksum() != direct.Checksum() {
			t.Fatalf("t0=%d: trace diverged", t0)
		}
		if rep.Slowdown < float64(c+2) {
			t.Errorf("t0=%d: slowdown %f below the compute floor %d", t0, rep.Slowdown, c+2)
		}
		wantRounds := (9 + t0 - 1) / t0
		if rep.Rounds != wantRounds {
			t.Errorf("t0=%d: rounds %d, want %d", t0, rep.Rounds, wantRounds)
		}
	}
}

func TestRoundedRunAmortization(t *testing.T) {
	// The refresh cost amortizes: per-step refresh overhead at t0=3 must be
	// below t0=1 (the [14] trade: bigger trees, fewer refreshes).
	rng := rand.New(rand.NewSource(2))
	n, c, T := 16, 3, 12
	guest, err := topology.RandomGuest(rng, n, c)
	if err != nil {
		t.Fatal(err)
	}
	comp := sim.MixMod(guest, rng)
	overhead := func(t0 int) float64 {
		rh, err := BuildRoundedTreeHost(n, c, t0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rh.Run(comp, T)
		if err != nil {
			t.Fatal(err)
		}
		return float64(rep.RouteSteps+rep.ScatterSteps) / float64(T)
	}
	if o3, o1 := overhead(3), overhead(1); o3 >= o1 {
		t.Errorf("refresh overhead did not amortize: t0=3 %.2f ≥ t0=1 %.2f", o3, o1)
	}
}

func TestRoundedRunGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rh, err := BuildRoundedTreeHost(16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	wrongSize, err := topology.RandomGuest(rng, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Run(sim.MixMod(wrongSize, rng), 4); err == nil {
		t.Error("wrong guest size accepted")
	}
	dense, err := topology.RandomGuest(rng, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Run(sim.MixMod(dense, rng), 4); err == nil {
		t.Error("guest degree above c accepted")
	}
	okGuest, err := topology.RandomGuest(rng, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Run(sim.MixMod(okGuest, rng), -1); err == nil {
		t.Error("negative T accepted")
	}
	// T = 0: trivial run.
	rep, err := rh.Run(sim.MixMod(okGuest, rng), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HostSteps != 0 || rep.Rounds != 0 {
		t.Errorf("zero-step run: %+v", rep)
	}
}
