package core

import (
	"fmt"
	"math"
)

// RPrime returns the r' of the Theorem 3.1 proof: the smallest constant with
// (q·k)^n · 2^{δ·n} · 2^{r·n·k} ≤ 2^{r'·n·k}, i.e. (normalized per n·k)
// r' = r + (log₂(q·k) + δ)/k. Monotone decreasing in k — the proof may take
// any k ≥ 1, so r' ≤ r + log₂ q + δ always suffices.
func (p Params) RPrime(k float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("core: r' needs k ≥ 1, got %f", k)
	}
	return p.R + (math.Log2(p.Q*k)+p.Delta)/k, nil
}

// FinalInequality evaluates the Theorem 3.1 chain at its last line:
// m^{γ·(c−12)/2·n/2} ≤ 2^{r'·n·k}, returning both sides in log₂ per n, so
// callers can see exactly where the bound bites. Consistent with
// feasibleNormalized by construction (tested).
func (p Params) FinalInequality(log2m, k float64) (lhs, rhs float64, err error) {
	rp, err := p.RPrime(k)
	if err != nil {
		return 0, 0, err
	}
	lhs = 0.5 * p.Gamma() * (float64(p.C-12) / 2) * log2m
	rhs = rp * k
	return lhs, rhs, nil
}

// KFromClosedForm inverts the final inequality for k:
// k ≥ γ·(c−12)/(4·r')·log₂ m, iterated twice because r' depends weakly on k.
func (p Params) KFromClosedForm(log2m float64) float64 {
	k := 1.0
	for i := 0; i < 4; i++ {
		rp, err := p.RPrime(k)
		if err != nil {
			return 1
		}
		next := p.Gamma() * (float64(p.C-12) / 4) * log2m / rp
		if next < 1 {
			next = 1
		}
		k = next
	}
	return k
}
