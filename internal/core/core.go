// Package core implements the paper's primary contribution as executable
// mathematics: the counting argument behind Theorem 3.1 (m·s = Ω(n·log m)
// for every constant-degree n-universal network of size m with slowdown s).
//
// Every quantity of Section 3.2 is a finite computation for concrete
// (n, m, d, k): the number of guests |𝒰[G₀]| (lower-bounded as in [13]), the
// number of fragments Y ≤ |𝒜|·(q·k)^n (Proposition 3.6a), the multiplicity
// X (Lemma 3.3 / Proposition 3.6b), and the resulting bound on |𝒢(k)|, the
// graphs simulable with inefficiency k (Lemma 3.5). The minimal k for which
// |𝒢(k)| can reach |𝒰[G₀]| is the lower bound on the inefficiency; the
// package solves for it numerically and exposes the closed forms.
//
// All counting is done in log₂ domain (the raw counts exceed 2^(n log n));
// an exact math/big mode backs the small-case tests.
package core

import (
	"fmt"
	"math"
)

// Params collects the constants of Section 3. Zero values are replaced by
// the paper's choices via Defaults.
type Params struct {
	C     int     // guest degree (paper: 16; must exceed the G₀ degree 12)
	D     int     // host degree d (constant degree of the universal network)
	Q     float64 // q of the Main Lemma (paper: 384)
	R     float64 // r of the Main Lemma (paper: 3472 + 384·log₂ d)
	Alpha float64 // expander parameter α ∈ (0,1)
	Beta  float64 // expander parameter β > 1
	Delta float64 // δ of the |𝒰[G₀]| lower bound from [13]
}

// Defaults fills unset fields with the paper's constants.
func (p Params) Defaults() Params {
	if p.C == 0 {
		p.C = 16
	}
	if p.D == 0 {
		p.D = 4
	}
	if p.Q == 0 {
		p.Q = 384
	}
	if p.R == 0 {
		p.R = 3472 + 384*math.Log2(float64(p.D))
	}
	if p.Alpha == 0 {
		p.Alpha = 0.5
	}
	if p.Beta == 0 {
		p.Beta = 1.5
	}
	if p.Delta == 0 {
		p.Delta = 2
	}
	return p
}

// Validate rejects parameter combinations outside the proof's hypotheses.
func (p Params) Validate() error {
	if p.C <= 12 || p.C%2 != 0 {
		return fmt.Errorf("core: guest degree c=%d must be even and > 12", p.C)
	}
	if p.D < 2 {
		return fmt.Errorf("core: host degree d=%d must be ≥ 2", p.D)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("core: α=%f outside (0,1)", p.Alpha)
	}
	if p.Beta <= 1 {
		return fmt.Errorf("core: β=%f must exceed 1", p.Beta)
	}
	if p.Q <= 0 || p.R <= 0 || p.Delta <= 0 {
		return fmt.Errorf("core: q, r, δ must be positive")
	}
	return nil
}

// Gamma returns γ = ½·α·(1 − 1/β) of Lemma 3.15.
func (p Params) Gamma() float64 { return 0.5 * p.Alpha * (1 - 1/p.Beta) }

// Log2Guests returns the [13] lower bound on log₂ |𝒰[G₀]|:
// ((c−12)/2)·n·log₂ n − δ·n.
func (p Params) Log2Guests(n int) float64 {
	half := float64(p.C-12) / 2
	return half*float64(n)*math.Log2(float64(n)) - p.Delta*float64(n)
}

// Log2FragmentSets returns the Main Lemma bound log₂ |𝒜| ≤ r·n·k.
func (p Params) Log2FragmentSets(n int, k float64) float64 {
	return p.R * float64(n) * k
}

// Log2FragmentChoices returns Proposition 3.6(a): log₂ Y ≤ log₂|𝒜| +
// n·log₂(q·k).
func (p Params) Log2FragmentChoices(n int, k float64) float64 {
	return p.Log2FragmentSets(n, k) + float64(n)*math.Log2(p.Q*k)
}

// Log2Multiplicity returns Proposition 3.6(b): log₂ X ≤
// ((c−12)/2)·n·log₂ n − ½γ·((c−12)/2)·n·log₂ m.
func (p Params) Log2Multiplicity(n, m int) float64 {
	half := float64(p.C-12) / 2
	return half*float64(n)*math.Log2(float64(n)) -
		0.5*p.Gamma()*half*float64(n)*math.Log2(float64(m))
}

// Log2Simulable returns Lemma 3.5's bound on log₂ |𝒢(k)|, the number of
// guests admitting a k-inefficient simulation on a host of size m.
func (p Params) Log2Simulable(n, m int, k float64) float64 {
	return p.Log2FragmentChoices(n, k) + p.Log2Multiplicity(n, m)
}

// Feasible reports whether inefficiency k is consistent with universality:
// |𝒢(k)| ≥ |𝒰[G₀]| must hold, i.e. Log2Simulable ≥ Log2Guests. If it fails,
// no k-inefficient simulation can cover all guests — k is impossible.
func (p Params) Feasible(n, m int, k float64) bool {
	return p.Log2Simulable(n, m, k) >= p.Log2Guests(n)
}

// feasibleNormalized is Feasible with both sides divided by n — the n·log₂ n
// terms cancel, leaving r·k + log₂(q·k) + δ ≥ (γ·(c−12)/4)·log₂ m. This is
// why Theorem 3.1's k = Ω(log m) is independent of the guest size.
func (p Params) feasibleNormalized(log2m, k float64) bool {
	if k <= 0 {
		return false
	}
	return p.R*k+math.Log2(p.Q*k)+p.Delta >= p.Gamma()*(float64(p.C-12)/4)*log2m
}

// KLowerBound returns the smallest k ≥ 1 consistent with the (normalized)
// Theorem 3.1 inequality for a host with log₂ m = log2m. Monotone bisection.
// Note the scale: with the paper's own constants (r ≈ 4240) the bound stays
// at the trivial k = 1 until log₂ m is astronomically large — the theorem is
// asymptotic; use ToyParams to visualize the Ω(log m) shape at small sizes.
func (p Params) KLowerBound(log2m float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if log2m <= 0 {
		return 0, fmt.Errorf("core: log₂ m = %f must be positive", log2m)
	}
	lo, hi := 1.0, 2.0
	if p.feasibleNormalized(log2m, lo) {
		return lo, nil
	}
	for !p.feasibleNormalized(log2m, hi) {
		hi *= 2
		if hi > 1e15 {
			return 0, fmt.Errorf("core: no feasible k below 1e15 (log₂m=%f)", log2m)
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if p.feasibleNormalized(log2m, mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// MinInefficiency solves Theorem 3.1 numerically for integer sizes: the
// smallest k ≥ 1 such that Feasible(n, m, k) holds. Equivalent to
// KLowerBound(log₂ m) because the guest-count terms cancel.
func (p Params) MinInefficiency(n, m int) (float64, error) {
	if n < 2 || m < 2 {
		return 0, fmt.Errorf("core: need n, m ≥ 2 (got %d, %d)", n, m)
	}
	return p.KLowerBound(math.Log2(float64(m)))
}

// ToyParams returns unit-scale constants that preserve the structure of the
// inequality while making the Ω(log m) regime visible at experiment sizes:
// the per-level bookkeeping costs (q, r, δ) are set to O(1) and the expander
// is near-ideal. Use for shape plots; use Defaults for the paper's bound.
func ToyParams() Params {
	return Params{C: 16, D: 4, Q: 2, R: 1, Alpha: 0.99, Beta: 100, Delta: 1}
}

// ClosedFormK returns the closed-form asymptotic lower bound of the
// Theorem 3.1 proof: k ≥ (γ/(2r'))·((c−12)/2)·log₂ m, where r' absorbs the
// (q·k)^n·2^{δn} terms; we report the leading constant with r' = r + small
// slack, which the numeric solver dominates for concrete sizes.
func (p Params) ClosedFormK(m int, rPrime float64) float64 {
	if rPrime <= 0 {
		rPrime = p.R + p.Delta + math.Log2(p.Q) + 8
	}
	return p.Gamma() * (float64(p.C-12) / 2) * math.Log2(float64(m)) / (2 * rPrime)
}

// LowerBoundSlowdown converts the inefficiency bound into the slowdown
// form of the abstract: s ≥ k·n/m, so m·s ≥ n·k = Ω(n·log m).
func (p Params) LowerBoundSlowdown(n, m int) (float64, error) {
	k, err := p.MinInefficiency(n, m)
	if err != nil {
		return 0, err
	}
	s := k * float64(n) / float64(m)
	if s < 1 {
		s = 1 // slowdown is at least 1 by definition
	}
	return s, nil
}

// UpperBoundSlowdown returns the Theorem 2.1 upper bound achieved by the
// butterfly host: s = O(⌈n/m⌉·log m). The constant cRoute is the measured
// or assumed per-permutation routing constant (1 reproduces the asymptotic
// form).
func UpperBoundSlowdown(n, m int, cRoute float64) float64 {
	load := math.Ceil(float64(n) / float64(m))
	return cRoute * load * math.Log2(float64(m))
}

// FrontierGapBound returns Lemma 3.15's per-critical-step time-gap bound:
// between consecutive critical frontiers the host must spend at least
// ½·α·(1−1/β)·n / (384·√m·k) steps producing heavy pebbles.
func (p Params) FrontierGapBound(n, m int, k float64) float64 {
	return p.Gamma() * float64(n) / (384 * math.Sqrt(float64(m)) * k)
}

// HeavyProcessorBound returns the Lemma 3.15 count bound: at most
// 384·√m·k host processors can be t₀-heavy (hold > n/√m distinct time-t₀
// pebbles) at a critical time.
func HeavyProcessorBound(m int, k float64) float64 {
	return 384 * math.Sqrt(float64(m)) * k
}

// HeavyThreshold returns n/√m, the |𝒫(j,t₀)| threshold above which a host
// processor is heavy.
func HeavyThreshold(n, m int) float64 {
	return float64(n) / math.Sqrt(float64(m))
}
