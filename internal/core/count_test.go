package core

import (
	"math"
	"math/big"
	"testing"
)

func wantCount(t *testing.T, n, c int, want int64) {
	t.Helper()
	got, err := CountRegularGraphsExact(n, c)
	if err != nil {
		t.Fatalf("n=%d c=%d: %v", n, c, err)
	}
	if got.Cmp(big.NewInt(want)) != 0 {
		t.Errorf("count(%d,%d) = %v, want %d", n, c, got, want)
	}
}

func TestCountRegularGraphsKnownValues(t *testing.T) {
	// 0-regular: exactly one (empty) graph.
	wantCount(t, 5, 0, 1)
	// 1-regular: perfect matchings: (n-1)!! for even n.
	wantCount(t, 2, 1, 1)
	wantCount(t, 4, 1, 3)
	wantCount(t, 6, 1, 15)
	wantCount(t, 8, 1, 105)
	// 2-regular: disjoint cycle covers (OEIS A001205).
	wantCount(t, 3, 2, 1)
	wantCount(t, 4, 2, 3)
	wantCount(t, 5, 2, 12)
	wantCount(t, 6, 2, 70)
	wantCount(t, 7, 2, 465)
	// 3-regular (cubic) labeled graphs (OEIS A005814).
	wantCount(t, 4, 3, 1)
	wantCount(t, 6, 3, 70)
	wantCount(t, 8, 3, 19355)
	wantCount(t, 10, 3, 11180820)
	// (n-1)-regular: only K_n.
	wantCount(t, 5, 4, 1)
	wantCount(t, 6, 5, 1)
}

func TestCountRegularGraphsImpossible(t *testing.T) {
	// Odd degree sum.
	wantCount(t, 5, 3, 0)
	wantCount(t, 3, 1, 0)
	// Degree ≥ n.
	wantCount(t, 4, 4, 0)
}

func TestCountRegularGraphsGuards(t *testing.T) {
	if _, err := CountRegularGraphsExact(-1, 2); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := CountRegularGraphsExact(20, 3); err == nil {
		t.Error("oversized n accepted")
	}
}

func TestCountMatchesConfigurationEstimate(t *testing.T) {
	// The configuration-model estimate should be within a factor of ~4 of
	// the exact count already at n=10, c=3 (the e^{-(c²-1)/4} correction is
	// asymptotic).
	exact, err := CountRegularGraphsExact(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	lf, _ := new(big.Float).SetInt(exact).Float64()
	est := Log2RegularGraphCount(10, 3)
	diff := math.Abs(est - math.Log2(lf))
	if diff > 2 { // within a factor of 4
		t.Errorf("estimate off by 2^%.2f (est %.2f vs exact %.2f)", diff, est, math.Log2(lf))
	}
}
