package core

import (
	"math"
	"testing"
)

func TestRPrime(t *testing.T) {
	p := Params{}.Defaults()
	rp, err := p.RPrime(1)
	if err != nil {
		t.Fatal(err)
	}
	want := p.R + math.Log2(p.Q) + p.Delta
	if math.Abs(rp-want) > 1e-9 {
		t.Errorf("r'(1) = %f, want %f", rp, want)
	}
	// Decreasing in k.
	rp2, err := p.RPrime(10)
	if err != nil {
		t.Fatal(err)
	}
	if rp2 >= rp {
		t.Errorf("r' not decreasing: %f → %f", rp, rp2)
	}
	if _, err := p.RPrime(0.5); err == nil {
		t.Error("k < 1 accepted")
	}
}

func TestFinalInequalityMatchesFeasibility(t *testing.T) {
	p := Params{}.Defaults()
	for _, log2m := range []float64{16, 64, 1e5, 1e6} {
		for _, k := range []float64{1, 5, 100, 1e4} {
			lhs, rhs, err := p.FinalInequality(log2m, k)
			if err != nil {
				t.Fatal(err)
			}
			feasible := rhs >= lhs
			if feasible != p.feasibleNormalized(log2m, k) {
				t.Errorf("log2m=%g k=%g: FinalInequality (%f vs %f) disagrees with feasibleNormalized",
					log2m, k, lhs, rhs)
			}
		}
	}
}

func TestKFromClosedFormTracksSolver(t *testing.T) {
	p := Params{}.Defaults()
	for _, log2m := range []float64{1e6, 4e6} {
		solved, err := p.KLowerBound(log2m)
		if err != nil {
			t.Fatal(err)
		}
		closed := p.KFromClosedForm(log2m)
		if solved <= 1 {
			continue
		}
		ratio := closed / solved
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("log2m=%g: closed form %f vs solver %f", log2m, closed, solved)
		}
	}
	// In the trivial regime the closed form also clamps to 1.
	if k := p.KFromClosedForm(10); k != 1 {
		t.Errorf("trivial regime closed form = %f", k)
	}
}
