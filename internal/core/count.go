package core

import (
	"fmt"
	"math/big"
)

// CountRegularGraphsExact counts the labeled simple c-regular graphs on n
// vertices exactly, by backtracking over the adjacency choices of each
// vertex with memoization on the residual-degree suffix. This grounds the
// |𝒰'| asymptotics of Section 3.2 on small instances. Feasible for roughly
// n ≤ 14 with c ≤ 4 and n ≤ 10 with larger c.
func CountRegularGraphsExact(n, c int) (*big.Int, error) {
	if n < 0 || c < 0 {
		return nil, fmt.Errorf("core: negative parameters")
	}
	if c >= n && !(c == 0 && n >= 0) {
		if n == 0 {
			return big.NewInt(1), nil
		}
		return big.NewInt(0), nil
	}
	if n*c%2 != 0 {
		return big.NewInt(0), nil
	}
	if c == 0 {
		return big.NewInt(1), nil
	}
	if n > 16 {
		return nil, fmt.Errorf("core: exact count infeasible for n=%d", n)
	}
	residual := make([]int, n)
	for i := range residual {
		residual[i] = c
	}
	memo := make(map[string]*big.Int)
	return countRec(residual, 0, memo), nil
}

// countRec counts completions where vertices < v are fully wired and
// residual[i] edges remain to be attached at each i ≥ v, all of which must
// go to vertices > their own index partner... i.e. edges only between
// not-yet-processed vertices or from v to higher vertices.
func countRec(residual []int, v int, memo map[string]*big.Int) *big.Int {
	n := len(residual)
	for v < n && residual[v] == 0 {
		v++
	}
	if v == n {
		return big.NewInt(1)
	}
	key := memoKey(residual, v)
	if r, ok := memo[key]; ok {
		return new(big.Int).Set(r)
	}
	// Choose the set of higher-indexed neighbors for vertex v.
	need := residual[v]
	var candidates []int
	for u := v + 1; u < n; u++ {
		if residual[u] > 0 {
			candidates = append(candidates, u)
		}
	}
	total := big.NewInt(0)
	var choose func(idx, picked int)
	choose = func(idx, picked int) {
		if picked == need {
			total.Add(total, countRec(residual, v+1, memo))
			return
		}
		if len(candidates)-idx < need-picked {
			return
		}
		// Take candidates[idx].
		u := candidates[idx]
		residual[u]--
		residual[v]--
		choose(idx+1, picked+1)
		residual[v]++
		residual[u]++
		// Skip candidates[idx].
		choose(idx+1, picked)
	}
	saved := residual[v]
	choose(0, 0)
	residual[v] = saved
	memo[key] = new(big.Int).Set(total)
	return total
}

// memoKey encodes the residual suffix from v on. Positions matter (the
// graphs are labeled), so the key is the positional tuple.
func memoKey(residual []int, v int) string {
	buf := make([]byte, 0, len(residual)-v+4)
	buf = append(buf, byte(v))
	for _, r := range residual[v:] {
		buf = append(buf, byte(r))
	}
	return string(buf)
}
