package core

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.C != 16 || p.Q != 384 || p.D != 4 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if math.Abs(p.R-(3472+384*2)) > 1e-9 {
		t.Errorf("r = %f", p.R)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	// Defaults must not clobber explicit values.
	p2 := Params{C: 14, Q: 10}.Defaults()
	if p2.C != 14 || p2.Q != 10 {
		t.Errorf("explicit values clobbered: %+v", p2)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{C: 12, D: 4, Q: 1, R: 1, Alpha: .5, Beta: 1.5, Delta: 1},  // c too small
		{C: 15, D: 4, Q: 1, R: 1, Alpha: .5, Beta: 1.5, Delta: 1},  // c odd
		{C: 16, D: 1, Q: 1, R: 1, Alpha: .5, Beta: 1.5, Delta: 1},  // d too small
		{C: 16, D: 4, Q: 1, R: 1, Alpha: 1.5, Beta: 1.5, Delta: 1}, // α out of range
		{C: 16, D: 4, Q: 1, R: 1, Alpha: .5, Beta: 0.9, Delta: 1},  // β ≤ 1
		{C: 16, D: 4, Q: -1, R: 1, Alpha: .5, Beta: 1.5, Delta: 1}, // q ≤ 0
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGamma(t *testing.T) {
	p := Params{Alpha: 0.5, Beta: 2}.Defaults()
	if g := p.Gamma(); math.Abs(g-0.125) > 1e-12 {
		t.Errorf("γ = %f, want 0.125", g)
	}
}

func TestLog2Factorial(t *testing.T) {
	if got := Log2Factorial(0); math.Abs(got) > 1e-9 {
		t.Errorf("log2 0! = %f", got)
	}
	if got := Log2Factorial(5); math.Abs(got-math.Log2(120)) > 1e-9 {
		t.Errorf("log2 5! = %f", got)
	}
}

func TestLog2Choose(t *testing.T) {
	if got := Log2Choose(10, 3); math.Abs(got-math.Log2(120)) > 1e-9 {
		t.Errorf("log2 C(10,3) = %f", got)
	}
	if !math.IsInf(Log2Choose(3, 5), -1) {
		t.Error("C(3,5) should be -Inf in log domain")
	}
	if !math.IsInf(Log2Choose(3, -1), -1) {
		t.Error("negative k should be -Inf")
	}
}

func TestChooseExactMatchesLog(t *testing.T) {
	f := func(a, b uint8) bool {
		n := int(a%40) + 1
		k := int(b) % (n + 1)
		exact := Choose(n, k)
		if exact.Sign() == 0 {
			return math.IsInf(Log2Choose(n, k), -1)
		}
		lf, _ := new(big.Float).SetInt(exact).Float64()
		return math.Abs(Log2Choose(n, k)-math.Log2(lf)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplicityExactAgainstLog(t *testing.T) {
	d := []int{5, 7, 9, 4}
	exact := MultiplicityExact(d, 4)
	want := new(big.Int).Mul(Choose(5, 2), Choose(7, 2))
	want.Mul(want, Choose(9, 2))
	want.Mul(want, Choose(4, 2))
	if exact.Cmp(want) != 0 {
		t.Errorf("exact multiplicity %v, want %v", exact, want)
	}
	lf, _ := new(big.Float).SetInt(exact).Float64()
	if math.Abs(Log2MultiplicityExact(d, 4)-math.Log2(lf)) > 1e-6 {
		t.Error("log multiplicity disagrees with exact")
	}
}

func TestLog2RegularGraphCountSanity(t *testing.T) {
	// 2-regular graphs on n vertices are disjoint unions of cycles — their
	// number is about n!/(something); the estimate must be positive and
	// below log2(n!) for n not tiny.
	l := Log2RegularGraphCount(12, 2)
	if l <= 0 || l >= Log2Factorial(12) {
		t.Errorf("2-regular count estimate %f out of range (log2 12! = %f)", l, Log2Factorial(12))
	}
	// Odd n·c impossible.
	if !math.IsInf(Log2RegularGraphCount(5, 3), -1) {
		t.Error("odd degree sum should be impossible")
	}
	// Growth in c.
	if Log2RegularGraphCount(64, 4) >= Log2RegularGraphCount(64, 8) {
		t.Error("more edges should mean more graphs in this regime")
	}
}

func TestLog2GuestsPositive(t *testing.T) {
	p := Params{}.Defaults()
	if g := p.Log2Guests(1024); g <= 0 {
		t.Errorf("log2 |U[G0]| = %f", g)
	}
}

func TestFeasibleMonotoneInK(t *testing.T) {
	p := Params{}.Defaults()
	n, m := 1<<20, 1<<16
	if p.Feasible(n, m, 0.5) && !p.Feasible(n, m, 1000) {
		t.Error("feasibility not monotone")
	}
	for k := 1.0; k < 1e6; k *= 4 {
		if p.Feasible(n, m, k) {
			if !p.Feasible(n, m, k*2) {
				t.Errorf("feasible at k=%f but not at 2k", k)
			}
		}
	}
}

func TestPaperConstantsAreVacuousAtLaptopScale(t *testing.T) {
	// A genuine property of the paper's constants: with r ≈ 4240 the bound
	// stays at the trivial k = 1 for every realistic host size. This is why
	// the experiments also evaluate ToyParams.
	p := Params{}.Defaults()
	for _, m := range []int{1 << 10, 1 << 20, 1 << 40} {
		k, err := p.MinInefficiency(1<<20, m)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 {
			t.Errorf("m=2^%d: k = %f, expected the trivial bound 1", m, k)
		}
	}
}

func TestKLowerBoundGrowsWithLogM(t *testing.T) {
	// Paper constants, asymptotic regime: the Ω(log m) slope appears once
	// log₂ m passes ~r/γ'.
	p := Params{}.Defaults()
	k1, err := p.KLowerBound(1e6)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.KLowerBound(2e6)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := p.KLowerBound(4e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(k1 < k2 && k2 < k4) {
		t.Errorf("k not increasing in log m: %f %f %f", k1, k2, k4)
	}
	if ratio := k4 / k2; math.Abs(ratio-2) > 0.3 {
		t.Errorf("asymptotic slope not linear: k2=%f k4=%f", k2, k4)
	}
}

func TestToyParamsShowShapeAtSmallSizes(t *testing.T) {
	p := ToyParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	k10, err := p.MinInefficiency(1<<14, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	k20, err := p.MinInefficiency(1<<14, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	k40, err := p.MinInefficiency(1<<14, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if !(k10 < k20 && k20 < k40) {
		t.Errorf("toy bound flat: %f %f %f", k10, k20, k40)
	}
	if k40 < 2 {
		t.Errorf("toy bound never leaves trivial regime: k40 = %f", k40)
	}
}

func TestMinInefficiencyErrors(t *testing.T) {
	p := Params{}.Defaults()
	if _, err := p.MinInefficiency(1, 16); err == nil {
		t.Error("n=1 accepted")
	}
	bad := Params{C: 13}.Defaults()
	if _, err := bad.MinInefficiency(64, 64); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestClosedFormKTracksSolver(t *testing.T) {
	p := Params{}.Defaults()
	// The closed form is the asymptotic slope; both must grow linearly in
	// log m with positive slope.
	c1 := p.ClosedFormK(1<<16, 0)
	c2 := p.ClosedFormK(1<<32, 0)
	if c2 <= c1 || math.Abs(c2/c1-2) > 0.2 {
		t.Errorf("closed form not linear in log m: %f %f", c1, c2)
	}
}

func TestLowerBoundSlowdownAtLeastOne(t *testing.T) {
	p := Params{}.Defaults()
	s, err := p.LowerBoundSlowdown(1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1 {
		t.Errorf("slowdown bound %f < 1", s)
	}
}

func TestUpperBoundSlowdown(t *testing.T) {
	// n = m: s = log2 m.
	if got := UpperBoundSlowdown(1024, 1024, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("upper bound = %f, want 10", got)
	}
	// n = 4m: load 4.
	if got := UpperBoundSlowdown(4096, 1024, 1); math.Abs(got-40) > 1e-9 {
		t.Errorf("upper bound = %f, want 40", got)
	}
}

func TestTradeoffTable(t *testing.T) {
	p := Params{}.Defaults()
	n := 1 << 24
	rows, err := p.TradeoffTable(n, []int{1 << 10, 1 << 14, 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.LowerS < 1 {
			t.Errorf("row %d: lower slowdown %f", i, r.LowerS)
		}
		if r.UpperS < r.LowerS {
			t.Errorf("row %d: upper bound %f below lower bound %f", i, r.UpperS, r.LowerS)
		}
		if r.ProductMS <= 0 || r.NLogM <= 0 {
			t.Errorf("row %d: products wrong: %+v", i, r)
		}
	}
	// m·s lower bound must scale like n·log m: the ratio should be roughly
	// stable across rows (within a factor of ~40 given the huge constants).
	r0 := rows[0].ProductMS / rows[0].NLogM
	r2 := rows[2].ProductMS / rows[2].NLogM
	if r0 <= 0 || r2 <= 0 {
		t.Error("degenerate ratios")
	}
	if r2/r0 > 40 || r0/r2 > 40 {
		t.Errorf("m·s / n·log m wildly unstable: %f vs %f", r0, r2)
	}
}

func TestMinHostSizeForConstantSlowdown(t *testing.T) {
	// With toy constants the Ω(n log n) corollary is visible: a slowdown cap
	// of s₀ forces m ≥ n·k/s₀ with k = Ω(log m) > s₀ for large n.
	p := ToyParams()
	n := 1 << 20
	m, err := p.MinHostSizeForConstantSlowdown(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m < n {
		t.Errorf("m = %d below n = %d for constant slowdown", m, n)
	}
	// Monotone: a looser cap permits a smaller (or equal) host.
	m2, err := p.MinHostSizeForConstantSlowdown(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m2 > m {
		t.Errorf("looser cap needs bigger host: %d > %d", m2, m)
	}
}

func TestFrontierAndHeavyBounds(t *testing.T) {
	p := Params{}.Defaults()
	gap := p.FrontierGapBound(1<<20, 1<<10, 10)
	if gap <= 0 {
		t.Errorf("gap bound %f", gap)
	}
	if HeavyProcessorBound(1<<10, 10) <= 0 {
		t.Error("heavy processor bound not positive")
	}
	if got := HeavyThreshold(1<<20, 1<<10); math.Abs(got-float64(1<<20)/32) > 1e-6 {
		t.Errorf("heavy threshold = %f", got)
	}
	// Larger k ⇒ smaller forced gap (more parallel work allowed).
	if p.FrontierGapBound(1<<20, 1<<10, 20) >= gap {
		t.Error("gap bound not decreasing in k")
	}
}

func TestBoundImprovesWithExpanderQuality(t *testing.T) {
	// Better expanders (larger α, β) give larger γ and hence a stronger
	// bound: k(log₂ m) must be monotone in both parameters.
	base := Params{C: 16, D: 4, Q: 2, R: 1, Alpha: 0.3, Beta: 1.5, Delta: 1}
	betterAlpha := base
	betterAlpha.Alpha = 0.6
	betterBeta := base
	betterBeta.Beta = 3
	lm := 1e3
	kBase, err := base.KLowerBound(lm)
	if err != nil {
		t.Fatal(err)
	}
	kA, err := betterAlpha.KLowerBound(lm)
	if err != nil {
		t.Fatal(err)
	}
	kB, err := betterBeta.KLowerBound(lm)
	if err != nil {
		t.Fatal(err)
	}
	if kA <= kBase {
		t.Errorf("larger α did not strengthen the bound: %f vs %f", kA, kBase)
	}
	if kB <= kBase {
		t.Errorf("larger β did not strengthen the bound: %f vs %f", kB, kBase)
	}
}

func TestKLowerBoundGuards(t *testing.T) {
	p := Params{}.Defaults()
	if _, err := p.KLowerBound(0); err == nil {
		t.Error("log2m = 0 accepted")
	}
	bad := Params{C: 13}.Defaults()
	if _, err := bad.KLowerBound(10); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestOpenProblemGap(t *testing.T) {
	p := ToyParams()
	rows, err := p.OpenProblemGap([]int{1 << 10, 1 << 14, 1 << 18}, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The gap: Ω(n log n)-ish lower bound below the n^{1+ε} upper bound.
		if r.MLower <= float64(r.N)/2 {
			t.Errorf("n=%d: lower bound %f below n/s0", r.N, r.MLower)
		}
		if r.MUpper <= r.MLower {
			t.Errorf("n=%d: gap inverted: lower %f ≥ upper %f", r.N, r.MLower, r.MUpper)
		}
	}
	// The lower bound must grow super-linearly in n (the n·log n corollary)
	// in the regime where k > s0.
	r0, r2 := rows[0], rows[2]
	if r2.MLower/float64(r2.N) <= r0.MLower/float64(r0.N) {
		t.Errorf("m/n not growing: %f vs %f", r0.MLower/float64(r0.N), r2.MLower/float64(r2.N))
	}
	if _, err := p.OpenProblemGap([]int{4}, 0.5, 0.5); err == nil {
		t.Error("s0 < 1 accepted")
	}
	if _, err := p.OpenProblemGap([]int{1}, 2, 0.5); err == nil {
		t.Error("n=1 accepted")
	}
}
