package core

import (
	"fmt"
	"math"
	"math/big"
)

// Log2Factorial returns log₂(n!) via the log-gamma function.
func Log2Factorial(n int) float64 {
	if n < 0 {
		panic("core: factorial of negative number")
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg / math.Ln2
}

// Log2Choose returns log₂ C(n, k); −Inf when the binomial is zero.
func Log2Choose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return Log2Factorial(n) - Log2Factorial(k) - Log2Factorial(n-k)
}

// Choose returns C(n, k) exactly.
func Choose(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Log2MultiplicityExact evaluates the Lemma 3.3 product
// Π_i C(|D_i|, c/2) in log₂ domain for the residual degree c (the paper
// applies it with c−12 after fixing G₀).
func Log2MultiplicityExact(dSizes []int, c int) float64 {
	if c%2 != 0 {
		panic("core: residual degree must be even")
	}
	half := c / 2
	sum := 0.0
	for _, d := range dSizes {
		sum += Log2Choose(d, half)
	}
	return sum
}

// MultiplicityExact is Log2MultiplicityExact with exact big.Int arithmetic.
func MultiplicityExact(dSizes []int, c int) *big.Int {
	half := c / 2
	prod := big.NewInt(1)
	for _, d := range dSizes {
		prod.Mul(prod, Choose(d, half))
	}
	return prod
}

// Log2RegularGraphCount estimates log₂ of the number of labeled c-regular
// graphs on n vertices by the configuration-model asymptotic
// (nc)! / ((nc/2)!·2^{nc/2}·(c!)^n) · e^{−(c²−1)/4}. This is the counting
// baseline |𝒰'| of Section 3.2.
func Log2RegularGraphCount(n, c int) float64 {
	if n*c%2 != 0 {
		return math.Inf(-1)
	}
	nc := n * c
	l := Log2Factorial(nc) - Log2Factorial(nc/2) - float64(nc)/2 -
		float64(n)*Log2Factorial(c)
	l -= (float64(c*c-1) / 4) / math.Ln2
	return l
}

// TradeoffRow is one row of the size/slowdown trade-off table.
type TradeoffRow struct {
	N, M      int
	LowerK    float64 // Theorem 3.1 numeric bound on inefficiency k
	LowerS    float64 // lower bound on the slowdown s = k·n/m (≥ 1)
	UpperS    float64 // Theorem 2.1 butterfly upper bound ⌈n/m⌉·log m
	ProductMS float64 // m·LowerS, to compare with n·log m
	NLogM     float64 // n·log₂ m, the Ω target
}

// TradeoffTable evaluates the lower and upper bounds over host sizes ms for
// fixed guest size n.
func (p Params) TradeoffTable(n int, ms []int) ([]TradeoffRow, error) {
	rows := make([]TradeoffRow, 0, len(ms))
	for _, m := range ms {
		k, err := p.MinInefficiency(n, m)
		if err != nil {
			return nil, fmt.Errorf("core: m=%d: %w", m, err)
		}
		s := k * float64(n) / float64(m)
		if s < 1 {
			s = 1
		}
		rows = append(rows, TradeoffRow{
			N: n, M: m,
			LowerK:    k,
			LowerS:    s,
			UpperS:    UpperBoundSlowdown(n, m, 1),
			ProductMS: float64(m) * s,
			NLogM:     float64(n) * math.Log2(float64(m)),
		})
	}
	return rows, nil
}

// MinHostSizeForConstantSlowdown returns, for guest size n and a slowdown
// cap s₀, the smallest host size m (searched over powers of two) for which
// the Theorem 3.1 bound permits slowdown ≤ s₀ — the "m = Ω(n log n) for
// s = O(1)" corollary.
func (p Params) MinHostSizeForConstantSlowdown(n int, s0 float64) (int, error) {
	for e := 1; e <= 60; e++ {
		m := 1 << e
		k, err := p.MinInefficiency(n, m)
		if err != nil {
			return 0, err
		}
		s := k * float64(n) / float64(m)
		if s <= s0 {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: no host size below 2^60 allows slowdown %f", s0)
}

// GapRow quantifies the paper's closing open problem for one guest size:
// how many processors does constant slowdown need? Theorem 3.1 forces
// m·s₀ ≥ n·k(log₂ m) (solved as a fixed point in m); [14] supplies the
// upper bound m = O(n^{1+ε}).
type GapRow struct {
	N       int
	S0      float64
	MLower  float64 // smallest m consistent with Theorem 3.1 at slowdown s₀
	MUpper  float64 // n^{1+ε}
	Epsilon float64
}

// OpenProblemGap evaluates the conclusion's gap for a sweep of guest sizes.
// The lower bound iterates m ← n·k(log₂ m)/s₀ to its fixed point.
func (p Params) OpenProblemGap(ns []int, s0, eps float64) ([]GapRow, error) {
	if s0 < 1 || eps <= 0 {
		return nil, fmt.Errorf("core: need s₀ ≥ 1 and ε > 0")
	}
	var rows []GapRow
	for _, n := range ns {
		if n < 2 {
			return nil, fmt.Errorf("core: n=%d too small", n)
		}
		m := float64(n)
		for i := 0; i < 64; i++ {
			k, err := p.KLowerBound(math.Log2(m))
			if err != nil {
				return nil, err
			}
			next := float64(n) * k / s0
			if next < float64(n)/s0 {
				next = float64(n) / s0
			}
			if math.Abs(next-m) < 1e-6*m {
				m = next
				break
			}
			m = next
		}
		rows = append(rows, GapRow{
			N: n, S0: s0,
			MLower:  m,
			MUpper:  math.Pow(float64(n), 1+eps),
			Epsilon: eps,
		})
	}
	return rows, nil
}
