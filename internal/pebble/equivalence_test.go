package pebble

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

// The dense bitset State must be observationally identical to the map-based
// oracle: same answers from every query after every prefix of host steps,
// and the same accept/reject decision (at the same step) on corrupted
// protocols. Divergence on any of 200+ seeded protocols is a bug in the
// dense engine.

// equalIntSlices treats nil and empty as equal (queries return nil for "no
// processors" in both engines, but the distinction is not part of the API).
func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// compareStates checks every public query of the dense state against the
// oracle. hostSteps is the number of steps applied so far, used to pick
// frontier sample points.
func compareStates(t *testing.T, st *State, or *oracleState, hostSteps int) {
	t.Helper()
	n, m, T := st.guest.N(), st.host.N(), st.T
	if got, want := st.HostStep(), or.step; got != want {
		t.Fatalf("HostStep: dense %d, oracle %d", got, want)
	}
	if got, want := st.PebbleCount(), or.PebbleCount(); got != want {
		t.Fatalf("PebbleCount: dense %d, oracle %d", got, want)
	}
	taus := []int{-1, 0, 1, hostSteps / 2, hostSteps - 1, hostSteps, hostSteps + 5}
	for tt := -1; tt <= T+1; tt++ {
		if got, want := st.TotalWeight(tt), oracleTotalWeight(or, tt); got != want {
			t.Fatalf("TotalWeight(%d): dense %d, oracle %d", tt, got, want)
		}
		for i := 0; i < n; i++ {
			if got, want := st.Representatives(i, tt), oracleReps(or, i, tt); !equalIntSlices(got, want) {
				t.Fatalf("Representatives(%d,%d): dense %v, oracle %v", i, tt, got, want)
			}
			if got, want := st.Generators(i, tt), or.Generators(i, tt); !equalIntSlices(got, want) {
				t.Fatalf("Generators(%d,%d): dense %v, oracle %v", i, tt, got, want)
			}
			if got, want := st.Weight(i, tt), oracleWeight(or, i, tt); got != want {
				t.Fatalf("Weight(%d,%d): dense %d, oracle %d", i, tt, got, want)
			}
			if got, want := st.Contains(0, Type{P: i, T: tt}), or.Contains(0, Type{P: i, T: tt}); got != want {
				t.Fatalf("Contains(0,{%d,%d}): dense %v, oracle %v", i, tt, got, want)
			}
		}
		if tt >= 0 && tt <= T {
			for j := 0; j < m; j++ {
				if got, want := st.GuestsOnProcessor(j, tt), or.GuestsOnProcessor(j, tt); !equalIntSlices(got, want) {
					t.Fatalf("GuestsOnProcessor(%d,%d): dense %v, oracle %v", j, tt, got, want)
				}
			}
		}
		for _, τ := range taus {
			if got, want := st.FrontierSize(tt, τ), oracleFrontierSize(or, tt, τ); got != want {
				t.Fatalf("FrontierSize(%d,%d): dense %d, oracle %d", tt, τ, got, want)
			}
		}
		for _, target := range []int{0, 1, n / 2, n, n + 1} {
			for _, maxStep := range []int{-1, 0, hostSteps, hostSteps + 3} {
				got := st.FrontierThresholdStep(tt, target, maxStep)
				want := oracleFrontierThreshold(or, tt, target, maxStep)
				if got != want {
					t.Fatalf("FrontierThresholdStep(%d,%d,%d): dense %d, oracle %d", tt, target, maxStep, got, want)
				}
			}
		}
	}
}

// The oracle mirrors the original implementation, whose queries were only
// ever called with in-horizon t; clamp the out-of-horizon probes the dense
// engine answers with zero values so both agree on the full domain.

func oracleReps(or *oracleState, i, t int) []int {
	if t < 0 || t > or.T {
		return nil
	}
	return or.Representatives(i, t)
}

func oracleWeight(or *oracleState, i, t int) int {
	if t < 0 || t > or.T {
		return 0
	}
	return or.Weight(i, t)
}

func oracleTotalWeight(or *oracleState, t int) int {
	if t < 0 || t > or.T {
		return 0
	}
	return or.TotalWeight(t)
}

func oracleFrontierSize(or *oracleState, t, τ int) int {
	if t < 0 || t+1 > or.T {
		return 0
	}
	return or.FrontierSize(t, τ)
}

func oracleFrontierThreshold(or *oracleState, t, target, maxStep int) int {
	if maxStep < 0 {
		return -1
	}
	if target <= 0 {
		return 0
	}
	if t < 0 || t+1 > or.T {
		return -1
	}
	return or.FrontierThresholdStep(t, target, maxStep)
}

// replayBoth feeds the protocol's steps to both engines, comparing queries
// after every step. Returns the step index of the first rejection (-1 if
// accepted) — after asserting both engines reject at the same step.
func replayBoth(t *testing.T, pr *Protocol, deep bool) int {
	t.Helper()
	st := NewState(pr.Guest, pr.Host, pr.T)
	or := newOracleState(pr.Guest, pr.Host, pr.T)
	for si, ops := range pr.Steps {
		errD := st.ApplyStep(ops)
		errO := or.ApplyStep(ops)
		if (errD == nil) != (errO == nil) {
			t.Fatalf("step %d: dense err %v, oracle err %v", si, errD, errO)
		}
		if errD != nil {
			// The legacy engine picked an arbitrary map entry when several
			// sends were left unmatched, so for that error class only the
			// kind must agree; all other messages are deterministic.
			dLeft := strings.Contains(errD.Error(), "has no matching receive")
			oLeft := strings.Contains(errO.Error(), "has no matching receive")
			if dLeft != oLeft || (!dLeft && errD.Error() != errO.Error()) {
				t.Fatalf("step %d: dense err %q, oracle err %q", si, errD, errO)
			}
			return si
		}
		if deep {
			compareStates(t, st, or, si+1)
		}
	}
	compareStates(t, st, or, len(pr.Steps))

	// Validate's final-generator check, in both engines.
	denseDone := true
	for i := 0; i < pr.Guest.N(); i++ {
		if !st.hasGenerator(Type{P: i, T: pr.T}) {
			denseDone = false
			break
		}
	}
	oracleDone := true
	for i := 0; i < pr.Guest.N(); i++ {
		if len(or.generators[Type{P: i, T: pr.T}]) == 0 {
			oracleDone = false
			break
		}
	}
	if denseDone != oracleDone {
		t.Fatalf("final-generator check: dense %v, oracle %v", denseDone, oracleDone)
	}
	return -1
}

// mutate corrupts one step of a valid protocol in a seeded random way and
// returns the copy. The result is usually invalid; either way both engines
// must agree on it.
func mutate(pr *Protocol, rng *rand.Rand) *Protocol {
	out := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T, Steps: make([][]Op, len(pr.Steps))}
	for i, ops := range pr.Steps {
		out.Steps[i] = append([]Op(nil), ops...)
	}
	if len(out.Steps) == 0 {
		return out
	}
	si := rng.Intn(len(out.Steps))
	ops := out.Steps[si]
	if len(ops) == 0 {
		return out
	}
	oi := rng.Intn(len(ops))
	switch rng.Intn(6) {
	case 0: // duplicate an op: its processor acts twice
		out.Steps[si] = append(ops, ops[oi])
	case 1: // drop an op: may orphan a send or a receive
		out.Steps[si] = append(ops[:oi:oi], ops[oi+1:]...)
	case 2: // shift a pebble one guest step into the future
		ops[oi].Pebble.T++
	case 3: // retarget to an out-of-range processor
		ops[oi].Proc = pr.Host.N() + rng.Intn(3)
	case 4: // point a send/receive at the wrong peer
		ops[oi].Peer = (ops[oi].Peer + 1 + rng.Intn(pr.Host.N()-1)) % pr.Host.N()
	case 5: // corrupt the guest index
		ops[oi].Pebble.P = pr.Guest.N() + rng.Intn(3)
	}
	return out
}

func TestDenseStateMatchesOracle(t *testing.T) {
	hosts := func(t *testing.T, rng *rand.Rand, k int) *graph.Graph {
		t.Helper()
		var h *graph.Graph
		var err error
		switch k % 3 {
		case 0:
			h, err = topology.Torus(9)
		case 1:
			h, err = topology.Mesh(9)
		default:
			h, err = topology.RandomRegular(rng, 8, 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	protocols := 0
	mutants := 0
	for seed := int64(0); seed < 210; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(5)
			T := 2 + rng.Intn(2)
			guest, err := topology.RandomGuest(rng, n, 2)
			if err != nil {
				t.Fatal(err)
			}
			host := hosts(t, rng, int(seed))
			f := RandomizedAssignment(n, host.N(), seed)

			var pr *Protocol
			switch seed % 4 {
			case 0:
				pr, err = RandomProtocol(guest, host, T, rng, 0)
			case 1:
				pr, err = BuildEmbeddingProtocol(guest, host, f, T)
			case 2:
				pr, err = BuildPipelinedProtocol(guest, host, f, T)
			default:
				pr, err = BuildMulticastProtocol(guest, host, f, T)
			}
			if err != nil {
				t.Fatalf("building protocol: %v", err)
			}

			// Deep query comparison after every step on a sample of seeds,
			// final-state comparison on all (every step still checked for
			// accept/reject agreement).
			if rejected := replayBoth(t, pr, seed%7 == 0); rejected >= 0 {
				t.Fatalf("valid protocol rejected at step %d", rejected)
			}
			protocols++

			for k := 0; k < 2; k++ {
				replayBoth(t, mutate(pr, rng), false)
				mutants++
			}
		})
	}
	if t.Failed() {
		return
	}
	t.Logf("compared %d protocols and %d mutants with zero divergence", protocols, mutants)
}
