package pebble

// oracleState is a test-only reimplementation of State on the original
// map-based storage (one pebble-set map per processor, holder/generator maps
// keyed by Type). It exists purely as an independently-derived oracle for the
// dense bitset State: the equivalence property test replays the same
// protocols through both and demands identical answers from every query.
// Keep this straightforward and obviously-correct rather than fast.

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

type oracleState struct {
	guest *graph.Graph
	host  *graph.Graph
	T     int

	contains   []map[Type]bool
	holders    map[Type][]int
	generators map[Type][]int
	firstHeld  []map[Type]int
	step       int
}

func newOracleState(guest, host *graph.Graph, T int) *oracleState {
	st := &oracleState{
		guest:      guest,
		host:       host,
		T:          T,
		contains:   make([]map[Type]bool, host.N()),
		holders:    make(map[Type][]int),
		generators: make(map[Type][]int),
		firstHeld:  make([]map[Type]int, host.N()),
	}
	for q := 0; q < host.N(); q++ {
		st.contains[q] = make(map[Type]bool)
		st.firstHeld[q] = make(map[Type]int)
	}
	for i := 0; i < guest.N(); i++ {
		ty := Type{P: i, T: 0}
		for q := 0; q < host.N(); q++ {
			st.contains[q][ty] = true
			st.firstHeld[q][ty] = 0
		}
		all := make([]int, host.N())
		for q := range all {
			all[q] = q
		}
		st.holders[ty] = all
	}
	return st
}

func (st *oracleState) Contains(q int, ty Type) bool { return st.contains[q][ty] }

func (st *oracleState) ApplyStep(ops []Op) error {
	st.step++
	busy := make(map[int]bool)
	type edgeKey struct {
		from, to int
		pb       Type
	}
	sends := make(map[edgeKey]int)
	var receives []Op
	var gains []struct {
		q  int
		pb Type
	}

	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= st.host.N() {
			return fmt.Errorf("processor %d out of range", op.Proc)
		}
		if busy[op.Proc] {
			return fmt.Errorf("processor %d performs two operations", op.Proc)
		}
		busy[op.Proc] = true
		switch op.Kind {
		case Generate:
			if err := st.checkGenerate(op.Proc, op.Pebble); err != nil {
				return err
			}
			gains = append(gains, struct {
				q  int
				pb Type
			}{op.Proc, op.Pebble})
			st.generators[op.Pebble] = oracleAppendUnique(st.generators[op.Pebble], op.Proc)
		case Send:
			if !st.host.HasEdge(op.Proc, op.Peer) {
				return fmt.Errorf("send %v along non-edge %d→%d", op.Pebble, op.Proc, op.Peer)
			}
			if !st.contains[op.Proc][op.Pebble] {
				return fmt.Errorf("processor %d sends pebble %v it does not hold", op.Proc, op.Pebble)
			}
			sends[edgeKey{op.Proc, op.Peer, op.Pebble}]++
		case Receive:
			receives = append(receives, op)
		default:
			return fmt.Errorf("unknown op kind %v", op.Kind)
		}
	}
	for _, op := range receives {
		k := edgeKey{op.Peer, op.Proc, op.Pebble}
		if sends[k] == 0 {
			return fmt.Errorf("processor %d receives %v from %d without a matching send", op.Proc, op.Pebble, op.Peer)
		}
		sends[k]--
		gains = append(gains, struct {
			q  int
			pb Type
		}{op.Proc, op.Pebble})
	}
	for k, c := range sends {
		if c > 0 {
			return fmt.Errorf("send of %v from %d to %d has no matching receive", k.pb, k.from, k.to)
		}
	}
	for _, g := range gains {
		if !st.contains[g.q][g.pb] {
			st.contains[g.q][g.pb] = true
			st.holders[g.pb] = append(st.holders[g.pb], g.q)
			st.firstHeld[g.q][g.pb] = st.step
		}
	}
	return nil
}

func (st *oracleState) checkGenerate(q int, ty Type) error {
	if ty.T < 1 || ty.T > st.T {
		return fmt.Errorf("generate %v outside guest horizon [1,%d]", ty, st.T)
	}
	if ty.P < 0 || ty.P >= st.guest.N() {
		return fmt.Errorf("generate %v: no such guest processor", ty)
	}
	need := Type{P: ty.P, T: ty.T - 1}
	if !st.contains[q][need] {
		return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, need)
	}
	for _, j := range st.guest.Neighbors(ty.P) {
		need := Type{P: j, T: ty.T - 1}
		if !st.contains[q][need] {
			return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, need)
		}
	}
	return nil
}

func oracleAppendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func (st *oracleState) Representatives(i, t int) []int {
	h := append([]int(nil), st.holders[Type{P: i, T: t}]...)
	sort.Ints(h)
	return h
}

func (st *oracleState) Generators(i, t int) []int {
	g := append([]int(nil), st.generators[Type{P: i, T: t + 1}]...)
	sort.Ints(g)
	return g
}

func (st *oracleState) Weight(i, t int) int { return len(st.holders[Type{P: i, T: t}]) }

func (st *oracleState) TotalWeight(t int) int {
	sum := 0
	for i := 0; i < st.guest.N(); i++ {
		sum += st.Weight(i, t)
	}
	return sum
}

func (st *oracleState) PebbleCount() int {
	sum := 0
	for _, h := range st.holders {
		sum += len(h)
	}
	return sum
}

func (st *oracleState) GuestsOnProcessor(j, t int) []int {
	var out []int
	for i := 0; i < st.guest.N(); i++ {
		if st.contains[j][Type{P: i, T: t}] {
			out = append(out, i)
		}
	}
	return out
}

func (st *oracleState) FrontierSize(t, τ int) int {
	count := 0
	for i := 0; i < st.guest.N(); i++ {
		ty := Type{P: i, T: t}
		for _, q := range st.generators[Type{P: i, T: t + 1}] {
			if first, ok := st.firstHeld[q][ty]; ok && first <= τ {
				count++
				break
			}
		}
	}
	return count
}

func (st *oracleState) FrontierThresholdStep(t, target, maxStep int) int {
	for τ := 0; τ <= maxStep; τ++ {
		if st.FrontierSize(t, τ) >= target {
			return τ
		}
	}
	return -1
}
