package pebble

import "fmt"

// Stats summarizes a protocol's operational profile: how the host's
// step·processor budget was spent. The lower-bound proof charges every
// operation (T'·m in total); the busy fraction shows how close a concrete
// protocol comes to that ceiling.
type Stats struct {
	HostSteps    int
	Generates    int
	Sends        int
	Receives     int
	TotalOps     int
	BusyFraction float64 // TotalOps / (HostSteps · m)
	MaxStepOps   int     // most ops in a single host step
}

// Stats computes the profile.
func (pr *Protocol) Stats() Stats {
	st := Stats{HostSteps: pr.HostSteps()}
	for _, step := range pr.Steps {
		if len(step) > st.MaxStepOps {
			st.MaxStepOps = len(step)
		}
		for _, op := range step {
			switch op.Kind {
			case Generate:
				st.Generates++
			case Send:
				st.Sends++
			case Receive:
				st.Receives++
			}
		}
	}
	st.TotalOps = st.Generates + st.Sends + st.Receives
	if pr.Host != nil && pr.HostSteps() > 0 && pr.Host.N() > 0 {
		st.BusyFraction = float64(st.TotalOps) / float64(pr.HostSteps()*pr.Host.N())
	}
	return st
}

// String renders the profile on one line.
func (s Stats) String() string {
	return fmt.Sprintf("steps=%d ops=%d (gen=%d send=%d recv=%d) busy=%.1f%% maxstep=%d",
		s.HostSteps, s.TotalOps, s.Generates, s.Sends, s.Receives, 100*s.BusyFraction, s.MaxStepOps)
}
