package pebble

import (
	"fmt"

	"universalnet/internal/graph"
)

// StreamQueuedEmbeddingProtocol is the scalable sibling of
// StreamEmbeddingProtocol, built for guests far larger than the host
// (n ≫ m). It emits the same phased schedule shape — per guest step, a
// generation phase of maxLoad host steps followed by a distribution phase —
// but schedules the distribution with per-host FIFO task queues instead of
// rescanning the full task list every host step. Each host step costs
// O(m + transfers) instead of O(total tasks), which is the difference
// between minutes and weeks at n = 10⁶.
//
// Scheduling rule: hosts are scanned in index order; a free host forwards
// the head task of its queue one hop toward its destination if that hop is
// also free (head-of-line semantics — a blocked head blocks its queue for
// the step). Progress per host step is guaranteed: the first host whose
// head task is considered either moves it or was blocked by an earlier
// transfer this step.
//
// The ops slice handed to sink is reused across steps. The resulting
// protocol validates (the tests replay it through both engines); its exact
// step sequence differs from StreamEmbeddingProtocol's, so it is a distinct
// builder, not a drop-in replacement where byte-identical output matters.
//
// The construction splits into a read-only queuedPlan (shared by the
// sharded builder's workers) and a ranged stream() core; this function is
// the serial full-range form.
func StreamQueuedEmbeddingProtocol(guest, host *graph.Graph, f []int, T int, sink StepSink) error {
	p, err := newQueuedPlan(guest, host, f, T)
	if err != nil {
		return err
	}
	return p.stream(sink, 0, p.m)
}

// queuedPlan is the read-only precompute of the queued builder: the
// assignment in CSR form, next-hop routing tables, and the distribution
// task template. The template exploits that the distribution tasks for
// guest step t are identical for every t (only the pebble's T differs), so
// the per-step arena rebuild of the original builder becomes three copies.
// A plan is safe for concurrent stream() calls — stream() owns all mutable
// state — which is what lets the sharded builder run W workers against one
// plan.
type queuedPlan struct {
	guest *graph.Graph
	host  *graph.Graph
	T     int
	n, m  int

	maxLoad int
	// Guests assigned to host q are guestIDs[guestOff[q]:guestOff[q+1]],
	// ascending — the generation schedule's row-major order.
	guestOff []int32
	guestIDs []int32

	// nhop[dst][at] is the first neighbor of at one BFS level closer to
	// dst (-1 if unreachable); built only for hosts that appear as task
	// destinations, nil otherwise.
	nhop [][]int32

	// Distribution-task template: task id's pebble is guest taskP[id]
	// bound for host taskDst[id]. tmplHead/tmplTail/tmplNext are the
	// initial per-source FIFO queues; stream() copies them at each guest
	// step and mutates the copies.
	taskP    []int32
	taskDst  []int32
	tmplNext []int32
	tmplHead []int32
	tmplTail []int32

	// Stall guard for one distribution phase: every host step forwards at
	// least one task one hop, so the phase ends within totalHops steps;
	// the slack allows empty scans around phase boundaries.
	maxSteps int
}

func newQueuedPlan(guest, host *graph.Graph, f []int, T int) (*queuedPlan, error) {
	n, m := guest.N(), host.N()
	if T < 1 {
		return nil, fmt.Errorf("pebble: need T ≥ 1, got %d", T)
	}
	if !host.IsConnected() {
		return nil, fmt.Errorf("pebble: host must be connected")
	}
	if f == nil {
		f = BalancedAssignment(n, m)
	}
	if len(f) != n {
		return nil, fmt.Errorf("pebble: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return nil, fmt.Errorf("pebble: guest %d assigned to invalid host %d", i, q)
		}
	}

	p := &queuedPlan{guest: guest, host: host, T: T, n: n, m: m}

	p.guestOff = make([]int32, m+1)
	for _, q := range f {
		p.guestOff[q+1]++
	}
	for q := 0; q < m; q++ {
		p.guestOff[q+1] += p.guestOff[q]
		if load := int(p.guestOff[q+1] - p.guestOff[q]); load > p.maxLoad {
			p.maxLoad = load
		}
	}
	p.guestIDs = make([]int32, n)
	pos := make([]int32, m)
	copy(pos, p.guestOff[:m])
	for i, q := range f {
		p.guestIDs[pos[q]] = int32(i)
		pos[q]++
	}

	// Distance tables are needed only while building the template (for
	// totalHops); the next-hop tables they derive persist for routing.
	p.nhop = make([][]int32, m)
	distCache := make([][]int, m)
	distTo := func(dst int) []int {
		if d := distCache[dst]; d != nil {
			return d
		}
		d := host.BFS(dst)
		distCache[dst] = d
		nh := make([]int32, m)
		for at := 0; at < m; at++ {
			nh[at] = -1
			for _, w := range host.Neighbors(at) {
				if d[w] == d[at]-1 {
					nh[at] = int32(w)
					break
				}
			}
		}
		p.nhop[dst] = nh
		return d
	}

	p.tmplHead = make([]int32, m)
	p.tmplTail = make([]int32, m)
	for q := 0; q < m; q++ {
		p.tmplHead[q], p.tmplTail[q] = -1, -1
	}
	seenStamp := make([]int32, m)
	seenEpoch := int32(0)
	totalHops := 0
	for i := 0; i < n; i++ {
		seenEpoch++
		src := f[i]
		seenStamp[src] = seenEpoch
		for _, j := range guest.Neighbors(i) {
			h := f[j]
			if seenStamp[h] == seenEpoch {
				continue
			}
			seenStamp[h] = seenEpoch
			id := int32(len(p.taskP))
			p.taskP = append(p.taskP, int32(i))
			p.taskDst = append(p.taskDst, int32(h))
			p.tmplNext = append(p.tmplNext, -1)
			if p.tmplTail[src] < 0 {
				p.tmplHead[src] = id
			} else {
				p.tmplNext[p.tmplTail[src]] = id
			}
			p.tmplTail[src] = id
			totalHops += distTo(h)[src]
		}
	}
	p.maxSteps = 4*totalHops + 4*m + 16
	return p, nil
}

// stream emits the plan's host-step schedule into sink, restricted to the
// ops whose acting processor lies in [emitLo, emitHi): a Generate belongs
// to its generating host, and both ops of a transfer belong to the sending
// host (the host whose queue scan initiated it). Every global host step
// produces exactly one AppendStep call — empty sub-steps included — so
// concatenating the [0,a), [a,b), …, [z,m) sub-steps of W range-partitioned
// streams in range order reproduces the full-range stream byte for byte.
// The full schedule's decisions (queue dynamics, stall guard, routing) are
// replayed identically in every range; only emission is filtered.
func (p *queuedPlan) stream(sink StepSink, emitLo, emitHi int) error {
	m := p.m
	next := make([]int32, len(p.tmplNext))
	head := make([]int32, m)
	tail := make([]int32, m)
	busyStamp := make([]int32, m)
	busyEpoch := int32(0)
	var opsBuf []Op

	for t := 1; t <= p.T; t++ {
		// Generation phase: maxLoad host steps, identical to the legacy
		// builder's schedule.
		for r := int32(0); r < int32(p.maxLoad); r++ {
			opsBuf = opsBuf[:0]
			for q := emitLo; q < emitHi; q++ {
				if base := p.guestOff[q]; r < p.guestOff[q+1]-base {
					opsBuf = append(opsBuf, Op{Kind: Generate, Proc: q, Pebble: Type{P: int(p.guestIDs[base+r]), T: t}})
				}
			}
			if err := sink.AppendStep(opsBuf); err != nil {
				return err
			}
		}
		if t == p.T {
			break // final pebbles need not be distributed
		}

		// Distribution phase: reset the queues from the template and run
		// the head-of-line forwarding schedule.
		copy(next, p.tmplNext)
		copy(head, p.tmplHead)
		copy(tail, p.tmplTail)
		pending := len(p.taskP)
		guard := 0
		for pending > 0 {
			guard++
			if guard > p.maxSteps {
				return fmt.Errorf("pebble: distribution stalled at guest step %d", t)
			}
			busyEpoch++
			opsBuf = opsBuf[:0]
			moved := 0
			for q := 0; q < m; q++ {
				if busyStamp[q] == busyEpoch || head[q] < 0 {
					continue
				}
				id := head[q]
				dst := int(p.taskDst[id])
				v := int(p.nhop[dst][q])
				if v < 0 {
					return fmt.Errorf("pebble: no route from %d to %d", q, dst)
				}
				if busyStamp[v] == busyEpoch {
					continue // head-of-line: queue waits for the next step
				}
				// Pop from q, transfer, and settle at v.
				head[q] = next[id]
				if head[q] < 0 {
					tail[q] = -1
				}
				next[id] = -1
				busyStamp[q] = busyEpoch
				busyStamp[v] = busyEpoch
				moved++
				if q >= emitLo && q < emitHi {
					pb := Type{P: int(p.taskP[id]), T: t}
					opsBuf = append(opsBuf, Op{Kind: Send, Proc: q, Pebble: pb, Peer: v})
					opsBuf = append(opsBuf, Op{Kind: Receive, Proc: v, Pebble: pb, Peer: q})
				}
				if dst == v {
					pending--
				} else {
					if tail[v] < 0 {
						head[v] = id
					} else {
						next[tail[v]] = id
					}
					tail[v] = id
				}
			}
			if moved == 0 {
				return fmt.Errorf("pebble: no progress in distribution at guest step %d", t)
			}
			if err := sink.AppendStep(opsBuf); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildQueuedEmbeddingProtocol materializes the queued builder's schedule —
// the small-n form used by the equivalence tests; big runs stream instead.
func BuildQueuedEmbeddingProtocol(guest, host *graph.Graph, f []int, T int) (*Protocol, error) {
	pr := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamQueuedEmbeddingProtocol(guest, host, f, T, &ProtocolSink{Proto: pr}); err != nil {
		return nil, err
	}
	return pr, nil
}
