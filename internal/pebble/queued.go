package pebble

import (
	"fmt"

	"universalnet/internal/graph"
)

// StreamQueuedEmbeddingProtocol is the scalable sibling of
// StreamEmbeddingProtocol, built for guests far larger than the host
// (n ≫ m). It emits the same phased schedule shape — per guest step, a
// generation phase of maxLoad host steps followed by a distribution phase —
// but schedules the distribution with per-host FIFO task queues instead of
// rescanning the full task list every host step. Each host step costs
// O(m + transfers) instead of O(total tasks), which is the difference
// between minutes and weeks at n = 10⁶.
//
// Scheduling rule: hosts are scanned in index order; a free host forwards
// the head task of its queue one hop toward its destination if that hop is
// also free (head-of-line semantics — a blocked head blocks its queue for
// the step). Progress per host step is guaranteed: the first host whose
// head task is considered either moves it or was blocked by an earlier
// transfer this step.
//
// The ops slice handed to sink is reused across steps. The resulting
// protocol validates (the tests replay it through both engines); its exact
// step sequence differs from StreamEmbeddingProtocol's, so it is a distinct
// builder, not a drop-in replacement where byte-identical output matters.
func StreamQueuedEmbeddingProtocol(guest, host *graph.Graph, f []int, T int, sink StepSink) error {
	n, m := guest.N(), host.N()
	if T < 1 {
		return fmt.Errorf("pebble: need T ≥ 1, got %d", T)
	}
	if !host.IsConnected() {
		return fmt.Errorf("pebble: host must be connected")
	}
	if f == nil {
		f = BalancedAssignment(n, m)
	}
	if len(f) != n {
		return fmt.Errorf("pebble: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return fmt.Errorf("pebble: guest %d assigned to invalid host %d", i, q)
		}
	}

	guestsOf := make([][]int32, m)
	for i := 0; i < n; i++ {
		guestsOf[f[i]] = append(guestsOf[f[i]], int32(i))
	}
	maxLoad := 0
	for _, gs := range guestsOf {
		if len(gs) > maxLoad {
			maxLoad = len(gs)
		}
	}

	// Distance tables per destination host. m stays small even when n is
	// huge, so the cache is m² ints at worst.
	distCache := make([][]int, m)
	distTo := func(dst int) []int {
		if d := distCache[dst]; d != nil {
			return d
		}
		d := host.BFS(dst)
		distCache[dst] = d
		return d
	}
	nextHop := func(at, dst int) int {
		d := distTo(dst)
		for _, w := range host.Neighbors(at) {
			if d[w] == d[at]-1 {
				return w
			}
		}
		return -1
	}

	// Task arena and per-host FIFO queues, reused across guest steps. A task
	// records only the pebble's guest index and destination; the pebble time
	// is the ambient t, the current position is the queue it sits in.
	type qtask struct {
		p    int32
		dst  int32
		next int32 // arena link; -1 ends a queue
	}
	var arena []qtask
	head := make([]int32, m)
	tail := make([]int32, m)
	seenStamp := make([]int32, m)
	seenEpoch := int32(0)
	busyStamp := make([]int32, m)
	busyEpoch := int32(0)
	var opsBuf []Op

	for t := 1; t <= T; t++ {
		// Generation phase: maxLoad host steps, identical to the legacy
		// builder's schedule.
		for r := 0; r < maxLoad; r++ {
			opsBuf = opsBuf[:0]
			for q := 0; q < m; q++ {
				if r < len(guestsOf[q]) {
					opsBuf = append(opsBuf, Op{Kind: Generate, Proc: q, Pebble: Type{P: int(guestsOf[q][r]), T: t}})
				}
			}
			if err := sink.AppendStep(opsBuf); err != nil {
				return err
			}
		}
		if t == T {
			break // final pebbles need not be distributed
		}

		// Build the distribution tasks for step t: (P_i, t) from f(i) to each
		// distinct host of i's neighbors, enqueued at f(i) in guest order.
		arena = arena[:0]
		for q := range head {
			head[q], tail[q] = -1, -1
		}
		pending := 0
		totalHops := 0
		for i := 0; i < n; i++ {
			seenEpoch++
			src := f[i]
			seenStamp[src] = seenEpoch
			for _, j := range guest.Neighbors(i) {
				h := f[j]
				if seenStamp[h] == seenEpoch {
					continue
				}
				seenStamp[h] = seenEpoch
				id := int32(len(arena))
				arena = append(arena, qtask{p: int32(i), dst: int32(h), next: -1})
				if tail[src] < 0 {
					head[src] = id
				} else {
					arena[tail[src]].next = id
				}
				tail[src] = id
				pending++
				totalHops += distTo(h)[src]
			}
		}

		// Distribution phase: every host step forwards at least one task one
		// hop, so the phase ends within totalHops steps; the guard allows
		// slack for empty scans around phase boundaries.
		guard := 0
		maxSteps := 4*totalHops + 4*m + 16
		for pending > 0 {
			guard++
			if guard > maxSteps {
				return fmt.Errorf("pebble: distribution stalled at guest step %d", t)
			}
			busyEpoch++
			opsBuf = opsBuf[:0]
			for q := 0; q < m; q++ {
				if busyStamp[q] == busyEpoch || head[q] < 0 {
					continue
				}
				id := head[q]
				tk := &arena[id]
				v := nextHop(q, int(tk.dst))
				if v < 0 {
					return fmt.Errorf("pebble: no route from %d to %d", q, tk.dst)
				}
				if busyStamp[v] == busyEpoch {
					continue // head-of-line: queue waits for the next step
				}
				// Pop from q, transfer, and settle at v.
				head[q] = tk.next
				if head[q] < 0 {
					tail[q] = -1
				}
				tk.next = -1
				busyStamp[q] = busyEpoch
				busyStamp[v] = busyEpoch
				pb := Type{P: int(tk.p), T: t}
				opsBuf = append(opsBuf, Op{Kind: Send, Proc: q, Pebble: pb, Peer: v})
				opsBuf = append(opsBuf, Op{Kind: Receive, Proc: v, Pebble: pb, Peer: q})
				if int(tk.dst) == v {
					pending--
				} else {
					if tail[v] < 0 {
						head[v] = id
					} else {
						arena[tail[v]].next = id
					}
					tail[v] = id
				}
			}
			if len(opsBuf) == 0 {
				return fmt.Errorf("pebble: no progress in distribution at guest step %d", t)
			}
			if err := sink.AppendStep(opsBuf); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildQueuedEmbeddingProtocol materializes the queued builder's schedule —
// the small-n form used by the equivalence tests; big runs stream instead.
func BuildQueuedEmbeddingProtocol(guest, host *graph.Graph, f []int, T int) (*Protocol, error) {
	pr := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamQueuedEmbeddingProtocol(guest, host, f, T, &ProtocolSink{Proto: pr}); err != nil {
		return nil, err
	}
	return pr, nil
}
