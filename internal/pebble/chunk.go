package pebble

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// Chunked protocol storage. Steps are encoded into a compact varint binary
// format and accumulated into chunks of ~TargetChunkBytes; when the
// resident encoded bytes exceed MemBudgetBytes, sealed chunks spill to a
// temporary file oldest-first. A ChunkedLog is a StepSink; Source() replays
// it (loading spilled chunks back one at a time through a reused buffer),
// and Materialize turns it back into a Protocol for the small-n analyses.
//
// Encoding per step: uvarint op count, then per op five zigzag varints —
// kind, proc, pebble.P, pebble.T, peer. Signed varints make the codec
// lossless for any Op value (corrupted or adversarial protocols round-trip
// too, which the fuzz target exercises); well-formed ops cost ~5–8 bytes.

// appendOpsBytes encodes a run of ops (no count prefix) onto dst.
func appendOpsBytes(dst []byte, ops []Op) []byte {
	for _, op := range ops {
		dst = binary.AppendVarint(dst, int64(op.Kind))
		dst = binary.AppendVarint(dst, int64(op.Proc))
		dst = binary.AppendVarint(dst, int64(op.Pebble.P))
		dst = binary.AppendVarint(dst, int64(op.Pebble.T))
		dst = binary.AppendVarint(dst, int64(op.Peer))
	}
	return dst
}

// appendStepBytes encodes one step onto dst.
func appendStepBytes(dst []byte, ops []Op) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	return appendOpsBytes(dst, ops)
}

// minEncodedOpBytes is the smallest possible encoding of one op (five
// one-byte varints) — the bound that lets decodeStepBytes reject absurd op
// counts before allocating.
const minEncodedOpBytes = 5

// decodeStepBytes decodes one step from src into buf (reused when large
// enough), returning the ops and the number of bytes consumed.
func decodeStepBytes(src []byte, buf []Op) ([]Op, int, error) {
	count, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, 0, fmt.Errorf("pebble: chunk: bad op count")
	}
	if count > uint64(len(src)-k)/minEncodedOpBytes+1 {
		return nil, 0, fmt.Errorf("pebble: chunk: op count %d exceeds remaining bytes", count)
	}
	if uint64(cap(buf)) < count {
		buf = make([]Op, count)
	}
	buf = buf[:count]
	off := k
	for i := range buf {
		var vals [5]int64
		for j := range vals {
			v, n := binary.Varint(src[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("pebble: chunk: truncated op %d", i)
			}
			vals[j] = v
			off += n
		}
		buf[i] = Op{
			Kind:   OpKind(vals[0]),
			Proc:   int(vals[1]),
			Pebble: Type{P: int(vals[2]), T: int(vals[3])},
			Peer:   int(vals[4]),
		}
	}
	return buf, off, nil
}

// ChunkedLogOptions configures a ChunkedLog. The zero value is usable:
// 1 MiB chunks, no spilling.
type ChunkedLogOptions struct {
	// TargetChunkBytes seals a chunk once its encoding reaches this size.
	// Default 1 MiB.
	TargetChunkBytes int
	// MemBudgetBytes spills sealed chunks (oldest first) to a temp file once
	// resident encoded bytes exceed it. 0 keeps everything in memory.
	MemBudgetBytes int64
	// SpillDir is where the spill file is created; empty uses os.TempDir().
	SpillDir string
	// Obs, when non-nil, receives the storage profile: encoded bytes,
	// spilled bytes, and the peak resident gauge. All values are pure
	// functions of the appended stream, hence deterministic.
	Obs *obs.Registry
}

type chunkMeta struct {
	data     []byte // nil once spilled
	steps    int
	size     int
	spillOff int64
	spilled  bool
}

// ChunkedLog is the chunked, spill-able protocol store.
type ChunkedLog struct {
	opts      ChunkedLogOptions
	chunks    []chunkMeta
	spillNext int // index of the first unspilled sealed chunk

	cur      []byte
	curSteps int

	steps        int
	totalBytes   int64
	resident     int64
	peakResident int64
	spilledBytes int64

	fingerprint uint64

	spillFile *os.File
	spillOff  int64
	frozen    bool
	err       error
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters for the running
// stream fingerprint.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewChunkedLog returns an empty log.
func NewChunkedLog(opts ChunkedLogOptions) *ChunkedLog {
	if opts.TargetChunkBytes <= 0 {
		opts.TargetChunkBytes = 1 << 20
	}
	return &ChunkedLog{opts: opts, fingerprint: fnvOffset}
}

// Fingerprint returns the FNV-1a hash of the encoded step stream so far —
// a cheap identity for asserting that two runs (say, different build-shard
// counts) produced byte-identical protocols.
func (l *ChunkedLog) Fingerprint() uint64 { return l.fingerprint }

// noteStep finishes one appended step whose encoding starts at byte offset
// `before` of the current chunk: fingerprint, accounting, sealing.
func (l *ChunkedLog) noteStep(before int) error {
	fp := l.fingerprint
	for _, b := range l.cur[before:] {
		fp = (fp ^ uint64(b)) * fnvPrime
	}
	l.fingerprint = fp
	l.totalBytes += int64(len(l.cur) - before)
	l.curSteps++
	l.steps++
	if len(l.cur) >= l.opts.TargetChunkBytes {
		if err := l.seal(); err != nil {
			l.err = err
			return err
		}
	}
	if r := l.resident + int64(len(l.cur)); r > l.peakResident {
		l.peakResident = r
	}
	return nil
}

func (l *ChunkedLog) appendReady() error {
	if l.err != nil {
		return l.err
	}
	if l.frozen {
		l.err = fmt.Errorf("pebble: chunk: append after Source")
		return l.err
	}
	if l.cur == nil {
		l.cur = make([]byte, 0, l.opts.TargetChunkBytes+l.opts.TargetChunkBytes/8)
	}
	return nil
}

// AppendStep encodes and stores one step.
func (l *ChunkedLog) AppendStep(ops []Op) error {
	if err := l.appendReady(); err != nil {
		return err
	}
	before := len(l.cur)
	l.cur = appendStepBytes(l.cur, ops)
	return l.noteStep(before)
}

// AppendStepSegments encodes one step given as ordered sub-slices, byte-
// identical to AppendStep on their concatenation.
func (l *ChunkedLog) AppendStepSegments(segs [][]Op) error {
	if err := l.appendReady(); err != nil {
		return err
	}
	before := len(l.cur)
	total := 0
	for _, seg := range segs {
		total += len(seg)
	}
	l.cur = binary.AppendUvarint(l.cur, uint64(total))
	for _, seg := range segs {
		l.cur = appendOpsBytes(l.cur, seg)
	}
	return l.noteStep(before)
}

func (l *ChunkedLog) seal() error {
	if l.curSteps == 0 {
		return nil
	}
	l.chunks = append(l.chunks, chunkMeta{data: l.cur, steps: l.curSteps, size: len(l.cur)})
	l.resident += int64(len(l.cur))
	if r := l.resident; r > l.peakResident {
		l.peakResident = r
	}
	l.cur = nil
	l.curSteps = 0
	return l.maybeSpill()
}

func (l *ChunkedLog) maybeSpill() error {
	if l.opts.MemBudgetBytes <= 0 {
		return nil
	}
	for l.resident > l.opts.MemBudgetBytes && l.spillNext < len(l.chunks) {
		c := &l.chunks[l.spillNext]
		if l.spillFile == nil {
			f, err := os.CreateTemp(l.opts.SpillDir, "pebble-chunks-*.bin")
			if err != nil {
				return fmt.Errorf("pebble: chunk spill: %w", err)
			}
			l.spillFile = f
		}
		if _, err := l.spillFile.WriteAt(c.data, l.spillOff); err != nil {
			// A failed write poisons the log (the caller sees the sticky
			// error), so drop the partial spill file now rather than
			// stranding it until Close.
			l.removeSpillFile()
			return fmt.Errorf("pebble: chunk spill: %w", err)
		}
		c.spillOff = l.spillOff
		c.spilled = true
		c.data = nil
		l.spillOff += int64(c.size)
		l.resident -= int64(c.size)
		l.spilledBytes += int64(c.size)
		l.spillNext++
	}
	return nil
}

// Steps returns the number of appended steps.
func (l *ChunkedLog) Steps() int { return l.steps }

// TotalBytes returns the total encoded size of the stream.
func (l *ChunkedLog) TotalBytes() int64 { return l.totalBytes }

// ResidentBytes returns the encoded bytes currently held in memory.
func (l *ChunkedLog) ResidentBytes() int64 { return l.resident + int64(len(l.cur)) }

// PeakResidentBytes returns the high-water mark of ResidentBytes — the
// number the bigsim smoke gate bounds.
func (l *ChunkedLog) PeakResidentBytes() int64 { return l.peakResident }

// SpilledBytes returns the bytes written to the spill file.
func (l *ChunkedLog) SpilledBytes() int64 { return l.spilledBytes }

// Source freezes the log and returns a reader over its steps from the
// beginning. Spilled chunks are read back one at a time through a reused
// buffer, so replay memory stays one chunk regardless of protocol size.
// Multiple Sources may be taken (each independent); appending after the
// first Source is an error.
func (l *ChunkedLog) Source() StepSource {
	if !l.frozen {
		l.frozen = true
		if l.curSteps > 0 {
			l.chunks = append(l.chunks, chunkMeta{data: l.cur, steps: l.curSteps, size: len(l.cur)})
			l.resident += int64(len(l.cur))
			l.cur = nil
			l.curSteps = 0
		}
		if l.opts.Obs != nil {
			l.opts.Obs.Counter("pebble.chunk.bytes").Add(l.totalBytes)
			l.opts.Obs.Counter("pebble.chunk.spilled_bytes").Add(l.spilledBytes)
			l.opts.Obs.Counter("pebble.chunk.steps").Add(int64(l.steps))
			l.opts.Obs.Gauge("pebble.chunk.resident_peak_bytes").SetMax(l.peakResident)
		}
	}
	return &chunkReader{l: l, ci: -1}
}

// Close releases the spill file, if any. The log is unusable afterwards:
// further appends fail instead of silently recreating a spill file the
// caller would never learn about, let alone remove.
func (l *ChunkedLog) Close() error {
	err := l.removeSpillFile()
	if l.err == nil {
		l.err = fmt.Errorf("pebble: chunk: log closed")
	}
	return err
}

func (l *ChunkedLog) removeSpillFile() error {
	if l.spillFile == nil {
		return nil
	}
	name := l.spillFile.Name()
	err := l.spillFile.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	l.spillFile = nil
	return err
}

type chunkReader struct {
	l         *ChunkedLog
	ci        int
	data      []byte
	off       int
	stepsLeft int
	opsBuf    []Op
	spillBuf  []byte
}

func (r *chunkReader) NextStep() ([]Op, error) {
	for r.stepsLeft == 0 {
		r.ci++
		if r.ci >= len(r.l.chunks) {
			return nil, io.EOF
		}
		c := &r.l.chunks[r.ci]
		if c.spilled {
			if cap(r.spillBuf) < c.size {
				r.spillBuf = make([]byte, c.size)
			}
			r.spillBuf = r.spillBuf[:c.size]
			if _, err := r.l.spillFile.ReadAt(r.spillBuf, c.spillOff); err != nil {
				return nil, fmt.Errorf("pebble: chunk read: %w", err)
			}
			r.data = r.spillBuf
		} else {
			r.data = c.data
		}
		r.off = 0
		r.stepsLeft = c.steps
	}
	ops, n, err := decodeStepBytes(r.data[r.off:], r.opsBuf)
	if err != nil {
		return nil, err
	}
	r.opsBuf = ops
	r.off += n
	r.stepsLeft--
	return ops, nil
}

// Binary protocol files. Format: magic "UPB1", guest graph, host graph,
// uvarint T, then framed steps (byte 1 + step encoding), terminated by
// byte 0. Graphs are uvarint n, uvarint edge count, then uvarint endpoint
// pairs. The streaming writer/reader never materialize the step list, so
// million-node protocols can be archived and replayed from disk.

var binaryMagic = [4]byte{'U', 'P', 'B', '1'}

func writeGraphBinary(w *bufio.Writer, g *graph.Graph) error {
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if err := put(uint64(g.N())); err != nil {
		return err
	}
	edges := g.Edges()
	if err := put(uint64(len(edges))); err != nil {
		return err
	}
	for _, e := range edges {
		if err := put(uint64(e.U)); err != nil {
			return err
		}
		if err := put(uint64(e.V)); err != nil {
			return err
		}
	}
	return nil
}

func readGraphBinary(r *bufio.Reader) (*graph.Graph, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	ec, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(int(n))
	for i := uint64(0); i < ec; i++ {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if err := b.AddEdge(int(u), int(v)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WriteBinary streams a protocol to w in the binary format.
func WriteBinary(w io.Writer, sp Spec, src StepSource) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := writeGraphBinary(bw, sp.Guest); err != nil {
		return err
	}
	if err := writeGraphBinary(bw, sp.Host); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(vbuf[:], uint64(sp.T))
	if _, err := bw.Write(vbuf[:k]); err != nil {
		return err
	}
	var stepBuf []byte
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		stepBuf = appendStepBytes(stepBuf[:0], ops)
		if _, err := bw.Write(stepBuf); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(0); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinary streams the materialized protocol to w.
func (pr *Protocol) WriteBinary(w io.Writer) error {
	return WriteBinary(w, pr.Spec(), pr.Source())
}

type binaryStepReader struct {
	br     *bufio.Reader
	opsBuf []Op
	done   bool
}

func (r *binaryStepReader) NextStep() ([]Op, error) {
	if r.done {
		return nil, io.EOF
	}
	marker, err := r.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("pebble: binary: %w", err)
	}
	if marker == 0 {
		r.done = true
		return nil, io.EOF
	}
	if marker != 1 {
		return nil, fmt.Errorf("pebble: binary: bad step marker %d", marker)
	}
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("pebble: binary: %w", err)
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("pebble: binary: absurd op count %d", count)
	}
	if uint64(cap(r.opsBuf)) < count {
		r.opsBuf = make([]Op, count)
	}
	r.opsBuf = r.opsBuf[:count]
	for i := range r.opsBuf {
		var vals [5]int64
		for j := range vals {
			v, err := binary.ReadVarint(r.br)
			if err != nil {
				return nil, fmt.Errorf("pebble: binary: %w", err)
			}
			vals[j] = v
		}
		r.opsBuf[i] = Op{
			Kind:   OpKind(vals[0]),
			Proc:   int(vals[1]),
			Pebble: Type{P: int(vals[2]), T: int(vals[3])},
			Peer:   int(vals[4]),
		}
	}
	return r.opsBuf, nil
}

// NewBinaryReader parses the header of a binary protocol stream and returns
// its Spec plus a StepSource over the steps. The source's slices are only
// valid until the next call (the binary reader's contract matches every
// other StepSource).
func NewBinaryReader(r io.Reader) (Spec, StepSource, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Spec{}, nil, fmt.Errorf("pebble: binary: %w", err)
	}
	if magic != binaryMagic {
		return Spec{}, nil, fmt.Errorf("pebble: binary: bad magic %q", magic[:])
	}
	guest, err := readGraphBinary(br)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("pebble: binary: guest graph: %w", err)
	}
	host, err := readGraphBinary(br)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("pebble: binary: host graph: %w", err)
	}
	T, err := binary.ReadUvarint(br)
	if err != nil {
		return Spec{}, nil, fmt.Errorf("pebble: binary: %w", err)
	}
	sp := Spec{Guest: guest, Host: host, T: int(T)}
	return sp, &binaryStepReader{br: br}, nil
}

// ReadBinary materializes a protocol written by WriteBinary. The result is
// not validated; call Validate to replay and check it.
func ReadBinary(r io.Reader) (*Protocol, error) {
	sp, src, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return Materialize(sp, src)
}
