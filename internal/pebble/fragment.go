package pebble

import (
	"fmt"
	"sort"

	"universalnet/internal/depgraph"
	"universalnet/internal/topology"
)

// Fragment is the triple (ℬ, ℬ', 𝒟) of Definition 3.2, extracted from a
// protocol at a critical time step t₀:
//   - B[i]  = Q_S(i, t₀), the representatives of P_i,
//   - BP[i] = b_i ∈ Q'_S(i, t₀), one chosen generator,
//   - D[i]  = {i' : b_i ∈ B[i']}, the guests co-located with the generator.
type Fragment struct {
	T0 int
	B  [][]int
	BP []int
	D  [][]int
}

// ExtractFragment builds the fragment of a state at guest time t₀, choosing
// for each i the generator given by pick (nil ⇒ first generator). It errors
// if some P_i has no generator for step t₀+1, which cannot happen in a valid
// protocol with t₀ < T.
func (st *State) ExtractFragment(t0 int, pick func(i int, gens []int) int) (*Fragment, error) {
	n := st.guest.N()
	if t0 < 0 || t0 >= st.T {
		return nil, fmt.Errorf("pebble: t0=%d outside [0,%d)", t0, st.T)
	}
	f := &Fragment{T0: t0, B: make([][]int, n), BP: make([]int, n), D: make([][]int, n)}
	for i := 0; i < n; i++ {
		f.B[i] = st.Representatives(i, t0)
		gens := st.Generators(i, t0)
		if len(gens) == 0 {
			return nil, fmt.Errorf("pebble: no generator for (P%d,t%d)", i, t0+1)
		}
		choice := 0
		if pick != nil {
			choice = pick(i, gens)
			if choice < 0 || choice >= len(gens) {
				return nil, fmt.Errorf("pebble: pick returned %d of %d generators", choice, len(gens))
			}
		}
		f.BP[i] = gens[choice]
	}
	for i := 0; i < n; i++ {
		f.D[i] = st.GuestsOnProcessor(f.BP[i], t0)
	}
	return f, nil
}

// Validate checks the internal consistency conditions of Definition 3.2:
// b_i ∈ B_i and D_i = {i' : b_i ∈ B_{i'}}.
func (f *Fragment) Validate() error {
	n := len(f.B)
	if len(f.BP) != n || len(f.D) != n {
		return fmt.Errorf("pebble: fragment length mismatch")
	}
	inB := func(i, q int) bool {
		idx := sort.SearchInts(f.B[i], q)
		return idx < len(f.B[i]) && f.B[i][idx] == q
	}
	for i := 0; i < n; i++ {
		if !inB(i, f.BP[i]) {
			return fmt.Errorf("pebble: b_%d = %d not in B_%d", i, f.BP[i], i)
		}
		want := make([]int, 0)
		for ip := 0; ip < n; ip++ {
			if inB(ip, f.BP[i]) {
				want = append(want, ip)
			}
		}
		if len(want) != len(f.D[i]) {
			return fmt.Errorf("pebble: D_%d has %d entries, want %d", i, len(f.D[i]), len(want))
		}
		for k := range want {
			if f.D[i][k] != want[k] {
				return fmt.Errorf("pebble: D_%d mismatch at position %d", i, k)
			}
		}
	}
	return nil
}

// SumB returns Σ_i |B_i| = Σ_i q_{i,t₀} (Main Lemma condition (2)).
func (f *Fragment) SumB() int {
	s := 0
	for _, b := range f.B {
		s += len(b)
	}
	return s
}

// SmallDCount returns the number of i with |D_i| ≤ bound (Main Lemma
// condition (3) asks for ≥ γn of them with bound n/√m).
func (f *Fragment) SmallDCount(bound float64) int {
	c := 0
	for _, d := range f.D {
		if float64(len(d)) <= bound {
			c++
		}
	}
	return c
}

// TreeWeight returns w_{i,t} of Definition 3.11: the sum of pebble weights
// q_{i',t'} over the nodes of a dependency tree. The sum is order-free, so
// it walks the parent map directly instead of materializing Nodes().
func (st *State) TreeWeight(tree *depgraph.Tree) int {
	sum := st.Weight(tree.Root.P, tree.Root.T)
	for nd := range tree.Parent {
		sum += st.Weight(nd.P, nd.T)
	}
	return sum
}

// LemmaWeights holds the per-time-step aggregates used by Lemma 3.12.
type LemmaWeights struct {
	D         int   // dependency-tree depth D(p) (the paper's a)
	TreeSize  int   // maximum tree size observed (the paper's 48a²)
	SumQ      []int // SumQ[t]  = Σ_i q_{i,t}
	SumW      []int // SumW[t]  = Σ_j Σ_{P_i ∈ 𝒯_j} w_{i,t}, for t ≥ D
	TotalQ    int   // Σ_t Σ_i q_{i,t} over t = 1..T
	TotalW    int   // Σ_{t≥D} SumW[t]
	TreeCache map[depgraph.Node]*depgraph.Tree
	// canonical[i] is one tree per root vertex: the construction is
	// translation-invariant in time (see depgraph.Translate), so trees for
	// other root times are shifted copies instead of fresh builds.
	canonical map[int]*depgraph.Tree
}

// ComputeLemmaWeights evaluates the weight aggregates of Lemma 3.12 for a
// protocol state over a guest containing g0. It builds one dependency tree
// per (vertex, time) pair with t ≥ D; trees are cached by root node.
func (st *State) ComputeLemmaWeights(g0 *topology.G0) (*LemmaWeights, error) {
	p := g0.BlockSide
	D := depgraph.TreeDepth(p)
	if st.T < D+1 {
		return nil, fmt.Errorf("pebble: horizon T=%d too short for tree depth %d", st.T, D)
	}
	lw := &LemmaWeights{
		D:         D,
		SumQ:      make([]int, st.T+1),
		SumW:      make([]int, st.T+1),
		TreeCache: make(map[depgraph.Node]*depgraph.Tree),
	}
	for t := 0; t <= st.T; t++ {
		lw.SumQ[t] = st.TotalWeight(t)
		if t >= 1 {
			lw.TotalQ += lw.SumQ[t]
		}
	}
	for t := D; t <= st.T; t++ {
		for i := 0; i < g0.N; i++ {
			tree, err := st.treeFor(g0, i, t, lw)
			if err != nil {
				return nil, err
			}
			w := st.TreeWeight(tree)
			lw.SumW[t] += w
		}
		lw.TotalW += lw.SumW[t]
	}
	return lw, nil
}

// TreeFor returns the dependency tree rooted at (i, t−D) through the
// LemmaWeights cache, so repeated callers (ComputeLemmaWeights, ChooseRoots,
// the E4 verification loop) share one build per root.
func (st *State) TreeFor(g0 *topology.G0, i, t int, lw *LemmaWeights) (*depgraph.Tree, error) {
	return st.treeFor(g0, i, t, lw)
}

func (st *State) treeFor(g0 *topology.G0, i, t int, lw *LemmaWeights) (*depgraph.Tree, error) {
	root := depgraph.Node{P: i, T: t - lw.D}
	if tr, ok := lw.TreeCache[root]; ok {
		return tr, nil
	}
	var tr *depgraph.Tree
	if base, ok := lw.canonical[i]; ok {
		tr = depgraph.Translate(base, root.T-base.Root.T)
	} else {
		built, err := depgraph.BuildDependencyTree(g0, i, t)
		if err != nil {
			return nil, err
		}
		if lw.canonical == nil {
			lw.canonical = make(map[int]*depgraph.Tree)
		}
		lw.canonical[i] = built
		tr = built
	}
	if s := tr.Size(); s > lw.TreeSize {
		lw.TreeSize = s
	}
	lw.TreeCache[root] = tr
	return tr, nil
}

// CriticalTimes returns the set Z_S of Lemma 3.12: the guest times
// t ∈ [D+1, T] at which both per-step aggregates are at most 4/(T−D) times
// their totals. The lemma guarantees |Z_S| ≥ (T−D)/2.
func (lw *LemmaWeights) CriticalTimes(T int) []int {
	var z []int
	den := float64(T - lw.D)
	if den <= 0 {
		return nil
	}
	for t := lw.D + 1; t <= T; t++ {
		okW := float64(lw.SumW[t]) <= 4*float64(lw.TotalW)/den
		okQ := float64(lw.SumQ[t-lw.D]) <= 4*float64(lw.TotalQ)/den
		if okW && okQ {
			z = append(z, t)
		}
	}
	return z
}

// ChooseRoots picks, for critical time t₀, one representative r_j per
// partition torus 𝒯_j following the V'_j ∩ V”_j argument of Lemma 3.12:
// exclude the quarter of block vertices with the largest tree weight w_{i,t₀}
// and the quarter with the largest root weight q_{i,t₀−D}; return the
// smallest-index survivor of each block.
func (st *State) ChooseRoots(g0 *topology.G0, lw *LemmaWeights, t0 int) ([]int, error) {
	if t0 < lw.D+1 || t0 > st.T {
		return nil, fmt.Errorf("pebble: t0=%d outside [%d,%d]", t0, lw.D+1, st.T)
	}
	roots := make([]int, 0, len(g0.Blocks))
	for bi := range g0.Blocks {
		verts := g0.Blocks[bi].Vertices
		sz := len(verts)
		quarter := sz / 4
		ws := make([]vertexWeight, sz)
		qs := make([]vertexWeight, sz)
		for k, v := range verts {
			tree, err := st.treeFor(g0, v, t0, lw)
			if err != nil {
				return nil, err
			}
			ws[k] = vertexWeight{v: v, weight: st.TreeWeight(tree)}
			qs[k] = vertexWeight{v: v, weight: st.Weight(v, t0-lw.D)}
		}
		heavyW := topQuarterSet(ws, quarter)
		heavyQ := topQuarterSet(qs, quarter)
		chosen := -1
		for _, v := range verts {
			if !heavyW[v] && !heavyQ[v] {
				if chosen < 0 || v < chosen {
					chosen = v
				}
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("pebble: no root survives filtering in block %d", bi)
		}
		roots = append(roots, chosen)
	}
	return roots, nil
}

type vertexWeight struct{ v, weight int }

// topQuarterSet returns the vertices with the `quarter` largest weights
// (ties broken toward smaller vertex index staying light).
func topQuarterSet(rows []vertexWeight, quarter int) map[int]bool {
	sorted := append([]vertexWeight(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].weight != sorted[j].weight {
			return sorted[i].weight > sorted[j].weight
		}
		return sorted[i].v > sorted[j].v
	})
	out := make(map[int]bool, quarter)
	for i := 0; i < quarter && i < len(sorted); i++ {
		out[sorted[i].v] = true
	}
	return out
}
