package pebble

import (
	"fmt"
	"sort"

	"universalnet/internal/graph"
)

// BuildPipelinedProtocol is the optimized variant of
// BuildEmbeddingProtocol: instead of strictly alternating a generation
// phase and a distribution phase per guest step, every host processor
// greedily performs, each host step, whichever operation is ready —
// generating the next pebble one of its guests is ready for, or forwarding
// a pending transfer. Pebbles of guest step t start moving while other
// processors are still generating theirs, and generation of step t+1 starts
// as soon as a processor's own inputs have arrived. The resulting protocols
// have strictly smaller host-step counts (lower inefficiency k) than the
// phase-based builder on every non-trivial instance; the E15 ablation
// quantifies the gap.
func BuildPipelinedProtocol(guest, host *graph.Graph, f []int, T int) (*Protocol, error) {
	pr := &Protocol{Guest: guest, Host: host, T: T}
	// ownedSink: the builder allocates a fresh ops slice per step, so the
	// materialized protocol can own them without a copy (preserving the
	// builder's historical allocation profile).
	if err := streamPipelined(guest, host, f, T, &ownedSink{proto: pr}); err != nil {
		return nil, err
	}
	return pr, nil
}

// StreamPipelinedProtocol emits the pipelined greedy schedule through sink,
// one host step at a time. Unlike the materializing wrapper it hands the
// sink a slice it will not reuse, but the StepSink contract still only
// guarantees validity for the duration of the call.
func StreamPipelinedProtocol(guest, host *graph.Graph, f []int, T int, sink StepSink) error {
	return streamPipelined(guest, host, f, T, sink)
}

func streamPipelined(guest, host *graph.Graph, f []int, T int, sink StepSink) error {
	n, m := guest.N(), host.N()
	if T < 1 {
		return fmt.Errorf("pebble: need T ≥ 1, got %d", T)
	}
	if !host.IsConnected() {
		return fmt.Errorf("pebble: host must be connected")
	}
	if f == nil {
		f = BalancedAssignment(n, m)
	}
	if len(f) != n {
		return fmt.Errorf("pebble: assignment length %d, want %d", len(f), n)
	}
	for i, q := range f {
		if q < 0 || q >= m {
			return fmt.Errorf("pebble: guest %d assigned to invalid host %d", i, q)
		}
	}

	// Transfer tasks: deliver (P_i, t) from f(i) to the host of each guest
	// neighbor (deduplicated). Created when (P_i, t) is generated, t < T.
	type task struct {
		pb  Type
		at  int
		dst int
	}
	destsOf := make([][]int, n) // distinct foreign hosts needing i's pebbles
	for i := 0; i < n; i++ {
		seen := map[int]bool{f[i]: true}
		for _, j := range guest.Neighbors(i) {
			if !seen[f[j]] {
				seen[f[j]] = true
				destsOf[i] = append(destsOf[i], f[j])
			}
		}
	}

	// Host-local readiness bookkeeping (mirrors State, kept separately so
	// the final protocol is still validated independently).
	st := NewState(guest, host, T)
	nextGen := make([]int, n) // nextGen[i] = t of the next pebble to generate
	for i := range nextGen {
		nextGen[i] = 1
	}
	guestsOf := make([][]int, m)
	for i := 0; i < n; i++ {
		guestsOf[f[i]] = append(guestsOf[f[i]], i)
	}
	canGen := func(i int) bool {
		t := nextGen[i]
		if t > T {
			return false
		}
		q := f[i]
		if !st.Contains(q, Type{P: i, T: t - 1}) {
			return false
		}
		for _, j := range guest.Neighbors(i) {
			if !st.Contains(q, Type{P: j, T: t - 1}) {
				return false
			}
		}
		return true
	}

	distCache := make(map[int][]int)
	distTo := func(dst int) []int {
		if d, ok := distCache[dst]; ok {
			return d
		}
		d := host.BFS(dst)
		distCache[dst] = d
		return d
	}
	nextHop := func(at, dst int) int {
		d := distTo(dst)
		for _, w := range host.Neighbors(at) {
			if d[w] == d[at]-1 {
				return w
			}
		}
		return -1
	}

	var tasks []*task
	remainingGen := n * T
	guard := 0
	maxSteps := 64 * T * (n + m) * (host.Diameter() + 2)

	for remainingGen > 0 || len(tasks) > 0 {
		guard++
		if guard > maxSteps {
			return fmt.Errorf("pebble: pipelined builder exceeded %d steps", maxSteps)
		}
		busy := make([]bool, m)
		var ops []Op
		var gains []Op // generation ops applied after scheduling decisions

		// Pass 1: transfers, farthest-first (the arbitration rule the greedy
		// router uses): tasks with more remaining distance get first pick of
		// links, keeping the communication critical path moving.
		sort.SliceStable(tasks, func(a, b int) bool {
			da := distTo(tasks[a].dst)[tasks[a].at]
			db := distTo(tasks[b].dst)[tasks[b].at]
			return da > db
		})
		var stillTasks []*task
		for _, tk := range tasks {
			if tk.at == tk.dst {
				continue
			}
			if busy[tk.at] {
				stillTasks = append(stillTasks, tk)
				continue
			}
			v := nextHop(tk.at, tk.dst)
			if v < 0 {
				return fmt.Errorf("pebble: no route %d→%d", tk.at, tk.dst)
			}
			if busy[v] {
				stillTasks = append(stillTasks, tk)
				continue
			}
			busy[tk.at] = true
			busy[v] = true
			ops = append(ops, Op{Kind: Send, Proc: tk.at, Pebble: tk.pb, Peer: v})
			ops = append(ops, Op{Kind: Receive, Proc: v, Pebble: tk.pb, Peer: tk.at})
			tk.at = v
			if tk.at != tk.dst {
				stillTasks = append(stillTasks, tk)
			}
		}
		tasks = stillTasks

		// Pass 2: generations on processors the transfer pass left idle.
		for q := 0; q < m; q++ {
			if busy[q] {
				continue
			}
			for _, i := range guestsOf[q] {
				if canGen(i) {
					t := nextGen[i]
					gains = append(gains, Op{Kind: Generate, Proc: q, Pebble: Type{P: i, T: t}})
					busy[q] = true
					nextGen[i]++
					remainingGen--
					if t < T {
						for _, dst := range destsOf[i] {
							tasks = append(tasks, &task{pb: Type{P: i, T: t}, at: q, dst: dst})
						}
					}
					break
				}
			}
		}
		ops = append(ops, gains...)
		if len(ops) == 0 {
			return fmt.Errorf("pebble: pipelined builder stalled (remaining generations %d, tasks %d)",
				remainingGen, len(tasks))
		}
		if err := st.ApplyStep(ops); err != nil {
			return fmt.Errorf("pebble: pipelined builder emitted illegal step (bug): %w", err)
		}
		if err := sink.AppendStep(ops); err != nil {
			return err
		}
	}
	return nil
}
