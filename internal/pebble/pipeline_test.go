package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/topology"
)

func TestPipelinedProtocolValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildPipelinedProtocol(guest, host, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatalf("pipelined protocol invalid: %v", err)
	}
	if pr.T != 4 {
		t.Errorf("T = %d", pr.T)
	}
}

func TestPipelinedComparableToPhased(t *testing.T) {
	// Empirical finding (recorded in EXPERIMENTS.md E15): under the
	// one-op-per-processor model, routing dominates and the two schedules
	// land within a few percent of each other. Pin that: both validate and
	// neither is more than 25% worse than the other.
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		n, hostDim, T int
	}{{32, 3, 4}, {64, 3, 3}, {48, 4, 4}, {96, 3, 4}} {
		guest, err := topology.RandomGuest(rng, tc.n, 4)
		if err != nil {
			t.Fatal(err)
		}
		host, err := topology.WrappedButterfly(tc.hostDim)
		if err != nil {
			t.Fatal(err)
		}
		phased, err := BuildEmbeddingProtocol(guest, host, nil, tc.T)
		if err != nil {
			t.Fatal(err)
		}
		piped, err := BuildPipelinedProtocol(guest, host, nil, tc.T)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := piped.Validate(); err != nil {
			t.Fatal(err)
		}
		ratio := float64(piped.HostSteps()) / float64(phased.HostSteps())
		if ratio > 1.25 || ratio < 0.75 {
			t.Errorf("n=%d: pipelined/phased ratio %.2f outside [0.75, 1.25] (%d vs %d)",
				tc.n, ratio, piped.HostSteps(), phased.HostSteps())
		}
	}
}

func TestPipelinedEqualSizeHost(t *testing.T) {
	// m = n, load 1: pipelining across guest steps still applies.
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildPipelinedProtocol(guest, host, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipelinedProtocol(guest, host, nil, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := BuildPipelinedProtocol(guest, host, []int{0}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := BuildPipelinedProtocol(guest, host, []int{0, 0, 0, 0, 0, 0, 0, 9}, 2); err == nil {
		t.Error("bad host id accepted")
	}
}
