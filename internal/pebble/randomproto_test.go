package pebble

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"universalnet/internal/topology"
)

func TestRandomProtocolIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RandomProtocol(guest, host, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatalf("random protocol invalid: %v", err)
	}
	// All final pebbles generated.
	for i := 0; i < 12; i++ {
		if len(st.Generators(i, 2)) == 0 {
			t.Errorf("P%d has no generator for the final step", i)
		}
	}
	if pr.Inefficiency() <= 0 {
		t.Error("inefficiency not positive")
	}
}

func TestRandomProtocolFragmentsAnalyzable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest, err := topology.RandomGuest(rng, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RandomProtocol(guest, host, 4, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < 4; t0++ {
		frag, err := st.ExtractFragment(t0, st.PickLightest(t0))
		if err != nil {
			t.Fatalf("t0=%d: %v", t0, err)
		}
		if err := frag.Validate(); err != nil {
			t.Fatalf("t0=%d: %v", t0, err)
		}
		// Lemma 3.3 edge inclusion on a random protocol.
		for i := 0; i < 10; i++ {
			dset := make(map[int]bool)
			for _, x := range frag.D[i] {
				dset[x] = true
			}
			for _, j := range guest.Neighbors(i) {
				if !dset[j] {
					t.Fatalf("t0=%d: neighbor %d of %d missing from D", t0, j, i)
				}
			}
		}
	}
}

func TestRandomProtocolPropertyFuzz(t *testing.T) {
	// Across seeds: random protocols always validate and respect the
	// op-count/pebble-count relation used by Lemma 3.12.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		guest, err := topology.RandomGuest(r, 8, 4)
		if err != nil {
			return false
		}
		host, err := topology.Ring(4 + r.Intn(4))
		if err != nil {
			return false
		}
		pr, err := RandomProtocol(guest, host, 1+r.Intn(3), r, 0)
		if err != nil {
			return false
		}
		st, err := pr.Validate()
		if err != nil {
			return false
		}
		// Pebble placements ≤ ops + initial n·m.
		return st.PebbleCount() <= pr.OpCount()+guest.N()*host.N()
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRandomProtocolGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomProtocol(guest, host, 0, rng, 0); err == nil {
		t.Error("T=0 accepted")
	}
	// Tiny step budget must fail loudly.
	if _, err := RandomProtocol(guest, host, 3, rng, 2); err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestPropertyRandomProtocolJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		guest, err := topology.RandomGuest(rng, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		host, err := topology.Ring(4)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := RandomProtocol(guest, host, 2, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := back.Validate(); err != nil {
			t.Fatalf("seed %d: round-tripped protocol invalid: %v", seed, err)
		}
		if back.OpCount() != pr.OpCount() || back.HostSteps() != pr.HostSteps() {
			t.Fatalf("seed %d: shape changed", seed)
		}
	}
}
