// Package pebble implements the simulation model of Section 3.1: the pebble
// game. A pebble of type (P_i, t) stands for the configuration of guest
// processor P_i at guest time t. Host processors start with all (P_i, 0)
// pebbles and may, once per host step, generate a pebble (when all
// predecessor pebbles are present), send a copy of a pebble to a neighbor,
// or receive one pebble from a neighbor. Pebbles are never lost.
//
// The package records simulation protocols, validates them against the
// model's rules, and derives the quantities the lower-bound proof reasons
// about: representative sets Q_S(i,t), generator sets Q'_S(i,t), fragments
// (B, B', D), pebble weights, and the generating-pebble frontier e_t(τ) of
// Definition 3.16.
package pebble

import (
	"fmt"

	"universalnet/internal/graph"
	"universalnet/internal/obs"
)

// Type identifies a pebble (P_i, t).
type Type struct {
	P int // guest processor index i
	T int // guest time step t
}

// String renders the pebble type as (P_i, t_t).
func (ty Type) String() string { return fmt.Sprintf("(P%d,t%d)", ty.P, ty.T) }

// OpKind enumerates the three host operations.
type OpKind int

const (
	// Generate creates pebble (P_i, t) on a processor that holds all
	// predecessor pebbles (P_i, t−1) and (P_j, t−1) for neighbors P_j.
	Generate OpKind = iota
	// Send copies one held pebble to a neighboring processor.
	Send
	// Receive accepts the pebble a neighbor sent this step.
	Receive
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case Generate:
		return "generate"
	case Send:
		return "send"
	case Receive:
		return "receive"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation performed by one host processor in one host step.
type Op struct {
	Kind   OpKind
	Proc   int  // host processor executing the operation
	Pebble Type // pebble generated, sent, or received
	Peer   int  // for Send: receiver; for Receive: sender
}

// Protocol is a full simulation protocol S: for each host step, the list of
// operations performed (at most one per host processor per step).
type Protocol struct {
	Guest *graph.Graph
	Host  *graph.Graph
	T     int    // guest steps simulated
	Steps [][]Op // Steps[τ] = operations of host step τ+1
	// Obs, when non-nil, receives validation metrics: ops by kind, host
	// steps, and a "pebble.validate" span timing the replay.
	Obs *obs.Registry `json:"-"`
}

// HostSteps returns T', the number of host steps.
func (pr *Protocol) HostSteps() int { return len(pr.Steps) }

// Slowdown returns s = T'/T as a float.
func (pr *Protocol) Slowdown() float64 {
	if pr.T == 0 {
		return 0
	}
	return float64(pr.HostSteps()) / float64(pr.T)
}

// Inefficiency returns k = s·m/n = T'·m / (T·n), the quantity the lower
// bound constrains (k = Ω(log m)).
func (pr *Protocol) Inefficiency() float64 {
	n := pr.Guest.N()
	if pr.T == 0 || n == 0 {
		return 0
	}
	return float64(pr.HostSteps()) * float64(pr.Host.N()) / (float64(pr.T) * float64(n))
}

// OpCount returns the total number of operations in the protocol.
func (pr *Protocol) OpCount() int {
	c := 0
	for _, step := range pr.Steps {
		c += len(step)
	}
	return c
}

// Validate replays the protocol and checks every model rule:
//   - each host processor performs at most one operation per step;
//   - Generate requires all predecessor pebbles present on the processor;
//   - Send requires possession of the pebble and a host edge to the peer;
//   - Receive must match exactly one Send of the same pebble along the same
//     edge in the same step, and a processor receives at most one pebble per
//     step (implied by the one-op rule);
//   - after the last step, every final pebble (P_i, T) was generated.
//
// It returns the final state for further analysis.
func (pr *Protocol) Validate() (*State, error) {
	sp := pr.Obs.StartSpan("pebble.validate",
		obs.KV("host_steps", pr.HostSteps()), obs.KV("guest_steps", pr.T))
	defer sp.End()
	st, err := ValidateSource(pr.Spec(), pr.Source())
	if err != nil {
		return nil, err
	}
	pr.observeValidate()
	return st, nil
}

// observeValidate records the protocol's operational profile. All metric work
// sits here, after a successful replay, so Validate's hot loop pays only the
// Obs nil-check; the counts come from Stats and are pure functions of the
// protocol, hence deterministic.
func (pr *Protocol) observeValidate() {
	if pr.Obs == nil {
		return
	}
	s := pr.Stats()
	pr.Obs.Counter("pebble.validations").Inc()
	pr.Obs.Counter("pebble.host_steps").Add(int64(s.HostSteps))
	pr.Obs.Counter("pebble.ops").Add(int64(s.TotalOps))
	pr.Obs.Counter("pebble.ops.generate").Add(int64(s.Generates))
	pr.Obs.Counter("pebble.ops.send").Add(int64(s.Sends))
	pr.Obs.Counter("pebble.ops.receive").Add(int64(s.Receives))
	pr.Obs.Gauge("pebble.max_step_ops").SetMax(int64(s.MaxStepOps))
}
