package pebble

import (
	"fmt"
	"io"

	"universalnet/internal/graph"
	"universalnet/internal/sim"
)

// StatefulReplay executes a protocol with real configurations attached to
// the pebbles: a pebble of type (P_i, t) carries processor i's actual
// configuration at guest time t. Generate computes the configuration from
// the predecessor pebbles' configurations held locally; Send/Receive copy
// it. This is the semantic content of the pebble game — a valid protocol
// does not merely track dependencies, it carries the computation — and the
// replay proves it for any concrete protocol: the returned final states
// must equal direct execution (checked by the caller or VerifyCarries).
//
// The computation must be over the protocol's guest graph.
func StatefulReplay(pr *Protocol, c *sim.Computation) ([]sim.State, error) {
	return StatefulReplayStream(pr.Spec(), pr.Source(), c)
}

// StatefulReplayStream is the streaming form of StatefulReplay: steps are
// consumed from src one at a time, so the protocol itself never has to be
// materialized (the carried per-pebble state maps still are — semantics
// replay is inherently a small-n verification tool).
func StatefulReplayStream(sp Spec, src StepSource, c *sim.Computation) ([]sim.State, error) {
	if c.G != sp.Guest && !c.G.Equal(sp.Guest) {
		return nil, fmt.Errorf("pebble: computation is over a different guest graph")
	}
	n, m := sp.Guest.N(), sp.Host.N()
	// value[q][ty] = configuration attached to the pebble ty at host q.
	value := make([]map[Type]sim.State, m)
	for q := 0; q < m; q++ {
		value[q] = make(map[Type]sim.State, n)
		for i := 0; i < n; i++ {
			value[q][Type{P: i, T: 0}] = c.Init[i]
		}
	}
	nbuf := make([]sim.State, 0, sp.Guest.MaxDegree())
	for τ := 0; ; τ++ {
		step, err := src.NextStep()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		// Stage the receives so that intra-step ordering cannot matter.
		type gain struct {
			q  int
			ty Type
			v  sim.State
		}
		var gains []gain
		for _, op := range step {
			switch op.Kind {
			case Generate:
				ty := op.Pebble
				self, ok := value[op.Proc][Type{P: ty.P, T: ty.T - 1}]
				if !ok {
					return nil, fmt.Errorf("pebble: step %d: generate %v on %d lacks own predecessor state", τ+1, ty, op.Proc)
				}
				nbuf = nbuf[:0]
				for _, j := range sp.Guest.Neighbors(ty.P) {
					v, ok := value[op.Proc][Type{P: j, T: ty.T - 1}]
					if !ok {
						return nil, fmt.Errorf("pebble: step %d: generate %v on %d lacks neighbor %d state", τ+1, ty, op.Proc, j)
					}
					nbuf = append(nbuf, v)
				}
				gains = append(gains, gain{q: op.Proc, ty: ty, v: c.Step(ty.P, self, nbuf)})
			case Send:
				// Handled from the receiver's side.
			case Receive:
				v, ok := value[op.Peer][op.Pebble]
				if !ok {
					return nil, fmt.Errorf("pebble: step %d: receive %v on %d but sender %d has no state", τ+1, op.Pebble, op.Proc, op.Peer)
				}
				gains = append(gains, gain{q: op.Proc, ty: op.Pebble, v: v})
			default:
				return nil, fmt.Errorf("pebble: step %d: unknown op kind %v", τ+1, op.Kind)
			}
		}
		for _, g := range gains {
			if prev, dup := value[g.q][g.ty]; dup && prev != g.v {
				return nil, fmt.Errorf("pebble: pebble %v at %d got two different states", g.ty, g.q)
			}
			value[g.q][g.ty] = g.v
		}
	}
	// Collect the final configurations from any holder of each final pebble.
	final := make([]sim.State, n)
	for i := 0; i < n; i++ {
		ty := Type{P: i, T: sp.T}
		found := false
		for q := 0; q < m && !found; q++ {
			if v, ok := value[q][ty]; ok {
				final[i] = v
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("pebble: final configuration of P%d never computed", i)
		}
	}
	return final, nil
}

// VerifyCarries validates the protocol, replays it with the computation's
// semantics, and checks the carried final configurations against direct
// execution — the end-to-end proof that the protocol simulates T steps of
// the guest.
func VerifyCarries(pr *Protocol, c *sim.Computation) error {
	if _, err := pr.Validate(); err != nil {
		return err
	}
	carried, err := StatefulReplay(pr, c)
	if err != nil {
		return err
	}
	direct, err := c.Run(pr.T)
	if err != nil {
		return err
	}
	for i, want := range direct.Final() {
		if carried[i] != want {
			return fmt.Errorf("pebble: P%d carried %d, direct execution gives %d", i, carried[i], want)
		}
	}
	return nil
}

// guestOf is a tiny helper for tests that need the protocol's guest.
func guestOf(pr *Protocol) *graph.Graph { return pr.Guest }
