package pebble

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"universalnet/internal/graph"
)

// Sharded protocol construction. Within one host step, the ops emitted for
// different scanning processors are independent (the one-op-per-processor
// rule again, from the build side this time), so construction shards by
// processor range: W workers each replay the builder's full scheduling
// decisions — cheap integer work over state that is identical in every
// worker — but emit only the ops their contiguous range [lo, hi) is
// responsible for, one (possibly empty) sub-step per global host step.
// Concatenating the W per-worker sub-steps of each host step in range order
// then reproduces the serial builder's stream byte for byte; the
// equivalence suite pins this for every shard count. The expensive part of
// building — op assembly and the per-step sink hand-off — parallelizes;
// the replicated decision replay is the price of needing no cross-worker
// communication at all.

// streamRanged is a builder core usable under streamSharded: it emits, for
// every host step of its schedule, exactly one AppendStep carrying the ops
// whose acting processor lies in [emitLo, emitHi) — empty sub-steps
// included, so per-worker streams stay step-aligned for merging. Calls with
// disjoint ranges must be safe to run concurrently.
type streamRanged func(sink StepSink, emitLo, emitHi int) error

// BuildShardedOptions configures sharded streaming construction.
type BuildShardedOptions struct {
	// Workers is the number of builder goroutines; values < 2 (and values
	// above the processor count) run the serial core inline.
	Workers int
	// Window is the per-worker pipe depth in sub-steps; 0 means 64.
	Window int
	// MeasureStalls enables wall-clock accounting into Stats. Off by
	// default: stall times are scheduling-dependent and must stay out of
	// deterministic experiment metrics.
	MeasureStalls bool
	// Stats, when non-nil and MeasureStalls is set, receives the build-side
	// pipeline accounting after the run.
	Stats *BuildShardedStats
}

// BuildShardedStats is the build-side pipeline profile: how much wall time
// the workers spent building versus blocked on their full pipes, and how
// long the merger waited for sub-steps. BusyNs and StallNs sum over
// workers, so they can exceed the run's wall time.
type BuildShardedStats struct {
	Workers      int
	BusyNs       int64
	StallNs      int64
	MergeStallNs int64
}

// StreamQueuedEmbeddingProtocolSharded builds the same step stream as
// StreamQueuedEmbeddingProtocol — byte-identical, pinned by the equivalence
// suite — with construction sharded across opts.Workers goroutines. Each
// worker streams its processor range through a bounded pipe; the calling
// goroutine merges the per-step sub-slices in range order into sink.
// Cancelling ctx tears the workers down and returns ctx.Err(); the caller
// remains responsible for unblocking sink if it can block indefinitely
// (RunStreamingEmbedding abandons its pipe's read side).
func StreamQueuedEmbeddingProtocolSharded(ctx context.Context, guest, host *graph.Graph, f []int, T int, opts BuildShardedOptions, sink StepSink) error {
	p, err := newQueuedPlan(guest, host, f, T)
	if err != nil {
		return err
	}
	return streamSharded(ctx, p.m, opts, p.stream, sink)
}

// streamSharded fans a ranged builder core out over opts.Workers goroutines
// and merges their step-aligned streams into sink in range order.
func streamSharded(ctx context.Context, total int, opts BuildShardedOptions, core streamRanged, sink StepSink) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		var start time.Time
		if opts.MeasureStalls && opts.Stats != nil {
			start = time.Now()
		}
		err := core(sink, 0, total)
		if opts.MeasureStalls && opts.Stats != nil {
			// Serial build: the sink is the only stall source, and it is
			// owned by the caller; report wall time as busy and let the
			// caller net out its own sink's send stalls.
			opts.Stats.Workers = 1
			opts.Stats.BusyNs = time.Since(start).Nanoseconds()
		}
		if err == nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	window := opts.Window
	if window <= 0 {
		window = 64
	}

	pipes := make([]*Pipe, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		pipes[w] = NewPipe(window)
		pipes[w].MeasureStalls = opts.MeasureStalls
		lo, hi := w*total/workers, (w+1)*total/workers
		wg.Add(1)
		go func(p *Pipe, lo, hi int) {
			defer wg.Done()
			var start time.Time
			if opts.MeasureStalls {
				start = time.Now()
			}
			p.CloseSend(core(p, lo, hi))
			if opts.MeasureStalls && opts.Stats != nil {
				wall := time.Since(start).Nanoseconds()
				stall, _ := p.Stalls()
				atomic.AddInt64(&opts.Stats.BusyNs, wall-stall)
				atomic.AddInt64(&opts.Stats.StallNs, stall)
			}
		}(pipes[w], lo, hi)
	}

	// Cancellation: abandoning the worker pipes' read sides fails the
	// workers' next AppendStep with ErrPipeClosed, which ends their streams.
	watchDone := make(chan struct{})
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				for _, p := range pipes {
					p.CloseRecv()
				}
			case <-watchDone:
			}
		}()
	}

	err := mergeStreams(pipes, sink)

	// Teardown, error or not: abandon every pipe (unblocking any worker
	// still producing), then wait the workers out. No goroutine survives.
	for _, p := range pipes {
		p.CloseRecv()
	}
	wg.Wait()
	close(watchDone)
	watcher.Wait()
	if opts.MeasureStalls && opts.Stats != nil {
		opts.Stats.Workers = workers
		for _, p := range pipes {
			_, recv := p.Stalls()
			opts.Stats.MergeStallNs += recv
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		// The pipe-closed error a cancelled worker reports is the
		// mechanism, not the cause.
		return cerr
	}
	return err
}

// mergeStreams interleaves step-aligned worker streams into sink: one
// sub-step from every pipe in range order per output step. Worker errors
// surface through pipe 0 first — the cores replicate their scheduling
// decisions, so all workers fail a failing schedule at the same step with
// the same error, and reporting pipe 0's keeps the verdict deterministic.
func mergeStreams(pipes []*Pipe, sink StepSink) error {
	segs := make([][]Op, len(pipes))
	segSink, segOK := sink.(StepSegmentSink)
	var flat []Op
	for {
		for i, p := range pipes {
			ops, err := p.NextStep()
			if err == io.EOF {
				if i != 0 {
					return errors.New("pebble: sharded build: worker streams misaligned")
				}
				for _, rest := range pipes[1:] {
					if _, e := rest.NextStep(); e != io.EOF {
						if e == nil {
							return errors.New("pebble: sharded build: worker streams misaligned")
						}
						return e
					}
				}
				return nil
			}
			if err != nil {
				return err
			}
			segs[i] = ops
		}
		if segOK {
			if err := segSink.AppendStepSegments(segs); err != nil {
				return err
			}
			continue
		}
		flat = flat[:0]
		for _, seg := range segs {
			flat = append(flat, seg...)
		}
		if err := sink.AppendStep(flat); err != nil {
			return err
		}
	}
}
