package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestMinimizeProtocolPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, dropped, err := MinimizeProtocol(pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := min.Validate(); err != nil {
		t.Fatalf("minimized protocol invalid: %v", err)
	}
	if min.HostSteps() > pr.HostSteps() {
		t.Errorf("minimization lengthened the protocol: %d > %d", min.HostSteps(), pr.HostSteps())
	}
	if min.OpCount()+dropped != pr.OpCount() {
		t.Errorf("op accounting: %d kept + %d dropped ≠ %d", min.OpCount(), dropped, pr.OpCount())
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(min, comp); err != nil {
		t.Fatalf("minimized protocol lost the computation: %v", err)
	}
}

func TestMinimizeDropsRedundantTransfer(t *testing.T) {
	// Hand-built redundancy: the same initial pebble is sent twice along the
	// same edge in different steps; the second transfer is a no-op.
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pb := Type{P: 0, T: 0}
	pr := &Protocol{Guest: guest, Host: host, T: 1, Steps: [][]Op{
		{
			{Kind: Send, Proc: 0, Pebble: pb, Peer: 1},
			{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0},
		},
		{
			{Kind: Send, Proc: 0, Pebble: pb, Peer: 1},
			{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0},
		},
		{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}},
		{{Kind: Generate, Proc: 0, Pebble: Type{P: 1, T: 1}}},
		{{Kind: Generate, Proc: 0, Pebble: Type{P: 2, T: 1}}},
	}}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	min, dropped, err := MinimizeProtocol(pr)
	if err != nil {
		t.Fatal(err)
	}
	// The first transfer is ALSO redundant here: every processor holds all
	// initial pebbles, so both transfer steps vanish entirely.
	if dropped != 4 {
		t.Errorf("dropped %d ops, want 4", dropped)
	}
	if min.HostSteps() != 3 {
		t.Errorf("minimized steps %d, want 3", min.HostSteps())
	}
	if _, err := min.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeDropsDuplicateGenerate(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr := &Protocol{Guest: guest, Host: host, T: 1, Steps: [][]Op{
		{
			{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}},
			{Kind: Generate, Proc: 1, Pebble: Type{P: 1, T: 1}},
			{Kind: Generate, Proc: 2, Pebble: Type{P: 2, T: 1}},
		},
		{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}}, // duplicate
	}}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	min, dropped, err := MinimizeProtocol(pr)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 || min.HostSteps() != 1 {
		t.Errorf("dropped=%d steps=%d, want 1 and 1", dropped, min.HostSteps())
	}
}

func TestMinimizeOnRealProtocolsNeverBreaks(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		guest, err := topology.RandomGuest(rng, 12, 4)
		if err != nil {
			t.Fatal(err)
		}
		host, err := topology.Ring(6)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := RandomProtocol(guest, host, 2, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		min, _, err := MinimizeProtocol(pr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := min.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		comp := sim.MixMod(guest, rng)
		if err := VerifyCarries(min, comp); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
