package pebble

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"universalnet/internal/topology"
)

// streamFixture builds a small valid protocol shared by the stream tests.
func streamFixture(t testing.TB) *Protocol {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	guest, err := topology.RandomGuest(rng, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestMaterializeRoundTrip(t *testing.T) {
	pr := streamFixture(t)
	got, err := Materialize(pr.Spec(), pr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Steps, pr.Steps) {
		t.Fatal("materialized steps differ from the original")
	}
	if got.T != pr.T || got.Guest != pr.Guest || got.Host != pr.Host {
		t.Fatal("materialized spec differs from the original")
	}
}

func TestTeeSinkDuplicates(t *testing.T) {
	pr := streamFixture(t)
	a := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	b := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	tee := TeeSink(&ProtocolSink{Proto: a}, &ProtocolSink{Proto: b})
	src := pr.Source()
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := tee.AppendStep(ops); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(a.Steps, pr.Steps) || !reflect.DeepEqual(b.Steps, pr.Steps) {
		t.Fatal("tee sinks received different streams")
	}
}

func TestValidateSourceMatchesValidate(t *testing.T) {
	pr := streamFixture(t)
	stV, errV := pr.Validate()
	stS, errS := ValidateSource(pr.Spec(), pr.Source())
	if errV != nil || errS != nil {
		t.Fatalf("valid protocol rejected: validate %v, source %v", errV, errS)
	}
	if stV.PebbleCount() != stS.PebbleCount() || stV.HostStep() != stS.HostStep() {
		t.Fatalf("final states differ: (%d,%d) vs (%d,%d)",
			stV.PebbleCount(), stV.HostStep(), stS.PebbleCount(), stS.HostStep())
	}

	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 20; k++ {
		mu := mutate(pr, rng)
		_, errV := mu.Validate()
		_, errS := ValidateSource(mu.Spec(), mu.Source())
		if (errV == nil) != (errS == nil) {
			t.Fatalf("mutant %d: validate err %v, source err %v", k, errV, errS)
		}
		if errV != nil && errV.Error() != errS.Error() {
			t.Fatalf("mutant %d: validate %q, source %q", k, errV, errS)
		}
	}
}

func TestPipeStream(t *testing.T) {
	pr := streamFixture(t)
	for _, window := range []int{1, 3, 16} {
		pipe := NewPipe(window)
		go func() {
			src := pr.Source()
			for {
				ops, err := src.NextStep()
				if err == io.EOF {
					pipe.CloseSend(nil)
					return
				}
				if err != nil {
					pipe.CloseSend(err)
					return
				}
				if err := pipe.AppendStep(ops); err != nil {
					return
				}
			}
		}()
		got, err := Materialize(pr.Spec(), pipe)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if !reflect.DeepEqual(got.Steps, pr.Steps) {
			t.Fatalf("window %d: piped steps differ", window)
		}
	}
}

func TestPipePropagatesProducerError(t *testing.T) {
	pipe := NewPipe(2)
	boom := errors.New("boom")
	go func() {
		_ = pipe.AppendStep([]Op{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}})
		pipe.CloseSend(boom)
	}()
	if _, err := pipe.NextStep(); err != nil {
		t.Fatalf("first step: %v", err)
	}
	if _, err := pipe.NextStep(); err != boom {
		t.Fatalf("want producer error, got %v", err)
	}
}

func TestPipeCloseRecvUnblocksProducer(t *testing.T) {
	pipe := NewPipe(1)
	done := make(chan error, 1)
	go func() {
		step := []Op{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}}
		for i := 0; ; i++ {
			if err := pipe.AppendStep(step); err != nil {
				done <- err
				return
			}
		}
	}()
	if _, err := pipe.NextStep(); err != nil {
		t.Fatal(err)
	}
	pipe.CloseRecv()
	if err := <-done; err != ErrPipeClosed {
		t.Fatalf("want ErrPipeClosed, got %v", err)
	}
}

// TestStreamingBuildersMatchMaterialized pins the refactor invariant: the
// streaming cores must emit byte-identical step sequences to the builders
// they were extracted from.
func TestStreamingBuildersMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	f := RandomizedAssignment(9, 9, 42)
	T := 3

	legacy, err := BuildEmbeddingProtocol(guest, host, f, T)
	if err != nil {
		t.Fatal(err)
	}
	streamed := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamEmbeddingProtocol(guest, host, f, T, &ProtocolSink{Proto: streamed}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Steps, streamed.Steps) {
		t.Fatal("StreamEmbeddingProtocol diverged from BuildEmbeddingProtocol")
	}

	legacyP, err := BuildPipelinedProtocol(guest, host, f, T)
	if err != nil {
		t.Fatal(err)
	}
	streamedP := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamPipelinedProtocol(guest, host, f, T, &ProtocolSink{Proto: streamedP}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyP.Steps, streamedP.Steps) {
		t.Fatal("StreamPipelinedProtocol diverged from BuildPipelinedProtocol")
	}

	queued, err := BuildQueuedEmbeddingProtocol(guest, host, f, T)
	if err != nil {
		t.Fatal(err)
	}
	streamedQ := &Protocol{Guest: guest, Host: host, T: T}
	if err := StreamQueuedEmbeddingProtocol(guest, host, f, T, &ProtocolSink{Proto: streamedQ}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(queued.Steps, streamedQ.Steps) {
		t.Fatal("StreamQueuedEmbeddingProtocol diverged from its materializing wrapper")
	}
}

// TestQueuedBuilderValidates: the scalable queued scheduler produces valid
// protocols across guests, hosts, and assignments, and both validation
// engines accept them with identical stats.
func TestQueuedBuilderValidates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(8)
		T := 2 + rng.Intn(2)
		guest, err := topology.RandomGuest(rng, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		h, err := topology.Torus(9)
		if seed%2 == 1 {
			h, err = topology.Mesh(9)
		}
		if err != nil {
			t.Fatal(err)
		}
		f := RandomizedAssignment(n, h.N(), seed)
		pr, err := BuildQueuedEmbeddingProtocol(guest, h, f, T)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := pr.Validate(); err != nil {
			t.Fatalf("seed %d: queued protocol rejected: %v", seed, err)
		}
		stats, err := ValidateSharded(pr.Spec(), pr.Source(), ShardedOptions{Shards: 3})
		if err != nil {
			t.Fatalf("seed %d: sharded rejected: %v", seed, err)
		}
		if stats.HostSteps != pr.HostSteps() || stats.Ops != int64(pr.OpCount()) {
			t.Fatalf("seed %d: stats (%d,%d), protocol (%d,%d)",
				seed, stats.HostSteps, stats.Ops, pr.HostSteps(), pr.OpCount())
		}
	}
}

// TestShardedMatchesDense extends the oracle seed suite through the sharded
// streaming validator: on valid protocols and mutants alike, accept/reject
// and the error text must match the dense engine exactly, at every shard
// count and every barrier window size.
func TestShardedMatchesDense(t *testing.T) {
	shardCounts := []int{1, 2, 3, 5}
	windows := []int{1, 3, 16}
	for seed := int64(0); seed < 80; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 5 + rng.Intn(5)
			T := 2 + rng.Intn(2)
			guest, err := topology.RandomGuest(rng, n, 2)
			if err != nil {
				t.Fatal(err)
			}
			h, err := topology.Torus(9)
			if seed%3 == 1 {
				h, err = topology.Mesh(9)
			} else if seed%3 == 2 {
				h, err = topology.RandomRegular(rng, 8, 3)
			}
			if err != nil {
				t.Fatal(err)
			}
			f := RandomizedAssignment(n, h.N(), seed)

			var pr *Protocol
			switch seed % 5 {
			case 0:
				pr, err = RandomProtocol(guest, h, T, rng, 0)
			case 1:
				pr, err = BuildEmbeddingProtocol(guest, h, f, T)
			case 2:
				pr, err = BuildPipelinedProtocol(guest, h, f, T)
			case 3:
				pr, err = BuildMulticastProtocol(guest, h, f, T)
			default:
				pr, err = BuildQueuedEmbeddingProtocol(guest, h, f, T)
			}
			if err != nil {
				t.Fatalf("building protocol: %v", err)
			}

			check := func(p *Protocol) {
				t.Helper()
				_, errD := p.Validate()
				for _, shards := range shardCounts {
					for _, window := range windows {
						_, errS := ValidateSharded(p.Spec(), p.Source(), ShardedOptions{Shards: shards, Window: window})
						if (errD == nil) != (errS == nil) {
							t.Fatalf("shards=%d window=%d: dense err %v, sharded err %v", shards, window, errD, errS)
						}
						if errD != nil && errD.Error() != errS.Error() {
							t.Fatalf("shards=%d window=%d: dense %q, sharded %q", shards, window, errD, errS)
						}
					}
				}
			}
			check(pr)
			for k := 0; k < 3; k++ {
				check(mutate(pr, rng))
			}
		})
	}
}

// TestShardedStatsMatchProtocol pins the deterministic counters the
// experiments read.
func TestShardedStatsMatchProtocol(t *testing.T) {
	pr := streamFixture(t)
	for _, shards := range []int{1, 4} {
		stats, err := ValidateSharded(pr.Spec(), pr.Source(), ShardedOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		s := pr.Stats()
		if stats.HostSteps != s.HostSteps || stats.Ops != int64(s.TotalOps) ||
			stats.Generates != int64(s.Generates) || stats.Sends != int64(s.Sends) ||
			stats.Receives != int64(s.Receives) || stats.MaxStepOps != s.MaxStepOps {
			t.Fatalf("shards=%d: stream stats %+v, protocol stats %+v", shards, *stats, s)
		}
	}
}

// TestMinimizeStreamMatchesProtocol: the streaming minimizer and the
// materialized wrapper agree, and minimized output still validates.
func TestMinimizeStreamMatchesProtocol(t *testing.T) {
	pr := streamFixture(t)
	// Inject redundancy: duplicate a transfer step so the minimizer has
	// something to drop.
	redundant := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	for _, step := range pr.Steps {
		redundant.Steps = append(redundant.Steps, step)
	}
	for si, step := range pr.Steps {
		if len(step) > 0 && step[0].Kind == Send {
			redundant.Steps = append(redundant.Steps[:si+1:si+1], redundant.Steps[si:]...)
			break
		}
	}
	mini, dropped, err := MinimizeProtocol(redundant)
	if err != nil {
		t.Fatal(err)
	}
	out := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	droppedS, err := MinimizeStream(redundant.Spec(), redundant.Source(), &ProtocolSink{Proto: out})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != droppedS {
		t.Fatalf("dropped %d vs %d", dropped, droppedS)
	}
	if !reflect.DeepEqual(mini.Steps, out.Steps) {
		t.Fatal("MinimizeStream output differs from MinimizeProtocol")
	}
	if _, err := mini.Validate(); err != nil {
		t.Fatalf("minimized protocol rejected: %v", err)
	}
	if dropped == 0 {
		t.Fatal("expected the duplicated step to produce drops")
	}
}
