package pebble

import (
	"io"
	"strings"
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

// emptySource is a stream with zero host steps.
type emptySource struct{}

func (emptySource) NextStep() ([]Op, error) { return nil, io.EOF }

func mustRing(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Degenerate specs must come back as graceful errors from both the batch and
// the incremental entry points — not as index panics inside the bitset setup
// (zero-processor hosts used to panic in phaseScan, negative horizons in the
// start-configuration loop).
func TestValidateShardedDegenerateSpecs(t *testing.T) {
	guest := mustRing(t, 4)
	host := mustRing(t, 4)
	empty := graph.NewBuilder(0).Build()
	cases := []struct {
		name string
		sp   Spec
		want string
	}{
		{"nil guest", Spec{Guest: nil, Host: host, T: 1}, "nil guest graph"},
		{"nil host", Spec{Guest: guest, Host: nil, T: 1}, "nil host graph"},
		{"zero processors", Spec{Guest: guest, Host: empty, T: 1}, "host has no processors"},
		{"negative horizon", Spec{Guest: guest, Host: host, T: -1}, "negative horizon T=-1"},
	}
	for _, tc := range cases {
		for _, shards := range []int{1, 2} {
			_, err := ValidateSharded(tc.sp, emptySource{}, ShardedOptions{Shards: shards})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s (shards=%d): got %v, want error containing %q", tc.name, shards, err, tc.want)
			}
		}
		if _, err := NewStreamValidator(tc.sp); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s (StreamValidator): got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// An empty stream on a non-degenerate spec fails the final-generator check
// with the same message the dense engine produces.
func TestValidateShardedEmptyStream(t *testing.T) {
	sp := Spec{Guest: mustRing(t, 4), Host: mustRing(t, 4), T: 2}
	want := "pebble: final pebble (P0,t2) never generated"
	for _, shards := range []int{1, 3} {
		_, err := ValidateSharded(sp, emptySource{}, ShardedOptions{Shards: shards})
		if err == nil || err.Error() != want {
			t.Errorf("shards=%d: got %v, want %q", shards, err, want)
		}
	}
	sv, err := NewStreamValidator(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Finish(); err == nil || err.Error() != want {
		t.Errorf("StreamValidator.Finish: got %v, want %q", err, want)
	}
}

// Horizon-0 protocols can never generate their (trivially final) time-0
// pebbles — Generate's horizon is [1,T]. The engine reports that instead of
// panicking, matching the dense engine's verdict.
func TestValidateShardedHorizonZero(t *testing.T) {
	sp := Spec{Guest: mustRing(t, 3), Host: mustRing(t, 3), T: 0}
	want := "pebble: final pebble (P0,t0) never generated"
	if _, err := ValidateSharded(sp, emptySource{}, ShardedOptions{}); err == nil || err.Error() != want {
		t.Errorf("empty stream: got %v, want %q", err, want)
	}
	// A generate at t=0 is rejected per-step, same as the dense engine.
	steps := stepsSource{steps: [][]Op{{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 0}}}}}
	_, err := ValidateSharded(sp, &steps, ShardedOptions{})
	if err == nil || !strings.Contains(err.Error(), "outside guest horizon [1,0]") {
		t.Errorf("generate at t=0: got %v, want horizon error", err)
	}
}

// A zero-vertex guest has nothing to generate: an empty stream validates.
func TestValidateShardedEmptyGuest(t *testing.T) {
	sp := Spec{Guest: graph.NewBuilder(0).Build(), Host: mustRing(t, 3), T: 2}
	stats, err := ValidateSharded(sp, emptySource{}, ShardedOptions{})
	if err != nil {
		t.Fatalf("empty guest: %v", err)
	}
	if stats.HostSteps != 0 || stats.Ops != 0 {
		t.Errorf("empty guest stats = %+v, want zeros", stats)
	}
}

// stepsSource replays a fixed [][]Op.
type stepsSource struct {
	steps [][]Op
	next  int
}

func (s *stepsSource) NextStep() ([]Op, error) {
	if s.next >= len(s.steps) {
		return nil, io.EOF
	}
	ops := s.steps[s.next]
	s.next++
	return ops, nil
}
