package pebble

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"universalnet/internal/obs"
)

// Sharded streaming validation. The per-processor possession bitsets are
// independent by construction (PR 5's dense layout): every Generate and
// Send check reads only the acting processor's row, and every gain writes
// only the gaining processor's row. So validation shards by processor —
// shard s owns the contiguous processor range [s·m/S, (s+1)·m/S) — with a
// barrier as the only synchronization point. Send/receive matching crosses
// shards, but sends are unique per sender and receives unique per receiver
// (the one-op rule), so a (step, proc)-indexed, stamped table gives O(ops)
// matching with no locks: senders write their own slots in phase 1,
// receivers read them after the barrier in phase 2.
//
// Barriers are windowed: the coordinator buffers up to Window host steps,
// and one 4-barrier round validates the whole batch — per-step
// synchronization cost amortizes by the window size. Windowing is sound
// because gains are applied optimistically during the scan: a shard's scan
// of window step j sees exactly the possessions the sequential engine would
// at step j, since gains only ever touch the gaining processor's own row
// and each row is scanned by exactly one shard in step order. A wrong
// ACCEPT is therefore impossible; for a wrong ERROR, optimism can at worst
// manufacture errors at steps after a genuine one (a shard freezing at its
// first error stops consuming sends, say), so the verdict picks the
// lexicographically smallest (step, class, opIdx) across shards — provably
// the error the sequential engine reports. The equivalence suite pins this
// across shard counts and window sizes.
//
// The sharded validator keeps only the "lite" state — possession bitsets
// plus a generated-pebble bitset — not the holder/generator tables or
// first-held steps of the full State. That is what makes n = 10⁶ fit in
// RAM: memory is m·(T+1)·n/8 bytes of bitsets, independent of the number
// of operations. Accept/reject decisions and error messages are identical
// to State.ApplyStep; the oracle equivalence suite pins this.

// StreamStats summarizes a successfully validated stream.
type StreamStats struct {
	HostSteps  int
	Ops        int64
	Generates  int64
	Sends      int64
	Receives   int64
	MaxStepOps int
}

// Slowdown returns HostSteps/T for the validated horizon.
func (s *StreamStats) Slowdown(T int) float64 {
	if T == 0 {
		return 0
	}
	return float64(s.HostSteps) / float64(T)
}

// defaultBarrierWindow is the parallel validator's host-steps-per-barrier-
// round when ShardedOptions.Window is unset. Big-n steps are microseconds
// of work; 16 of them per 4-barrier round keeps synchronization under a
// percent of the step cost without letting the window arena grow past a
// few hundred KiB.
const defaultBarrierWindow = 16

// ShardedOptions configures ValidateSharded.
type ShardedOptions struct {
	// Shards is the number of parallel validation shards; values < 1 (and
	// values above the host size) are clamped. 1 runs inline with no
	// goroutines.
	Shards int
	// Window is the number of host steps validated per barrier round when
	// Shards > 1; values < 1 mean defaultBarrierWindow. Verdicts are
	// window-size-independent (see the package comment); only the
	// synchronization amortization changes.
	Window int
	// Obs, when non-nil, receives deterministic stream counters (steps, ops
	// by kind) — schedule-independent by construction, so experiment
	// metrics stay byte-identical across shard counts and window sizes.
	Obs *obs.Registry
}

// error classes, in dense-engine precedence order: any op-scan error beats
// any unmatched-receive error beats any unmatched-send error, because
// State.ApplyStep scans all ops before matching and matches receives before
// checking leftover sends. Across a window, an earlier step's error of any
// class beats a later step's: the sequential engine never reaches the later
// step. Within a class the smallest op index wins — exactly the op the
// sequential engine would have tripped on first.
const (
	errClassNone = iota
	errClassScan
	errClassRecv
	errClassSend
)

// winError is a shard's best (earliest) error for the current window,
// ordered lexicographically by (step, class, opIdx). step is the global
// 1-based host step; 0 means no error.
type winError struct {
	step  int
	class int
	opIdx int
	err   error
}

func (e winError) before(o winError) bool {
	if e.step != o.step {
		return e.step < o.step
	}
	if e.class != o.class {
		return e.class < o.class
	}
	return e.opIdx < o.opIdx
}

type recvRec struct {
	j     int32 // window step index
	opIdx int32
	proc  int32
	peer  int
	pb    Type
}

type shardedValidator struct {
	sp      Spec
	n, m, T int
	numIDs  int
	words   int
	shards  int
	win     int // max host steps per barrier round

	contains  []uint64   // m rows × words, owner-partitioned writes
	busyStamp []int32    // per processor, owner-only
	generated [][]uint64 // per shard: numIDs bits of "was generated"

	// Per-(window-step, sender) send table, slot j·m+q. Written by the
	// sender's shard in phase 1, read (and consumed) by receiver shards in
	// phase 2 after the barrier. A slot is live iff its stamp equals
	// stampOf(j).
	sendStamp    []int32
	sendTo       []int32
	sendID       []int32
	sendOpIdx    []int32
	sendConsumed []int32

	shardOf []int32 // processor → owning shard
	lo, hi  []int   // shard → owned processor range [lo, hi)

	// The published window: winSteps steps flattened into winOps, step j
	// being winOps[winStart[j]:winStart[j+1]]. In the sequential path
	// winOps aliases the caller's step; the parallel coordinator copies
	// steps into a reused arena before the publish barrier. stepBase is
	// the number of host steps fully validated before this window.
	winOps   []Op
	winStart []int32
	winSteps int
	stepBase int
	done     bool

	// Per-shard window results, reset by each shard at scan entry.
	errs  []winError
	recvs [][]recvRec

	genCount, sendCount, recvCount []int64

	barrier spinBarrier
}

// spinBarrier is a sense-counting barrier for shards+coordinator. Rounds
// are microseconds of work, so spinning with Gosched beats channel wakeups
// by a wide margin; the atomics carry the happens-before edges the phases
// need.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// checkSpec rejects degenerate specs that the dense layout cannot represent
// (nil graphs, zero processors, negative horizons) with a graceful error
// instead of an index panic deep in the bitset setup.
func checkSpec(sp Spec) error {
	if sp.Guest == nil {
		return fmt.Errorf("pebble: stream spec: nil guest graph")
	}
	if sp.Host == nil {
		return fmt.Errorf("pebble: stream spec: nil host graph")
	}
	if sp.Host.N() == 0 {
		return fmt.Errorf("pebble: stream spec: host has no processors")
	}
	if sp.T < 0 {
		return fmt.Errorf("pebble: stream spec: negative horizon T=%d", sp.T)
	}
	return nil
}

// ValidateSharded replays a protocol stream against the lite sharded state
// and returns its stats. Accept/reject decisions — and the error for a
// rejected stream — are identical to sequential validation with
// State.ApplyStep (errors wrapped as "pebble: host step %d: ..."), and the
// final-generator check matches Validate. Source errors are returned
// verbatim.
func ValidateSharded(sp Spec, src StepSource, opts ShardedOptions) (*StreamStats, error) {
	shards := opts.Shards
	window := opts.Window
	if window < 1 {
		window = defaultBarrierWindow
	}
	if shards < 1 {
		shards = 1
	}
	if shards == 1 {
		window = 1 // the sequential path needs no batching arena
	}
	v, err := newShardedValidator(sp, shards, window)
	if err != nil {
		return nil, err
	}
	stats := &StreamStats{}
	var runErr error
	if v.shards == 1 {
		runErr = v.runSequential(src, stats)
	} else {
		runErr = v.runParallel(src, stats)
	}
	if runErr != nil {
		return nil, runErr
	}
	if err := v.finish(stats); err != nil {
		return nil, err
	}
	observeStream(opts.Obs, stats)
	return stats, nil
}

func newShardedValidator(sp Spec, shards, window int) (*shardedValidator, error) {
	if err := checkSpec(sp); err != nil {
		return nil, err
	}
	n, m := sp.Guest.N(), sp.Host.N()
	if shards < 1 {
		shards = 1
	}
	if shards > m {
		shards = m
	}
	if window < 1 {
		window = 1
	}
	numIDs := (sp.T + 1) * n
	words := (numIDs + 63) / 64
	v := &shardedValidator{
		sp:     sp,
		n:      n,
		m:      m,
		T:      sp.T,
		numIDs: numIDs,
		words:  words,
		shards: shards,
		win:    window,

		contains:  make([]uint64, m*words),
		busyStamp: make([]int32, m),
		generated: make([][]uint64, shards),

		sendStamp:    make([]int32, m*window),
		sendTo:       make([]int32, m*window),
		sendID:       make([]int32, m*window),
		sendOpIdx:    make([]int32, m*window),
		sendConsumed: make([]int32, m*window),

		shardOf: make([]int32, m),
		lo:      make([]int, shards),
		hi:      make([]int, shards),

		winStart: make([]int32, window+1),

		errs:      make([]winError, shards),
		recvs:     make([][]recvRec, shards),
		genCount:  make([]int64, shards),
		sendCount: make([]int64, shards),
		recvCount: make([]int64, shards),
	}
	for s := 0; s < shards; s++ {
		v.generated[s] = make([]uint64, words)
		v.lo[s] = s * m / shards
		v.hi[s] = (s + 1) * m / shards
		for q := v.lo[s]; q < v.hi[s]; q++ {
			v.shardOf[q] = int32(s)
		}
	}
	// Start configuration: every processor holds all (P_i, 0) pebbles.
	for q := 0; q < m; q++ {
		row := v.contains[q*words : (q+1)*words]
		for w := 0; w < n/64; w++ {
			row[w] = ^uint64(0)
		}
		if r := uint(n) & 63; r != 0 {
			row[n/64] |= 1<<r - 1
		}
	}

	return v, nil
}

// finish runs the final-generator check (merged across shard bitsets) and
// folds the per-shard op counters into stats.
func (v *shardedValidator) finish(stats *StreamStats) error {
	base := v.T * v.n
	for i := 0; i < v.n; i++ {
		id := base + i
		found := false
		for s := 0; s < v.shards; s++ {
			if v.generated[s][id>>6]&(1<<(uint(id)&63)) != 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("pebble: final pebble (P%d,t%d) never generated", i, v.T)
		}
	}
	for s := 0; s < v.shards; s++ {
		stats.Generates += v.genCount[s]
		stats.Sends += v.sendCount[s]
		stats.Receives += v.recvCount[s]
	}
	return nil
}

func observeStream(reg *obs.Registry, stats *StreamStats) {
	if reg == nil {
		return
	}
	reg.Counter("pebble.stream.validations").Inc()
	reg.Counter("pebble.stream.host_steps").Add(int64(stats.HostSteps))
	reg.Counter("pebble.stream.ops").Add(stats.Ops)
	reg.Counter("pebble.stream.ops.generate").Add(stats.Generates)
	reg.Counter("pebble.stream.ops.send").Add(stats.Sends)
	reg.Counter("pebble.stream.ops.receive").Add(stats.Receives)
	reg.Gauge("pebble.stream.max_step_ops").SetMax(int64(stats.MaxStepOps))
}

// StreamValidator is the incremental form of sequential ValidateSharded: an
// explicit push-style StepSink that validates one host step per AppendStep
// call against the lite bitset state. Verdicts — per-step errors and the
// Finish-time final-generator check — are byte-identical to ValidateSharded
// by construction: both run the same scan/match/settle code on the same
// state. Cost-model layers (internal/redblue) embed it so their replay can
// interleave accounting with validation without re-buffering the stream.
type StreamValidator struct {
	v     *shardedValidator
	stats StreamStats
	err   error
}

// NewStreamValidator builds an incremental validator for sp, rejecting
// degenerate specs (nil graphs, zero processors, negative horizons).
func NewStreamValidator(sp Spec) (*StreamValidator, error) {
	v, err := newShardedValidator(sp, 1, 1)
	if err != nil {
		return nil, err
	}
	return &StreamValidator{v: v}, nil
}

// AppendStep validates one host step. The ops slice is only read during the
// call. After the first error every subsequent call returns the same error.
func (sv *StreamValidator) AppendStep(ops []Op) error {
	if sv.err != nil {
		return sv.err
	}
	if err := sv.v.applyStepSeq(ops); err != nil {
		sv.err = err
		return err
	}
	sv.v.recordStep(&sv.stats, len(ops))
	return nil
}

// Steps reports the number of host steps validated so far.
func (sv *StreamValidator) Steps() int { return sv.stats.HostSteps }

// Finish runs the final-generator check and returns the stream stats. The
// validator is spent afterwards.
func (sv *StreamValidator) Finish() (*StreamStats, error) {
	if sv.err != nil {
		return nil, sv.err
	}
	stats := sv.stats
	if err := sv.v.finish(&stats); err != nil {
		sv.err = err
		return nil, err
	}
	return &stats, nil
}

// applyStepSeq validates one step inline (single-shard window of one step,
// no barrier). The step ops are aliased, not copied.
func (v *shardedValidator) applyStepSeq(ops []Op) error {
	v.winOps = ops
	v.winStart[0] = 0
	v.winStart[1] = int32(len(ops))
	v.winSteps = 1
	v.scanWindow(0)
	v.matchWindow(0)
	v.settleWindow(0)
	err := v.windowVerdict()
	if err == nil {
		v.stepBase++
	}
	v.winOps = nil
	return err
}

func (v *shardedValidator) runSequential(src StepSource, stats *StreamStats) error {
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if e := v.applyStepSeq(ops); e != nil {
			return e
		}
		v.recordStep(stats, len(ops))
	}
}

// stampOf is the liveness stamp of window step j: its global 1-based host
// step number, which is unique across the run and shared by every table
// keyed on it (busyStamp, send slots).
func (v *shardedValidator) stampOf(j int) int32 {
	return int32(v.stepBase + j + 1)
}

// fillWindow copies up to v.win steps from src into the window arena.
// Returns the number of steps buffered; a non-nil error (io.EOF included)
// means the stream ended after those steps.
func (v *shardedValidator) fillWindow(src StepSource) (int, error) {
	v.winOps = v.winOps[:0]
	v.winSteps = 0
	for v.winSteps < v.win {
		ops, err := src.NextStep()
		if err != nil {
			return v.winSteps, err
		}
		v.winOps = append(v.winOps, ops...)
		v.winSteps++
		v.winStart[v.winSteps] = int32(len(v.winOps))
	}
	return v.winSteps, nil
}

func (v *shardedValidator) runParallel(src StepSource, stats *StreamStats) error {
	v.barrier.n = int32(v.shards) // coordinator doubles as shard 0
	v.winStart[0] = 0
	var wg sync.WaitGroup
	for s := 1; s < v.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				v.barrier.wait() // window published (or done)
				if v.done {
					return
				}
				v.scanWindow(s)
				v.barrier.wait() // all sends registered, all gains applied
				v.matchWindow(s)
				v.barrier.wait() // all consumption settled
				v.settleWindow(s)
				v.barrier.wait() // window verdicts readable
			}
		}(s)
	}
	var runErr error
	for {
		k, srcErr := v.fillWindow(src)
		if srcErr != nil && srcErr != io.EOF {
			runErr = srcErr
		}
		if k == 0 {
			v.done = true
			v.barrier.wait()
			break
		}
		v.barrier.wait() // publish the window
		v.scanWindow(0)
		v.barrier.wait()
		v.matchWindow(0)
		v.barrier.wait()
		v.settleWindow(0)
		v.barrier.wait()
		if err := v.windowVerdict(); err != nil {
			runErr = err
			v.done = true
			v.barrier.wait() // release workers into the exit check
			break
		}
		for j := 0; j < k; j++ {
			v.recordStep(stats, int(v.winStart[j+1]-v.winStart[j]))
		}
		v.stepBase += k
		if srcErr != nil {
			v.done = true
			v.barrier.wait()
			break
		}
	}
	wg.Wait()
	return runErr
}

func (v *shardedValidator) recordStep(stats *StreamStats, opCount int) {
	stats.HostSteps++
	stats.Ops += int64(opCount)
	if opCount > stats.MaxStepOps {
		stats.MaxStepOps = opCount
	}
}

// windowVerdict selects the deterministic error of the just-validated
// window: smallest (step, class, opIdx) across shards — the error the
// sequential engine reports (see the class comment).
func (v *shardedValidator) windowVerdict() error {
	best := winError{}
	for s := 0; s < v.shards; s++ {
		e := v.errs[s]
		if e.step == 0 {
			continue
		}
		if best.step == 0 || e.before(best) {
			best = e
		}
	}
	if best.step == 0 {
		return nil
	}
	return fmt.Errorf("pebble: host step %d: %w", best.step, best.err)
}

func (v *shardedValidator) bit(q, id int) bool {
	return v.contains[q*v.words+id>>6]&(1<<(uint(id)&63)) != 0
}

func (v *shardedValidator) setBit(q, id int) {
	v.contains[q*v.words+id>>6] |= 1 << (uint(id) & 63)
}

func (v *shardedValidator) idOf(pb Type) (int, bool) {
	if pb.P < 0 || pb.P >= v.n || pb.T < 0 || pb.T > v.T {
		return 0, false
	}
	return pb.T*v.n + pb.P, true
}

// ownerOf routes out-of-range processors to shard 0, which then reports the
// same out-of-range error the sequential engine does.
func (v *shardedValidator) ownerOf(proc int) int {
	if proc < 0 || proc >= v.m {
		return 0
	}
	return int(v.shardOf[proc])
}

func (v *shardedValidator) fail(s, step, class, opIdx int, err error) {
	e := winError{step: step, class: class, opIdx: opIdx, err: err}
	if v.errs[s].step == 0 || e.before(v.errs[s]) {
		v.errs[s] = e
	}
}

// scanWindow is phase 1: per-op checks, send registration, and optimistic
// gains for every step of the window, restricted to ops whose processor the
// shard owns, in (step, op) order. Mirrors the scan loop of State.ApplyStep,
// including error messages. Gains (Generate results and Receive pebbles)
// are applied to the possession bitsets immediately: they touch only the
// gaining processor's row, which only this shard scans, so within the shard
// step j+1 sees exactly the sequential engine's state — and unverified
// Receive gains are safe because a failed match always records an error
// that aborts the stream before the state is observed again. On the shard's
// first error the scan stops: later ops of this shard are unreachable for
// the sequential engine too, and cross-shard effects are screened by the
// (step, class) ordering.
func (v *shardedValidator) scanWindow(s int) {
	v.errs[s] = winError{}
	v.recvs[s] = v.recvs[s][:0]
	for j := 0; j < v.winSteps; j++ {
		ops := v.winOps[v.winStart[j]:v.winStart[j+1]]
		stamp := v.stampOf(j)
		jm := j * v.m
		for oi := range ops {
			op := &ops[oi]
			if v.ownerOf(op.Proc) != s {
				continue
			}
			if op.Proc < 0 || op.Proc >= v.m {
				v.fail(s, int(stamp), errClassScan, oi, fmt.Errorf("processor %d out of range", op.Proc))
				return
			}
			if v.busyStamp[op.Proc] == stamp {
				v.fail(s, int(stamp), errClassScan, oi, fmt.Errorf("processor %d performs two operations", op.Proc))
				return
			}
			v.busyStamp[op.Proc] = stamp
			switch op.Kind {
			case Generate:
				if err := v.checkGenerate(op.Proc, op.Pebble); err != nil {
					v.fail(s, int(stamp), errClassScan, oi, err)
					return
				}
				id := op.Pebble.T*v.n + op.Pebble.P
				v.generated[s][id>>6] |= 1 << (uint(id) & 63)
				v.setBit(op.Proc, id)
				v.genCount[s]++
			case Send:
				if !v.sp.Host.HasEdge(op.Proc, op.Peer) {
					v.fail(s, int(stamp), errClassScan, oi, fmt.Errorf("send %v along non-edge %d→%d", op.Pebble, op.Proc, op.Peer))
					return
				}
				id, ok := v.idOf(op.Pebble)
				if !ok || !v.bit(op.Proc, id) {
					v.fail(s, int(stamp), errClassScan, oi, fmt.Errorf("processor %d sends pebble %v it does not hold", op.Proc, op.Pebble))
					return
				}
				slot := jm + op.Proc
				v.sendStamp[slot] = stamp
				v.sendTo[slot] = int32(op.Peer)
				v.sendID[slot] = int32(id)
				v.sendOpIdx[slot] = int32(oi)
				v.sendCount[s]++
			case Receive:
				v.recvs[s] = append(v.recvs[s], recvRec{
					j: int32(j), opIdx: int32(oi), proc: int32(op.Proc), peer: op.Peer, pb: op.Pebble,
				})
				if id, ok := v.idOf(op.Pebble); ok {
					v.setBit(op.Proc, id)
				}
				v.recvCount[s]++
			default:
				v.fail(s, int(stamp), errClassScan, oi, fmt.Errorf("unknown op kind %v", op.Kind))
				return
			}
		}
	}
}

// matchWindow is phase 2: match the shard's receives against the global
// send table, in (step, op) order. Matching is order-independent — a send's
// destination and pebble identify its unique receiver — so concurrent
// consumption is race-free: each consumed slot is written by exactly one
// shard. The shard stops at its first unmatched receive; sends left
// unconsumed by the stop can only produce settle errors at the same step or
// later, which the verdict ordering screens.
func (v *shardedValidator) matchWindow(s int) {
	for _, r := range v.recvs[s] {
		stamp := v.stampOf(int(r.j))
		matched := false
		if id, ok := v.idOf(r.pb); ok {
			from := r.peer
			if from >= 0 && from < v.m {
				slot := int(r.j)*v.m + from
				if v.sendStamp[slot] == stamp &&
					v.sendTo[slot] == r.proc &&
					v.sendID[slot] == int32(id) &&
					v.sendConsumed[slot] != stamp {
					v.sendConsumed[slot] = stamp
					matched = true
				}
			}
		}
		if !matched {
			v.fail(s, int(stamp), errClassRecv, int(r.opIdx),
				fmt.Errorf("processor %d receives %v from %d without a matching send", r.proc, r.pb, r.peer))
			return
		}
	}
}

// settleWindow is phase 3: report the shard's unmatched sends, earliest
// step first, smallest op index within the step — the sequential engine's
// pick.
func (v *shardedValidator) settleWindow(s int) {
	for j := 0; j < v.winSteps; j++ {
		stamp := v.stampOf(j)
		jm := j * v.m
		bestIdx, bestFrom := int32(-1), -1
		for q := v.lo[s]; q < v.hi[s]; q++ {
			slot := jm + q
			if v.sendStamp[slot] == stamp && v.sendConsumed[slot] != stamp {
				if bestIdx < 0 || v.sendOpIdx[slot] < bestIdx {
					bestIdx, bestFrom = v.sendOpIdx[slot], q
				}
			}
		}
		if bestFrom >= 0 {
			slot := jm + bestFrom
			id := int(v.sendID[slot])
			pb := Type{P: id % v.n, T: id / v.n}
			v.fail(s, int(stamp), errClassSend, int(bestIdx),
				fmt.Errorf("send of %v from %d to %d has no matching receive", pb, bestFrom, v.sendTo[slot]))
			return
		}
	}
}

func (v *shardedValidator) checkGenerate(q int, ty Type) error {
	if ty.T < 1 || ty.T > v.T {
		return fmt.Errorf("generate %v outside guest horizon [1,%d]", ty, v.T)
	}
	if ty.P < 0 || ty.P >= v.n {
		return fmt.Errorf("generate %v: no such guest processor", ty)
	}
	base := (ty.T - 1) * v.n
	if !v.bit(q, base+ty.P) {
		return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: ty.P, T: ty.T - 1})
	}
	for _, j := range v.sp.Guest.Neighbors(ty.P) {
		if !v.bit(q, base+j) {
			return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: j, T: ty.T - 1})
		}
	}
	return nil
}
