package pebble

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"universalnet/internal/obs"
)

// Sharded streaming validation. The per-processor possession bitsets are
// independent by construction (PR 5's dense layout): every Generate and
// Send check reads only the acting processor's row, and every gain writes
// only the gaining processor's row. So validation shards by processor —
// shard s owns the contiguous processor range [s·m/S, (s+1)·m/S) — with a
// per-step barrier as the only synchronization point. Send/receive matching
// crosses shards, but sends are unique per sender and receives unique per
// receiver (the one-op rule), so a proc-indexed, step-stamped table gives
// O(ops) matching with no locks: senders write their own slots in phase 1,
// receivers read them after the barrier in phase 2.
//
// The sharded validator keeps only the "lite" state — possession bitsets
// plus a generated-pebble bitset — not the holder/generator tables or
// first-held steps of the full State. That is what makes n = 10⁶ fit in
// RAM: memory is m·(T+1)·n/8 bytes of bitsets, independent of the number
// of operations. Accept/reject decisions and error messages are identical
// to State.ApplyStep; the oracle equivalence suite pins this.

// StreamStats summarizes a successfully validated stream.
type StreamStats struct {
	HostSteps  int
	Ops        int64
	Generates  int64
	Sends      int64
	Receives   int64
	MaxStepOps int
}

// Slowdown returns HostSteps/T for the validated horizon.
func (s *StreamStats) Slowdown(T int) float64 {
	if T == 0 {
		return 0
	}
	return float64(s.HostSteps) / float64(T)
}

// ShardedOptions configures ValidateSharded.
type ShardedOptions struct {
	// Shards is the number of parallel validation shards; values < 1 (and
	// values above the host size) are clamped. 1 runs inline with no
	// goroutines.
	Shards int
	// Obs, when non-nil, receives deterministic stream counters (steps, ops
	// by kind) — schedule-independent by construction, so experiment
	// metrics stay byte-identical across shard counts.
	Obs *obs.Registry
}

// error classes, in dense-engine precedence order: any op-scan error beats
// any unmatched-receive error beats any unmatched-send error, because
// State.ApplyStep scans all ops before matching and matches receives before
// checking leftover sends. Within a class the smallest op index wins —
// exactly the op the sequential engine would have tripped on first.
const (
	errClassNone = iota
	errClassScan
	errClassRecv
	errClassSend
)

type stepError struct {
	class int
	opIdx int
	err   error
}

type recvRec struct {
	opIdx int32
	proc  int32
	peer  int
	pb    Type
}

type shardedValidator struct {
	sp      Spec
	n, m, T int
	numIDs  int
	words   int
	shards  int

	contains  []uint64   // m rows × words, owner-partitioned writes
	busyStamp []int32    // per processor, owner-only
	generated [][]uint64 // per shard: numIDs bits of "was generated"

	// Per-step send table, indexed by sender. Written by the sender's shard
	// in phase 1, read (and consumed) by receiver shards in phase 2 after
	// the barrier. A slot is live iff sendStamp[q] == stamp.
	sendStamp    []int32
	sendTo       []int32
	sendID       []int32
	sendOpIdx    []int32
	sendConsumed []int32

	shardOf []int32 // processor → owning shard
	lo, hi  []int   // shard → owned processor range [lo, hi)

	// Published by the coordinator before the step barrier.
	curOps []Op
	stamp  int32
	done   bool

	// Per-shard step results, reset by each shard at phase-1 entry.
	errs  []stepError
	recvs [][]recvRec
	gains [][]gainRec

	genCount, sendCount, recvCount []int64

	barrier spinBarrier
}

// spinBarrier is a sense-counting barrier for shards+coordinator. Steps are
// microseconds of work, so spinning with Gosched beats channel wakeups by a
// wide margin; the atomics carry the happens-before edges the phases need.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *spinBarrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// checkSpec rejects degenerate specs that the dense layout cannot represent
// (nil graphs, zero processors, negative horizons) with a graceful error
// instead of an index panic deep in the bitset setup.
func checkSpec(sp Spec) error {
	if sp.Guest == nil {
		return fmt.Errorf("pebble: stream spec: nil guest graph")
	}
	if sp.Host == nil {
		return fmt.Errorf("pebble: stream spec: nil host graph")
	}
	if sp.Host.N() == 0 {
		return fmt.Errorf("pebble: stream spec: host has no processors")
	}
	if sp.T < 0 {
		return fmt.Errorf("pebble: stream spec: negative horizon T=%d", sp.T)
	}
	return nil
}

// ValidateSharded replays a protocol stream against the lite sharded state
// and returns its stats. Accept/reject decisions — and the error for a
// rejected stream — are identical to sequential validation with
// State.ApplyStep (errors wrapped as "pebble: host step %d: ..."), and the
// final-generator check matches Validate. Source errors are returned
// verbatim.
func ValidateSharded(sp Spec, src StepSource, opts ShardedOptions) (*StreamStats, error) {
	v, err := newShardedValidator(sp, opts.Shards)
	if err != nil {
		return nil, err
	}
	stats := &StreamStats{}
	var runErr error
	if v.shards == 1 {
		runErr = v.runSequential(src, stats)
	} else {
		runErr = v.runParallel(src, stats)
	}
	if runErr != nil {
		return nil, runErr
	}
	if err := v.finish(stats); err != nil {
		return nil, err
	}
	observeStream(opts.Obs, stats)
	return stats, nil
}

func newShardedValidator(sp Spec, shards int) (*shardedValidator, error) {
	if err := checkSpec(sp); err != nil {
		return nil, err
	}
	n, m := sp.Guest.N(), sp.Host.N()
	if shards < 1 {
		shards = 1
	}
	if shards > m {
		shards = m
	}
	numIDs := (sp.T + 1) * n
	words := (numIDs + 63) / 64
	v := &shardedValidator{
		sp:     sp,
		n:      n,
		m:      m,
		T:      sp.T,
		numIDs: numIDs,
		words:  words,
		shards: shards,

		contains:  make([]uint64, m*words),
		busyStamp: make([]int32, m),
		generated: make([][]uint64, shards),

		sendStamp:    make([]int32, m),
		sendTo:       make([]int32, m),
		sendID:       make([]int32, m),
		sendOpIdx:    make([]int32, m),
		sendConsumed: make([]int32, m),

		shardOf: make([]int32, m),
		lo:      make([]int, shards),
		hi:      make([]int, shards),

		errs:      make([]stepError, shards),
		recvs:     make([][]recvRec, shards),
		gains:     make([][]gainRec, shards),
		genCount:  make([]int64, shards),
		sendCount: make([]int64, shards),
		recvCount: make([]int64, shards),
	}
	for s := 0; s < shards; s++ {
		v.generated[s] = make([]uint64, words)
		v.lo[s] = s * m / shards
		v.hi[s] = (s + 1) * m / shards
		for q := v.lo[s]; q < v.hi[s]; q++ {
			v.shardOf[q] = int32(s)
		}
	}
	// Start configuration: every processor holds all (P_i, 0) pebbles.
	for q := 0; q < m; q++ {
		row := v.contains[q*words : (q+1)*words]
		for w := 0; w < n/64; w++ {
			row[w] = ^uint64(0)
		}
		if r := uint(n) & 63; r != 0 {
			row[n/64] |= 1<<r - 1
		}
	}

	return v, nil
}

// finish runs the final-generator check (merged across shard bitsets) and
// folds the per-shard op counters into stats.
func (v *shardedValidator) finish(stats *StreamStats) error {
	base := v.T * v.n
	for i := 0; i < v.n; i++ {
		id := base + i
		found := false
		for s := 0; s < v.shards; s++ {
			if v.generated[s][id>>6]&(1<<(uint(id)&63)) != 0 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("pebble: final pebble (P%d,t%d) never generated", i, v.T)
		}
	}
	for s := 0; s < v.shards; s++ {
		stats.Generates += v.genCount[s]
		stats.Sends += v.sendCount[s]
		stats.Receives += v.recvCount[s]
	}
	return nil
}

func observeStream(reg *obs.Registry, stats *StreamStats) {
	if reg == nil {
		return
	}
	reg.Counter("pebble.stream.validations").Inc()
	reg.Counter("pebble.stream.host_steps").Add(int64(stats.HostSteps))
	reg.Counter("pebble.stream.ops").Add(stats.Ops)
	reg.Counter("pebble.stream.ops.generate").Add(stats.Generates)
	reg.Counter("pebble.stream.ops.send").Add(stats.Sends)
	reg.Counter("pebble.stream.ops.receive").Add(stats.Receives)
	reg.Gauge("pebble.stream.max_step_ops").SetMax(int64(stats.MaxStepOps))
}

// StreamValidator is the incremental form of sequential ValidateSharded: an
// explicit push-style StepSink that validates one host step per AppendStep
// call against the lite bitset state. Verdicts — per-step errors and the
// Finish-time final-generator check — are byte-identical to ValidateSharded
// by construction: both run the same phaseScan/phaseMatch/phaseSettle code
// on the same state. Cost-model layers (internal/redblue) embed it so their
// replay can interleave accounting with validation without re-buffering the
// stream.
type StreamValidator struct {
	v     *shardedValidator
	stats StreamStats
	err   error
}

// NewStreamValidator builds an incremental validator for sp, rejecting
// degenerate specs (nil graphs, zero processors, negative horizons).
func NewStreamValidator(sp Spec) (*StreamValidator, error) {
	v, err := newShardedValidator(sp, 1)
	if err != nil {
		return nil, err
	}
	return &StreamValidator{v: v}, nil
}

// AppendStep validates one host step. The ops slice is only read during the
// call. After the first error every subsequent call returns the same error.
func (sv *StreamValidator) AppendStep(ops []Op) error {
	if sv.err != nil {
		return sv.err
	}
	if err := sv.v.applyStepSeq(ops); err != nil {
		sv.err = err
		return err
	}
	sv.v.recordStep(&sv.stats, len(ops))
	return nil
}

// Steps reports the number of host steps validated so far.
func (sv *StreamValidator) Steps() int { return sv.stats.HostSteps }

// Finish runs the final-generator check and returns the stream stats. The
// validator is spent afterwards.
func (sv *StreamValidator) Finish() (*StreamStats, error) {
	if sv.err != nil {
		return nil, sv.err
	}
	stats := sv.stats
	if err := sv.v.finish(&stats); err != nil {
		sv.err = err
		return nil, err
	}
	return &stats, nil
}

// applyStepSeq validates one step inline (single-shard phases, no barrier).
func (v *shardedValidator) applyStepSeq(ops []Op) error {
	v.curOps = ops
	v.stamp++
	v.phaseScan(0)
	v.phaseMatch(0)
	v.phaseSettle(0)
	return v.stepVerdict()
}

func (v *shardedValidator) runSequential(src StepSource, stats *StreamStats) error {
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if e := v.applyStepSeq(ops); e != nil {
			return e
		}
		v.recordStep(stats, len(ops))
	}
}

func (v *shardedValidator) runParallel(src StepSource, stats *StreamStats) error {
	v.barrier.n = int32(v.shards) // coordinator doubles as shard 0
	var wg sync.WaitGroup
	for s := 1; s < v.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				v.barrier.wait() // step published (or done)
				if v.done {
					return
				}
				v.phaseScan(s)
				v.barrier.wait() // all sends registered
				v.phaseMatch(s)
				v.barrier.wait() // all consumption settled
				v.phaseSettle(s)
				v.barrier.wait() // step complete
			}
		}(s)
	}
	var stepErr error
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			v.done = true
		} else if err != nil {
			v.done = true
			stepErr = err
		} else {
			v.curOps = ops
			v.stamp++
		}
		v.barrier.wait()
		if v.done {
			break
		}
		v.phaseScan(0)
		v.barrier.wait()
		v.phaseMatch(0)
		v.barrier.wait()
		v.phaseSettle(0)
		v.barrier.wait()
		if e := v.stepVerdict(); e != nil {
			stepErr = e
			v.done = true
			v.barrier.wait() // release workers into the exit check
			break
		}
		v.recordStep(stats, len(ops))
	}
	wg.Wait()
	return stepErr
}

func (v *shardedValidator) recordStep(stats *StreamStats, opCount int) {
	stats.HostSteps++
	stats.Ops += int64(opCount)
	if opCount > stats.MaxStepOps {
		stats.MaxStepOps = opCount
	}
}

// stepVerdict selects the deterministic error of the just-applied step:
// lowest class first, lowest op index within the class — the error the
// sequential engine reports.
func (v *shardedValidator) stepVerdict() error {
	best := stepError{class: errClassNone}
	for s := 0; s < v.shards; s++ {
		e := v.errs[s]
		if e.class == errClassNone {
			continue
		}
		if best.class == errClassNone || e.class < best.class ||
			(e.class == best.class && e.opIdx < best.opIdx) {
			best = e
		}
	}
	if best.class == errClassNone {
		return nil
	}
	return fmt.Errorf("pebble: host step %d: %w", int(v.stamp), best.err)
}

func (v *shardedValidator) bit(q, id int) bool {
	return v.contains[q*v.words+id>>6]&(1<<(uint(id)&63)) != 0
}

func (v *shardedValidator) setBit(q, id int) {
	v.contains[q*v.words+id>>6] |= 1 << (uint(id) & 63)
}

func (v *shardedValidator) idOf(pb Type) (int, bool) {
	if pb.P < 0 || pb.P >= v.n || pb.T < 0 || pb.T > v.T {
		return 0, false
	}
	return pb.T*v.n + pb.P, true
}

// ownerOf routes out-of-range processors to shard 0, which then reports the
// same out-of-range error the sequential engine does.
func (v *shardedValidator) ownerOf(proc int) int {
	if proc < 0 || proc >= v.m {
		return 0
	}
	return int(v.shardOf[proc])
}

func (v *shardedValidator) fail(s int, class, opIdx int, err error) {
	if v.errs[s].class == errClassNone {
		v.errs[s] = stepError{class: class, opIdx: opIdx, err: err}
	}
}

// phaseScan is phase 1: per-op checks and send registration, restricted to
// ops whose processor the shard owns, in op order. Mirrors the first loop
// of State.ApplyStep, including error messages. On the shard's first error
// it stops — later ops of this shard are unreachable for the sequential
// engine too, and cross-shard effects are screened by the class ordering.
func (v *shardedValidator) phaseScan(s int) {
	v.errs[s] = stepError{class: errClassNone}
	v.recvs[s] = v.recvs[s][:0]
	v.gains[s] = v.gains[s][:0]
	stamp := v.stamp
	for oi, op := range v.curOps {
		if v.ownerOf(op.Proc) != s {
			continue
		}
		if op.Proc < 0 || op.Proc >= v.m {
			v.fail(s, errClassScan, oi, fmt.Errorf("processor %d out of range", op.Proc))
			return
		}
		if v.busyStamp[op.Proc] == stamp {
			v.fail(s, errClassScan, oi, fmt.Errorf("processor %d performs two operations", op.Proc))
			return
		}
		v.busyStamp[op.Proc] = stamp
		switch op.Kind {
		case Generate:
			if err := v.checkGenerate(op.Proc, op.Pebble); err != nil {
				v.fail(s, errClassScan, oi, err)
				return
			}
			id := op.Pebble.T*v.n + op.Pebble.P
			v.gains[s] = append(v.gains[s], gainRec{q: int32(op.Proc), id: int32(id)})
			v.generated[s][id>>6] |= 1 << (uint(id) & 63)
			v.genCount[s]++
		case Send:
			if !v.sp.Host.HasEdge(op.Proc, op.Peer) {
				v.fail(s, errClassScan, oi, fmt.Errorf("send %v along non-edge %d→%d", op.Pebble, op.Proc, op.Peer))
				return
			}
			id, ok := v.idOf(op.Pebble)
			if !ok || !v.bit(op.Proc, id) {
				v.fail(s, errClassScan, oi, fmt.Errorf("processor %d sends pebble %v it does not hold", op.Proc, op.Pebble))
				return
			}
			v.sendStamp[op.Proc] = stamp
			v.sendTo[op.Proc] = int32(op.Peer)
			v.sendID[op.Proc] = int32(id)
			v.sendOpIdx[op.Proc] = int32(oi)
			v.sendCount[s]++
		case Receive:
			v.recvs[s] = append(v.recvs[s], recvRec{
				opIdx: int32(oi), proc: int32(op.Proc), peer: op.Peer, pb: op.Pebble,
			})
			v.recvCount[s]++
		default:
			v.fail(s, errClassScan, oi, fmt.Errorf("unknown op kind %v", op.Kind))
			return
		}
	}
}

// phaseMatch is phase 2: match the shard's receives against the global send
// table. Matching is order-independent — a send's destination and pebble
// identify its unique receiver — so concurrent consumption is race-free:
// each consumed slot is written by exactly one shard.
func (v *shardedValidator) phaseMatch(s int) {
	stamp := v.stamp
	for _, r := range v.recvs[s] {
		matched := false
		if id, ok := v.idOf(r.pb); ok {
			from := r.peer
			if from >= 0 && from < v.m &&
				v.sendStamp[from] == stamp &&
				v.sendTo[from] == r.proc &&
				v.sendID[from] == int32(id) &&
				v.sendConsumed[from] != stamp {
				v.sendConsumed[from] = stamp
				matched = true
				v.gains[s] = append(v.gains[s], gainRec{q: r.proc, id: int32(id)})
			}
		}
		if !matched {
			v.fail(s, errClassRecv, int(r.opIdx),
				fmt.Errorf("processor %d receives %v from %d without a matching send", r.proc, r.pb, r.peer))
			return
		}
	}
}

// phaseSettle is phase 3: report the shard's unmatched sends and apply its
// gains. Gains touch only owned bitset rows; if any shard erred this step
// the whole validation aborts afterwards, so partially applied gains are
// never observed.
func (v *shardedValidator) phaseSettle(s int) {
	stamp := v.stamp
	bestIdx, bestFrom := int32(-1), -1
	for q := v.lo[s]; q < v.hi[s]; q++ {
		if v.sendStamp[q] == stamp && v.sendConsumed[q] != stamp {
			if bestIdx < 0 || v.sendOpIdx[q] < bestIdx {
				bestIdx, bestFrom = v.sendOpIdx[q], q
			}
		}
	}
	if bestFrom >= 0 {
		id := int(v.sendID[bestFrom])
		pb := Type{P: id % v.n, T: id / v.n}
		v.fail(s, errClassSend, int(bestIdx),
			fmt.Errorf("send of %v from %d to %d has no matching receive", pb, bestFrom, v.sendTo[bestFrom]))
	}
	for _, g := range v.gains[s] {
		q, id := int(g.q), int(g.id)
		if !v.bit(q, id) {
			v.setBit(q, id)
		}
	}
}

func (v *shardedValidator) checkGenerate(q int, ty Type) error {
	if ty.T < 1 || ty.T > v.T {
		return fmt.Errorf("generate %v outside guest horizon [1,%d]", ty, v.T)
	}
	if ty.P < 0 || ty.P >= v.n {
		return fmt.Errorf("generate %v: no such guest processor", ty)
	}
	base := (ty.T - 1) * v.n
	if !v.bit(q, base+ty.P) {
		return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: ty.P, T: ty.T - 1})
	}
	for _, j := range v.sp.Guest.Neighbors(ty.P) {
		if !v.bit(q, base+j) {
			return fmt.Errorf("generate %v on %d: missing predecessor %v", ty, q, Type{P: j, T: ty.T - 1})
		}
	}
	return nil
}
