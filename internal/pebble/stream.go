package pebble

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"universalnet/internal/graph"
)

// The streaming pipeline: protocols no longer have to exist as a
// materialized [][]Op to be validated, minimized, replayed, or stored.
// Builders emit host steps through a StepSink as they are scheduled, and
// consumers pull them through a StepSource — so a protocol of 10⁸ operations
// flows through bounded memory. A materialized Protocol remains one
// implementation of both interfaces (Source / ProtocolSink), which is how
// the oracle suite, JSON export, and the small-n analyses keep working
// unchanged. See DESIGN.md §"Streaming protocol pipeline".

// StepSource yields the host steps of a protocol in order. NextStep returns
// io.EOF after the last step; any other error aborts the stream. The
// returned slice is only valid until the next NextStep call — consumers
// that retain steps must copy.
type StepSource interface {
	NextStep() ([]Op, error)
}

// StepSink consumes host steps in order. The ops slice is only valid for
// the duration of the call — sinks that retain steps must copy (ProtocolSink
// and ChunkedLog do).
type StepSink interface {
	AppendStep(ops []Op) error
}

// StepSegmentSink is an optional StepSink extension: one host step delivered
// as ordered sub-slices. The sharded builder's merge stage probes for it so
// sinks that copy anyway (Pipe, ChunkedLog, TeeSink) can consume the
// per-worker segments in place instead of paying an extra concatenation.
// Appending segs must be byte-equivalent to AppendStep on their
// concatenation; the segment slices are only valid for the duration of the
// call.
type StepSegmentSink interface {
	StepSink
	AppendStepSegments(segs [][]Op) error
}

// Spec is the frame of a protocol stream: the graphs and the guest horizon,
// everything a consumer needs that is not in the steps themselves.
type Spec struct {
	Guest *graph.Graph
	Host  *graph.Graph
	T     int
}

// Spec returns the protocol's frame for the stream-based APIs.
func (pr *Protocol) Spec() Spec { return Spec{Guest: pr.Guest, Host: pr.Host, T: pr.T} }

// Source returns a StepSource over the materialized steps.
func (pr *Protocol) Source() StepSource { return &protocolSource{steps: pr.Steps} }

type protocolSource struct {
	steps [][]Op
	next  int
}

func (s *protocolSource) NextStep() ([]Op, error) {
	if s.next >= len(s.steps) {
		return nil, io.EOF
	}
	ops := s.steps[s.next]
	s.next++
	return ops, nil
}

// ProtocolSink materializes a stream into Proto.Steps, copying each step
// into an exact-size slice (no append-growth slack — the same policy the
// builders used before they streamed).
type ProtocolSink struct {
	Proto *Protocol
}

func (s *ProtocolSink) AppendStep(ops []Op) error {
	step := make([]Op, len(ops))
	copy(step, ops)
	s.Proto.Steps = append(s.Proto.Steps, step)
	return nil
}

// ownedSink appends the step slice as-is. Internal: only for producers that
// hand over a freshly allocated slice per step (the pipelined builder),
// where copying would change the builder's allocation profile for nothing.
type ownedSink struct {
	proto *Protocol
}

func (s *ownedSink) AppendStep(ops []Op) error {
	s.proto.Steps = append(s.proto.Steps, ops)
	return nil
}

// TeeSink duplicates a stream into several sinks, in order.
func TeeSink(sinks ...StepSink) StepSink { return &teeSink{sinks: sinks} }

type teeSink struct {
	sinks   []StepSink
	scratch []Op // flattening buffer for children without a segment path
}

func (t *teeSink) AppendStep(ops []Op) error {
	for _, s := range t.sinks {
		if err := s.AppendStep(ops); err != nil {
			return err
		}
	}
	return nil
}

func (t *teeSink) AppendStepSegments(segs [][]Op) error {
	var flat []Op
	flattened := false
	for _, s := range t.sinks {
		if ss, ok := s.(StepSegmentSink); ok {
			if err := ss.AppendStepSegments(segs); err != nil {
				return err
			}
			continue
		}
		if !flattened {
			t.scratch = t.scratch[:0]
			for _, seg := range segs {
				t.scratch = append(t.scratch, seg...)
			}
			flat = t.scratch
			flattened = true
		}
		if err := s.AppendStep(flat); err != nil {
			return err
		}
	}
	return nil
}

// Materialize drains a source into a fresh Protocol — the adapter that lets
// Minimize, StatefulReplay, VerifyCarries, JSON export, and the oracle
// suite keep working unchanged on chunked or piped protocols at small n.
func Materialize(sp Spec, src StepSource) (*Protocol, error) {
	pr := &Protocol{Guest: sp.Guest, Host: sp.Host, T: sp.T}
	sink := &ProtocolSink{Proto: pr}
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			return pr, nil
		}
		if err != nil {
			return nil, err
		}
		if err := sink.AppendStep(ops); err != nil {
			return nil, err
		}
	}
}

// ValidateSource replays a stream against the full dense State, exactly as
// Protocol.Validate does for materialized steps, and returns the final
// state. Errors carry the same messages as Validate.
func ValidateSource(sp Spec, src StepSource) (*State, error) {
	st := NewState(sp.Guest, sp.Host, sp.T)
	step := 0
	for {
		ops, err := src.NextStep()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		step++
		if err := st.ApplyStep(ops); err != nil {
			return nil, fmt.Errorf("pebble: host step %d: %w", step, err)
		}
	}
	for i := 0; i < sp.Guest.N(); i++ {
		if !st.hasGenerator(Type{P: i, T: sp.T}) {
			return nil, fmt.Errorf("pebble: final pebble (P%d,t%d) never generated", i, sp.T)
		}
	}
	return st, nil
}

// ErrPipeClosed is returned to a producer whose consumer abandoned the pipe.
var ErrPipeClosed = errors.New("pebble: pipe closed by reader")

// Pipe connects a producer goroutine (StepSink side) to a consumer
// (StepSource side) through a fixed ring of reusable step buffers, so a
// builder and a validator overlap with bounded protocol storage — the
// window is the peak number of steps in flight — and zero steady-state
// allocations per step.
//
// Usage: producer calls AppendStep repeatedly, then CloseSend(err).
// Consumer calls NextStep until io.EOF (or the producer's error). A
// consumer that stops early must call CloseRecv to unblock the producer.
type Pipe struct {
	// MeasureStalls enables wall-clock accounting of time the producer
	// blocks on a full window (SendStallNs) and the consumer on an empty
	// one (RecvStallNs). Off by default: stall times are scheduling-
	// dependent and must stay out of deterministic experiment metrics.
	MeasureStalls bool

	slots  [][]Op
	filled chan int32
	free   chan int32
	done   chan struct{}
	err    error // producer's terminal error; read only after filled closes
	cur    int32 // slot lent to the consumer; -1 when none

	closed      atomic.Bool
	recvClosed  atomic.Bool
	sendStallNs atomic.Int64
	recvStallNs atomic.Int64
}

// NewPipe returns a pipe with the given window (minimum 1) of in-flight
// steps.
func NewPipe(window int) *Pipe {
	if window < 1 {
		window = 1
	}
	p := &Pipe{
		slots:  make([][]Op, window),
		filled: make(chan int32, window),
		free:   make(chan int32, window),
		done:   make(chan struct{}),
		cur:    -1,
	}
	for i := 0; i < window; i++ {
		p.free <- int32(i)
	}
	return p
}

// acquireSlot blocks until a free slot is available (accounting the stall
// when enabled) or the consumer abandons the pipe.
func (p *Pipe) acquireSlot() (int32, error) {
	select {
	case idx := <-p.free:
		return idx, nil
	default:
	}
	if p.MeasureStalls {
		t0 := time.Now()
		select {
		case idx := <-p.free:
			p.sendStallNs.Add(time.Since(t0).Nanoseconds())
			return idx, nil
		case <-p.done:
			return 0, ErrPipeClosed
		}
	}
	select {
	case idx := <-p.free:
		return idx, nil
	case <-p.done:
		return 0, ErrPipeClosed
	}
}

// AppendStep copies ops into a free slot and publishes it. It blocks while
// the window is full and returns ErrPipeClosed if the consumer called
// CloseRecv.
func (p *Pipe) AppendStep(ops []Op) error {
	idx, err := p.acquireSlot()
	if err != nil {
		return err
	}
	buf := p.slots[idx][:0]
	buf = append(buf, ops...)
	p.slots[idx] = buf
	select {
	case p.filled <- idx:
	case <-p.done:
		return ErrPipeClosed
	}
	return nil
}

// AppendStepSegments publishes one step given as ordered sub-slices,
// copying them into a single slot — the multi-producer merge's zero-extra-
// copy path.
func (p *Pipe) AppendStepSegments(segs [][]Op) error {
	idx, err := p.acquireSlot()
	if err != nil {
		return err
	}
	buf := p.slots[idx][:0]
	for _, seg := range segs {
		buf = append(buf, seg...)
	}
	p.slots[idx] = buf
	select {
	case p.filled <- idx:
	case <-p.done:
		return ErrPipeClosed
	}
	return nil
}

// CloseSend ends the stream. A nil err means a clean end (the consumer sees
// io.EOF); otherwise the consumer's next NextStep returns err.
func (p *Pipe) CloseSend(err error) {
	if p.closed.CompareAndSwap(false, true) {
		p.err = err
		close(p.filled)
	}
}

// NextStep returns the next step. The slice is valid until the following
// NextStep call.
func (p *Pipe) NextStep() ([]Op, error) {
	if p.cur >= 0 {
		select {
		case p.free <- p.cur:
		case <-p.done:
		}
		p.cur = -1
	}
	var idx int32
	var ok bool
	select {
	case idx, ok = <-p.filled:
	default:
		if p.MeasureStalls {
			t0 := time.Now()
			idx, ok = <-p.filled
			p.recvStallNs.Add(time.Since(t0).Nanoseconds())
		} else {
			idx, ok = <-p.filled
		}
	}
	if !ok {
		if p.err != nil {
			return nil, p.err
		}
		return nil, io.EOF
	}
	p.cur = idx
	return p.slots[idx], nil
}

// CloseRecv abandons the consumer side, unblocking a producer stuck on a
// full window. Idempotent.
func (p *Pipe) CloseRecv() {
	if p.recvClosed.CompareAndSwap(false, true) {
		close(p.done)
	}
}

// Stalls reports the accumulated producer/consumer blocking time in
// nanoseconds. Zero unless MeasureStalls was set before use.
func (p *Pipe) Stalls() (sendNs, recvNs int64) {
	return p.sendStallNs.Load(), p.recvStallNs.Load()
}
