package pebble

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzProtocolReadJSON(f *testing.F) {
	f.Add(`{"guest":{"n":2,"edges":[[0,1]]},"host":{"n":2,"edges":[[0,1]]},"t":1,"steps":[[{"kind":"generate","proc":0,"p":0,"t":1}]]}`)
	f.Add(`{"guest":{"n":1},"host":{"n":1},"t":0,"steps":[]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, data string) {
		pr, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Decoded protocols may be illegal — Validate must reject, not panic.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Validate panicked: %v", r)
				}
			}()
			_, _ = pr.Validate()
		}()
		// And re-encoding must succeed for anything we decoded.
		var buf bytes.Buffer
		if err := pr.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	})
}
