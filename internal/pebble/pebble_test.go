package pebble

import (
	"testing"

	"universalnet/internal/graph"
	"universalnet/internal/topology"
)

// tinyGuest returns K3 — the smallest regular guest with interesting
// neighborhoods.
func tinyGuest(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tinyHost(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := topology.Ring(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInitialStateHoldsAllPebbles(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 4)
	st := NewState(guest, host, 2)
	for q := 0; q < 4; q++ {
		for i := 0; i < 3; i++ {
			if !st.Contains(q, Type{P: i, T: 0}) {
				t.Errorf("host %d missing initial pebble %d", q, i)
			}
		}
	}
	if w := st.Weight(0, 0); w != 4 {
		t.Errorf("q_{0,0} = %d, want 4", w)
	}
}

func TestGenerateRequiresPredecessors(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	st := NewState(guest, host, 2)
	// Generating (P0, 1) works everywhere at the start.
	if err := st.ApplyStep([]Op{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Generating (P0, 2) on processor 1 must fail: no (·,1) pebbles there.
	if err := st.ApplyStep([]Op{{Kind: Generate, Proc: 1, Pebble: Type{P: 0, T: 2}}}); err == nil {
		t.Error("generation without predecessors accepted")
	}
}

func TestGenerateOutOfHorizon(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	st := NewState(guest, host, 1)
	if err := st.ApplyStep([]Op{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 5}}}); err == nil {
		t.Error("generation beyond horizon accepted")
	}
	st2 := NewState(guest, host, 1)
	if err := st2.ApplyStep([]Op{{Kind: Generate, Proc: 0, Pebble: Type{P: 9, T: 1}}}); err == nil {
		t.Error("generation for unknown guest accepted")
	}
}

func TestOneOpPerProcessor(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	st := NewState(guest, host, 2)
	err := st.ApplyStep([]Op{
		{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}},
		{Kind: Generate, Proc: 0, Pebble: Type{P: 1, T: 1}},
	})
	if err == nil {
		t.Error("two ops on one processor accepted")
	}
}

func TestSendReceivePairing(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 4)
	st := NewState(guest, host, 2)
	pb := Type{P: 0, T: 0}
	// Unmatched send.
	if err := st.ApplyStep([]Op{{Kind: Send, Proc: 0, Pebble: pb, Peer: 1}}); err == nil {
		t.Error("unmatched send accepted")
	}
	st = NewState(guest, host, 2)
	// Unmatched receive.
	if err := st.ApplyStep([]Op{{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0}}); err == nil {
		t.Error("unmatched receive accepted")
	}
	st = NewState(guest, host, 2)
	// Proper pair.
	err := st.ApplyStep([]Op{
		{Kind: Send, Proc: 0, Pebble: pb, Peer: 1},
		{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Send along a non-edge.
	st = NewState(guest, host, 2)
	err = st.ApplyStep([]Op{
		{Kind: Send, Proc: 0, Pebble: pb, Peer: 2},
		{Kind: Receive, Proc: 2, Pebble: pb, Peer: 0},
	})
	if err == nil {
		t.Error("send along non-edge accepted")
	}
}

func TestSendRequiresPossession(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 4)
	st := NewState(guest, host, 2)
	pb := Type{P: 0, T: 1} // not yet generated
	err := st.ApplyStep([]Op{
		{Kind: Send, Proc: 0, Pebble: pb, Peer: 1},
		{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0},
	})
	if err == nil {
		t.Error("sending a pebble not held was accepted")
	}
}

func TestPebblesAreNotLost(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 4)
	st := NewState(guest, host, 2)
	pb := Type{P: 1, T: 0}
	if err := st.ApplyStep([]Op{
		{Kind: Send, Proc: 0, Pebble: pb, Peer: 1},
		{Kind: Receive, Proc: 1, Pebble: pb, Peer: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(0, pb) || !st.Contains(1, pb) {
		t.Error("send lost the pebble somewhere")
	}
}

func TestBuildEmbeddingProtocolValidates(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if pr.T != 3 {
		t.Errorf("T = %d", pr.T)
	}
	if pr.HostSteps() < 3 {
		t.Errorf("host steps = %d implausibly small", pr.HostSteps())
	}
	if pr.Slowdown() < 1 {
		t.Errorf("slowdown %f < 1", pr.Slowdown())
	}
	if pr.Inefficiency() <= 0 {
		t.Errorf("inefficiency %f", pr.Inefficiency())
	}
	// Final pebbles exist.
	for i := 0; i < 3; i++ {
		if len(st.Generators(i, 2)) == 0 {
			t.Errorf("no generator for final pebble of P%d", i)
		}
	}
}

func TestBuildEmbeddingProtocolLargerHost(t *testing.T) {
	// m > n: each guest on its own host.
	guest := tinyGuest(t)
	host := tinyHost(t, 8)
	f := []int{0, 3, 6}
	pr, err := BuildEmbeddingProtocol(guest, host, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmbeddingProtocolGuards(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	if _, err := BuildEmbeddingProtocol(guest, host, nil, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := BuildEmbeddingProtocol(guest, host, []int{0, 1}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := BuildEmbeddingProtocol(guest, host, []int{0, 1, 99}, 2); err == nil {
		t.Error("invalid host id accepted")
	}
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if _, err := BuildEmbeddingProtocol(guest, b.Build(), nil, 2); err == nil {
		t.Error("disconnected host accepted")
	}
}

func TestRepresentativesAndGenerators(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for tt := 0; tt < 3; tt++ {
			reps := st.Representatives(i, tt)
			gens := st.Generators(i, tt)
			if len(gens) == 0 {
				t.Errorf("Q'(%d,%d) empty", i, tt)
			}
			// Generators hold the pebble they extend.
			repSet := make(map[int]bool)
			for _, q := range reps {
				repSet[q] = true
			}
			for _, q := range gens {
				if !repSet[q] {
					t.Errorf("generator %d of (P%d,t%d+1) not a representative", q, i, tt)
				}
			}
		}
	}
}

func TestWeightsAndPebbleCount(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	// Initial pebbles: weight m each.
	if st.TotalWeight(0) != 9 {
		t.Errorf("Σq_{i,0} = %d, want 9", st.TotalWeight(0))
	}
	// The proof of Lemma 3.12 bounds pebbles by ops + initial placements.
	if st.PebbleCount() > pr.OpCount()+9 {
		t.Errorf("pebbles %d exceed ops %d + initial 9", st.PebbleCount(), pr.OpCount())
	}
	if st.TotalWeight(1) < 3 {
		t.Errorf("Σq_{i,1} = %d < n", st.TotalWeight(1))
	}
}

func TestGuestsOnProcessor(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, []int{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	// At t=0 every processor holds every guest's pebble.
	if got := st.GuestsOnProcessor(0, 0); len(got) != 3 {
		t.Errorf("𝒫(0,0) = %v", got)
	}
}

func TestFrontier(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	// e_t(τ) is monotone in τ and reaches n for every t < T.
	for tt := 0; tt < 3; tt++ {
		prev := 0
		for τ := 0; τ <= pr.HostSteps(); τ++ {
			e := st.FrontierSize(tt, τ)
			if e < prev {
				t.Errorf("frontier not monotone at t=%d τ=%d", tt, τ)
			}
			prev = e
		}
		if prev != 3 {
			t.Errorf("frontier at t=%d ends at %d, want 3", tt, prev)
		}
	}
	// e_0(0) = n: initial generating pebbles exist from the start.
	if e := st.FrontierSize(0, 0); e != 3 {
		t.Errorf("e_0(0) = %d, want 3", e)
	}
	if τ := st.FrontierThresholdStep(1, 3, pr.HostSteps()); τ < 0 {
		t.Error("threshold step not found")
	}
	if τ := st.FrontierThresholdStep(1, 99, pr.HostSteps()); τ != -1 {
		t.Errorf("impossible threshold returned %d", τ)
	}
}

func TestExtractFragment(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.ExtractFragment(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Error(err)
	}
	if f.SumB() != st.TotalWeight(1) {
		t.Errorf("SumB %d != Σq %d", f.SumB(), st.TotalWeight(1))
	}
	if c := f.SmallDCount(float64(guest.N())); c != 3 {
		t.Errorf("all D_i ≤ n must hold, got %d", c)
	}
	// Lightest-generator picker also yields a valid fragment.
	f2, err := st.ExtractFragment(1, st.PickLightest(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := st.ExtractFragment(99, nil); err == nil {
		t.Error("t0 beyond horizon accepted")
	}
}

func TestAssignmentHelpers(t *testing.T) {
	f := BalancedAssignment(10, 3)
	load := LoadOf(f, 3)
	if load[0] != 4 || load[1] != 3 || load[2] != 3 {
		t.Errorf("balanced load = %v", load)
	}
	if MaxLoad(f, 3) != 4 {
		t.Errorf("max load = %d", MaxLoad(f, 3))
	}
	r := RandomizedAssignment(10, 3, 42)
	if MaxLoad(r, 3) != 4 {
		t.Errorf("randomized assignment changed load: %v", LoadOf(r, 3))
	}
	r2 := RandomizedAssignment(10, 3, 42)
	for i := range r {
		if r[i] != r2[i] {
			t.Error("randomized assignment not deterministic")
		}
	}
}

func TestValidateRejectsMissingFinalPebbles(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr := &Protocol{Guest: guest, Host: host, T: 1, Steps: [][]Op{{}}}
	if _, err := pr.Validate(); err == nil {
		t.Error("protocol without final pebbles accepted")
	}
}

func TestOpKindStrings(t *testing.T) {
	if Generate.String() != "generate" || Send.String() != "send" || Receive.String() != "receive" {
		t.Error("op kind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	if (Type{P: 1, T: 2}).String() == "" {
		t.Error("type string empty")
	}
}

func TestProtocolStats(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := pr.Stats()
	if st.TotalOps != pr.OpCount() {
		t.Errorf("ops %d != OpCount %d", st.TotalOps, pr.OpCount())
	}
	if st.Sends != st.Receives {
		t.Errorf("sends %d != receives %d", st.Sends, st.Receives)
	}
	if st.Generates != 9 { // n=3 guests × T=3 steps, one generator each
		t.Errorf("generates = %d, want 9", st.Generates)
	}
	if st.BusyFraction <= 0 || st.BusyFraction > 1 {
		t.Errorf("busy fraction %f out of (0,1]", st.BusyFraction)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestZeroHorizonAccessors(t *testing.T) {
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	pr := &Protocol{Guest: guest, Host: host, T: 0}
	if pr.Slowdown() != 0 || pr.Inefficiency() != 0 {
		t.Error("zero-horizon ratios not zero")
	}
}
