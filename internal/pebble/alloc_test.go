package pebble

import (
	"io"
	"math/rand"
	"testing"

	"universalnet/internal/topology"
)

// Allocation budgets for the dense pebble engine. These are regression
// tripwires, not targets: measured values are 0 (warm ApplyStep — the
// per-State scratch absorbs everything once buffers have grown) and ~32
// (full Validate of a small protocol, dominated by NewState's tables). The
// ceilings leave headroom for runtime jitter; a real regression — a map or
// per-step slice creeping back into ApplyStep — blows well past them.
const (
	warmApplyStepAllocBudget = 2
	smallValidateAllocBudget = 48
)

func allocFixture(t *testing.T) (*Protocol, *State) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(guest, host, 3)
	for _, ops := range pr.Steps {
		if err := st.ApplyStep(ops); err != nil {
			t.Fatal(err)
		}
	}
	return pr, st
}

func TestApplyStepWarmAllocations(t *testing.T) {
	pr, st := allocFixture(t)
	// Re-applying already-applied steps is legal (regenerating a held
	// pebble passes checkGenerate; every gain is a no-op), so it exercises
	// the full validation path with the scratch already grown.
	avg := testing.AllocsPerRun(200, func() {
		for _, ops := range pr.Steps {
			if err := st.ApplyStep(ops); err != nil {
				t.Fatal(err)
			}
		}
	})
	perStep := avg / float64(len(pr.Steps))
	if perStep > warmApplyStepAllocBudget {
		t.Errorf("warm ApplyStep allocates %.2f/step (budget %d): scratch reuse regressed", perStep, warmApplyStepAllocBudget)
	}
}

func TestValidateSmallProtocolAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	avg := testing.AllocsPerRun(100, func() {
		if _, err := pr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > smallValidateAllocBudget {
		t.Errorf("Validate of a small protocol allocates %.1f (budget %d)", avg, smallValidateAllocBudget)
	}
}

// Streaming warm-path budgets: the per-step steady state of the pipeline —
// pipe hand-off, step codec, and sharded validation — allocates nothing,
// matching the dense engine's warm ApplyStep guarantee. These pins are what
// keeps n = 10⁶ runs out of the allocator entirely.

func TestPipeWarmAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	// Window 2: the consumer returns its lent slot on the *next* NextStep
	// call, so strict append/next alternation needs one slot of slack.
	pipe := NewPipe(2)
	// Warm every slot once so the ring buffers reach their final size.
	for _, ops := range pr.Steps {
		if err := pipe.AppendStep(ops); err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.NextStep(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, ops := range pr.Steps {
			if err := pipe.AppendStep(ops); err != nil {
				t.Fatal(err)
			}
			if _, err := pipe.NextStep(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perStep := avg / float64(len(pr.Steps)); perStep > 0 {
		t.Errorf("warm pipe cycle allocates %.3f/step (budget 0): slot reuse regressed", perStep)
	}
}

func TestStepCodecWarmAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	var encBuf []byte
	var decBuf []Op
	// Grow both buffers to their steady-state capacity.
	for _, ops := range pr.Steps {
		encBuf = appendStepBytes(encBuf[:0], ops)
		out, _, err := decodeStepBytes(encBuf, decBuf)
		if err != nil {
			t.Fatal(err)
		}
		decBuf = out
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, ops := range pr.Steps {
			encBuf = appendStepBytes(encBuf[:0], ops)
			out, _, err := decodeStepBytes(encBuf, decBuf)
			if err != nil {
				t.Fatal(err)
			}
			decBuf = out
		}
	})
	if perStep := avg / float64(len(pr.Steps)); perStep > 0 {
		t.Errorf("warm codec cycle allocates %.3f/step (budget 0): buffer reuse regressed", perStep)
	}
}

// repeatSource replays the same materialized steps r times — legal input
// (regenerating held pebbles passes checkGenerate), which isolates the
// validator's per-step marginal cost from its fixed setup cost.
type repeatSource struct {
	steps [][]Op
	reps  int
	i     int
}

func (s *repeatSource) NextStep() ([]Op, error) {
	if s.i >= s.reps*len(s.steps) {
		return nil, io.EOF
	}
	ops := s.steps[s.i%len(s.steps)]
	s.i++
	return ops, nil
}

func TestShardedValidateWarmAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	sp := pr.Spec()
	measure := func(reps int) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := ValidateSharded(sp, &repeatSource{steps: pr.Steps, reps: reps}, ShardedOptions{Shards: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(1)
	long := measure(21)
	extraSteps := float64(20 * len(pr.Steps))
	perStep := (long - base) / extraSteps
	if perStep > 0.05 {
		t.Errorf("sharded validation allocates %.3f per marginal step (budget 0): steady state regressed", perStep)
	}
}

// TestPipeSegmentsWarmAllocations pins the merge stage's warm path: once
// the slot ring is sized, publishing a step as segments allocates nothing.
func TestPipeSegmentsWarmAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	pipe := NewPipe(2)
	segs := make([][]Op, 2)
	cycle := func() {
		for _, ops := range pr.Steps {
			mid := len(ops) / 2
			segs[0], segs[1] = ops[:mid], ops[mid:]
			if err := pipe.AppendStepSegments(segs); err != nil {
				t.Fatal(err)
			}
			if _, err := pipe.NextStep(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm every slot to its final size
	avg := testing.AllocsPerRun(200, cycle)
	if perStep := avg / float64(len(pr.Steps)); perStep > 0 {
		t.Errorf("warm segment cycle allocates %.3f/step (budget 0): slot reuse regressed", perStep)
	}
}
