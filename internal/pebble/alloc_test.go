package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/topology"
)

// Allocation budgets for the dense pebble engine. These are regression
// tripwires, not targets: measured values are 0 (warm ApplyStep — the
// per-State scratch absorbs everything once buffers have grown) and ~32
// (full Validate of a small protocol, dominated by NewState's tables). The
// ceilings leave headroom for runtime jitter; a real regression — a map or
// per-step slice creeping back into ApplyStep — blows well past them.
const (
	warmApplyStepAllocBudget = 2
	smallValidateAllocBudget = 48
)

func allocFixture(t *testing.T) (*Protocol, *State) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Torus(9)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildEmbeddingProtocol(guest, host, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(guest, host, 3)
	for _, ops := range pr.Steps {
		if err := st.ApplyStep(ops); err != nil {
			t.Fatal(err)
		}
	}
	return pr, st
}

func TestApplyStepWarmAllocations(t *testing.T) {
	pr, st := allocFixture(t)
	// Re-applying already-applied steps is legal (regenerating a held
	// pebble passes checkGenerate; every gain is a no-op), so it exercises
	// the full validation path with the scratch already grown.
	avg := testing.AllocsPerRun(200, func() {
		for _, ops := range pr.Steps {
			if err := st.ApplyStep(ops); err != nil {
				t.Fatal(err)
			}
		}
	})
	perStep := avg / float64(len(pr.Steps))
	if perStep > warmApplyStepAllocBudget {
		t.Errorf("warm ApplyStep allocates %.2f/step (budget %d): scratch reuse regressed", perStep, warmApplyStepAllocBudget)
	}
}

func TestValidateSmallProtocolAllocations(t *testing.T) {
	pr, _ := allocFixture(t)
	avg := testing.AllocsPerRun(100, func() {
		if _, err := pr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > smallValidateAllocBudget {
		t.Errorf("Validate of a small protocol allocates %.1f (budget %d)", avg, smallValidateAllocBudget)
	}
}
