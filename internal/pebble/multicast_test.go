package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/sim"
	"universalnet/internal/topology"
)

func TestMulticastProtocolValidAndCarries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest, err := topology.RandomGuest(rng, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.WrappedButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := BuildMulticastProtocol(guest, host, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatalf("multicast protocol invalid: %v", err)
	}
	comp := sim.MixMod(guest, rng)
	if err := VerifyCarries(pr, comp); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastBeatsUnicastOps(t *testing.T) {
	// Multicast ships one copy per tree edge; with multiple destinations
	// sharing prefixes on a butterfly, both the op count and the host steps
	// must not exceed the unicast builder's.
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, hostDim, T int }{{48, 3, 4}, {96, 4, 3}, {64, 3, 3}} {
		guest, err := topology.RandomGuest(rng, tc.n, 4)
		if err != nil {
			t.Fatal(err)
		}
		host, err := topology.WrappedButterfly(tc.hostDim)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := BuildEmbeddingProtocol(guest, host, nil, tc.T)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := BuildMulticastProtocol(guest, host, nil, tc.T)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := multi.Validate(); err != nil {
			t.Fatal(err)
		}
		if multi.OpCount() > uni.OpCount() {
			t.Errorf("n=%d: multicast ops %d above unicast %d", tc.n, multi.OpCount(), uni.OpCount())
		}
		if multi.HostSteps() > uni.HostSteps() {
			t.Errorf("n=%d: multicast steps %d above unicast %d", tc.n, multi.HostSteps(), uni.HostSteps())
		}
	}
}

func TestMulticastGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	guest, err := topology.RandomGuest(rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildMulticastProtocol(guest, host, nil, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := BuildMulticastProtocol(guest, host, []int{0}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := BuildMulticastProtocol(guest, host, []int{9, 0, 0, 0, 0, 0, 0, 0}, 2); err == nil {
		t.Error("bad host accepted")
	}
}

func TestMulticastSingleHostGuest(t *testing.T) {
	// All guests on one host: no distribution at all.
	guest := tinyGuest(t)
	host := tinyHost(t, 3)
	f := []int{1, 1, 1}
	pr, err := BuildMulticastProtocol(guest, host, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := pr.Stats()
	if st.Sends != 0 {
		t.Errorf("co-located guests still sent %d copies", st.Sends)
	}
}
