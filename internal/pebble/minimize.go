package pebble

import (
	"fmt"
	"io"
)

// MinimizeProtocol removes operations that cannot change the final state:
// transfers whose receiver already holds the pebble (the copy is a no-op —
// and any later op that relied on the copy is equally served by the existing
// pebble), and duplicate generations of a pebble already present at the
// processor. Steps left empty are deleted, shortening T' and therefore the
// measured slowdown/inefficiency. The result validates and carries the same
// computations; the returned count is the number of dropped operations.
func MinimizeProtocol(pr *Protocol) (*Protocol, int, error) {
	out := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	dropped, err := MinimizeStream(pr.Spec(), pr.Source(), &ProtocolSink{Proto: out})
	if err != nil {
		return nil, 0, err
	}
	return out, dropped, nil
}

// MinimizeStream is the streaming core of MinimizeProtocol: it reads steps
// from src, drops the no-op operations, and emits the surviving (non-empty)
// steps to sink — so minimization no longer forces the whole protocol into
// memory. The kept-ops slice handed to the sink is reused across steps.
func MinimizeStream(sp Spec, src StepSource, sink StepSink) (int, error) {
	st := NewState(sp.Guest, sp.Host, sp.T)
	dropped := 0
	var kept []Op
	dropPair := make(map[[3]int]bool) // (from·m+to, pebble) of transfers to drop
	for si := 0; ; si++ {
		step, err := src.NextStep()
		if err == io.EOF {
			return dropped, nil
		}
		if err != nil {
			return 0, err
		}
		kept = kept[:0]
		// First pass: decide which transfers are no-ops (receiver already
		// holds the pebble BEFORE this step). Send/Receive pairs must be
		// dropped together.
		clear(dropPair)
		key := func(from, to int, pb Type) [3]int {
			return [3]int{from*sp.Host.N() + to, pb.P, pb.T}
		}
		for _, op := range step {
			if op.Kind == Receive && st.Contains(op.Proc, op.Pebble) {
				dropPair[key(op.Peer, op.Proc, op.Pebble)] = true
			}
		}
		for _, op := range step {
			switch op.Kind {
			case Generate:
				if st.Contains(op.Proc, op.Pebble) {
					dropped++
					continue
				}
				kept = append(kept, op)
			case Send:
				if dropPair[key(op.Proc, op.Peer, op.Pebble)] {
					dropped++
					continue
				}
				kept = append(kept, op)
			case Receive:
				if dropPair[key(op.Peer, op.Proc, op.Pebble)] {
					dropped++
					continue
				}
				kept = append(kept, op)
			default:
				return 0, fmt.Errorf("pebble: unknown op kind %v at step %d", op.Kind, si)
			}
		}
		if err := st.ApplyStep(kept); err != nil {
			return 0, fmt.Errorf("pebble: minimization broke step %d (bug): %w", si+1, err)
		}
		if len(kept) > 0 {
			if err := sink.AppendStep(kept); err != nil {
				return 0, err
			}
		}
	}
}
