package pebble

import "fmt"

// MinimizeProtocol removes operations that cannot change the final state:
// transfers whose receiver already holds the pebble (the copy is a no-op —
// and any later op that relied on the copy is equally served by the existing
// pebble), and duplicate generations of a pebble already present at the
// processor. Steps left empty are deleted, shortening T' and therefore the
// measured slowdown/inefficiency. The result validates and carries the same
// computations; the returned count is the number of dropped operations.
func MinimizeProtocol(pr *Protocol) (*Protocol, int, error) {
	st := NewState(pr.Guest, pr.Host, pr.T)
	out := &Protocol{Guest: pr.Guest, Host: pr.Host, T: pr.T}
	dropped := 0
	for si, step := range pr.Steps {
		var kept []Op
		// First pass: decide which transfers are no-ops (receiver already
		// holds the pebble BEFORE this step). Send/Receive pairs must be
		// dropped together.
		dropPair := make(map[[3]int]bool) // (from, to, pebble-hash-free) key below
		key := func(from, to int, pb Type) [3]int {
			return [3]int{from*pr.Host.N() + to, pb.P, pb.T}
		}
		for _, op := range step {
			if op.Kind == Receive && st.Contains(op.Proc, op.Pebble) {
				dropPair[key(op.Peer, op.Proc, op.Pebble)] = true
			}
		}
		for _, op := range step {
			switch op.Kind {
			case Generate:
				if st.Contains(op.Proc, op.Pebble) {
					dropped++
					continue
				}
				kept = append(kept, op)
			case Send:
				if dropPair[key(op.Proc, op.Peer, op.Pebble)] {
					dropped++
					continue
				}
				kept = append(kept, op)
			case Receive:
				if dropPair[key(op.Peer, op.Proc, op.Pebble)] {
					dropped++
					continue
				}
				kept = append(kept, op)
			default:
				return nil, 0, fmt.Errorf("pebble: unknown op kind %v at step %d", op.Kind, si)
			}
		}
		if err := st.ApplyStep(kept); err != nil {
			return nil, 0, fmt.Errorf("pebble: minimization broke step %d (bug): %w", si+1, err)
		}
		if len(kept) > 0 {
			out.Steps = append(out.Steps, kept)
		}
	}
	return out, dropped, nil
}
