package pebble

import (
	"math/rand"
	"testing"

	"universalnet/internal/depgraph"
	"universalnet/internal/topology"
)

// Direct unit tests of the Lemma 3.12 machinery (ComputeLemmaWeights,
// CriticalTimes, ChooseRoots) on a small 𝒰[G₀] instance — the experiments
// package exercises them end to end; here we pin the local invariants.

func lemmaFixture(t *testing.T) (*topology.G0, *State, *Protocol) {
	t.Helper()
	g0, err := topology.BuildG0WithBlockSide(64, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	guest, err := g0.SampleGuest(rng, 16)
	if err != nil {
		t.Fatal(err)
	}
	host, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	D := depgraph.TreeDepth(g0.BlockSide)
	pr, err := BuildEmbeddingProtocol(guest, host, nil, D+6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	return g0, st, pr
}

func TestComputeLemmaWeights(t *testing.T) {
	g0, st, pr := lemmaFixture(t)
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		t.Fatal(err)
	}
	if lw.D != depgraph.TreeDepth(4) {
		t.Errorf("D = %d", lw.D)
	}
	if lw.TreeSize <= 0 || lw.TreeSize > 48*g0.A*g0.A {
		t.Errorf("tree size %d outside (0, 48a²]", lw.TreeSize)
	}
	// Σ_t SumQ[t] for t ≥ 1 must equal TotalQ.
	sum := 0
	for tt := 1; tt <= pr.T; tt++ {
		sum += lw.SumQ[tt]
	}
	if sum != lw.TotalQ {
		t.Errorf("TotalQ %d ≠ Σ SumQ %d", lw.TotalQ, sum)
	}
	// TotalQ bounded by pebble placements.
	if lw.TotalQ > st.PebbleCount() {
		t.Errorf("TotalQ %d exceeds pebble count %d", lw.TotalQ, st.PebbleCount())
	}
	// Tree weights: w_{i,t} ≥ q at every tree node; per-step SumW positive
	// for t ≥ D.
	for tt := lw.D; tt <= pr.T; tt++ {
		if lw.SumW[tt] <= 0 {
			t.Errorf("SumW[%d] = %d", tt, lw.SumW[tt])
		}
	}
	// Too-short horizon errors.
	short, err2 := BuildEmbeddingProtocol(st.guest, st.host, nil, 2)
	if err2 != nil {
		t.Fatal(err2)
	}
	stShort, err2 := short.Validate()
	if err2 != nil {
		t.Fatal(err2)
	}
	if _, err := stShort.ComputeLemmaWeights(g0); err == nil {
		t.Error("short horizon accepted")
	}
}

func TestCriticalTimesGuarantee(t *testing.T) {
	g0, st, pr := lemmaFixture(t)
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		t.Fatal(err)
	}
	z := lw.CriticalTimes(pr.T)
	if len(z) < (pr.T-lw.D)/2 {
		t.Errorf("|Z_S| = %d below the Markov guarantee %d", len(z), (pr.T-lw.D)/2)
	}
	for _, t0 := range z {
		if t0 <= lw.D || t0 > pr.T {
			t.Errorf("critical time %d outside (D, T]", t0)
		}
	}
	// Degenerate horizon: no critical times.
	if got := lw.CriticalTimes(lw.D); got != nil {
		t.Errorf("T = D returned %v", got)
	}
}

func TestChooseRootsProperties(t *testing.T) {
	g0, st, pr := lemmaFixture(t)
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		t.Fatal(err)
	}
	z := lw.CriticalTimes(pr.T)
	if len(z) == 0 {
		t.Fatal("no critical times")
	}
	t0 := z[0]
	roots, err := st.ChooseRoots(g0, lw, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != g0.H() {
		t.Fatalf("got %d roots for %d blocks", len(roots), g0.H())
	}
	// One root per block, inside its block.
	for bi, r := range roots {
		if topology.BlockOf(g0.Blocks, r) != bi {
			t.Errorf("root %d not in block %d", r, bi)
		}
	}
	// The chosen roots avoid the top quarter by the Markov property:
	// q_{r_j, t0−D} ≤ 4·avg over the block.
	for bi, r := range roots {
		sum := 0
		for _, v := range g0.Blocks[bi].Vertices {
			sum += st.Weight(v, t0-lw.D)
		}
		avg := float64(sum) / float64(len(g0.Blocks[bi].Vertices))
		if float64(st.Weight(r, t0-lw.D)) > 4*avg+1e-9 {
			t.Errorf("root %d weight %d above 4·avg %.2f", r, st.Weight(r, t0-lw.D), avg)
		}
	}
	// Out-of-range t0 rejected.
	if _, err := st.ChooseRoots(g0, lw, lw.D); err == nil {
		t.Error("t0 = D accepted")
	}
}

func TestTreeWeightMatchesManualSum(t *testing.T) {
	g0, st, _ := lemmaFixture(t)
	D := depgraph.TreeDepth(g0.BlockSide)
	tree, err := depgraph.BuildDependencyTree(g0, g0.Blocks[0].Vertices[0], D)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, nd := range tree.Nodes() {
		want += st.Weight(nd.P, nd.T)
	}
	if got := st.TreeWeight(tree); got != want {
		t.Errorf("TreeWeight = %d, want %d", got, want)
	}
}

func TestPickersAndHelpers(t *testing.T) {
	if PickFirst(3, []int{7, 8, 9}) != 0 {
		t.Error("PickFirst not 0")
	}
	s := SortedCopy([]int{3, 1, 2})
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("SortedCopy = %v", s)
	}
	if topQuarterSet([]vertexWeight{{v: 1, weight: 5}, {v: 2, weight: 9}, {v: 3, weight: 1}, {v: 4, weight: 7}}, 1)[2] != true {
		t.Error("topQuarterSet missed the heaviest vertex")
	}
}

func TestLemma313Part2OnRealProtocol(t *testing.T) {
	// Σ_i q_{i,t₀} ≤ 384·n·k at critical times (Lemma 3.13(2)) — on a real
	// protocol, with plenty of slack since our k is large.
	g0, st, pr := lemmaFixture(t)
	lw, err := st.ComputeLemmaWeights(g0)
	if err != nil {
		t.Fatal(err)
	}
	k := pr.Inefficiency()
	n := float64(pr.Guest.N())
	for _, t0 := range lw.CriticalTimes(pr.T) {
		if float64(lw.SumQ[t0]) > 384*n*k {
			t.Errorf("t0=%d: Σq = %d > 384·n·k = %.1f", t0, lw.SumQ[t0], 384*n*k)
		}
	}
	// Global budget: ΣΣ q ≤ n·k·T (= T'·m).
	if float64(lw.TotalQ) > k*n*float64(pr.T)+1e-6 {
		t.Errorf("ΣΣq = %d exceeds n·k·T = %.1f", lw.TotalQ, k*n*float64(pr.T))
	}
}
