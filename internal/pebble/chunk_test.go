package pebble

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

func TestStepCodecRoundTrip(t *testing.T) {
	steps := [][]Op{
		nil,
		{},
		{{Kind: Generate, Proc: 0, Pebble: Type{P: 0, T: 1}}},
		{
			{Kind: Send, Proc: 3, Pebble: Type{P: 7, T: 2}, Peer: 4},
			{Kind: Receive, Proc: 4, Pebble: Type{P: 7, T: 2}, Peer: 3},
		},
		// Adversarial values: the codec must be lossless for arbitrary ops,
		// not just well-formed ones, so corrupted protocols survive a
		// round-trip and still fail validation with the same error.
		{{Kind: OpKind(-9), Proc: -1, Pebble: Type{P: -1000000, T: 1 << 40}, Peer: 1 << 33}},
	}
	var buf []byte
	for _, step := range steps {
		buf = appendStepBytes(buf[:0], step)
		got, n, err := decodeStepBytes(buf, nil)
		if err != nil {
			t.Fatalf("decode %v: %v", step, err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if len(got) != len(step) {
			t.Fatalf("decoded %d ops, want %d", len(got), len(step))
		}
		for i := range step {
			if got[i] != step[i] {
				t.Fatalf("op %d: got %+v, want %+v", i, got[i], step[i])
			}
		}
	}
}

func TestDecodeStepRejectsCorruptInput(t *testing.T) {
	for _, src := range [][]byte{
		{},                 // no count
		{0x05},             // count 5, no ops
		{0x01, 0x02},       // one op, truncated mid-op
		{0xff, 0xff, 0xff}, // unterminated varint count
	} {
		if _, _, err := decodeStepBytes(src, nil); err == nil {
			t.Fatalf("decode %v: expected error", src)
		}
	}
}

func TestChunkedLogRoundTrip(t *testing.T) {
	pr := streamFixture(t)
	for _, budget := range []int64{0, 256} { // in-memory, and aggressive spill
		log := NewChunkedLog(ChunkedLogOptions{
			TargetChunkBytes: 128,
			MemBudgetBytes:   budget,
			SpillDir:         t.TempDir(),
		})
		src := pr.Source()
		for {
			ops, err := src.NextStep()
			if err != nil {
				break
			}
			if err := log.AppendStep(ops); err != nil {
				t.Fatal(err)
			}
		}
		if log.Steps() != pr.HostSteps() {
			t.Fatalf("log has %d steps, want %d", log.Steps(), pr.HostSteps())
		}
		got, err := Materialize(pr.Spec(), log.Source())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Steps, pr.Steps) {
			t.Fatalf("budget %d: chunked round-trip diverged", budget)
		}
		// A second independent reader must see the same stream.
		again, err := Materialize(pr.Spec(), log.Source())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Steps, pr.Steps) {
			t.Fatalf("budget %d: second reader diverged", budget)
		}
		if budget > 0 {
			if log.SpilledBytes() == 0 {
				t.Fatal("expected spilling under a tiny budget")
			}
			// Peak residency stays near budget + one open chunk, far below the
			// total encoding — the bound the bigsim smoke test relies on.
			if log.PeakResidentBytes() >= log.TotalBytes() {
				t.Fatalf("peak resident %d not below total %d", log.PeakResidentBytes(), log.TotalBytes())
			}
		} else if log.SpilledBytes() != 0 {
			t.Fatal("spilled without a budget")
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestChunkedLogRejectsAppendAfterSource(t *testing.T) {
	log := NewChunkedLog(ChunkedLogOptions{})
	if err := log.AppendStep([]Op{{Kind: Generate}}); err != nil {
		t.Fatal(err)
	}
	log.Source()
	if err := log.AppendStep([]Op{{Kind: Generate}}); err == nil {
		t.Fatal("expected append-after-Source error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	pr := streamFixture(t)
	var buf bytes.Buffer
	if err := pr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != pr.T || !got.Guest.Equal(pr.Guest) || !got.Host.Equal(pr.Host) {
		t.Fatal("binary round-trip changed the spec")
	}
	if !reflect.DeepEqual(got.Steps, pr.Steps) {
		t.Fatal("binary round-trip changed the steps")
	}
	if _, err := got.Validate(); err != nil {
		t.Fatalf("round-tripped protocol rejected: %v", err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	pr := streamFixture(t)
	var buf bytes.Buffer
	if err := pr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// FuzzStepCodec checks both directions: any encodable step round-trips, and
// the decoder never panics or over-reads on arbitrary bytes (re-encoding a
// successful decode must reproduce a decodable, equal step).
func FuzzStepCodec(f *testing.F) {
	pr := streamFixture(f)
	var seed []byte
	for _, step := range pr.Steps[:4] {
		seed = appendStepBytes(seed[:0], step)
		f.Add(append([]byte(nil), seed...))
	}
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, n, err := decodeStepBytes(data, nil)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		re := appendStepBytes(nil, ops)
		ops2, n2, err := decodeStepBytes(re, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || len(ops2) != len(ops) {
			t.Fatalf("re-decode shape mismatch: %d/%d bytes, %d/%d ops", n2, len(re), len(ops2), len(ops))
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("op %d changed across re-encode: %+v vs %+v", i, ops[i], ops2[i])
			}
		}
	})
}

// TestChunkedLogLargeRandomStream stresses chunk boundaries with irregular
// step sizes.
func TestChunkedLogLargeRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var steps [][]Op
	for i := 0; i < 500; i++ {
		step := make([]Op, rng.Intn(17))
		for j := range step {
			step[j] = Op{
				Kind:   OpKind(rng.Intn(3)),
				Proc:   rng.Intn(1000),
				Pebble: Type{P: rng.Intn(100000), T: rng.Intn(50)},
				Peer:   rng.Intn(1000),
			}
		}
		steps = append(steps, step)
	}
	log := NewChunkedLog(ChunkedLogOptions{TargetChunkBytes: 512, MemBudgetBytes: 2048, SpillDir: t.TempDir()})
	for _, s := range steps {
		if err := log.AppendStep(s); err != nil {
			t.Fatal(err)
		}
	}
	src := log.Source()
	for i, want := range steps {
		got, err := src.NextStep()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d ops, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("step %d op %d mismatch", i, j)
			}
		}
	}
	if _, err := src.NextStep(); err == nil {
		t.Fatal("expected EOF")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedLogAppendAfterClose: Close poisons the log, so a straggling
// producer cannot silently recreate a spill file nobody will ever remove.
func TestChunkedLogAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	log := NewChunkedLog(ChunkedLogOptions{
		TargetChunkBytes: 32,
		MemBudgetBytes:   1,
		SpillDir:         dir,
	})
	step := []Op{{Kind: Generate, Proc: 1, Pebble: Type{P: 2, T: 3}}}
	for i := 0; i < 64; i++ {
		if err := log.AppendStep(step); err != nil {
			t.Fatal(err)
		}
	}
	if log.SpilledBytes() == 0 {
		t.Fatal("fixture did not spill")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.AppendStep(step); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := log.AppendStepSegments([][]Op{step}); err == nil {
		t.Fatal("segment append after Close succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
}

// TestChunkedLogSpillWriteErrorCleansUp: a failed spill write must remove
// the partial spill file and poison the log instead of stranding a temp
// file for the caller to guess at.
func TestChunkedLogSpillWriteErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	log := NewChunkedLog(ChunkedLogOptions{
		TargetChunkBytes: 32,
		MemBudgetBytes:   1,
		SpillDir:         dir,
	})
	step := []Op{{Kind: Generate, Proc: 1, Pebble: Type{P: 2, T: 3}}}
	if err := log.AppendStep(step); err != nil {
		t.Fatal(err)
	}
	// Force the next spill write to fail by closing the file under the log.
	for log.spillFile == nil {
		if err := log.AppendStep(step); err != nil {
			t.Fatal(err)
		}
	}
	log.spillFile.Close()
	var appendErr error
	for i := 0; i < 256 && appendErr == nil; i++ {
		appendErr = log.AppendStep(step)
	}
	if appendErr == nil {
		t.Fatal("spill write against a closed file succeeded")
	}
	if log.spillFile != nil {
		t.Fatal("spill file handle survived the failed write")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("partial spill file left behind: %v", ents)
	}
	if err := log.AppendStep(step); err == nil {
		t.Fatal("append after spill failure succeeded")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedLogSpillDirMissing: a bogus spill directory errors without
// leaving anything behind, and the error sticks.
func TestChunkedLogSpillDirMissing(t *testing.T) {
	log := NewChunkedLog(ChunkedLogOptions{
		TargetChunkBytes: 32,
		MemBudgetBytes:   1,
		SpillDir:         "/nonexistent-spill-dir-for-test",
	})
	step := []Op{{Kind: Generate, Proc: 1, Pebble: Type{P: 2, T: 3}}}
	var appendErr error
	for i := 0; i < 256 && appendErr == nil; i++ {
		appendErr = log.AppendStep(step)
	}
	if appendErr == nil {
		t.Fatal("spilling into a missing directory succeeded")
	}
	if err := log.AppendStep(step); err == nil {
		t.Fatal("error did not stick")
	}
}

// TestChunkedLogFingerprint: the fingerprint is a pure function of the
// encoded stream — identical for AppendStep and AppendStepSegments of the
// same steps, different once the stream differs.
func TestChunkedLogFingerprint(t *testing.T) {
	pr := streamFixture(t)
	encode := func(split bool) uint64 {
		log := NewChunkedLog(ChunkedLogOptions{TargetChunkBytes: 128})
		src := pr.Source()
		for {
			ops, err := src.NextStep()
			if err != nil {
				break
			}
			if split {
				mid := len(ops) / 2
				if err := log.AppendStepSegments([][]Op{ops[:mid], ops[mid:]}); err != nil {
					t.Fatal(err)
				}
			} else if err := log.AppendStep(ops); err != nil {
				t.Fatal(err)
			}
		}
		return log.Fingerprint()
	}
	whole, split := encode(false), encode(true)
	if whole != split {
		t.Fatalf("segment encoding changed the fingerprint: %x vs %x", whole, split)
	}
	empty := NewChunkedLog(ChunkedLogOptions{})
	if empty.Fingerprint() == whole {
		t.Fatal("fingerprint ignores the stream")
	}
}
